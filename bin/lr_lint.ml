(* Standalone circuit linter / equivalence checker.

   One file: parse it (BLIF, ASCII AIGER, or the .lrc text netlist),
   report every source-level and structural finding plus per-output cone
   statistics; --deep adds the semantic dataflow rules (constant
   propagation, observability, SAT-proven duplicates, rewrite
   opportunities). Two files: prove combinational equivalence, reporting
   the offending output and a counterexample when they differ. Exit
   status 1 on error findings or non-equivalence, 2 on unreadable or
   unparseable input. *)

module N = Lr_netlist.Netlist
module Blif = Lr_netlist.Blif
module Io = Lr_netlist.Io
module Aiger = Lr_aig.Aiger
module Aig = Lr_aig.Aig
module Equiv = Lr_aig.Equiv
module Bv = Lr_bitvec.Bv
module Finding = Lr_check.Finding
module Lint = Lr_check.Lint
module Semantic = Lr_dataflow.Semantic
module Json = Lr_instr.Json

open Cmdliner

let read_text path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type format = Fblif | Faiger | Flrc

let format_of_path path =
  if Filename.check_suffix path ".blif" then Fblif
  else if Filename.check_suffix path ".aag" || Filename.check_suffix path ".aig"
  then Faiger
  else Flrc

let format_string = function
  | Fblif -> "blif"
  | Faiger -> "aiger"
  | Flrc -> "lrc"

(* parse failure as a finding rather than an abort, so a broken file still
   produces a report *)
let parse_finding ~rule msg =
  Finding.make Finding.Error ~rule ~where:"" ~hint:"fix the parse error first"
    msg

(* Lint one file: (findings, cones, netlist, parse_failed). The netlist
   is linted only when the source parses; a source that does not parse
   still produces a report but flips [parse_failed], which maps to exit
   status 2 rather than 1 (findings on a well-formed circuit). *)
let lint_file ~deep path =
  let semantic c = if deep then Semantic.netlist c else [] in
  match format_of_path path with
  | Fblif -> (
      let text = read_text path in
      let source = Lint.blif_source text in
      if Finding.errors source <> [] then (source, [], None, true)
      else
        let c = Blif.read text in
        ( Finding.normalize (source @ Lint.netlist c @ semantic c),
          Lint.cones c,
          Some c,
          false ))
  | Faiger -> (
      match Aiger.read_file path with
      | exception Failure msg ->
          ([ parse_finding ~rule:"aiger-source" msg ], [], None, true)
      | aig ->
          let c = Aig.to_netlist aig in
          ( Finding.normalize (Lint.aig aig @ semantic c),
            Lint.cones c,
            Some c,
            false ))
  | Flrc -> (
      match Io.read_file path with
      | exception Failure msg ->
          ([ parse_finding ~rule:"lrc-source" msg ], [], None, true)
      | c ->
          ( Finding.normalize (Lint.netlist c @ semantic c),
            Lint.cones c,
            Some c,
            false ))

let read_netlist path =
  match format_of_path path with
  | Fblif -> Blif.read (read_text path)
  | Faiger -> Aig.to_netlist (Aiger.read_file path)
  | Flrc -> Io.read_file path

let severity_counts findings =
  ( Finding.count Finding.Error findings,
    Finding.count Finding.Warning findings,
    Finding.count Finding.Info findings )

let lint_json ~deep path findings cones netlist =
  let e, w, i = severity_counts findings in
  let rule_counts =
    Json.Obj
      (List.map (fun (r, c) -> (r, Json.Int c)) (Semantic.rule_counts findings))
  in
  let estimate =
    match (deep, netlist) with
    | true, Some c ->
        [ ("nodes_removed_estimate", Json.Int (Semantic.removal_estimate c)) ]
    | _ -> []
  in
  Json.Obj
    ([
       ("schema", Json.String "lr-lint-report/v2");
       ("mode", Json.String "lint");
       ("file", Json.String path);
       ("format", Json.String (format_string (format_of_path path)));
       ("deep", Json.Bool deep);
       ("errors", Json.Int e);
       ("warnings", Json.Int w);
       ("info", Json.Int i);
       ("rule_counts", rule_counts);
       ("findings", Json.List (List.map Finding.json findings));
       ("cones", Json.List (List.map Lint.cone_json cones));
     ]
    @ estimate)

let cec_json path1 path2 verdict =
  let fields =
    match verdict with
    | `Equivalent -> [ ("equivalent", Json.Bool true) ]
    | `Counterexample (o, cex) ->
        [
          ("equivalent", Json.Bool false);
          ("output", Json.Int o);
          ("counterexample", Json.String (Bv.to_string cex));
        ]
    | `Unreadable msg ->
        [ ("equivalent", Json.Null); ("error", Json.String msg) ]
  in
  Json.Obj
    ([
       ("schema", Json.String "lr-lint-report/v2");
       ("mode", Json.String "cec");
       ("files", Json.List [ Json.String path1; Json.String path2 ]);
     ]
    @ fields)

let emit_json json = function
  | None -> ()
  | Some "-" -> print_endline (Json.to_string json)
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (Json.to_string json);
          output_string oc "\n")

let run path1 path2 json quiet deep =
  match path2 with
  | None -> (
      match lint_file ~deep path1 with
      | exception Sys_error msg ->
          Printf.eprintf "error: %s\n" msg;
          2
      | findings, cones, netlist, parse_failed ->
          let e, w, i = severity_counts findings in
          if not quiet then begin
            List.iter
              (fun f -> Printf.printf "  %s\n" (Finding.to_string f))
              findings;
            List.iter
              (fun (k : Lint.cone) ->
                Printf.printf
                  "  output %s: %d gates (+%d inverters), depth %d, support \
                   %d, max fanout %d\n"
                  k.Lint.name k.Lint.gates k.Lint.inverters k.Lint.depth
                  k.Lint.support k.Lint.max_fanout)
              cones;
            Printf.printf "%s: %d error(s), %d warning(s), %d info\n" path1 e w
              i
          end;
          emit_json (lint_json ~deep path1 findings cones netlist) json;
          if parse_failed then 2 else if e > 0 then 1 else 0)
  | Some path2 -> (
      let load path =
        match read_netlist path with
        | c -> Ok c
        | exception (Failure msg | Sys_error msg) ->
            Error (Printf.sprintf "%s: %s" path msg)
      in
      match (load path1, load path2) with
      | Error msg, _ | _, Error msg ->
          Printf.eprintf "error: %s\n" msg;
          emit_json (cec_json path1 path2 (`Unreadable msg)) json;
          2
      | Ok c1, Ok c2 -> (
          match Equiv.check c1 c2 with
          | Equiv.Equivalent ->
              if not quiet then print_endline "EQUIVALENT";
              emit_json (cec_json path1 path2 `Equivalent) json;
              0
          | Equiv.Counterexample cex ->
              let o1 = N.eval c1 cex and o2 = N.eval c2 cex in
              let output = ref (-1) in
              for o = Bv.length o1 - 1 downto 0 do
                if Bv.get o1 o <> Bv.get o2 o then output := o
              done;
              if not quiet then
                Printf.printf
                  "NOT EQUIVALENT\noutput %d differs on inputs (MSB..LSB): %s\n"
                  !output (Bv.to_string cex);
              emit_json
                (cec_json path1 path2 (`Counterexample (!output, cex)))
                json;
              1))

let file1_pos =
  let doc = "Circuit file to lint (.blif, .aag/.aig, or .lrc text netlist)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let file2_pos =
  let doc =
    "Optional second circuit: check combinational equivalence instead of \
     linting."
  in
  Arg.(value & pos 1 (some file) None & info [] ~docv:"FILE2" ~doc)

let json_arg =
  let doc =
    "Write a machine-readable report (schema lr-lint-report/v2). Pass \
     $(b,-) for standard output."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let quiet_arg =
  let doc = "Suppress the human-readable report (exit status still set)." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let deep_arg =
  let doc =
    "Run the semantic dataflow rules as well: ternary constant \
     propagation, observability don't-cares, SAT-proven duplicate and \
     constant cones, XOR-recovery and resubstitution opportunities. \
     Slower (simulation plus bounded SAT), still deterministic."
  in
  Arg.(value & flag & info [ "deep" ] ~doc)

let cmd =
  let doc = "lint a circuit file, or prove two equivalent" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "With one file, parses it and reports source-level diagnostics \
         (combinational cycles, multiply-driven or undriven signals, \
         malformed tables), structural findings (dead logic, double \
         inverters, constant-foldable gates, structural duplicates, \
         constant outputs) and per-output cone statistics. $(b,--deep) \
         adds the semantic dataflow rules: ternary constant propagation, \
         observability don't-cares, SAT-proven duplicate/constant cones \
         and rewrite opportunities. With two files, proves combinational \
         equivalence by simulation plus SAT.";
      `P
        "Exit status: 0 clean or equivalent; 1 error findings or not \
         equivalent; 2 unreadable or unparseable input.";
    ]
  in
  Cmd.v
    (Cmd.info "lr_lint" ~doc ~man)
    Term.(const run $ file1_pos $ file2_pos $ json_arg $ quiet_arg $ deep_arg)

let () = exit (Cmd.eval' cmd)
