(* Learning-as-a-service daemon: accept learn jobs over HTTP, multiplex
   them onto a bounded pool of worker domains, and answer repeats from a
   content-addressed circuit cache (CEC-verified on every hit). *)

module Json = Lr_instr.Json
module Log = Lr_obs.Log
module Http = Lr_obs.Http
module Proto = Lr_serve.Proto
module Scheduler = Lr_serve.Scheduler
module Server = Lr_serve.Server

open Cmdliner

let die fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "error: %s\n" s;
      exit 1)
    fmt

let listen_arg =
  let doc = "Listen port; 0 binds an ephemeral port (see --port-file)." in
  Arg.(value & opt int 8123 & info [ "listen" ] ~docv:"PORT" ~doc)

let slots_arg =
  let doc = "Worker domains: learns running concurrently." in
  Arg.(value & opt int 2 & info [ "slots" ] ~docv:"N" ~doc)

let queue_arg =
  let doc =
    "Jobs allowed to wait beyond the running ones; a full queue answers \
     429 with Retry-After."
  in
  Arg.(value & opt int 16 & info [ "queue" ] ~docv:"N" ~doc)

let cache_dir_arg =
  let doc =
    "Persist the circuit cache here (<key>.lrc/<key>.json pairs, reloaded \
     on restart). In-memory only when absent."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let words_arg =
  let doc =
    "Fingerprint probe words (64 assignments each) behind the cache key."
  in
  Arg.(value & opt int 4 & info [ "fingerprint-words" ] ~docv:"N" ~doc)

let tenant_queries_arg =
  let doc =
    "Per-tenant total query quota; when set, every spec must carry an \
     explicit budget, reserved at submit."
  in
  Arg.(
    value & opt (some int) None & info [ "tenant-queries" ] ~docv:"N" ~doc)

let max_time_arg =
  let doc = "Refuse specs asking for a larger time budget than this." in
  Arg.(
    value
    & opt (some float) None
    & info [ "max-time-budget" ] ~docv:"SECONDS" ~doc)

let port_file_arg =
  let doc =
    "Write the bound port here once listening (handy with --listen 0)."
  in
  Arg.(
    value & opt (some string) None & info [ "port-file" ] ~docv:"FILE" ~doc)

let log_level_arg =
  let doc = "Log level: debug, info, warn or error." in
  Arg.(value & opt string "info" & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let serve_run listen slots queue cache_dir words tenant_queries max_time
    port_file log_level =
  (match Log.level_of_string log_level with
  | Ok l -> Log.set_level l
  | Error e -> die "%s" e);
  if listen < 0 || listen > 0xffff then die "bad --listen port %d" listen;
  if slots < 1 then die "--slots must be >= 1";
  if queue < 0 then die "--queue must be >= 0";
  if words < 1 then die "--fingerprint-words must be >= 1";
  let sched =
    Scheduler.create ~slots ~queue_limit:queue ?cache_dir
      ~fingerprint_words:words ?tenant_queries ?max_time_budget_s:max_time ()
  in
  let srv = Server.create sched in
  match Server.start ~port:listen srv with
  | Error e ->
      Scheduler.shutdown sched;
      die "cannot listen on port %d: %s" listen e
  | Ok http ->
      let port = Http.port http in
      (match port_file with
      | None -> ()
      | Some f ->
          let oc =
            try open_out f
            with Sys_error m -> die "cannot write --port-file: %s" m
          in
          Printf.fprintf oc "%d\n" port;
          close_out oc);
      let on_signal _ = Server.request_shutdown srv in
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
      Printf.printf "lr_serve listening on 127.0.0.1:%d (%d slots, queue %d)\n%!"
        port slots queue;
      Log.info
        ~fields:[ Log.int "port" port; Log.int "slots" slots ]
        "lr_serve listening";
      Server.wait_shutdown srv;
      Log.info "shutting down: draining the queue";
      Http.stop http;
      Scheduler.shutdown sched;
      Log.flush ();
      0

let main =
  let doc = "learning-as-a-service daemon with a verified circuit cache" in
  Cmd.v
    (Cmd.info "lr_serve" ~doc)
    Term.(
      const serve_run $ listen_arg $ slots_arg $ queue_arg $ cache_dir_arg
      $ words_arg $ tenant_queries_arg $ max_time_arg $ port_file_arg
      $ log_level_arg)

let () = exit (Cmd.eval' main)
