(* Profiler front end: read a telemetry trace (JSONL from --trace-jsonl,
   or a Chrome trace from --trace), print the hotspot table, export
   folded stacks for flamegraphs, or diff two profiles. *)

module Profile = Lr_prof.Profile
module Folded = Lr_prof.Folded

open Cmdliner

let die fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "error: %s\n" s;
      exit 1)
    fmt

let load path =
  match Profile.load_file path with
  | Ok p -> p
  | Error e -> die "%s: %s" path e

let trace_pos k =
  let doc =
    "Trace file: JSONL event log (--trace-jsonl) or Chrome trace (--trace)."
  in
  Arg.(required & pos k (some string) None & info [] ~docv:"TRACE" ~doc)

let k_arg =
  let doc = "Rows per table." in
  Arg.(value & opt int 20 & info [ "k"; "top" ] ~docv:"N" ~doc)

(* ---------- top ---------- *)

let top_run path k =
  let p = load path in
  if p.Profile.nodes = [] then
    die "%s: no spans in trace (was instrumentation enabled?)" path;
  print_string (Profile.render_top ~k p);
  0

let top_cmd =
  let doc = "print the self-time hotspot table of a trace" in
  Cmd.v (Cmd.info "top" ~doc) Term.(const top_run $ trace_pos 0 $ k_arg)

(* ---------- fold ---------- *)

let fold_out_arg =
  let doc = "Write the folded stacks here instead of standard output." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let fold_run path out =
  let p = load path in
  let s = Folded.to_string p in
  if s = "" then
    die "%s: no spans with positive self time; nothing to fold" path;
  (match out with
  | None -> print_string s
  | Some f ->
      let oc = try open_out f with Sys_error m -> die "cannot open %s: %s" f m in
      output_string oc s;
      close_out oc;
      Printf.printf "folded stacks written to %s (%d frames)\n" f
        (List.length (Folded.lines p)));
  0

let fold_cmd =
  let doc =
    "export folded stacks (lr-folded/v1) for speedscope / flamegraph.pl"
  in
  Cmd.v (Cmd.info "fold" ~doc) Term.(const fold_run $ trace_pos 0 $ fold_out_arg)

(* ---------- diff ---------- *)

(* "5%" or "0.05" -> 0.05 *)
let parse_pct s =
  let s = String.trim s in
  let n = String.length s in
  if n > 0 && s.[n - 1] = '%' then
    match float_of_string_opt (String.sub s 0 (n - 1)) with
    | Some v when v >= 0.0 -> Ok (v /. 100.0)
    | _ -> Error (`Msg (Printf.sprintf "bad percentage %S" s))
  else
    match float_of_string_opt s with
    | Some v when v >= 0.0 -> Ok v
    | _ -> Error (`Msg (Printf.sprintf "bad fraction %S" s))

let pct_conv =
  Arg.conv
    (parse_pct, fun ppf v -> Format.fprintf ppf "%g%%" (100.0 *. v))

let max_regress_arg =
  let doc =
    "Fail (exit 1) when any span's self time regressed by more than \
     $(docv) (e.g. 10% or 0.1) relative to the old trace, beyond a 10 ms \
     jitter floor."
  in
  Arg.(
    value
    & opt (some pct_conv) None
    & info [ "max-regress" ] ~docv:"PCT" ~doc)

let diff_run old_path new_path k max_regress =
  let old_p = load old_path and new_p = load new_path in
  print_string (Profile.render_diff ~k old_p new_p);
  match max_regress with
  | None -> 0
  | Some max_frac -> (
      match Profile.regressions ~max_frac old_p new_p with
      | [] -> 0
      | regs ->
          List.iter
            (fun (path, old_s, new_s) ->
              Printf.printf
                "REGRESSION %s: self %.3fs -> %.3fs (limit +%g%%)\n" path
                old_s new_s (100.0 *. max_frac))
            regs;
          1)

let diff_cmd =
  let doc = "compare two traces: per-span self-time and counter deltas" in
  Cmd.v
    (Cmd.info "diff" ~doc)
    Term.(const diff_run $ trace_pos 0 $ trace_pos 1 $ k_arg $ max_regress_arg)

let main =
  let doc = "hotspot profiler over lr telemetry traces" in
  Cmd.group (Cmd.info "lr_prof" ~doc) [ top_cmd; fold_cmd; diff_cmd ]

let () = exit (Cmd.eval' main)
