(* Profiler front end: read a telemetry trace (JSONL from --trace-jsonl,
   or a Chrome trace from --trace), print the hotspot table, export
   folded stacks for flamegraphs, or diff two profiles. *)

module Profile = Lr_prof.Profile
module Folded = Lr_prof.Folded

open Cmdliner

let die fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "error: %s\n" s;
      exit 1)
    fmt

let load path =
  match Profile.load_file path with
  | Ok p -> p
  | Error e -> die "%s: %s" path e

let trace_pos k =
  let doc =
    "Trace file: JSONL event log (--trace-jsonl) or Chrome trace (--trace)."
  in
  Arg.(required & pos k (some string) None & info [] ~docv:"TRACE" ~doc)

let k_arg =
  let doc = "Rows per table." in
  Arg.(value & opt int 20 & info [ "k"; "top" ] ~docv:"N" ~doc)

(* ---------- top ---------- *)

let top_run path k =
  let p = load path in
  if p.Profile.nodes = [] then
    die "%s: no spans in trace (was instrumentation enabled?)" path;
  print_string (Profile.render_top ~k p);
  0

let top_cmd =
  let doc = "print the self-time hotspot table of a trace" in
  Cmd.v (Cmd.info "top" ~doc) Term.(const top_run $ trace_pos 0 $ k_arg)

(* ---------- fold ---------- *)

let fold_out_arg =
  let doc = "Write the folded stacks here instead of standard output." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let fold_run path out =
  let p = load path in
  let s = Folded.to_string p in
  if s = "" then
    die "%s: no spans with positive self time; nothing to fold" path;
  (match out with
  | None -> print_string s
  | Some f ->
      let oc = try open_out f with Sys_error m -> die "cannot open %s: %s" f m in
      output_string oc s;
      close_out oc;
      Printf.printf "folded stacks written to %s (%d frames)\n" f
        (List.length (Folded.lines p)));
  0

let fold_cmd =
  let doc =
    "export folded stacks (lr-folded/v1) for speedscope / flamegraph.pl"
  in
  Cmd.v (Cmd.info "fold" ~doc) Term.(const fold_run $ trace_pos 0 $ fold_out_arg)

(* ---------- diff ---------- *)

let diff_run old_path new_path k =
  let old_p = load old_path and new_p = load new_path in
  print_string (Profile.render_diff ~k old_p new_p);
  0

let diff_cmd =
  let doc = "compare two traces: per-span self-time and counter deltas" in
  Cmd.v
    (Cmd.info "diff" ~doc)
    Term.(const diff_run $ trace_pos 0 $ trace_pos 1 $ k_arg)

let main =
  let doc = "hotspot profiler over lr telemetry traces" in
  Cmd.group (Cmd.info "lr_prof" ~doc) [ top_cmd; fold_cmd; diff_cmd ]

let () = exit (Cmd.eval' main)
