(* Command-line front end: learn a circuit for a benchmark case (or any
   circuit file treated as a black-box), score it, save it. *)

module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Io = Lr_netlist.Io
module Box = Lr_blackbox.Blackbox
module Cases = Lr_cases.Cases
module Eval = Lr_eval.Eval
module T = Lr_templates.Templates
module G = Lr_grouping.Grouping
module Config = Logic_regression.Config
module Learner = Logic_regression.Learner
module Baselines = Lr_baselines.Baselines
module Instr = Lr_instr.Instr
module Json = Lr_instr.Json
module Histogram = Lr_report.Histogram
module Gcstat = Lr_report.Gcstat
module History = Lr_report.History
module Heartbeat = Lr_report.Heartbeat
module Progress = Lr_prof.Progress
module Metrics = Lr_prof.Metrics
module Finding = Lr_check.Finding
module Faults = Lr_faults.Faults
module Log = Lr_obs.Log
module Alerts = Lr_obs.Alerts
module Server = Lr_obs.Server

open Cmdliner

(* ---------- shared options ---------- *)

let preset_conv =
  Arg.enum [ ("contest", Config.contest); ("improved", Config.improved) ]

let preset_arg =
  let doc = "Algorithm preset: the configuration run at the contest, or the paper's improved one." in
  Arg.(value & opt preset_conv Config.improved & info [ "preset" ] ~docv:"PRESET" ~doc)

let seed_arg =
  let doc = "Master RNG seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let budget_arg =
  let doc = "Query budget (the reproduction's deterministic analogue of the contest's time limit)." in
  Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"QUERIES" ~doc)

let eval_arg =
  let doc = "Number of scoring patterns (the contest used 1500000)." in
  Arg.(value & opt int 30_000 & info [ "eval-patterns" ] ~doc)

let support_rounds_arg =
  let doc = "Sampling rounds r for support identification (paper: 7200)." in
  Arg.(value & opt (some int) None & info [ "support-rounds" ] ~doc)

let no_templates_arg =
  let doc = "Disable template matching (the paper's preprocessing ablation)." in
  Arg.(value & flag & info [ "no-templates" ] ~doc)

let no_grouping_arg =
  let doc = "Disable name-based grouping (implies --no-templates)." in
  Arg.(value & flag & info [ "no-grouping" ] ~doc)

let out_arg =
  let doc = "Write the learned circuit to this file." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON file of the run (open it in \
     chrome://tracing or Perfetto): one duration event per pipeline span, \
     counter tracks for queries/nodes/cubes. Pass $(b,-) to write the \
     trace to standard output."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Print a per-span time/counter summary to stderr after the run." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let trace_jsonl_arg =
  let doc =
    "Write the raw telemetry event stream as JSONL (one event per line) — \
     the lossless input format of the $(b,lr_prof) profiler. Pass $(b,-) \
     to write to standard output."
  in
  Arg.(value & opt (some string) None & info [ "trace-jsonl" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc =
    "Stream live progress as NDJSON (schema lr-progress/v1): phase \
     begin/end, per-output conquer completion, query/time-budget \
     consumption, retry and degradation events. The event sequence is \
     identical at any --jobs level. Pass $(b,-) to stream to standard \
     output."
  in
  Arg.(value & opt (some string) None & info [ "progress" ] ~docv:"FILE" ~doc)

let metrics_out_arg =
  let doc =
    "After the run, write counters, per-span times, GC statistics and \
     query-latency quantiles to $(docv) in Prometheus textfile exposition \
     format."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let json_arg =
  let doc =
    "Write a machine-readable run report (schema lr-run-report/v1): \
     per-output method/support/cubes, per-phase seconds, query counts and \
     GC deltas, query-latency percentiles, circuit size, accuracy. Pass \
     $(b,-) to write the report to standard output."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let history_arg =
  let doc =
    "Append the run report to this JSONL history file (one report per \
     line; inspect with the lr_report tool)."
  in
  Arg.(value & opt (some string) None & info [ "history" ] ~docv:"FILE" ~doc)

let heartbeat_arg =
  let doc =
    "Print a progress heartbeat (phase, elapsed, queries, budget left) to \
     stderr every $(docv) seconds."
  in
  Arg.(value & opt (some float) None & info [ "heartbeat" ] ~docv:"SECS" ~doc)

let check_arg =
  let doc =
    "Self-check level: $(b,off) (nothing), $(b,structural) (lint the final \
     circuit, fail on error findings), or $(b,full) (additionally prove \
     every optimization step equivalent to its input — exhaustive \
     re-simulation for conquered truth tables, SAT-backed CEC elsewhere; a \
     failure aborts with the offending stage, output and counterexample)."
  in
  Arg.(
    value
    & opt
        (Arg.enum
           [
             ("off", Config.Off);
             ("structural", Config.Structural);
             ("full", Config.Full);
           ])
        Config.Off
    & info [ "check" ] ~docv:"LEVEL" ~doc)

let sweep_arg =
  let doc =
    "Dataflow sweep of the final netlist: $(b,off) (the default — runs \
     are bit-identical to earlier builds), $(b,const) (ternary constant \
     propagation only), or $(b,full) (additionally merge SAT-proven \
     duplicate cones, rebuild XOR trees as single gates and apply \
     observability-don't-care resubstitutions). Every stage is \
     CEC-verified under --check full; the sweep issues no black-box \
     queries."
  in
  Arg.(
    value
    & opt
        (Arg.enum
           [
             ("off", Config.Sweep_off);
             ("const", Config.Sweep_const);
             ("full", Config.Sweep_full);
           ])
        Config.Sweep_off
    & info [ "sweep" ] ~docv:"LEVEL" ~doc)

let kernel_arg =
  let doc =
    "Hot-path engine selection: $(b,on) (the default) runs \
     simulation-heavy phases on the structure-of-arrays kernel with \
     incremental dirty-cone resimulation and races hard SAT queries over \
     a deterministic solver portfolio; $(b,off) forces the legacy \
     tree-walking evaluators. Both settings learn the same circuit, \
     issue the same queries and emit the same report — $(b,off) exists \
     for differential testing and benchmarking."
  in
  Arg.(
    value
    & opt (Arg.enum [ ("on", true); ("off", false) ]) true
    & info [ "kernel" ] ~docv:"on|off" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the per-output conquer stage. $(b,1) (the \
     default) runs everything on the calling domain; $(b,0) picks a \
     pool size from the machine. Any value learns the same circuit \
     from the same seed."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let time_budget_arg =
  let doc =
    "Wall-clock budget in seconds: the learner checks it between phases \
     and between outputs and skips remaining work once exceeded (the run \
     report carries budget_exceeded)."
  in
  Arg.(
    value & opt (some float) None & info [ "time-budget" ] ~docv:"SECS" ~doc)

let faults_arg =
  let doc =
    "Arm deterministic fault injection on the black box. $(docv) is a \
     compact schedule (comma-separated key=value: seed=N, fail=P, \
     burst=N, latency=P:SECS, flip=BIT, stuck=BIT:0|1, at=ONSET, \
     for=QUERIES, exhaust=N) or the path of a schedule file (JSON \
     lr-fault-schedule/v1 or compact form). The schedule is seeded and \
     replayed per output, so runs stay reproducible at any --jobs. \
     Outputs whose queries keep failing past --retry degrade to \
     constants (method degraded-fault) and the exit code is 3."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)

let retry_arg =
  let doc =
    "Total attempts per query batch under fault injection: $(b,1) (the \
     default) makes the first injected failure final for the output \
     being learned; higher values retry with exponential backoff in \
     injected-clock time."
  in
  Arg.(value & opt int 1 & info [ "retry" ] ~docv:"ATTEMPTS" ~doc)

let retry_backoff_arg =
  let doc =
    "Base backoff before the first retry, in injected-clock seconds \
     (doubles per further retry; never sleeps for real)."
  in
  Arg.(value & opt float 0.001 & info [ "retry-backoff" ] ~docv:"SECS" ~doc)

let listen_arg =
  let doc =
    "Serve live observability over HTTP on 127.0.0.1:$(docv) while the \
     run executes: GET /metrics (Prometheus text), /progress (chunked \
     lr-progress/v1 NDJSON), /healthz (phase, outputs done, budget \
     remaining), /logs?level=LEVEL (lr-log/v1 NDJSON). Port 0 picks an \
     ephemeral port (printed to stderr). Off by default, with zero \
     overhead on the run."
  in
  Arg.(value & opt (some int) None & info [ "listen" ] ~docv:"PORT" ~doc)

let alerts_arg =
  let doc =
    "Arm alert rules over the live telemetry (compact form, e.g. \
     $(b,degraded>0,retry_rate>0.05@10s,budget_burn>2x), or the path \
     of an lr-alerts/v1 JSON file). Fired rules emit warn-level log \
     records and an alerts section in the run report, which \
     $(b,lr_report check --deny-alerts) gates on."
  in
  Arg.(value & opt (some string) None & info [ "alerts" ] ~docv:"SPEC" ~doc)

let log_level_conv =
  let parse s =
    match Log.level_of_string s with Ok l -> Ok l | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun ppf l -> Format.pp_print_string ppf (Log.level_to_string l))

let log_level_arg =
  let doc =
    "Threshold for structured stderr logging: $(b,debug), $(b,info), \
     $(b,warn) (default) or $(b,error)."
  in
  Arg.(value & opt log_level_conv Log.Warn & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let log_file_arg =
  let doc =
    "Also write structured log records to $(docv) as NDJSON (schema \
     lr-log/v1, one record per line)."
  in
  Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE" ~doc)

(* fail before the (possibly long) run, with a clean message instead of
   an uncaught Sys_error at the end of it *)
let open_out_or_die ~flag path =
  try open_out path
  with Sys_error msg ->
    Printf.eprintf "error: cannot open %s file: %s\n" flag msg;
    exit 1

(* attach the requested sinks; returns a finalizer *)
let setup_sinks ?heartbeat ?time_budget ?query_budget ~trace ~trace_jsonl
    ~progress ~metrics () =
  let sinks =
    (match trace with
    | Some "-" -> [ Instr.chrome_trace print_string ]
    | Some f ->
        close_out (open_out_or_die ~flag:"--trace" f);
        [ Instr.chrome_trace_file f ]
    | None -> [])
    @ (match trace_jsonl with
      | Some "-" -> [ Instr.jsonl print_string ]
      | Some f ->
          close_out (open_out_or_die ~flag:"--trace-jsonl" f);
          [ Instr.jsonl_file f ]
      | None -> [])
    @ (match progress with
      | Some "-" ->
          (* the locked writer keeps NDJSON lines atomic against
             heartbeat/log lines under --jobs N *)
          [
            Progress.sink ~out:(Log.locked_write stdout) ?query_budget
              ?time_budget_s:time_budget ();
          ]
      | Some f -> (
          try [ Progress.file ?query_budget ?time_budget_s:time_budget f ]
          with Sys_error msg ->
            Printf.eprintf "error: cannot open --progress file: %s\n" msg;
            exit 1)
      | None -> [])
    @ (if metrics then [ Instr.stderr_summary () ] else [])
    @
    match heartbeat with
    | Some interval_s ->
        [ Heartbeat.sink ?budget_s:time_budget ~interval_s () ]
    | None -> []
  in
  Instr.set_sinks sinks;
  fun () ->
    Instr.flush_sinks ();
    Instr.set_sinks []

let case_pos =
  let doc = "Benchmark case name (see the list subcommand) or a circuit file path." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CASE" ~doc)

let resolve_box ~budget name =
  match Cases.find name with
  | spec -> (Cases.blackbox ?budget spec, Some (Cases.build spec))
  | exception Not_found ->
      if Sys.file_exists name then begin
        let golden =
          if Filename.check_suffix name ".blif" then
            Lr_netlist.Blif.read_file name
          else Io.read_file name
        in
        (Box.of_netlist ?budget golden, Some golden)
      end
      else failwith (Printf.sprintf "unknown case or file: %s" name)

(* ---------- learn ---------- *)

let describe_matches oc m =
  List.iter
    (fun l ->
      let terms =
        String.concat " + "
          (List.map
             (fun (a, v) -> Printf.sprintf "%d*%s" a v.G.base)
             l.T.terms)
      in
      Printf.fprintf oc "  linear:      %s = %s + %d\n" l.T.z.G.base terms
        l.T.offset)
    m.T.linears;
  List.iter
    (fun c ->
      let rhs =
        match c.T.rhs with
        | T.Vec v -> v.G.base
        | T.Const k -> string_of_int k
      in
      Printf.fprintf oc "  comparator:  PO %d = (%s %s %s)%s\n" c.T.po
        c.T.lhs.G.base
        (T.op_to_string c.T.cmp_op)
        rhs
        (match c.T.prop_cube with
        | None -> ""
        | Some _ -> "   [hidden: via propagation cube]"))
    m.T.comparators

let json_of_run ~case ~seed ~time_budget ~eval_patterns ~accuracy ~faults
    report =
  let c = report.Learner.circuit in
  let stats = N.stats c in
  let gc_fields name =
    match List.assoc_opt name report.Learner.phase_gc with
    | Some g -> ( match Gcstat.to_json g with Json.Obj l -> l | _ -> [])
    | None -> []
  in
  let retries_of name =
    match List.assoc_opt name report.Learner.phase_retries with
    | Some r -> r
    | None -> 0
  in
  let phases =
    List.map
      (fun (name, seconds) ->
        let queries =
          match List.assoc_opt name report.Learner.phase_queries with
          | Some q -> q
          | None -> 0
        in
        Json.Obj
          ([
             ("name", Json.String name);
             ("seconds", Json.Float seconds);
             ("queries", Json.Int queries);
             ("retries", Json.Int (retries_of name));
           ]
          @ gc_fields name))
      report.Learner.phase_times
    @
    match List.assoc_opt "other" report.Learner.phase_queries with
    | Some q ->
        [
          Json.Obj
            [
              ("name", Json.String "other");
              ("seconds", Json.Float 0.0);
              ("queries", Json.Int q);
              ("retries", Json.Int (retries_of "other"));
            ];
        ]
    | None -> []
  in
  let outputs =
    List.map
      (fun r ->
        Json.Obj
          [
            ("name", Json.String r.Learner.output_name);
            ( "method",
              Json.String (Learner.method_to_string r.Learner.method_used) );
            ("support", Json.Int r.Learner.support_size);
            ("cubes", Json.Int r.Learner.cubes);
            ("used_offset", Json.Bool r.Learner.used_offset);
            ("complete", Json.Bool r.Learner.complete);
            ("compressed", Json.Bool r.Learner.compressed);
          ])
      report.Learner.outputs
  in
  Json.Obj
    [
      ("schema", Json.String "lr-run-report/v1");
      ("case", Json.String case);
      ("seed", Json.Int seed);
      ("inputs", Json.Int (N.num_inputs c));
      ("outputs", Json.Int (N.num_outputs c));
      ("size", Json.Int (N.size c));
      ("inverters", Json.Int stats.N.inverters);
      ("depth", Json.Int stats.N.depth);
      ("queries", Json.Int report.Learner.queries);
      ("elapsed_s", Json.Float report.Learner.elapsed_s);
      ( "accuracy",
        match accuracy with Some a -> Json.Float a | None -> Json.Null );
      ("eval_patterns", Json.Int eval_patterns);
      ( "time_budget_s",
        match time_budget with Some b -> Json.Float b | None -> Json.Null );
      ("budget_exceeded", Json.Bool report.Learner.budget_exceeded);
      ( "faults",
        match faults with
        | Some s -> Json.String (Faults.to_string s)
        | None -> Json.Null );
      ( "faults_seen",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Int v)) report.Learner.faults_seen)
      );
      ("retries", Json.Int report.Learner.retries);
      ("degraded", Json.Int report.Learner.degraded);
      ( "check_level",
        Json.String (Config.check_level_string report.Learner.check_level) );
      ("checks_verified", Json.Int report.Learner.checks_verified);
      ("sweep_removed", Json.Int report.Learner.sweep_removed);
      ( "lint_findings",
        Json.List (List.map Finding.json report.Learner.lint_findings) );
      ("query_latency", Histogram.summary_to_json report.Learner.query_latency);
      ("jobs", Json.Int report.Learner.jobs);
      ( "domains",
        Json.List
          (List.map
             (fun (d, phases) ->
               Json.Obj
                 [
                   ("domain", Json.Int d);
                   ( "phases",
                     Json.Obj
                       (List.map (fun (n, s) -> (n, Json.Float s)) phases) );
                 ])
             report.Learner.domain_times) );
      ("phases", Json.List phases);
      ("outputs_detail", Json.List outputs);
    ]

let print_phase_breakdown oc report =
  let total_q = max 1 report.Learner.queries in
  Printf.fprintf oc "per-phase:\n";
  List.iter
    (fun (name, seconds) ->
      let queries =
        match List.assoc_opt name report.Learner.phase_queries with
        | Some q -> q
        | None -> 0
      in
      Printf.fprintf oc "  %-12s %8.3f s %10d queries (%5.1f%%)\n" name seconds
        queries
        (100.0 *. float_of_int queries /. float_of_int total_q))
    report.Learner.phase_times;
  match List.assoc_opt "other" report.Learner.phase_queries with
  | Some q when q > 0 ->
      Printf.fprintf oc "  %-12s %8s   %10d queries (%5.1f%%)\n" "other" "-" q
        (100.0 *. float_of_int q /. float_of_int total_q)
  | _ -> ()

let learn_run case preset seed budget eval_patterns support_rounds no_templates
    no_grouping out trace trace_jsonl progress metrics metrics_out json history
    heartbeat time_budget check sweep jobs kernel faults retry_attempts
    retry_backoff listen alerts log_level log_file =
  (* structured logging is on for the CLI (stderr, human format) so the
     library's warn/error records — and fatal argument errors — have a
     sink from the first line on *)
  Log.set_level log_level;
  Log.set_sinks [ Log.stderr_sink () ];
  (match log_file with
  | None -> ()
  | Some path -> (
      try Log.add_sink (Log.ndjson_file path)
      with Sys_error msg ->
        Log.error ~fields:[ Log.str "file" msg ] "cannot open --log file";
        exit 1));
  let die fmt =
    Printf.ksprintf
      (fun m ->
        Log.error m;
        exit 1)
      fmt
  in
  let fault_spec =
    match faults with
    | None -> None
    | Some arg -> (
        match Faults.load arg with
        | Ok spec -> Some spec
        | Error msg -> die "bad --faults: %s" msg)
  in
  let alerts_engine =
    match alerts with
    | None -> None
    | Some arg -> (
        match Alerts.load arg with
        | Ok spec ->
            Some
              (Alerts.create ?query_budget:budget ?time_budget_s:time_budget
                 spec)
        | Error msg -> die "bad --alerts: %s" msg)
  in
  if retry_attempts < 1 then die "--retry must be >= 1";
  let config =
    {
      preset with
      Config.seed;
      use_templates = preset.Config.use_templates && not no_templates;
      use_grouping = preset.Config.use_grouping && not no_grouping;
      support_rounds =
        Option.value support_rounds ~default:preset.Config.support_rounds;
      time_budget_s = time_budget;
      check_level = check;
      sweep;
      jobs;
      kernel;
      retry = Faults.retry ~backoff_s:retry_backoff retry_attempts;
      faults = fault_spec;
    }
  in
  let box, golden = resolve_box ~budget case in
  let json_oc =
    match json with
    | Some "-" | None -> None
    | Some path -> Some (open_out_or_die ~flag:"--json" path)
  in
  let finish_sinks =
    setup_sinks ?heartbeat ?time_budget ?query_budget:budget ~trace
      ~trace_jsonl ~progress ~metrics ()
  in
  (match alerts_engine with
  | Some engine -> Instr.add_sink (Alerts.sink engine)
  | None -> ());
  let server =
    match listen with
    | None -> None
    | Some p -> (
        let state =
          Server.create_state ?query_budget:budget ?time_budget_s:time_budget
            ()
        in
        match Server.start ~port:p state with
        | Error e -> die "--listen: %s" e
        | Ok srv ->
            Instr.add_sink (Server.observer state);
            Instr.add_sink
              (Server.metrics_sink
                 ~render:(fun () -> Metrics.render (Metrics.of_instr ()))
                 state);
            Instr.add_sink
              (Progress.sink ~out:(Server.progress_out state)
                 ?query_budget:budget ?time_budget_s:time_budget ());
            Log.add_sink (Server.log_sink state);
            Log.info
              ~fields:[ Log.int "port" (Server.port srv) ]
              "observability server listening on 127.0.0.1";
            Some (state, srv))
  in
  let report =
    try Learner.learn ~config box
    with Lr_check.Selfcheck.Check_failed _ as e ->
      finish_sinks ();
      (match server with
      | Some (state, srv) ->
          Server.mark_done state;
          Server.stop srv
      | None -> ());
      Log.error (Printexc.to_string e);
      exit 2
  in
  finish_sinks ();
  (* the run is over: complete streaming /progress clients, keep serving
     final /metrics and /healthz until artifacts are written *)
  (match server with Some (state, _) -> Server.mark_done state | None -> ());
  let c = report.Learner.circuit in
  (* when an artifact streams to stdout, the human summary moves to
     stderr so the JSON stays parseable *)
  let hout =
    if
      json = Some "-" || trace = Some "-" || trace_jsonl = Some "-"
      || progress = Some "-"
    then stderr
    else stdout
  in
  Printf.fprintf hout "learned %s: %d PI, %d PO\n" case (N.num_inputs c)
    (N.num_outputs c);
  Printf.fprintf hout "  size:    %d two-input gates (+%d inverters), depth %d\n"
    (N.size c) (N.stats c).N.inverters (N.stats c).N.depth;
  Printf.fprintf hout "  queries: %d\n" report.Learner.queries;
  Printf.fprintf hout "  time:    %.2f s\n" report.Learner.elapsed_s;
  if report.Learner.jobs > 1 then
    Printf.fprintf hout "  jobs:    %d worker domains\n" report.Learner.jobs;
  if report.Learner.budget_exceeded then
    Printf.fprintf hout
      "  NOTE: time budget exceeded, remaining work was skipped\n";
  (match config.Config.faults with
  | Some spec ->
      Printf.fprintf hout "  faults:  %s\n" (Faults.to_string spec);
      Printf.fprintf hout "  seen:    %s, %d retried\n"
        (String.concat ", "
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=%d" k v)
              report.Learner.faults_seen))
        report.Learner.retries
  | None -> ());
  if report.Learner.degraded > 0 then
    Printf.fprintf hout
      "  NOTE: %d output(s) degraded to constants after unrecoverable \
       query faults\n"
      report.Learner.degraded;
  (match alerts_engine with
  | Some engine ->
      Printf.fprintf hout "  alerts:  %d rule(s) fired\n"
        (Alerts.total_fired engine)
  | None -> ());
  print_phase_breakdown hout report;
  (match report.Learner.matches with
  | Some m when m.T.linears <> [] || m.T.comparators <> [] ->
      Printf.fprintf hout "templates matched:\n";
      describe_matches hout m
  | _ -> ());
  Printf.fprintf hout "per-output methods:\n";
  List.iter
    (fun r ->
      Printf.fprintf hout "  %-12s %-20s support=%-3d cubes=%-5d%s%s\n"
        r.Learner.output_name
        (Learner.method_to_string r.Learner.method_used)
        r.Learner.support_size r.Learner.cubes
        (if r.Learner.compressed then " [compressed]" else "")
        (if r.Learner.complete then "" else " [budget-truncated]"))
    report.Learner.outputs;
  if report.Learner.sweep_removed > 0 then
    Printf.fprintf hout "sweep:   %d gate(s) removed\n"
      report.Learner.sweep_removed;
  (match report.Learner.check_level with
  | Config.Off -> ()
  | lvl ->
      Printf.fprintf hout "checks:  %s, %d verified, lint: %d warning(s)\n"
        (Config.check_level_string lvl)
        report.Learner.checks_verified
        (Finding.count Finding.Warning report.Learner.lint_findings);
      List.iter
        (fun f -> Printf.fprintf hout "  %s\n" (Finding.to_string f))
        report.Learner.lint_findings);
  let accuracy =
    match golden with
    | Some golden ->
        let acc =
          Eval.accuracy ~count:eval_patterns ~rng:(Rng.create (seed + 7919))
            ~golden ~candidate:c ()
        in
        Printf.fprintf hout "accuracy: %.4f%% on %d patterns\n" (100.0 *. acc)
          eval_patterns;
        Some (100.0 *. acc)
    | None -> None
  in
  (if json <> None || history <> None then
     let report_json =
       json_of_run ~case ~seed ~time_budget ~eval_patterns ~accuracy
         ~faults:fault_spec report
     in
     (* the alerts section only exists when --alerts armed the engine,
        so unarmed runs keep the exact lr-run-report/v1 key set *)
     let report_json =
       match (alerts_engine, report_json) with
       | Some engine, Json.Obj kvs ->
           Json.Obj (kvs @ [ ("alerts", Alerts.report_json engine) ])
       | _ -> report_json
     in
     (match (json, json_oc) with
     | Some "-", _ -> print_endline (Json.to_string report_json)
     | Some path, Some oc ->
         output_string oc (Json.to_string report_json);
         output_string oc "\n";
         close_out oc;
         Printf.fprintf hout "json report written to %s\n" path
     | _ -> ());
     match history with
     | Some path ->
         History.append path report_json;
         Printf.fprintf hout "run appended to history %s\n" path
     | None -> ());
  (match metrics_out with
  | Some path ->
      let run_fams =
        [
          {
            Metrics.name = "lr_run_queries_total";
            help = "Black-box queries issued by this run.";
            kind = `Counter;
            samples = [ ([], float_of_int report.Learner.queries) ];
          };
          {
            Metrics.name = "lr_run_elapsed_seconds";
            help = "Learner wall-clock for this run.";
            kind = `Gauge;
            samples = [ ([], report.Learner.elapsed_s) ];
          };
          {
            Metrics.name = "lr_run_gates";
            help = "Two-input gates in the learned circuit.";
            kind = `Gauge;
            samples = [ ([], float_of_int (N.size c)) ];
          };
          {
            Metrics.name = "lr_run_retries_total";
            help = "Query batches retried under fault injection.";
            kind = `Counter;
            samples = [ ([], float_of_int report.Learner.retries) ];
          };
          {
            Metrics.name = "lr_run_degraded_total";
            help = "Outputs degraded to constants by query faults.";
            kind = `Counter;
            samples = [ ([], float_of_int report.Learner.degraded) ];
          };
          {
            Metrics.name = "lr_run_accuracy_percent";
            help = "Scored accuracy against the golden circuit.";
            kind = `Gauge;
            samples =
              [ ([], match accuracy with Some a -> a | None -> Float.nan) ];
          };
        ]
      in
      Metrics.write_file path
        (Metrics.of_instr ~latency:report.Learner.query_latency ~extra:run_fams
           ());
      Printf.fprintf hout "metrics written to %s\n" path
  | None -> ());
  (match trace with
  | Some "-" | None -> ()
  | Some path -> Printf.fprintf hout "trace written to %s\n" path);
  (match trace_jsonl with
  | Some "-" | None -> ()
  | Some path -> Printf.fprintf hout "jsonl trace written to %s\n" path);
  (match progress with
  | Some "-" | None -> ()
  | Some path -> Printf.fprintf hout "progress stream written to %s\n" path);
  (match out with
  | Some path ->
      Io.write_file c path;
      Printf.fprintf hout "written to %s\n" path
  | None -> ());
  (match server with Some (_, srv) -> Server.stop srv | None -> ());
  Log.flush ();
  (* all artifacts are written first: a degraded run is still a run, the
     distinct exit code just refuses to pass for a healthy one *)
  if report.Learner.degraded > 0 then 3 else 0

let learn_cmd =
  let doc = "learn a circuit from a black-box case" in
  Cmd.v
    (Cmd.info "learn" ~doc)
    Term.(
      const learn_run $ case_pos $ preset_arg $ seed_arg $ budget_arg
      $ eval_arg $ support_rounds_arg $ no_templates_arg $ no_grouping_arg
      $ out_arg $ trace_arg $ trace_jsonl_arg $ progress_arg $ metrics_arg
      $ metrics_out_arg $ json_arg $ history_arg $ heartbeat_arg
      $ time_budget_arg $ check_arg $ sweep_arg $ jobs_arg $ kernel_arg
      $ faults_arg $ retry_arg $ retry_backoff_arg $ listen_arg $ alerts_arg
      $ log_level_arg $ log_file_arg)

(* ---------- baseline ---------- *)

let baseline_conv = Arg.enum [ ("sop", `Sop); ("id3", `Id3) ]

let baseline_arg =
  let doc = "Baseline family: sampled-SOP memorizer or ID3 tree." in
  Arg.(value & opt baseline_conv `Id3 & info [ "method" ] ~doc)

let baseline_run case method_ seed budget eval_patterns =
  let box, golden = resolve_box ~budget case in
  let rng = Rng.create seed in
  let t0 = Unix.gettimeofday () in
  let c =
    match method_ with
    | `Sop -> Baselines.sop_memorizer ~rng box
    | `Id3 -> Baselines.id3_tree ~rng box
  in
  Printf.printf "baseline %s on %s: size=%d queries=%d time=%.2fs\n"
    (match method_ with `Sop -> "sop" | `Id3 -> "id3")
    case (N.size c) (Box.queries_used box)
    (Unix.gettimeofday () -. t0);
  (match golden with
  | Some golden ->
      let acc =
        Eval.accuracy ~count:eval_patterns ~rng:(Rng.create (seed + 7919))
          ~golden ~candidate:c ()
      in
      Printf.printf "accuracy: %.4f%%\n" (100.0 *. acc)
  | None -> ());
  0

let baseline_cmd =
  let doc = "run a contestant-style baseline learner" in
  Cmd.v
    (Cmd.info "baseline" ~doc)
    Term.(
      const baseline_run $ case_pos $ baseline_arg $ seed_arg $ budget_arg
      $ eval_arg)

(* ---------- list ---------- *)

let list_run () =
  Printf.printf "%-8s %-4s %4s %4s %s\n" "name" "type" "#PI" "#PO" "hidden";
  List.iter
    (fun s ->
      Printf.printf "%-8s %-4s %4d %4d %s\n" s.Cases.name
        (Cases.category_to_string s.Cases.category)
        s.Cases.num_inputs s.Cases.num_outputs
        (if s.Cases.hidden then "*" else ""))
    Cases.specs;
  0

let list_cmd =
  let doc = "list the 20 benchmark cases (Table II)" in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list_run $ const ())

(* ---------- score ---------- *)

let candidate_pos =
  let doc = "Learned circuit file." in
  Arg.(required & pos 1 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

let score_run case candidate seed eval_patterns =
  let _, golden = resolve_box ~budget:None case in
  match golden with
  | None -> failwith "no golden circuit available"
  | Some golden ->
      let c = Io.read_file candidate in
      let acc =
        Eval.accuracy ~count:eval_patterns ~rng:(Rng.create (seed + 7919))
          ~golden ~candidate:c ()
      in
      Printf.printf "size=%d accuracy=%.4f%%\n" (N.size c) (100.0 *. acc);
      0

let score_cmd =
  let doc = "score a learned circuit against a case's golden circuit" in
  Cmd.v
    (Cmd.info "score" ~doc)
    Term.(const score_run $ case_pos $ candidate_pos $ seed_arg $ eval_arg)

(* ---------- cec ---------- *)

let circuit_pos k =
  let doc = "Circuit file (text netlist format)." in
  Arg.(required & pos k (some string) None & info [] ~docv:"CIRCUIT" ~doc)

let cec_run path1 path2 =
  let c1 = Io.read_file path1 and c2 = Io.read_file path2 in
  match Lr_aig.Equiv.check c1 c2 with
  | Lr_aig.Equiv.Equivalent ->
      print_endline "EQUIVALENT";
      0
  | Lr_aig.Equiv.Counterexample cex ->
      Printf.printf "NOT EQUIVALENT\ncounterexample inputs (MSB..LSB): %s\n"
        (Lr_bitvec.Bv.to_string cex);
      1

let cec_cmd =
  let doc = "prove or refute combinational equivalence of two circuits" in
  Cmd.v (Cmd.info "cec" ~doc) Term.(const cec_run $ circuit_pos 0 $ circuit_pos 1)

(* ---------- export ---------- *)

let format_conv =
  Arg.enum
    [ ("verilog", `Verilog); ("aiger", `Aiger); ("blif", `Blif); ("dot", `Dot) ]

let format_arg =
  let doc = "Output format: structural Verilog, ASCII AIGER, BLIF, or Graphviz dot." in
  Arg.(value & opt format_conv `Verilog & info [ "format" ] ~doc)

let export_out =
  let doc = "Destination file." in
  Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc)

let export_run case format out =
  let golden =
    match Cases.find case with
    | spec -> Cases.build spec
    | exception Not_found -> Io.read_file case
  in
  (match format with
  | `Verilog -> Lr_netlist.Verilog.write_file golden out
  | `Blif -> Lr_netlist.Blif.write_file golden out
  | `Dot -> Lr_netlist.Dot.write_file golden out
  | `Aiger ->
      Lr_aig.Aiger.write_file
        ~comment:(Printf.sprintf "exported from %s" case)
        (Lr_aig.Aig.of_netlist golden) out);
  Printf.printf "written %s\n" out;
  0

let export_cmd =
  let doc = "export a case or circuit file to Verilog or AIGER" in
  Cmd.v
    (Cmd.info "export" ~doc)
    Term.(const export_run $ case_pos $ format_arg $ export_out)

let main =
  let doc = "circuit learning for logic regression (DAC 2020 reproduction)" in
  Cmd.group
    (Cmd.info "logic_regression" ~doc)
    [ learn_cmd; baseline_cmd; list_cmd; score_cmd; cec_cmd; export_cmd ]

let () = exit (Cmd.eval' main)
