(* Run-history and regression-gate front end:

     lr_report record  report.json --history runs.jsonl
     lr_report compare old.json new.json
     lr_report check   old.json new.json --max-gate-regress 5% \
                       --min-accuracy 99.99

   [record] appends a run/bench report to a JSONL history file;
   [compare] prints a per-case delta table between two reports (or the
   last two history entries); [check] additionally applies thresholds
   and exits nonzero on a regression — the gate CI and perf PRs run
   against a committed baseline. *)

module Json = Lr_instr.Json
module Compare = Lr_report.Compare
module History = Lr_report.History

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let die fmt = Printf.ksprintf (fun m -> Printf.eprintf "error: %s\n" m; exit 2) fmt

let load_report path =
  let text =
    try read_file path with Sys_error m -> die "cannot read %s: %s" path m
  in
  match Json.of_string (String.trim text) with
  | Ok v -> v
  | Error e -> die "%s: %s" path e

let entries ?case ?method_ path =
  match Compare.entries_of_report (load_report path) with
  | Ok l -> Compare.filter ?case ?method_ l
  | Error e -> die "%s: %s" path e

(* ---------- shared args ---------- *)

let history_arg =
  let doc = "JSONL history file (see the record subcommand)." in
  Arg.(
    required
    & opt (some string) None
    & info [ "history" ] ~docv:"FILE" ~doc)

let case_filter_arg =
  let doc = "Only consider entries of this case." in
  Arg.(value & opt (some string) None & info [ "case" ] ~docv:"CASE" ~doc)

let method_filter_arg =
  let doc =
    "Only consider entries of this method (bench reports: contest, sop, \
     id3, improved)."
  in
  Arg.(value & opt (some string) None & info [ "method" ] ~docv:"METHOD" ~doc)

let old_pos =
  let doc = "Baseline report (JSON file)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD" ~doc)

let new_pos =
  let doc = "Candidate report (JSON file)." in
  Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW" ~doc)

(* ---------- record ---------- *)

let record_run report history =
  let v = load_report report in
  (match Option.bind (Json.member "schema" v) Json.get_string with
  | Some ("lr-run-report/v1" | "lr-bench-report/v1") -> ()
  | Some s -> die "%s: unknown report schema %s" report s
  | None -> die "%s: missing schema field" report);
  History.append history v;
  Printf.printf "recorded %s into %s (%d entries)\n" report history
    (History.entry_count history);
  0

let record_cmd =
  let doc = "append a run/bench report to a JSONL history file" in
  let report_pos =
    let doc = "Report to record (JSON file)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"REPORT" ~doc)
  in
  Cmd.v (Cmd.info "record" ~doc) Term.(const record_run $ report_pos $ history_arg)

(* ---------- compare ---------- *)

let print_comparison deltas only_old only_new =
  print_string (Compare.render_table deltas);
  if only_old <> [] then
    Printf.printf "only in OLD: %s\n" (String.concat " " only_old);
  if only_new <> [] then
    Printf.printf "only in NEW: %s\n" (String.concat " " only_new);
  if deltas = [] then print_endline "no common entries to compare"

let compare_run old_path new_path case method_ =
  let deltas, only_old, only_new =
    Compare.join (entries ?case ?method_ old_path) (entries ?case ?method_ new_path)
  in
  print_comparison deltas only_old only_new;
  0

let compare_cmd =
  let doc = "print a per-case delta table between two reports" in
  Cmd.v
    (Cmd.info "compare" ~doc)
    Term.(
      const compare_run $ old_pos $ new_pos $ case_filter_arg
      $ method_filter_arg)

(* ---------- check ---------- *)

let fraction_conv =
  let parse s =
    match Compare.parse_fraction s with
    | Ok f -> Ok f
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun ppf f -> Format.fprintf ppf "%g" f)

let max_gate_arg =
  let doc =
    "Fail when any entry's gate count grows by more than this fraction \
     (accepts 5% or 0.05)."
  in
  Arg.(
    value
    & opt (some fraction_conv) None
    & info [ "max-gate-regress" ] ~docv:"FRAC" ~doc)

let min_accuracy_arg =
  let doc = "Fail when any entry's new accuracy is below this percentage." in
  Arg.(
    value
    & opt (some float) None
    & info [ "min-accuracy" ] ~docv:"PERCENT" ~doc)

let max_time_arg =
  let doc =
    "Fail when any entry's time grows by more than this fraction (plus \
     0.1s of jitter slack; accepts 50% or 0.5)."
  in
  Arg.(
    value
    & opt (some fraction_conv) None
    & info [ "max-time-regress" ] ~docv:"FRAC" ~doc)

(* Alert firings recorded in a report: run reports carry an "alerts"
   object with a "fired" total, bench reports a flat "alerts_fired". *)
let alerts_fired_of_report report =
  match Option.bind (Json.member "alerts" report) (Json.member "fired") with
  | Some v -> Option.value ~default:0 (Json.get_int v)
  | None ->
      Option.value ~default:0
        (Option.bind (Json.member "alerts_fired" report) Json.get_int)

let check_run old_path new_path case method_ max_gate min_acc max_time
    deny_alerts =
  (* refuse cross-parallelism comparisons outright: the time columns
     would not be like for like *)
  let old_report = load_report old_path and new_report = load_report new_path in
  let old_jobs = Compare.jobs_of_report old_report
  and new_jobs = Compare.jobs_of_report new_report in
  if old_jobs <> new_jobs then
    die
      "jobs mismatch: %s ran with jobs=%d, %s with jobs=%d — record a \
       baseline at the same parallelism level"
      old_path old_jobs new_path new_jobs;
  (* the alert gate runs before the degraded refusal: a fault-injected
     run that fired its rules should report the firing (exit 1), not be
     rejected as an unusable baseline (exit 2) *)
  if deny_alerts then begin
    let fired =
      List.filter_map
        (fun (path, report) ->
          match alerts_fired_of_report report with
          | 0 -> None
          | n -> Some (path, n))
        [ (old_path, old_report); (new_path, new_report) ]
    in
    match fired with
    | [] -> ()
    | fired ->
        List.iter
          (fun (path, n) ->
            Printf.printf "ALERTS: %s fired %d alert(s)\n" path n)
          fired;
        print_endline "check failed: alerts fired (--deny-alerts)";
        exit 1
  end;
  (* likewise refuse degraded runs: outputs emitted as best-effort
     constants after query faults make size/accuracy incomparable *)
  List.iter
    (fun (path, report) ->
      let d = Compare.degraded_of_report report in
      if d > 0 then
        die
          "%s is a degraded run (%d output(s) gave up on query faults) — \
           record a fault-free baseline before gating"
          path d)
    [ (old_path, old_report); (new_path, new_report) ];
  (* and warm-cache lr_serve reports: their elapsed time measures a
     cache lookup, not a learn *)
  List.iter
    (fun (path, report) ->
      if Compare.cache_hit_of_report report then
        die
          "%s was served from the lr_serve circuit cache — gate against a \
           cold-cache (cache_hit=false) report"
          path)
    [ (old_path, old_report); (new_path, new_report) ];
  let deltas, only_old, only_new =
    Compare.join (entries ?case ?method_ old_path) (entries ?case ?method_ new_path)
  in
  print_comparison deltas only_old only_new;
  let thresholds =
    {
      Compare.max_gate_regress = max_gate;
      min_accuracy = min_acc;
      max_time_regress = max_time;
    }
  in
  match Compare.violations thresholds deltas with
  | [] ->
      Printf.printf "check passed (%d entries compared)\n" (List.length deltas);
      0
  | vs ->
      List.iter (fun v -> Printf.printf "REGRESSION: %s\n" v) vs;
      Printf.printf "check failed: %d regression(s)\n" (List.length vs);
      (* most gate failures against the committed baseline are stale
         baselines, not real regressions — say how to refresh it *)
      if Filename.basename old_path = "baseline.json" then
        Printf.printf
          "if the new numbers are intended, regenerate the baseline with:\n\
          \  dune exec bench/main.exe -- regen-baseline\n";
      1

let deny_alerts_arg =
  let doc =
    "Fail (exit 1) when either report recorded fired alert rules (a run \
     report's alerts section, or a bench report's alerts_fired count)."
  in
  Arg.(value & flag & info [ "deny-alerts" ] ~doc)

let check_cmd =
  let doc = "compare two reports and exit nonzero on a regression" in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const check_run $ old_pos $ new_pos $ case_filter_arg
      $ method_filter_arg $ max_gate_arg $ min_accuracy_arg $ max_time_arg
      $ deny_alerts_arg)

(* ---------- log ---------- *)

let log_run history =
  match History.load history with
  | Error e -> die "%s" e
  | Ok records ->
      List.iteri
        (fun i v ->
          let s k =
            match Option.bind (Json.member k v) Json.get_string with
            | Some x -> x
            | None -> "-"
          in
          Printf.printf "%4d  %-20s %s\n" i (s "schema") (s "case"))
        records;
      0

let log_cmd =
  let doc = "list the entries of a history file" in
  Cmd.v (Cmd.info "log" ~doc) Term.(const log_run $ history_arg)

let main =
  let doc = "run-history store and bench regression gate" in
  Cmd.group (Cmd.info "lr_report" ~doc) [ record_cmd; compare_cmd; check_cmd; log_cmd ]

let () = exit (Cmd.eval' main)
