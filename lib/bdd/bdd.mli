(** Reduced ordered binary decision diagrams.

    A hash-consed ROBDD package over a fixed variable universe, with the
    usual apply operators and the Minato–Morreale irredundant SOP (ISOP)
    extraction. In the reproduction it plays the role of ABC's [collapse]:
    a learned (or exactly enumerated) function is collapsed to a BDD and
    re-expanded to an irredundant cover before structural synthesis.

    A manager fixes the variable count; nodes belong to their manager.
    The variable order is the identity (variable 0 at the top). *)

type man
(** Node manager: unique table + operation caches. *)

type node
(** A BDD node handle (valid within its manager). *)

val man : nvars:int -> man
val nvars : man -> int

val zero : man -> node
val one : man -> node
val var : man -> int -> node
(** [var m i] — the function of variable [i]. *)

val nvar : man -> int -> node
(** Complement of [var]. *)

val not_ : man -> node -> node
val and_ : man -> node -> node -> node
val or_ : man -> node -> node -> node
val xor_ : man -> node -> node -> node
val ite : man -> node -> node -> node -> node

val equal : node -> node -> bool
val is_const : man -> node -> bool option
(** [Some b] for a terminal, [None] otherwise. *)

val cofactor : man -> node -> int -> bool -> node

val of_cube : man -> Lr_cube.Cube.t -> node
val of_cover : man -> Lr_cube.Cover.t -> node

val of_truth_table : man -> vars:int array -> (int -> bool) -> node
(** [of_truth_table m ~vars f] builds the function whose value on an
    assignment is [f minterm], where bit [j] of [minterm] is the value of
    variable [vars.(j)]. [vars] must be strictly increasing; variables
    outside [vars] are don't-cares. Linear in [2^|vars|]. *)

val eval : man -> node -> Lr_bitvec.Bv.t -> bool

val support : man -> node -> int list

val size : man -> node -> int
(** Number of distinct internal nodes reachable from the root. *)

val count_minterms : man -> node -> float
(** Number of satisfying assignments over the full universe. *)

val isop : man -> node -> Lr_cube.Cover.t
(** Irredundant sum-of-products of the function (Minato–Morreale, with the
    lower and upper bound both equal to the function). *)

val isop_between : man -> lower:node -> upper:node -> Lr_cube.Cover.t
(** ISOP of any function [f] with [lower <= f <= upper]; the don't-care
    flexibility usually yields fewer cubes. Requires [lower -> upper]. *)

val isop_bounded :
  man -> max_cubes:int -> lower:node -> upper:node -> Lr_cube.Cover.t option
(** Like {!isop_between} but gives up (returns [None]) as soon as more than
    [max_cubes] cubes have been produced — parity-like functions have tiny
    BDDs yet exponential SOPs, and callers need to detect that cheaply. *)

(** {2 Structure access}

    For synthesising a BDD directly as a multiplexer network (the compact
    realisation when the SOP explodes). Terminals have no variable or
    children. *)

val node_id : node -> int
(** Stable id, usable as a hash key within one manager. *)

val top_var : man -> node -> int option
(** Branching variable; [None] on terminals. *)

val low : man -> node -> node
val high : man -> node -> node
(** Children; fail on terminals. *)

(** {2 Telemetry} *)

val num_nodes : man -> int
(** Internal nodes hash-consed into this manager so far (terminals
    excluded) — a measure of total BDD work, monotone over the
    manager's lifetime. *)

val cache_hits : man -> int
(** Hits in the apply caches (and/xor/not/ite) so far. *)

val record_counters : man -> unit
(** Emit [bdd.nodes] and [bdd.cache-hits] counters for this manager to
    {!Lr_instr.Instr} (attributed to the current span). Call once when
    done with a manager; calling repeatedly double-counts. *)
