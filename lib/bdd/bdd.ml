module Bv = Lr_bitvec.Bv
module Cube = Lr_cube.Cube
module Cover = Lr_cube.Cover

type node = int
(* Node 0 is the constant false, node 1 the constant true. Internal nodes
   live in the parallel arrays below; [level] equals [nvars] on terminals
   so variable comparisons need no special-casing. *)

type man = {
  nv : int;
  mutable level : int array; (* variable index of each node *)
  mutable low : node array;
  mutable high : node array;
  mutable len : int;
  unique : (int * node * node, node) Hashtbl.t;
  and_cache : (node * node, node) Hashtbl.t;
  xor_cache : (node * node, node) Hashtbl.t;
  not_cache : (node, node) Hashtbl.t;
  ite_cache : (node * node * node, node) Hashtbl.t;
  mutable cache_hits : int;  (* apply-cache hits, for telemetry *)
}

let man ~nvars =
  let m =
    {
      nv = nvars;
      level = Array.make 16 nvars;
      low = Array.make 16 0;
      high = Array.make 16 0;
      len = 2;
      unique = Hashtbl.create 4096;
      and_cache = Hashtbl.create 4096;
      xor_cache = Hashtbl.create 4096;
      not_cache = Hashtbl.create 4096;
      ite_cache = Hashtbl.create 4096;
      cache_hits = 0;
    }
  in
  m.level.(0) <- nvars;
  m.level.(1) <- nvars;
  m

let nvars m = m.nv
let zero _ = 0
let one _ = 1

let mk m v lo hi =
  if lo = hi then lo
  else
    match Hashtbl.find_opt m.unique (v, lo, hi) with
    | Some n -> n
    | None ->
        if m.len = Array.length m.level then begin
          let cap = 2 * m.len in
          let extend a fill =
            let b = Array.make cap fill in
            Array.blit a 0 b 0 m.len;
            b
          in
          m.level <- extend m.level m.nv;
          m.low <- extend m.low 0;
          m.high <- extend m.high 0
        end;
        let n = m.len in
        m.level.(n) <- v;
        m.low.(n) <- lo;
        m.high.(n) <- hi;
        m.len <- m.len + 1;
        Hashtbl.replace m.unique (v, lo, hi) n;
        n

let var m i =
  if i < 0 || i >= m.nv then invalid_arg "Bdd.var: index out of range";
  mk m i 0 1

let nvar m i =
  if i < 0 || i >= m.nv then invalid_arg "Bdd.nvar: index out of range";
  mk m i 1 0

let rec not_ m n =
  if n = 0 then 1
  else if n = 1 then 0
  else
    match Hashtbl.find_opt m.not_cache n with
    | Some r ->
        m.cache_hits <- m.cache_hits + 1;
        r
    | None ->
        let r = mk m m.level.(n) (not_ m m.low.(n)) (not_ m m.high.(n)) in
        Hashtbl.replace m.not_cache n r;
        r

let rec and_ m a b =
  if a = b then a
  else if a = 0 || b = 0 then 0
  else if a = 1 then b
  else if b = 1 then a
  else begin
    let key = if a < b then a, b else b, a in
    match Hashtbl.find_opt m.and_cache key with
    | Some r ->
        m.cache_hits <- m.cache_hits + 1;
        r
    | None ->
        let la = m.level.(a) and lb = m.level.(b) in
        let v = min la lb in
        let a0 = if la = v then m.low.(a) else a
        and a1 = if la = v then m.high.(a) else a
        and b0 = if lb = v then m.low.(b) else b
        and b1 = if lb = v then m.high.(b) else b in
        let r = mk m v (and_ m a0 b0) (and_ m a1 b1) in
        Hashtbl.replace m.and_cache key r;
        r
  end

let or_ m a b = not_ m (and_ m (not_ m a) (not_ m b))

let rec xor_ m a b =
  if a = b then 0
  else if a = 0 then b
  else if b = 0 then a
  else if a = 1 then not_ m b
  else if b = 1 then not_ m a
  else begin
    let key = if a < b then a, b else b, a in
    match Hashtbl.find_opt m.xor_cache key with
    | Some r ->
        m.cache_hits <- m.cache_hits + 1;
        r
    | None ->
        let la = m.level.(a) and lb = m.level.(b) in
        let v = min la lb in
        let a0 = if la = v then m.low.(a) else a
        and a1 = if la = v then m.high.(a) else a
        and b0 = if lb = v then m.low.(b) else b
        and b1 = if lb = v then m.high.(b) else b in
        let r = mk m v (xor_ m a0 b0) (xor_ m a1 b1) in
        Hashtbl.replace m.xor_cache key r;
        r
  end

let rec ite m f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else if g = 0 && h = 1 then not_ m f
  else
    match Hashtbl.find_opt m.ite_cache (f, g, h) with
    | Some r ->
        m.cache_hits <- m.cache_hits + 1;
        r
    | None ->
        let lev n = m.level.(n) in
        let v = min (lev f) (min (lev g) (lev h)) in
        let co n side =
          if lev n = v then if side then m.high.(n) else m.low.(n) else n
        in
        let r =
          mk m v
            (ite m (co f false) (co g false) (co h false))
            (ite m (co f true) (co g true) (co h true))
        in
        Hashtbl.replace m.ite_cache (f, g, h) r;
        r

let equal (a : node) (b : node) = a = b

let is_const _ n = if n = 0 then Some false else if n = 1 then Some true else None

let rec cofactor m n v b =
  if n < 2 || m.level.(n) > v then n
  else if m.level.(n) = v then if b then m.high.(n) else m.low.(n)
  else mk m m.level.(n) (cofactor m m.low.(n) v b) (cofactor m m.high.(n) v b)

let of_cube m c =
  if Cube.universe c <> m.nv then invalid_arg "Bdd.of_cube: universe mismatch";
  List.fold_left
    (fun acc (v, ph) -> and_ m acc (if ph then var m v else nvar m v))
    1 (Cube.literals c)

let of_cover m c =
  if Cover.universe c <> m.nv then
    invalid_arg "Bdd.of_cover: universe mismatch";
  List.fold_left (fun acc cb -> or_ m acc (of_cube m cb)) 0 (Cover.cubes c)

let of_truth_table m ~vars f =
  let k = Array.length vars in
  for j = 1 to k - 1 do
    if vars.(j - 1) >= vars.(j) then
      invalid_arg "Bdd.of_truth_table: vars must be strictly increasing"
  done;
  (* recursion from the top variable down; hash-consing in [mk] reduces *)
  let rec build j idx =
    if j = k then if f idx then 1 else 0
    else
      mk m vars.(j) (build (j + 1) idx) (build (j + 1) (idx lor (1 lsl j)))
  in
  build 0 0

let rec eval m n a =
  if n = 0 then false
  else if n = 1 then true
  else if Bv.get a m.level.(n) then eval m m.high.(n) a
  else eval m m.low.(n) a

let support m n =
  let seen = Hashtbl.create 64 and vars = Hashtbl.create 16 in
  let rec go n =
    if n >= 2 && not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      Hashtbl.replace vars m.level.(n) ();
      go m.low.(n);
      go m.high.(n)
    end
  in
  go n;
  Hashtbl.fold (fun v () acc -> v :: acc) vars [] |> List.sort compare

let size m n =
  let seen = Hashtbl.create 64 in
  let rec go n acc =
    if n < 2 || Hashtbl.mem seen n then acc
    else begin
      Hashtbl.replace seen n ();
      go m.high.(n) (go m.low.(n) (acc + 1))
    end
  in
  go n 0

let count_minterms m n =
  let cache = Hashtbl.create 64 in
  let rec go n =
    if n = 0 then 0.0
    else if n = 1 then Float.pow 2.0 (Float.of_int m.nv)
    else
      match Hashtbl.find_opt cache n with
      | Some r -> r
      | None ->
          (* each child count is over the full universe; halve for the
             decision made at this node *)
          let r = 0.5 *. (go m.low.(n) +. go m.high.(n)) in
          Hashtbl.replace cache n r;
          r
  in
  go n

(* Minato–Morreale ISOP: an irredundant cover of any f with L <= f <= U. *)
let isop_between m ~lower ~upper =
  if and_ m lower (not_ m upper) <> 0 then
    invalid_arg "Bdd.isop_between: lower not contained in upper";
  let cache = Hashtbl.create 256 in
  (* returns (bdd of the produced cover, cubes) *)
  let rec go l u =
    if l = 0 then 0, []
    else if u = 1 then 1, [ Cube.top m.nv ]
    else
      match Hashtbl.find_opt cache (l, u) with
      | Some r -> r
      | None ->
          let lev n = if n < 2 then m.nv else m.level.(n) in
          let v = min (lev l) (lev u) in
          let co n side =
            if lev n = v then if side then m.high.(n) else m.low.(n) else n
          in
          let l0 = co l false and l1 = co l true in
          let u0 = co u false and u1 = co u true in
          (* cubes that must carry literal ~v / v *)
          let g0, c0 = go (and_ m l0 (not_ m u1)) u0 in
          let g1, c1 = go (and_ m l1 (not_ m u0)) u1 in
          (* what remains to cover, free of v *)
          let l0' = and_ m l0 (not_ m g0) in
          let l1' = and_ m l1 (not_ m g1) in
          let gd, cd = go (or_ m l0' l1') (and_ m u0 u1) in
          let f =
            or_ m gd
              (or_ m
                 (and_ m (nvar m v) g0)
                 (and_ m (var m v) g1))
          in
          let cubes =
            List.map (fun c -> Cube.add c v false) c0
            @ List.map (fun c -> Cube.add c v true) c1
            @ cd
          in
          Hashtbl.replace cache (l, u) (f, cubes);
          f, cubes
  in
  let _, cubes = go lower upper in
  Cover.of_cubes m.nv cubes

let isop m n = isop_between m ~lower:n ~upper:n

exception Too_many_cubes

let isop_bounded m ~max_cubes ~lower ~upper =
  (* run the same recursion but bail out once the (memoised) cube count
     exceeds the budget; the per-call cube lists are shared, so counting
     the final list is not enough — count fresh production instead *)
  let produced = ref 0 in
  if and_ m lower (not_ m upper) <> 0 then
    invalid_arg "Bdd.isop_bounded: lower not contained in upper";
  let cache = Hashtbl.create 256 in
  let bump k =
    produced := !produced + k;
    if !produced > max_cubes then raise Too_many_cubes
  in
  let rec go l u =
    if l = 0 then 0, []
    else if u = 1 then begin
      bump 1;
      1, [ Cube.top m.nv ]
    end
    else
      match Hashtbl.find_opt cache (l, u) with
      | Some r -> r
      | None ->
          let lev n = if n < 2 then m.nv else m.level.(n) in
          let v = min (lev l) (lev u) in
          let co n side =
            if lev n = v then if side then m.high.(n) else m.low.(n) else n
          in
          let l0 = co l false and l1 = co l true in
          let u0 = co u false and u1 = co u true in
          let g0, c0 = go (and_ m l0 (not_ m u1)) u0 in
          let g1, c1 = go (and_ m l1 (not_ m u0)) u1 in
          let l0' = and_ m l0 (not_ m g0) in
          let l1' = and_ m l1 (not_ m g1) in
          let gd, cd = go (or_ m l0' l1') (and_ m u0 u1) in
          let f =
            or_ m gd
              (or_ m (and_ m (nvar m v) g0) (and_ m (var m v) g1))
          in
          bump (List.length c0 + List.length c1);
          let cubes =
            List.map (fun c -> Cube.add c v false) c0
            @ List.map (fun c -> Cube.add c v true) c1
            @ cd
          in
          Hashtbl.replace cache (l, u) (f, cubes);
          f, cubes
  in
  match go lower upper with
  | _, cubes ->
      if List.length cubes > max_cubes then None
      else Some (Cover.of_cubes m.nv cubes)
  | exception Too_many_cubes -> None

let node_id (n : node) = n

let top_var m n = if n < 2 then None else Some m.level.(n)

let low m n =
  if n < 2 then invalid_arg "Bdd.low: terminal node" else m.low.(n)

let high m n =
  if n < 2 then invalid_arg "Bdd.high: terminal node" else m.high.(n)

let num_nodes m = m.len - 2
let cache_hits m = m.cache_hits

let record_counters m =
  Lr_instr.Instr.count "bdd.nodes" (num_nodes m);
  Lr_instr.Instr.count "bdd.cache-hits" m.cache_hits
