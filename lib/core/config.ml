type check_level = Off | Structural | Full

let check_level_string = function
  | Off -> "off"
  | Structural -> "structural"
  | Full -> "full"

let check_level_of_string = function
  | "off" -> Some Off
  | "structural" -> Some Structural
  | "full" -> Some Full
  | _ -> None

type sweep_level = Sweep_off | Sweep_const | Sweep_full

let sweep_level_string = function
  | Sweep_off -> "off"
  | Sweep_const -> "const"
  | Sweep_full -> "full"

let sweep_level_of_string = function
  | "off" -> Some Sweep_off
  | "const" -> Some Sweep_const
  | "full" -> Some Sweep_full
  | _ -> None

type t = {
  seed : int;
  use_grouping : bool;
  use_templates : bool;
  support_rounds : int;
  node_rounds : int;
  small_support_threshold : int;
  leaf_epsilon : float;
  max_tree_nodes : int;
  use_onset_offset : bool;
  minimize_cover : bool;
  optimize : bool;
  optimize_rounds : int;
  fraig_words : int;
  template_samples : int;
  template_prop_cubes : int;
  refine_rounds : int;
  time_budget_s : float option;
  check_level : check_level;
  sweep : sweep_level;
  jobs : int;
  kernel : bool;
  retry : Lr_faults.Faults.retry;
  faults : Lr_faults.Faults.spec option;
}

let contest =
  {
    seed = 1;
    use_grouping = true;
    use_templates = true;
    support_rounds = 7200;
    node_rounds = 60;
    small_support_threshold = 18;
    leaf_epsilon = 0.0;
    max_tree_nodes = 4096;
    use_onset_offset = false;
    minimize_cover = false;
    optimize = true;
    optimize_rounds = 2;
    fraig_words = 8;
    template_samples = 64;
    template_prop_cubes = 4;
    refine_rounds = 0;
    time_budget_s = None;
    check_level = Off;
    sweep = Sweep_off;
    jobs = 1;
    kernel = true;
    retry = Lr_faults.Faults.no_retry;
    faults = None;
  }

let improved =
  {
    contest with
    leaf_epsilon = 0.02;
    use_onset_offset = true;
    minimize_cover = true;
    optimize_rounds = 4;
    fraig_words = 16;
  }

let default = improved

let with_seed seed t = { t with seed }
let with_time_budget time_budget_s t = { t with time_budget_s }
let with_check check_level t = { t with check_level }
let with_sweep sweep t = { t with sweep }
let with_jobs jobs t = { t with jobs }
let with_kernel kernel t = { t with kernel }
let with_retry retry t = { t with retry }
let with_faults faults t = { t with faults }
