(** Learner configuration.

    Two presets reproduce the two "ours" columns of Table II:
    {!contest} is the algorithm as run at the 2019 contest, {!improved}
    adds the post-contest refinements reported in the paper (early
    stopping, onset/offset choice, heavier optimization). *)

(** How much the learner double-checks its own work ({!Lr_check}):
    [Off] nothing (the presets' value); [Structural] lints the final
    circuit and fails on error-severity findings; [Full] additionally
    proves every function-preserving step — conquered truth tables,
    minimized covers, each AIG optimization sub-pass — equivalent to its
    input, raising [Lr_check.Selfcheck.Check_failed] with a concrete
    counterexample on the first violation. *)
type check_level = Off | Structural | Full

val check_level_string : check_level -> string
(** ["off"] / ["structural"] / ["full"] — the CLI spelling. *)

val check_level_of_string : string -> check_level option

(** How hard the post-optimization netlist sweep ({!Lr_dataflow.Sweep})
    works: [Sweep_off] skips it entirely (the presets' value — default
    runs are bit-identical to a build without the sweep); [Sweep_const]
    runs only ternary constant propagation; [Sweep_full] adds SAT-proven
    duplicate-cone merging, XOR-structure recovery and ODC
    resubstitution. Every rewrite is CEC-verified when [check_level] is
    [Full]. The sweep issues no black-box queries. *)
type sweep_level = Sweep_off | Sweep_const | Sweep_full

val sweep_level_string : sweep_level -> string
(** ["off"] / ["const"] / ["full"] — the CLI spelling. *)

val sweep_level_of_string : string -> sweep_level option

type t = {
  seed : int;  (** master RNG seed; everything else derives from it *)
  use_grouping : bool;  (** step 1 of Figure 1 *)
  use_templates : bool;  (** step 2; requires grouping *)
  support_rounds : int;  (** r of Algorithm 1 for support id (paper: 7200) *)
  node_rounds : int;  (** r inside the FBDT (paper: 60) *)
  small_support_threshold : int;
      (** exhaustive conquest bound on |S'| (paper: 18) *)
  leaf_epsilon : float;  (** early-stopping truth-ratio deviation *)
  max_tree_nodes : int;  (** per-output cap on expanded FBDT nodes *)
  use_onset_offset : bool;  (** pick the smaller of onset/offset covers *)
  minimize_cover : bool;  (** two-level minimization before synthesis *)
  optimize : bool;  (** step 5: AIG optimization *)
  optimize_rounds : int;
  fraig_words : int;
  template_samples : int;
  template_prop_cubes : int;
  refine_rounds : int;
      (** extension: after an incomplete tree, validate on fresh samples
          and re-learn with a doubled node budget up to this many times
          (0 = paper behaviour) *)
  time_budget_s : float option;
      (** wall-clock budget (the contest's hard time limit): the learner
          checks it between phases — before template matching, before
          support identification, before the conquer fan-out, before
          optimization — and skips remaining work once exceeded,
          reporting [budget_exceeded]; [None] (the presets' value)
          disables the check *)
  check_level : check_level;
  sweep : sweep_level;  (** post-optimization netlist sweep (presets: off) *)
  jobs : int;
      (** worker domains for the per-output conquer stage (1 = run
          inline on the calling domain, the presets' value; [<= 0] =
          auto, [Lr_par.Par.default_jobs ()]). Any value learns the
          {e same} circuit from the same seed — parallelism only
          reschedules work, it never changes results *)
  kernel : bool;
      (** run simulation-heavy phases (scoring, fraig signatures, sweep,
          self-checks) on the {!Lr_kernel} SoA engine with incremental
          dirty-cone resimulation, and decide hard SAT queries with the
          deterministic {!Lr_kernel.Portfolio} racer ([true], the presets'
          value). Bit-identical to [false] — same circuits, same query
          counts, same reports — only faster; [false] forces the legacy
          tree-walking evaluators everywhere *)
  retry : Lr_faults.Faults.retry;
      (** policy for injected query failures (presets:
          {!Lr_faults.Faults.no_retry} — the first failure is fatal for
          the output being learned, which then degrades) *)
  faults : Lr_faults.Faults.spec option;
      (** fault schedule armed on the black box before learning;
          [None] (the presets' value) leaves the oracle reliable *)
}

val contest : t
val improved : t

val default : t
(** = {!improved}. *)

val with_seed : int -> t -> t
val with_time_budget : float option -> t -> t
val with_check : check_level -> t -> t
val with_sweep : sweep_level -> t -> t
val with_jobs : int -> t -> t
val with_kernel : bool -> t -> t
val with_retry : Lr_faults.Faults.retry -> t -> t
val with_faults : Lr_faults.Faults.spec option -> t -> t
