(** The full circuit-learning pipeline of the paper (Figure 1):

    {v
    black-box --> name grouping --> template matching
              --> support identification --> FBDT construction
              --> circuit optimization --> learned circuit
    v}

    Each primary output is learned independently. Outputs matched by a
    template (a comparator predicate or a bit of a linear-arithmetic
    vector) are synthesised directly; hidden comparators found under a
    propagation cube compress their input buses into a single delegate
    input for the decision-tree stage; everything else is learned by the
    FBDT (or by exhaustive enumeration when the identified support is
    small), minimized two-level, and synthesised as an SOP. Finally the
    whole netlist is optimized through the AIG pipeline
    (balance / rewrite / fraig). *)

type method_used =
  | Linear_template
  | Comparator_template
  | Bitwise_template  (** extension: [z = v1 ⊙ v2] bitwise *)
  | Shift_template  (** extension: [z = v >> k] / rotation *)
  | Exhaustive
  | Decision_tree
  | Skipped_budget
      (** the wall-clock budget ({!Config.t.time_budget_s}) ran out
          before this output's turn: it was emitted as constant false *)
  | Degraded_fault
      (** this output's queries kept failing after the retry policy
          ({!Config.t.retry}) was spent: it was emitted best-effort as
          constant false — the fault analogue of {!Skipped_budget} *)

val method_to_string : method_used -> string

type output_report = {
  output : int;
  output_name : string;
  method_used : method_used;
  support_size : int;  (** |S'| (0 for template outputs) *)
  cubes : int;  (** cubes synthesised (0 for template outputs) *)
  used_offset : bool;  (** circuit built from the offset, then negated *)
  complete : bool;  (** false if the budget truncated the tree *)
  compressed : bool;  (** a delegate input replaced a bus pair *)
}

type report = {
  circuit : Lr_netlist.Netlist.t;
  outputs : output_report list;
  queries : int;  (** black-box queries consumed *)
  elapsed_s : float;
  matches : Lr_templates.Templates.matches option;
  phase_times : (string * float) list;
      (** wall-clock seconds per pipeline phase, keyed by {!phase_names}
          in execution order — fed by the {!Lr_instr.Instr} spans the
          learner opens around each step (the per-output [fbdt] and
          [cover-min] spans are summed) *)
  phase_queries : (string * int) list;
      (** black-box queries per phase ({!phase_names} order, plus a final
          ["other"] bucket for queries the caller issued outside the
          pipeline); the values always sum to [queries] *)
  phase_gc : (string * Lr_report.Gcstat.t) list;
      (** GC/memory deltas per pipeline phase ({!phase_names} order),
          sampled with [Gc.quick_stat] at the phase span boundaries;
          phases that ran more than once (per-output [fbdt]/[cover-min])
          accumulate *)
  query_latency : Lr_report.Histogram.summary;
      (** per-query latency percentiles from the box's histogram
          ({!Lr_blackbox.Blackbox.query_latency}) as it stood when
          learning finished *)
  retries : int;
      (** injected query failures that were retried
          ({!Lr_blackbox.Blackbox.retries_used}); 0 on a reliable box *)
  phase_retries : (string * int) list;
      (** retries per phase, same keys and ["other"] bucket as
          [phase_queries]; sums to [retries] *)
  faults_seen : (string * int) list;
      (** the fault stream's counters
          ({!Lr_faults.Faults.seen}, shards folded in); [[]] when the box
          is reliable *)
  degraded : int;
      (** outputs whose [method_used] is {!Degraded_fault} — nonzero
          means the learned circuit is best-effort, and downstream
          tooling (e.g. [lr_report check]) must not treat this run as a
          comparable baseline *)
  budget_exceeded : bool;
      (** the {!Config.t.time_budget_s} wall-clock budget ran out: some
          phases or outputs were skipped (their [method_used] is
          {!Skipped_budget}) *)
  check_level : Config.check_level;  (** the level this run was checked at *)
  checks_verified : int;
      (** semantic self-checks that passed — truth-table re-simulations,
          cover CECs, per-pass and end-to-end optimization CECs; 0 unless
          [check_level = Full] *)
  sweep_removed : int;
      (** gates the dataflow sweep ({!Lr_dataflow.Sweep}) reclaimed from
          the optimized netlist; 0 when {!Config.t.sweep} is [Sweep_off].
          The sweep runs after the conquer merge on the calling domain
          and issues no black-box queries, so any [jobs] level produces
          the same swept circuit *)
  lint_findings : Lr_check.Finding.t list;
      (** structural lint of the final circuit ([] when
          [check_level = Off]); never contains error-severity findings —
          those abort the run *)
  jobs : int;
      (** worker domains the per-output conquer stage ran on (resolved
          from {!Config.t.jobs}; 1 = everything on the calling domain) *)
  domain_times : (int * (string * float) list) list;
      (** per worker domain (ascending id), summed wall-clock seconds of
          the conquer phases ([fbdt]/[cover-min]) that ran there —
          scheduling telemetry only; which domain ran what never affects
          the learned circuit *)
}

val phase_names : string list
(** The five pipeline phases of Figure 1, in execution order:
    [templates] (steps 1–2), [support-id] (step 3), [fbdt] (step 4),
    [cover-min] (two-level minimization / BDD collapse), [aig-opt]
    (step 5) — plus the cross-cutting [check] accumulator of the checked
    mode. These are the span names emitted to traces and the keys of
    [phase_times] / [phase_queries]. [check] spans nest {e inside} the
    phase they guard (per-pass CEC runs inside [aig-opt]), so the [check]
    time overlaps the other rows rather than adding to them. *)

val learn : ?config:Config.t -> Lr_blackbox.Blackbox.t -> report
(** Learn a circuit for the black-box. The box's budget (if any) drives the
    anytime behaviour; the call always returns a complete circuit, with
    budget-starved outputs approximated as in Algorithm 2.

    With [config.check_level = Full] every function-preserving step is
    verified against its input; a failure raises
    {!Lr_check.Selfcheck.Check_failed} with the offending stage, output
    and a counterexample. With [Structural] (or [Full]) the final circuit
    is linted and error findings raise [Failure].

    With [config.faults] set the box is armed with that schedule before
    the first query, and [config.retry] governs injected failures.
    {!Lr_faults.Faults.Query_failed} never escapes this function:
    a failure that outlives its retries degrades the affected output(s)
    ({!Degraded_fault}) and learning continues — the caller reads
    [report.degraded] to find out. Because failed attempts consume no
    query budget, a run whose transient faults are all absorbed by
    retries returns the bit-identical circuit and query counts of a
    fault-free run, at any [jobs]. *)
