module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module Cube = Lr_cube.Cube
module Cover = Lr_cube.Cover
module N = Lr_netlist.Netlist
module B = Lr_netlist.Builder
module Box = Lr_blackbox.Blackbox
module Ps = Lr_sampling.Pattern_sampling
module G = Lr_grouping.Grouping
module T = Lr_templates.Templates
module Oracle = Lr_fbdt.Oracle
module Fbdt = Lr_fbdt.Fbdt
module Bdd = Lr_bdd.Bdd
module Aig = Lr_aig.Aig
module Opt = Lr_aig.Opt
module Instr = Lr_instr.Instr
module Log = Lr_obs.Log
module Histogram = Lr_report.Histogram
module Gcstat = Lr_report.Gcstat
module Selfcheck = Lr_check.Selfcheck
module Sweep = Lr_dataflow.Sweep
module Lint = Lr_check.Lint
module Finding = Lr_check.Finding
module Par = Lr_par.Par
module Faults = Lr_faults.Faults

type method_used =
  | Linear_template
  | Comparator_template
  | Bitwise_template
  | Shift_template
  | Exhaustive
  | Decision_tree
  | Skipped_budget
  | Degraded_fault

let method_to_string = function
  | Linear_template -> "linear-template"
  | Comparator_template -> "comparator-template"
  | Bitwise_template -> "bitwise-template"
  | Shift_template -> "shift-template"
  | Exhaustive -> "exhaustive"
  | Decision_tree -> "decision-tree"
  | Skipped_budget -> "skipped-budget"
  | Degraded_fault -> "degraded-fault"

type output_report = {
  output : int;
  output_name : string;
  method_used : method_used;
  support_size : int;
  cubes : int;
  used_offset : bool;
  complete : bool;
  compressed : bool;
}

type report = {
  circuit : Lr_netlist.Netlist.t;
  outputs : output_report list;
  queries : int;
  elapsed_s : float;
  matches : Lr_templates.Templates.matches option;
  phase_times : (string * float) list;
  phase_queries : (string * int) list;
  phase_gc : (string * Lr_report.Gcstat.t) list;
  query_latency : Lr_report.Histogram.summary;
  retries : int;
  phase_retries : (string * int) list;
  faults_seen : (string * int) list;
  degraded : int;
      (** outputs that gave up on a failing oracle ([Degraded_fault]) *)
  budget_exceeded : bool;
  check_level : Config.check_level;
  checks_verified : int;
      (** semantic verifications that passed (0 unless [check_level = Full]) *)
  sweep_removed : int;
      (** gates reclaimed by the dataflow sweep (0 when [sweep = Sweep_off]) *)
  lint_findings : Lr_check.Finding.t list;
      (** structural lint of the final circuit ([] when [check_level = Off]) *)
  jobs : int;
  domain_times : (int * (string * float) list) list;
      (** per worker domain, summed conquer phase wall-clock *)
}

(* The five pipeline phases of Figure 1, in execution order, plus the
   cross-cutting "check" accumulator of the checked mode; span names in
   traces and keys of [phase_times]/[phase_queries]. Check spans nest
   inside the phase they guard (e.g. inside "aig-opt" for per-pass CEC),
   so the "check" row overlaps the others rather than adding to them. *)
let phase_names =
  [ "templates"; "support-id"; "fbdt"; "cover-min"; "aig-opt"; "sweep"; "check" ]

(* representative (lhs, rhs) vector values realising the predicate value:
   [reps op] = ((x_false, y_false), (x_true, y_true)) *)
let delegate_reps : T.op -> (int * int) * (int * int) = function
  | `Eq -> ((0, 1), (0, 0))
  | `Ne -> ((0, 0), (0, 1))
  | `Lt -> ((0, 0), (0, 1))
  | `Le -> ((1, 0), (0, 0))
  | `Gt -> ((0, 0), (1, 0))
  | `Ge -> ((0, 1), (0, 0))

(* Virtual input domain for one output: optionally one delegate input
   standing for a compressed comparator. *)
type domain = {
  arity : int;
  compressed_bits : int list;  (** PI indices replaced by the delegate *)
  delegate : (T.comparator * int) option;  (** match + virtual index *)
}

let plain_domain ni = { arity = ni; compressed_bits = []; delegate = None }

let compressed_domain ni cmp =
  let rhs_bits =
    match cmp.T.rhs with
    | T.Vec v -> Array.to_list v.G.bits
    | T.Const _ -> []
  in
  {
    arity = ni + 1;
    compressed_bits = Array.to_list cmp.T.lhs.G.bits @ rhs_bits;
    delegate = Some (cmp, ni);
  }

(* translate a virtual assignment into a full black-box assignment *)
let to_full ni dom virtual_a =
  let a = Bv.create ni in
  for i = 0 to ni - 1 do
    Bv.set a i (Bv.get virtual_a i)
  done;
  (match dom.delegate with
  | None -> ()
  | Some (cmp, dvar) ->
      let (xf, yf), (xt, yt) = delegate_reps cmp.T.cmp_op in
      let x, y = if Bv.get virtual_a dvar then (xt, yt) else (xf, yf) in
      G.set_vector cmp.T.lhs (fun s b -> Bv.set a s b) x;
      (match cmp.T.rhs with
      | T.Vec v -> G.set_vector v (fun s b -> Bv.set a s b) y
      | T.Const _ -> ()));
  a

let oracle_for box dom ~output =
  let ni = Box.num_inputs box in
  {
    Oracle.arity = dom.arity;
    query =
      (fun arr ->
        let full = Array.map (to_full ni dom) arr in
        let outs = Box.query_many box full in
        Array.map (fun o -> Bv.get o output) outs);
    exhausted = (fun () -> Box.exhausted box);
  }

(* A truncated tree on an unlearnable function can emit a huge cover;
   adjacency merging is near-linear, but above this size even building the
   merged SOP as a circuit is pointless, so fall back to deduplication. *)
let merge_bounded cover =
  if Cover.num_cubes cover > 50_000 then Cover.dedup cover
  else Cover.merge_pass cover

(* Two-level minimization of the chosen cover against its complement.
   Moderate covers go through BDD collapse + ISOP (the paper's heavy
   'collapse' step); bigger ones only get the cheap adjacency merging. *)
let minimize_cover ~arity ~chosen ~other =
  let cheap = merge_bounded chosen in
  if
    Cover.num_cubes cheap <= 1024
    && Cover.num_literals cheap <= 12_000
    && arity <= 512
  then begin
    let man = Bdd.man ~nvars:arity in
    let lower = Bdd.of_cover man cheap in
    let upper = Bdd.not_ man (Bdd.of_cover man (merge_bounded other)) in
    (* covers from a decision tree partition the space, but a truncated
       tree may leave overlap; guard by intersecting bounds *)
    let lower = Bdd.and_ man lower upper in
    let budget = max 2048 (2 * Cover.num_cubes cheap) in
    let minimized =
      match Bdd.isop_bounded man ~max_cubes:budget ~lower ~upper with
      | Some isop
        when Cover.num_cubes isop < Cover.num_cubes cheap
             || Cover.num_literals isop < Cover.num_literals cheap ->
          isop
      | Some _ | None -> cheap
    in
    Bdd.record_counters man;
    minimized
  end
  else cheap

(* What a conquer task hands back for circuit construction. Tasks run on
   worker domains and must not touch the (unsynchronised) netlist
   builder, so they return pure data: either a cover to synthesise as an
   SOP, or the learned function's BDD serialised as a mux DAG. All node
   creation then happens on the calling domain, in output order — the
   netlist is identical however many domains did the learning. *)
type build_plan =
  | Build_sop of { cover : Lr_cube.Cover.t; complemented : bool }
  | Build_mux of { muxes : (int * int * int) array; root : int }
      (** [(var, low, high)] rows, children before parents; [low]/[high]
          and [root] index earlier rows, or [-1] = const false,
          [-2] = const true *)

(* Serialise a BDD as a mux DAG — the compact fallback when a function
   (parity-like) has a small BDD but an exponential SOP. Deterministic
   DFS, low child before high. *)
let serialize_mux man root =
  let memo = Hashtbl.create 64 in
  let rev_rows = ref [] in
  let count = ref 0 in
  let rec go b =
    match Bdd.is_const man b with
    | Some false -> -1
    | Some true -> -2
    | None -> (
        let id = Bdd.node_id b in
        match Hashtbl.find_opt memo id with
        | Some i -> i
        | None ->
            let v =
              match Bdd.top_var man b with Some v -> v | None -> assert false
            in
            let lo = go (Bdd.low man b) in
            let hi = go (Bdd.high man b) in
            let i = !count in
            incr count;
            rev_rows := (v, lo, hi) :: !rev_rows;
            Hashtbl.add memo id i;
            i)
  in
  let root = go root in
  (Array.of_list (List.rev !rev_rows), root)

let build_mux circuit vars muxes root =
  let built = Array.make (Array.length muxes) (N.const_false circuit) in
  let resolve i =
    if i = -1 then N.const_false circuit
    else if i = -2 then N.const_true circuit
    else built.(i)
  in
  Array.iteri
    (fun i (v, lo, hi) ->
      built.(i) <-
        B.mux circuit ~sel:vars.(v) ~then_:(resolve hi) ~else_:(resolve lo))
    muxes;
  resolve root

(* Everything a conquer task learns about one output, minus the circuit
   nodes themselves. *)
type conquered = {
  c_dom : domain;
  c_support : int list;
  c_method : method_used;
  c_fbdt : Fbdt.result;
  c_plan : build_plan;
  c_cubes : int;
  c_use_offset : bool;
  c_check_cover : Cover.t option;
  c_phases : (string * float * Gcstat.t) list;  (** occurrence order *)
  c_snapshot : Instr.snapshot;
}

let learn ?(config = Config.default) box =
  let t0 = Instr.now () in
  (* arm the box's chaos hooks before the first query: key [-1] is the
     shared divide-phase stream, per-output streams are derived at shard
     time. The retry policy is installed even on a reliable box so a
     caller-armed box still retries. *)
  (match config.Config.faults with
  | Some spec -> Box.set_faults box ~key:(-1) (Some spec)
  | None -> ());
  Box.set_retry box config.Config.retry;
  let master_rng = Rng.create config.Config.seed in
  let template_rng = Rng.split master_rng in
  let support_rng = Rng.split master_rng in
  let tree_rng = Rng.split master_rng in
  let opt_rng = Rng.split master_rng in
  (* split unconditionally — the earlier streams stay identical whether or
     not checking is on, so checked and unchecked runs learn the same
     circuit *)
  let check_rng = Rng.split master_rng in
  (* likewise split unconditionally, after every pre-existing stream, so
     runs with the sweep off are bit-identical to builds without it *)
  let sweep_rng = Rng.split master_rng in
  let checks_verified = ref 0 in
  let full_check = config.Config.check_level = Config.Full in
  let ni = Box.num_inputs box and no = Box.num_outputs box in
  let circuit =
    N.create ~input_names:(Box.input_names box)
      ~output_names:(Box.output_names box)
  in
  let pi = Array.init ni (N.input circuit) in
  let vec_nodes v = Array.map (fun s -> pi.(s)) v.G.bits in
  (* per-phase wall-clock and GC accumulators: a phase span may run many
     times (once per remaining output for fbdt/cover-min); the report
     sums them. GC counters are sampled at the span boundaries
     ([Gc.quick_stat], no heap walk) and the heap-size gauge is emitted
     so traces show memory alongside time. *)
  let phase_time = Hashtbl.create 8 in
  let phase_gc = Hashtbl.create 8 in
  List.iter
    (fun n ->
      Hashtbl.replace phase_time n 0.0;
      Hashtbl.replace phase_gc n Gcstat.zero)
    phase_names;
  let phase name f =
    let g0 = Gcstat.sample () in
    let r, dt = Instr.timed_span ~name f in
    let d = Gcstat.diff (Gcstat.sample ()) g0 in
    Hashtbl.replace phase_time name (Hashtbl.find phase_time name +. dt);
    Hashtbl.replace phase_gc name (Gcstat.add (Hashtbl.find phase_gc name) d);
    Instr.gauge "gc.heap_words" (float_of_int d.Gcstat.heap_words);
    r
  in
  (* contest-style wall-clock budget: checked between phases and between
     per-output iterations (never mid-phase), so one check's worth of
     work can still finish after the deadline but no new work starts *)
  let budget_hit = ref false in
  let over_budget () =
    !budget_hit
    ||
    match config.Config.time_budget_s with
    | Some b when Instr.now () -. t0 >= b ->
        budget_hit := true;
        Log.warn
          ~fields:[ Log.float "budget_s" b ]
          "time budget exceeded; no new work starts";
        true
    | _ -> false
  in
  Instr.span ~name:"learn" @@ fun () ->
  Instr.gauge "learn.outputs" (float_of_int no);
  Log.info
    ~fields:
      [
        Log.int "inputs" ni;
        Log.int "outputs" no;
        Log.int "jobs" config.Config.jobs;
      ]
    "learn started";
  (* ---- steps 1 & 2: grouping + template matching ---- *)
  let matches =
    if over_budget () then None
    else
      phase "templates" (fun () ->
        if config.Config.use_grouping && config.Config.use_templates then
          (* an unretryable fault mid-scan degrades to "no templates": every
             output falls through to the generic conquer path *)
          try
            Some
              (T.scan ~samples:config.Config.template_samples
                 ~prop_cubes:config.Config.template_prop_cubes
                 ~rng:template_rng box)
          with Faults.Query_failed _ ->
            Log.warn
              "template scan failed under faults; falling back to generic \
               conquer";
            None
        else None)
  in
  let reports = ref [] in
  let handled = Hashtbl.create 16 in
  let out_names = Box.output_names box in
  (match matches with
  | None -> ()
  | Some m ->
      List.iter
        (fun l ->
          let width = Array.length l.T.z.G.bits in
          let terms =
            List.map (fun (a, v) -> (a, vec_nodes v)) l.T.terms
          in
          let sum = B.linear_combination circuit ~width terms l.T.offset in
          Array.iteri
            (fun k po ->
              N.set_output circuit po sum.(k);
              Hashtbl.replace handled po ();
              reports :=
                {
                  output = po;
                  output_name = out_names.(po);
                  method_used = Linear_template;
                  support_size = 0;
                  cubes = 0;
                  used_offset = false;
                  complete = true;
                  compressed = false;
                }
                :: !reports)
            l.T.z.G.bits)
        m.T.linears;
      let template_report method_used po =
        {
          output = po;
          output_name = out_names.(po);
          method_used;
          support_size = 0;
          cubes = 0;
          used_offset = false;
          complete = true;
          compressed = false;
        }
      in
      List.iter
        (fun b ->
          let lhs = vec_nodes b.T.blhs in
          let bits =
            match b.T.brhs with
            | None -> Array.map (N.not_ circuit) lhs
            | Some rhs ->
                let rhs = vec_nodes rhs in
                let gate =
                  match b.T.bop with
                  | T.Band -> N.and_
                  | T.Bor -> N.or_
                  | T.Bxor -> N.xor_
                  | T.Bxnor -> N.xnor_
                  | T.Bnot -> fun c x _ -> N.not_ c x
                in
                Array.mapi (fun i l -> gate circuit l rhs.(i)) lhs
          in
          Array.iteri
            (fun k po ->
              N.set_output circuit po bits.(k);
              Hashtbl.replace handled po ();
              reports := template_report Bitwise_template po :: !reports)
            b.T.bz.G.bits)
        m.T.bitwises;
      List.iter
        (fun s ->
          let src = vec_nodes s.T.src in
          let w = Array.length src in
          Array.iteri
            (fun k po ->
              let j = k + s.T.amount in
              let bit =
                if s.T.rotate then src.(j mod w)
                else if j < w then src.(j)
                else N.const_false circuit
              in
              N.set_output circuit po bit;
              Hashtbl.replace handled po ();
              reports := template_report Shift_template po :: !reports)
            s.T.sz.G.bits)
        m.T.shifts;
      List.iter
        (fun c ->
          match c.T.prop_cube with
          | Some _ -> () (* input compression, handled below *)
          | None ->
              let lhs = vec_nodes c.T.lhs in
              let node =
                match c.T.rhs with
                | T.Vec v -> B.compare_op circuit c.T.cmp_op lhs (vec_nodes v)
                | T.Const k -> B.compare_const circuit c.T.cmp_op lhs k
              in
              N.set_output circuit c.T.po node;
              Hashtbl.replace handled c.T.po ();
              reports :=
                {
                  output = c.T.po;
                  output_name = out_names.(c.T.po);
                  method_used = Comparator_template;
                  support_size = 0;
                  cubes = 0;
                  used_offset = false;
                  complete = true;
                  compressed = false;
                }
                :: !reports)
        m.T.comparators);
  let remaining =
    List.init no Fun.id |> List.filter (fun o -> not (Hashtbl.mem handled o))
  in
  (* ---- step 3: support identification, one pass for all outputs ---- *)
  let support_failed = ref false in
  let stats =
    if remaining = [] || over_budget () then None
    else
      phase "support-id" (fun () ->
          try
            Some
              (Ps.run ~rounds:config.Config.support_rounds ~rng:support_rng box
                 ~constraint_:(Cube.top ni) ())
          with Faults.Query_failed _ ->
            (* support stats serve every remaining output: an unretryable
               fault here degrades them all, best-effort constants *)
            Log.error
              "support identification failed under faults; degrading all \
               remaining outputs";
            support_failed := true;
            None)
  in
  (* an output skipped because the wall-clock budget ran out — or
     abandoned to a failing oracle — still gets a (constant) circuit: the
     report's method is the visible trace of the skip *)
  let skip_output method_used po =
    Log.warn ~key:"learn.skip"
      ~fields:
        [
          Log.int "output" po;
          Log.str "method"
            (if method_used = Degraded_fault then "degraded-fault"
             else "skipped-budget");
        ]
      "output degraded to a constant";
    Instr.count
      (if method_used = Degraded_fault then "learn.degraded"
       else "learn.skipped")
      1;
    N.set_output circuit po (N.const_false circuit);
    reports :=
      {
        output = po;
        output_name = out_names.(po);
        method_used;
        support_size = 0;
        cubes = 0;
        used_offset = false;
        complete = false;
        compressed = false;
      }
      :: !reports
  in
  (* ---- step 4: per-output conquer (parallel) + sequential merge ----
     Each remaining output is a self-contained task: its own RNG stream
     (split off [tree_rng] keyed by the output index, so streams do not
     depend on scheduling), its own accounting shard of the black box
     with a deterministic slice of the remaining query budget, and its
     own instrumentation context (captured, then replayed into the
     parent trace at merge time). Tasks never touch the netlist: they
     return a {!build_plan}, and all circuit construction — plus
     full-check verification, which consumes the shared [check_rng] —
     happens afterwards on the calling domain, in output order. With
     [jobs = 1] the same closures run inline in the same order, which is
     what makes [--jobs n] bit-identical to [--jobs 1]. *)
  let jobs =
    if config.Config.jobs <= 0 then Par.default_jobs () else config.Config.jobs
  in
  let kernel = config.Config.kernel in
  (* a small pool for the SAT portfolio inside optimization and sweep —
     wall-clock only (verdicts are resolved in index order), so any size
     here keeps results bit-identical to jobs = 1 *)
  let with_opt_pool f =
    if kernel && jobs > 1 then
      Par.with_pool ~jobs:(min jobs 3) (fun p -> f (Some p))
    else f None
  in
  let domain_time = Array.init jobs (fun _ -> Hashtbl.create 4) in
  let conquer_output stats shard po =
    let raw_support = Ps.support stats ~output:po in
    let compression =
      match matches with
      | None -> None
      | Some m ->
          List.find_opt
            (fun c -> c.T.po = po && c.T.prop_cube <> None)
            m.T.comparators
    in
    let dom =
      match compression with
      | None -> plain_domain ni
      | Some cmp -> compressed_domain ni cmp
    in
    let support =
      let kept =
        List.filter (fun v -> not (List.mem v dom.compressed_bits)) raw_support
      in
      match dom.delegate with
      | None -> kept
      | Some (_, dvar) -> kept @ [ dvar ]
    in
    let rng = Rng.split_keyed tree_rng po in
    let oracle = oracle_for shard dom ~output:po in
    let phases = ref [] in
    let phase name f =
      let g0 = Gcstat.sample () in
      let r, dt = Instr.timed_span ~name f in
      let d = Gcstat.diff (Gcstat.sample ()) g0 in
      phases := (name, dt, d) :: !phases;
      Instr.gauge "gc.heap_words" (float_of_int d.Gcstat.heap_words);
      r
    in
    let result, method_used =
      phase "fbdt" @@ fun () ->
      try
        if List.length support <= config.Config.small_support_threshold then
          (Fbdt.learn_exhaustive ~rng ~support oracle, Exhaustive)
        else begin
          (* refinement loop (extension): when the tree came back truncated
             and fresh validation samples expose mistakes, retry with a
             doubled node budget — the budget-vs-accuracy dial the paper
             leaves at a fixed setting *)
          let validate result =
            let probes =
              Array.init 256 (fun i ->
                  Bv.random_biased rng [| 0.5; 0.8; 0.2 |].(i mod 3) dom.arity)
            in
            (* validation is optional polish: if the probes themselves hit
               an unretryable fault, keep the result we already have *)
            match oracle.Oracle.query probes with
            | exception Faults.Query_failed _ -> true
            | want ->
                let errors = ref 0 in
                Array.iteri
                  (fun i p ->
                    if Cover.eval result.Fbdt.onset p <> want.(i) then
                      incr errors)
                  probes;
                !errors = 0
          in
          let rec attempt tries max_nodes =
            let fcfg =
              {
                Fbdt.node_rounds = config.Config.node_rounds;
                biases = Ps.default_biases;
                leaf_epsilon = config.Config.leaf_epsilon;
                max_nodes;
              }
            in
            let result = Fbdt.learn ~support fcfg ~rng oracle in
            if
              tries <= 0 || result.Fbdt.complete
              || Box.exhausted shard || validate result
            then result
            else attempt (tries - 1) (2 * max_nodes)
          in
          ( attempt config.Config.refine_rounds config.Config.max_tree_nodes,
            Decision_tree )
        end
      with Faults.Query_failed _ ->
        (* retries spent mid-learning: give this output up as a constant
           and let the siblings proceed — the parallel analogue of
           [Skipped_budget], charged to the oracle instead of the clock *)
        Log.warn ~key:"learn.degraded"
          ~fields:[ Log.int "output" po ]
          "oracle gave up mid-learning; output degraded to a constant";
        Instr.count "learn.degraded" 1;
        ( {
            Fbdt.onset = Cover.empty dom.arity;
            offset = Cover.empty dom.arity;
            truth_ratio = 0.0;
            complete = false;
            nodes_expanded = 0;
            tree = None;
            table = None;
          },
          Degraded_fault )
    in
    let use_offset =
      config.Config.use_onset_offset && result.Fbdt.truth_ratio > 0.5
    in
    let plan, cubes_built, check_cover =
      if method_used = Degraded_fault then
        (* best-effort constant false; nothing to minimize or check *)
        (Build_mux { muxes = [||]; root = -1 }, 0, None)
      else
        phase "cover-min" @@ fun () ->
        match result.Fbdt.table with
      | Some table ->
          (* exhaustive conquest: collapse the exact truth table to a BDD
             and pick the cheaper of its irredundant SOP and its mux
             network (parity-like functions have tiny BDDs but
             exponential SOPs) *)
          let man = Bdd.man ~nvars:dom.arity in
          let f =
            Bdd.of_truth_table man ~vars:(Array.of_list support) (fun i ->
                table.(i))
          in
          let target = if use_offset then Bdd.not_ man f else f in
          let mux_cost = 3 * Bdd.size man f in
          let built =
            match
              Bdd.isop_bounded man ~max_cubes:(max 512 mux_cost)
                ~lower:target ~upper:target
            with
            | Some cover
              when Cover.num_literals cover + Cover.num_cubes cover
                   <= mux_cost ->
                ( Build_sop { cover; complemented = use_offset },
                  Cover.num_cubes cover,
                  None )
            | Some _ | None ->
                let muxes, root = serialize_mux man f in
                (Build_mux { muxes; root }, 0, None)
          in
          Bdd.record_counters man;
          built
      | None ->
          let chosen, other =
            if use_offset then (result.Fbdt.offset, result.Fbdt.onset)
            else (result.Fbdt.onset, result.Fbdt.offset)
          in
          let cover =
            if config.Config.minimize_cover then
              minimize_cover ~arity:dom.arity ~chosen ~other
            else merge_bounded chosen
          in
          ( Build_sop { cover; complemented = use_offset },
            Cover.num_cubes cover,
            Some cover )
    in
    Instr.count "cover.cubes" cubes_built;
    {
      c_dom = dom;
      c_support = support;
      c_method = method_used;
      c_fbdt = result;
      c_plan = plan;
      c_cubes = cubes_built;
      c_use_offset = use_offset;
      c_check_cover = check_cover;
      c_phases = List.rev !phases;
      c_snapshot = Instr.empty_snapshot;
    }
  in
  (match remaining with
  | [] -> ()
  | _ when over_budget () || stats = None ->
      List.iter
        (skip_output
           (if !support_failed then Degraded_fault else Skipped_budget))
        remaining
  | _ ->
      let stats = Option.get stats in
      let n_tasks = List.length remaining in
      (* deterministic budget split: each task gets an equal slice of
         whatever query budget is left, independent of scheduling — the
         sequential first-come-first-served draw would make exhaustion
         depend on completion order *)
      let slice =
        match Box.budget box with
        | None -> fun _ -> None
        | Some b ->
            let left = max 0 (b - Box.queries_used box) in
            let each = left / n_tasks and extra = left mod n_tasks in
            fun i -> Some (each + if i < extra then 1 else 0)
      in
      let tasks =
        Array.of_list
          (List.mapi
             (fun i po -> (po, Box.shard ?budget:(slice i) ~fault_key:po box))
             remaining)
      in
      let results, workers =
        Par.with_pool ~jobs (fun pool ->
            Par.map_workers
              ~labels:(fun i -> "po:" ^ out_names.(fst tasks.(i)))
              pool
              (fun (po, shard) ->
                let c, snap =
                  Instr.collect (fun () -> conquer_output stats shard po)
                in
                { c with c_snapshot = snap })
              tasks)
      in
      (* merge, in output order: fold the shard accounting and captured
         telemetry back, build the circuit cone, check it *)
      Array.iteri
        (fun i c ->
          let po, shard = tasks.(i) in
          Box.absorb box shard;
          Instr.span ~name:("po:" ^ out_names.(po)) @@ fun () ->
          Instr.absorb c.c_snapshot;
          let dh = domain_time.(workers.(i)) in
          List.iter
            (fun (name, dt, d) ->
              Hashtbl.replace phase_time name
                (Hashtbl.find phase_time name +. dt);
              Hashtbl.replace phase_gc name
                (Gcstat.add (Hashtbl.find phase_gc name) d);
              Hashtbl.replace dh name
                (Option.value ~default:0. (Hashtbl.find_opt dh name) +. dt))
            c.c_phases;
          let dom = c.c_dom in
          (* virtual variable -> circuit node (delegates become their
             comparator subcircuit: the input-compression payoff) *)
          let vars, node =
            (* merge-time synthesis of the planned cone, under its own
               span so profiler attribution separates it from the
               replayed worker time *)
            Instr.span ~name:"build" @@ fun () ->
            let vars =
              Array.init dom.arity (fun v ->
                  if v < ni then pi.(v)
                  else
                    match dom.delegate with
                    | Some (cmp, _) ->
                        let lhs = vec_nodes cmp.T.lhs in
                        (match cmp.T.rhs with
                        | T.Vec vec ->
                            B.compare_op circuit cmp.T.cmp_op lhs
                              (vec_nodes vec)
                        | T.Const k ->
                            B.compare_const circuit cmp.T.cmp_op lhs k)
                    | None -> assert false)
            in
            let node =
              match c.c_plan with
              | Build_sop { cover; complemented } ->
                  let n = B.sop circuit vars cover in
                  if complemented then N.not_ circuit n else n
              | Build_mux { muxes; root } -> build_mux circuit vars muxes root
            in
            (vars, node)
          in
          N.set_output circuit po node;
          (* checked mode: prove the synthesised cone against what the
             FBDT phase actually learned, before optimization can blur
             the trail *)
          (if full_check then
             match c.c_fbdt.Fbdt.table with
             | Some table ->
                 let support_arr = Array.of_list c.c_support in
                 phase "check" (fun () ->
                     Selfcheck.verify_table ~stage:"cover-min" ~kernel ~circuit
                       ~output:po
                       ~bits:(Array.length support_arr)
                       ~to_full:(fun m ->
                         let va = Bv.create dom.arity in
                         Array.iteri
                           (fun j v -> Bv.set va v ((m lsr j) land 1 = 1))
                           support_arr;
                         to_full ni dom va)
                       ~expected:(fun m -> table.(m))
                       ());
                 incr checks_verified
             | None -> (
                 match c.c_check_cover with
                 | Some cover ->
                     phase "check" (fun () ->
                         Selfcheck.verify_cover ~stage:"cover-min"
                           ~rng:check_rng ~kernel ~circuit ~output:po ~vars
                           ~cover
                           ~complemented:c.c_use_offset ());
                     incr checks_verified
                 | None -> ()));
          reports :=
            {
              output = po;
              output_name = out_names.(po);
              method_used = c.c_method;
              support_size = List.length c.c_support;
              cubes = c.c_cubes;
              used_offset = c.c_use_offset;
              complete = c.c_fbdt.Fbdt.complete;
              compressed = dom.delegate <> None;
            }
            :: !reports)
        results);
  (* ---- step 5: circuit optimization ---- *)
  let circuit =
    if over_budget () then circuit
    else begin
      (* checked mode: CEC after every optimization sub-pass, localising a
         broken rewrite to the exact stage that introduced it *)
      let verify_pass ~stage before after =
        phase "check" (fun () ->
            Selfcheck.verify_aigs ~stage ~rng:check_rng ~kernel before after);
        incr checks_verified
      in
      let optimized =
        phase "aig-opt" (fun () ->
          if config.Config.optimize then begin
            let aig = Aig.of_netlist circuit in
            let aig =
              (* fraig's SAT sweeping is super-linear; on the enormous
                 netlists a budget-truncated tree produces, restrict to the
                 linear passes *)
              if Aig.num_ands aig > 25_000 then begin
                let balanced = Opt.balance aig in
                if full_check then verify_pass ~stage:"aig.balance" aig balanced;
                let rewritten = Opt.rewrite balanced in
                if full_check then
                  verify_pass ~stage:"aig.rewrite" balanced rewritten;
                rewritten
              end
              else
                with_opt_pool (fun pool ->
                    Opt.compress ~max_rounds:config.Config.optimize_rounds
                      ~fraig_words:config.Config.fraig_words ~kernel ?pool
                      ?verify:(if full_check then Some verify_pass else None)
                      ~rng:opt_rng aig)
            in
            Aig.to_netlist ~input_names:(Box.input_names box)
              ~output_names:(Box.output_names box) aig
          end
          else circuit)
      in
      (* ... and once end-to-end, which also covers the netlist<->AIG
         conversions the per-pass hook cannot see *)
      if full_check && config.Config.optimize then begin
        phase "check" (fun () ->
            Selfcheck.verify_netlists ~stage:"aig-opt" ~rng:check_rng ~kernel
              circuit optimized);
        incr checks_verified
      end;
      optimized
    end
  in
  (* ---- dataflow sweep: verified redundancy removal on the netlist ----
     Runs on the calling domain after the conquer merge, so any [jobs]
     level sees the same input netlist and the result stays bit-identical;
     the analysis itself issues no black-box queries. *)
  let sweep_removed = ref 0 in
  let circuit =
    if config.Config.sweep = Config.Sweep_off || over_budget () then circuit
    else begin
      let level =
        match config.Config.sweep with
        | Config.Sweep_const -> Sweep.Const_prop
        | Config.Sweep_off | Config.Sweep_full -> Sweep.Full
      in
      let verify_stage ~stage before after =
        phase "check" (fun () ->
            Selfcheck.verify_netlists ~stage ~rng:check_rng ~kernel before
              after);
        incr checks_verified
      in
      let swept, st =
        phase "sweep" (fun () ->
            with_opt_pool (fun pool ->
                Sweep.run ~level ~kernel ?pool
                  ?verify:(if full_check then Some verify_stage else None)
                  ~rng:sweep_rng circuit))
      in
      sweep_removed := Sweep.removed st;
      (* end-to-end, covering stage composition *)
      if full_check && Sweep.removed st > 0 then begin
        phase "check" (fun () ->
            Selfcheck.verify_netlists ~stage:"sweep" ~rng:check_rng ~kernel
              circuit swept);
        incr checks_verified
      end;
      swept
    end
  in
  (* structural lint of the final circuit (Structural and Full) *)
  let lint_findings =
    if config.Config.check_level = Config.Off then []
    else
      phase "check" (fun () ->
          let findings = Lint.netlist circuit in
          (match Finding.errors findings with
          | [] -> ()
          | errs ->
              failwith
                ("structural lint failed: "
                ^ String.concat "; " (List.map Finding.to_string errs)));
          findings)
  in
  let phase_times =
    List.map (fun n -> (n, Hashtbl.find phase_time n)) phase_names
  in
  (* attribution key is the innermost span name at query time, which for
     every query the pipeline issues is one of the phase spans; anything
     else (a caller's own probing) lands in "other" so the totals always
     sum to the box's counter. Retries share the same keying. *)
  let fold_phases by_span =
    let known =
      List.map
        (fun n ->
          (n, match List.assoc_opt n by_span with Some q -> q | None -> 0))
        phase_names
    in
    let other =
      List.fold_left
        (fun acc (k, q) -> if List.mem k phase_names then acc else acc + q)
        0 by_span
    in
    known @ [ ("other", other) ]
  in
  let phase_queries = fold_phases (Box.queries_by_span box) in
  let phase_retries = fold_phases (Box.retries_by_span box) in
  let phase_gc =
    List.map (fun n -> (n, Hashtbl.find phase_gc n)) phase_names
  in
  let domain_times =
    Array.to_list
      (Array.mapi
         (fun d h ->
           ( d,
             List.filter_map
               (fun n -> Option.map (fun t -> (n, t)) (Hashtbl.find_opt h n))
               phase_names ))
         domain_time)
  in
  let outputs = List.sort (fun a b -> compare a.output b.output) !reports in
  let degraded_count =
    List.length (List.filter (fun r -> r.method_used = Degraded_fault) outputs)
  in
  Log.info
    ~fields:
      [
        Log.int "queries" (Box.queries_used box);
        Log.int "retries" (Box.retries_used box);
        Log.int "degraded" degraded_count;
        Log.float "elapsed_s" (Instr.now () -. t0);
      ]
    "learn finished";
  {
    circuit;
    outputs;
    queries = Box.queries_used box;
    elapsed_s = Instr.now () -. t0;
    matches;
    phase_times;
    phase_queries;
    phase_gc;
    query_latency = Histogram.summarize (Box.query_latency box);
    retries = Box.retries_used box;
    phase_retries;
    faults_seen = Box.faults_seen box;
    degraded = degraded_count;
    budget_exceeded = !budget_hit;
    check_level = config.Config.check_level;
    checks_verified = !checks_verified;
    sweep_removed = !sweep_removed;
    lint_findings;
    jobs;
    domain_times;
  }
