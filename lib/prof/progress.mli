(** Live progress stream (NDJSON, schema [lr-progress/v1]).

    An {!Lr_instr.Instr} sink that translates the raw event stream into
    a small, stable protocol a supervisor (or the future [lr_serve]
    daemon) can tail line by line:

    - [run_start] — first observed event; carries the schema tag and
      the query/time budgets when known;
    - [phase] / [phase_end] — pipeline phases (depth <= 1 spans);
    - [output] / [output_done] — per-output conquer spans ([po:*]),
      with completion counts ([n] of [of]);
    - [queries] — throttled budget consumption, emitted when the
      process-wide query total crosses a multiple of [every];
    - [retry] / [degraded] / [skipped] — fault-handling events,
      emitted immediately;
    - [run_end] — written on flush with final totals.

    Every line carries [t], seconds since [run_start]. Because the
    learner replays worker telemetry through [Instr.collect]/[absorb]
    in output order, and the [queries] throttle keys on the replayed
    counter {e totals} rather than on time, the event sequence (with
    timing fields ignored) is identical at any [--jobs] level. *)

val sink :
  ?out:(string -> unit) ->
  ?every:int ->
  ?query_budget:int ->
  ?time_budget_s:float ->
  unit ->
  Lr_instr.Instr.sink
(** [out] defaults to stdout; [every] (default 10000) is the query
    throttle granularity. *)

val file :
  ?every:int ->
  ?query_budget:int ->
  ?time_budget_s:float ->
  string ->
  Lr_instr.Instr.sink
(** File-backed variant; the file is created immediately (raising
    [Sys_error] on failure) and closed on flush. *)
