(** Attribution profiles built from the {!Lr_instr.Instr} event stream.

    A profile is the answer to "where did the time go": every span path
    that appeared in a trace becomes a node carrying its call count, its
    {e total} (inclusive) seconds, its {e self} seconds — total minus
    the totals of its direct children — and the counters that were
    attributed to it (queries, SAT calls, simulated words, ...). Self
    time is what a flamegraph leaf width shows and what the hotspot
    table ranks by; a large self time on a {e non-leaf} span means work
    that no finer-grained span accounts for.

    Profiles are built either from in-process events ({!of_events}) or
    from trace files written by the CLI ({!load_file}): the JSONL event
    log ([--trace-jsonl], lossless) or a Chrome trace_event array
    ([--trace], best-effort — counter tracks carry running totals only,
    and integral gauges are indistinguishable from counters, so counter
    attribution from Chrome input is approximate). *)

type node = {
  path : string;  (** span path, segments joined with ['/'] *)
  name : string;  (** last path segment *)
  depth : int;
  calls : int;
  total_s : float;
      (** inclusive seconds, summed over calls and widened to at least
          the sum of the children's totals — spans replayed through
          [Instr.absorb] keep worker-side durations that can exceed the
          brief merge-time parent span, and the widening keeps the
          [self + children = total] invariant honest in that case *)
  self_s : float;
      (** [total_s] minus direct children's totals, clamped at 0 *)
  counters : (string * int) list;  (** first-seen order *)
}

type t = {
  nodes : node list;  (** first-open order: parents before children *)
  wall_s : float;  (** summed total of root spans *)
  counters : (string * int) list;  (** process-wide totals *)
}

val of_events : Lr_instr.Instr.event list -> t

val of_jsonl_string : string -> (t, string) result
(** Parse the {!Lr_instr.Instr.jsonl} sink's output (one event per
    line; blank lines and unknown event kinds are skipped). *)

val of_chrome_string : string -> (t, string) result
(** Parse a Chrome trace_event JSON array, reconstructing span paths
    from the B/E nesting. Timestamps are microseconds in that format,
    durations come back in seconds. *)

val load_file : string -> (t, string) result
(** Sniff the format: a file whose first non-blank byte is ['['] is
    parsed as a Chrome trace, anything else as JSONL. *)

val find : t -> string -> node option
(** Node by exact span path. *)

val top : ?k:int -> t -> node list
(** The [k] (default 20) hottest nodes by self time, descending. *)

val leaf_self_s : t -> under:(node -> bool) -> float
(** Summed self time of leaf nodes (no recorded children) within the
    subtrees rooted at nodes matching [under] — the "attributed" share
    of those subtrees' time. *)

val subtree_self_s : t -> under:(node -> bool) -> float
(** Summed self time of {e all} nodes within the subtrees rooted at
    nodes matching [under]. This — not the roots' [total_s] — is the
    denominator for attribution percentages: spans replayed through
    [Instr.absorb] keep their worker-side durations, which can exceed
    the brief merge-time parent span. *)

val render_top : ?k:int -> t -> string
(** Human-readable hotspot report: a self-time-ranked span table, a
    per-phase attribution breakdown (depth-1 spans, with the [po:*]
    conquer spans also shown aggregated), and per-span counter rates. *)

val regressions :
  ?slack_s:float -> max_frac:float -> t -> t -> (string * float * float) list
(** [regressions ~max_frac old new] — [(path, old_self_s, new_self_s)]
    for every span whose self time grew past
    [old *. (1 +. max_frac) +. slack_s] (default slack 10 ms, so jitter
    on near-zero spans cannot fire), worst absolute growth first. The
    gate behind [lr_prof diff --max-regress]. *)

val render_diff : ?k:int -> t -> t -> string
(** [render_diff old new] — spans ranked by absolute self-time change,
    plus counter-total deltas; spans present on only one side are
    included with the missing side read as 0. *)
