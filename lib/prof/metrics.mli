(** Prometheus textfile exposition of the in-memory telemetry.

    Renders the {!Lr_instr.Instr} aggregates (span seconds/calls,
    counter totals, per-span counters), GC statistics and optional
    histogram quantiles in the Prometheus text exposition format, for
    the node_exporter textfile collector or any scraper that reads
    files. Written once at run end ([--metrics-out]); this is a dump,
    not a live endpoint. *)

type family = {
  name : string;  (** sanitized on render: [[a-zA-Z0-9_:]] only *)
  help : string;
  kind : [ `Counter | `Gauge ];
  samples : ((string * string) list * float) list;
      (** (labels, value); non-finite values are skipped on render *)
}

val sanitize_name : string -> string
(** Replace characters outside [[a-zA-Z0-9_:]] with ['_'], prefixing
    ['_'] when the result would start with a digit. *)

val render : family list -> string
(** [# HELP]/[# TYPE] headers plus one sample line per entry; label
    values are escaped per the exposition format. *)

val of_instr :
  ?latency:Lr_report.Histogram.summary -> ?extra:family list -> unit ->
  family list
(** Families from the calling domain's {!Lr_instr.Instr} aggregates:
    [lr_span_seconds_total]/[lr_span_calls_total] labelled by span
    path, [lr_counter_total] by counter name,
    [lr_counter_by_span_total] by both, GC counters/gauges from
    [Gc.quick_stat], the synthetic clock skew, and — when [latency] is
    given — [lr_query_latency_seconds] quantiles. [extra] families are
    appended verbatim. *)

val write_file : string -> family list -> unit
