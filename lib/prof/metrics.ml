module Instr = Lr_instr.Instr
module Histogram = Lr_report.Histogram

type family = {
  name : string;
  help : string;
  kind : [ `Counter | `Gauge ];
  samples : ((string * string) list * float) list;
}

let sanitize_name s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    s;
  let s = Buffer.contents b in
  if s = "" then "_"
  else match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.15g" v

let render families =
  let b = Buffer.create 4096 in
  List.iter
    (fun f ->
      let name = sanitize_name f.name in
      Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name f.help);
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s %s\n" name
           (match f.kind with `Counter -> "counter" | `Gauge -> "gauge"));
      List.iter
        (fun (labels, v) ->
          if Float.is_finite v then begin
            let lbl =
              match labels with
              | [] -> ""
              | l ->
                  "{"
                  ^ String.concat ","
                      (List.map
                         (fun (k, v) ->
                           Printf.sprintf "%s=\"%s\"" (sanitize_name k)
                             (escape_label v))
                         l)
                  ^ "}"
            in
            Buffer.add_string b
              (Printf.sprintf "%s%s %s\n" name lbl (render_value v))
          end)
        f.samples)
    families;
  Buffer.contents b

let of_instr ?latency ?(extra = []) () =
  let span_s = Instr.span_seconds () in
  let span_c = Instr.span_calls () in
  let counters = Instr.counter_totals () in
  let by_span = Instr.counters_by_span () in
  let gc = Gc.quick_stat () in
  let base =
    [
      {
        name = "lr_span_seconds_total";
        help = "Cumulative seconds per telemetry span path.";
        kind = `Counter;
        samples = List.map (fun (p, s) -> ([ ("path", p) ], s)) span_s;
      };
      {
        name = "lr_span_calls_total";
        help = "Completed calls per telemetry span path.";
        kind = `Counter;
        samples =
          List.map (fun (p, c) -> ([ ("path", p) ], float_of_int c)) span_c;
      };
      {
        name = "lr_counter_total";
        help = "Telemetry counter totals across all spans.";
        kind = `Counter;
        samples =
          List.map (fun (n, v) -> ([ ("name", n) ], float_of_int v)) counters;
      };
      {
        name = "lr_counter_by_span_total";
        help = "Telemetry counter totals attributed to their span path.";
        kind = `Counter;
        samples =
          List.map
            (fun ((p, n), v) ->
              ([ ("path", p); ("name", n) ], float_of_int v))
            by_span;
      };
      {
        name = "lr_clock_skew_seconds";
        help = "Synthetic clock skew injected by the fault harness.";
        kind = `Gauge;
        samples = [ ([], Instr.clock_skew_s ()) ];
      };
      {
        name = "lr_gc_minor_words_total";
        help = "OCaml GC minor words allocated.";
        kind = `Counter;
        samples = [ ([], gc.Gc.minor_words) ];
      };
      {
        name = "lr_gc_promoted_words_total";
        help = "OCaml GC words promoted from the minor heap.";
        kind = `Counter;
        samples = [ ([], gc.Gc.promoted_words) ];
      };
      {
        name = "lr_gc_major_words_total";
        help = "OCaml GC major words allocated.";
        kind = `Counter;
        samples = [ ([], gc.Gc.major_words) ];
      };
      {
        name = "lr_gc_minor_collections_total";
        help = "OCaml GC minor collections.";
        kind = `Counter;
        samples = [ ([], float_of_int gc.Gc.minor_collections) ];
      };
      {
        name = "lr_gc_major_collections_total";
        help = "OCaml GC major collections.";
        kind = `Counter;
        samples = [ ([], float_of_int gc.Gc.major_collections) ];
      };
      {
        name = "lr_gc_compactions_total";
        help = "OCaml GC heap compactions.";
        kind = `Counter;
        samples = [ ([], float_of_int gc.Gc.compactions) ];
      };
      {
        name = "lr_gc_heap_words";
        help = "OCaml GC major heap size in words.";
        kind = `Gauge;
        samples = [ ([], float_of_int gc.Gc.heap_words) ];
      };
    ]
  in
  let latency_fams =
    match latency with
    | None -> []
    | Some (s : Histogram.summary) ->
        [
          {
            name = "lr_query_latency_seconds";
            help = "Black-box query latency quantiles (per-query seconds).";
            kind = `Gauge;
            samples =
              [
                ([ ("quantile", "0.5") ], s.Histogram.p50);
                ([ ("quantile", "0.9") ], s.Histogram.p90);
                ([ ("quantile", "0.99") ], s.Histogram.p99);
              ];
          };
          {
            name = "lr_query_latency_seconds_count";
            help = "Black-box queries measured by the latency histogram.";
            kind = `Counter;
            samples = [ ([], float_of_int s.Histogram.count) ];
          };
          {
            name = "lr_query_latency_seconds_sum";
            help = "Summed black-box query latency in seconds.";
            kind = `Counter;
            samples =
              [ ([], s.Histogram.mean *. float_of_int s.Histogram.count) ];
          };
        ]
  in
  base @ latency_fams @ extra

let write_file path families =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render families))
