module Instr = Lr_instr.Instr
module Json = Lr_instr.Json

let schema = "lr-progress/v1"

let po_name name =
  if String.length name > 3 && String.sub name 0 3 = "po:" then
    Some (String.sub name 3 (String.length name - 3))
  else None

let sink ?(out = print_string) ?(every = 10_000) ?query_budget ?time_budget_s
    () =
  let started = ref false in
  let first = ref nan in
  let last_ts = ref nan in
  let queries = ref 0 in
  let retries = ref 0 in
  let degraded = ref 0 in
  let outputs_total = ref None in
  let outputs_done = ref 0 in
  let last_bucket = ref 0 in
  let line kvs =
    out (Json.to_string (Json.Obj kvs));
    out "\n"
  in
  let t ts = ("t", Json.Float (ts -. !first)) in
  let ev kind = ("ev", Json.String kind) in
  let observe ts =
    if not !started then begin
      started := true;
      first := ts;
      line
        ([ ev "run_start"; ("schema", Json.String schema); t ts ]
        @ (match query_budget with
          | Some b -> [ ("query_budget", Json.Int b) ]
          | None -> [])
        @
        match time_budget_s with
        | Some b -> [ ("time_budget_s", Json.Float b) ]
        | None -> [])
    end;
    last_ts := ts
  in
  let emit = function
    | Instr.Span_begin { name; depth; ts; _ } -> (
        observe ts;
        match po_name name with
        | Some po -> line [ ev "output"; ("name", Json.String po); t ts ]
        | None ->
            if depth <= 1 then
              line [ ev "phase"; ("phase", Json.String name); t ts ])
    | Instr.Span_end { name; depth; ts; dur_s; _ } -> (
        observe ts;
        match po_name name with
        | Some po ->
            incr outputs_done;
            line
              ([
                 ev "output_done";
                 ("name", Json.String po);
                 ("seconds", Json.Float dur_s);
                 ("n", Json.Int !outputs_done);
               ]
              @ (match !outputs_total with
                | Some total -> [ ("of", Json.Int total) ]
                | None -> [])
              @ [ t ts ])
        | None ->
            if depth <= 1 then
              line
                [
                  ev "phase_end";
                  ("phase", Json.String name);
                  ("seconds", Json.Float dur_s);
                  t ts;
                ])
    | Instr.Count { name = "queries"; total; ts; _ } ->
        observe ts;
        queries := total;
        let bucket = total / every in
        if bucket > !last_bucket then begin
          last_bucket := bucket;
          line
            ([ ev "queries"; ("queries", Json.Int total); t ts ]
            @ (match query_budget with
              | Some b when b > 0 ->
                  [
                    ("budget", Json.Int b);
                    ("frac", Json.Float (float_of_int total /. float_of_int b));
                  ]
              | _ -> [])
            @
            match time_budget_s with
            | Some b ->
                [
                  ("elapsed_s", Json.Float (ts -. !first));
                  ("time_budget_s", Json.Float b);
                ]
            | None -> [])
        end
    | Instr.Count { name = "query.retries"; incr = n; total; ts; _ } ->
        observe ts;
        retries := total;
        line [ ev "retry"; ("n", Json.Int n); ("total", Json.Int total); t ts ]
    | Instr.Count { name = "learn.degraded"; total; ts; path; _ } ->
        observe ts;
        degraded := total;
        line
          [
            ev "degraded";
            ("total", Json.Int total);
            ("path", Json.String path);
            t ts;
          ]
    | Instr.Count { name = "learn.skipped"; total; ts; path; _ } ->
        observe ts;
        line
          [
            ev "skipped";
            ("total", Json.Int total);
            ("path", Json.String path);
            t ts;
          ]
    | Instr.Count { ts; _ } -> observe ts
    | Instr.Gauge { name = "learn.outputs"; value; ts; _ } ->
        observe ts;
        outputs_total := Some (int_of_float value)
    | Instr.Gauge { ts; _ } -> observe ts
  in
  let flush () =
    if !started then
      line
        [
          ev "run_end";
          ("queries", Json.Int !queries);
          ("retries", Json.Int !retries);
          ("degraded", Json.Int !degraded);
          ("outputs_done", Json.Int !outputs_done);
          t !last_ts;
        ]
  in
  { Instr.emit; flush }

let file ?every ?query_budget ?time_budget_s path =
  let oc = open_out path in
  let inner =
    sink ~out:(output_string oc) ?every ?query_budget ?time_budget_s ()
  in
  let closed = ref false in
  {
    Instr.emit = (fun e -> if not !closed then inner.Instr.emit e);
    flush =
      (fun () ->
        if not !closed then begin
          inner.Instr.flush ();
          close_out oc;
          closed := true
        end);
  }
