(** Folded-stacks flamegraph export (format [lr-folded/v1]).

    One line per span with positive self time:
    [root;child;leaf <count>], where the stack is the span path with
    ['/'] replaced by [';'] and the count is the span's self time in
    integer microseconds. The output is the plain folded format
    consumed by speedscope ("Import" a [.folded] file) and by
    flamegraph.pl — no header lines, nothing else in the file. *)

val lines : Profile.t -> string list
(** In first-open order (parents before children); spans whose self
    time rounds to 0 µs are omitted. *)

val to_string : Profile.t -> string

val write_file : string -> Profile.t -> unit
