let lines (p : Profile.t) =
  List.filter_map
    (fun (n : Profile.node) ->
      let us = int_of_float (Float.round (n.Profile.self_s *. 1e6)) in
      if us <= 0 then None
      else begin
        let stack =
          String.concat ";" (String.split_on_char '/' n.Profile.path)
        in
        Some (Printf.sprintf "%s %d" stack us)
      end)
    p.Profile.nodes

let to_string p = String.concat "" (List.map (fun l -> l ^ "\n") (lines p))

let write_file path p =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string p))
