module Instr = Lr_instr.Instr
module Json = Lr_instr.Json

type node = {
  path : string;
  name : string;
  depth : int;
  calls : int;
  total_s : float;
  self_s : float;
  counters : (string * int) list;
}

type t = {
  nodes : node list;
  wall_s : float;
  counters : (string * int) list;
}

(* ---------- building ---------- *)

type agg = {
  a_name : string;
  a_depth : int;
  mutable a_calls : int;
  mutable a_total : float;
  a_counters : (string, int ref) Hashtbl.t;
  mutable a_corder : string list;  (* reversed first-seen order *)
}

let name_of_path path =
  match String.rindex_opt path '/' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let depth_of_path path =
  String.fold_left (fun n c -> if c = '/' then n + 1 else n) 0 path

let parent_of_path path =
  match String.rindex_opt path '/' with
  | Some i -> Some (String.sub path 0 i)
  | None -> None

let bump tbl order key n =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r + n
  | None ->
      Hashtbl.add tbl key (ref n);
      order := key :: !order

let of_events events =
  let tbl : (string, agg) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let gcount = Hashtbl.create 16 in
  let gorder = ref [] in
  let agg_of path name depth =
    match Hashtbl.find_opt tbl path with
    | Some a -> a
    | None ->
        let a =
          {
            a_name = name;
            a_depth = depth;
            a_calls = 0;
            a_total = 0.0;
            a_counters = Hashtbl.create 8;
            a_corder = [];
          }
        in
        Hashtbl.add tbl path a;
        order := path :: !order;
        a
  in
  List.iter
    (function
      | Instr.Span_begin { name; path; depth; _ } ->
          ignore (agg_of path name depth)
      | Instr.Span_end { name; path; dur_s; depth; _ } ->
          let a = agg_of path name depth in
          a.a_calls <- a.a_calls + 1;
          a.a_total <- a.a_total +. dur_s
      | Instr.Count { name; path; incr; _ } ->
          bump gcount gorder name incr;
          if path <> "" then begin
            let a = agg_of path (name_of_path path) (depth_of_path path) in
            let corder = ref a.a_corder in
            bump a.a_counters corder name incr;
            a.a_corder <- !corder
          end
      | Instr.Gauge _ -> ())
    events;
  (* effective totals, bottom-up: spans replayed through [Instr.absorb]
     keep their worker-side durations, which can exceed the brief
     merge-time parent span. Widening every parent to at least the sum
     of its children keeps self = total - children non-negative and
     stops replayed work from surfacing as unattributed self time at an
     ancestor (it is the children that really spent it) *)
  let children : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun path _ ->
      match parent_of_path path with
      | Some parent when Hashtbl.mem tbl parent ->
          let cur =
            Option.value ~default:[] (Hashtbl.find_opt children parent)
          in
          Hashtbl.replace children parent (path :: cur)
      | _ -> ())
    tbl;
  let eff : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let rec eff_of path =
    match Hashtbl.find_opt eff path with
    | Some v -> v
    | None ->
        let a = Hashtbl.find tbl path in
        let kid_sum =
          List.fold_left
            (fun s c -> s +. eff_of c)
            0.0
            (Option.value ~default:[] (Hashtbl.find_opt children path))
        in
        let v = Float.max a.a_total kid_sum in
        Hashtbl.add eff path v;
        v
  in
  Hashtbl.iter (fun path _ -> ignore (eff_of path)) tbl;
  let nodes =
    List.rev_map
      (fun path ->
        let a = Hashtbl.find tbl path in
        let kids =
          List.fold_left
            (fun s c -> s +. eff_of c)
            0.0
            (Option.value ~default:[] (Hashtbl.find_opt children path))
        in
        let total = eff_of path in
        {
          path;
          name = a.a_name;
          depth = a.a_depth;
          calls = a.a_calls;
          total_s = total;
          self_s = Float.max 0.0 (total -. kids);
          counters =
            List.rev_map
              (fun c -> (c, !(Hashtbl.find a.a_counters c)))
              a.a_corder;
        })
      !order
  in
  let wall_s =
    List.fold_left
      (fun acc n -> if parent_of_path n.path = None then acc +. n.total_s else acc)
      0.0 nodes
  in
  let counters =
    List.rev_map (fun c -> (c, !(Hashtbl.find gcount c))) !gorder
  in
  { nodes; wall_s; counters }

(* ---------- parsing ---------- *)

let event_of_json j =
  let str k = Option.bind (Json.member k j) Json.get_string in
  let fl k = Option.bind (Json.member k j) Json.get_float in
  let it k = Option.bind (Json.member k j) Json.get_int in
  match (str "ev", str "name", str "path", fl "ts") with
  | Some ev, Some name, Some path, Some ts -> (
      match ev with
      | "span_begin" ->
          Option.map
            (fun depth -> Instr.Span_begin { name; path; ts; depth })
            (it "depth")
      | "span_end" -> (
          match (fl "dur_s", it "depth") with
          | Some dur_s, Some depth ->
              Some (Instr.Span_end { name; path; ts; dur_s; depth })
          | _ -> None)
      | "count" -> (
          match (it "incr", it "total") with
          | Some incr, Some total ->
              Some (Instr.Count { name; path; ts; incr; total })
          | _ -> None)
      | "gauge" ->
          Option.map
            (fun value -> Instr.Gauge { name; path; ts; value })
            (fl "value")
      | _ -> None)
  | _ -> None

let of_jsonl_string s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (of_events (List.rev acc))
    | line :: rest ->
        let t = String.trim line in
        if t = "" then go (lineno + 1) acc rest
        else begin
          match Json.of_string t with
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
          | Ok j -> (
              match event_of_json j with
              | Some ev -> go (lineno + 1) (ev :: acc) rest
              | None -> go (lineno + 1) acc rest (* unknown kind: skip *))
        end
  in
  go 1 [] lines

(* Json parse errors carry a character offset ("... at offset N");
   loader callers think in lines, so translate. *)
let with_line_number s = function
  | Ok _ as ok -> ok
  | Error e -> (
      let line_of_offset off =
        let off = min off (String.length s) in
        let line = ref 1 in
        for i = 0 to off - 1 do
          if s.[i] = '\n' then incr line
        done;
        !line
      in
      let marker = " at offset " in
      let mlen = String.length marker in
      let rec find i =
        if i + mlen > String.length e then None
        else if String.sub e i mlen = marker then Some i
        else find (i + 1)
      in
      match find 0 with
      | None -> Error e
      | Some i -> (
          match
            int_of_string_opt
              (String.trim (String.sub e (i + mlen) (String.length e - i - mlen)))
          with
          | Some off ->
              Error (Printf.sprintf "line %d: %s" (line_of_offset off) e)
          | None -> Error e))

let of_chrome_string s =
  match with_line_number s (Json.of_string s) with
  | Error e -> Error e
  | Ok (Json.List evs) ->
      (* reconstruct paths from B/E nesting; counter tracks carry running
         totals, so increments are recovered as deltas (negative deltas —
         a gauge in disguise — are dropped) *)
      let stack = ref [] in
      let last_total = Hashtbl.create 16 in
      let out = ref [] in
      List.iter
        (fun e ->
          let str k = Option.bind (Json.member k e) Json.get_string in
          let fl k = Option.bind (Json.member k e) Json.get_float in
          match (str "ph", str "name", fl "ts") with
          | Some "B", Some name, Some ts ->
              let path =
                match !stack with
                | [] -> name
                | (_, p, _) :: _ -> p ^ "/" ^ name
              in
              let depth = List.length !stack in
              stack := (name, path, ts) :: !stack;
              out := Instr.Span_begin { name; path; ts = ts /. 1e6; depth } :: !out
          | Some "E", Some name, Some ts -> (
              match !stack with
              | (n, path, t0) :: rest when n = name ->
                  stack := rest;
                  out :=
                    Instr.Span_end
                      {
                        name;
                        path;
                        ts = ts /. 1e6;
                        dur_s = (ts -. t0) /. 1e6;
                        depth = List.length rest;
                      }
                    :: !out
              | _ -> () (* unbalanced: skip *))
          | Some "C", Some name, Some ts -> (
              let v = Option.bind (Json.member "args" e) (Json.member name) in
              match Option.bind v Json.get_int with
              | Some total ->
                  let prev =
                    match Hashtbl.find_opt last_total name with
                    | Some p -> p
                    | None -> 0
                  in
                  Hashtbl.replace last_total name total;
                  if total >= prev then begin
                    let path =
                      match !stack with [] -> "" | (_, p, _) :: _ -> p
                    in
                    out :=
                      Instr.Count
                        { name; path; ts = ts /. 1e6; incr = total - prev; total }
                      :: !out
                  end
              | None -> ())
          | _ -> ())
        evs;
      Ok (of_events (List.rev !out))
  | Ok _ -> Error "chrome trace: expected a JSON array"

let load_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let rec first_byte i =
        if i >= String.length s then None
        else
          match s.[i] with
          | ' ' | '\t' | '\n' | '\r' -> first_byte (i + 1)
          | c -> Some c
      in
      let parse () =
        match first_byte 0 with
        | Some '[' -> of_chrome_string s
        | _ -> of_jsonl_string s
      in
      (* a malformed file must come back as [Error], never an exception *)
      (try parse () with
      | Failure m -> Error m
      | e -> Error (Printexc.to_string e))

(* ---------- queries ---------- *)

let find t path = List.find_opt (fun n -> n.path = path) t.nodes

let top ?(k = 20) t =
  let sorted =
    List.sort
      (fun a b ->
        match compare b.self_s a.self_s with 0 -> compare a.path b.path | c -> c)
      t.nodes
  in
  List.filteri (fun i _ -> i < k) sorted

(* Self-time regressions of [new_t] against [old_t]: paths whose self
   seconds exceed the old value by more than [max_frac] (relative) plus
   [slack_s] (absolute floor, so microsecond jitter on near-zero spans
   cannot gate a CI run). Sorted by regression size, worst first. *)
let regressions ?(slack_s = 0.01) ~max_frac old_t new_t =
  List.filter_map
    (fun n ->
      let old_self =
        match find old_t n.path with Some o -> o.self_s | None -> 0.0
      in
      let limit = (old_self *. (1.0 +. max_frac)) +. slack_s in
      if n.self_s > limit then Some (n.path, old_self, n.self_s) else None)
    new_t.nodes
  |> List.sort (fun (_, o1, n1) (_, o2, n2) ->
         compare (n2 -. o2) (n1 -. o1))

let is_leaf t =
  let parents = Hashtbl.create 64 in
  List.iter
    (fun n ->
      match parent_of_path n.path with
      | Some p -> Hashtbl.replace parents p ()
      | None -> ())
    t.nodes;
  fun n -> not (Hashtbl.mem parents n.path)

let in_subtree root n =
  n.path = root.path
  || String.length n.path > String.length root.path
     && String.sub n.path 0 (String.length root.path + 1) = root.path ^ "/"

let leaf_self_s t ~under =
  let leaf = is_leaf t in
  let roots = List.filter under t.nodes in
  List.fold_left
    (fun acc n ->
      if leaf n && List.exists (fun r -> in_subtree r n) roots then
        acc +. n.self_s
      else acc)
    0.0 t.nodes

(* summed self time of the whole subtree — the honest denominator for
   attribution. For spans replayed through [Instr.absorb], children keep
   their worker-side durations, which can exceed the brief merge-time
   parent span; the parent's [total_s] would then understate the subtree
   and push attribution past 100%. *)
let subtree_self_s t ~under =
  let roots = List.filter under t.nodes in
  List.fold_left
    (fun acc n ->
      if List.exists (fun r -> in_subtree r n) roots then acc +. n.self_s
      else acc)
    0.0 t.nodes

(* ---------- rendering ---------- *)

let pct num den = if den <= 0.0 then 0.0 else 100.0 *. num /. den

let render_top ?(k = 20) t =
  let buf = Buffer.create 4096 in
  let leaf = is_leaf t in
  Buffer.add_string buf
    (Printf.sprintf "hotspots by self time (wall %.3f s, %d spans):\n" t.wall_s
       (List.length t.nodes));
  Buffer.add_string buf
    (Printf.sprintf "  %4s %9s %6s %9s %7s  %s\n" "#" "self s" "self%"
       "total s" "calls" "path");
  List.iteri
    (fun i n ->
      Buffer.add_string buf
        (Printf.sprintf "  %4d %9.3f %5.1f%% %9.3f %7d  %s%s\n" (i + 1)
           n.self_s
           (pct n.self_s t.wall_s)
           n.total_s n.calls n.path
           (if leaf n then "" else " (+children)")))
    (top ~k t);
  (* depth-1 phase breakdown, with the conquer fan-out aggregated *)
  let depth1 = List.filter (fun n -> n.depth = 1) t.nodes in
  if depth1 <> [] then begin
    Buffer.add_string buf
      "\nphase attribution (leaf self time / subtree self time):\n";
    Buffer.add_string buf
      (Printf.sprintf "  %-24s %9s %9s %6s\n" "phase" "subtree s" "leaf s"
         "attr%");
    let row name total leaf_s =
      Buffer.add_string buf
        (Printf.sprintf "  %-24s %9.3f %9.3f %5.1f%%\n" name total leaf_s
           (pct leaf_s total))
    in
    List.iter
      (fun n ->
        let under m = m.path = n.path in
        row n.name (subtree_self_s t ~under) (leaf_self_s t ~under))
      depth1;
    let is_po n =
      n.depth = 1 && String.length n.name > 3 && String.sub n.name 0 3 = "po:"
    in
    (match List.filter is_po depth1 with
    | [] -> ()
    | _ ->
        row "po:* (conquer)"
          (subtree_self_s t ~under:is_po)
          (leaf_self_s t ~under:is_po))
  end;
  (* counter rates on the spans that own them *)
  let counted =
    List.filter_map
      (fun (n : node) ->
        match n.counters with
        | [] -> None
        | cs ->
            Some
              (List.map
                 (fun (c, v) ->
                   (n.path, c, v, if n.total_s > 0.0 then
                      float_of_int v /. n.total_s else Float.nan))
                 cs))
      t.nodes
    |> List.concat
  in
  if counted <> [] then begin
    let counted =
      List.sort (fun (_, _, a, _) (_, _, b, _) -> compare b a) counted
    in
    Buffer.add_string buf "\ncounter rates by span:\n";
    Buffer.add_string buf
      (Printf.sprintf "  %-40s %-18s %12s %12s\n" "span" "counter" "total"
         "per second");
    List.iteri
      (fun i (path, c, v, rate) ->
        if i < k then
          Buffer.add_string buf
            (Printf.sprintf "  %-40s %-18s %12d %12s\n" path c v
               (if Float.is_finite rate then Printf.sprintf "%.0f" rate
                else "-")))
      counted
  end;
  Buffer.contents buf

let render_diff ?(k = 20) old_t new_t =
  let buf = Buffer.create 4096 in
  let paths = Hashtbl.create 64 in
  let order = ref [] in
  let note side n =
    let o, nw =
      match Hashtbl.find_opt paths n.path with
      | Some (o, nw) -> (o, nw)
      | None ->
          order := n.path :: !order;
          (None, None)
    in
    Hashtbl.replace paths n.path
      (match side with `Old -> (Some n, nw) | `New -> (o, Some n))
  in
  List.iter (note `Old) old_t.nodes;
  List.iter (note `New) new_t.nodes;
  let rows =
    List.rev_map
      (fun path ->
        let o, nw = Hashtbl.find paths path in
        let self = function Some n -> n.self_s | None -> 0.0 in
        let total = function Some n -> n.total_s | None -> 0.0 in
        (path, self o, self nw, total o, total nw))
      !order
  in
  let rows =
    List.sort
      (fun (_, so, sn, _, _) (_, so', sn', _, _) ->
        compare (Float.abs (sn' -. so')) (Float.abs (sn -. so)))
      rows
  in
  Buffer.add_string buf
    (Printf.sprintf "profile diff (wall %.3f s -> %.3f s, %+.3f s):\n"
       old_t.wall_s new_t.wall_s
       (new_t.wall_s -. old_t.wall_s));
  Buffer.add_string buf
    (Printf.sprintf "  %9s %9s %9s  %s\n" "old self" "new self" "delta" "path");
  List.iteri
    (fun i (path, so, sn, _, _) ->
      if i < k then
        Buffer.add_string buf
          (Printf.sprintf "  %9.3f %9.3f %+9.3f  %s\n" so sn (sn -. so) path))
    rows;
  (* counter deltas *)
  let old_c = old_t.counters in
  let merged = Hashtbl.create 16 in
  let corder = ref [] in
  List.iter
    (fun (c, v) ->
      if not (Hashtbl.mem merged c) then corder := c :: !corder;
      Hashtbl.replace merged c (v, 0))
    old_c;
  List.iter
    (fun (c, v) ->
      match Hashtbl.find_opt merged c with
      | Some (o, _) -> Hashtbl.replace merged c (o, v)
      | None ->
          corder := c :: !corder;
          Hashtbl.replace merged c (0, v))
    new_t.counters;
  if !corder <> [] then begin
    Buffer.add_string buf "\ncounter totals:\n";
    Buffer.add_string buf
      (Printf.sprintf "  %12s %12s %12s  %s\n" "old" "new" "delta" "counter");
    List.iter
      (fun c ->
        let o, n = Hashtbl.find merged c in
        if o <> n then
          Buffer.add_string buf
            (Printf.sprintf "  %12d %12d %+12d  %s\n" o n (n - o) c))
      (List.rev !corder)
  end;
  Buffer.contents buf
