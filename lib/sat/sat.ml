(* Conflict-driven clause learning in the MiniSat architecture.
   Internal literal encoding: [2*v] is the positive literal of 0-based
   variable [v], [2*v+1] its negation; [lit lxor 1] complements. *)

type result = Sat | Unsat

(* Search-shaping knobs. [default] reproduces the historical hard-coded
   constants exactly; alternative configurations diversify a portfolio
   without touching soundness (any config decides the same formulas, only
   the trajectory — and therefore the model and the time-to-answer —
   changes). *)
type config = {
  var_decay : float;  (** activity decay divisor, (0, 1] *)
  restart_first : int;  (** conflicts before the first restart *)
  restart_inflate : int * int;
      (** (num, den): limit grows by [limit * num / den] each restart *)
  default_polarity : bool;  (** initial phase of fresh variables *)
}

let default_config =
  {
    var_decay = 0.95;
    restart_first = 100;
    restart_inflate = (3, 2);
    default_polarity = false;
  }

module Vec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 4 0; len = 0 }

  let push t x =
    if t.len = Array.length t.data then begin
      let d = Array.make (2 * t.len) 0 in
      Array.blit t.data 0 d 0 t.len;
      t.data <- d
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let get t i = t.data.(i)
  let set t i x = t.data.(i) <- x
  let len t = t.len
  let shrink t n = t.len <- n
end

type t = {
  mutable nvars : int;
  mutable clauses : int array array;
  mutable nclauses : int;
  mutable watches : Vec.t array; (* per literal *)
  mutable assigns : int array; (* per var: -1 undef / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : int array; (* clause index or -1 *)
  mutable activity : float array;
  mutable polarity : bool array; (* phase saving *)
  mutable seen : bool array;
  trail : Vec.t;
  trail_lim : Vec.t;
  mutable qhead : int;
  mutable var_inc : float;
  mutable ok : bool; (* false once root-level conflict is derived *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  config : config;
}

let create ?(config = default_config) () =
  {
    config;
    nvars = 0;
    clauses = Array.make 16 [||];
    nclauses = 0;
    watches = Array.make 16 (Vec.create ());
    assigns = [||];
    level = [||];
    reason = [||];
    activity = [||];
    polarity = [||];
    seen = [||];
    trail = Vec.create ();
    trail_lim = Vec.create ();
    qhead = 0;
    var_inc = 1.0;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
  }

let num_vars t = t.nvars

let grow_arrays t n =
  let old = Array.length t.assigns in
  if n > old then begin
    let cap = max 16 (max n (2 * old)) in
    let extend a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 old;
      b
    in
    t.assigns <- extend t.assigns (-1);
    t.level <- extend t.level 0;
    t.reason <- extend t.reason (-1);
    t.activity <- extend t.activity 0.0;
    t.polarity <- extend t.polarity t.config.default_polarity;
    t.seen <- extend t.seen false;
    let w = Array.make (2 * cap) (Vec.create ()) in
    Array.blit t.watches 0 w 0 (2 * old);
    for i = 2 * old to (2 * cap) - 1 do
      w.(i) <- Vec.create ()
    done;
    t.watches <- w
  end

let new_var t =
  t.nvars <- t.nvars + 1;
  grow_arrays t t.nvars;
  t.nvars

(* internal encodings *)
let lit_of_dimacs l =
  let v = abs l - 1 in
  (2 * v) + if l < 0 then 1 else 0

let var_of_lit l = l lsr 1

let lit_value t l =
  let a = t.assigns.(var_of_lit l) in
  if a < 0 then -1 else a lxor (l land 1)

let decision_level t = Vec.len t.trail_lim

let enqueue t l reason =
  t.assigns.(var_of_lit l) <- 1 - (l land 1);
  t.level.(var_of_lit l) <- decision_level t;
  t.reason.(var_of_lit l) <- reason;
  Vec.push t.trail l

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = Vec.get t.trail_lim lvl in
    for i = Vec.len t.trail - 1 downto bound do
      let l = Vec.get t.trail i in
      let v = var_of_lit l in
      t.assigns.(v) <- -1;
      t.polarity.(v) <- l land 1 = 0;
      t.reason.(v) <- -1
    done;
    Vec.shrink t.trail bound;
    Vec.shrink t.trail_lim lvl;
    t.qhead <- Vec.len t.trail
  end

let push_clause t arr =
  if t.nclauses = Array.length t.clauses then begin
    let c = Array.make (2 * t.nclauses) [||] in
    Array.blit t.clauses 0 c 0 t.nclauses;
    t.clauses <- c
  end;
  t.clauses.(t.nclauses) <- arr;
  t.nclauses <- t.nclauses + 1;
  t.nclauses - 1

let watch_clause t ci =
  let c = t.clauses.(ci) in
  Vec.push t.watches.(c.(0) lxor 1) ci;
  Vec.push t.watches.(c.(1) lxor 1) ci

(* Returns the index of a conflicting clause, or -1. *)
let propagate t =
  let conflict = ref (-1) in
  while !conflict < 0 && t.qhead < Vec.len t.trail do
    let p = Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    t.propagations <- t.propagations + 1;
    let ws = t.watches.(p) in
    (* [p] became true; visit clauses watching [~p]. We compact [ws] in
       place: surviving watches are written back at [kept]. *)
    let kept = ref 0 in
    let i = ref 0 in
    let n = Vec.len ws in
    while !i < n do
      let ci = Vec.get ws !i in
      incr i;
      if !conflict >= 0 then begin
        Vec.set ws !kept ci;
        incr kept
      end
      else begin
        let c = t.clauses.(ci) in
        let falsified = p lxor 1 in
        if c.(0) = falsified then begin
          c.(0) <- c.(1);
          c.(1) <- falsified
        end;
        if lit_value t c.(0) = 1 then begin
          Vec.set ws !kept ci;
          incr kept
        end
        else begin
          (* search replacement watch *)
          let len = Array.length c in
          let found = ref false in
          let k = ref 2 in
          while (not !found) && !k < len do
            if lit_value t c.(!k) <> 0 then begin
              c.(1) <- c.(!k);
              c.(!k) <- falsified;
              Vec.push t.watches.(c.(1) lxor 1) ci;
              found := true
            end;
            incr k
          done;
          if !found then ()
          else begin
            Vec.set ws !kept ci;
            incr kept;
            if lit_value t c.(0) = 0 then conflict := ci
            else enqueue t c.(0) ci
          end
        end
      end
    done;
    Vec.shrink ws !kept
  done;
  !conflict

let bump_var t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end

let decay_activities t = t.var_inc <- t.var_inc /. t.config.var_decay

(* First-UIP conflict analysis. Returns (learned clause with asserting
   literal first, backtrack level). *)
let analyze t confl =
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let index = ref (Vec.len t.trail - 1) in
  let confl = ref confl in
  let dl = decision_level t in
  let continue = ref true in
  while !continue do
    let c = t.clauses.(!confl) in
    let start = if !p < 0 then 0 else 1 in
    for j = start to Array.length c - 1 do
      let q = c.(j) in
      let v = var_of_lit q in
      if (not t.seen.(v)) && t.level.(v) > 0 then begin
        t.seen.(v) <- true;
        bump_var t v;
        if t.level.(v) >= dl then incr counter
        else learnt := q :: !learnt
      end
    done;
    (* pick next literal to resolve on: last assigned seen var *)
    let rec next () =
      let l = Vec.get t.trail !index in
      decr index;
      if t.seen.(var_of_lit l) then l else next ()
    in
    let l = next () in
    t.seen.(var_of_lit l) <- false;
    decr counter;
    if !counter = 0 then begin
      p := l;
      continue := false
    end
    else begin
      p := l;
      confl := t.reason.(var_of_lit l)
    end
  done;
  let asserting = !p lxor 1 in
  let clause = asserting :: !learnt in
  List.iter (fun q -> t.seen.(var_of_lit q) <- false) !learnt;
  let bt =
    List.fold_left
      (fun acc q -> if q = asserting then acc else max acc (t.level.(var_of_lit q)))
      0 clause
  in
  clause, bt

let learn t clause bt =
  cancel_until t bt;
  match clause with
  | [] -> t.ok <- false
  | [ l ] -> if lit_value t l <> 1 then enqueue t l (-1)
  | first :: _ ->
      (* ensure second watched literal is at the backtrack level *)
      let arr = Array.of_list clause in
      let best = ref 1 in
      for j = 2 to Array.length arr - 1 do
        if t.level.(var_of_lit arr.(j)) > t.level.(var_of_lit arr.(!best)) then
          best := j
      done;
      let tmp = arr.(1) in
      arr.(1) <- arr.(!best);
      arr.(!best) <- tmp;
      let ci = push_clause t arr in
      watch_clause t ci;
      enqueue t first ci

let add_clause t lits =
  if t.ok then begin
    (* adding clauses invalidates any previous model *)
    cancel_until t 0;
    let lits = List.map lit_of_dimacs lits in
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.mem (l lxor 1) lits) lits
    in
    if not tautology then begin
      (* drop root-falsified literals; detect already-satisfied clause *)
      let lits = List.filter (fun l -> lit_value t l <> 0) lits in
      let satisfied = List.exists (fun l -> lit_value t l = 1) lits in
      if not satisfied then
        match lits with
        | [] -> t.ok <- false
        | [ l ] ->
            enqueue t l (-1);
            if propagate t >= 0 then t.ok <- false
        | _ :: _ :: _ ->
            let ci = push_clause t (Array.of_list lits) in
            watch_clause t ci
    end
  end

let pick_branch_var t =
  let best = ref (-1) and best_act = ref neg_infinity in
  for v = 0 to t.nvars - 1 do
    if t.assigns.(v) < 0 && t.activity.(v) > !best_act then begin
      best := v;
      best_act := t.activity.(v)
    end
  done;
  !best

(* A resumable search position for budgeted solving. The restart schedule
   lives here rather than in a [solve]-local ref so that a sequence of
   [solve_limited] calls threading one budget replays, conflict for
   conflict, the trajectory of a single unbounded [solve] on the same
   query: a budget cut happens only at a restart boundary, and a restart
   leaves no trace beyond (cancel to level 0, inflate the limit) — exactly
   the state this record carries across the return. *)
type budget = { mutable restart_limit : int; mutable conflicts_here : int }

let budget t =
  { restart_limit = t.config.restart_first; conflicts_here = 0 }

let solve_core ?(assumptions = []) ?max_conflicts ~budget:b t =
  if not t.ok then Some Unsat
  else begin
    let assume = Array.of_list (List.map lit_of_dimacs assumptions) in
    let nassume = Array.length assume in
    cancel_until t 0;
    let spent = ref 0 in
    let answer = ref None in
    let paused = ref false in
    while !answer = None && not !paused do
      let confl = propagate t in
      if confl >= 0 then begin
        t.conflicts <- t.conflicts + 1;
        b.conflicts_here <- b.conflicts_here + 1;
        incr spent;
        if decision_level t <= nassume then answer := Some Unsat
        else begin
          let clause, bt = analyze t confl in
          (* never backjump into the middle of the assumption prefix with a
             pending asserting literal below it: clamp is safe because the
             asserting literal's level is <= bt by construction *)
          learn t clause bt;
          decay_activities t;
          if not t.ok then answer := Some Unsat
        end
      end
      else if b.conflicts_here >= b.restart_limit then begin
        b.conflicts_here <- 0;
        let num, den = t.config.restart_inflate in
        b.restart_limit <- b.restart_limit * num / den;
        t.restarts <- t.restarts + 1;
        cancel_until t 0;
        (* pause only here: the solver is at level 0 in exactly the state a
           mid-run restart leaves, so a resumed call continues the same
           trajectory *)
        match max_conflicts with
        | Some m when !spent >= m -> paused := true
        | _ -> ()
      end
      else begin
        let dl = decision_level t in
        if dl < nassume then begin
          let a = assume.(dl) in
          match lit_value t a with
          | 0 -> answer := Some Unsat
          | 1 ->
              (* already implied: open a vacuous level to keep the
                 level<->assumption indexing aligned *)
              Vec.push t.trail_lim (Vec.len t.trail)
          | _ ->
              Vec.push t.trail_lim (Vec.len t.trail);
              enqueue t a (-1)
        end
        else begin
          let v = pick_branch_var t in
          if v < 0 then answer := Some Sat
          else begin
            t.decisions <- t.decisions + 1;
            Vec.push t.trail_lim (Vec.len t.trail);
            enqueue t ((2 * v) + if t.polarity.(v) then 0 else 1) (-1)
          end
        end
      end
    done;
    !answer
  end

let solve ?assumptions t =
  match solve_core ?assumptions ~budget:(budget t) t with
  | Some r -> r
  | None -> assert false (* no budget: the loop only exits with an answer *)

let solve_limited ?assumptions ~budget ~max_conflicts t =
  if max_conflicts <= 0 then invalid_arg "Sat.solve_limited: bad budget";
  solve_core ?assumptions ~max_conflicts ~budget t

let value t v =
  if v < 1 || v > t.nvars then invalid_arg "Sat.value: unknown variable";
  t.assigns.(v - 1) = 1

let stats_conflicts t = t.conflicts
let stats_decisions t = t.decisions
let stats_propagations t = t.propagations
let stats_restarts t = t.restarts
