(** A CDCL SAT solver.

    Conflict-driven clause learning with two-watched-literal propagation,
    first-UIP learning, VSIDS-style activities and geometric restarts —
    the standard architecture, sized for the equivalence queries issued by
    the fraig pass and by test-time circuit equivalence checks.

    Variables are positive integers allocated by {!new_var}; a literal is a
    non-zero integer [±v] in the DIMACS convention. *)

type t

type result = Sat | Unsat

val create : unit -> t

val new_var : t -> int
(** Allocate the next variable (1, 2, 3, ...). *)

val num_vars : t -> int

val add_clause : t -> int list -> unit
(** Add a clause over already-allocated variables. Adding the empty clause
    (or two contradicting units) makes the instance permanently Unsat. *)

val solve : ?assumptions:int list -> t -> result
(** Decide satisfiability under the given assumption literals. The solver
    is incremental: further clauses may be added after a call and [solve]
    called again. *)

val value : t -> int -> bool
(** [value t v] — the value of variable [v] in the last Sat model.
    Unconstrained variables read [false]. Meaningless after Unsat. *)

val stats_conflicts : t -> int
val stats_decisions : t -> int
val stats_propagations : t -> int
val stats_restarts : t -> int
