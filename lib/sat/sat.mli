(** A CDCL SAT solver.

    Conflict-driven clause learning with two-watched-literal propagation,
    first-UIP learning, VSIDS-style activities and geometric restarts —
    the standard architecture, sized for the equivalence queries issued by
    the fraig pass and by test-time circuit equivalence checks.

    Variables are positive integers allocated by {!new_var}; a literal is a
    non-zero integer [±v] in the DIMACS convention. *)

type t

type result = Sat | Unsat

type config = {
  var_decay : float;  (** activity decay divisor, (0, 1] *)
  restart_first : int;  (** conflicts before the first restart *)
  restart_inflate : int * int;
      (** (num, den): the limit grows to [limit * num / den] per restart *)
  default_polarity : bool;  (** initial phase of fresh variables *)
}

val default_config : config
(** The historical constants (decay 0.95, restarts 100 × 3/2, negative
    first phase): [create ()] behaves exactly as it always has. *)

val create : ?config:config -> unit -> t

val new_var : t -> int
(** Allocate the next variable (1, 2, 3, ...). *)

val num_vars : t -> int

val add_clause : t -> int list -> unit
(** Add a clause over already-allocated variables. Adding the empty clause
    (or two contradicting units) makes the instance permanently Unsat. *)

val solve : ?assumptions:int list -> t -> result
(** Decide satisfiability under the given assumption literals. The solver
    is incremental: further clauses may be added after a call and [solve]
    called again. *)

type budget
(** A resumable search position for {!solve_limited}: carries the restart
    schedule across budget cuts. *)

val budget : t -> budget
(** A fresh budget, one per query. *)

val solve_limited :
  ?assumptions:int list -> budget:budget -> max_conflicts:int -> t ->
  result option
(** Run the search until it answers or has consumed at least
    [max_conflicts] conflicts in this call; [None] means the budget ran
    out. Cuts happen only at restart boundaries, so a sequence of
    [solve_limited] calls threading the same [budget] (with the same
    assumptions, no clauses added in between) replays conflict-for-conflict
    the trajectory of a single unbounded {!solve} on that query — same
    answer, same model, same learned clauses. *)

val value : t -> int -> bool
(** [value t v] — the value of variable [v] in the last Sat model.
    Unconstrained variables read [false]. Meaningless after Unsat. *)

val stats_conflicts : t -> int
val stats_decisions : t -> int
val stats_propagations : t -> int
val stats_restarts : t -> int
