(** Fixed-size domain pool with deterministic result ordering.

    The learner's conquer stage is embarrassingly parallel across
    primary outputs; this module supplies the one primitive it needs:
    [map] a task function over an item array on [jobs] OCaml 5 domains
    and get the results back {e in item order}, whatever order the
    domains finished in. Tasks must be self-contained — they may freely
    read shared immutable data, but every mutable resource (RNG stream,
    accounting shard, {!Lr_instr} context) must be owned by the task or
    merged afterwards by the caller; the pool adds no synchronisation
    beyond the job queue itself.

    A pool with [jobs = 1] spawns no domains at all: [map] runs the
    tasks inline, sequentially, in index order — byte-for-byte the
    execution a non-parallel build would perform. This is what makes
    "[--jobs N] is bit-identical to [--jobs 1]" testable: both paths run
    the {e same} task closures, only the schedule differs. *)

type pool

exception
  Task_error of {
    index : int;  (** the item whose task raised *)
    label : string;  (** caller-supplied item label, or ["item <i>"] *)
    exn : exn;
    backtrace : string;
  }
(** A task exception is caught in the worker, the remaining tasks are
    allowed to finish, and the {e lowest-index} failure is re-raised in
    the caller wrapped with its item's index and label. *)

val create : jobs:int -> pool
(** [create ~jobs] — a pool of [jobs] worker domains ([jobs >= 1];
    [jobs = 1] spawns none). Raises [Invalid_argument] otherwise. *)

val jobs : pool -> int

val default_jobs : unit -> int
(** What [--jobs 0] ("auto") resolves to:
    [Domain.recommended_domain_count ()], capped at 8 — per-output
    learning saturates well before wider pools pay off. *)

val map : ?labels:(int -> string) -> pool -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f items] runs [f items.(i)] for every [i] and returns the
    results in item order. Blocks until all tasks finish, even when one
    fails (then raises {!Task_error} for the lowest failing index).
    Must not be called from inside one of [pool]'s own tasks. *)

val map_workers :
  ?labels:(int -> string) -> pool -> ('a -> 'b) -> 'a array -> 'b array * int array
(** Like {!map} but also returns, per item, the index of the worker
    domain that ran it ([0 .. jobs-1]; always [0] on a 1-job pool) —
    telemetry for per-domain reporting, not part of any determinism
    guarantee. *)

val shutdown : pool -> unit
(** Terminate and join the worker domains. Idempotent. A pool must be
    shut down before program exit to avoid leaking domains; prefer
    {!with_pool}. *)

val with_pool : jobs:int -> (pool -> 'a) -> 'a
(** [with_pool ~jobs f] — create, run [f], always shut down. *)
