exception
  Task_error of {
    index : int;
    label : string;
    exn : exn;
    backtrace : string;
  }

let () =
  Printexc.register_printer (function
    | Task_error { index; label; exn; _ } ->
        Some
          (Printf.sprintf "Par.Task_error on %s (index %d): %s" label index
             (Printexc.to_string exn))
    | _ -> None)

(* Jobs receive the id of the worker domain running them, so callers can
   attribute work per domain. *)
type msg = Job of (int -> unit) | Quit

type pool = {
  n : int;
  queue : msg Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable domains : unit Domain.t list;  (** [] when [n = 1] *)
  mutable closed : bool;
}

let jobs t = t.n

let default_jobs () = max 1 (min 8 (Domain.recommended_domain_count ()))

let rec worker_loop pool id =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue do
    Condition.wait pool.nonempty pool.mutex
  done;
  let msg = Queue.pop pool.queue in
  Mutex.unlock pool.mutex;
  match msg with
  | Quit -> ()
  | Job f ->
      (* [f] never raises: [map] wraps the task body in its own handler *)
      f id;
      worker_loop pool id

let create ~jobs =
  if jobs < 1 then invalid_arg "Par.create: jobs must be >= 1";
  let pool =
    {
      n = jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      domains = [];
      closed = false;
    }
  in
  if jobs > 1 then
    pool.domains <-
      List.init jobs (fun id -> Domain.spawn (fun () -> worker_loop pool id));
  pool

let shutdown pool =
  if not pool.closed then begin
    pool.closed <- true;
    Mutex.lock pool.mutex;
    List.iter (fun _ -> Queue.push Quit pool.queue) pool.domains;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mutex;
    List.iter Domain.join pool.domains;
    pool.domains <- []
  end

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let default_label i = Printf.sprintf "item %d" i

let map_workers ?(labels = default_label) pool f items =
  if pool.closed then invalid_arg "Par.map: pool is shut down";
  let n = Array.length items in
  let results = Array.make n None in
  let workers = Array.make n 0 in
  let run_into i worker_id =
    let r =
      try Ok (f items.(i))
      with e ->
        let bt = Printexc.get_backtrace () in
        Error (e, bt)
    in
    results.(i) <- Some r;
    workers.(i) <- worker_id
  in
  if pool.n = 1 || n <= 1 then
    (* inline: sequential, index order, caller's domain — the reference
       schedule every parallel run must reproduce *)
    for i = 0 to n - 1 do
      run_into i 0
    done
  else begin
    let remaining = ref n in
    let all_done = Condition.create () in
    Mutex.lock pool.mutex;
    for i = 0 to n - 1 do
      Queue.push
        (Job
           (fun worker_id ->
             run_into i worker_id;
             Mutex.lock pool.mutex;
             decr remaining;
             if !remaining = 0 then Condition.broadcast all_done;
             Mutex.unlock pool.mutex))
        pool.queue
    done;
    Condition.broadcast pool.nonempty;
    while !remaining > 0 do
      Condition.wait all_done pool.mutex
    done;
    Mutex.unlock pool.mutex
  end;
  (* deterministic error report: lowest failing index wins *)
  Array.iteri
    (fun i r ->
      match r with
      | Some (Error (exn, backtrace)) ->
          raise (Task_error { index = i; label = labels i; exn; backtrace })
      | _ -> ())
    results;
  let out =
    Array.map
      (fun r -> match r with Some (Ok v) -> v | _ -> assert false)
      results
  in
  (out, workers)

let map ?labels pool f items = fst (map_workers ?labels pool f items)
