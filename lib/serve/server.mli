(** HTTP front of the [lr_serve] daemon.

    Runs on the same dependency-free blocking foundation as the
    observability plane ({!Lr_obs.Http}) and exposes the
    {{!Proto}[lr-serve/v1]} protocol:

    - [POST /learn] — submit a job spec; [202] with the job id, [400]
      on a malformed spec or unknown case, [429] + [Retry-After] when
      the queue is full or a tenant quota would be exceeded;
    - [GET /jobs] — all jobs, submission order;
    - [GET /jobs/ID] — one job's state object;
    - [GET /jobs/ID/progress] — chunked [lr-progress/v1] tail: ring
      history first, then live lines until the job finishes;
    - [GET /jobs/ID/result] — [200] result object (report + circuit
      text) when done, [409] while pending, [500] when failed;
    - [GET /cache/stats] — the circuit cache counters;
    - [GET /healthz], [GET /metrics] — liveness and Prometheus
      counters ([lr_serve_jobs_total] by state,
      [lr_serve_cache_*], queue depth, slots);
    - [POST /shutdown] — ask the daemon to exit; unblocks
      {!wait_shutdown} (the accept loop cannot stop itself). *)

type t

val create : Scheduler.t -> t

val start : ?addr:string -> port:int -> t -> (Lr_obs.Http.t, string) result
(** [port = 0] binds an ephemeral port (read it back with
    {!Lr_obs.Http.port}). *)

val wait_shutdown : t -> unit
(** Block until a [POST /shutdown] arrives. *)

val request_shutdown : t -> unit
(** What [POST /shutdown] calls; exposed for signal handlers. *)
