module Json = Lr_instr.Json
module N = Lr_netlist.Netlist
module Io = Lr_netlist.Io

type entry = { circuit_text : string; report : Json.t }

type stats = {
  entries : int;
  hits : int;
  misses : int;
  refused : int;
  inserts : int;
}

type t = {
  mu : Mutex.t;
  store : (string, entry) Hashtbl.t;
  dir : string option;
  mutable hits : int;
  mutable misses : int;
  mutable refused : int;
  mutable inserts : int;
}

let key ~fingerprint ~names_sig ~config_sig =
  let combined =
    Printf.sprintf "%s|%s|%s" (Fingerprint.to_hex fingerprint) names_sig
      config_sig
  in
  Printf.sprintf "%016Lx" (Fingerprint.hash64 combined)

let is_key s =
  String.length s = 16
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       s

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data);
  Sys.rename tmp path

let load_dir store dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun name ->
          match Filename.chop_suffix_opt ~suffix:".lrc" name with
          | Some k when is_key k -> (
              try
                let circuit_text = read_file (Filename.concat dir name) in
                (* the netlist must at least parse, else skip the entry *)
                ignore (Io.read circuit_text);
                let report =
                  match
                    Json.of_string
                      (read_file (Filename.concat dir (k ^ ".json")))
                  with
                  | Ok v -> v
                  | Error _ | (exception Sys_error _) -> Json.Null
                in
                Hashtbl.replace store k { circuit_text; report }
              with _ -> ())
          | _ -> ())
        names

let create ?dir () =
  let store = Hashtbl.create 64 in
  (match dir with
  | None -> ()
  | Some d ->
      (try if not (Sys.file_exists d) then Unix.mkdir d 0o755
       with Unix.Unix_error _ -> ());
      load_dir store d);
  {
    mu = Mutex.create ();
    store;
    dir;
    hits = 0;
    misses = 0;
    refused = 0;
    inserts = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let lookup t ~key ~verify =
  match locked t (fun () -> Hashtbl.find_opt t.store key) with
  | None ->
      locked t (fun () -> t.misses <- t.misses + 1);
      None
  | Some entry ->
      (* verify outside the lock: a CEC may be slow *)
      let ok =
        match Io.read entry.circuit_text with
        | exception _ -> false
        | circuit -> ( try verify circuit with _ -> false)
      in
      if ok then begin
        locked t (fun () -> t.hits <- t.hits + 1);
        Some entry
      end
      else begin
        locked t (fun () ->
            t.refused <- t.refused + 1;
            t.misses <- t.misses + 1;
            Hashtbl.remove t.store key);
        (match t.dir with
        | None -> ()
        | Some d ->
            List.iter
              (fun suffix ->
                try Sys.remove (Filename.concat d (key ^ suffix))
                with Sys_error _ -> ())
              [ ".lrc"; ".json" ]);
        None
      end

let insert t ~key ~circuit ~report =
  let circuit_text = Io.write circuit in
  locked t (fun () ->
      Hashtbl.replace t.store key { circuit_text; report };
      t.inserts <- t.inserts + 1);
  match t.dir with
  | None -> ()
  | Some d -> (
      try
        write_file (Filename.concat d (key ^ ".lrc")) circuit_text;
        write_file (Filename.concat d (key ^ ".json")) (Json.to_string report)
      with Sys_error _ | Unix.Unix_error _ -> ())

let stats t =
  locked t (fun () ->
      {
        entries = Hashtbl.length t.store;
        hits = t.hits;
        misses = t.misses;
        refused = t.refused;
        inserts = t.inserts;
      })

let stats_json t =
  let s = stats t in
  Json.Obj
    [
      ("schema", Json.String "lr-serve-cache/v1");
      ("entries", Json.Int s.entries);
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("refused", Json.Int s.refused);
      ("inserts", Json.Int s.inserts);
    ]
