module Json = Lr_instr.Json
module Instr = Lr_instr.Instr
module Http = Lr_obs.Http
module Box = Lr_blackbox.Blackbox
module Cases = Lr_cases.Cases
module N = Lr_netlist.Netlist
module Io = Lr_netlist.Io
module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module Equiv = Lr_aig.Equiv
module Learner = Logic_regression.Learner
module Progress = Lr_prof.Progress

type state = Queued | Running | Done | Failed of string

type job = {
  id : string;
  spec : Proto.spec;
  progress : Http.ring;
  submitted_at : float;
  mutable state : state;
  mutable cache : [ `Pending | `Hit | `Miss ];
  mutable result : (string * Json.t) option;
  mutable exec_order : int;
  mutable started_at : float;
  mutable finished_at : float;
}

type refusal =
  | Overloaded of { retry_after_s : float }
  | Quota of string
  | Bad_spec of string

type t = {
  mu : Mutex.t;
  cond : Condition.t;  (** new work, job finished, shutdown *)
  queue : job Queue.t;
  mutable all : job list;  (** newest first *)
  mutable next_id : int;
  mutable next_exec : int;
  mutable in_flight : int;  (** queued + running *)
  mutable running : int;
  mutable stopping : bool;
  reserved : (string, int) Hashtbl.t;  (** tenant -> reserved queries *)
  cache : Cache.t;
  slots : int;
  queue_limit : int;
  fp_words : int;
  tenant_queries : int option;
  max_time_budget_s : float option;
  mutable workers : unit Domain.t array;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* ---------- box resolution (mirrors the CLI's resolve_box) ---------- *)

let resolve (spec : Proto.spec) =
  match Cases.find spec.case with
  | cspec ->
      ( Cases.blackbox ?budget:spec.budget cspec,
        Some (Cases.build cspec) )
  | exception Not_found ->
      if Sys.file_exists spec.case then begin
        let golden =
          if Filename.check_suffix spec.case ".blif" then
            Lr_netlist.Blif.read_file spec.case
          else Io.read_file spec.case
        in
        (Box.of_netlist ?budget:spec.budget golden, Some golden)
      end
      else failwith (Printf.sprintf "unknown case or file: %s" spec.case)

let case_known (spec : Proto.spec) =
  match Cases.find spec.case with
  | _ -> true
  | exception Not_found -> Sys.file_exists spec.case

(* ---------- progress plumbing ---------- *)

let push_lines t job chunk =
  let lines = String.split_on_char '\n' chunk in
  locked t (fun () ->
      List.iter
        (fun line ->
          if line <> "" then Http.ring_push job.progress (line ^ "\n"))
        lines)

let progress_since t job since =
  locked t (fun () -> Http.ring_since job.progress since)

let progress_seq t job = locked t (fun () -> Http.ring_next_seq job.progress)

(* ---------- cache-hit verification ---------- *)

(* No reference netlist (file-less boxes): compare the cached circuit
   against the live box on a fresh probe stream — distinct from the
   fingerprint's, so a lookup is never "verified" by the very samples
   that built the key. *)
let sampled_equal box cached ~seed ~words =
  let n = Box.num_inputs box in
  match Box.of_netlist cached with
  | exception _ -> false
  | cbox ->
      let rng = Rng.create (seed lxor 0x6c725f66) in
      let patterns = Array.init (64 * words) (fun _ -> Bv.random rng n) in
      let a = Box.probe_many box patterns in
      let b = Box.probe_many cbox patterns in
      Array.for_all2 Bv.equal a b

let verify_hit box golden cached =
  N.num_inputs cached = Box.num_inputs box
  && N.num_outputs cached = Box.num_outputs box
  &&
  match golden with
  | Some g -> (
      match Equiv.check cached g with
      | Equiv.Equivalent -> true
      | Equiv.Counterexample _ -> false)
  | None -> sampled_equal box cached ~seed:0x51f1 ~words:4

(* On a hit the stored report (the original learn's) is re-stamped for
   the requesting job; everything describing the circuit stays. *)
let patch_report report ~job_id ~tenant =
  let stamp = function
    | "job_id", _ -> ("job_id", Json.String job_id)
    | "tenant", _ -> ("tenant", Json.String tenant)
    | "cache_hit", _ -> ("cache_hit", Json.Bool true)
    | kv -> kv
  in
  match report with
  | Json.Obj fields -> Json.Obj (List.map stamp fields)
  | _ ->
      Json.Obj
        [
          ("schema", Json.String "lr-run-report/v1");
          ("job_id", Json.String job_id);
          ("tenant", Json.String tenant);
          ("cache_hit", Json.Bool true);
        ]

(* ---------- job execution (on a worker domain) ---------- *)

let run_job t job =
  let spec = job.spec in
  try
    let box, golden = resolve spec in
    let fingerprint = Fingerprint.probe ~words:t.fp_words box in
    let names_sig = Fingerprint.names_signature box in
    let key =
      Cache.key ~fingerprint ~names_sig
        ~config_sig:(Proto.config_signature spec)
    in
    let hit =
      if spec.use_cache then
        Cache.lookup t.cache ~key ~verify:(verify_hit box golden)
      else None
    in
    match hit with
    | Some entry ->
        push_lines t job
          (Printf.sprintf
             {|{"schema":"lr-progress/v1","event":"cache_hit","job":"%s","key":"%s"}|}
             job.id key);
        let report =
          patch_report entry.Cache.report ~job_id:job.id ~tenant:spec.tenant
        in
        locked t (fun () ->
            job.cache <- `Hit;
            job.result <- Some (entry.Cache.circuit_text, report);
            job.state <- Done)
    | None ->
        locked t (fun () -> job.cache <- `Miss);
        (* Instr state is domain-local: this worker's sinks are its
           own; the learner's internal domains replay through
           collect/absorb as usual. *)
        Instr.set_enabled true;
        Instr.reset_aggregates ();
        Instr.set_sinks
          [
            Progress.sink
              ~out:(fun chunk -> push_lines t job chunk)
              ?query_budget:spec.budget ?time_budget_s:spec.time_budget_s ();
          ];
        let finish () =
          Instr.flush_sinks ();
          Instr.set_sinks [];
          Instr.reset_aggregates ();
          Instr.set_enabled false
        in
        let r =
          Fun.protect ~finally:finish (fun () ->
              Learner.learn ~config:(Proto.config_of_spec spec) box)
        in
        let report = Proto.report_json ~job_id:job.id ~spec ~cache_hit:false r in
        let text = Io.write r.Learner.circuit in
        if
          spec.use_cache && r.Learner.degraded = 0
          && not r.Learner.budget_exceeded
        then Cache.insert t.cache ~key ~circuit:r.Learner.circuit ~report;
        locked t (fun () ->
            job.result <- Some (text, report);
            job.state <- Done)
  with e ->
    let msg = Printexc.to_string e in
    locked t (fun () -> job.state <- Failed msg)

let worker t () =
  let rec loop () =
    Mutex.lock t.mu;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.cond t.mu
    done;
    if Queue.is_empty t.queue then begin
      Mutex.unlock t.mu;
      ()
    end
    else begin
      let job = Queue.pop t.queue in
      job.state <- Running;
      job.exec_order <- t.next_exec;
      t.next_exec <- t.next_exec + 1;
      job.started_at <- Unix.gettimeofday ();
      t.running <- t.running + 1;
      Mutex.unlock t.mu;
      run_job t job;
      Mutex.lock t.mu;
      job.finished_at <- Unix.gettimeofday ();
      t.running <- t.running - 1;
      t.in_flight <- t.in_flight - 1;
      Condition.broadcast t.cond;
      Mutex.unlock t.mu;
      loop ()
    end
  in
  loop ()

(* ---------- public API ---------- *)

let create ?(slots = 2) ?(queue_limit = 16) ?cache_dir ?(fingerprint_words = 4)
    ?tenant_queries ?max_time_budget_s () =
  let slots = max 1 slots and queue_limit = max 0 queue_limit in
  let t =
    {
      mu = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      all = [];
      next_id = 1;
      next_exec = 0;
      in_flight = 0;
      running = 0;
      stopping = false;
      reserved = Hashtbl.create 8;
      cache = Cache.create ?dir:cache_dir ();
      slots;
      queue_limit;
      fp_words = max 1 fingerprint_words;
      tenant_queries;
      max_time_budget_s;
      workers = [||];
    }
  in
  t.workers <- Array.init slots (fun _ -> Domain.spawn (worker t));
  t

let validate t (spec : Proto.spec) =
  if spec.case = "" then Error (Bad_spec "empty case")
  else if not (case_known spec) then
    Error (Bad_spec (Printf.sprintf "unknown case or file: %s" spec.case))
  else if spec.jobs < 1 then Error (Bad_spec "jobs must be >= 1")
  else if (match spec.budget with Some b -> b <= 0 | None -> false) then
    Error (Bad_spec "budget must be positive")
  else if
    match spec.time_budget_s with Some b -> b <= 0.0 | None -> false
  then Error (Bad_spec "time budget must be positive")
  else if
    match (spec.time_budget_s, t.max_time_budget_s) with
    | Some b, Some limit -> b > limit
    | _ -> false
  then
    Error
      (Quota
         (Printf.sprintf "time budget exceeds the service limit of %gs"
            (Option.get t.max_time_budget_s)))
  else
    match t.tenant_queries with
    | None -> Ok None
    | Some quota -> (
        match spec.budget with
        | None ->
            Error
              (Bad_spec "tenant quotas are enforced: an explicit budget is \
                         required")
        | Some b ->
            let used =
              Option.value (Hashtbl.find_opt t.reserved spec.tenant) ~default:0
            in
            if used + b > quota then
              Error
                (Quota
                   (Printf.sprintf
                      "tenant %S would exceed its query quota (%d reserved \
                       of %d)"
                      spec.tenant used quota))
            else Ok (Some (spec.tenant, b)))

let submit t spec =
  locked t (fun () ->
      if t.stopping then Error (Overloaded { retry_after_s = 1.0 })
      else
        match validate t spec with
        | Error r -> Error r
        | Ok reservation ->
            if t.in_flight >= t.slots + t.queue_limit then
              Error (Overloaded { retry_after_s = 1.0 })
            else begin
              (match reservation with
              | None -> ()
              | Some (tenant, b) ->
                  let used =
                    Option.value (Hashtbl.find_opt t.reserved tenant)
                      ~default:0
                  in
                  Hashtbl.replace t.reserved tenant (used + b));
              let job =
                {
                  id = Printf.sprintf "j%d" t.next_id;
                  spec;
                  progress = Http.ring_create 4096;
                  submitted_at = Unix.gettimeofday ();
                  state = Queued;
                  cache = `Pending;
                  result = None;
                  exec_order = -1;
                  started_at = 0.0;
                  finished_at = 0.0;
                }
              in
              t.next_id <- t.next_id + 1;
              t.in_flight <- t.in_flight + 1;
              t.all <- job :: t.all;
              Queue.push job t.queue;
              Condition.broadcast t.cond;
              Ok job
            end)

let find t id =
  locked t (fun () -> List.find_opt (fun j -> j.id = id) t.all)

let jobs t = locked t (fun () -> List.rev t.all)
let cache t = t.cache
let queue_depth t = locked t (fun () -> Queue.length t.queue)
let running t = locked t (fun () -> t.running)
let slots t = t.slots

let finished job =
  match job.state with Done | Failed _ -> true | Queued | Running -> false

let wait t job =
  Mutex.lock t.mu;
  while not (finished job) do
    Condition.wait t.cond t.mu
  done;
  Mutex.unlock t.mu

let wait_idle t =
  Mutex.lock t.mu;
  while t.in_flight > 0 do
    Condition.wait t.cond t.mu
  done;
  Mutex.unlock t.mu

let shutdown t =
  let joinable =
    locked t (fun () ->
        if t.stopping then [||]
        else begin
          t.stopping <- true;
          Condition.broadcast t.cond;
          let w = t.workers in
          t.workers <- [||];
          w
        end)
  in
  Array.iter Domain.join joinable
