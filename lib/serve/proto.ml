module Json = Lr_instr.Json
module Config = Logic_regression.Config
module Learner = Logic_regression.Learner
module N = Lr_netlist.Netlist

type spec = {
  case : string;
  tenant : string;
  preset : string;
  seed : int;
  budget : int option;
  time_budget_s : float option;
  support_rounds : int option;
  jobs : int;
  check : Config.check_level;
  sweep : Config.sweep_level;
  kernel : bool;
  use_cache : bool;
}

let default ~case =
  {
    case;
    tenant = "default";
    preset = "improved";
    seed = 1;
    budget = None;
    time_budget_s = None;
    support_rounds = None;
    jobs = 1;
    check = Config.Off;
    sweep = Config.Sweep_off;
    kernel = true;
    use_cache = true;
  }

let opt_int = function None -> Json.Null | Some n -> Json.Int n
let opt_float = function None -> Json.Null | Some f -> Json.Float f

let to_json s =
  Json.Obj
    [
      ("schema", Json.String "lr-serve/v1");
      ("case", Json.String s.case);
      ("tenant", Json.String s.tenant);
      ("preset", Json.String s.preset);
      ("seed", Json.Int s.seed);
      ("budget", opt_int s.budget);
      ("time_budget_s", opt_float s.time_budget_s);
      ("support_rounds", opt_int s.support_rounds);
      ("jobs", Json.Int s.jobs);
      ("check", Json.String (Config.check_level_string s.check));
      ("sweep", Json.String (Config.sweep_level_string s.sweep));
      ("kernel", Json.Bool s.kernel);
      ("cache", Json.Bool s.use_cache);
    ]

(* total accessors: absent = default, present-but-wrong-shape = error *)
let field name v = Json.member name v

let get_with name get default v =
  match field name v with
  | None | Some Json.Null -> Ok default
  | Some x -> (
      match get x with
      | Some y -> Ok y
      | None -> Error (Printf.sprintf "bad %S field" name))

let ( let* ) = Result.bind

let of_json v =
  match Json.get_obj v with
  | None -> Error "job spec must be a JSON object"
  | Some _ -> (
      (match field "schema" v with
      | None -> Ok ()
      | Some s -> (
          match Json.get_string s with
          | Some "lr-serve/v1" -> Ok ()
          | Some other -> Error ("unknown spec schema: " ^ other)
          | None -> Error "bad \"schema\" field"))
      |> fun schema_ok ->
      let* () = schema_ok in
      let* case =
        match Option.bind (field "case" v) Json.get_string with
        | Some c when c <> "" -> Ok c
        | _ -> Error "missing \"case\" field"
      in
      let d = default ~case in
      let* tenant = get_with "tenant" Json.get_string d.tenant v in
      let* preset =
        let* p = get_with "preset" Json.get_string d.preset v in
        if p = "improved" || p = "contest" then Ok p
        else Error "bad \"preset\" field"
      in
      let* seed = get_with "seed" Json.get_int d.seed v in
      let* budget =
        get_with "budget" (fun x -> Option.map Option.some (Json.get_int x))
          d.budget v
      in
      let* time_budget_s =
        get_with "time_budget_s"
          (fun x -> Option.map Option.some (Json.get_float x))
          d.time_budget_s v
      in
      let* support_rounds =
        get_with "support_rounds"
          (fun x -> Option.map Option.some (Json.get_int x))
          d.support_rounds v
      in
      let* jobs = get_with "jobs" Json.get_int d.jobs v in
      let* check =
        get_with "check"
          (fun x -> Option.bind (Json.get_string x) Config.check_level_of_string)
          d.check v
      in
      let* sweep =
        get_with "sweep"
          (fun x -> Option.bind (Json.get_string x) Config.sweep_level_of_string)
          d.sweep v
      in
      let* kernel = get_with "kernel" Json.get_bool d.kernel v in
      let* use_cache = get_with "cache" Json.get_bool d.use_cache v in
      Ok
        {
          case;
          tenant;
          preset;
          seed;
          budget;
          time_budget_s;
          support_rounds;
          jobs;
          check;
          sweep;
          kernel;
          use_cache;
        })

let of_string s =
  match Json.of_string s with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok v -> of_json v

let config_of_spec s =
  let preset =
    if s.preset = "contest" then Config.contest else Config.improved
  in
  {
    preset with
    Config.seed = s.seed;
    support_rounds =
      Option.value s.support_rounds ~default:preset.Config.support_rounds;
    time_budget_s = s.time_budget_s;
    check_level = s.check;
    sweep = s.sweep;
    jobs = s.jobs;
    kernel = s.kernel;
  }

let config_signature s =
  Printf.sprintf "preset=%s;seed=%d;budget=%s;time=%s;rounds=%s;sweep=%s"
    s.preset s.seed
    (match s.budget with None -> "-" | Some b -> string_of_int b)
    (match s.time_budget_s with None -> "-" | Some t -> Printf.sprintf "%g" t)
    (match s.support_rounds with None -> "-" | Some r -> string_of_int r)
    (Config.sweep_level_string s.sweep)

let report_json ~job_id ~spec ~cache_hit (r : Learner.report) =
  let c = r.Learner.circuit in
  let stats = N.stats c in
  let phases =
    List.map
      (fun (name, seconds) ->
        let assoc l = Option.value (List.assoc_opt name l) ~default:0 in
        Json.Obj
          [
            ("name", Json.String name);
            ("seconds", Json.Float seconds);
            ("queries", Json.Int (assoc r.Learner.phase_queries));
            ("retries", Json.Int (assoc r.Learner.phase_retries));
          ])
      r.Learner.phase_times
  in
  let outputs =
    List.map
      (fun o ->
        Json.Obj
          [
            ("name", Json.String o.Learner.output_name);
            ( "method",
              Json.String (Learner.method_to_string o.Learner.method_used) );
            ("support", Json.Int o.Learner.support_size);
            ("cubes", Json.Int o.Learner.cubes);
            ("complete", Json.Bool o.Learner.complete);
          ])
      r.Learner.outputs
  in
  Json.Obj
    [
      ("schema", Json.String "lr-run-report/v1");
      ("case", Json.String spec.case);
      ("seed", Json.Int spec.seed);
      ("job_id", Json.String job_id);
      ("tenant", Json.String spec.tenant);
      ("cache_hit", Json.Bool cache_hit);
      ("inputs", Json.Int (N.num_inputs c));
      ("outputs", Json.Int (N.num_outputs c));
      ("size", Json.Int (N.size c));
      ("inverters", Json.Int stats.N.inverters);
      ("depth", Json.Int stats.N.depth);
      ("queries", Json.Int r.Learner.queries);
      ("elapsed_s", Json.Float r.Learner.elapsed_s);
      ("accuracy", Json.Null);
      ("time_budget_s", opt_float spec.time_budget_s);
      ("budget_exceeded", Json.Bool r.Learner.budget_exceeded);
      ("retries", Json.Int r.Learner.retries);
      ("degraded", Json.Int r.Learner.degraded);
      ( "check_level",
        Json.String (Config.check_level_string r.Learner.check_level) );
      ("checks_verified", Json.Int r.Learner.checks_verified);
      ("sweep_removed", Json.Int r.Learner.sweep_removed);
      ("jobs", Json.Int r.Learner.jobs);
      ("phases", Json.List phases);
      ("outputs_detail", Json.List outputs);
    ]
