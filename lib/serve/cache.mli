(** Content-addressed store of learned circuits.

    Keys are derived from the behavioural fingerprint of the black box
    ({!Fingerprint}), the interface-names signature, and the learning
    {!Proto.config_signature} — everything that determines the circuit
    a deterministic learn would produce. A hit therefore returns the
    {e bit-identical} artifact a fresh learn of the same box with the
    same configuration would have built.

    Because a sampled fingerprint can collide, every hit is re-verified
    before it is served: {!lookup} runs the caller's [verify] (a full
    CEC against the requesting box's reference, or a fresh-probe
    simulation check when no reference netlist exists). A failed
    verification counts as {e refused}, evicts the poisoned entry, and
    falls through to a miss — a collision can cost a re-learn, never a
    wrong circuit.

    All operations are mutex-guarded (scheduler workers hit the cache
    concurrently) except the [verify] callback, which runs outside the
    lock so a slow CEC never serializes unrelated jobs. With [dir] set,
    entries also persist as [<key>.lrc] / [<key>.json] file pairs and
    are reloaded on {!create} — a warm daemon restart skips straight to
    hits. *)

type entry = {
  circuit_text : string;  (** {!Lr_netlist.Io.write} rendering *)
  report : Lr_instr.Json.t;  (** the original learn's run report *)
}

type stats = {
  entries : int;
  hits : int;
  misses : int;
  refused : int;  (** hits whose verification failed *)
  inserts : int;
}

type t

val create : ?dir:string -> unit -> t
(** [dir]: persistence directory (created if missing; unreadable
    entries are skipped on load). *)

val key :
  fingerprint:Fingerprint.t -> names_sig:string -> config_sig:string -> string
(** 16 hex digits combining the three signatures. *)

val lookup :
  t -> key:string -> verify:(Lr_netlist.Netlist.t -> bool) -> entry option
(** [Some] (a verified hit), or [None] (a miss, or a refused hit —
    distinguishable in {!stats}). The entry's circuit text is parsed
    and handed to [verify]; unparseable entries are treated as
    refused. *)

val insert : t -> key:string -> circuit:Lr_netlist.Netlist.t ->
  report:Lr_instr.Json.t -> unit
(** Last writer wins (identical by construction: the key pins the
    learn inputs and learning is deterministic). *)

val stats : t -> stats
val stats_json : t -> Lr_instr.Json.t
(** [{"schema":"lr-serve-cache/v1",...}] — the [GET /cache/stats]
    body. *)
