module Json = Lr_instr.Json
module Http = Lr_obs.Http
module Metrics = Lr_prof.Metrics

type t = {
  sched : Scheduler.t;
  mu : Mutex.t;
  cond : Condition.t;
  mutable shutdown_requested : bool;
}

let create sched =
  {
    sched;
    mu = Mutex.create ();
    cond = Condition.create ();
    shutdown_requested = false;
  }

let request_shutdown t =
  Mutex.lock t.mu;
  t.shutdown_requested <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mu

let wait_shutdown t =
  Mutex.lock t.mu;
  while not t.shutdown_requested do
    Condition.wait t.cond t.mu
  done;
  Mutex.unlock t.mu

(* ---------- response bodies ---------- *)

let state_string = function
  | Scheduler.Queued -> "queued"
  | Scheduler.Running -> "running"
  | Scheduler.Done -> "done"
  | Scheduler.Failed _ -> "failed"

let job_json (j : Scheduler.job) =
  let base =
    [
      ("schema", Json.String "lr-serve/v1");
      ("job", Json.String j.Scheduler.id);
      ("case", Json.String j.Scheduler.spec.Proto.case);
      ("tenant", Json.String j.Scheduler.spec.Proto.tenant);
      ("state", Json.String (state_string j.Scheduler.state));
      ( "cache",
        Json.String
          (match j.Scheduler.cache with
          | `Pending -> "pending"
          | `Hit -> "hit"
          | `Miss -> "miss") );
    ]
  in
  let extra =
    match j.Scheduler.state with
    | Scheduler.Failed msg -> [ ("error", Json.String msg) ]
    | _ -> []
  in
  Json.Obj (base @ extra)

let json_body v = Json.to_string v ^ "\n"

let error_body msg =
  json_body (Json.Obj [ ("error", Json.String msg) ])

let respond_json fd ?headers ~status v =
  Http.respond fd ~status ?headers ~ctype:"application/json" (json_body v)

let metrics_body t =
  let js = Scheduler.jobs t.sched in
  let count st =
    float_of_int
      (List.length (List.filter (fun j -> j.Scheduler.state = st) js))
  in
  let failed =
    float_of_int
      (List.length
         (List.filter
            (fun j ->
              match j.Scheduler.state with
              | Scheduler.Failed _ -> true
              | _ -> false)
            js))
  in
  let c = Cache.stats (Scheduler.cache t.sched) in
  let f = float_of_int in
  Metrics.render
    [
      {
        Metrics.name = "lr_serve_jobs_total";
        help = "Jobs by state.";
        kind = `Gauge;
        samples =
          [
            ([ ("state", "queued") ], count Scheduler.Queued);
            ([ ("state", "running") ], count Scheduler.Running);
            ([ ("state", "done") ], count Scheduler.Done);
            ([ ("state", "failed") ], failed);
          ];
      };
      {
        Metrics.name = "lr_serve_cache_hits_total";
        help = "Cache lookups served after verification.";
        kind = `Counter;
        samples = [ ([], f c.Cache.hits) ];
      };
      {
        Metrics.name = "lr_serve_cache_misses_total";
        help = "Cache lookups that fell through to a learn.";
        kind = `Counter;
        samples = [ ([], f c.Cache.misses) ];
      };
      {
        Metrics.name = "lr_serve_cache_refused_total";
        help = "Cache hits rejected by CEC verification.";
        kind = `Counter;
        samples = [ ([], f c.Cache.refused) ];
      };
      {
        Metrics.name = "lr_serve_cache_inserts_total";
        help = "Circuits inserted into the cache.";
        kind = `Counter;
        samples = [ ([], f c.Cache.inserts) ];
      };
      {
        Metrics.name = "lr_serve_cache_entries";
        help = "Circuits currently cached.";
        kind = `Gauge;
        samples = [ ([], f c.Cache.entries) ];
      };
      {
        Metrics.name = "lr_serve_queue_depth";
        help = "Jobs waiting for a slot.";
        kind = `Gauge;
        samples = [ ([], f (Scheduler.queue_depth t.sched)) ];
      };
      {
        Metrics.name = "lr_serve_slots";
        help = "Worker domains.";
        kind = `Gauge;
        samples = [ ([], f (Scheduler.slots t.sched)) ];
      };
    ]

(* ---------- routing ---------- *)

type conn = {
  fd : Unix.file_descr;
  job : Scheduler.job;
  mutable next_seq : int;
}

let split_path path =
  List.filter (fun s -> s <> "") (String.split_on_char '/' path)

let handle t streams fd (req : Http.request) =
  let finish () = Http.close_quiet fd in
  try
    (match (req.Http.meth, split_path req.Http.path) with
    | "POST", [ "learn" ] -> (
        match Proto.of_string req.Http.body with
        | Error msg ->
            Http.respond fd ~status:"400 Bad Request" ~ctype:"application/json"
              (error_body msg)
        | Ok spec -> (
            match Scheduler.submit t.sched spec with
            | Ok job -> respond_json fd ~status:"202 Accepted" (job_json job)
            | Error (Scheduler.Bad_spec msg) ->
                Http.respond fd ~status:"400 Bad Request"
                  ~ctype:"application/json" (error_body msg)
            | Error (Scheduler.Quota msg) ->
                Http.respond fd ~status:"429 Too Many Requests"
                  ~headers:[ ("Retry-After", "1") ]
                  ~ctype:"application/json" (error_body msg)
            | Error (Scheduler.Overloaded { retry_after_s }) ->
                Http.respond fd ~status:"429 Too Many Requests"
                  ~headers:
                    [
                      ( "Retry-After",
                        string_of_int
                          (int_of_float (Float.ceil retry_after_s)) );
                    ]
                  ~ctype:"application/json"
                  (error_body "queue full, retry later")))
    | "POST", [ "shutdown" ] ->
        respond_json fd ~status:"200 OK"
          (Json.Obj [ ("shutdown", Json.Bool true) ]);
        request_shutdown t
    | "POST", _ ->
        Http.respond fd ~status:"404 Not Found" ~ctype:"application/json"
          (error_body "no such endpoint")
    | "GET", [ "healthz" ] ->
        respond_json fd ~status:"200 OK"
          (Json.Obj
             [
               ("status", Json.String "ok");
               ("jobs", Json.Int (List.length (Scheduler.jobs t.sched)));
               ("queue_depth", Json.Int (Scheduler.queue_depth t.sched));
               ("running", Json.Int (Scheduler.running t.sched));
               ("slots", Json.Int (Scheduler.slots t.sched));
             ])
    | "GET", [ "metrics" ] ->
        Http.respond fd ~status:"200 OK" ~ctype:"text/plain; version=0.0.4"
          (metrics_body t)
    | "GET", [ "cache"; "stats" ] ->
        respond_json fd ~status:"200 OK"
          (Cache.stats_json (Scheduler.cache t.sched))
    | "GET", [ "jobs" ] ->
        respond_json fd ~status:"200 OK"
          (Json.List (List.map job_json (Scheduler.jobs t.sched)))
    | "GET", [ "jobs"; id ] -> (
        match Scheduler.find t.sched id with
        | None ->
            Http.respond fd ~status:"404 Not Found" ~ctype:"application/json"
              (error_body "no such job")
        | Some j -> respond_json fd ~status:"200 OK" (job_json j))
    | "GET", [ "jobs"; id; "result" ] -> (
        match Scheduler.find t.sched id with
        | None ->
            Http.respond fd ~status:"404 Not Found" ~ctype:"application/json"
              (error_body "no such job")
        | Some j -> (
            match (j.Scheduler.state, j.Scheduler.result) with
            | Scheduler.Done, Some (circuit, report) ->
                respond_json fd ~status:"200 OK"
                  (Json.Obj
                     [
                       ("schema", Json.String "lr-serve-result/v1");
                       ("job", Json.String j.Scheduler.id);
                       ( "cache_hit",
                         Json.Bool (j.Scheduler.cache = `Hit) );
                       ("report", report);
                       ("circuit", Json.String circuit);
                     ])
            | Scheduler.Failed msg, _ ->
                Http.respond fd ~status:"500 Internal Server Error"
                  ~ctype:"application/json" (error_body msg)
            | _ ->
                Http.respond fd ~status:"409 Conflict"
                  ~ctype:"application/json"
                  (error_body "job still pending")))
    | "GET", [ "jobs"; id; "progress" ] -> (
        match Scheduler.find t.sched id with
        | None ->
            Http.respond fd ~status:"404 Not Found" ~ctype:"application/json"
              (error_body "no such job")
        | Some j ->
            let lines = Scheduler.progress_since t.sched j 0 in
            let next = Scheduler.progress_seq t.sched j in
            Http.start_chunked fd ~ctype:"application/x-ndjson";
            if lines <> [] then Http.send_chunk fd (String.concat "" lines);
            if Scheduler.(match j.state with Done | Failed _ -> true | _ -> false)
            then begin
              Http.send_last_chunk fd;
              finish ()
            end
            else begin
              streams := { fd; job = j; next_seq = next } :: !streams;
              raise Exit (* retained: skip the final close *)
            end)
    | _, _ ->
        Http.respond fd ~status:"405 Method Not Allowed" ~ctype:"text/plain"
          "unsupported method\n");
    finish ()
  with
  | Exit -> ()
  | _ -> finish ()

(* Push new progress lines to tailing connections; finish streams whose
   job is done; drop dead peers. *)
let pump t streams =
  streams :=
    List.filter
      (fun c ->
        let lines = Scheduler.progress_since t.sched c.job c.next_seq in
        let next = Scheduler.progress_seq t.sched c.job in
        let done_ =
          match c.job.Scheduler.state with
          | Scheduler.Done | Scheduler.Failed _ -> true
          | _ -> false
        in
        try
          if lines <> [] then Http.send_chunk c.fd (String.concat "" lines);
          c.next_seq <- next;
          if done_ then begin
            Http.send_last_chunk c.fd;
            Http.close_quiet c.fd;
            false
          end
          else true
        with _ ->
          Http.close_quiet c.fd;
          false)
      !streams

let start ?(addr = "127.0.0.1") ~port t =
  let streams = ref [] in
  Http.start ~addr ~port
    ~handle:(fun fd req -> handle t streams fd req)
    ~tick:(fun () -> pump t streams)
    ~on_stop:(fun () -> List.iter (fun c -> Http.close_quiet c.fd) !streams)
    ()
