(** The [lr-serve/v1] wire protocol: job specs and response bodies.

    A learn job is submitted as one JSON object ([POST /learn]); every
    field but [case] is optional and defaults to the values below. The
    daemon answers with job-state objects ([lr-serve/v1]) and, once a
    job is done, a result object ([lr-serve-result/v1]) embedding an
    [lr-run-report/v1]-shaped report plus the circuit artifact in the
    native text format ({!Lr_netlist.Io}).

    Encoding and decoding round-trip exactly ({!of_json} ∘ {!to_json} =
    id), which the protocol unit tests pin down. *)

module Config = Logic_regression.Config

type spec = {
  case : string;  (** benchmark case name or circuit file path *)
  tenant : string;  (** budget-accounting principal; default ["default"] *)
  preset : string;  (** ["improved"] (default) or ["contest"] *)
  seed : int;  (** master RNG seed; default 1 *)
  budget : int option;  (** query budget; [None] = unlimited *)
  time_budget_s : float option;  (** wall-clock budget *)
  support_rounds : int option;  (** override the preset's rounds *)
  jobs : int;  (** worker domains inside the learn; default 1 *)
  check : Config.check_level;  (** default [Off] *)
  sweep : Config.sweep_level;  (** default [Sweep_off] *)
  kernel : bool;  (** default [true] *)
  use_cache : bool;
      (** consult/populate the circuit cache; default [true] *)
}

val default : case:string -> spec

val to_json : spec -> Lr_instr.Json.t
val of_json : Lr_instr.Json.t -> (spec, string) result
(** Rejects unknown [schema], non-string [case], malformed enums. *)

val of_string : string -> (spec, string) result
(** Parse then {!of_json}. *)

val config_of_spec : spec -> Config.t
(** The learner configuration a direct CLI run with the same settings
    would build — the service's bit-identity contract depends on it. *)

val config_signature : spec -> string
(** Canonical rendering of every spec field that can change the {e
    learned circuit}: preset, seed, budget, time budget, support
    rounds, sweep. Excluded by design: [jobs], [kernel] and [check]
    (all proven bit-identity-preserving), [tenant] and [use_cache]
    (accounting only) — so a [jobs=4] request hits the cache entry a
    [jobs=1] request populated. *)

val report_json :
  job_id:string ->
  spec:spec ->
  cache_hit:bool ->
  Logic_regression.Learner.report ->
  Lr_instr.Json.t
(** An [lr-run-report/v1] object for a completed service job: the
    standard case/size/queries/elapsed fields plus the service's
    [job_id], [tenant] and [cache_hit] markers ([lr_report check]
    refuses warm-cache reports as baselines). *)
