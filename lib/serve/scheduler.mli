(** Job queue and bounded runner pool of the [lr_serve] daemon.

    Submitted specs are validated synchronously — unknown case, bad
    tenant budget, oversized time budget and a full queue are all
    refused at {!submit} time, so the HTTP layer can answer 400/429
    deterministically — then queued FIFO and multiplexed onto [slots]
    worker domains. Each worker resolves the black box, probes its
    {!Fingerprint}, consults the {!Cache} (full CEC against the case's
    reference netlist on every hit, sampled re-probe when no reference
    exists), and only on a miss runs {!Logic_regression.Learner.learn}
    with per-job {!Lr_prof.Progress} sinks feeding the job's progress
    ring ({!Lr_obs.Http.ring}, tailed by [GET /jobs/:id/progress]).

    Determinism notes: admission is decided by the in-flight count
    (queued + running) at submit, so an overload refusal does not
    depend on worker timing; [exec_order] is assigned at {e dequeue},
    so with [slots = 1] it proves FIFO execution. Degraded or
    budget-exceeded learns are never cached. *)

type state =
  | Queued
  | Running
  | Done
  | Failed of string

type job = {
  id : string;  (** ["j1"], ["j2"], … in submission order *)
  spec : Proto.spec;
  progress : Lr_obs.Http.ring;  (** [lr-progress/v1] lines *)
  submitted_at : float;
  mutable state : state;
  mutable cache : [ `Pending | `Hit | `Miss ];
  mutable result : (string * Lr_instr.Json.t) option;
      (** (circuit text, [lr-run-report/v1]) once [Done] *)
  mutable exec_order : int;  (** -1 until dequeued *)
  mutable started_at : float;
  mutable finished_at : float;
}

type refusal =
  | Overloaded of { retry_after_s : float }  (** queue full → 429 *)
  | Quota of string  (** tenant budget exhausted → 429 *)
  | Bad_spec of string  (** unknown case, invalid budgets → 400 *)

type t

val create :
  ?slots:int ->
  ?queue_limit:int ->
  ?cache_dir:string ->
  ?fingerprint_words:int ->
  ?tenant_queries:int ->
  ?max_time_budget_s:float ->
  unit ->
  t
(** [slots] (default 2): worker domains, each running one learn at a
    time. [queue_limit] (default 16): jobs allowed to wait beyond the
    running ones. [tenant_queries]: per-tenant total query quota;
    when set, every spec must carry an explicit [budget] (else
    [Bad_spec]) and the quota is {e reserved} at submit — refusals are
    independent of how many queries completed jobs actually spent.
    [max_time_budget_s]: upper bound on a spec's [time_budget_s]. *)

val submit : t -> Proto.spec -> (job, refusal) result
val find : t -> string -> job option
val jobs : t -> job list
(** Submission order. *)

val cache : t -> Cache.t
val queue_depth : t -> int
val running : t -> int
val slots : t -> int

val progress_since : t -> job -> int -> string list
(** Ring lines with sequence >= the given one, under the scheduler's
    lock (the ring itself is not synchronised — workers push while the
    HTTP domain tails). *)

val progress_seq : t -> job -> int
(** The next sequence number {!progress_since} will assign. *)

val wait : t -> job -> unit
(** Block until the job leaves [Queued]/[Running]. *)

val wait_idle : t -> unit
(** Block until no job is queued or running. *)

val shutdown : t -> unit
(** Drain the queue (already-accepted jobs still run), join the
    workers. Idempotent; {!submit} afterwards refuses. *)
