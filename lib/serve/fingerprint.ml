module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module Box = Lr_blackbox.Blackbox

type t = {
  n : int;
  m : int;
  words : int;
  seed : int;
  per_output : int64 array;
  digest : int64;
}

(* FNV-1a, 64-bit *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let hash64 s =
  let h = ref fnv_offset in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

let fnv_int64 h x =
  let h = ref h in
  for i = 0 to 7 do
    h := fnv_byte !h (Int64.to_int (Int64.shift_right_logical x (8 * i)))
  done;
  !h

let fnv_int h x = fnv_int64 h (Int64.of_int x)

let probe ?(seed = 0x51f0) ?(words = 4) box =
  let n = Box.num_inputs box and m = Box.num_outputs box in
  let words = max 1 words in
  let rng = Rng.create (seed lxor 0x6c725f66 (* "lr_f" *)) in
  let patterns = Array.init (64 * words) (fun _ -> Bv.random rng n) in
  let answers = Box.probe_many box patterns in
  let per_output =
    Array.init m (fun o ->
        let h = ref fnv_offset in
        (* pack each output's response bits into bytes before hashing *)
        let acc = ref 0 and nbits = ref 0 in
        Array.iter
          (fun out ->
            acc := (!acc lsl 1) lor (if Bv.get out o then 1 else 0);
            incr nbits;
            if !nbits = 8 then begin
              h := fnv_byte !h !acc;
              acc := 0;
              nbits := 0
            end)
          answers;
        if !nbits > 0 then h := fnv_byte !h !acc;
        !h)
  in
  let digest =
    let h = fnv_int (fnv_int (fnv_int (fnv_int fnv_offset n) m) words) seed in
    Array.fold_left fnv_int64 h per_output
  in
  { n; m; words; seed; per_output; digest }

let equal a b =
  a.n = b.n && a.m = b.m && a.words = b.words && a.seed = b.seed
  && a.digest = b.digest
  && a.per_output = b.per_output

let to_hex t = Printf.sprintf "%016Lx" t.digest

let names_signature box =
  let h = ref fnv_offset in
  let add s =
    String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
    h := fnv_byte !h 0
  in
  Array.iter add (Box.input_names box);
  h := fnv_byte !h 1;
  Array.iter add (Box.output_names box);
  Printf.sprintf "%016Lx" !h
