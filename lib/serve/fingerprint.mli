(** Behavioural fingerprint of a black box: the content address of the
    circuit cache.

    The fingerprint is a seeded, deterministic sampled-IO signature:
    [words]×64 probe assignments are drawn from a fixed RNG stream,
    evaluated through {!Lr_blackbox.Blackbox.probe_many} (zero
    accounting leakage — probing never perturbs the learn that may
    follow), and each primary output's response bit-string is hashed
    separately (FNV-1a 64). Two boxes compare equal iff they have the
    same PI/PO counts and agree on every probe — so any two
    implementations of the same function fingerprint identically,
    whatever their structure, while disagreeing functions collide only
    if they agree on all [64*words] samples per output.

    A fingerprint is {e evidence}, not proof: the cache layers a full
    CEC on every hit ({!Cache}) so a collision can never serve a wrong
    circuit. *)

type t = {
  n : int;  (** primary inputs *)
  m : int;  (** primary outputs *)
  words : int;  (** probe words sampled (64 assignments each) *)
  seed : int;  (** probe-stream seed *)
  per_output : int64 array;  (** FNV-1a 64 of each output's responses *)
  digest : int64;  (** combined: n, m, words, seed, per_output *)
}

val probe : ?seed:int -> ?words:int -> Lr_blackbox.Blackbox.t -> t
(** Sample the box. Defaults: [seed = 0x51f0] (one fixed probe stream
    per daemon — cache keys must agree across jobs), [words = 4]
    (256 assignments). Deterministic in (box behaviour, seed, words):
    independent of [jobs], [kernel], wall-clock and any prior queries
    on the box. *)

val equal : t -> t -> bool
val to_hex : t -> string
(** 16 hex digits of [digest]. *)

val names_signature : Lr_blackbox.Blackbox.t -> string
(** Hash of the PI/PO {e names}, in order. Not part of the behavioural
    fingerprint — it feeds the cache key separately, because name-based
    grouping and template matching make the learned circuit depend on
    the interface names as well as the function. *)

val hash64 : string -> int64
(** The FNV-1a 64 used throughout; exposed for key derivation. *)
