(** Deterministic splittable pseudo-random number generator.

    All randomness in the project flows from a single seed through values of
    type {!t}, so every learner run, test and benchmark is reproducible.
    The generator is a SplitMix64 core; [split] derives an independent
    stream, which lets concurrent subproblems (e.g. per-output learners)
    draw patterns without interfering with each other. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val split_keyed : t -> int -> t
(** [split_keyed t key] derives an independent stream identified by
    [key] {e without advancing [t]}: the result depends only on [t]'s
    current state and [key], so a set of streams (one per subproblem,
    e.g. per primary output) is the same whatever order — or from
    whatever domain — they are requested in. Distinct keys give
    decorrelated streams. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future draws). *)

val bits64 : t -> int64
(** [bits64 t] draws 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t n] draws uniformly in [\[0, n)]. Requires [n > 0]. *)

val bool : t -> bool
(** [bool t] draws a fair coin. *)

val biased_bool : t -> float -> bool
(** [biased_bool t p] is [true] with probability [p]. *)

val float : t -> float
(** [float t] draws uniformly in [\[0, 1)]. *)

val biased_word : t -> float -> int64
(** [biased_word t p] draws a 64-bit word where each bit is 1 independently
    with probability [p]. Exact for [p = 0.5]; otherwise built from a few
    AND/OR layers of uniform words, giving dyadic approximations of [p] —
    precisely the cheap trick used to generate biased simulation patterns. *)
