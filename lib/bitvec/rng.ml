type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 output mixer (Steele, Lea, Flood 2014). *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

(* Weyl-sequence constant distinct from [golden_gamma]; any odd 64-bit
   mixing constant works, this one is from the SplitMix lineage. *)
let keyed_gamma = 0xD1B54A32D192ED03L

let split_keyed t key =
  let k = Int64.mul (Int64.of_int (key + 1)) keyed_gamma in
  { state = mix64 (Int64.logxor (mix64 (Int64.add t.state golden_gamma)) k) }

let copy t = { state = t.state }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the low 62 bits keeps the draw unbiased. *)
  let mask = 0x3FFFFFFFFFFFFFFFL in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (bits64 t) mask) in
    let r = v mod n in
    if v - r > max_int - n then draw () else r
  in
  draw ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t =
  let v = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let biased_bool t p = float t < p

let biased_word t p =
  if p <= 0.0 then 0L
  else if p >= 1.0 then -1L
  else begin
    (* Read the binary expansion of [p] plane by plane: OR with a uniform
       word contributes the 1/2 mass of the current plane, AND halves the
       remaining mass. Six planes give 1/64 resolution, ample for sampling. *)
    let planes = 6 in
    let rec go k p =
      if k = 0 then if p >= 0.5 then -1L else 0L
      else begin
        let w = bits64 t in
        if p >= 0.5 then Int64.logor w (go (k - 1) ((p -. 0.5) *. 2.0))
        else Int64.logand w (go (k - 1) (p *. 2.0))
      end
    in
    go planes p
  end
