(** The black-box input-output relation generator of the contest problem.

    A [Blackbox.t] exposes exactly what the 2019 ICCAD contest exposed to
    contestants: the {e names} of the primary inputs and outputs, and a
    query facility accepting a {e full} input assignment and returning the
    full output assignment. Nothing about the underlying circuit leaks.

    Every query is counted. The learner's anytime behaviour is driven by a
    deterministic query budget (and optionally a wall-clock deadline), so
    runs are reproducible; exceeding the budget never fails a query — the
    learner is expected to poll {!exhausted}, mirroring the "TimeLimit is
    exceeded" test of Algorithm 2. *)

type t

exception Exhausted of { used : int; budget : int }
(** Raised by {!query}/{!query_many} on a {e strict} {!shard} whose
    budget slice would be exceeded — the query is refused, not counted.
    Plain boxes and non-strict shards never raise this: their exhaustion
    stays advisory through {!exhausted}. *)

val of_netlist : ?budget:int -> ?deadline_s:float -> Lr_netlist.Netlist.t -> t
(** Wrap a golden circuit. The circuit is retained only behind the query
    interface; use {!golden} in evaluation code, never in the learner. *)

val of_function :
  ?budget:int ->
  ?deadline_s:float ->
  input_names:string array ->
  output_names:string array ->
  (Lr_bitvec.Bv.t -> Lr_bitvec.Bv.t) ->
  t
(** Wrap an arbitrary total function (used by tests and the quickstart). *)

val num_inputs : t -> int
val num_outputs : t -> int
val input_names : t -> string array
val output_names : t -> string array

val query : t -> Lr_bitvec.Bv.t -> Lr_bitvec.Bv.t
(** One full assignment in, one full assignment out. Counts 1 query. *)

val query_many : t -> Lr_bitvec.Bv.t array -> Lr_bitvec.Bv.t array
(** Batched queries (word-parallel when the box wraps a netlist).
    Counts [Array.length] queries. *)

val queries_used : t -> int
val budget : t -> int option

val query_latency : t -> Lr_report.Histogram.t
(** Per-query latency histogram (seconds), timed with the
    {!Lr_instr.Instr.now} clock so an injected test clock produces
    deterministic samples. Single queries record their own duration; a
    batched {!query_many} of [n] patterns records its mean per-query
    latency [n] times, so the histogram's total weight equals
    {!queries_used}. Cleared by {!reset_accounting}. *)

val queries_by_span : t -> (string * int) list
(** Per-phase query attribution: every query is charged to the
    instrumentation span ({!Lr_instr.Instr.span}) that was innermost when
    it was issued ([""] when none was open), in first-seen order. The
    totals always sum to {!queries_used} — the learner turns this into
    the per-phase query breakdown of its report. *)

val exhausted : t -> bool
(** True once the query budget {e or} the wall-clock deadline is spent.
    Both causes are observable through this single predicate: poll it
    between batched {!query_many} calls (queries never fail — exhaustion
    is advisory, mirroring Algorithm 2's "TimeLimit is exceeded" test),
    and note that a deadline can flip [exhausted] even when
    {!queries_used} is still under {!budget}. *)

val reset_accounting : t -> unit
(** Zero the query counter, restart the deadline clock, {e and} clear
    the per-span attribution table ({!queries_by_span} becomes []) and
    the {!query_latency} histogram — benchmarks call this between
    methods sharing one box, and stale attribution would otherwise leak
    across runs. *)

(** {1 Accounting shards}

    The parallel learner gives every fanned-out subproblem its own
    accounting {e shard}: a view of the same black box (same provider,
    same names, same wall-clock deadline) with independent counters, so
    worker domains never contend on — or lose — accounting updates.
    Queries through a shard are {b not} visible in the parent until the
    parent calls {!absorb}; absorbing every shard exactly once, in a
    deterministic order, makes {!queries_used} and {!queries_by_span}
    equal to what a sequential run would have recorded. Netlist-backed
    boxes are safe to query from several domains at once (simulation
    only reads the circuit); for {!of_function} boxes the caller must
    supply a thread-safe function before sharding. *)

val shard : ?budget:int -> ?strict:bool -> t -> t
(** [shard ?budget ?strict t] — a fresh-accounting view of [t].
    [budget] is the shard's own query slice ([None] = unlimited; the
    parent's budget does {e not} apply to the shard). With
    [strict = true] a query that would push the shard past its slice
    raises {!Exhausted} instead of executing; default [false] keeps
    the advisory semantics of {!exhausted}. *)

val absorb : t -> t -> unit
(** [absorb t s] folds shard [s]'s accounting into [t]: query count,
    per-span attribution (new keys keep [s]'s first-seen order) and the
    latency histogram. Call exactly once per shard, from one domain at
    a time. [s]'s own counters are left untouched. *)

val golden : t -> Lr_netlist.Netlist.t option
(** The wrapped circuit, if any. {b Evaluation-only}: learners must not call
    this — it is the hidden contest reference used to score accuracy. *)
