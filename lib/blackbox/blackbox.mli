(** The black-box input-output relation generator of the contest problem.

    A [Blackbox.t] exposes exactly what the 2019 ICCAD contest exposed to
    contestants: the {e names} of the primary inputs and outputs, and a
    query facility accepting a {e full} input assignment and returning the
    full output assignment. Nothing about the underlying circuit leaks.

    Every query is counted. The learner's anytime behaviour is driven by a
    deterministic query budget (and optionally a wall-clock deadline), so
    runs are reproducible; exceeding the budget never fails a query — the
    learner is expected to poll {!exhausted}, mirroring the "TimeLimit is
    exceeded" test of Algorithm 2.

    A box is a {e reliable} oracle by default. {!set_faults} arms it with
    a deterministic {!Lr_faults.Faults} schedule — transient failures,
    latency spikes, corrupted output bits, premature exhaustion — and
    {!set_retry} sets the policy applied to injected failures: each
    failed attempt backs off in injected-clock time and retries, and only
    when the policy is spent does {!Lr_faults.Faults.Query_failed} reach
    the caller. Failed attempts consume no budget and are not attributed
    as queries, so a run whose faults are all outlasted by retries is
    bit-identical — circuit, query counts, attribution — to a fault-free
    run. *)

type t

exception Exhausted of { used : int; budget : int }
(** Raised by {!query}/{!query_many} on a {e strict} {!shard} whose
    budget slice would be exceeded — the query is refused, not counted.
    Plain boxes and non-strict shards never raise this: their exhaustion
    stays advisory through {!exhausted}. *)

val of_netlist : ?budget:int -> ?deadline_s:float -> Lr_netlist.Netlist.t -> t
(** Wrap a golden circuit. The circuit is retained only behind the query
    interface; use {!golden} in evaluation code, never in the learner. *)

val of_function :
  ?budget:int ->
  ?deadline_s:float ->
  input_names:string array ->
  output_names:string array ->
  (Lr_bitvec.Bv.t -> Lr_bitvec.Bv.t) ->
  t
(** Wrap an arbitrary total function (used by tests and the quickstart). *)

val num_inputs : t -> int
val num_outputs : t -> int
val input_names : t -> string array
val output_names : t -> string array

val query : t -> Lr_bitvec.Bv.t -> Lr_bitvec.Bv.t
(** One full assignment in, one full assignment out. Counts 1 query.
    On a faulty box, raises {!Lr_faults.Faults.Query_failed} once the
    retry policy is spent on an injected failure. *)

val query_many : t -> Lr_bitvec.Bv.t array -> Lr_bitvec.Bv.t array
(** Batched queries (word-parallel when the box wraps a netlist).
    Counts [Array.length] queries. An empty batch is a complete no-op:
    nothing is counted, attributed or timed. On a faulty box, raises
    {!Lr_faults.Faults.Query_failed} once the retry policy is spent. *)

val probe_many : t -> Lr_bitvec.Bv.t array -> Lr_bitvec.Bv.t array
(** Behavioural-fingerprint probes ([Lr_serve.Fingerprint]): evaluate
    the underlying provider directly, bypassing {e all} query machinery
    — nothing is counted, attributed, timed, budgeted or
    fault-injected. Probing leaves {!queries_used},
    {!queries_by_span}, {!query_latency} and {!exhausted} exactly as
    they were, so a service learn that fingerprinted its box first is
    bit-identical to a direct {!query}-only run. Not for learners:
    circumventing the budget in learning code would break the contest
    accounting contract. *)

(** {1 Fault injection and retries}

    The chaos-testing hooks: a seeded {!Lr_faults.Faults.spec} makes the
    box behave like the unreliable industrial generator of the contest
    setting, deterministically. *)

val set_faults : ?key:int -> t -> Lr_faults.Faults.spec option -> unit
(** Arm (or disarm, with [None]) fault injection. [key] (default [-1])
    identifies this box's fault stream; {!shard} derives per-subproblem
    streams from it. Installing a spec resets the stream's cursor and
    counters. *)

val faults_spec : t -> Lr_faults.Faults.spec option

val set_retry : t -> Lr_faults.Faults.retry -> unit
(** Policy for injected failures (default {!Lr_faults.Faults.no_retry}:
    the first failure is fatal). Backoff advances the injected clock
    ({!Lr_instr.Instr.advance_clock}), never sleeps. *)

val retry_policy : t -> Lr_faults.Faults.retry

val retries_used : t -> int
(** Failed attempts that were retried (successful or not, exhausted
    attempts past the first are not retries). 0 on a reliable box. *)

val retries_by_span : t -> (string * int) list
(** Per-phase retry attribution, same keying and ordering rules as
    {!queries_by_span}; sums to {!retries_used}. *)

val faults_seen : t -> (string * int) list
(** The fault stream's counters ({!Lr_faults.Faults.seen}), including
    everything absorbed from shards; [[]] on a reliable box. *)

val queries_used : t -> int
val budget : t -> int option

val query_latency : t -> Lr_report.Histogram.t
(** Per-query latency histogram (seconds), timed with the
    {!Lr_instr.Instr.now} clock so an injected test clock produces
    deterministic samples. Single queries record their own duration; a
    batched {!query_many} of [n] patterns records its mean per-query
    latency [n] times, so the histogram's total weight equals
    {!queries_used}. Cleared by {!reset_accounting}. *)

val queries_by_span : t -> (string * int) list
(** Per-phase query attribution: every query is charged to the
    instrumentation span ({!Lr_instr.Instr.span}) that was innermost when
    it was issued ([""] when none was open), in first-seen order. The
    totals always sum to {!queries_used} — the learner turns this into
    the per-phase query breakdown of its report. *)

val exhausted : t -> bool
(** True once the query budget {e or} the wall-clock deadline is spent —
    or a fault schedule injects premature exhaustion. All causes are
    observable through this single predicate: poll it between batched
    {!query_many} calls (budget/deadline exhaustion never fails a query —
    it is advisory, mirroring Algorithm 2's "TimeLimit is exceeded"
    test), and note that a deadline can flip [exhausted] even when
    {!queries_used} is still under {!budget}. The deadline is measured
    on the {!Lr_instr.Instr.now} clock, so injected latency counts
    against it. *)

val reset_accounting : t -> unit
(** Zero the query counter, restart the deadline clock, {e and} clear
    the per-span attribution table ({!queries_by_span} becomes []), the
    {!query_latency} histogram, the retry counters and the fault
    stream's cursor — benchmarks call this between methods sharing one
    box, and stale attribution would otherwise leak across runs. *)

(** {1 Accounting shards}

    The parallel learner gives every fanned-out subproblem its own
    accounting {e shard}: a view of the same black box (same provider,
    same names, same wall-clock deadline) with independent counters, so
    worker domains never contend on — or lose — accounting updates.
    Queries through a shard are {b not} visible in the parent until the
    parent calls {!absorb}; absorbing every shard exactly once, in a
    deterministic order, makes {!queries_used} and {!queries_by_span}
    equal to what a sequential run would have recorded. Netlist-backed
    boxes are safe to query from several domains at once (simulation
    only reads the circuit); for {!of_function} boxes the caller must
    supply a thread-safe function before sharding. *)

val shard : ?budget:int -> ?strict:bool -> ?fault_key:int -> t -> t
(** [shard ?budget ?strict ?fault_key t] — a fresh-accounting view of
    [t]. [budget] is the shard's own query slice ([None] = unlimited;
    the parent's budget does {e not} apply to the shard). With
    [strict = true] a query that would push the shard past its slice
    raises {!Exhausted} instead of executing; default [false] keeps
    the advisory semantics of {!exhausted}. On a faulty parent the
    shard gets a fresh fault stream for [fault_key] (default: the
    parent's key) — keyed streams are what make a sharded run replay
    the sequential run's fault schedule exactly; the learner keys each
    shard by its primary-output index. The parent's retry policy is
    inherited. *)

val absorb : t -> t -> unit
(** [absorb t s] folds shard [s]'s accounting into [t]: query count,
    per-span attribution (new keys keep [s]'s first-seen order), retry
    count and attribution, fault counters, and the latency histogram.
    Call exactly once per shard, from one domain at a time. [s]'s own
    counters are left untouched. *)

val golden : t -> Lr_netlist.Netlist.t option
(** The wrapped circuit, if any. {b Evaluation-only}: learners must not call
    this — it is the hidden contest reference used to score accuracy. *)
