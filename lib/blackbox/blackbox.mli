(** The black-box input-output relation generator of the contest problem.

    A [Blackbox.t] exposes exactly what the 2019 ICCAD contest exposed to
    contestants: the {e names} of the primary inputs and outputs, and a
    query facility accepting a {e full} input assignment and returning the
    full output assignment. Nothing about the underlying circuit leaks.

    Every query is counted. The learner's anytime behaviour is driven by a
    deterministic query budget (and optionally a wall-clock deadline), so
    runs are reproducible; exceeding the budget never fails a query — the
    learner is expected to poll {!exhausted}, mirroring the "TimeLimit is
    exceeded" test of Algorithm 2. *)

type t

val of_netlist : ?budget:int -> ?deadline_s:float -> Lr_netlist.Netlist.t -> t
(** Wrap a golden circuit. The circuit is retained only behind the query
    interface; use {!golden} in evaluation code, never in the learner. *)

val of_function :
  ?budget:int ->
  ?deadline_s:float ->
  input_names:string array ->
  output_names:string array ->
  (Lr_bitvec.Bv.t -> Lr_bitvec.Bv.t) ->
  t
(** Wrap an arbitrary total function (used by tests and the quickstart). *)

val num_inputs : t -> int
val num_outputs : t -> int
val input_names : t -> string array
val output_names : t -> string array

val query : t -> Lr_bitvec.Bv.t -> Lr_bitvec.Bv.t
(** One full assignment in, one full assignment out. Counts 1 query. *)

val query_many : t -> Lr_bitvec.Bv.t array -> Lr_bitvec.Bv.t array
(** Batched queries (word-parallel when the box wraps a netlist).
    Counts [Array.length] queries. *)

val queries_used : t -> int
val budget : t -> int option

val query_latency : t -> Lr_report.Histogram.t
(** Per-query latency histogram (seconds), timed with the
    {!Lr_instr.Instr.now} clock so an injected test clock produces
    deterministic samples. Single queries record their own duration; a
    batched {!query_many} of [n] patterns records its mean per-query
    latency [n] times, so the histogram's total weight equals
    {!queries_used}. Cleared by {!reset_accounting}. *)

val queries_by_span : t -> (string * int) list
(** Per-phase query attribution: every query is charged to the
    instrumentation span ({!Lr_instr.Instr.span}) that was innermost when
    it was issued ([""] when none was open), in first-seen order. The
    totals always sum to {!queries_used} — the learner turns this into
    the per-phase query breakdown of its report. *)

val exhausted : t -> bool
(** True once the query budget {e or} the wall-clock deadline is spent.
    Both causes are observable through this single predicate: poll it
    between batched {!query_many} calls (queries never fail — exhaustion
    is advisory, mirroring Algorithm 2's "TimeLimit is exceeded" test),
    and note that a deadline can flip [exhausted] even when
    {!queries_used} is still under {!budget}. *)

val reset_accounting : t -> unit
(** Zero the query counter, restart the deadline clock, {e and} clear
    the per-span attribution table ({!queries_by_span} becomes []) and
    the {!query_latency} histogram — benchmarks call this between
    methods sharing one box, and stale attribution would otherwise leak
    across runs. *)

val golden : t -> Lr_netlist.Netlist.t option
(** The wrapped circuit, if any. {b Evaluation-only}: learners must not call
    this — it is the hidden contest reference used to score accuracy. *)
