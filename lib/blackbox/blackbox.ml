module Bv = Lr_bitvec.Bv
module N = Lr_netlist.Netlist
module Instr = Lr_instr.Instr
module Histogram = Lr_report.Histogram

type provider =
  | Circuit of N.t
  | Function of (Bv.t -> Bv.t)

exception Exhausted of { used : int; budget : int }

let () =
  Printexc.register_printer (function
    | Exhausted { used; budget } ->
        Some
          (Printf.sprintf
             "Blackbox.Exhausted: strict shard budget spent (%d used of %d)"
             used budget)
    | _ -> None)

type t = {
  provider : provider;
  input_names : string array;
  output_names : string array;
  budget : int option;
  deadline_s : float option;
  strict : bool;  (** shards only: queries past the budget raise *)
  mutable used : int;
  mutable started_at : float;
  by_span : (string, int ref) Hashtbl.t;
  mutable span_order : string list;  (** first-seen attribution keys *)
  latency : Histogram.t;  (** per-query latency, batch-mean attributed *)
}

let make ?budget ?deadline_s provider ~input_names ~output_names =
  {
    provider;
    input_names;
    output_names;
    budget;
    deadline_s;
    strict = false;
    used = 0;
    started_at = Unix.gettimeofday ();
    by_span = Hashtbl.create 16;
    span_order = [];
    latency = Histogram.create ();
  }

(* A shard shares the parent's (immutable, thread-safe) provider and
   names but owns every mutable accounting field, so worker domains can
   query concurrently without racing on counters; the parent folds the
   shard back with [absorb]. The deadline clock is inherited (a wall
   clock is global by nature); the query budget is the shard's own
   slice, decided by the caller. *)
let shard ?budget ?(strict = false) t =
  {
    t with
    budget;
    strict;
    used = 0;
    by_span = Hashtbl.create 16;
    span_order = [];
    latency = Histogram.create ();
  }

let absorb t s =
  t.used <- t.used + s.used;
  List.iter
    (fun key ->
      let n = !(Hashtbl.find s.by_span key) in
      match Hashtbl.find_opt t.by_span key with
      | Some r -> r := !r + n
      | None ->
          Hashtbl.add t.by_span key (ref n);
          t.span_order <- key :: t.span_order)
    (List.rev s.span_order);
  Histogram.merge ~into:t.latency s.latency

let of_netlist ?budget ?deadline_s c =
  make ?budget ?deadline_s (Circuit c)
    ~input_names:(N.input_names c) ~output_names:(N.output_names c)

let of_function ?budget ?deadline_s ~input_names ~output_names f =
  make ?budget ?deadline_s (Function f) ~input_names ~output_names

let num_inputs t = Array.length t.input_names
let num_outputs t = Array.length t.output_names
let input_names t = t.input_names
let output_names t = t.output_names

let check_width t a =
  if Bv.length a <> num_inputs t then
    invalid_arg "Blackbox.query: assignment width mismatch"

(* Charge [n] queries to the innermost open instrumentation span, so a
   report can say where the budget went phase by phase. *)
let attribute t n =
  (if t.strict then
     match t.budget with
     | Some b when t.used + n > b -> raise (Exhausted { used = t.used; budget = b })
     | _ -> ());
  t.used <- t.used + n;
  let key = Instr.current_span_name () in
  (match Hashtbl.find_opt t.by_span key with
  | Some r -> r := !r + n
  | None ->
      Hashtbl.add t.by_span key (ref n);
      t.span_order <- key :: t.span_order);
  Instr.count "queries" n

(* The clock is [Instr.now] so tests with an injected clock see
   deterministic latencies; a batch charges its mean per-query latency
   once per member, keeping the histogram's weight equal to the query
   count while costing only two clock reads per call. *)
let query t a =
  check_width t a;
  attribute t 1;
  let t0 = Instr.now () in
  let r =
    match t.provider with Circuit c -> N.eval c a | Function f -> f a
  in
  Histogram.add t.latency (Instr.now () -. t0);
  r

let query_many t patterns =
  Array.iter (check_width t) patterns;
  let n = Array.length patterns in
  attribute t n;
  let t0 = Instr.now () in
  let r =
    match t.provider with
    | Circuit c -> N.eval_many c patterns
    | Function f -> Array.map f patterns
  in
  if n > 0 then
    Histogram.add_n t.latency ((Instr.now () -. t0) /. float_of_int n) n;
  r

let queries_used t = t.used
let budget t = t.budget
let query_latency t = t.latency

let queries_by_span t =
  List.rev_map (fun k -> (k, !(Hashtbl.find t.by_span k))) t.span_order

let exhausted t =
  (match t.budget with Some b -> t.used >= b | None -> false)
  || match t.deadline_s with
     | Some d -> Unix.gettimeofday () -. t.started_at >= d
     | None -> false

let reset_accounting t =
  t.used <- 0;
  t.started_at <- Unix.gettimeofday ();
  Hashtbl.reset t.by_span;
  t.span_order <- [];
  Histogram.clear t.latency

let golden t = match t.provider with Circuit c -> Some c | Function _ -> None
