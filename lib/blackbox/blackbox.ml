module Bv = Lr_bitvec.Bv
module N = Lr_netlist.Netlist
module Instr = Lr_instr.Instr
module Log = Lr_obs.Log
module Histogram = Lr_report.Histogram
module Faults = Lr_faults.Faults

type provider =
  | Circuit of N.t
  | Function of (Bv.t -> Bv.t)

exception Exhausted of { used : int; budget : int }

let () =
  Printexc.register_printer (function
    | Exhausted { used; budget } ->
        Some
          (Printf.sprintf
             "Blackbox.Exhausted: strict shard budget spent (%d used of %d)"
             used budget)
    | _ -> None)

type t = {
  provider : provider;
  input_names : string array;
  output_names : string array;
  budget : int option;
  deadline_s : float option;
  strict : bool;  (** shards only: queries past the budget raise *)
  mutable used : int;
  mutable started_at : float;
  by_span : (string, int ref) Hashtbl.t;
  mutable span_order : string list;  (** first-seen attribution keys *)
  latency : Histogram.t;  (** per-query latency, batch-mean attributed *)
  mutable faults : Faults.t option;
      (** fault-injection stream; [None] = reliable oracle *)
  mutable retry : Faults.retry;  (** policy applied to injected failures *)
  mutable retries : int;
  retries_by_span : (string, int ref) Hashtbl.t;
  mutable retry_span_order : string list;
}

let make ?budget ?deadline_s provider ~input_names ~output_names =
  {
    provider;
    input_names;
    output_names;
    budget;
    deadline_s;
    strict = false;
    used = 0;
    started_at = Instr.now ();
    by_span = Hashtbl.create 16;
    span_order = [];
    latency = Histogram.create ();
    faults = None;
    retry = Faults.no_retry;
    retries = 0;
    retries_by_span = Hashtbl.create 8;
    retry_span_order = [];
  }

(* A shard shares the parent's (immutable, thread-safe) provider and
   names but owns every mutable accounting field, so worker domains can
   query concurrently without racing on counters; the parent folds the
   shard back with [absorb]. The deadline clock is inherited (a wall
   clock is global by nature); the query budget is the shard's own
   slice, decided by the caller. A faulty parent hands the shard a
   fresh fault stream for [fault_key] (default: the parent's own key) —
   the schedule is a pure function of (spec, key, batch), so the shard
   replays exactly the faults a sequential run would have charged to
   that key, whichever domain it lands on. *)
let shard ?budget ?(strict = false) ?fault_key t =
  {
    t with
    budget;
    strict;
    used = 0;
    by_span = Hashtbl.create 16;
    span_order = [];
    latency = Histogram.create ();
    faults =
      Option.map
        (fun f ->
          Faults.instantiate (Faults.spec f)
            ~key:(Option.value fault_key ~default:(Faults.key f)))
        t.faults;
    retries = 0;
    retries_by_span = Hashtbl.create 8;
    retry_span_order = [];
  }

let absorb t s =
  t.used <- t.used + s.used;
  List.iter
    (fun key ->
      let n = !(Hashtbl.find s.by_span key) in
      match Hashtbl.find_opt t.by_span key with
      | Some r -> r := !r + n
      | None ->
          Hashtbl.add t.by_span key (ref n);
          t.span_order <- key :: t.span_order)
    (List.rev s.span_order);
  List.iter
    (fun key ->
      let n = !(Hashtbl.find s.retries_by_span key) in
      match Hashtbl.find_opt t.retries_by_span key with
      | Some r -> r := !r + n
      | None ->
          Hashtbl.add t.retries_by_span key (ref n);
          t.retry_span_order <- key :: t.retry_span_order)
    (List.rev s.retry_span_order);
  t.retries <- t.retries + s.retries;
  (match (t.faults, s.faults) with
  | Some into, Some src -> Faults.absorb ~into src
  | _ -> ());
  Histogram.merge ~into:t.latency s.latency

let of_netlist ?budget ?deadline_s c =
  make ?budget ?deadline_s (Circuit c)
    ~input_names:(N.input_names c) ~output_names:(N.output_names c)

let of_function ?budget ?deadline_s ~input_names ~output_names f =
  make ?budget ?deadline_s (Function f) ~input_names ~output_names

let num_inputs t = Array.length t.input_names
let num_outputs t = Array.length t.output_names
let input_names t = t.input_names
let output_names t = t.output_names

let set_faults ?(key = -1) t spec =
  t.faults <- Option.map (fun s -> Faults.instantiate s ~key) spec

let faults_spec t = Option.map Faults.spec t.faults
let set_retry t retry = t.retry <- retry
let retry_policy t = t.retry

let check_width t a =
  if Bv.length a <> num_inputs t then
    invalid_arg "Blackbox.query: assignment width mismatch"

(* Charge [n] queries to the innermost open instrumentation span, so a
   report can say where the budget went phase by phase. *)
let attribute t n =
  (if t.strict then
     match t.budget with
     | Some b when t.used + n > b -> raise (Exhausted { used = t.used; budget = b })
     | _ -> ());
  t.used <- t.used + n;
  let key = Instr.current_span_name () in
  (match Hashtbl.find_opt t.by_span key with
  | Some r -> r := !r + n
  | None ->
      Hashtbl.add t.by_span key (ref n);
      t.span_order <- key :: t.span_order);
  Instr.count "queries" n

let bump_retries t n =
  t.retries <- t.retries + n;
  let key = Instr.current_span_name () in
  (match Hashtbl.find_opt t.retries_by_span key with
  | Some r -> r := !r + n
  | None ->
      Hashtbl.add t.retries_by_span key (ref n);
      t.retry_span_order <- key :: t.retry_span_order);
  Instr.count "query.retries" n

let run_provider t patterns =
  match t.provider with
  | Circuit c -> N.eval_many c patterns
  | Function f -> Array.map f patterns

(* Injected failures and the retry policy around them. A failed attempt
   consumes no budget and is not attributed as a query: retrying leaves
   [queries_used] — and therefore the whole learned circuit — exactly
   what a fault-free run records, which is the transparency property the
   chaos tests pin down. Backoff advances the injected clock instead of
   sleeping, so deadlines and latency percentiles see the stall but the
   process never blocks. *)
let rec faulted_batch t f patterns ~n ~attempt =
  if Faults.attempt_fails f ~attempt then
    if attempt + 1 >= max 1 t.retry.Faults.max_attempts then begin
      Log.warn ~key:"blackbox.failed"
        ~fields:
          [
            Log.int "key" (Faults.key f);
            Log.int "ordinal" t.used;
            Log.int "attempts" (attempt + 1);
          ]
        "query batch failed permanently; retry policy exhausted";
      raise
        (Faults.Query_failed
           {
             key = Faults.key f;
             ordinal = t.used;
             attempts = attempt + 1;
           })
    end
    else begin
      bump_retries t 1;
      let backoff = Faults.backoff_delay t.retry ~attempt in
      Log.debug ~key:"blackbox.retry"
        ~fields:
          [
            Log.int "key" (Faults.key f);
            Log.int "attempt" (attempt + 1);
            Log.float "backoff_s" backoff;
          ]
        "transient query failure; backing off and retrying";
      Instr.advance_clock backoff;
      faulted_batch t f patterns ~n ~attempt:(attempt + 1)
    end
  else begin
    attribute t n;
    let t0 = Instr.now () in
    let r = run_provider t patterns in
    Instr.advance_clock (Faults.spike f);
    let r = Faults.commit f r in
    Histogram.add_n t.latency ((Instr.now () -. t0) /. float_of_int n) n;
    r
  end

(* The clock is [Instr.now] so tests with an injected clock see
   deterministic latencies; a batch charges its mean per-query latency
   once per member, keeping the histogram's weight equal to the query
   count while costing only two clock reads per call. An empty batch is
   a complete no-op — it must not touch the attribution table or the
   histogram, or shard absorption would merge phantom zero-weight
   entries. *)
let query_many t patterns =
  let n = Array.length patterns in
  if n = 0 then [||]
  else begin
    Array.iter (check_width t) patterns;
    match t.faults with
    | Some f -> faulted_batch t f patterns ~n ~attempt:0
    | None ->
        attribute t n;
        let t0 = Instr.now () in
        let r = run_provider t patterns in
        Histogram.add_n t.latency ((Instr.now () -. t0) /. float_of_int n) n;
        r
  end

let query t a =
  match t.faults with
  | Some _ -> (query_many t [| a |]).(0)
  | None ->
      check_width t a;
      attribute t 1;
      let t0 = Instr.now () in
      let r =
        match t.provider with Circuit c -> N.eval c a | Function f -> f a
      in
      Histogram.add t.latency (Instr.now () -. t0);
      r

(* Fingerprint probes for the service cache: evaluate the provider
   directly, with none of the query machinery — no budget, no counters,
   no span attribution, no latency samples, no fault injection. The
   zero-leakage contract is what keeps a cache-missed service learn
   bit-identical to a direct [Learner.learn] of the same box. *)
let probe_many t patterns =
  Array.iter (check_width t) patterns;
  run_provider t patterns

let queries_used t = t.used
let budget t = t.budget
let query_latency t = t.latency

let queries_by_span t =
  List.rev_map (fun k -> (k, !(Hashtbl.find t.by_span k))) t.span_order

let retries_used t = t.retries

let retries_by_span t =
  List.rev_map
    (fun k -> (k, !(Hashtbl.find t.retries_by_span k)))
    t.retry_span_order

let faults_seen t =
  match t.faults with Some f -> Faults.seen f | None -> []

let exhausted t =
  (match t.budget with Some b -> t.used >= b | None -> false)
  || (match t.deadline_s with
     | Some d -> Instr.now () -. t.started_at >= d
     | None -> false)
  || match t.faults with Some f -> Faults.exhausted f | None -> false

let reset_accounting t =
  t.used <- 0;
  t.started_at <- Instr.now ();
  Hashtbl.reset t.by_span;
  t.span_order <- [];
  Histogram.clear t.latency;
  t.retries <- 0;
  Hashtbl.reset t.retries_by_span;
  t.retry_span_order <- [];
  t.faults <-
    Option.map
      (fun f -> Faults.instantiate (Faults.spec f) ~key:(Faults.key f))
      t.faults

let golden t = match t.provider with Circuit c -> Some c | Function _ -> None
