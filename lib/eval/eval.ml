module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Instr = Lr_instr.Instr
module Soa = Lr_kernel.Soa

(* eval_many through the SoA kernel or the tree-walking reference; both
   tick the same sim counters, so reports cannot tell them apart *)
let runner kernel c =
  if kernel then
    let soa = Soa.of_netlist c in
    fun patterns -> Soa.eval_many soa patterns
  else fun patterns -> N.eval_many c patterns

let mixture ~rng ~num_inputs ~count =
  let third = (count + 2) / 3 in
  Array.init count (fun i ->
      let bias =
        if i < third then 0.8 else if i < 2 * third then 0.2 else 0.5
      in
      Bv.random_biased rng bias num_inputs)

let check_shapes golden candidate =
  if
    N.num_inputs golden <> N.num_inputs candidate
    || N.num_outputs golden <> N.num_outputs candidate
  then invalid_arg "Eval: golden and candidate shapes differ"

let accuracy_on ?(kernel = true) ~patterns ~golden ~candidate () =
  check_shapes golden candidate;
  Instr.span ~name:"eval.accuracy" @@ fun () ->
  Instr.count "eval.patterns" (Array.length patterns);
  let want = runner kernel golden patterns in
  let got = runner kernel candidate patterns in
  let hits = ref 0 in
  Array.iteri (fun i w -> if Bv.equal w got.(i) then incr hits) want;
  Float.of_int !hits /. Float.of_int (max 1 (Array.length patterns))

let accuracy ?(count = 30_000) ?kernel ~rng ~golden ~candidate () =
  let patterns = mixture ~rng ~num_inputs:(N.num_inputs golden) ~count in
  accuracy_on ?kernel ~patterns ~golden ~candidate ()

type stats = { mean : float; std : float; lo95 : float; hi95 : float; runs : int }

let accuracy_stats ?(runs = 5) ?(count = 10_000) ?kernel ~rng ~golden
    ~candidate () =
  if runs < 2 then invalid_arg "Eval.accuracy_stats: need at least 2 runs";
  let samples =
    List.init runs (fun _ ->
        accuracy ~count ?kernel ~rng:(Rng.split rng) ~golden ~candidate ())
  in
  let n = Float.of_int runs in
  let mean = List.fold_left ( +. ) 0.0 samples /. n in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples
    /. (n -. 1.0)
  in
  let std = Float.sqrt var in
  let half = 1.96 *. std /. Float.sqrt n in
  { mean; std; lo95 = mean -. half; hi95 = mean +. half; runs }

let per_output_accuracy ?(kernel = true) ~patterns ~golden ~candidate () =
  check_shapes golden candidate;
  let no = N.num_outputs golden in
  let want = runner kernel golden patterns in
  let got = runner kernel candidate patterns in
  let hits = Array.make no 0 in
  Array.iteri
    (fun i w ->
      for o = 0 to no - 1 do
        if Bv.get w o = Bv.get got.(i) o then hits.(o) <- hits.(o) + 1
      done)
    want;
  Array.map
    (fun h -> Float.of_int h /. Float.of_int (max 1 (Array.length patterns)))
    hits
