(** The contest's scoring harness.

    Accuracy is the hit rate over a hidden pattern set: a hit requires
    {e all} output bits to match the golden circuit on an input assignment.
    The contest used 1.5M patterns, one third biased toward 1s, one third
    biased toward 0s and one third uniform; [mixture] reproduces that
    composition at any scale (the benches default to a smaller count; the
    estimate's variance is what changes, not its meaning). *)

val mixture :
  rng:Lr_bitvec.Rng.t -> num_inputs:int -> count:int -> Lr_bitvec.Bv.t array
(** [count] patterns: ⌈count/3⌉ with 1-density 0.8, ⌈count/3⌉ with
    1-density 0.2, the rest uniform. *)

val accuracy :
  ?count:int ->
  ?kernel:bool ->
  rng:Lr_bitvec.Rng.t ->
  golden:Lr_netlist.Netlist.t ->
  candidate:Lr_netlist.Netlist.t ->
  unit ->
  float
(** Hit rate in [0, 1]. Default [count] is 30_000. Requires identical
    PI/PO counts. [kernel] (default [true]) scores on the {!Lr_kernel.Soa}
    engine — bit-identical results and sim counters, materially faster on
    large pattern sets. *)

val accuracy_on :
  ?kernel:bool ->
  patterns:Lr_bitvec.Bv.t array ->
  golden:Lr_netlist.Netlist.t ->
  candidate:Lr_netlist.Netlist.t ->
  unit ->
  float
(** Same, over a caller-supplied pattern set (so several candidates can be
    scored against the very same patterns). *)

val per_output_accuracy :
  ?kernel:bool ->
  patterns:Lr_bitvec.Bv.t array ->
  golden:Lr_netlist.Netlist.t ->
  candidate:Lr_netlist.Netlist.t ->
  unit ->
  float array
(** Hit rate of each output separately — diagnostic, not a contest metric. *)

type stats = {
  mean : float;
  std : float;
  lo95 : float;  (** normal-approximation 95% confidence bounds *)
  hi95 : float;
  runs : int;
}

val accuracy_stats :
  ?runs:int ->
  ?count:int ->
  ?kernel:bool ->
  rng:Lr_bitvec.Rng.t ->
  golden:Lr_netlist.Netlist.t ->
  candidate:Lr_netlist.Netlist.t ->
  unit ->
  stats
(** Accuracy over [runs] (default 5) independent pattern sets with mean,
    sample standard deviation and a 95% confidence interval — the rigor
    layer the single-number contest metric lacks. *)
