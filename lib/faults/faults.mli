(** Deterministic fault injection for the black-box query pipeline.

    The paper's setting is adversarial: an opaque industrial IO generator
    queried under a hard wall-clock limit. A real generator can refuse a
    query, stall, or return corrupted bits — none of which a perfectly
    reliable in-process oracle ever exercises. This module supplies the
    missing adversary as a {e seeded, serializable fault schedule}: a pure
    function of [(seed, key, batch ordinal, lane)] deciding, for every
    query batch, whether it fails transiently, how long it stalls, and
    whether its answer is corrupted. Because the schedule depends only on
    the spec and the stream {e key} (one per learned output), a sharded
    parallel run replays exactly the faults a sequential run would see —
    the learner's [--jobs N ≡ --jobs 1] guarantee survives chaos testing.

    Four fault classes are modelled:
    - {e transient query failures}: a batch's first [fail_burst] attempts
      raise {!Query_failed}; a retry past the burst succeeds ([fail_burst
      = 0] makes the fault {e hard} — every attempt fails, and the caller
      eventually gives up and degrades);
    - {e latency spikes}: synthetic seconds injected into the
      {!Lr_instr.Instr} clock ({!Lr_instr.Instr.advance_clock}), visible
      in latency histograms, span times and deadline checks without any
      real sleeping;
    - {e output corruption}: one victim output bit is stuck at a constant
      or flipped during a configurable window of the key's query stream
      (onset + duration, counted in queries served) — the generator {e
      lies} and nothing raises;
    - {e premature exhaustion}: the stream reports
      budget-spent after a configured number of queries, upstream of any
      real budget or deadline.

    {!Lr_blackbox.Blackbox} owns the integration: it consults an
    instantiated schedule around every query, applies the retry policy,
    and accounts faults and retries alongside its query counters. This
    module stays dependency-light (bit-vectors, RNG, JSON) so anything
    below the black box can host an injector. *)

(** {1 Retry policy} *)

type retry = {
  max_attempts : int;
      (** total attempts per query batch, [>= 1]; [1] disables retrying *)
  backoff_s : float;  (** base backoff before the first retry, seconds *)
  backoff_mult : float;  (** exponential multiplier per further retry *)
}

val no_retry : retry
(** [{ max_attempts = 1; backoff_s = 0.; backoff_mult = 2. }] — a failed
    attempt is immediately fatal. *)

val retry : ?backoff_s:float -> ?backoff_mult:float -> int -> retry
(** [retry n] — up to [n] attempts with exponential backoff (default
    1 ms base, doubling). Raises [Invalid_argument] when [n < 1]. *)

val backoff_delay : retry -> attempt:int -> float
(** Injected-clock seconds to back off after failed attempt [attempt]
    (0-based): [backoff_s *. backoff_mult ^ attempt]. *)

(** {1 Fault schedules} *)

type corruption = Stuck_at of bool | Flip

type spec = {
  seed : int;  (** schedule seed; independent of the learner's seed *)
  fail_p : float;  (** per-batch transient failure probability *)
  fail_burst : int;
      (** consecutive failing attempts per cursed batch; [0] = unbounded
          (a hard fault that retries can never outlast) *)
  latency_p : float;  (** per-batch latency-spike probability *)
  latency_s : float;  (** injected seconds per spike *)
  corruption : corruption option;  (** what happens to the victim bit *)
  victim : int;  (** corrupted output bit index (out of range = no-op) *)
  onset : int;  (** corruption window start, in queries served per key *)
  duration : int;  (** window length in queries; [max_int] = open-ended *)
  exhaust_after : int option;
      (** report exhaustion after this many queries served per key *)
}

val none : spec
(** The benign schedule: every probability 0, no corruption, no
    premature exhaustion. [instantiate none] injects nothing. *)

val of_string : string -> (spec, string) result
(** Parse the compact CLI form: comma-separated [key=value] settings over
    {!none}. Keys: [seed=N], [fail=P], [burst=N], [latency=P:SECS],
    [flip=BIT], [stuck=BIT:0|1], [at=ONSET], [for=QUERIES],
    [exhaust=N]. Example:
    ["seed=7,fail=0.02,burst=2,latency=0.1:0.005,flip=3,at=100,for=50"]. *)

val to_string : spec -> string
(** Canonical compact form; [of_string (to_string s) = Ok s]. *)

val to_json : spec -> Lr_instr.Json.t
(** Schema [lr-fault-schedule/v1]. *)

val of_json : Lr_instr.Json.t -> (spec, string) result

val load : string -> (spec, string) result
(** [load arg] — if [arg] names an existing file, parse its contents
    (JSON object or compact form, by first character); otherwise parse
    [arg] itself as the compact form. *)

(** {1 Instantiated streams} *)

exception
  Query_failed of {
    key : int;  (** fault stream key of the failing box/shard *)
    ordinal : int;  (** batch ordinal within that stream *)
    attempts : int;  (** attempts consumed, including the first *)
  }
(** The fault surfaced to callers once the retry policy is spent. Never
    raised while a retry remains. *)

type t
(** One key's instance of a schedule: the per-stream cursor (batches
    committed, queries served) plus fault counters. Not thread-safe —
    one instance per accounting shard, merged with {!absorb}. *)

val instantiate : spec -> key:int -> t
(** A fresh stream for [key] with zeroed cursor and counters. Keys
    identify subproblems (the learner uses the primary-output index;
    [-1] for the shared divide phases), so a shard created for the same
    key replays the same faults wherever it runs. *)

val spec : t -> spec
val key : t -> int

val attempt_fails : t -> attempt:int -> bool
(** Does attempt [attempt] (0-based) of the {e current} batch fail?
    Pure in the schedule (same spec, key, batch ⇒ same answer); counts
    one transient fault when true. The batch cursor only advances on
    {!commit}, so retries of a failed batch re-interrogate the same
    schedule point. *)

val spike : t -> float
(** Injected latency for the current batch, in seconds (0 when the
    schedule has no spike here); counts a spike when nonzero. Call once
    per successful batch. *)

val commit : t -> Lr_bitvec.Bv.t array -> Lr_bitvec.Bv.t array
(** Complete the current batch: apply the corruption window to each
    output vector in order (corrupted vectors are fresh copies — inputs
    are never mutated), advance the queries-served and batch cursors.
    Counts one corruption per corrupted query. *)

val exhausted : t -> bool
(** True once [exhaust_after] queries have been served on this stream. *)

val seen : t -> (string * int) list
(** Fault counters, fixed order:
    [["transient", n; "corrupt", n; "latency", n; "exhaust", 0|1]] —
    [exhaust] is 1 when this stream, or any shard stream folded in with
    {!absorb}, hit premature exhaustion. *)

val total_seen : t -> int
(** Sum of the transient/corrupt/latency counters. *)

val absorb : into:t -> t -> unit
(** Fold a shard stream's counters into a parent's (cursors are left
    alone — they are per-key state, not accounting). *)
