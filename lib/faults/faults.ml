module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module Json = Lr_instr.Json
module Log = Lr_obs.Log

(* ---------- retry policy ---------- *)

type retry = { max_attempts : int; backoff_s : float; backoff_mult : float }

let no_retry = { max_attempts = 1; backoff_s = 0.0; backoff_mult = 2.0 }

let retry ?(backoff_s = 1e-3) ?(backoff_mult = 2.0) max_attempts =
  if max_attempts < 1 then invalid_arg "Faults.retry: max_attempts < 1";
  { max_attempts; backoff_s; backoff_mult }

let backoff_delay r ~attempt =
  r.backoff_s *. (r.backoff_mult ** float_of_int attempt)

(* ---------- schedules ---------- *)

type corruption = Stuck_at of bool | Flip

type spec = {
  seed : int;
  fail_p : float;
  fail_burst : int;
  latency_p : float;
  latency_s : float;
  corruption : corruption option;
  victim : int;
  onset : int;
  duration : int;
  exhaust_after : int option;
}

let none =
  {
    seed = 1;
    fail_p = 0.0;
    fail_burst = 1;
    latency_p = 0.0;
    latency_s = 0.0;
    corruption = None;
    victim = 0;
    onset = 0;
    duration = max_int;
    exhaust_after = None;
  }

(* ---------- compact string form ---------- *)

let float_compact f =
  let s = Printf.sprintf "%.12g" f in
  s

let to_string s =
  let parts = ref [] in
  let add fmt = Printf.ksprintf (fun p -> parts := p :: !parts) fmt in
  add "seed=%d" s.seed;
  if s.fail_p > 0.0 then add "fail=%s" (float_compact s.fail_p);
  if s.fail_burst <> none.fail_burst then add "burst=%d" s.fail_burst;
  if s.latency_p > 0.0 then
    add "latency=%s:%s" (float_compact s.latency_p) (float_compact s.latency_s);
  (match s.corruption with
  | Some Flip -> add "flip=%d" s.victim
  | Some (Stuck_at v) -> add "stuck=%d:%d" s.victim (if v then 1 else 0)
  | None -> ());
  if s.onset <> 0 then add "at=%d" s.onset;
  if s.duration <> max_int then add "for=%d" s.duration;
  (match s.exhaust_after with Some n -> add "exhaust=%d" n | None -> ());
  String.concat "," (List.rev !parts)

let of_string text =
  let ( let* ) = Result.bind in
  let int_v key v =
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "%s: not an integer: %s" key v)
  in
  let float_v key v =
    match float_of_string_opt v with
    | Some f when Float.is_finite f -> Ok f
    | _ -> Error (Printf.sprintf "%s: not a number: %s" key v)
  in
  let prob key v =
    let* p = float_v key v in
    if p < 0.0 || p > 1.0 then
      Error (Printf.sprintf "%s: probability out of [0,1]: %s" key v)
    else Ok p
  in
  let apply acc part =
    let* acc = acc in
    match String.index_opt part '=' with
    | None -> Error (Printf.sprintf "expected key=value, got %S" part)
    | Some i -> (
        let key = String.sub part 0 i in
        let v = String.sub part (i + 1) (String.length part - i - 1) in
        match key with
        | "seed" ->
            let* seed = int_v key v in
            Ok { acc with seed }
        | "fail" ->
            let* fail_p = prob key v in
            Ok { acc with fail_p }
        | "burst" ->
            let* fail_burst = int_v key v in
            if fail_burst < 0 then Error "burst: negative"
            else Ok { acc with fail_burst }
        | "latency" -> (
            match String.index_opt v ':' with
            | None -> Error "latency: expected P:SECONDS"
            | Some j ->
                let* latency_p = prob key (String.sub v 0 j) in
                let* latency_s =
                  float_v key (String.sub v (j + 1) (String.length v - j - 1))
                in
                if latency_s < 0.0 then Error "latency: negative seconds"
                else Ok { acc with latency_p; latency_s })
        | "flip" ->
            let* victim = int_v key v in
            Ok { acc with corruption = Some Flip; victim }
        | "stuck" -> (
            match String.index_opt v ':' with
            | None -> Error "stuck: expected BIT:0|1"
            | Some j -> (
                let* victim = int_v key (String.sub v 0 j) in
                match String.sub v (j + 1) (String.length v - j - 1) with
                | "0" -> Ok { acc with corruption = Some (Stuck_at false); victim }
                | "1" -> Ok { acc with corruption = Some (Stuck_at true); victim }
                | bad -> Error (Printf.sprintf "stuck: bad value %S" bad)))
        | "at" ->
            let* onset = int_v key v in
            if onset < 0 then Error "at: negative" else Ok { acc with onset }
        | "for" ->
            let* duration = int_v key v in
            if duration < 0 then Error "for: negative"
            else Ok { acc with duration }
        | "exhaust" ->
            let* n = int_v key v in
            if n < 0 then Error "exhaust: negative"
            else Ok { acc with exhaust_after = Some n }
        | _ -> Error (Printf.sprintf "unknown fault key %S" key))
  in
  if String.trim text = "" then Error "empty fault spec"
  else
    String.split_on_char ',' text
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
    |> List.fold_left apply (Ok none)

(* ---------- JSON form ---------- *)

let to_json s =
  Json.Obj
    [
      ("schema", Json.String "lr-fault-schedule/v1");
      ("seed", Json.Int s.seed);
      ("fail_p", Json.Float s.fail_p);
      ("fail_burst", Json.Int s.fail_burst);
      ("latency_p", Json.Float s.latency_p);
      ("latency_s", Json.Float s.latency_s);
      ( "corruption",
        match s.corruption with
        | None -> Json.Null
        | Some Flip -> Json.String "flip"
        | Some (Stuck_at false) -> Json.String "stuck0"
        | Some (Stuck_at true) -> Json.String "stuck1" );
      ("victim", Json.Int s.victim);
      ("onset", Json.Int s.onset);
      ( "duration",
        if s.duration = max_int then Json.Null else Json.Int s.duration );
      ( "exhaust_after",
        match s.exhaust_after with None -> Json.Null | Some n -> Json.Int n );
    ]

let of_json v =
  let int_f key ~default =
    match Option.bind (Json.member key v) Json.get_int with
    | Some i -> i
    | None -> default
  in
  let float_f key ~default =
    match Option.bind (Json.member key v) Json.get_float with
    | Some f -> f
    | None -> default
  in
  match Option.bind (Json.member "schema" v) Json.get_string with
  | Some "lr-fault-schedule/v1" -> (
      let corruption =
        match Option.bind (Json.member "corruption" v) Json.get_string with
        | Some "flip" -> Ok (Some Flip)
        | Some "stuck0" -> Ok (Some (Stuck_at false))
        | Some "stuck1" -> Ok (Some (Stuck_at true))
        | Some other -> Error (Printf.sprintf "unknown corruption %S" other)
        | None -> Ok None
      in
      match corruption with
      | Error e -> Error e
      | Ok corruption ->
          Ok
            {
              seed = int_f "seed" ~default:none.seed;
              fail_p = float_f "fail_p" ~default:0.0;
              fail_burst = int_f "fail_burst" ~default:none.fail_burst;
              latency_p = float_f "latency_p" ~default:0.0;
              latency_s = float_f "latency_s" ~default:0.0;
              corruption;
              victim = int_f "victim" ~default:0;
              onset = int_f "onset" ~default:0;
              duration = int_f "duration" ~default:max_int;
              exhaust_after =
                Option.bind (Json.member "exhaust_after" v) Json.get_int;
            })
  | Some s -> Error ("not a fault schedule: schema " ^ s)
  | None -> Error "not a fault schedule: missing schema"

let load arg =
  if Sys.file_exists arg && not (Sys.is_directory arg) then begin
    let ic = open_in_bin arg in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let text = String.trim text in
    if String.length text > 0 && text.[0] = '{' then
      match Json.of_string text with
      | Ok v -> of_json v
      | Error e -> Error (Printf.sprintf "%s: %s" arg e)
    else of_string text
  end
  else of_string arg

(* ---------- instantiated streams ---------- *)

exception Query_failed of { key : int; ordinal : int; attempts : int }

let () =
  Printexc.register_printer (function
    | Query_failed { key; ordinal; attempts } ->
        Some
          (Printf.sprintf
             "Faults.Query_failed: query batch %d of fault stream %d still \
              failing after %d attempt(s)"
             ordinal key attempts)
    | _ -> None)

type t = {
  spec : spec;
  key : int;
  mutable batch : int;  (** batches committed on this stream *)
  mutable served : int;  (** queries served (corruption/exhaust cursor) *)
  mutable transient : int;
  mutable corrupt : int;
  mutable latency : int;
  mutable tripped : bool;  (** an absorbed shard stream hit exhaustion *)
}

let instantiate spec ~key =
  {
    spec;
    key;
    batch = 0;
    served = 0;
    transient = 0;
    corrupt = 0;
    latency = 0;
    tripped = false;
  }

let spec t = t.spec
let key t = t.key

(* One uniform draw per (seed, key, batch, lane), order-independent:
   [split_keyed] never advances its argument, so the schedule is a pure
   function of the coordinates however the stream is interleaved. *)
let draw t lane =
  let r = Rng.create t.spec.seed in
  let r = Rng.split_keyed r t.key in
  let r = Rng.split_keyed r t.batch in
  Rng.float (Rng.split_keyed r lane)

let attempt_fails t ~attempt =
  let fails =
    t.spec.fail_p > 0.0
    && (t.spec.fail_burst = 0 || attempt < t.spec.fail_burst)
    && draw t 0 < t.spec.fail_p
  in
  if fails then t.transient <- t.transient + 1;
  fails

let spike t =
  if t.spec.latency_p > 0.0 && draw t 1 < t.spec.latency_p then begin
    t.latency <- t.latency + 1;
    t.spec.latency_s
  end
  else 0.0

let in_window t q =
  q >= t.spec.onset
  && (t.spec.duration = max_int || q - t.spec.onset < t.spec.duration)

let commit t outs =
  let served_before = t.served and corrupt_before = t.corrupt in
  let outs =
    match t.spec.corruption with
    | None ->
        t.served <- t.served + Array.length outs;
        outs
    | Some c ->
        Array.map
          (fun o ->
            let q = t.served in
            t.served <- q + 1;
            if in_window t q && t.spec.victim < Bv.length o then begin
              let o' = Bv.copy o in
              (match c with
              | Flip -> Bv.set o' t.spec.victim (not (Bv.get o t.spec.victim))
              | Stuck_at v -> Bv.set o' t.spec.victim v);
              if not (Bv.equal o o') then t.corrupt <- t.corrupt + 1;
              o'
            end
            else o)
          outs
  in
  t.batch <- t.batch + 1;
  if t.corrupt > corrupt_before then
    Log.debug ~key:"faults.corrupt"
      ~fields:
        [
          Log.int "key" t.key;
          Log.int "victim" t.spec.victim;
          Log.int "corrupted" (t.corrupt - corrupt_before);
        ]
      "fault schedule corrupted query answers";
  (match t.spec.exhaust_after with
  | Some n when served_before < n && t.served >= n ->
      Log.warn
        ~fields:[ Log.int "key" t.key; Log.int "after" n ]
        "fault stream reports premature budget exhaustion"
  | _ -> ());
  outs

let exhausted t =
  match t.spec.exhaust_after with Some n -> t.served >= n | None -> false

let seen t =
  [
    ("transient", t.transient);
    ("corrupt", t.corrupt);
    ("latency", t.latency);
    ("exhaust", if exhausted t || t.tripped then 1 else 0);
  ]

let total_seen t = t.transient + t.corrupt + t.latency

let absorb ~into src =
  into.transient <- into.transient + src.transient;
  into.corrupt <- into.corrupt + src.corrupt;
  into.latency <- into.latency + src.latency;
  into.tripped <- into.tripped || src.tripped || exhausted src
