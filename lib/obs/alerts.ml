module Instr = Lr_instr.Instr
module Json = Lr_instr.Json

type op = Gt | Ge | Lt | Le

type rule = {
  metric : string;
  op : op;
  threshold : float;
  window_s : float option;
}

type spec = rule list

let schema = "lr-alerts/v1"

let op_to_string = function Gt -> ">" | Ge -> ">=" | Lt -> "<" | Le -> "<="

let op_of_string = function
  | ">" -> Ok Gt
  | ">=" -> Ok Ge
  | "<" -> Ok Lt
  | "<=" -> Ok Le
  | s -> Error (Printf.sprintf "unknown comparison %S" s)

(* %.12g round-trips every float the spec forms ever carry while
   printing integral thresholds without a trailing dot (same convention
   as the fault-schedule spec). *)
let float_compact f =
  let s = Printf.sprintf "%.12g" f in
  s

let rule_to_string r =
  Printf.sprintf "%s%s%s%s" r.metric (op_to_string r.op)
    (float_compact r.threshold)
    (match r.window_s with
    | None -> ""
    | Some w -> Printf.sprintf "@%ss" (float_compact w))

let to_string spec = String.concat "," (List.map rule_to_string spec)

let is_metric_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_' || c = '.' || c = '-'

let parse_threshold s =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then Error "empty threshold"
  else
    let body, scale =
      match s.[n - 1] with
      | 'x' -> (String.sub s 0 (n - 1), 1.0)
      | '%' -> (String.sub s 0 (n - 1), 0.01)
      | _ -> (s, 1.0)
    in
    match float_of_string_opt (String.trim body) with
    | Some f -> Ok (f *. scale)
    | None -> Error (Printf.sprintf "bad threshold %S" s)

let parse_window s =
  let s = String.trim s in
  let n = String.length s in
  let body = if n > 0 && s.[n - 1] = 's' then String.sub s 0 (n - 1) else s in
  match float_of_string_opt (String.trim body) with
  | Some f when f > 0. -> Ok f
  | _ -> Error (Printf.sprintf "bad window %S (want seconds > 0)" s)

let parse_rule s =
  let s = String.trim s in
  (* Longest-match the operator so ">=" is not read as ">" + "=…". *)
  let op_at i =
    if i + 1 < String.length s && (s.[i] = '>' || s.[i] = '<') && s.[i + 1] = '='
    then Some 2
    else if s.[i] = '>' || s.[i] = '<' then Some 1
    else None
  in
  let rec find i =
    if i >= String.length s then None
    else match op_at i with Some w -> Some (i, w) | None -> find (i + 1)
  in
  match find 0 with
  | None -> Error (Printf.sprintf "rule %S: no comparison operator" s)
  | Some (i, w) -> (
      let metric = String.trim (String.sub s 0 i) in
      let rhs = String.sub s (i + w) (String.length s - i - w) in
      if metric = "" then Error (Printf.sprintf "rule %S: empty metric" s)
      else if not (String.for_all is_metric_char metric) then
        Error (Printf.sprintf "rule %S: bad metric name %S" s metric)
      else
        let ( let* ) = Result.bind in
        let* op = op_of_string (String.sub s i w) in
        match String.index_opt rhs '@' with
        | None ->
            let* threshold = parse_threshold rhs in
            Ok { metric; op; threshold; window_s = None }
        | Some j ->
            let* threshold = parse_threshold (String.sub rhs 0 j) in
            let* window =
              parse_window (String.sub rhs (j + 1) (String.length rhs - j - 1))
            in
            Ok { metric; op; threshold; window_s = Some window })

let of_string s =
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  if parts = [] then Error "empty alert spec"
  else
    List.fold_left
      (fun acc p ->
        match (acc, parse_rule p) with
        | Error _, _ -> acc
        | _, (Error _ as e) -> e
        | Ok rs, Ok r -> Ok (r :: rs))
      (Ok []) parts
    |> Result.map List.rev

let rule_to_json r =
  Json.Obj
    [
      ("metric", Json.String r.metric);
      ("op", Json.String (op_to_string r.op));
      ("threshold", Json.Float r.threshold);
      ( "window_s",
        match r.window_s with None -> Json.Null | Some w -> Json.Float w );
    ]

let to_json spec =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("rules", Json.List (List.map rule_to_json spec));
    ]

let rule_of_json j =
  let ( let* ) = Result.bind in
  let field name get =
    match Option.bind (Json.member name j) get with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "rule: missing or bad %S" name)
  in
  let* metric = field "metric" Json.get_string in
  let* op_s = field "op" Json.get_string in
  let* op = op_of_string op_s in
  let* threshold = field "threshold" Json.get_float in
  let window_s =
    match Json.member "window_s" j with
    | None | Some Json.Null -> None
    | Some v -> Json.get_float v
  in
  Ok { metric; op; threshold; window_s }

let of_json j =
  match Option.bind (Json.member "schema" j) Json.get_string with
  | Some s when s <> schema ->
      Error (Printf.sprintf "expected schema %S, got %S" schema s)
  | _ -> (
      match Option.bind (Json.member "rules" j) Json.get_list with
      | None -> Error "missing \"rules\" array"
      | Some rules ->
          List.fold_left
            (fun acc r ->
              match (acc, rule_of_json r) with
              | Error _, _ -> acc
              | _, (Error _ as e) -> e
              | Ok rs, Ok r -> Ok (r :: rs))
            (Ok []) rules
          |> Result.map List.rev)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load arg =
  if Sys.file_exists arg && not (Sys.is_directory arg) then
    let body = String.trim (read_file arg) in
    if String.length body > 0 && body.[0] = '{' then
      match Json.of_string body with
      | Error e -> Error (Printf.sprintf "%s: %s" arg e)
      | Ok j -> of_json j
    else of_string body
  else of_string arg

(* {1 Engine} *)

let alias = function
  | "degraded" -> "learn.degraded"
  | "skipped" -> "learn.skipped"
  | "retries" -> "query.retries"
  | m -> m

type rule_state = {
  rule : rule;
  mutable fired : int;
  mutable active : bool;  (** predicate held at the last evaluation *)
  mutable value : float;
  mutable first_at : float option;  (** absolute ts of the first firing *)
}

type window = {
  q : (float * int) Queue.t;  (** (ts, incr), oldest first *)
  mutable sum : int;
  horizon : float;  (** widest window over this counter, seconds *)
}

type t = {
  rules : rule_state list;
  query_budget : int option;
  time_budget_s : float option;
  totals : (string, int) Hashtbl.t;  (** counter name -> running total *)
  windows : (string, window) Hashtbl.t;
  mutable t0 : float option;  (** ts of the first observed event *)
}

(* Counters each metric reads, post-aliasing. *)
let counters_of_metric m =
  match m with
  | "retry_rate" -> [ "query.retries"; "queries" ]
  | "budget_burn" -> [ "queries" ]
  | m -> [ alias m ]

let create ?query_budget ?time_budget_s spec =
  let windows = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match r.window_s with
      | None -> ()
      | Some w ->
          List.iter
            (fun c ->
              match Hashtbl.find_opt windows c with
              | Some win when win.horizon >= w -> ()
              | Some win ->
                  Hashtbl.replace windows c { win with horizon = w }
              | None ->
                  Hashtbl.add windows c
                    { q = Queue.create (); sum = 0; horizon = w })
            (counters_of_metric r.metric))
    spec;
  {
    rules =
      List.map
        (fun rule ->
          { rule; fired = 0; active = false; value = 0.; first_at = None })
        spec;
    query_budget;
    time_budget_s;
    totals = Hashtbl.create 16;
    windows;
    t0 = None;
  }

let total t name =
  match Hashtbl.find_opt t.totals name with Some n -> n | None -> 0

let prune win cutoff =
  let rec go () =
    match Queue.peek_opt win.q with
    | Some (t', incr') when t' <= cutoff ->
        ignore (Queue.pop win.q);
        win.sum <- win.sum - incr';
        go ()
    | _ -> ()
  in
  go ()

(* Sum of increments within (ts - w, ts]. Rules read the window on
   every event, so the widest-horizon case must not walk the queue:
   pruning keeps [win.sum] exact for [w = horizon] at amortized O(1).
   Only a rule narrower than the widest window over the same counter
   pays for a fold. *)
let window_sum t name w ts =
  match Hashtbl.find_opt t.windows name with
  | None -> 0
  | Some win ->
      if w >= win.horizon then begin
        prune win (ts -. win.horizon);
        win.sum
      end
      else
        Queue.fold
          (fun acc (t', incr) -> if t' > ts -. w then acc + incr else acc)
          0 win.q

let ingest_count t name ts incr total_now =
  Hashtbl.replace t.totals name total_now;
  match Hashtbl.find_opt t.windows name with
  | None -> ()
  | Some win ->
      Queue.push (ts, incr) win.q;
      win.sum <- win.sum + incr;
      prune win (ts -. win.horizon)

let value_of_rule t rule ts =
  let elapsed = match t.t0 with Some t0 -> ts -. t0 | None -> 0. in
  match rule.metric with
  | "retry_rate" -> (
      match rule.window_s with
      | Some w ->
          let retries = window_sum t "query.retries" w ts in
          let queries = window_sum t "queries" w ts in
          Some (float_of_int retries /. float_of_int (max 1 queries))
      | None ->
          Some
            (float_of_int (total t "query.retries")
            /. float_of_int (max 1 (total t "queries"))))
  | "budget_burn" -> (
      match (t.query_budget, t.time_budget_s) with
      | Some qb, Some tb when qb > 0 && tb > 0. && elapsed >= 0.01 *. tb ->
          let burned = float_of_int (total t "queries") /. float_of_int qb in
          Some (burned /. (elapsed /. tb))
      | _ -> None (* budgets unknown or too early: inert *))
  | m -> (
      let c = alias m in
      match rule.window_s with
      | Some w -> Some (float_of_int (window_sum t c w ts) /. w)
      | None -> Some (float_of_int (total t c)))

let holds op threshold v =
  match op with
  | Gt -> v > threshold
  | Ge -> v >= threshold
  | Lt -> v < threshold
  | Le -> v <= threshold

let evaluate t ts =
  List.iter
    (fun rs ->
      match value_of_rule t rs.rule ts with
      | None -> ()
      | Some v ->
          rs.value <- v;
          let hit = holds rs.rule.op rs.rule.threshold v in
          if hit && not rs.active then begin
            rs.fired <- rs.fired + 1;
            if rs.first_at = None then rs.first_at <- Some ts;
            Log.warn ~key:("alert:" ^ rule_to_string rs.rule)
              ~fields:
                [
                  Log.str "rule" (rule_to_string rs.rule);
                  Log.float "value" v;
                  Log.float "threshold" rs.rule.threshold;
                ]
              "alert fired"
          end;
          rs.active <- hit)
    t.rules

let observe t ev =
  let ts =
    match ev with
    | Instr.Span_begin { ts; _ }
    | Instr.Span_end { ts; _ }
    | Instr.Count { ts; _ }
    | Instr.Gauge { ts; _ } ->
        ts
  in
  if t.t0 = None then t.t0 <- Some ts;
  (match ev with
  | Instr.Count { name; ts; incr; total; _ } -> ingest_count t name ts incr total
  | _ -> ());
  evaluate t ts

let sink t =
  Instr.{ emit = (fun ev -> try observe t ev with _ -> ()); flush = ignore }

type firing = {
  rule : rule;
  fired : int;
  value : float;
  first_at_s : float option;
}

let firings t =
  let t0 = match t.t0 with Some t0 -> t0 | None -> 0. in
  List.map
    (fun (rs : rule_state) ->
      {
        rule = rs.rule;
        fired = rs.fired;
        value = rs.value;
        first_at_s = Option.map (fun at -> at -. t0) rs.first_at;
      })
    t.rules

let total_fired t =
  List.fold_left (fun acc (rs : rule_state) -> acc + rs.fired) 0 t.rules

let report_json t =
  Json.Obj
    [
      ( "spec",
        Json.String
          (to_string (List.map (fun (rs : rule_state) -> rs.rule) t.rules)) );
      ("fired", Json.Int (total_fired t));
      ( "rules",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("rule", Json.String (rule_to_string f.rule));
                   ("fired", Json.Int f.fired);
                   ("value", Json.Float f.value);
                   ( "first_at_s",
                     match f.first_at_s with
                     | None -> Json.Null
                     | Some s -> Json.Float s );
                 ])
             (firings t)) );
    ]
