(** Dependency-free blocking HTTP/1.1 foundation.

    The substrate shared by the observability endpoint ({!Server}) and
    the learning-service daemon ([Lr_serve]): a parsed request type, the
    response/chunk writers, a bounded line ring for tail+live streaming,
    and a single-domain [Unix.select] accept loop with a stop pipe.

    Deliberately boring: one domain, blocking sockets with short
    timeouts, no keep-alive, no TLS — sized for a handful of local
    scrapers and clients, not the open internet. Handlers run on the
    loop's domain; anything they read that other domains write must be
    locked by the caller. *)

(** {1 Requests} *)

type request = {
  meth : string;  (** verb as sent, e.g. ["GET"], ["POST"] *)
  path : string;  (** target path without the query string *)
  params : (string * string) list;  (** decoded [k=v] query pairs *)
  body : string;  (** up to [Content-Length] bytes; [""] when absent *)
}

val read_request : ?max_body:int -> Unix.file_descr -> request option
(** Read one request — head (8 KiB cap) plus, when a [Content-Length]
    header is present, the body (capped at [max_body], default 1 MiB).
    [None] on malformed input, timeout, overflow or early close. *)

(** {1 Responses} *)

val send : Unix.file_descr -> string -> unit
(** Write the whole string, retrying on [EINTR]. Raises on socket
    errors — callers wrap a connection's worth of sends in one try. *)

val respond :
  Unix.file_descr ->
  status:string ->
  ?headers:(string * string) list ->
  ctype:string ->
  string ->
  unit
(** One complete [Connection: close] response: status line, defaulted
    headers ([Content-Type], [Content-Length]) plus [headers], body. *)

val start_chunked : Unix.file_descr -> ctype:string -> unit
(** The header block of a 200 [Transfer-Encoding: chunked] response;
    follow with {!send_chunk} and finish with {!send_last_chunk}. *)

val send_chunk : Unix.file_descr -> string -> unit
(** One chunk; empty strings are skipped (an empty chunk would
    terminate the stream). *)

val send_last_chunk : Unix.file_descr -> unit
val close_quiet : Unix.file_descr -> unit

(** {1 Line rings}

    Bounded FIFO of retained lines with absolute sequence numbers, so a
    streaming client can resume from "everything after seq N" even when
    the ring has dropped its oldest lines in between. Not synchronised —
    guard with the owner's lock. *)

type ring

val ring_create : int -> ring
(** Capacity is clamped to at least 1. *)

val ring_push : ring -> string -> unit
val ring_since : ring -> int -> string list
(** Retained lines with sequence number [>= since], oldest first. *)

val ring_next_seq : ring -> int
(** The sequence number the next pushed line will get. *)

(** {1 The accept loop} *)

type t

val start :
  ?addr:string ->
  port:int ->
  handle:(Unix.file_descr -> request -> unit) ->
  ?tick:(unit -> unit) ->
  ?on_stop:(unit -> unit) ->
  unit ->
  (t, string) result
(** Bind [addr] (default [127.0.0.1]) on [port] ([0] = ephemeral, see
    {!port}) and spawn one server domain running the accept loop. Each
    accepted connection gets a 2 s receive timeout and one parsed
    request; [handle fd req] then owns [fd] — it must either close it
    or retain it for streaming (pushing further data from [tick], which
    runs every loop iteration, ~20 Hz). Unparseable requests are closed
    without a response. [on_stop] runs in the server domain after the
    loop exits, before {!stop} returns — close retained streams there.
    SIGPIPE is ignored process-wide on first start. *)

val port : t -> int
val stop : t -> unit
(** Wake the loop, run [on_stop], close the listener, join the domain.
    Idempotent. *)
