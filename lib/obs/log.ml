module Instr = Lr_instr.Instr
module Json = Lr_instr.Json

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" -> Ok Warn
  | "error" -> Ok Error
  | s -> Error (Printf.sprintf "unknown log level %S (debug|info|warn|error)" s)

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let of_severity = function 0 -> Debug | 1 -> Info | 2 -> Warn | _ -> Error

type record = {
  ts : float;
  level : level;
  msg : string;
  span : string;
  fields : (string * Json.t) list;
}

type sink = { emit : record -> unit; flush : unit -> unit }

let schema = "lr-log/v1"

(* Threshold is read from worker domains (any domain may log); an atomic
   int keeps that read well-defined without a lock on the hot path. *)
let threshold = Atomic.make (severity Info)
let set_level l = Atomic.set threshold (severity l)
let get_level () = of_severity (Atomic.get threshold)

(* [state_mu] guards the sink list and rate-limit buckets; emission runs
   under it so concurrent records from worker domains serialize whole.
   [out_mu] guards raw channel writes and is deliberately separate:
   heartbeat / progress streams take only [out_mu], so they can never
   deadlock against a sink that also writes through {!locked_write}
   (lock order is always state_mu -> out_mu). *)
let state_mu = Mutex.create ()
let out_mu = Mutex.create ()
let sinks : sink list ref = ref []

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let set_sinks l = with_lock state_mu (fun () -> sinks := l)
let add_sink s = with_lock state_mu (fun () -> sinks := !sinks @ [ s ])

let flush () =
  with_lock state_mu (fun () -> List.iter (fun s -> s.flush ()) !sinks)

(* Token bucket per [?key], clocked by Instr.now so fault-injected
   backoff (synthetic skew) refills it exactly like real time. *)
type bucket = { mutable tokens : float; mutable last : float; mutable dropped : int }

let buckets : (string, bucket) Hashtbl.t = Hashtbl.create 16
let default_burst = 10
let default_per_s = 1.0
let rl_burst = ref default_burst
let rl_per_s = ref default_per_s

let set_rate_limit ~burst ~per_s =
  with_lock state_mu (fun () ->
      rl_burst := max 1 burst;
      rl_per_s := Float.max 0. per_s)

let reset () =
  with_lock state_mu (fun () ->
      sinks := [];
      Hashtbl.reset buckets;
      rl_burst := default_burst;
      rl_per_s := default_per_s);
  Atomic.set threshold (severity Info)

(* Called under [state_mu]. Returns whether the record is admitted plus
   a [suppressed] field carrying the drop count when the key re-opens. *)
let admit key ts =
  let b =
    match Hashtbl.find_opt buckets key with
    | Some b -> b
    | None ->
        let b = { tokens = float_of_int !rl_burst; last = ts; dropped = 0 } in
        Hashtbl.add buckets key b;
        b
  in
  let dt = ts -. b.last in
  if dt > 0. then begin
    b.tokens <- Float.min (float_of_int !rl_burst) (b.tokens +. (dt *. !rl_per_s));
    b.last <- ts
  end;
  if b.tokens >= 1. then begin
    b.tokens <- b.tokens -. 1.;
    let extra = if b.dropped > 0 then [ ("suppressed", Json.Int b.dropped) ] else [] in
    b.dropped <- 0;
    (true, extra)
  end
  else begin
    b.dropped <- b.dropped + 1;
    (false, [])
  end

let log level ?(fields = []) ?key msg =
  if severity level >= Atomic.get threshold && !sinks <> [] then begin
    let ts = Instr.now () in
    let span = Instr.current_span_path () in
    with_lock state_mu (fun () ->
        let ok, extra = match key with None -> (true, []) | Some k -> admit k ts in
        if ok then begin
          let r = { ts; level; msg; span; fields = fields @ extra } in
          List.iter (fun s -> s.emit r) !sinks
        end)
  end

let debug ?fields ?key msg = log Debug ?fields ?key msg
let info ?fields ?key msg = log Info ?fields ?key msg
let warn ?fields ?key msg = log Warn ?fields ?key msg
let error ?fields ?key msg = log Error ?fields ?key msg

let record_to_json r =
  Json.Obj
    ([
       ("schema", Json.String schema);
       ("ts", Json.Float r.ts);
       ("level", Json.String (level_to_string r.level));
       ("span", Json.String r.span);
       ("msg", Json.String r.msg);
     ]
    @ if r.fields = [] then [] else [ ("fields", Json.Obj r.fields) ])

let render_human ~t0 r =
  let b = Buffer.create 96 in
  Printf.bprintf b "[%8.3f] %-5s " (r.ts -. t0) (level_to_string r.level);
  if r.span <> "" then begin
    Buffer.add_string b r.span;
    Buffer.add_string b ": "
  end;
  Buffer.add_string b r.msg;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ' ';
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b
        (match v with Json.String s -> s | v -> Json.to_string v))
    r.fields;
  Buffer.add_char b '\n';
  Buffer.contents b

let locked_write oc s =
  with_lock out_mu (fun () ->
      output_string oc s;
      Stdlib.flush oc)

let stderr_sink () =
  let t0 = ref Float.nan in
  {
    emit =
      (fun r ->
        if Float.is_nan !t0 then t0 := r.ts;
        locked_write stderr (render_human ~t0:!t0 r));
    flush = ignore;
  }

let ndjson out =
  {
    emit = (fun r -> out (Json.to_string (record_to_json r) ^ "\n"));
    flush = ignore;
  }

let ndjson_file path =
  let oc = open_out path in
  let closed = ref false in
  {
    emit =
      (fun r ->
        if not !closed then begin
          output_string oc (Json.to_string (record_to_json r));
          output_char oc '\n'
        end);
    flush =
      (fun () ->
        if not !closed then begin
          closed := true;
          close_out oc
        end);
  }

let str k v = (k, Json.String v)
let int k v = (k, Json.Int v)
let float k v = (k, Json.Float v)
let bool k v = (k, Json.Bool v)
