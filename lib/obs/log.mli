(** Structured, leveled, span-aware logging.

    The run-time counterpart of {!Lr_instr.Instr}: where Instr records
    {e what the program did} (spans, counters) for later analysis, [Log]
    records {e what the operator should read} — leveled, key–value
    messages that join back against traces through the innermost span
    path stamped on every record.

    Design points, in the spirit of the rest of the stack:

    - {b Zero cost when silent.} With no sinks installed (the library
      default) every entry point returns after one branch; libraries can
      log unconditionally and pay nothing until a CLI opts in.
    - {b Atomic lines.} Sinks are invoked under a global mutex, and
      {!locked_write} serializes raw channel writes — so heartbeat
      lines, progress NDJSON and log records never interleave mid-line
      even when worker domains log concurrently.
    - {b Rate limiting.} Hot paths (per-query retry chatter) pass a
      [?key]; each key gets a token bucket on the injected clock
      ({!Lr_instr.Instr.now}), and when a key re-opens the first record
      carries a [suppressed] field with the number of dropped records.
    - {b Machine-readable.} The NDJSON sink emits one [lr-log/v1]
      object per line, mirroring [lr-progress/v1]. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_string : string -> (level, string) result

type record = {
  ts : float;  (** {!Lr_instr.Instr.now} at emission (includes skew). *)
  level : level;
  msg : string;
  span : string;  (** Innermost open span path; [""] at top level. *)
  fields : (string * Lr_instr.Json.t) list;
}

type sink = { emit : record -> unit; flush : unit -> unit }

val schema : string
(** ["lr-log/v1"]. *)

(** {1 Configuration} *)

val set_level : level -> unit
(** Threshold; records below it are dropped before any allocation.
    Default [Info] (moot until a sink is installed). *)

val get_level : unit -> level
val set_sinks : sink list -> unit
val add_sink : sink -> unit
val flush : unit -> unit

val set_rate_limit : burst:int -> per_s:float -> unit
(** Token bucket applied to keyed records: each distinct [?key] may emit
    [burst] records back-to-back, refilling at [per_s] records/second.
    Default [burst:10], [per_s:1.0]. *)

val reset : unit -> unit
(** Drop sinks, rate-limit state and restore defaults (tests). *)

(** {1 Emission} *)

val debug : ?fields:(string * Lr_instr.Json.t) list -> ?key:string -> string -> unit
val info : ?fields:(string * Lr_instr.Json.t) list -> ?key:string -> string -> unit
val warn : ?fields:(string * Lr_instr.Json.t) list -> ?key:string -> string -> unit
val error : ?fields:(string * Lr_instr.Json.t) list -> ?key:string -> string -> unit

(** {1 Field helpers} *)

val str : string -> string -> string * Lr_instr.Json.t
val int : string -> int -> string * Lr_instr.Json.t
val float : string -> float -> string * Lr_instr.Json.t
val bool : string -> bool -> string * Lr_instr.Json.t

(** {1 Sinks} *)

val record_to_json : record -> Lr_instr.Json.t
(** The [lr-log/v1] object: [schema], [ts], [level], [span], [msg],
    and [fields] (object, present only when non-empty). *)

val render_human : t0:float -> record -> string
(** One line: ["[ 12.345] warn  span/path: msg k=v ..."], timestamp
    relative to [t0], newline-terminated. *)

val stderr_sink : unit -> sink
(** Human format to stderr through {!locked_write}; timestamps relative
    to the first record the sink sees. *)

val ndjson : (string -> unit) -> sink
(** One [lr-log/v1] line per record through the given consumer (the
    line includes the trailing newline). *)

val ndjson_file : string -> sink
(** File-backed {!ndjson}; created immediately, closed on [flush],
    later records ignored. *)

(** {1 Atomic channel writes} *)

val locked_write : out_channel -> string -> unit
(** Write + flush under the process-wide output mutex shared with
    {!stderr_sink}. Route any stderr/stdout stream that may run beside
    worker-domain logging (heartbeat, [--progress -]) through this so
    concurrent lines never interleave. *)
