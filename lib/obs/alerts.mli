(** Declarative alert rules over the live telemetry stream.

    A rule is a threshold predicate over counters (or quantities derived
    from them) with an optional sliding window, written in a compact
    string form à la the fault-schedule spec:

    {v degraded>0,retry_rate>0.05@10s,budget_burn>2x v}

    The engine is an {!Lr_instr.Instr} sink: it watches [Count] events,
    maintains totals and windowed deques on the injected clock, and
    {e fires} a rule on every false→true transition of its predicate —
    emitting a {!Log.warn} record and accumulating a summary for the run
    report's [alerts] section ([lr-alerts/v1] is the JSON spec form).

    Metrics:
    - any counter name recorded through {!Lr_instr.Instr.count}
      (e.g. [queries], [query.retries], [learn.degraded]), with the
      short aliases [degraded], [skipped], [retries];
    - [retry_rate] — [query.retries / queries], over the window when one
      is given, else over the whole run;
    - [budget_burn] — [(queries consumed / query budget)] divided by
      [(elapsed / time budget)]: [> 1] means the run is on pace to
      exhaust its query budget before its deadline. Inert unless both
      budgets are known; evaluated only after 1% of the time budget has
      elapsed so startup noise cannot fire it.

    A plain counter with a window compares the {e rate} (increments per
    second over the window); without a window it compares the running
    total. *)

type op = Gt | Ge | Lt | Le

type rule = {
  metric : string;
  op : op;
  threshold : float;
  window_s : float option;
}

type spec = rule list

val schema : string
(** ["lr-alerts/v1"]. *)

(** {1 Spec parsing} *)

val rule_to_string : rule -> string
(** Canonical compact form, e.g. ["retry_rate>0.05@10s"]. *)

val of_string : string -> (spec, string) result
(** Comma-separated rules; whitespace tolerated. Thresholds accept a
    trailing [x] (multiplier, for [budget_burn>2x]) or [%] (divided by
    100); windows a trailing [s]. *)

val to_string : spec -> string
(** Canonical compact form; [of_string (to_string s) = Ok s]. *)

val to_json : spec -> Lr_instr.Json.t
val of_json : Lr_instr.Json.t -> (spec, string) result

val load : string -> (spec, string) result
(** [load arg] — if [arg] names an existing file, parse its contents
    (JSON by first character [{], else compact form); otherwise parse
    [arg] itself as the compact form. *)

(** {1 Engine} *)

type t

val create : ?query_budget:int -> ?time_budget_s:float -> spec -> t
(** Budgets feed [budget_burn]; omit them and such rules stay inert. *)

val sink : t -> Lr_instr.Instr.sink
(** Attach to {!Lr_instr.Instr.set_sinks} (main domain — worker events
    arrive through absorption like every other sink). Never raises. *)

val observe : t -> Lr_instr.Instr.event -> unit
(** Feed one event directly (what {!sink} does per event). *)

type firing = {
  rule : rule;
  fired : int;  (** false→true transitions so far *)
  value : float;  (** value at the most recent evaluation *)
  first_at_s : float option;  (** seconds after the first event *)
}

val firings : t -> firing list
(** One entry per rule, in spec order, including never-fired rules. *)

val total_fired : t -> int

val report_json : t -> Lr_instr.Json.t
(** The run report's [alerts] section: [spec] (compact form), [fired]
    (total transitions) and a [rules] array mirroring {!firings}. *)
