(** Live exposition server: a dependency-free HTTP/1.1 endpoint serving
    the run's telemetry while it executes.

    Architecture: the learner never blocks on the network. All pipeline
    telemetry flows into a mutex-protected {!state} snapshot through
    ordinary main-domain sinks ({!observer}, {!metrics_sink},
    {!progress_out}, {!log_sink}); one dedicated domain runs a blocking
    [Unix.select] loop over the listening socket, a stop pipe and any
    streaming [/progress] connections, reading only that snapshot. No
    third-party dependency, no non-blocking I/O tricks — a deliberately
    boring server sized for a handful of scrapers, the substrate the
    future [lr_serve] daemon mounts.

    Endpoints:
    - [GET /metrics] — the latest Prometheus text pushed by
      {!metrics_sink} ([text/plain; version=0.0.4]);
    - [GET /progress] — the [lr-progress/v1] NDJSON stream, chunked: the
      retained tail first, then live lines until the run is
      {!mark_done};
    - [GET /healthz] — one JSON object: status, phase, elapsed, queries
      and budget remaining, outputs done/total, degraded, retries;
    - [GET /logs?level=LEVEL] — retained log records at or above
      [LEVEL] (default [debug]) as [lr-log/v1] NDJSON.

    Everything else is 404; non-GET is 405. *)

type state
(** Shared snapshot: metrics text, progress ring, log ring, health
    counters. Feed it from the main domain via the sinks below; the
    server domain only ever reads it. *)

val create_state :
  ?progress_cap:int ->
  ?log_cap:int ->
  ?query_budget:int ->
  ?time_budget_s:float ->
  unit ->
  state
(** Ring capacities default to 4096 progress lines and 1024 log
    records; budgets feed [/healthz]'s remaining fields. *)

(** {1 Feeding the snapshot} *)

val observer : state -> Lr_instr.Instr.sink
(** Health bookkeeping from the raw event stream: phase from top-level
    span begins, outputs done from [po:*] span ends, degraded / retries
    / queries from counter totals, outputs total from the
    [learn.outputs] gauge. Attach with {!Lr_instr.Instr.add_sink}. *)

val metrics_sink : ?interval_s:float -> render:(unit -> string) -> state -> Lr_instr.Instr.sink
(** Pushes [render ()] into the snapshot at most every [interval_s]
    (default 0.25 s, event-timestamp clocked) and once on flush. The
    render runs on the main domain, where the Instr aggregates live. *)

val progress_out : state -> string -> unit
(** Feed one NDJSON line (["...\n"]); pass as the [~out] of
    {!Lr_prof.Progress.sink}. Accepts multi-line writes and splits
    them. *)

val log_sink : state -> Log.sink
(** Retains [lr-log/v1] lines for [/logs]. *)

val mark_done : state -> unit
(** The run is over: [/healthz] reports [done] and streaming
    [/progress] connections are completed and closed. *)

(** {1 Serving} *)

type t

val start : ?addr:string -> port:int -> state -> (t, string) result
(** Bind [addr] (default [127.0.0.1]) on [port] ([0] = ephemeral, see
    {!port}), spawn the server domain. [Error] on bind failure (port in
    use, bad addr). SIGPIPE is ignored process-wide on first start. *)

val port : t -> int
(** The bound port (useful after [port:0]). *)

val stop : t -> unit
(** Wake the loop, close every socket, join the domain. Idempotent. *)
