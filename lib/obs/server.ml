module Instr = Lr_instr.Instr
module Json = Lr_instr.Json

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* Bounded line ring with absolute sequence numbers, so a streaming
   client can resume from "everything after seq N" even when the ring
   has dropped its oldest lines in between. *)
type ring = {
  items : string Queue.t;  (** oldest first; seqs [base_seq, next_seq) *)
  cap : int;
  mutable base_seq : int;
  mutable next_seq : int;
}

let ring_create cap = { items = Queue.create (); cap; base_seq = 0; next_seq = 0 }

let ring_push r line =
  Queue.push line r.items;
  r.next_seq <- r.next_seq + 1;
  if Queue.length r.items > r.cap then begin
    ignore (Queue.pop r.items);
    r.base_seq <- r.base_seq + 1
  end

let ring_since r since =
  let lines = ref [] in
  let seq = ref r.base_seq in
  Queue.iter
    (fun line ->
      if !seq >= since then lines := line :: !lines;
      incr seq)
    r.items;
  List.rev !lines

type health = {
  mutable phase : string;
  mutable outputs_total : int option;
  mutable outputs_done : int;
  mutable degraded : int;
  mutable skipped : int;
  mutable retries : int;
  mutable queries : int;
  mutable first_ts : float option;
  mutable last_ts : float;
}

type state = {
  mu : Mutex.t;
  mutable metrics_text : string;
  progress : ring;
  logs : (int * string) Queue.t;  (** (severity, lr-log/v1 line) *)
  log_cap : int;
  health : health;
  query_budget : int option;
  time_budget_s : float option;
  mutable done_ : bool;
}

let create_state ?(progress_cap = 4096) ?(log_cap = 1024) ?query_budget
    ?time_budget_s () =
  {
    mu = Mutex.create ();
    metrics_text = "";
    progress = ring_create (max 1 progress_cap);
    logs = Queue.create ();
    log_cap = max 1 log_cap;
    health =
      {
        phase = "";
        outputs_total = None;
        outputs_done = 0;
        degraded = 0;
        skipped = 0;
        retries = 0;
        queries = 0;
        first_ts = None;
        last_ts = 0.;
      };
    query_budget;
    time_budget_s;
    done_ = false;
  }

let ts_of = function
  | Instr.Span_begin { ts; _ }
  | Instr.Span_end { ts; _ }
  | Instr.Count { ts; _ }
  | Instr.Gauge { ts; _ } ->
      ts

let is_po name = String.length name > 3 && String.sub name 0 3 = "po:"

let observer state =
  let h = state.health in
  let update ev =
    with_lock state.mu (fun () ->
        let ts = ts_of ev in
        if h.first_ts = None then h.first_ts <- Some ts;
        h.last_ts <- ts;
        match ev with
        | Instr.Span_begin { name; depth; _ }
          when depth <= 1 && not (is_po name) ->
            h.phase <- name
        | Instr.Span_end { name; _ } when is_po name ->
            h.outputs_done <- h.outputs_done + 1
        | Instr.Count { name = "queries"; total; _ } -> h.queries <- total
        | Instr.Count { name = "query.retries"; total; _ } ->
            h.retries <- total
        | Instr.Count { name = "learn.degraded"; total; _ } ->
            h.degraded <- total
        | Instr.Count { name = "learn.skipped"; total; _ } ->
            h.skipped <- total
        | Instr.Gauge { name = "learn.outputs"; value; _ } ->
            h.outputs_total <- Some (int_of_float value)
        | _ -> ())
  in
  Instr.{ emit = update; flush = ignore }

let metrics_sink ?(interval_s = 0.25) ~render state =
  let last = ref Float.neg_infinity in
  let push () =
    let text = render () in
    with_lock state.mu (fun () -> state.metrics_text <- text)
  in
  Instr.
    {
      emit =
        (fun ev ->
          let ts = ts_of ev in
          if ts -. !last >= interval_s then begin
            last := ts;
            push ()
          end);
      flush = push;
    }

let progress_out state chunk =
  let lines = String.split_on_char '\n' chunk in
  with_lock state.mu (fun () ->
      List.iter
        (fun line ->
          if line <> "" then ring_push state.progress (line ^ "\n"))
        lines)

let log_sink state =
  Log.
    {
      emit =
        (fun r ->
          let line = Json.to_string (Log.record_to_json r) ^ "\n" in
          let sev =
            match r.level with
            | Log.Debug -> 0
            | Log.Info -> 1
            | Log.Warn -> 2
            | Log.Error -> 3
          in
          with_lock state.mu (fun () ->
              Queue.push (sev, line) state.logs;
              if Queue.length state.logs > state.log_cap then
                ignore (Queue.pop state.logs)));
      flush = ignore;
    }

let mark_done state = with_lock state.mu (fun () -> state.done_ <- true)

(* {1 Snapshot reads (any domain)} *)

let metrics_text state =
  with_lock state.mu (fun () ->
      if state.metrics_text = "" then "# metrics snapshot pending\n"
      else state.metrics_text)

let progress_since state since =
  with_lock state.mu (fun () ->
      (ring_since state.progress since, state.progress.next_seq, state.done_))

let logs_at_least state min_sev =
  with_lock state.mu (fun () ->
      Queue.fold
        (fun acc (sev, line) -> if sev >= min_sev then line :: acc else acc)
        [] state.logs
      |> List.rev)

let healthz_json state =
  with_lock state.mu (fun () ->
      let h = state.health in
      let elapsed =
        match h.first_ts with Some t0 -> h.last_ts -. t0 | None -> 0.
      in
      let opt_int = function None -> Json.Null | Some n -> Json.Int n in
      Json.Obj
        [
          ("status", Json.String (if state.done_ then "done" else "running"));
          ("phase", Json.String h.phase);
          ("elapsed_s", Json.Float elapsed);
          ("queries", Json.Int h.queries);
          ("query_budget", opt_int state.query_budget);
          ( "queries_remaining",
            match state.query_budget with
            | None -> Json.Null
            | Some b -> Json.Int (max 0 (b - h.queries)) );
          ( "time_budget_s",
            match state.time_budget_s with
            | None -> Json.Null
            | Some b -> Json.Float b );
          ( "time_remaining_s",
            match state.time_budget_s with
            | None -> Json.Null
            | Some b -> Json.Float (Float.max 0. (b -. elapsed)) );
          ("outputs_total", opt_int h.outputs_total);
          ("outputs_done", Json.Int h.outputs_done);
          ("degraded", Json.Int h.degraded);
          ("skipped", Json.Int h.skipped);
          ("retries", Json.Int h.retries);
        ])

(* {1 HTTP plumbing} *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (off + n) (len - n)
  end

let send fd s = write_all fd s 0 (String.length s)

let respond fd ~status ~ctype body =
  send fd
    (Printf.sprintf
       "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
        close\r\n\r\n"
       status ctype (String.length body));
  send fd body

let send_chunk fd s =
  if s <> "" then send fd (Printf.sprintf "%x\r\n%s\r\n" (String.length s) s)

let send_last_chunk fd = send fd "0\r\n\r\n"

(* Read the request head (up to the blank line); 8 KiB cap, 2 s socket
   timeout. Returns (method, path-with-query). *)
let read_request fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec loop () =
    if Buffer.length buf > 8192 then None
    else
      let n = try Unix.read fd chunk 0 (Bytes.length chunk) with _ -> 0 in
      if n = 0 then None
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        match
          let i = ref (-1) in
          (try
             for j = 0 to String.length s - 4 do
               if !i < 0 && String.sub s j 4 = "\r\n\r\n" then i := j
             done
           with _ -> ());
          !i
        with
        | -1 -> loop ()
        | _ -> Some s
      end
  in
  match loop () with
  | None -> None
  | Some head -> (
      match String.index_opt head '\r' with
      | None -> None
      | Some eol -> (
          let line = String.sub head 0 eol in
          match String.split_on_char ' ' line with
          | meth :: target :: _ -> Some (meth, target)
          | _ -> None))

let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
      let path = String.sub target 0 i in
      let query = String.sub target (i + 1) (String.length target - i - 1) in
      let params =
        String.split_on_char '&' query
        |> List.filter_map (fun kv ->
               match String.index_opt kv '=' with
               | None -> if kv = "" then None else Some (kv, "")
               | Some j ->
                   Some
                     ( String.sub kv 0 j,
                       String.sub kv (j + 1) (String.length kv - j - 1) ))
      in
      (path, params)

(* {1 The serving loop} *)

type conn = { fd : Unix.file_descr; mutable next_seq : int }

type t = {
  listen_fd : Unix.file_descr;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  bound_port : int;
  dom : unit Domain.t;
  stop_mu : Mutex.t;
  mutable stopped : bool;
}

let close_quiet fd = try Unix.close fd with _ -> ()

(* Handle one request; returns [Some conn] when the connection stays
   open as a /progress stream. *)
let handle state fd =
  match read_request fd with
  | None ->
      close_quiet fd;
      None
  | Some (meth, target) -> (
      let path, params = split_target target in
      let finish () =
        close_quiet fd;
        None
      in
      try
        if meth <> "GET" then begin
          respond fd ~status:"405 Method Not Allowed" ~ctype:"text/plain"
            "only GET is supported\n";
          finish ()
        end
        else
          match path with
          | "/metrics" ->
              respond fd ~status:"200 OK"
                ~ctype:"text/plain; version=0.0.4; charset=utf-8"
                (metrics_text state);
              finish ()
          | "/healthz" ->
              respond fd ~status:"200 OK" ~ctype:"application/json"
                (Json.to_string (healthz_json state) ^ "\n");
              finish ()
          | "/logs" -> (
              let level = try List.assoc "level" params with Not_found -> "debug" in
              match Log.level_of_string level with
              | Error e ->
                  respond fd ~status:"400 Bad Request" ~ctype:"text/plain"
                    (e ^ "\n");
                  finish ()
              | Ok l ->
                  let sev =
                    match l with
                    | Log.Debug -> 0
                    | Log.Info -> 1
                    | Log.Warn -> 2
                    | Log.Error -> 3
                  in
                  respond fd ~status:"200 OK" ~ctype:"application/x-ndjson"
                    (String.concat "" (logs_at_least state sev));
                  finish ())
          | "/progress" ->
              send fd
                "HTTP/1.1 200 OK\r\nContent-Type: \
                 application/x-ndjson\r\nTransfer-Encoding: \
                 chunked\r\nConnection: close\r\n\r\n";
              let lines, next, done_ = progress_since state 0 in
              send_chunk fd (String.concat "" lines);
              if done_ then begin
                send_last_chunk fd;
                finish ()
              end
              else Some { fd; next_seq = next }
          | _ ->
              respond fd ~status:"404 Not Found" ~ctype:"text/plain"
                "unknown endpoint (try /metrics /progress /healthz /logs)\n";
              finish ()
      with _ -> finish ())

(* Push new progress lines to the streaming connections; drop the dead
   ones and complete everything once the run is marked done. *)
let pump state streams =
  List.filter
    (fun c ->
      let lines, next, done_ = progress_since state c.next_seq in
      try
        if lines <> [] then send_chunk c.fd (String.concat "" lines);
        c.next_seq <- next;
        if done_ then begin
          send_last_chunk c.fd;
          close_quiet c.fd;
          false
        end
        else true
      with _ ->
        close_quiet c.fd;
        false)
    streams

let serve listen_fd stop_r state =
  let streams = ref [] in
  let running = ref true in
  while !running do
    let rs, _, _ =
      try Unix.select [ listen_fd; stop_r ] [] [] 0.05
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem stop_r rs then running := false
    else begin
      if List.mem listen_fd rs then begin
        match (try Some (Unix.accept ~cloexec:true listen_fd) with _ -> None)
        with
        | None -> ()
        | Some (fd, _) -> (
            (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0 with _ -> ());
            match handle state fd with
            | None -> ()
            | Some conn -> streams := conn :: !streams)
      end;
      streams := pump state !streams
    end
  done;
  List.iter (fun c -> close_quiet c.fd) !streams

let sigpipe_ignored = ref false

let start ?(addr = "127.0.0.1") ~port state =
  if not !sigpipe_ignored then begin
    sigpipe_ignored := true;
    try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
    with Invalid_argument _ -> ()
  end;
  match Unix.inet_addr_of_string addr with
  | exception Failure _ -> Error (Printf.sprintf "bad listen address %S" addr)
  | inet -> (
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (inet, port));
        Unix.listen fd 16;
        let bound_port =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> port
        in
        let stop_r, stop_w = Unix.pipe ~cloexec:true () in
        let dom = Domain.spawn (fun () -> serve fd stop_r state) in
        Ok
          {
            listen_fd = fd;
            stop_r;
            stop_w;
            bound_port;
            dom;
            stop_mu = Mutex.create ();
            stopped = false;
          }
      with Unix.Unix_error (e, fn, _) ->
        close_quiet fd;
        Error (Printf.sprintf "%s: %s" fn (Unix.error_message e)))

let port t = t.bound_port

let stop t =
  let first =
    with_lock t.stop_mu (fun () ->
        if t.stopped then false
        else begin
          t.stopped <- true;
          true
        end)
  in
  if first then begin
    (try ignore (Unix.write_substring t.stop_w "x" 0 1) with _ -> ());
    Domain.join t.dom;
    List.iter close_quiet [ t.listen_fd; t.stop_r; t.stop_w ]
  end
