module Instr = Lr_instr.Instr
module Json = Lr_instr.Json

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

type health = {
  mutable phase : string;
  mutable outputs_total : int option;
  mutable outputs_done : int;
  mutable degraded : int;
  mutable skipped : int;
  mutable retries : int;
  mutable queries : int;
  mutable first_ts : float option;
  mutable last_ts : float;
}

type state = {
  mu : Mutex.t;
  mutable metrics_text : string;
  progress : Http.ring;
  logs : (int * string) Queue.t;  (** (severity, lr-log/v1 line) *)
  log_cap : int;
  health : health;
  query_budget : int option;
  time_budget_s : float option;
  mutable done_ : bool;
}

let create_state ?(progress_cap = 4096) ?(log_cap = 1024) ?query_budget
    ?time_budget_s () =
  {
    mu = Mutex.create ();
    metrics_text = "";
    progress = Http.ring_create progress_cap;
    logs = Queue.create ();
    log_cap = max 1 log_cap;
    health =
      {
        phase = "";
        outputs_total = None;
        outputs_done = 0;
        degraded = 0;
        skipped = 0;
        retries = 0;
        queries = 0;
        first_ts = None;
        last_ts = 0.;
      };
    query_budget;
    time_budget_s;
    done_ = false;
  }

let ts_of = function
  | Instr.Span_begin { ts; _ }
  | Instr.Span_end { ts; _ }
  | Instr.Count { ts; _ }
  | Instr.Gauge { ts; _ } ->
      ts

let is_po name = String.length name > 3 && String.sub name 0 3 = "po:"

let observer state =
  let h = state.health in
  let update ev =
    with_lock state.mu (fun () ->
        let ts = ts_of ev in
        if h.first_ts = None then h.first_ts <- Some ts;
        h.last_ts <- ts;
        match ev with
        | Instr.Span_begin { name; depth; _ }
          when depth <= 1 && not (is_po name) ->
            h.phase <- name
        | Instr.Span_end { name; _ } when is_po name ->
            h.outputs_done <- h.outputs_done + 1
        | Instr.Count { name = "queries"; total; _ } -> h.queries <- total
        | Instr.Count { name = "query.retries"; total; _ } ->
            h.retries <- total
        | Instr.Count { name = "learn.degraded"; total; _ } ->
            h.degraded <- total
        | Instr.Count { name = "learn.skipped"; total; _ } ->
            h.skipped <- total
        | Instr.Gauge { name = "learn.outputs"; value; _ } ->
            h.outputs_total <- Some (int_of_float value)
        | _ -> ())
  in
  Instr.{ emit = update; flush = ignore }

let metrics_sink ?(interval_s = 0.25) ~render state =
  let last = ref Float.neg_infinity in
  let push () =
    let text = render () in
    with_lock state.mu (fun () -> state.metrics_text <- text)
  in
  Instr.
    {
      emit =
        (fun ev ->
          let ts = ts_of ev in
          if ts -. !last >= interval_s then begin
            last := ts;
            push ()
          end);
      flush = push;
    }

let progress_out state chunk =
  let lines = String.split_on_char '\n' chunk in
  with_lock state.mu (fun () ->
      List.iter
        (fun line ->
          if line <> "" then Http.ring_push state.progress (line ^ "\n"))
        lines)

let log_sink state =
  Log.
    {
      emit =
        (fun r ->
          let line = Json.to_string (Log.record_to_json r) ^ "\n" in
          let sev =
            match r.level with
            | Log.Debug -> 0
            | Log.Info -> 1
            | Log.Warn -> 2
            | Log.Error -> 3
          in
          with_lock state.mu (fun () ->
              Queue.push (sev, line) state.logs;
              if Queue.length state.logs > state.log_cap then
                ignore (Queue.pop state.logs)));
      flush = ignore;
    }

let mark_done state = with_lock state.mu (fun () -> state.done_ <- true)

(* {1 Snapshot reads (any domain)} *)

let metrics_text state =
  with_lock state.mu (fun () ->
      if state.metrics_text = "" then "# metrics snapshot pending\n"
      else state.metrics_text)

let progress_since state since =
  with_lock state.mu (fun () ->
      ( Http.ring_since state.progress since,
        Http.ring_next_seq state.progress,
        state.done_ ))

let logs_at_least state min_sev =
  with_lock state.mu (fun () ->
      Queue.fold
        (fun acc (sev, line) -> if sev >= min_sev then line :: acc else acc)
        [] state.logs
      |> List.rev)

let healthz_json state =
  with_lock state.mu (fun () ->
      let h = state.health in
      let elapsed =
        match h.first_ts with Some t0 -> h.last_ts -. t0 | None -> 0.
      in
      let opt_int = function None -> Json.Null | Some n -> Json.Int n in
      Json.Obj
        [
          ("status", Json.String (if state.done_ then "done" else "running"));
          ("phase", Json.String h.phase);
          ("elapsed_s", Json.Float elapsed);
          ("queries", Json.Int h.queries);
          ("query_budget", opt_int state.query_budget);
          ( "queries_remaining",
            match state.query_budget with
            | None -> Json.Null
            | Some b -> Json.Int (max 0 (b - h.queries)) );
          ( "time_budget_s",
            match state.time_budget_s with
            | None -> Json.Null
            | Some b -> Json.Float b );
          ( "time_remaining_s",
            match state.time_budget_s with
            | None -> Json.Null
            | Some b -> Json.Float (Float.max 0. (b -. elapsed)) );
          ("outputs_total", opt_int h.outputs_total);
          ("outputs_done", Json.Int h.outputs_done);
          ("degraded", Json.Int h.degraded);
          ("skipped", Json.Int h.skipped);
          ("retries", Json.Int h.retries);
        ])

(* {1 The serving front}

   HTTP plumbing lives in {!Http}; this is just the route table plus
   the retained-stream pump for [/progress]. [streams] is touched only
   by the handler and the tick, both of which run on the Http loop's
   domain — no lock needed. *)

type conn = { fd : Unix.file_descr; mutable next_seq : int }
type t = Http.t

let handle state streams fd (req : Http.request) =
  let finish () = Http.close_quiet fd in
  try
    if req.Http.meth <> "GET" then begin
      Http.respond fd ~status:"405 Method Not Allowed" ~ctype:"text/plain"
        "only GET is supported\n";
      finish ()
    end
    else
      match req.Http.path with
      | "/metrics" ->
          Http.respond fd ~status:"200 OK"
            ~ctype:"text/plain; version=0.0.4; charset=utf-8"
            (metrics_text state);
          finish ()
      | "/healthz" ->
          Http.respond fd ~status:"200 OK" ~ctype:"application/json"
            (Json.to_string (healthz_json state) ^ "\n");
          finish ()
      | "/logs" -> (
          let level =
            try List.assoc "level" req.Http.params with Not_found -> "debug"
          in
          match Log.level_of_string level with
          | Error e ->
              Http.respond fd ~status:"400 Bad Request" ~ctype:"text/plain"
                (e ^ "\n");
              finish ()
          | Ok l ->
              let sev =
                match l with
                | Log.Debug -> 0
                | Log.Info -> 1
                | Log.Warn -> 2
                | Log.Error -> 3
              in
              Http.respond fd ~status:"200 OK" ~ctype:"application/x-ndjson"
                (String.concat "" (logs_at_least state sev));
              finish ())
      | "/progress" ->
          Http.start_chunked fd ~ctype:"application/x-ndjson";
          let lines, next, done_ = progress_since state 0 in
          Http.send_chunk fd (String.concat "" lines);
          if done_ then begin
            Http.send_last_chunk fd;
            finish ()
          end
          else streams := { fd; next_seq = next } :: !streams
      | _ ->
          Http.respond fd ~status:"404 Not Found" ~ctype:"text/plain"
            "unknown endpoint (try /metrics /progress /healthz /logs)\n";
          finish ()
  with _ -> finish ()

(* Push new progress lines to the streaming connections; drop the dead
   ones and complete everything once the run is marked done. *)
let pump state streams =
  streams :=
    List.filter
      (fun c ->
        let lines, next, done_ = progress_since state c.next_seq in
        try
          if lines <> [] then Http.send_chunk c.fd (String.concat "" lines);
          c.next_seq <- next;
          if done_ then begin
            Http.send_last_chunk c.fd;
            Http.close_quiet c.fd;
            false
          end
          else true
        with _ ->
          Http.close_quiet c.fd;
          false)
      !streams

let start ?(addr = "127.0.0.1") ~port state =
  let streams = ref [] in
  Http.start ~addr ~port
    ~handle:(fun fd req -> handle state streams fd req)
    ~tick:(fun () -> pump state streams)
    ~on_stop:(fun () -> List.iter (fun c -> Http.close_quiet c.fd) !streams)
    ()

let port = Http.port
let stop = Http.stop
