type request = {
  meth : string;
  path : string;
  params : (string * string) list;
  body : string;
}

let close_quiet fd = try Unix.close fd with _ -> ()

let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (off + n) (len - n)
  end

let send fd s = write_all fd s 0 (String.length s)

let respond fd ~status ?(headers = []) ~ctype body =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
  in
  send fd
    (Printf.sprintf
       "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n%sConnection: \
        close\r\n\r\n"
       status ctype (String.length body) extra);
  send fd body

let start_chunked fd ~ctype =
  send fd
    (Printf.sprintf
       "HTTP/1.1 200 OK\r\nContent-Type: %s\r\nTransfer-Encoding: \
        chunked\r\nConnection: close\r\n\r\n"
       ctype)

let send_chunk fd s =
  if s <> "" then send fd (Printf.sprintf "%x\r\n%s\r\n" (String.length s) s)

let send_last_chunk fd = send fd "0\r\n\r\n"

(* ---------- request parsing ---------- *)

let find_head_end s =
  let i = ref (-1) in
  (try
     for j = 0 to String.length s - 4 do
       if !i < 0 && String.sub s j 4 = "\r\n\r\n" then i := j
     done
   with _ -> ());
  !i

(* header values we care about are ASCII; a simple lowercase suffices *)
let content_length head =
  let lower = String.lowercase_ascii head in
  let key = "content-length:" in
  match
    String.split_on_char '\n' lower
    |> List.find_opt (fun line ->
           String.length line >= String.length key
           && String.sub line 0 (String.length key) = key)
  with
  | None -> 0
  | Some line -> (
      let v =
        String.trim
          (String.sub line (String.length key)
             (String.length line - String.length key))
      in
      match int_of_string_opt v with Some n when n >= 0 -> n | _ -> 0)

let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
      let path = String.sub target 0 i in
      let query = String.sub target (i + 1) (String.length target - i - 1) in
      let params =
        String.split_on_char '&' query
        |> List.filter_map (fun kv ->
               match String.index_opt kv '=' with
               | None -> if kv = "" then None else Some (kv, "")
               | Some j ->
                   Some
                     ( String.sub kv 0 j,
                       String.sub kv (j + 1) (String.length kv - j - 1) ))
      in
      (path, params)

(* Read until the blank line (8 KiB head cap, relying on the socket
   timeout the loop set), then drain Content-Length body bytes. *)
let read_request ?(max_body = 1 lsl 20) fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let read_more () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> false
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> true
    | exception _ -> false
  in
  let rec head_loop () =
    let s = Buffer.contents buf in
    match find_head_end s with
    | -1 ->
        if Buffer.length buf > 8192 then None
        else if read_more () then head_loop ()
        else None
    | i -> Some (s, i)
  in
  match head_loop () with
  | None -> None
  | Some (s, head_end) -> (
      let head = String.sub s 0 head_end in
      let want = content_length head in
      if want > max_body then None
      else
        let body_start = head_end + 4 in
        let rec body_loop () =
          if Buffer.length buf - body_start >= want then
            Some (String.sub (Buffer.contents buf) body_start want)
          else if read_more () then body_loop ()
          else None
        in
        match body_loop () with
        | None -> None
        | Some body -> (
            match String.index_opt head '\r' with
            | None -> None
            | Some eol -> (
                let line = String.sub head 0 eol in
                match String.split_on_char ' ' line with
                | meth :: target :: _ ->
                    let path, params = split_target target in
                    Some { meth; path; params; body }
                | _ -> None)))

(* ---------- line rings ---------- *)

type ring = {
  items : string Queue.t;  (** oldest first; seqs [base_seq, next_seq) *)
  cap : int;
  mutable base_seq : int;
  mutable next_seq : int;
}

let ring_create cap =
  { items = Queue.create (); cap = max 1 cap; base_seq = 0; next_seq = 0 }

let ring_push r line =
  Queue.push line r.items;
  r.next_seq <- r.next_seq + 1;
  if Queue.length r.items > r.cap then begin
    ignore (Queue.pop r.items);
    r.base_seq <- r.base_seq + 1
  end

let ring_since r since =
  let lines = ref [] in
  let seq = ref r.base_seq in
  Queue.iter
    (fun line ->
      if !seq >= since then lines := line :: !lines;
      incr seq)
    r.items;
  List.rev !lines

let ring_next_seq r = r.next_seq

(* ---------- the accept loop ---------- *)

type t = {
  listen_fd : Unix.file_descr;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  bound_port : int;
  dom : unit Domain.t;
  stop_mu : Mutex.t;
  mutable stopped : bool;
}

let serve listen_fd stop_r ~handle ~tick ~on_stop =
  let running = ref true in
  while !running do
    let rs, _, _ =
      try Unix.select [ listen_fd; stop_r ] [] [] 0.05
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem stop_r rs then running := false
    else begin
      if List.mem listen_fd rs then begin
        match (try Some (Unix.accept ~cloexec:true listen_fd) with _ -> None)
        with
        | None -> ()
        | Some (fd, _) -> (
            (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0 with _ -> ());
            match read_request fd with
            | None -> close_quiet fd
            | Some req -> ( try handle fd req with _ -> close_quiet fd))
      end;
      try tick () with _ -> ()
    end
  done;
  try on_stop () with _ -> ()

let sigpipe_ignored = ref false

let start ?(addr = "127.0.0.1") ~port ~handle ?(tick = ignore)
    ?(on_stop = ignore) () =
  if not !sigpipe_ignored then begin
    sigpipe_ignored := true;
    try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
    with Invalid_argument _ -> ()
  end;
  match Unix.inet_addr_of_string addr with
  | exception Failure _ -> Error (Printf.sprintf "bad listen address %S" addr)
  | inet -> (
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (inet, port));
        Unix.listen fd 16;
        let bound_port =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> port
        in
        let stop_r, stop_w = Unix.pipe ~cloexec:true () in
        let dom =
          Domain.spawn (fun () -> serve fd stop_r ~handle ~tick ~on_stop)
        in
        Ok
          {
            listen_fd = fd;
            stop_r;
            stop_w;
            bound_port;
            dom;
            stop_mu = Mutex.create ();
            stopped = false;
          }
      with Unix.Unix_error (e, fn, _) ->
        close_quiet fd;
        Error (Printf.sprintf "%s: %s" fn (Unix.error_message e)))

let port t = t.bound_port

let stop t =
  Mutex.lock t.stop_mu;
  let first =
    if t.stopped then false
    else begin
      t.stopped <- true;
      true
    end
  in
  Mutex.unlock t.stop_mu;
  if first then begin
    (try ignore (Unix.write_substring t.stop_w "x" 0 1) with _ -> ());
    Domain.join t.dom;
    List.iter close_quiet [ t.listen_fd; t.stop_r; t.stop_w ]
  end
