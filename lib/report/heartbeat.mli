(** Live progress reporting: a telemetry sink that periodically prints
    one status line — innermost phase, elapsed time (and remaining
    budget when one is declared), black-box query count.

    The heartbeat is event-driven: it piggybacks on the span/counter
    events the pipeline already emits (every black-box query batch
    produces one), comparing each event's timestamp against the last
    print, so it costs nothing between events and needs no thread or
    signal. Timestamps come from the events themselves, which makes the
    output deterministic under {!Lr_instr.Instr.set_clock}. *)

val sink :
  ?out:(string -> unit) ->
  ?budget_s:float ->
  interval_s:float ->
  unit ->
  Lr_instr.Instr.sink
(** [sink ~interval_s ()] prints to stderr (override with [out]) at
    most once per [interval_s] seconds of event time, plus one final
    line on flush. With [budget_s] the line also shows the remaining
    wall-clock budget and percent consumed. *)
