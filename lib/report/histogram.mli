(** Fixed-bucket log-scale histograms for latency-style measurements.

    Buckets are laid out once at creation — [per_decade] geometrically
    spaced upper bounds per decade from [lo] to [hi], plus one overflow
    bucket — so recording is an O(log buckets) binary search with no
    allocation, and two histograms with the same layout can be merged
    bucket-wise. Quantiles are answered from the bucket counts: the
    reported value is the {e upper bound} of the bucket holding the
    requested rank (clamped into [[min, max]], which are tracked
    exactly), so a histogram quantile never under-reports a latency by
    more than one bucket width. *)

type t

val create : ?lo:float -> ?hi:float -> ?per_decade:int -> unit -> t
(** Default layout: [lo = 1e-7] (100 ns), [hi = 1e3] (~17 min), 5
    buckets per decade — 51 bounds covering any realistic query or
    phase latency in seconds. Raises [Invalid_argument] unless
    [0 < lo < hi] and [per_decade > 0]. *)

val clear : t -> unit

val add : t -> float -> unit
(** Record one sample. Non-finite samples are dropped. Samples below
    [lo] land in the first bucket, samples above [hi] in the overflow
    bucket (their exact value still feeds [max_value]). *)

val add_n : t -> float -> int -> unit
(** [add_n h v n] records [n] identical samples in O(1) — the batched
    query path attributes a batch's mean per-query latency this way. *)

val merge : into:t -> t -> unit
(** Bucket-wise sum. Raises [Invalid_argument] on layout mismatch. *)

val count : t -> int
val sum : t -> float

val mean : t -> float
(** [nan] when empty, like the other point statistics. *)

val min_value : t -> float
val max_value : t -> float

val quantile : t -> float -> float
(** [quantile h q] for [q] clamped into [[0, 1]]; [q = 0] and [q = 1]
    return the exact tracked min/max. [nan] when empty. *)

val buckets : t -> (float * int) list
(** Non-empty buckets as [(upper_bound, count)], in increasing bound
    order; the overflow bucket reports [infinity] as its bound. *)

(** {1 Summaries} *)

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}
(** Point statistics are [nan] when [count = 0] — the JSON printer
    renders non-finite floats as [null], so an empty summary serializes
    without a special case. *)

val summarize : t -> summary
val empty_summary : summary

val summary_to_json : summary -> Lr_instr.Json.t
(** Object with keys [count]/[mean]/[min]/[max]/[p50]/[p90]/[p99]. *)

val summary_of_json : Lr_instr.Json.t -> summary option
