(** Diffing and gating report records.

    Both report schemas flatten to a list of {!entry} rows keyed by
    case (run reports) or [case/method] (bench reports); two reports
    are joined on the key, rendered as a delta table, and optionally
    gated by {!thresholds} — the regression check every perf PR runs
    against a recorded baseline. *)

type entry = {
  key : string;  (** [case] or [case/method] *)
  size : int;  (** 2-input gate count *)
  accuracy : float option;  (** percent; [None] when unscored *)
  time_s : float;
}

val entries_of_report : Lr_instr.Json.t -> (entry list, string) result
(** Accepts [lr-run-report/v1] (one row) and [lr-bench-report/v1]
    (one row per case x method). *)

val jobs_of_report : Lr_instr.Json.t -> int
(** The [jobs] field of either schema; 1 when absent (reports written
    before the field existed were always sequential). The regression
    gate refuses to compare reports recorded at different parallelism
    levels — sizes and accuracies would agree, but wall-clock rows
    would not be like for like. *)

val degraded_of_report : Lr_instr.Json.t -> int
(** The [degraded] output count of a run report; 0 when absent (reports
    written before fault injection existed were always fault-free). The
    regression gate refuses runs with [degraded > 0] on either side:
    best-effort constants make size and accuracy incomparable. *)

val cache_hit_of_report : Lr_instr.Json.t -> bool
(** The [cache_hit] marker an [lr_serve] job report carries; [false]
    when absent (direct CLI runs never hit the circuit cache). The
    regression gate refuses warm-cache reports: their timing describes
    a cache lookup, not a learn, so any wall-clock comparison against
    them would be vacuous. *)

val filter : ?case:string -> ?method_:string -> entry list -> entry list
(** [case] matches the part before ['/'], [method_] the part after
    (entries without a method — run reports — survive only when no
    [method_] filter is given). *)

type delta = { key : string; old_e : entry; new_e : entry }

val join : entry list -> entry list -> delta list * string list * string list
(** [join old new] pairs entries by key (in [new]'s order) and also
    returns the keys only present in the old / only in the new list. *)

type thresholds = {
  max_gate_regress : float option;
      (** allowed fractional size growth, e.g. [0.05] for 5 % *)
  min_accuracy : float option;  (** floor on the {e new} accuracy, percent *)
  max_time_regress : float option;
      (** allowed fractional time growth (plus a fixed 0.1 s of jitter
          slack, so sub-second cases don't flap) *)
}

val no_thresholds : thresholds

val parse_fraction : string -> (float, string) result
(** ["5%"] -> [0.05]; a bare number is taken as the fraction itself
    (["0.05"] -> [0.05]). *)

val violations : thresholds -> delta list -> string list
(** One human-readable line per violated threshold, empty when the new
    report passes. *)

val render_table : delta list -> string
(** Fixed-width per-key delta table (size, accuracy, time), ending in a
    newline; the empty string for an empty join. *)
