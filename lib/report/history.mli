(** Run-history store: an append-only JSONL file of report records.

    Each line is one complete [lr-run-report/v1] or [lr-bench-report/v1]
    JSON object (the CLI and bench emit single-line JSON, so appending
    is a plain write). The file is the durable record that
    [lr_report compare]/[check] diff against — commit one as a
    baseline, or keep a growing log per machine. *)

val append : string -> Lr_instr.Json.t -> unit
(** [append path v] appends [v] as one line, creating the file if
    needed. Raises [Sys_error] on I/O failure. *)

val load : string -> (Lr_instr.Json.t list, string) result
(** All records in file order. Blank lines are skipped; a malformed
    line fails the whole load with its line number. *)

val last : string -> (Lr_instr.Json.t, string) result
(** The most recently appended record. *)

val entry_count : string -> int
(** Number of records ([0] for a missing file). *)
