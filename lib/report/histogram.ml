module Json = Lr_instr.Json

type t = {
  bounds : float array;  (** strictly increasing bucket upper bounds *)
  counts : int array;  (** [length bounds + 1]; the last is overflow *)
  mutable n : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

let create ?(lo = 1e-7) ?(hi = 1e3) ?(per_decade = 5) () =
  if not (lo > 0.0 && hi > lo) || per_decade <= 0 then
    invalid_arg "Histogram.create";
  let decades = log10 (hi /. lo) in
  (* enough bounds that the last one reaches [hi] *)
  let nb = int_of_float (ceil ((decades *. float_of_int per_decade) -. 1e-9)) + 1 in
  let bounds =
    Array.init nb (fun i ->
        lo *. (10.0 ** (float_of_int i /. float_of_int per_decade)))
  in
  {
    bounds;
    counts = Array.make (nb + 1) 0;
    n = 0;
    sum = 0.0;
    minv = infinity;
    maxv = neg_infinity;
  }

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.n <- 0;
  t.sum <- 0.0;
  t.minv <- infinity;
  t.maxv <- neg_infinity

(* smallest i with v <= bounds.(i); the overflow index when none *)
let index t v =
  let nb = Array.length t.bounds in
  if v <= t.bounds.(0) then 0
  else if v > t.bounds.(nb - 1) then nb
  else begin
    let lo = ref 0 and hi = ref (nb - 1) in
    (* invariant: bounds.(!lo) < v <= bounds.(!hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v <= t.bounds.(mid) then hi := mid else lo := mid
    done;
    !hi
  end

let add_n t v k =
  if k > 0 && Float.is_finite v then begin
    t.counts.(index t v) <- t.counts.(index t v) + k;
    t.n <- t.n + k;
    t.sum <- t.sum +. (v *. float_of_int k);
    if v < t.minv then t.minv <- v;
    if v > t.maxv then t.maxv <- v
  end

let add t v = add_n t v 1

let merge ~into src =
  if Array.length into.counts <> Array.length src.counts
     || into.bounds <> src.bounds
  then invalid_arg "Histogram.merge: layout mismatch";
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.n <- into.n + src.n;
  into.sum <- into.sum +. src.sum;
  if src.minv < into.minv then into.minv <- src.minv;
  if src.maxv > into.maxv then into.maxv <- src.maxv

let count t = t.n
let sum t = t.sum
let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n
let min_value t = if t.n = 0 then nan else t.minv
let max_value t = if t.n = 0 then nan else t.maxv

let quantile t q =
  if t.n = 0 then nan
  else
    let q = Float.max 0.0 (Float.min 1.0 q) in
    if q <= 0.0 then t.minv
    else if q >= 1.0 then t.maxv
    else begin
      let rank = max 1 (min t.n (int_of_float (ceil (q *. float_of_int t.n)))) in
      let nb = Array.length t.bounds in
      let acc = ref 0 and i = ref 0 in
      while !acc < rank && !i <= nb do
        acc := !acc + t.counts.(!i);
        if !acc < rank then incr i
      done;
      let v = if !i < nb then t.bounds.(!i) else t.maxv in
      Float.max t.minv (Float.min t.maxv v)
    end

let buckets t =
  let nb = Array.length t.bounds in
  let out = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then
      out := ((if i < nb then t.bounds.(i) else infinity), t.counts.(i)) :: !out
  done;
  !out

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let empty_summary =
  { count = 0; mean = nan; min = nan; max = nan; p50 = nan; p90 = nan; p99 = nan }

let summarize t =
  {
    count = t.n;
    mean = mean t;
    min = min_value t;
    max = max_value t;
    p50 = quantile t 0.5;
    p90 = quantile t 0.9;
    p99 = quantile t 0.99;
  }

let summary_to_json s =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("mean", Json.Float s.mean);
      ("min", Json.Float s.min);
      ("max", Json.Float s.max);
      ("p50", Json.Float s.p50);
      ("p90", Json.Float s.p90);
      ("p99", Json.Float s.p99);
    ]

let summary_of_json v =
  match Option.bind (Json.member "count" v) Json.get_int with
  | None -> None
  | Some count ->
      (* a field serialized from an empty summary comes back as [Null] *)
      let f k =
        match Option.bind (Json.member k v) Json.get_float with
        | Some x -> x
        | None -> nan
      in
      Some
        {
          count;
          mean = f "mean";
          min = f "min";
          max = f "max";
          p50 = f "p50";
          p90 = f "p90";
          p99 = f "p99";
        }
