module Json = Lr_instr.Json

type t = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  top_heap_words : int;
}

let zero =
  {
    minor_words = 0.0;
    promoted_words = 0.0;
    major_words = 0.0;
    minor_collections = 0;
    major_collections = 0;
    compactions = 0;
    heap_words = 0;
    top_heap_words = 0;
  }

let sample () =
  let s = Gc.quick_stat () in
  {
    minor_words = s.Gc.minor_words;
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    compactions = s.Gc.compactions;
    heap_words = s.Gc.heap_words;
    top_heap_words = s.Gc.top_heap_words;
  }

let diff a b =
  {
    minor_words = a.minor_words -. b.minor_words;
    promoted_words = a.promoted_words -. b.promoted_words;
    major_words = a.major_words -. b.major_words;
    minor_collections = a.minor_collections - b.minor_collections;
    major_collections = a.major_collections - b.major_collections;
    compactions = a.compactions - b.compactions;
    heap_words = a.heap_words;
    top_heap_words = a.top_heap_words;
  }

let add a b =
  {
    minor_words = a.minor_words +. b.minor_words;
    promoted_words = a.promoted_words +. b.promoted_words;
    major_words = a.major_words +. b.major_words;
    minor_collections = a.minor_collections + b.minor_collections;
    major_collections = a.major_collections + b.major_collections;
    compactions = a.compactions + b.compactions;
    heap_words = max a.heap_words b.heap_words;
    top_heap_words = max a.top_heap_words b.top_heap_words;
  }

let to_json t =
  Json.Obj
    [
      ("gc_minor_words", Json.Float t.minor_words);
      ("gc_promoted_words", Json.Float t.promoted_words);
      ("gc_major_words", Json.Float t.major_words);
      ("gc_minor_collections", Json.Int t.minor_collections);
      ("gc_major_collections", Json.Int t.major_collections);
      ("gc_compactions", Json.Int t.compactions);
      ("gc_heap_words", Json.Int t.heap_words);
      ("gc_top_heap_words", Json.Int t.top_heap_words);
    ]
