module Json = Lr_instr.Json

let append path v =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string v);
      output_char oc '\n')

let load path =
  if not (Sys.file_exists path) then Error (path ^ ": no such file")
  else begin
    let ic = open_in path in
    let lines = ref [] in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            lines := input_line ic :: !lines
          done;
          assert false
        with End_of_file -> ());
    let rec parse n acc = function
      | [] -> Ok (List.rev acc)
      | l :: rest when String.trim l = "" -> parse (n + 1) acc rest
      | l :: rest -> (
          match Json.of_string l with
          | Ok v -> parse (n + 1) (v :: acc) rest
          | Error e -> Error (Printf.sprintf "%s:%d: %s" path n e))
    in
    parse 1 [] (List.rev !lines)
  end

let last path =
  match load path with
  | Error _ as e -> e
  | Ok [] -> Error (path ^ ": empty history")
  | Ok l -> Ok (List.nth l (List.length l - 1))

let entry_count path = match load path with Ok l -> List.length l | Error _ -> 0
