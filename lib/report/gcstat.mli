(** GC/memory gauges for per-phase accounting.

    A sample is a cheap [Gc.quick_stat] snapshot (no heap traversal);
    phase costs are the {e difference} of the snapshots taken at the
    phase's span boundaries, accumulated with {!add} when a phase runs
    once per output. Allocation counters are deltas; [heap_words] /
    [top_heap_words] are point-in-time sizes (a diff keeps the later
    sample's value, an accumulation keeps the peak). *)

type t = {
  minor_words : float;  (** words allocated in the minor heap *)
  promoted_words : float;
  major_words : float;  (** words allocated in (or promoted to) the major heap *)
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;  (** major heap size at sample/phase end *)
  top_heap_words : int;
}

val zero : t

val sample : unit -> t
(** Snapshot of the process-lifetime GC counters ([Gc.quick_stat]). *)

val diff : t -> t -> t
(** [diff after before]: counter deltas; sizes from [after]. *)

val add : t -> t -> t
(** Sum of two deltas; sizes take the max (peak across phase runs). *)

val to_json : t -> Lr_instr.Json.t
(** Keys [gc_minor_words], [gc_promoted_words], [gc_major_words],
    [gc_minor_collections], [gc_major_collections], [gc_compactions],
    [gc_heap_words], [gc_top_heap_words]. *)
