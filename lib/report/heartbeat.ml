module Instr = Lr_instr.Instr

(* Default writer goes through the logger's output mutex so heartbeat
   lines stay atomic against concurrent log/progress writes under
   [--jobs N]. *)
let sink ?(out = fun s -> Lr_obs.Log.locked_write stderr s) ?budget_s
    ~interval_s () =
  let first = ref nan in
  let last_print = ref nan in
  let last_ts = ref nan in
  let queries = ref 0 in
  let stack = ref [] in
  let line ts =
    let elapsed = ts -. !first in
    let phase = match !stack with [] -> "-" | p :: _ -> p in
    let budget =
      match budget_s with
      | Some b ->
          let left = Float.max 0.0 (b -. elapsed) in
          let pct = if b > 0.0 then 100.0 *. left /. b else 0.0 in
          Printf.sprintf " budget=%.2fs left=%.2fs (%.0f%% left)" b left pct
      | None -> ""
    in
    out
      (Printf.sprintf "[hb] %.2fs phase=%s queries=%d%s\n" elapsed phase
         !queries budget)
  in
  let observe ts =
    last_ts := ts;
    if Float.is_nan !first then begin
      first := ts;
      last_print := ts
    end
    else if ts -. !last_print >= interval_s then begin
      last_print := ts;
      line ts
    end
  in
  let emit = function
    | Instr.Span_begin { name; ts; _ } ->
        stack := name :: !stack;
        observe ts
    | Instr.Span_end { ts; _ } ->
        (match !stack with _ :: rest -> stack := rest | [] -> ());
        observe ts
    | Instr.Count { name; ts; total; _ } ->
        if name = "queries" then queries := total;
        observe ts
    | Instr.Gauge { ts; _ } -> observe ts
  in
  let flush () = if not (Float.is_nan !first) then line !last_ts in
  { Instr.emit; flush }
