module Json = Lr_instr.Json

type entry = {
  key : string;
  size : int;
  accuracy : float option;
  time_s : float;
}

let bench_methods = [ "contest"; "sop"; "id3"; "improved" ]

let measurement_entry ~key v =
  match
    ( Option.bind (Json.member "size" v) Json.get_int,
      Option.bind (Json.member "time_s" v) Json.get_float )
  with
  | Some size, Some time_s ->
      let accuracy = Option.bind (Json.member "accuracy" v) Json.get_float in
      Ok { key; size; accuracy; time_s }
  | _ -> Error (key ^ ": missing size/time_s")

let entries_of_bench v =
  match Option.bind (Json.member "rows" v) Json.get_list with
  | None -> Error "bench report: missing rows"
  | Some rows ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | row :: rest -> (
            match Option.bind (Json.member "case" row) Json.get_string with
            | None -> Error "bench report: row without case"
            | Some case -> (
                let entries =
                  List.filter_map
                    (fun m ->
                      Option.map
                        (fun mv -> measurement_entry ~key:(case ^ "/" ^ m) mv)
                        (Json.member m row))
                    bench_methods
                in
                match
                  List.find_opt (function Error _ -> true | Ok _ -> false)
                    entries
                with
                | Some (Error e) -> Error e
                | _ ->
                    go
                      (List.rev_append
                         (List.filter_map Result.to_option entries)
                         acc)
                      rest))
      in
      go [] rows

let entries_of_run v =
  match
    ( Option.bind (Json.member "case" v) Json.get_string,
      Option.bind (Json.member "size" v) Json.get_int,
      Option.bind (Json.member "elapsed_s" v) Json.get_float )
  with
  | Some case, Some size, Some time_s ->
      let accuracy = Option.bind (Json.member "accuracy" v) Json.get_float in
      Ok [ { key = case; size; accuracy; time_s } ]
  | _ -> Error "run report: missing case/size/elapsed_s"

let entries_of_report v =
  match Option.bind (Json.member "schema" v) Json.get_string with
  | Some "lr-run-report/v1" -> entries_of_run v
  | Some "lr-bench-report/v1" -> entries_of_bench v
  | Some s -> Error ("unknown report schema: " ^ s)
  | None -> Error "not a report: missing schema field"

(* reports written before the field existed were always sequential *)
let jobs_of_report v =
  match Option.bind (Json.member "jobs" v) Json.get_int with
  | Some j -> j
  | None -> 1

(* ... and always fault-free *)
let degraded_of_report v =
  match Option.bind (Json.member "degraded" v) Json.get_int with
  | Some d -> d
  | None -> 0

(* ... and never served from the lr_serve circuit cache *)
let cache_hit_of_report v =
  match Option.bind (Json.member "cache_hit" v) Json.get_bool with
  | Some b -> b
  | None -> false

let split_key key =
  match String.index_opt key '/' with
  | Some i ->
      ( String.sub key 0 i,
        Some (String.sub key (i + 1) (String.length key - i - 1)) )
  | None -> (key, None)

let filter ?case ?method_ entries =
  List.filter
    (fun e ->
      let c, m = split_key e.key in
      (match case with Some want -> c = want | None -> true)
      && match method_ with Some want -> m = Some want | None -> true)
    entries

type delta = { key : string; old_e : entry; new_e : entry }

let join (old_entries : entry list) (new_entries : entry list) =
  let old_keys = List.map (fun (e : entry) -> e.key) old_entries in
  let new_keys = List.map (fun (e : entry) -> e.key) new_entries in
  let deltas =
    List.filter_map
      (fun (n : entry) ->
        Option.map
          (fun o -> { key = n.key; old_e = o; new_e = n })
          (List.find_opt (fun (o : entry) -> o.key = n.key) old_entries))
      new_entries
  in
  let only_old = List.filter (fun k -> not (List.mem k new_keys)) old_keys in
  let only_new = List.filter (fun k -> not (List.mem k old_keys)) new_keys in
  (deltas, only_old, only_new)

type thresholds = {
  max_gate_regress : float option;
  min_accuracy : float option;
  max_time_regress : float option;
}

let no_thresholds =
  { max_gate_regress = None; min_accuracy = None; max_time_regress = None }

let parse_fraction s =
  let s = String.trim s in
  let body, is_percent =
    if String.length s > 0 && s.[String.length s - 1] = '%' then
      (String.sub s 0 (String.length s - 1), true)
    else (s, false)
  in
  match float_of_string_opt (String.trim body) with
  | Some f when Float.is_finite f && f >= 0.0 ->
      Ok (if is_percent then f /. 100.0 else f)
  | Some _ | None -> Error (Printf.sprintf "bad threshold %S" s)

(* fixed jitter slack on wall-clock comparisons: sub-second cases vary by
   tens of milliseconds run to run, which a pure ratio would flag *)
let time_slack_s = 0.1

let violations t deltas =
  List.concat_map
    (fun d ->
      let gate =
        match t.max_gate_regress with
        | Some frac
          when float_of_int d.new_e.size
               > (float_of_int d.old_e.size *. (1.0 +. frac)) +. 1e-9 ->
            [
              Printf.sprintf
                "%s: gate count regressed %d -> %d (limit +%.1f%%)" d.key
                d.old_e.size d.new_e.size (100.0 *. frac);
            ]
        | _ -> []
      in
      let acc =
        match (t.min_accuracy, d.new_e.accuracy) with
        | Some floor, Some a when a < floor -. 1e-9 ->
            [
              Printf.sprintf "%s: accuracy %.4f%% below floor %.4f%%" d.key a
                floor;
            ]
        | _ -> []
      in
      let time =
        match t.max_time_regress with
        | Some frac
          when d.new_e.time_s
               > (d.old_e.time_s *. (1.0 +. frac)) +. time_slack_s ->
            [
              Printf.sprintf "%s: time regressed %.2fs -> %.2fs (limit +%.1f%%)"
                d.key d.old_e.time_s d.new_e.time_s (100.0 *. frac);
            ]
        | _ -> []
      in
      gate @ acc @ time)
    deltas

let pp_acc = function Some a -> Printf.sprintf "%.3f" a | None -> "-"

let render_table deltas =
  if deltas = [] then ""
  else begin
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "%-24s %8s %8s %7s  %9s %9s  %8s %8s %8s\n" "key"
         "size0" "size1" "dsize" "acc0" "acc1" "time0" "time1" "dtime");
    List.iter
      (fun d ->
        Buffer.add_string buf
          (Printf.sprintf "%-24s %8d %8d %+7d  %9s %9s  %8.2f %8.2f %+8.2f\n"
             d.key d.old_e.size d.new_e.size
             (d.new_e.size - d.old_e.size)
             (pp_acc d.old_e.accuracy) (pp_acc d.new_e.accuracy)
             d.old_e.time_s d.new_e.time_s
             (d.new_e.time_s -. d.old_e.time_s)))
      deltas;
    Buffer.contents buf
  end
