module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Aig = Lr_aig.Aig
module Equiv = Lr_aig.Equiv
module Cube = Lr_cube.Cube
module Cover = Lr_cube.Cover
module Instr = Lr_instr.Instr
module Soa = Lr_kernel.Soa

exception
  Check_failed of {
    stage : string;
    output : int;
    cex : Bv.t;
    detail : string;
  }

let message ~stage ~output ~cex ~detail =
  Printf.sprintf "check failed in %s: output %d differs on input %s (%s)" stage
    output (Bv.to_string cex) detail

let () =
  Printexc.register_printer (function
    | Check_failed { stage; output; cex; detail } ->
        Some (message ~stage ~output ~cex ~detail)
    | _ -> None)

let failed ~stage ~output ~cex ~detail =
  Instr.count "check.failed" 1;
  raise (Check_failed { stage; output; cex; detail })

(* each verification runs under a span named after the pipeline pass it
   re-checks ("check:aig-opt", "check:cover-min", ...) so the profiler can
   attribute check-phase time per pass; the prefix keeps the span name
   distinct from the phase names used for query attribution *)
let staged ~stage f = Instr.span ~name:("check:" ^ stage) f

(* a counterexample pattern broadcast to all 64 simulation lanes *)
let words_of_bv ni cex =
  Array.init ni (fun i -> if Bv.get cex i then -1L else 0L)

let verify_netlists ~stage ?rng ?kernel ?pool before after =
  staged ~stage @@ fun () ->
  Instr.span ~name:"check.cec" (fun () ->
      match Equiv.check ?rng ?kernel ?pool before after with
      | Equiv.Equivalent -> Instr.count "check.verified" 1
      | Equiv.Counterexample cex ->
          let o1 = N.eval before cex and o2 = N.eval after cex in
          let output = ref (-1) in
          for o = Bv.length o1 - 1 downto 0 do
            if Bv.get o1 o <> Bv.get o2 o then output := o
          done;
          failed ~stage ~output:!output ~cex
            ~detail:"result differs from the step's input circuit")

let verify_aigs ~stage ?rng ?kernel ?pool before after =
  staged ~stage @@ fun () ->
  Instr.span ~name:"check.cec-aig" (fun () ->
      match Equiv.check_aig ?rng ?kernel ?pool before after with
      | Equiv.Equivalent -> Instr.count "check.verified" 1
      | Equiv.Counterexample cex ->
          let words = words_of_bv (Aig.num_inputs before) cex in
          let o1 = Aig.simulate before words
          and o2 = Aig.simulate after words in
          let output = ref (-1) in
          for o = Array.length o1 - 1 downto 0 do
            if Int64.logand o1.(o) 1L <> Int64.logand o2.(o) 1L then output := o
          done;
          failed ~stage ~output:!output ~cex
            ~detail:"result differs from the step's input AIG")

let verify_table ~stage ?(kernel = true) ~circuit ~output ~bits ~to_full
    ~expected () =
  staged ~stage @@ fun () ->
  Instr.span ~name:"check.table" (fun () ->
      let ni = N.num_inputs circuit in
      let eval =
        if kernel then
          let soa = Soa.of_netlist circuit in
          fun words -> Soa.eval_words soa words
        else fun words -> N.eval_words circuit words
      in
      let size = 1 lsl bits in
      let words = Array.make (max ni 1) 0L in
      let block = ref 0 in
      while !block * 64 < size do
        let base = !block * 64 in
        let lanes = min 64 (size - base) in
        Array.fill words 0 ni 0L;
        for j = 0 to lanes - 1 do
          let a = to_full (base + j) in
          for i = 0 to ni - 1 do
            if Bv.get a i then
              words.(i) <- Int64.logor words.(i) (Int64.shift_left 1L j)
          done
        done;
        let out = eval words in
        let w = out.(output) in
        for j = 0 to lanes - 1 do
          let got = Int64.logand (Int64.shift_right_logical w j) 1L = 1L in
          if got <> expected (base + j) then
            failed ~stage ~output ~cex:(to_full (base + j))
              ~detail:
                (Printf.sprintf "truth-table mismatch at index %d" (base + j))
        done;
        incr block
      done;
      Instr.count "check.verified" 1)

let verify_cover ~stage ?(rng = Rng.create 0xCEC) ?(kernel = true) ?pool
    ~circuit ~output ~vars ~cover ~complemented () =
  staged ~stage @@ fun () ->
  Instr.span ~name:"check.cover" (fun () ->
      let ni = N.num_inputs circuit in
      let aig = Aig.create ~num_inputs:ni ~num_outputs:1 in
      (* PI-level import: builder folding (e.g. NOT(Not y) = y) can make
         cone leaves bypass any internal cut, so we re-express both sides
         over the primary inputs *)
      let memo = Hashtbl.create 256 in
      let rec import n =
        match Hashtbl.find_opt memo n with
        | Some l -> l
        | None ->
            let l =
              match N.gate circuit n with
              | N.Const b -> if b then Aig.lit_true else Aig.lit_false
              | N.Input i -> Aig.input_lit aig i
              | N.Not a -> Aig.not_lit (import a)
              | N.And2 (a, b) -> Aig.and_lit aig (import a) (import b)
              | N.Or2 (a, b) -> Aig.or_lit aig (import a) (import b)
              | N.Xor2 (a, b) -> Aig.xor_lit aig (import a) (import b)
              | N.Nand2 (a, b) ->
                  Aig.not_lit (Aig.and_lit aig (import a) (import b))
              | N.Nor2 (a, b) ->
                  Aig.not_lit (Aig.or_lit aig (import a) (import b))
              | N.Xnor2 (a, b) ->
                  Aig.not_lit (Aig.xor_lit aig (import a) (import b))
            in
            Hashtbl.replace memo n l;
            l
      in
      let out_lit = import (N.output circuit output) in
      let var_lits = Array.map import vars in
      let cover_lit =
        List.fold_left
          (fun acc cube ->
            let cube_lit =
              List.fold_left
                (fun acc (v, ph) ->
                  let l = var_lits.(v) in
                  Aig.and_lit aig acc (if ph then l else Aig.not_lit l))
                Aig.lit_true (Cube.literals cube)
            in
            Aig.or_lit aig acc cube_lit)
          Aig.lit_false (Cover.cubes cover)
      in
      let expected = if complemented then Aig.not_lit cover_lit else cover_lit in
      let diff = Aig.xor_lit aig out_lit expected in
      Aig.set_output aig 0 diff;
      let simulate =
        if kernel then begin
          let soa = Lr_aig.Ksim.soa_of_aig aig in
          fun words -> Soa.outputs_of_values soa (Soa.node_values soa words)
        end
        else fun words -> Aig.simulate aig words
      in
      let cex =
        let rec sim k =
          if k = 0 then None
          else begin
            let words = Array.init ni (fun _ -> Rng.bits64 rng) in
            let o = simulate words in
            if o.(0) = 0L then sim (k - 1)
            else begin
              let rec find j =
                if Int64.logand (Int64.shift_right_logical o.(0) j) 1L = 1L
                then j
                else find (j + 1)
              in
              let bit = find 0 in
              let cex = Bv.create ni in
              for i = 0 to ni - 1 do
                Bv.set cex i
                  (Int64.logand (Int64.shift_right_logical words.(i) bit) 1L
                  = 1L)
              done;
              Some cex
            end
          end
        in
        match sim 16 with
        | Some c -> Some c
        | None -> Equiv.sat_assignment ~kernel ?pool aig diff
      in
      match cex with
      | None -> Instr.count "check.verified" 1
      | Some cex ->
          failed ~stage ~output ~cex
            ~detail:"minimized cover differs from the built cone")
