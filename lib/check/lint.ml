module N = Lr_netlist.Netlist
module Aig = Lr_aig.Aig
module Json = Lr_instr.Json
module F = Finding

let sprintf = Printf.sprintf

(* Commutation-aware structural key: And2(a,b) and And2(b,a) collide. *)
let gate_key g =
  match g with
  | N.Const b -> (0, Bool.to_int b, 0)
  | N.Input i -> (1, i, 0)
  | N.Not a -> (2, a, 0)
  | N.And2 (a, b) -> (3, min a b, max a b)
  | N.Or2 (a, b) -> (4, min a b, max a b)
  | N.Xor2 (a, b) -> (5, min a b, max a b)
  | N.Nand2 (a, b) -> (6, min a b, max a b)
  | N.Nor2 (a, b) -> (7, min a b, max a b)
  | N.Xnor2 (a, b) -> (8, min a b, max a b)

let netlist c =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let n = N.num_nodes c in
  (* node order is topological by construction; a violation means the
     structure arrived by some route that could hide a cycle *)
  let ordered = ref true in
  for node = 0 to n - 1 do
    List.iter (fun a -> if a >= node then ordered := false) (N.fanins (N.gate c node))
  done;
  if not !ordered then
    add
      (F.make F.Error ~rule:"cycle" ~where:""
         ~hint:"rebuild the netlist through Netlist.Builder in dependency order"
         "node order is not topological: some gate reads a node defined after it");
  let reach = N.reachable c in
  let dead = ref 0 in
  for node = 0 to n - 1 do
    if not reach.(node) then
      match N.gate c node with N.Const _ | N.Input _ -> () | _ -> incr dead
  done;
  if !dead > 0 then
    add
      (F.make F.Warning ~rule:"dead-logic" ~where:""
         ~hint:"writers skip dead logic, but it still costs memory and eval time"
         (sprintf "%d gate(s) unreachable from any primary output" !dead));
  let seen = Hashtbl.create 256 in
  for node = 0 to n - 1 do
    if reach.(node) then begin
      let g = N.gate c node in
      (match g with
      | N.Not a -> (
          match N.gate c a with
          | N.Not _ ->
              add
                (F.make F.Warning ~rule:"double-inverter"
                   ~where:(sprintf "node %d" node)
                   ~hint:"collapse NOT(NOT x) to x"
                   (sprintf "inverter over inverter node %d" a))
          | _ -> ())
      | _ -> ());
      (match g with
      | N.Const _ | N.Input _ | N.Not _ -> ()
      | _ ->
          if
            List.exists
              (fun a -> match N.gate c a with N.Const _ -> true | _ -> false)
              (N.fanins g)
          then
            add
              (F.make F.Warning ~rule:"constant-foldable"
                 ~where:(sprintf "node %d" node)
                 ~hint:"fold the constant operand away"
                 "2-input gate with a constant operand"));
      match g with
      | N.Const _ | N.Input _ -> ()
      | _ -> (
          let key = gate_key g in
          match Hashtbl.find_opt seen key with
          | Some first ->
              add
                (F.make F.Warning ~rule:"duplicate-gate"
                   ~where:(sprintf "node %d" node)
                   ~hint:"share one gate (structural hashing)"
                   (sprintf "structurally identical to node %d" first))
          | None -> Hashtbl.add seen key node)
    end
  done;
  for o = 0 to N.num_outputs c - 1 do
    match N.gate c (N.output c o) with
    | N.Const b ->
        add
          (F.make F.Info ~rule:"constant-output"
             ~where:(sprintf "output %s" (N.output_names c).(o))
             ~hint:""
             (sprintf "output is the constant %s" (if b then "1" else "0")))
    | _ -> ()
  done;
  F.normalize !findings

let aig a =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let nn = Aig.num_nodes a in
  let ordered = ref true in
  for node = Aig.num_inputs a + 1 to nn - 1 do
    let l0, l1 = Aig.fanins a node in
    if Aig.lit_node l0 >= node || Aig.lit_node l1 >= node then ordered := false
  done;
  if not !ordered then
    add
      (F.make F.Error ~rule:"cycle" ~where:""
         ~hint:"AND definitions must precede their uses"
         "node order is not topological: some AND reads a node defined after it");
  let reach = Array.make (max nn 1) false in
  let rec visit node =
    if not reach.(node) then begin
      reach.(node) <- true;
      if Aig.is_and a node then begin
        let l0, l1 = Aig.fanins a node in
        visit (Aig.lit_node l0);
        visit (Aig.lit_node l1)
      end
    end
  in
  for o = 0 to Aig.num_outputs a - 1 do
    visit (Aig.lit_node (Aig.output a o))
  done;
  let dead = ref 0 in
  for node = Aig.num_inputs a + 1 to nn - 1 do
    if not reach.(node) then incr dead
  done;
  if !dead > 0 then
    add
      (F.make F.Warning ~rule:"dead-logic" ~where:""
         ~hint:"run Aig.compact"
         (sprintf "%d AND node(s) unreachable from any output" !dead));
  for o = 0 to Aig.num_outputs a - 1 do
    if Aig.lit_node (Aig.output a o) = 0 then
      add
        (F.make F.Info ~rule:"constant-output" ~where:(sprintf "output %d" o)
           ~hint:""
           (sprintf "output is the constant %s"
              (if Aig.lit_phase (Aig.output a o) then "1" else "0")))
  done;
  F.normalize !findings

let blif_source text =
  F.normalize (List.map Finding.of_blif_diag (Lr_netlist.Blif.lint text))

type cone = {
  output : int;
  name : string;
  gates : int;
  inverters : int;
  depth : int;
  support : int;
  max_fanout : int;
}

let cones c =
  let n = N.num_nodes c in
  let depth = Array.make (max n 1) 0 in
  for node = 0 to n - 1 do
    depth.(node) <-
      (match N.gate c node with
      | N.Const _ | N.Input _ -> 0
      | N.Not a -> depth.(a)
      | g ->
          1 + List.fold_left (fun acc a -> max acc depth.(a)) 0 (N.fanins g))
  done;
  let fanout = N.fanout_counts c in
  List.init (N.num_outputs c) (fun o ->
      let root = N.output c o in
      let in_cone = N.reachable_from c [ root ] in
      let gates = ref 0 and inverters = ref 0 and support = ref 0 in
      let max_fanout = ref 0 in
      for node = 0 to n - 1 do
        if in_cone.(node) then begin
          max_fanout := max !max_fanout fanout.(node);
          match N.gate c node with
          | N.Const _ -> ()
          | N.Input _ -> incr support
          | N.Not _ -> incr inverters
          | _ -> incr gates
        end
      done;
      {
        output = o;
        name = (N.output_names c).(o);
        gates = !gates;
        inverters = !inverters;
        depth = depth.(root);
        support = !support;
        max_fanout = !max_fanout;
      })

let cone_json k =
  Json.Obj
    [
      ("output", Json.Int k.output);
      ("name", Json.String k.name);
      ("gates", Json.Int k.gates);
      ("inverters", Json.Int k.inverters);
      ("depth", Json.Int k.depth);
      ("support", Json.Int k.support);
      ("max_fanout", Json.Int k.max_fanout);
    ]
