(** Structural lint of circuits.

    Pure inspections — no SAT, no simulation — that flag defects a
    well-formed learned circuit should never exhibit: dead logic, double
    inversions, constant-foldable gates, structural duplicates, broken
    topological order (a combinational cycle smuggled past the builder),
    constant outputs. The {!Netlist.Builder} strashes and folds, so on
    builder-made circuits these fire only when something upstream went
    wrong; on parsed third-party files they are genuine file quality
    diagnostics.

    [lr_lint] prints these; [Config.check_level >= Structural] runs
    {!netlist} on the final learned circuit and fails the run on any
    {!Finding.Error}. *)

val netlist : Lr_netlist.Netlist.t -> Finding.t list
(** Rules: [cycle] (topological-order violation, Error), [dead-logic]
    (unreachable gates, Warning), [double-inverter], [constant-foldable],
    [duplicate-gate] (commutation-aware, Warning each), and
    [constant-output] (Info). *)

val aig : Lr_aig.Aig.t -> Finding.t list
(** Rules: [cycle] (Error), [dead-logic] (Warning — fix with
    [Aig.compact]), [constant-output] (Info). *)

val blif_source : string -> Finding.t list
(** {!Lr_netlist.Blif.lint} adapted to findings — every problem in the
    file, not just the first error [Blif.read] would raise. *)

(** {2 Per-output cone statistics}

    Not defects, but the numbers a reviewer wants next to them. *)

type cone = {
  output : int;
  name : string;
  gates : int;  (** 2-input gates in the cone (the contest size metric) *)
  inverters : int;
  depth : int;  (** longest PI-to-output path counting 2-input gates *)
  support : int;  (** primary inputs the cone reaches *)
  max_fanout : int;  (** largest whole-network fanout of any cone node *)
}

val cones : Lr_netlist.Netlist.t -> cone list
(** One entry per primary output, in output order. *)

val cone_json : cone -> Lr_instr.Json.t
