(** Lint findings: one defect or observation about a circuit.

    The common currency of the {!Lint} pass, the BLIF/AIGER source
    detectors and the [lr_lint] tool: every check produces a list of
    findings, each carrying a severity, a stable rule id, a location
    string, and a suggested fix. *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  rule : string;  (** stable kebab-case rule id, e.g. ["cycle"], ["dead-logic"] *)
  where : string;  (** location: ["line 5"], ["node 12"], ["output f0"], or [""] *)
  message : string;
  hint : string;  (** suggested fix; may be [""] *)
}

val make : severity -> rule:string -> where:string -> hint:string -> string -> t

val severity_string : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val to_string : t -> string
(** One human-readable line: [severity[rule] where: message (fix: hint)]. *)

val json : t -> Lr_instr.Json.t
(** Object with keys [severity], [rule], [where], [message], [hint]. *)

val count : severity -> t list -> int

val errors : t list -> t list
(** Findings with severity {!Error}. *)

val natural_compare : string -> string -> int
(** Lexicographic, but runs of digits compare numerically: ["node 2"]
    sorts before ["node 12"]. *)

val compare : t -> t -> int
(** Total order: location ({!natural_compare}), then rule id, then
    severity (errors first), then message and hint. *)

val normalize : t list -> t list
(** Sort under {!compare} and drop exact duplicates — the canonical
    order of every finding list the tools emit, so reports and cram
    expectations never depend on discovery order. *)

val of_blif_diag : Lr_netlist.Blif.diag -> t
(** Adapt a BLIF source diagnostic: [rule] is ["blif-source"], [where]
    the 1-based source line (and offending signal, when known). *)
