(** Semantic self-checks for the checked pipeline mode.

    With [Config.check_level = Full] the learner verifies every
    function-preserving step against its input — exhaustively where the
    domain is small (conquered truth tables), and by random-simulation
    prefilter plus SAT everywhere else (minimized covers, AIG
    optimization passes). A failed check raises {!Check_failed}
    immediately, carrying the stage name, the offending output and a
    concrete counterexample input — the bug report an optimization bug
    deserves, at the moment it happens.

    All entry points run inside an {!Lr_instr} span ([check.table],
    [check.cover], [check.cec], [check.cec-aig]) and bump the
    [check.verified] / [check.failed] counters, so checking overhead is
    visible in traces and run reports.

    Every entry point takes [?kernel] (default [true]): simulation runs on
    the {!Lr_kernel.Soa} engine and SAT decisions go through the
    {!Lr_kernel.Portfolio} racer, both bit-identical to the legacy path;
    [?pool] shortens hard SAT queries' wall-clock only. *)

exception
  Check_failed of {
    stage : string;  (** e.g. ["aig.rewrite"], ["cover-min"] *)
    output : int;  (** offending primary output; [-1] if not localised *)
    cex : Lr_bitvec.Bv.t;  (** primary-input assignment exposing the bug *)
    detail : string;
  }

val message : stage:string -> output:int -> cex:Lr_bitvec.Bv.t -> detail:string -> string
(** The one-line rendering used both by the exception printer and the
    CLI error path. *)

val verify_netlists :
  stage:string ->
  ?rng:Lr_bitvec.Rng.t ->
  ?kernel:bool ->
  ?pool:Lr_par.Par.pool ->
  Lr_netlist.Netlist.t ->
  Lr_netlist.Netlist.t ->
  unit
(** [verify_netlists ~stage before after] proves the two circuits
    equivalent ({!Lr_aig.Equiv.check}); on a counterexample, recovers the
    first differing output and raises. *)

val verify_aigs :
  stage:string ->
  ?rng:Lr_bitvec.Rng.t ->
  ?kernel:bool ->
  ?pool:Lr_par.Par.pool ->
  Lr_aig.Aig.t ->
  Lr_aig.Aig.t ->
  unit
(** Same for two AIGs — the [Opt.compress ~verify] hook. *)

val verify_table :
  stage:string ->
  ?kernel:bool ->
  circuit:Lr_netlist.Netlist.t ->
  output:int ->
  bits:int ->
  to_full:(int -> Lr_bitvec.Bv.t) ->
  expected:(int -> bool) ->
  unit ->
  unit
(** Exhaustively re-simulate a conquered cone: for every table index
    [m < 2^bits], the circuit's [output] on the full input assignment
    [to_full m] must equal [expected m]. Complete — no sampling, no
    SAT — and word-parallel, so 2^18 entries cost ~4k simulations. *)

val verify_cover :
  stage:string ->
  ?rng:Lr_bitvec.Rng.t ->
  ?kernel:bool ->
  ?pool:Lr_par.Par.pool ->
  circuit:Lr_netlist.Netlist.t ->
  output:int ->
  vars:Lr_netlist.Netlist.node array ->
  cover:Lr_cube.Cover.t ->
  complemented:bool ->
  unit ->
  unit
(** Prove that [output]'s cone equals the minimized [cover] evaluated
    over the functions at [vars] (complemented when the off-set was
    synthesised). Builds a PI-level miter AIG, tries 1024 random
    patterns, then decides with SAT ({!Lr_aig.Equiv.sat_assignment}). *)
