module Json = Lr_instr.Json

type severity = Error | Warning | Info

type t = {
  severity : severity;
  rule : string;
  where : string;
  message : string;
  hint : string;
}

let make severity ~rule ~where ~hint message =
  { severity; rule; where; message; hint }

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let to_string f =
  let loc = if f.where = "" then "" else f.where ^ ": " in
  let fix = if f.hint = "" then "" else Printf.sprintf " (fix: %s)" f.hint in
  Printf.sprintf "%s[%s] %s%s%s" (severity_string f.severity) f.rule loc
    f.message fix

let json f =
  Json.Obj
    [
      ("severity", Json.String (severity_string f.severity));
      ("rule", Json.String f.rule);
      ("where", Json.String f.where);
      ("message", Json.String f.message);
      ("hint", Json.String f.hint);
    ]

let count sev l = List.length (List.filter (fun f -> f.severity = sev) l)
let errors l = List.filter (fun f -> f.severity = Error) l

let of_blif_diag (d : Lr_netlist.Blif.diag) =
  let severity =
    match d.severity with
    | Lr_netlist.Blif.Error -> Error
    | Lr_netlist.Blif.Warning -> Warning
  in
  let where =
    match (d.line, d.signal) with
    | 0, "" -> ""
    | 0, s -> s
    | n, "" -> Printf.sprintf "line %d" n
    | n, s -> Printf.sprintf "line %d (%s)" n s
  in
  { severity; rule = "blif-source"; where; message = d.message; hint = d.hint }
