module Json = Lr_instr.Json

type severity = Error | Warning | Info

type t = {
  severity : severity;
  rule : string;
  where : string;
  message : string;
  hint : string;
}

let make severity ~rule ~where ~hint message =
  { severity; rule; where; message; hint }

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let to_string f =
  let loc = if f.where = "" then "" else f.where ^ ": " in
  let fix = if f.hint = "" then "" else Printf.sprintf " (fix: %s)" f.hint in
  Printf.sprintf "%s[%s] %s%s%s" (severity_string f.severity) f.rule loc
    f.message fix

let json f =
  Json.Obj
    [
      ("severity", Json.String (severity_string f.severity));
      ("rule", Json.String f.rule);
      ("where", Json.String f.where);
      ("message", Json.String f.message);
      ("hint", Json.String f.hint);
    ]

let count sev l = List.length (List.filter (fun f -> f.severity = sev) l)
let errors l = List.filter (fun f -> f.severity = Error) l

(* compare strings with embedded numbers numerically, so "node 2" sorts
   before "node 12" and "line 8" before "line 10" *)
let natural_compare a b =
  let la = String.length a and lb = String.length b in
  let is_digit ch = ch >= '0' && ch <= '9' in
  let digit_run s i =
    let l = String.length s in
    let j = ref i in
    while !j < l && is_digit s.[!j] do
      incr j
    done;
    !j
  in
  let rec go i j =
    if i >= la && j >= lb then 0
    else if i >= la then -1
    else if j >= lb then 1
    else if is_digit a.[i] && is_digit b.[j] then begin
      let i' = digit_run a i and j' = digit_run b j in
      let na = int_of_string (String.sub a i (i' - i)) in
      let nb = int_of_string (String.sub b j (j' - j)) in
      if na <> nb then compare na nb else go i' j'
    end
    else if a.[i] <> b.[j] then Char.compare a.[i] b.[j]
    else go (i + 1) (j + 1)
  in
  go 0 0

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare f g =
  let c = natural_compare f.where g.where in
  if c <> 0 then c
  else
    let c = String.compare f.rule g.rule in
    if c <> 0 then c
    else
      let c = Int.compare (severity_rank f.severity) (severity_rank g.severity) in
      if c <> 0 then c
      else
        let c = String.compare f.message g.message in
        if c <> 0 then c else String.compare f.hint g.hint

let normalize l = List.sort_uniq compare l

let of_blif_diag (d : Lr_netlist.Blif.diag) =
  let severity =
    match d.severity with
    | Lr_netlist.Blif.Error -> Error
    | Lr_netlist.Blif.Warning -> Warning
  in
  let where =
    match (d.line, d.signal) with
    | 0, "" -> ""
    | 0, s -> s
    | n, "" -> Printf.sprintf "line %d" n
    | n, s -> Printf.sprintf "line %d (%s)" n s
  in
  { severity; rule = "blif-source"; where; message = d.message; hint = d.hint }
