module Bv = Lr_bitvec.Bv
module N = Lr_netlist.Netlist
module Instr = Lr_instr.Instr

(* Opcode byte layout: low 4 bits select the operation, bit 4 complements
   the first operand, bit 5 the second. Complement flags let an AIG import
   stay one node per AND with the literal phases folded into the opcode. *)
let op_const0 = 0
let op_const1 = 1
let op_input = 2
let op_not = 3
let op_and = 4
let op_or = 5
let op_xor = 6
let op_nand = 7
let op_nor = 8
let op_xnor = 9
let flag_neg0 = 0x10
let flag_neg1 = 0x20

type t = {
  nn : int;
  ni : int;
  no : int;
  op : Bytes.t;
  arg0 : int array;
  arg1 : int array;
  sched : int array;  (* level-major evaluation order *)
  level_off : int array;  (* batch boundaries into [sched] *)
  outputs : int array;  (* node per primary output *)
  out_neg : bool array;
  readers : int list array;  (* per input index: nodes reading it, ascending *)
}

let num_nodes t = t.nn
let num_inputs t = t.ni
let num_outputs t = t.no
let num_levels t = Array.length t.level_off - 1
let schedule t = t.sched
let level_offsets t = t.level_off
let input_readers t i = t.readers.(i)
let arg0 t n = t.arg0.(n)
let arg1 t n = t.arg1.(n)

let opcode t n = Char.code (Bytes.get t.op n)
let depends_on_arg0 t n = opcode t n land 0xf >= op_not
let depends_on_arg1 t n = opcode t n land 0xf >= op_and

(* ---------------- construction ---------------- *)

let finish ~ni ~no ~op ~arg0 ~arg1 ~outputs ~out_neg =
  let nn = Bytes.length op in
  (* longest-path levels; fanins always point at earlier node ids, so one
     ascending pass suffices *)
  let level = Array.make nn 0 in
  let max_level = ref 0 in
  for n = 0 to nn - 1 do
    let c = Char.code (Bytes.get op n) land 0xf in
    let l =
      if c < op_not then 0
      else if c = op_not then 1 + level.(arg0.(n))
      else 1 + max level.(arg0.(n)) level.(arg1.(n))
    in
    level.(n) <- l;
    if l > !max_level then max_level := l
  done;
  (* stable counting sort by level: batches in level order, ascending node
     id within a batch *)
  let nlevels = !max_level + 1 in
  let counts = Array.make (nlevels + 1) 0 in
  for n = 0 to nn - 1 do
    counts.(level.(n) + 1) <- counts.(level.(n) + 1) + 1
  done;
  for l = 1 to nlevels do
    counts.(l) <- counts.(l) + counts.(l - 1)
  done;
  let level_off = Array.copy counts in
  let sched = Array.make nn 0 in
  let cursor = Array.copy counts in
  for n = 0 to nn - 1 do
    sched.(cursor.(level.(n))) <- n;
    cursor.(level.(n)) <- cursor.(level.(n)) + 1
  done;
  let readers = Array.make ni [] in
  for n = nn - 1 downto 0 do
    if Char.code (Bytes.get op n) land 0xf = op_input then
      readers.(arg0.(n)) <- n :: readers.(arg0.(n))
  done;
  { nn; ni; no; op; arg0; arg1; sched; level_off; outputs; out_neg; readers }

let of_netlist c =
  let nn = N.num_nodes c in
  let ni = N.num_inputs c in
  let no = N.num_outputs c in
  let op = Bytes.make nn '\000' in
  let arg0 = Array.make nn 0 in
  let arg1 = Array.make nn 0 in
  for n = 0 to nn - 1 do
    let code, a, b =
      match N.gate c n with
      | N.Const false -> op_const0, 0, 0
      | N.Const true -> op_const1, 0, 0
      | N.Input i -> op_input, i, 0
      | N.Not a -> op_not, a, 0
      | N.And2 (a, b) -> op_and, a, b
      | N.Or2 (a, b) -> op_or, a, b
      | N.Xor2 (a, b) -> op_xor, a, b
      | N.Nand2 (a, b) -> op_nand, a, b
      | N.Nor2 (a, b) -> op_nor, a, b
      | N.Xnor2 (a, b) -> op_xnor, a, b
    in
    Bytes.set op n (Char.chr code);
    arg0.(n) <- a;
    arg1.(n) <- b
  done;
  let outputs = Array.init no (N.output c) in
  finish ~ni ~no ~op ~arg0 ~arg1 ~outputs ~out_neg:(Array.make no false)

let of_ands ~num_inputs:ni ~num_outputs:no ~ands ~outputs =
  let nn = 1 + ni + Array.length ands in
  let op = Bytes.make nn (Char.chr op_const0) in
  let arg0 = Array.make nn 0 in
  let arg1 = Array.make nn 0 in
  for i = 0 to ni - 1 do
    Bytes.set op (1 + i) (Char.chr op_input);
    arg0.(1 + i) <- i
  done;
  Array.iteri
    (fun k (l0, l1) ->
      let n = 1 + ni + k in
      let code =
        op_and
        lor (if l0 land 1 = 1 then flag_neg0 else 0)
        lor if l1 land 1 = 1 then flag_neg1 else 0
      in
      Bytes.set op n (Char.chr code);
      arg0.(n) <- l0 lsr 1;
      arg1.(n) <- l1 lsr 1)
    ands;
  let out_nodes = Array.map (fun l -> l lsr 1) outputs in
  let out_neg = Array.map (fun l -> l land 1 = 1) outputs in
  finish ~ni ~no ~op ~arg0 ~arg1 ~outputs:out_nodes ~out_neg

(* ---------------- cones ---------------- *)

let fanout_cone t seeds =
  let cone = Array.make t.nn false in
  List.iter
    (fun n ->
      if n < 0 || n >= t.nn then invalid_arg "Soa.fanout_cone: bad node";
      cone.(n) <- true)
    seeds;
  (* one pass in schedule order: fanins live in earlier batches *)
  Array.iter
    (fun n ->
      if not cone.(n) then
        if
          (depends_on_arg0 t n && cone.(t.arg0.(n)))
          || (depends_on_arg1 t n && cone.(t.arg1.(n)))
        then cone.(n) <- true)
    t.sched;
  cone

(* ---------------- simulation ---------------- *)

let eval_into t v words =
  let sched = t.sched and op = t.op and a0 = t.arg0 and a1 = t.arg1 in
  for k = 0 to Array.length sched - 1 do
    let n = Array.unsafe_get sched k in
    let c = Char.code (Bytes.unsafe_get op n) in
    let w =
      if c land 0xf < op_and then
        match c land 0xf with
        | 0 -> 0L
        | 1 -> -1L
        | 2 -> Array.unsafe_get words (Array.unsafe_get a0 n)
        | _ -> Int64.lognot (Array.unsafe_get v (Array.unsafe_get a0 n))
      else begin
        let x = Array.unsafe_get v (Array.unsafe_get a0 n) in
        let x = if c land flag_neg0 <> 0 then Int64.lognot x else x in
        let y = Array.unsafe_get v (Array.unsafe_get a1 n) in
        let y = if c land flag_neg1 <> 0 then Int64.lognot y else y in
        match c land 0xf with
        | 4 -> Int64.logand x y
        | 5 -> Int64.logor x y
        | 6 -> Int64.logxor x y
        | 7 -> Int64.lognot (Int64.logand x y)
        | 8 -> Int64.lognot (Int64.logor x y)
        | _ -> Int64.lognot (Int64.logxor x y)
      end
    in
    Array.unsafe_set v n w
  done

(* Several 64-pattern blocks per pass over the schedule: [v] is node-major
   with stride [width], [words] input-major with the same stride. One
   opcode dispatch then serves [width] words of work. *)
let eval_wide_into t v words ~width =
  let sched = t.sched and op = t.op and a0 = t.arg0 and a1 = t.arg1 in
  for k = 0 to Array.length sched - 1 do
    let n = Array.unsafe_get sched k in
    let c = Char.code (Bytes.unsafe_get op n) in
    let base = n * width in
    let code = c land 0xf in
    if code < op_and then
      match code with
      | 0 ->
          for w = 0 to width - 1 do
            Array.unsafe_set v (base + w) 0L
          done
      | 1 ->
          for w = 0 to width - 1 do
            Array.unsafe_set v (base + w) (-1L)
          done
      | 2 ->
          let src = Array.unsafe_get a0 n * width in
          for w = 0 to width - 1 do
            Array.unsafe_set v (base + w) (Array.unsafe_get words (src + w))
          done
      | _ ->
          let src = Array.unsafe_get a0 n * width in
          for w = 0 to width - 1 do
            Array.unsafe_set v (base + w)
              (Int64.lognot (Array.unsafe_get v (src + w)))
          done
    else begin
      let s0 = Array.unsafe_get a0 n * width in
      let s1 = Array.unsafe_get a1 n * width in
      let n0 = c land flag_neg0 <> 0 and n1 = c land flag_neg1 <> 0 in
      for w = 0 to width - 1 do
        let x = Array.unsafe_get v (s0 + w) in
        let x = if n0 then Int64.lognot x else x in
        let y = Array.unsafe_get v (s1 + w) in
        let y = if n1 then Int64.lognot y else y in
        Array.unsafe_set v (base + w)
          (match code with
          | 4 -> Int64.logand x y
          | 5 -> Int64.logor x y
          | 6 -> Int64.logxor x y
          | 7 -> Int64.lognot (Int64.logand x y)
          | 8 -> Int64.lognot (Int64.logor x y)
          | _ -> Int64.lognot (Int64.logxor x y))
      done
    end
  done

(* Evaluate one node against live value/input arrays — the incremental
   engine's per-node step; semantics identical to [eval_into]'s body. *)
let eval_node t v words n =
  let c = Char.code (Bytes.get t.op n) in
  if c land 0xf < op_and then
    match c land 0xf with
    | 0 -> 0L
    | 1 -> -1L
    | 2 -> words.(t.arg0.(n))
    | _ -> Int64.lognot v.(t.arg0.(n))
  else begin
    let x = v.(t.arg0.(n)) in
    let x = if c land flag_neg0 <> 0 then Int64.lognot x else x in
    let y = v.(t.arg1.(n)) in
    let y = if c land flag_neg1 <> 0 then Int64.lognot y else y in
    match c land 0xf with
    | 4 -> Int64.logand x y
    | 5 -> Int64.logor x y
    | 6 -> Int64.logxor x y
    | 7 -> Int64.lognot (Int64.logand x y)
    | 8 -> Int64.lognot (Int64.logor x y)
    | _ -> Int64.lognot (Int64.logxor x y)
  end

let node_values t words =
  if Array.length words <> t.ni then
    invalid_arg "Soa.node_values: wrong input count";
  let v = Array.make (max 1 t.nn) 0L in
  eval_into t v words;
  v

let outputs_of_values t v =
  Array.init t.no (fun o ->
      let w = v.(t.outputs.(o)) in
      if t.out_neg.(o) then Int64.lognot w else w)

let eval_words t words =
  if Array.length words <> t.ni then
    invalid_arg "Soa.eval_words: wrong number of input words";
  Instr.count "sim.gate-words" t.nn;
  let v = Array.make (max 1 t.nn) 0L in
  eval_into t v words;
  outputs_of_values t v

(* Up to this many 64-pattern blocks share one pass over the schedule. *)
let max_width = 8

let eval_many t patterns =
  let np = Array.length patterns in
  Instr.count "sim.patterns" np;
  let nblocks = (np + 63) / 64 in
  if nblocks > 0 then Instr.count "sim.gate-words" (t.nn * nblocks);
  let results = Array.init np (fun _ -> Bv.create t.no) in
  let v = Array.make (max 1 (t.nn * max_width)) 0L in
  let words = Array.make (max 1 (t.ni * max_width)) 0L in
  let block = ref 0 in
  while !block < nblocks do
    let width = min max_width (nblocks - !block) in
    let base_pat = !block * 64 in
    for i = 0 to t.ni - 1 do
      for w = 0 to width - 1 do
        let base = base_pat + (w * 64) in
        let cnt = min 64 (np - base) in
        let word = ref 0L in
        for k = 0 to cnt - 1 do
          if Bv.get patterns.(base + k) i then
            word := Int64.logor !word (Int64.shift_left 1L k)
        done;
        words.((i * width) + w) <- !word
      done
    done;
    eval_wide_into t v words ~width;
    for o = 0 to t.no - 1 do
      let src = t.outputs.(o) * width in
      let neg = t.out_neg.(o) in
      for w = 0 to width - 1 do
        let base = base_pat + (w * 64) in
        let cnt = min 64 (np - base) in
        let word = v.(src + w) in
        let word = if neg then Int64.lognot word else word in
        for k = 0 to cnt - 1 do
          Bv.set results.(base + k) o
            (Int64.logand (Int64.shift_right_logical word k) 1L = 1L)
        done
      done
    done;
    block := !block + width
  done;
  results
