(** Incremental re-simulation with dirty-cone tracking.

    Holds the node values of one 64-pattern block for a compiled {!Soa}
    circuit and re-simulates only the transitive fanout cone of whatever
    changed — an input word, or a node forced to a hypothetical value (the
    sweep's ODC verification probe). The recomputed set is exactly the
    fanout cone of the seeds, never more (the minimality test in
    [test/test_kernel.ml] pins the set down node for node), and the values
    after any sequence of operations are bit-identical to a full
    re-simulation from scratch. *)

type t

val create : Soa.t -> t
(** Fresh engine; all inputs start at zero words. *)

val circuit : t -> Soa.t

val load : t -> int64 array -> unit
(** Set every input word and fully re-simulate. *)

val set_input : t -> int -> int64 -> unit
(** Change one input word and re-simulate its cone. *)

val values : t -> int64 array
(** The current node values — a live view, do not mutate. *)

val outputs : t -> int64 array
(** Output words projected from the current values. *)

val last_resim : t -> int list
(** The nodes the last {!set_input} / {!with_forced} recomputed, in
    schedule order ({!load} resets it to the full schedule). *)

val with_forced : t -> node:int -> int64 -> (t -> 'a) -> 'a
(** [with_forced t ~node w f] — hypothetically pin [node]'s value to [w],
    re-simulate its fanout cone (the node itself keeps the forced word),
    run [f], then restore every touched value. During [f],
    {!last_resim} lists the recomputed cone (the forced node excluded). *)
