module Sat = Lr_sat.Sat
module Par = Lr_par.Par
module Instr = Lr_instr.Instr

type racer = { solver : Sat.t; assumptions : int list }

let secondary_configs =
  [|
    {
      Sat.var_decay = 0.85;
      restart_first = 50;
      restart_inflate = (2, 1);
      default_polarity = true;
    };
    {
      Sat.var_decay = 0.99;
      restart_first = 200;
      restart_inflate = (3, 2);
      default_polarity = false;
    };
  |]

let race ?pool ?(first_budget = 10_000) ?(round_budget = 2_000) ~primary
    ~secondaries () =
  let pb = Sat.budget primary.solver in
  let step_primary () =
    Sat.solve_limited ~assumptions:primary.assumptions ~budget:pb
      ~max_conflicts:round_budget primary.solver
  in
  match
    Sat.solve_limited ~assumptions:primary.assumptions ~budget:pb
      ~max_conflicts:first_budget primary.solver
  with
  | Some r -> r
  | None ->
      (* the query is hard: build the diversified racers and run budget
         rounds, resolving in index order *)
      Instr.count "kernel.portfolio-races" 1;
      let secs =
        Array.of_list
          (List.map
             (fun mk ->
               let r = mk () in
               (r, Sat.budget r.solver))
             secondaries)
      in
      let nsec = Array.length secs in
      let alive = Array.make nsec true in
      let step_sec i =
        let r, b = secs.(i) in
        Sat.solve_limited ~assumptions:r.assumptions ~budget:b
          ~max_conflicts:round_budget r.solver
      in
      let sat_seen = ref false in
      let result = ref None in
      while !result = None do
        let outcomes =
          match pool with
          | Some pool when Par.jobs pool > 1 && not !sat_seen ->
              (* one round in parallel: every racer steps its own solver;
                 speculative secondary work past a deciding lower index is
                 discarded, so the schedule cannot leak into the result *)
              Par.map pool
                (fun i ->
                  if i = 0 then step_primary ()
                  else if alive.(i - 1) then step_sec (i - 1)
                  else None)
                (Array.init (nsec + 1) Fun.id)
          | _ ->
              (* sequential round, index order, stop at the first decision
                 — identical resolution, only the wall-clock differs *)
              let out = Array.make (nsec + 1) None in
              out.(0) <- step_primary ();
              if out.(0) = None && not !sat_seen then begin
                let i = ref 0 in
                let decided = ref false in
                while (not !decided) && !i < nsec do
                  if alive.(!i) then begin
                    out.(!i + 1) <- step_sec !i;
                    match out.(!i + 1) with
                    | Some Sat.Unsat -> decided := true
                    | Some Sat.Sat -> decided := true
                    | None -> ()
                  end;
                  incr i
                done
              end;
              out
        in
        (match outcomes.(0) with
        | Some r -> result := Some r
        | None -> ());
        if !result = None && not !sat_seen then begin
          let i = ref 0 in
          while !result = None && (not !sat_seen) && !i < nsec do
            (if alive.(!i) then
               match outcomes.(!i + 1) with
               | Some Sat.Unsat ->
                   (* no model involved: by soundness this is the verdict
                      the primary would reach — short-circuit *)
                   Instr.count "kernel.portfolio-unsat-wins" 1;
                   result := Some Sat.Unsat
               | Some Sat.Sat ->
                   (* never surface a secondary model: remember the verdict
                      is Sat and let the primary finish on its own
                      trajectory *)
                   sat_seen := true;
                   alive.(!i) <- false
               | None -> ());
            incr i
          done
        end
      done;
      match !result with Some r -> r | None -> assert false
