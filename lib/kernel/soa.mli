(** Structure-of-arrays circuit simulation kernel.

    A compiled, cache-friendly form of a combinational circuit: one flat
    opcode byte per node (with operand-complement flags), flat [int array]
    fanins, and a topologically batched evaluation schedule. Simulation
    walks the schedule with word-parallel (64 patterns/word) operations and
    no per-node allocation — the tree-walking evaluators in [Lr_netlist]
    and [Lr_aig] remain the reference semantics, and every entry point here
    is bit-identical to them (the differential properties in [test/prop.ml]
    pin this down).

    Node ids are preserved by {!of_netlist} (node [n] here is node [n] of
    the source netlist), which is what lets the incremental engine and the
    sweep's ODC verification exchange node sets with the netlist layer. *)

type t

val of_netlist : Lr_netlist.Netlist.t -> t
(** Compile a netlist. Bit-identical node semantics to
    [Netlist.eval_words], including unreachable nodes. *)

val of_ands :
  num_inputs:int ->
  num_outputs:int ->
  ands:(int * int) array ->
  outputs:int array ->
  t
(** Compile an AIG given in literal form: node 0 is constant false, nodes
    [1..num_inputs] the inputs, node [num_inputs+1+k] the AND over the two
    literals [ands.(k)] (literal = [2*node + phase]); [outputs] are
    literals. Matches [Aig.simulate_nodes] semantics exactly. *)

val num_nodes : t -> int
val num_inputs : t -> int
val num_outputs : t -> int

val num_levels : t -> int
(** Depth of the topological batching: constants and inputs are level 0,
    a gate is one past its deepest fanin. *)

val schedule : t -> int array
(** The evaluation order: a permutation of all nodes, level-major
    (every batch's fanins live in strictly earlier batches). *)

val level_offsets : t -> int array
(** [num_levels + 1] offsets into {!schedule} delimiting the batches. *)

val input_readers : t -> int -> int list
(** The nodes that read primary input [i], ascending. *)

val depends_on_arg0 : t -> int -> bool
val depends_on_arg1 : t -> int -> bool
(** Whether the node's opcode reads the first / second fanin slot as a
    node value (constants read neither; inputs read neither — their slot
    holds the input index). *)

val arg0 : t -> int -> int
val arg1 : t -> int -> int

val fanout_cone : t -> int list -> bool array
(** Transitive fanout of the seed nodes, seeds included — the set a value
    change at the seeds can reach. *)

val eval_node : t -> int64 array -> int64 array -> int -> int64
(** [eval_node t vals words n] — the value of node [n] given live node
    values and input words; the incremental engine's per-node step. *)

val eval_into : t -> int64 array -> int64 array -> unit
(** [eval_into t vals words] — simulate one 64-pattern block into the
    caller-owned [vals] (length {!num_nodes}); [words] has one word per
    input. No allocation. *)

val node_values : t -> int64 array -> int64 array
(** One word per node for one block — bit-identical to
    [Aig.simulate_nodes] / the netlist evaluators' internal value array. *)

val outputs_of_values : t -> int64 array -> int64 array
(** Project output words (with output complement flags applied) from a
    node-value array. *)

val eval_words : t -> int64 array -> int64 array
(** Drop-in for [Netlist.eval_words]: same output words, same
    ["sim.gate-words"] accounting. *)

val eval_many : t -> Lr_bitvec.Bv.t array -> Lr_bitvec.Bv.t array
(** Drop-in for [Netlist.eval_many]: same results, same ["sim.patterns"]
    accounting. Internally simulates several 64-pattern blocks per pass
    over the schedule (wide blocks), which is where the cache win lives. *)
