(** Deterministic SAT portfolio racing.

    Races a primary solver against diversified secondary configurations in
    fixed-size budget rounds, resolving each round's outcomes in index
    order (primary first, then secondaries in sequence). The contract that
    makes the portfolio safe to wire under existing call sites:

    - the answer is {e always} the one the primary solver alone would
      produce: the primary is stepped with {!Lr_sat.Sat.solve_limited}'s
      exact-resumption budgets, so when it answers, verdict and model are
      byte-identical to a single unbounded [solve]; a secondary can only
      short-circuit with [Unsat] (which carries no model and, by
      soundness, is the verdict the primary would eventually reach) — a
      secondary [Sat] is never surfaced, it merely stops that racer;
    - the outcome is a pure function of the per-config solver
      trajectories: racing on a {!Lr_par} pool only changes wall-clock,
      never the result, so [--jobs N] stays bit-identical to [--jobs 1];
    - secondaries engage only after the primary has burned [first_budget]
      conflicts on the query, so cheap queries never pay for the race.

    The determinism leg in [test/test_kernel.ml] checks verdicts {e and}
    counterexamples against a lone single-config solver across seeds and
    pool sizes. *)

type racer = { solver : Lr_sat.Sat.t; assumptions : int list }

val secondary_configs : Lr_sat.Sat.config array
(** The diversified configurations raced alongside the primary (faster
    decay + aggressive restarts + positive phase; slow decay + lazy
    restarts). *)

val race :
  ?pool:Lr_par.Par.pool ->
  ?first_budget:int ->
  ?round_budget:int ->
  primary:racer ->
  secondaries:(unit -> racer) list ->
  unit ->
  Lr_sat.Sat.result
(** Decide the primary's query. [secondaries] are built lazily, only if
    the primary exhausts [first_budget] (default 10_000 conflicts); each
    subsequent round steps every live racer by [round_budget] (default
    2_000) — concurrently when a multi-domain [pool] is given. On [Sat],
    read the model from [primary.solver]. *)
