module Instr = Lr_instr.Instr

type t = {
  soa : Soa.t;
  words : int64 array;  (* current input words *)
  vals : int64 array;  (* current node values *)
  mutable resim : int list;  (* last recompute set, schedule order *)
}

let circuit t = t.soa
let values t = t.vals
let last_resim t = List.rev t.resim

let outputs t = Soa.outputs_of_values t.soa t.vals

let load t words =
  if Array.length words <> Soa.num_inputs t.soa then
    invalid_arg "Incremental.load: wrong input count";
  Array.blit words 0 t.words 0 (Array.length words);
  Soa.eval_into t.soa t.vals t.words;
  t.resim <- List.rev (Array.to_list (Soa.schedule t.soa))

let create soa =
  let t =
    {
      soa;
      words = Array.make (Soa.num_inputs soa) 0L;
      vals = Array.make (max 1 (Soa.num_nodes soa)) 0L;
      resim = [];
    }
  in
  load t t.words;
  t

(* Recompute exactly the cone nodes, in schedule order; [skip] is a forced
   node whose value must be left alone. Returns the recomputed list in
   reverse schedule order. *)
let resim_cone t cone ~skip =
  let soa = t.soa and v = t.vals and words = t.words in
  let recomputed = ref [] in
  Array.iter
    (fun n ->
      if cone.(n) && n <> skip then begin
        v.(n) <- Soa.eval_node soa v words n;
        recomputed := n :: !recomputed
      end)
    (Soa.schedule soa);
  Instr.count "kernel.resim-nodes" (List.length !recomputed);
  !recomputed

let set_input t i w =
  if i < 0 || i >= Soa.num_inputs t.soa then
    invalid_arg "Incremental.set_input: bad input";
  t.words.(i) <- w;
  let seeds = Soa.input_readers t.soa i in
  let cone = Soa.fanout_cone t.soa seeds in
  t.resim <- resim_cone t cone ~skip:(-1)

let with_forced t ~node w f =
  if node < 0 || node >= Soa.num_nodes t.soa then
    invalid_arg "Incremental.with_forced: bad node";
  let cone = Soa.fanout_cone t.soa [ node ] in
  (* save every value the probe can touch, restore on the way out *)
  let touched = ref [] in
  Array.iter
    (fun n -> if cone.(n) then touched := (n, t.vals.(n)) :: !touched)
    (Soa.schedule t.soa);
  let saved_resim = t.resim in
  t.vals.(node) <- w;
  t.resim <- resim_cone t cone ~skip:node;
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (n, v) -> t.vals.(n) <- v) !touched;
      t.resim <- saved_resim)
    (fun () -> f t)
