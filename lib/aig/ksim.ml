module Soa = Lr_kernel.Soa

let soa_of_aig aig =
  let ni = Aig.num_inputs aig in
  let no = Aig.num_outputs aig in
  let ands =
    Array.init
      (Aig.num_nodes aig - ni - 1)
      (fun k -> Aig.fanins aig (ni + 1 + k))
  in
  let outputs = Array.init no (fun o -> Aig.output aig o) in
  Soa.of_ands ~num_inputs:ni ~num_outputs:no ~ands ~outputs
