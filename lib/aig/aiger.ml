(* ASCII AIGER. Literal encoding coincides with ours: 2*v (+1 when
   complemented), variable 0 the constant false, inputs 1..I. *)

let write ?comment aig =
  let buf = Buffer.create 4096 in
  let ni = Aig.num_inputs aig and no = Aig.num_outputs aig in
  let na = Aig.num_ands aig in
  Buffer.add_string buf
    (Printf.sprintf "aag %d %d 0 %d %d\n" (ni + na) ni no na);
  for i = 0 to ni - 1 do
    Buffer.add_string buf (Printf.sprintf "%d\n" (Aig.input_lit aig i))
  done;
  for o = 0 to no - 1 do
    Buffer.add_string buf (Printf.sprintf "%d\n" (Aig.output aig o))
  done;
  for node = ni + 1 to Aig.num_nodes aig - 1 do
    let l0, l1 = Aig.fanins aig node in
    Buffer.add_string buf (Printf.sprintf "%d %d %d\n" (2 * node) l0 l1)
  done;
  for i = 0 to ni - 1 do
    Buffer.add_string buf (Printf.sprintf "i%d i%d\n" i i)
  done;
  for o = 0 to no - 1 do
    Buffer.add_string buf (Printf.sprintf "o%d o%d\n" o o)
  done;
  (match comment with
  | Some c -> Buffer.add_string buf (Printf.sprintf "c\n%s\n" c)
  | None -> ());
  Buffer.contents buf

let fail fmt = Printf.ksprintf failwith fmt

let read text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | [] -> fail "Aiger.read: empty input"
  | header :: rest -> (
      let ints_of s =
        String.split_on_char ' ' s
        |> List.filter (fun w -> w <> "")
        |> List.map (fun w ->
               match int_of_string_opt w with
               | Some v -> v
               | None -> fail "Aiger.read: expected integer, got %S" w)
      in
      match String.split_on_char ' ' header with
      | "aag" :: _ -> (
          match ints_of (String.sub header 3 (String.length header - 3)) with
          | [ m; i; l; o; a ] ->
              if l <> 0 then fail "Aiger.read: latches unsupported";
              if m < i + a then
                fail
                  "Aiger.read: line 1: header bound %d below %d inputs + %d ANDs"
                  m i a;
              let rest = Array.of_list rest in
              (* body index k sits on source line k+2 (1-based, after the
                 header) *)
              let line k = k + 2 in
              let expect k =
                if k >= Array.length rest then
                  fail "Aiger.read: truncated at line %d" (line k);
                rest.(k)
              in
              (* input literal lines are implied by our encoding, but we
                 validate them *)
              for k = 0 to i - 1 do
                match ints_of (expect k) with
                | [ lit ] when lit = 2 * (k + 1) -> ()
                | _ ->
                    fail "Aiger.read: line %d: expected input literal %d"
                      (line k)
                      (2 * (k + 1))
              done;
              let outputs =
                Array.init o (fun k ->
                    match ints_of (expect (i + k)) with
                    | [ lit ] when lit >= 0 && lit / 2 <= m -> lit
                    | [ lit ] ->
                        fail "Aiger.read: line %d: output literal %d beyond bound %d"
                          (line (i + k))
                          lit m
                    | _ -> fail "Aiger.read: line %d: malformed output line"
                             (line (i + k)))
              in
              let aig = Aig.create ~num_inputs:i ~num_outputs:o in
              (* AND definitions must be in topological order (standard for
                 aag); map the file's literals to the strashed graph *)
              let map = Hashtbl.create 256 in
              Hashtbl.replace map 0 Aig.lit_false;
              for v = 1 to i do
                Hashtbl.replace map (2 * v) (Aig.input_lit aig (v - 1))
              done;
              let resolve ln lit =
                if lit < 0 || lit / 2 > m then
                  fail "Aiger.read: line %d: literal %d beyond bound %d" ln lit m;
                match Hashtbl.find_opt map (lit land lnot 1) with
                | Some base -> base lxor (lit land 1)
                | None ->
                    fail
                      "Aiger.read: line %d: literal %d used before its definition"
                      ln lit
              in
              for k = 0 to a - 1 do
                let ln = line (i + o + k) in
                match ints_of (expect (i + o + k)) with
                | [ lhs; r0; r1 ] when lhs land 1 = 0 ->
                    if lhs <= 2 * i then
                      fail
                        "Aiger.read: line %d: AND literal %d collides with an input or constant"
                        ln lhs;
                    if lhs / 2 > m then
                      fail "Aiger.read: line %d: AND literal %d beyond bound %d"
                        ln lhs m;
                    if Hashtbl.mem map lhs then
                      fail "Aiger.read: line %d: literal %d defined twice" ln lhs;
                    Hashtbl.add map lhs
                      (Aig.and_lit aig (resolve ln r0) (resolve ln r1))
                | _ -> fail "Aiger.read: line %d: malformed AND line" ln
              done;
              Array.iteri
                (fun k lit ->
                  Aig.set_output aig k (resolve (line (i + k)) lit))
                outputs;
              aig
          | _ -> fail "Aiger.read: malformed header")
      | "aig" :: _ -> fail "Aiger.read: binary aig not supported, use aag"
      | _ -> fail "Aiger.read: not an AIGER file")

let write_file ?comment aig path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write ?comment aig))

let read_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  read text
