module Cube = Lr_cube.Cube
module Cover = Lr_cube.Cover

(* ---------- cut enumeration ---------- *)

let union_cut a b =
  (* merge two sorted arrays, None if the union exceeds 4 leaves *)
  let la = Array.length a and lb = Array.length b in
  let out = Array.make 4 0 in
  let rec go i j k =
    if i = la && j = lb then Some (Array.sub out 0 k)
    else if k = 4 && (i < la || j < lb) then
      (* at capacity: only exact matches may remain *)
      if i < la && j < lb && a.(i) = b.(j) then None
      else None
    else if j = lb || (i < la && a.(i) < b.(j)) then begin
      out.(k) <- a.(i);
      go (i + 1) j (k + 1)
    end
    else if i = la || b.(j) < a.(i) then begin
      out.(k) <- b.(j);
      go i (j + 1) (k + 1)
    end
    else begin
      out.(k) <- a.(i);
      go (i + 1) (j + 1) (k + 1)
    end
  in
  if la + lb > 8 then None else go 0 0 0

let enumerate_cuts aig ~max_cuts =
  let n = Aig.num_nodes aig in
  let cuts = Array.make n [] in
  for i = 1 to Aig.num_inputs aig do
    cuts.(i) <- [ [| i |] ]
  done;
  for node = Aig.num_inputs aig + 1 to n - 1 do
    let l0, l1 = Aig.fanins aig node in
    let c0 = cuts.(Aig.lit_node l0) and c1 = cuts.(Aig.lit_node l1) in
    let merged =
      List.concat_map
        (fun a -> List.filter_map (fun b -> union_cut a b) c1)
        c0
    in
    let all = merged @ [ [| node |] ] in
    let dedup =
      List.sort_uniq compare all
      |> List.sort (fun a b -> compare (Array.length a) (Array.length b))
    in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    cuts.(node) <- take max_cuts dedup
  done;
  cuts

(* ---------- cut functions (16-bit truth tables) ---------- *)

let leaf_masks = [| 0xAAAA; 0xCCCC; 0xF0F0; 0xFF00 |]

let cut_truth aig cut root =
  let memo = Hashtbl.create 16 in
  Array.iteri (fun j leaf -> Hashtbl.replace memo leaf leaf_masks.(j)) cut;
  let rec ev node =
    match Hashtbl.find_opt memo node with
    | Some tt -> tt
    | None ->
        if not (Aig.is_and aig node) then 0 (* constant false / stray input *)
        else begin
          let l0, l1 = Aig.fanins aig node in
          let v l =
            let tt = ev (Aig.lit_node l) in
            if Aig.lit_phase l then lnot tt land 0xFFFF else tt
          in
          let tt = v l0 land v l1 in
          Hashtbl.replace memo node tt;
          tt
        end
  in
  ev root

(* ---------- ISOP resynthesis with global memoisation ---------- *)

(* The memo table is process-global: (k, tt) -> cover is a pure
   function, so sharing across runs is free wins. It must be
   mutex-guarded — the lr_serve daemon runs whole learn jobs on
   concurrent domains, and an unguarded Hashtbl.replace race corrupts
   the table. The lock is cheap next to the BDD work it guards. *)
let isop_cache : (int * int, Cover.t) Hashtbl.t = Hashtbl.create 1024
let isop_mu = Mutex.create ()

let isop_of_tt ~k tt =
  Mutex.lock isop_mu;
  let hit = Hashtbl.find_opt isop_cache (k, tt) in
  Mutex.unlock isop_mu;
  match hit with
  | Some c -> c
  | None ->
      let man = Lr_bdd.Bdd.man ~nvars:k in
      let f =
        Lr_bdd.Bdd.of_truth_table man ~vars:(Array.init k Fun.id) (fun m ->
            (tt lsr m) land 1 = 1)
      in
      let cover = Lr_bdd.Bdd.isop man f in
      Mutex.lock isop_mu;
      Hashtbl.replace isop_cache (k, tt) cover;
      Mutex.unlock isop_mu;
      cover

(* candidate implementations as small ASTs over output-graph literals *)
type expr = Lit of Aig.lit | Not of expr | And of expr * expr

let rec balanced_tree mk = function
  | [] -> invalid_arg "balanced_tree: empty"
  | [ x ] -> x
  | xs ->
      let rec pair acc = function
        | [] -> List.rev acc
        | [ x ] -> List.rev (x :: acc)
        | x :: y :: rest -> pair (mk x y :: acc) rest
      in
      balanced_tree mk (pair [] xs)

let expr_of_cover cover leaves =
  let cube_expr c =
    let lits =
      List.map
        (fun (v, ph) ->
          if ph then Lit leaves.(v) else Not (Lit leaves.(v)))
        (Cube.literals c)
    in
    match lits with [] -> None | _ -> Some (balanced_tree (fun a b -> And (a, b)) lits)
  in
  let cubes = List.filter_map cube_expr (Cover.cubes cover) in
  match cubes, Cover.cubes cover with
  | [], [] -> `Const false
  | [], _ -> `Const true (* a tautology cube was present *)
  | es, _ ->
      (* OR via De Morgan *)
      `Expr
        (Not (balanced_tree (fun a b -> And (a, b)) (List.map (fun e -> Not e) es)))

(* exact new-node count of building [e] into [out], without mutating it:
   virtual literals are negative encodings carved out below any real lit *)
let cost out e =
  (* virtual literal encoding: id k >= 1, positive phase = -(2k),
     complemented = -(2k+1); complementation toggles the low bit *)
  let next_virt = ref 1 in
  let local = Hashtbl.create 16 in
  let count = ref 0 in
  let neg l = if l >= 0 then Aig.not_lit l else -(-l lxor 1) in
  let rec go = function
    | Lit l -> l
    | Not e -> neg (go e)
    | And (a, b) ->
        let va = go a and vb = go b in
        let va, vb = if va <= vb then (va, vb) else (vb, va) in
        if va = Aig.lit_false || vb = Aig.lit_false then Aig.lit_false
        else if va = Aig.lit_true then vb
        else if vb = Aig.lit_true then va
        else if va = vb then va
        else if neg va = vb then Aig.lit_false
        else if va >= 0 && vb >= 0 then
          match Aig.lookup_and out va vb with
          | Some l -> l
          | None -> fresh va vb
        else fresh va vb
  and fresh va vb =
    match Hashtbl.find_opt local (va, vb) with
    | Some v -> v
    | None ->
        incr count;
        let v = -(2 * !next_virt) in
        incr next_virt;
        Hashtbl.replace local (va, vb) v;
        v
  in
  ignore (go e);
  !count

let rec build out = function
  | Lit l -> l
  | Not e -> Aig.not_lit (build out e)
  | And (a, b) -> Aig.and_lit out (build out a) (build out b)

(* ---------- the pass ---------- *)

let cut_rewrite ?(max_cuts = 8) aig =
  let n = Aig.num_nodes aig in
  let ni = Aig.num_inputs aig in
  let cuts = enumerate_cuts aig ~max_cuts in
  let out = Aig.create ~num_inputs:ni ~num_outputs:(Aig.num_outputs aig) in
  let map = Array.make n Aig.lit_false in
  for i = 0 to ni - 1 do
    map.(1 + i) <- Aig.input_lit out i
  done;
  let map_lit l = map.(Aig.lit_node l) lxor (l land 1) in
  for node = ni + 1 to n - 1 do
    let l0, l1 = Aig.fanins aig node in
    let d0 = map_lit l0 and d1 = map_lit l1 in
    match Aig.lookup_and out d0 d1 with
    | Some l -> map.(node) <- l (* structurally free *)
    | None ->
        (* candidates: the original structure (cost 1) vs per-cut ISOPs *)
        let default = (1, And (Lit d0, Lit d1)) in
        let candidates =
          List.filter_map
            (fun cut ->
              let k = Array.length cut in
              if k < 2 || (k = 1 && cut.(0) = node) || Array.exists (fun l -> l = 0) cut
              then None
              else begin
                let tt = cut_truth aig cut node land ((1 lsl (1 lsl k)) - 1) in
                let leaves = Array.map (fun leaf -> map.(leaf)) cut in
                let mk target wrap =
                  match expr_of_cover (isop_of_tt ~k target) leaves with
                  | `Const b ->
                      let l = if b then Aig.lit_true else Aig.lit_false in
                      Some (0, wrap (Lit l))
                  | `Expr e -> Some (cost out (wrap e), wrap e)
                in
                let pos = mk tt Fun.id in
                let negated =
                  mk (lnot tt land ((1 lsl (1 lsl k)) - 1)) (fun e -> Not e)
                in
                match pos, negated with
                | Some a, Some b -> Some (if fst a <= fst b then a else b)
                | Some a, None | None, Some a -> Some a
                | None, None -> None
              end)
            cuts.(node)
        in
        let best =
          List.fold_left
            (fun acc c -> if fst c < fst acc then c else acc)
            default candidates
        in
        map.(node) <- build out (snd best)
  done;
  for o = 0 to Aig.num_outputs aig - 1 do
    Aig.set_output out o (map_lit (Aig.output aig o))
  done;
  Aig.compact out
