module Rng = Lr_bitvec.Rng
module Sat = Lr_sat.Sat
module Instr = Lr_instr.Instr
module Soa = Lr_kernel.Soa
module Portfolio = Lr_kernel.Portfolio

(* Union-find over nodes with a phase bit relative to the parent.
   Roots are always the smallest node id of their class, so substituting a
   node by its root never creates a cycle. *)
module Uf = struct
  type t = { parent : int array; phase : bool array }

  let create n = { parent = Array.init n Fun.id; phase = Array.make n false }

  let rec find t n =
    if t.parent.(n) = n then n, false
    else begin
      let root, ph = find t t.parent.(n) in
      t.parent.(n) <- root;
      t.phase.(n) <- t.phase.(n) <> ph;
      root, t.phase.(n)
    end

  (* union [a] and [b] given that  a = b xor phase *)
  let union t a b phase =
    let ra, pa = find t a and rb, pb = find t b in
    if ra <> rb then begin
      let rel = pa <> pb <> phase in
      if ra < rb then begin
        t.parent.(rb) <- ra;
        t.phase.(rb) <- rel
      end
      else begin
        t.parent.(ra) <- rb;
        t.phase.(ra) <- rel
      end
    end
end

let cnf_of_aig aig solver =
  (* variable of node n is n+1; node 0 (constant false) pinned by a unit *)
  let n = Aig.num_nodes aig in
  for _ = 1 to n do
    ignore (Sat.new_var solver)
  done;
  Sat.add_clause solver [ -1 ];
  for node = Aig.num_inputs aig + 1 to n - 1 do
    let l0, l1 = Aig.fanins aig node in
    let dim l =
      let v = Aig.lit_node l + 1 in
      if Aig.lit_phase l then -v else v
    in
    let x = node + 1 and a = dim l0 and b = dim l1 in
    Sat.add_clause solver [ -x; a ];
    Sat.add_clause solver [ -x; b ];
    Sat.add_clause solver [ x; -a; -b ]
  done

let sweep ?(words = 16) ?(max_rounds = 64) ?(max_sat_checks = 5000)
    ?(kernel = true) ?pool ~rng aig =
  let n = Aig.num_nodes aig in
  let ni = Aig.num_inputs aig in
  let uf = Uf.create n in
  let solver = Sat.create () in
  cnf_of_aig aig solver;
  let miter_cache = Hashtbl.create 256 in
  let sat_checks = ref 0 in
  (* pattern blocks: each is one word per input *)
  let blocks = ref [] in
  for _ = 1 to words do
    blocks := Array.init ni (fun _ -> Rng.bits64 rng) :: !blocks
  done;
  (* The AIG is frozen for the whole sweep and blocks are only ever
     prepended, so in kernel mode node values are computed once per block
     and reused across refinement rounds; [sim_cache] stays aligned with
     the suffix of [!blocks] already simulated. *)
  let soa = if kernel then Some (Ksim.soa_of_aig aig) else None in
  let sim_cache = ref [] in
  let cached_len = ref 0 in
  let simulate_blocks () =
    match soa with
    | None -> List.map (fun blk -> Aig.simulate_nodes aig blk) !blocks
    | Some soa ->
        let total = List.length !blocks in
        let rec take k l =
          if k = 0 then []
          else match l with [] -> [] | x :: tl -> x :: take (k - 1) tl
        in
        let fresh =
          List.map (fun blk -> Soa.node_values soa blk)
            (take (total - !cached_len) !blocks)
        in
        Instr.count "kernel.sim-cached-words" (!cached_len * n);
        sim_cache := fresh @ !sim_cache;
        cached_len := total;
        !sim_cache
  in
  let refuted = Hashtbl.create 256 in
  let prove_equal a b phase =
    (* a = b xor phase ?  check SAT of a xor (b xor phase) *)
    incr sat_checks;
    let miter_var s =
      let t = Sat.new_var s in
      let va = a + 1 and vb = b + 1 in
      (* t <-> va xor vb *)
      Sat.add_clause s [ -t; va; vb ];
      Sat.add_clause s [ -t; -va; -vb ];
      Sat.add_clause s [ t; -va; vb ];
      Sat.add_clause s [ t; va; -vb ];
      t
    in
    let t =
      match Hashtbl.find_opt miter_cache (a, b) with
      | Some t -> t
      | None ->
          let t = miter_var solver in
          Hashtbl.replace miter_cache (a, b) t;
          t
    in
    (* if phase, equality means the miter is satisfied everywhere: check
       that t can be false; if not phase, check that t can be true *)
    let assumption = if phase then -t else t in
    let verdict =
      if kernel then
        (* the persistent class solver is the portfolio primary, so its
           trajectory — and every counterexample model — is exactly the
           single-solver one; fresh diversified racers can only
           short-circuit Unsat verdicts on hard queries *)
        let secondaries =
          Array.to_list
            (Array.map
               (fun config () ->
                 let s = Sat.create ~config () in
                 cnf_of_aig aig s;
                 let m = miter_var s in
                 {
                   Portfolio.solver = s;
                   assumptions = [ (if phase then -m else m) ];
                 })
               Portfolio.secondary_configs)
        in
        Portfolio.race ?pool
          ~primary:{ Portfolio.solver; assumptions = [ assumption ] }
          ~secondaries ()
      else Sat.solve ~assumptions:[ assumption ] solver
    in
    match verdict with
    | Sat.Unsat -> `Equal
    | Sat.Sat ->
        let cex = Array.make ni false in
        for i = 0 to ni - 1 do
          cex.(i) <- Sat.value solver (i + 2)
        done;
        `Counterexample cex
  in
  let round = ref 0 in
  let progress = ref true in
  while !progress && !round < max_rounds && !sat_checks < max_sat_checks do
    incr round;
    progress := false;
    (* signatures over all pattern blocks *)
    let sims = Instr.span ~name:"fraig.sim" (fun () -> simulate_blocks ()) in
    Instr.count "fraig.sim-words" (List.length !blocks * n);
    let signature node = List.map (fun v -> v.(node)) sims in
    let canon sig_ =
      match sig_ with
      | [] -> [], false
      | w :: _ ->
          if Int64.logand w 1L = 1L then List.map Int64.lognot sig_, true
          else sig_, false
    in
    let classes = Hashtbl.create 1024 in
    for node = 0 to n - 1 do
      let root, _ = Uf.find uf node in
      if root = node then begin
        let key, _ = canon (signature node) in
        let existing =
          match Hashtbl.find_opt classes key with Some l -> l | None -> []
        in
        Hashtbl.replace classes key (node :: existing)
      end
    done;
    let new_cexs = ref [] in
    let checks_before = !sat_checks in
    let conflicts_before = Sat.stats_conflicts solver in
    let restarts_before = Sat.stats_restarts solver in
    let proved = ref 0 in
    Instr.span ~name:"fraig.sat" (fun () ->
        Hashtbl.iter
          (fun _ members ->
            match List.rev members (* ascending ids *) with
            | [] | [ _ ] -> ()
            | rep :: rest ->
                List.iter
                  (fun m ->
                    if
                      !sat_checks < max_sat_checks
                      && not (Hashtbl.mem refuted (rep, m))
                    then begin
                      let _, prep = canon (signature rep) in
                      let _, pm = canon (signature m) in
                      let phase = prep <> pm in
                      match prove_equal rep m phase with
                      | `Equal ->
                          Uf.union uf rep m phase;
                          incr proved;
                          progress := true
                      | `Counterexample cex ->
                          Hashtbl.replace refuted (rep, m) ();
                          new_cexs := cex :: !new_cexs
                    end)
                  rest)
          classes);
    Instr.count "fraig.classes" (Hashtbl.length classes);
    Instr.count "fraig.sat-calls" (!sat_checks - checks_before);
    Instr.count "fraig.proved" !proved;
    Instr.count "fraig.refuted" (List.length !new_cexs);
    Instr.count "sat.conflicts" (Sat.stats_conflicts solver - conflicts_before);
    Instr.count "sat.restarts" (Sat.stats_restarts solver - restarts_before);
    (* pack counterexamples into pattern blocks, 64 per block, so the
       signature length stays proportional to refinement rounds *)
    let rec pack = function
      | [] -> ()
      | cexs ->
          let chunk, rest =
            let rec split k acc = function
              | x :: tl when k < 64 -> split (k + 1) (x :: acc) tl
              | tl -> acc, tl
            in
            split 0 [] cexs
          in
          let chunk = Array.of_list chunk in
          let blk =
            Array.init ni (fun i ->
                let w = ref 0L in
                Array.iteri
                  (fun k cex ->
                    if cex.(i) then w := Int64.logor !w (Int64.shift_left 1L k))
                  chunk;
                !w)
          in
          blocks := blk :: !blocks;
          progress := true;
          pack rest
    in
    pack !new_cexs
  done;
  Instr.count "fraig.rounds" !round;
  (* rebuild with the proven substitutions *)
  Instr.span ~name:"fraig.rebuild" @@ fun () ->
  let out = Aig.create ~num_inputs:ni ~num_outputs:(Aig.num_outputs aig) in
  let map = Array.make n Aig.lit_false in
  for i = 0 to ni - 1 do
    map.(1 + i) <- Aig.input_lit out i
  done;
  let resolve node =
    let root, ph = Uf.find uf node in
    if root < node then map.(root) lxor (if ph then 1 else 0)
    else map.(node)
  in
  let map_lit l =
    resolve (Aig.lit_node l) lxor (l land 1)
  in
  for node = ni + 1 to n - 1 do
    let root, ph = Uf.find uf node in
    if root < node then map.(node) <- map.(root) lxor (if ph then 1 else 0)
    else begin
      let l0, l1 = Aig.fanins aig node in
      map.(node) <- Aig.and_lit out (map_lit l0) (map_lit l1)
    end
  done;
  for o = 0 to Aig.num_outputs aig - 1 do
    Aig.set_output out o (map_lit (Aig.output aig o))
  done;
  Aig.compact out
