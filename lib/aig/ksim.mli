(** Bridge from {!Aig} onto the {!Lr_kernel} SoA simulation kernel.

    Node ids are preserved: node [n] of the compiled circuit is node [n]
    of the AIG (0 = constant false, [1..num_inputs] = inputs), so
    [Lr_kernel.Soa.node_values] is a drop-in for [Aig.simulate_nodes]. *)

val soa_of_aig : Aig.t -> Lr_kernel.Soa.t
