(* Flatten a conjunction tree across uncomplemented AND edges. Stopping at
   complemented edges preserves sharing of OR-structures; stopping is also
   mandatory there because the subtree is not a conjunct of the product. *)
let conjuncts aig root_lit =
  let acc = ref [] in
  let rec go l =
    let node = Aig.lit_node l in
    if (not (Aig.lit_phase l)) && Aig.is_and aig node then begin
      let l0, l1 = Aig.fanins aig node in
      go l0;
      go l1
    end
    else acc := l :: !acc
  in
  go root_lit;
  !acc

let balance aig =
  let out = Aig.create ~num_inputs:(Aig.num_inputs aig) ~num_outputs:(Aig.num_outputs aig) in
  for i = 0 to Aig.num_inputs aig - 1 do
    ignore (Aig.input_lit out i)
  done;
  let memo = Hashtbl.create 1024 in
  let rec build_lit l =
    let node = Aig.lit_node l in
    let base =
      match Hashtbl.find_opt memo node with
      | Some b -> b
      | None ->
          let b =
            if not (Aig.is_and aig node) then
              if node = 0 then Aig.lit_false else Aig.input_lit out (node - 1)
            else begin
              let leaves = conjuncts aig (2 * node) in
              (* deduplicate; a contradiction collapses to constant false *)
              let leaves = List.sort_uniq compare leaves in
              if
                List.exists
                  (fun x -> List.mem (Aig.not_lit x) leaves)
                  leaves
              then Aig.lit_false
              else begin
                let mapped = List.map build_lit leaves in
                let rec reduce = function
                  | [] -> Aig.lit_true
                  | [ x ] -> x
                  | xs ->
                      let rec pair acc = function
                        | [] -> List.rev acc
                        | [ x ] -> List.rev (x :: acc)
                        | x :: y :: rest ->
                            pair (Aig.and_lit out x y :: acc) rest
                      in
                      reduce (pair [] xs)
                in
                reduce mapped
              end
            end
          in
          Hashtbl.replace memo node b;
          b
    in
    base lxor (l land 1)
  in
  for o = 0 to Aig.num_outputs aig - 1 do
    Aig.set_output out o (build_lit (Aig.output aig o))
  done;
  Aig.compact out

(* One-level simplification rules for AND construction:
     a & (a & b)        = a & b          (containment)
     a & (~a & b)       = 0              (contradiction)
     a & ~(a & b)       = a & ~b         (substitution)
     a & ~(~a & b)      = a              (absorption)
   checked on both operands via the helper below. *)
let and_rw out a b =
  let fanins_of l =
    let n = Aig.lit_node l in
    if Aig.is_and out n then Some (Aig.fanins out n) else None
  in
  let rule a b =
    (* examine structure of b relative to a; return Some simplified *)
    match fanins_of b with
    | None -> None
    | Some (x, y) ->
        if Aig.lit_phase b then begin
          (* b = ~(x & y) *)
          if x = a then Some (Aig.and_lit out a (Aig.not_lit y))
          else if y = a then Some (Aig.and_lit out a (Aig.not_lit x))
          else if x = Aig.not_lit a || y = Aig.not_lit a then Some a
          else None
        end
        else begin
          (* b = x & y *)
          if x = a || y = a then Some b
          else if x = Aig.not_lit a || y = Aig.not_lit a then
            Some Aig.lit_false
          else None
        end
  in
  match rule a b with
  | Some r -> r
  | None -> (
      match rule b a with
      | Some r -> r
      | None -> Aig.and_lit out a b)

let rewrite aig =
  let out = Aig.create ~num_inputs:(Aig.num_inputs aig) ~num_outputs:(Aig.num_outputs aig) in
  let n = Aig.num_nodes aig in
  let map = Array.make n Aig.lit_false in
  for i = 0 to Aig.num_inputs aig - 1 do
    map.(1 + i) <- Aig.input_lit out i
  done;
  let map_lit l = map.(Aig.lit_node l) lxor (l land 1) in
  for node = Aig.num_inputs aig + 1 to n - 1 do
    let l0, l1 = Aig.fanins aig node in
    map.(node) <- and_rw out (map_lit l0) (map_lit l1)
  done;
  for o = 0 to Aig.num_outputs aig - 1 do
    Aig.set_output out o (map_lit (Aig.output aig o))
  done;
  Aig.compact out

let compress ?(max_rounds = 4) ?(fraig_words = 16) ?kernel ?pool ?verify ~rng
    aig =
  let module Instr = Lr_instr.Instr in
  let checked stage before after =
    (match verify with Some f -> f ~stage before after | None -> ());
    after
  in
  let step a =
    let pass name f x =
      checked name x (Instr.span ~name (fun () -> f x))
    in
    let a = pass "aig.balance" balance a in
    let a = pass "aig.rewrite" rewrite a in
    let a = pass "aig.cut-rewrite" Rewrite.cut_rewrite a in
    pass "aig.fraig" (Fraig.sweep ~words:fraig_words ?kernel ?pool ~rng) a
  in
  let rec loop round best =
    if round >= max_rounds then best
    else begin
      let candidate = step best in
      Instr.count "aig.opt-rounds" 1;
      Instr.gauge "aig.ands" (float_of_int (Aig.num_ands candidate));
      if Aig.num_ands candidate < Aig.num_ands best then begin
        Instr.count "aig.ands-removed"
          (Aig.num_ands best - Aig.num_ands candidate);
        loop (round + 1) candidate
      end
      else best
    end
  in
  let start = Aig.compact aig in
  Instr.gauge "aig.ands" (float_of_int (Aig.num_ands start));
  loop 0 start
