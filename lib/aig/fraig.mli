(** Functional reduction of AIGs (fraig), after Mishchenko et al.

    Simulation with random (and counterexample-derived) patterns partitions
    nodes into candidate-equivalence classes by signature; SAT queries on a
    miter of the two nodes then prove or refute each candidate. Proven
    pairs are merged (with phase), counterexamples refine the signatures,
    and the loop runs until no candidate survives or the effort cap is hit.

    This is the pass that makes the paper's FBDT-over-FBDD choice free of
    cost: isomorphic (indeed, any functionally equivalent) subtrees of the
    learned circuit are merged here. *)

val sweep :
  ?words:int ->
  ?max_rounds:int ->
  ?max_sat_checks:int ->
  ?kernel:bool ->
  ?pool:Lr_par.Par.pool ->
  rng:Lr_bitvec.Rng.t ->
  Aig.t ->
  Aig.t
(** [sweep ~rng aig] returns a functionally equivalent AIG with equivalent
    nodes merged. [words] random 64-pattern words seed the signatures
    (default 16); [max_rounds] bounds refinement iterations (default 64);
    [max_sat_checks] bounds total SAT queries (default 5000).

    [kernel] (default [true]) runs simulation on the {!Lr_kernel.Soa}
    engine — node values are computed once per pattern block and reused
    across refinement rounds — and decides hard equivalence queries with
    the {!Lr_kernel.Portfolio} racer. Both are bit-identical to the legacy
    path: signatures are equal words, the class solver is the portfolio
    primary (sole counterexample source), and secondaries engage only past
    the primary's first budget. [pool] parallelizes the portfolio rounds
    (wall-clock only; results are resolved in index order). *)
