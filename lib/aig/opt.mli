(** Structural AIG optimization scripts.

    [balance] rebuilds conjunction trees in balanced form (ABC's [balance]);
    [rewrite] rebuilds the graph applying local one-level simplification
    rules (absorption, containment, contradiction) on top of structural
    hashing; [compress] is the dc2/resyn-style driver that interleaves
    balancing, rewriting and {!Fraig.sweep} until no gain remains. *)

val balance : Aig.t -> Aig.t
val rewrite : Aig.t -> Aig.t

val compress :
  ?max_rounds:int ->
  ?fraig_words:int ->
  ?kernel:bool ->
  ?pool:Lr_par.Par.pool ->
  ?verify:(stage:string -> Aig.t -> Aig.t -> unit) ->
  rng:Lr_bitvec.Rng.t ->
  Aig.t ->
  Aig.t
(** The optimization script applied to every learned circuit (the paper
    runs ABC's [dc2], [rewrite], [resyn3] here): balance, local rewrite,
    {!Rewrite.cut_rewrite}, {!Fraig.sweep}, iterated while gains last.
    Guaranteed not to increase {!Aig.num_ands}: each round's result is
    kept only if smaller.

    [verify] is called after every sub-pass with the stage's span name
    (["aig.balance"], ["aig.rewrite"], ["aig.cut-rewrite"], ["aig.fraig"]),
    the input AIG and its result; raise to abort. The checked pipeline mode
    plugs {!Equiv.check_aig} in here. *)
