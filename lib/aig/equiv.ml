module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Sat = Lr_sat.Sat
module Soa = Lr_kernel.Soa
module Portfolio = Lr_kernel.Portfolio

type verdict = Equivalent | Counterexample of Lr_bitvec.Bv.t

(* CNF of one AIG plus one literal asserted true; SAT model -> inputs *)
let solve_lit ?(kernel = true) ?pool aig lit =
  let encode solver =
    let n = Aig.num_nodes aig in
    for _ = 1 to n do
      ignore (Sat.new_var solver)
    done;
    Sat.add_clause solver [ -1 ];
    for node = Aig.num_inputs aig + 1 to n - 1 do
      let l0, l1 = Aig.fanins aig node in
      let dim l =
        let v = Aig.lit_node l + 1 in
        if Aig.lit_phase l then -v else v
      in
      let x = node + 1 and a = dim l0 and b = dim l1 in
      Sat.add_clause solver [ -x; a ];
      Sat.add_clause solver [ -x; b ];
      Sat.add_clause solver [ x; -a; -b ]
    done;
    let goal =
      let v = Aig.lit_node lit + 1 in
      if Aig.lit_phase lit then -v else v
    in
    Sat.add_clause solver [ goal ]
  in
  let solver = Sat.create () in
  encode solver;
  let result =
    if kernel then
      (* verdict comes from whichever racer decides first, but a Sat model
         is only ever read from [solver] (the primary), so the witness is
         the single-solver one *)
      Portfolio.race ?pool
        ~primary:{ Portfolio.solver; assumptions = [] }
        ~secondaries:
          (Array.to_list
             (Array.map
                (fun config () ->
                  let s = Sat.create ~config () in
                  encode s;
                  { Portfolio.solver = s; assumptions = [] })
                Portfolio.secondary_configs))
        ()
    else Sat.solve solver
  in
  match result with
  | Sat.Unsat -> None
  | Sat.Sat ->
      let ni = Aig.num_inputs aig in
      let cex = Bv.create ni in
      for i = 0 to ni - 1 do
        Bv.set cex i (Sat.value solver (i + 2))
      done;
      Some cex

let sat_assignment ?kernel ?pool aig lit = solve_lit ?kernel ?pool aig lit

(* 16 words = 1024 random patterns; a mismatch yields the witness pattern *)
let sim_prefilter ~rng ~ni eval2 =
  let rec go k =
    if k = 0 then None
    else begin
      let words = Array.init ni (fun _ -> Rng.bits64 rng) in
      let o1, o2 = eval2 words in
      let diff = ref (-1) and bit = ref 0 in
      Array.iteri
        (fun o w ->
          if !diff < 0 then begin
            let d = Int64.logxor w o2.(o) in
            if d <> 0L then begin
              diff := o;
              let rec find j =
                if Int64.logand (Int64.shift_right_logical d j) 1L = 1L then j
                else find (j + 1)
              in
              bit := find 0
            end
          end)
        o1;
      if !diff < 0 then go (k - 1)
      else begin
        let cex = Bv.create ni in
        for i = 0 to ni - 1 do
          Bv.set cex i
            (Int64.logand (Int64.shift_right_logical words.(i) !bit) 1L = 1L)
        done;
        Some cex
      end
    end
  in
  go 16

let check_outputs_equal ?kernel ?pool aig a b =
  let miter = Aig.create ~num_inputs:(Aig.num_inputs aig) ~num_outputs:1 in
  (* rebuild the cone of both literals into the miter *)
  let map = Array.make (Aig.num_nodes aig) Aig.lit_false in
  for i = 0 to Aig.num_inputs aig - 1 do
    map.(1 + i) <- Aig.input_lit miter i
  done;
  let map_lit l = map.(Aig.lit_node l) lxor (l land 1) in
  for node = Aig.num_inputs aig + 1 to Aig.num_nodes aig - 1 do
    let l0, l1 = Aig.fanins aig node in
    map.(node) <- Aig.and_lit miter (map_lit l0) (map_lit l1)
  done;
  let x = Aig.xor_lit miter (map_lit a) (map_lit b) in
  match solve_lit ?kernel ?pool miter x with
  | None -> Equivalent
  | Some cex -> Counterexample cex

let check ?(rng = Rng.create 0xCEC) ?(kernel = true) ?pool c1 c2 =
  if
    N.num_inputs c1 <> N.num_inputs c2
    || N.num_outputs c1 <> N.num_outputs c2
  then invalid_arg "Equiv.check: interface mismatch";
  let ni = N.num_inputs c1 and no = N.num_outputs c1 in
  (* cheap random refutation first *)
  let eval2 =
    if kernel then begin
      let s1 = Soa.of_netlist c1 and s2 = Soa.of_netlist c2 in
      fun words -> (Soa.eval_words s1 words, Soa.eval_words s2 words)
    end
    else fun words -> (N.eval_words c1 words, N.eval_words c2 words)
  in
  match sim_prefilter ~rng ~ni eval2 with
  | Some cex -> Counterexample cex
  | None ->
      (* build one AIG holding both circuits on shared inputs and prove
         each output pair *)
      let miter = Aig.create ~num_inputs:ni ~num_outputs:1 in
      let import c =
        let map = Array.make (N.num_nodes c) Aig.lit_false in
        for node = 0 to N.num_nodes c - 1 do
          map.(node) <-
            (match N.gate c node with
            | N.Const b -> if b then Aig.lit_true else Aig.lit_false
            | N.Input i -> Aig.input_lit miter i
            | N.Not a -> Aig.not_lit map.(a)
            | N.And2 (a, b) -> Aig.and_lit miter map.(a) map.(b)
            | N.Or2 (a, b) -> Aig.or_lit miter map.(a) map.(b)
            | N.Xor2 (a, b) -> Aig.xor_lit miter map.(a) map.(b)
            | N.Nand2 (a, b) -> Aig.not_lit (Aig.and_lit miter map.(a) map.(b))
            | N.Nor2 (a, b) -> Aig.not_lit (Aig.or_lit miter map.(a) map.(b))
            | N.Xnor2 (a, b) -> Aig.not_lit (Aig.xor_lit miter map.(a) map.(b)))
        done;
        Array.init no (fun o -> map.(N.output c o))
      in
      let outs1 = import c1 and outs2 = import c2 in
      (* disjunction of all output differences *)
      let diff = ref Aig.lit_false in
      for o = 0 to no - 1 do
        diff := Aig.or_lit miter !diff (Aig.xor_lit miter outs1.(o) outs2.(o))
      done;
      (match solve_lit ~kernel ?pool miter !diff with
      | None -> Equivalent
      | Some cex -> Counterexample cex)

let check_aig ?(rng = Rng.create 0xCEC) ?(kernel = true) ?pool a1 a2 =
  if
    Aig.num_inputs a1 <> Aig.num_inputs a2
    || Aig.num_outputs a1 <> Aig.num_outputs a2
  then invalid_arg "Equiv.check_aig: interface mismatch";
  let ni = Aig.num_inputs a1 and no = Aig.num_outputs a1 in
  let eval2 =
    if kernel then begin
      (* node_values/outputs_of_values rather than eval_words: like
         [Aig.simulate], this path does not tick the sim counters *)
      let s1 = Ksim.soa_of_aig a1 and s2 = Ksim.soa_of_aig a2 in
      let out s words =
        Soa.outputs_of_values s (Soa.node_values s words)
      in
      fun words -> (out s1 words, out s2 words)
    end
    else fun words -> (Aig.simulate a1 words, Aig.simulate a2 words)
  in
  match sim_prefilter ~rng ~ni eval2 with
  | Some cex -> Counterexample cex
  | None ->
      let miter = Aig.create ~num_inputs:ni ~num_outputs:1 in
      let import aig =
        let map = Array.make (Aig.num_nodes aig) Aig.lit_false in
        for i = 0 to ni - 1 do
          map.(1 + i) <- Aig.input_lit miter i
        done;
        let map_lit l = map.(Aig.lit_node l) lxor (l land 1) in
        for node = ni + 1 to Aig.num_nodes aig - 1 do
          let l0, l1 = Aig.fanins aig node in
          map.(node) <- Aig.and_lit miter (map_lit l0) (map_lit l1)
        done;
        Array.init no (fun o -> map_lit (Aig.output aig o))
      in
      let outs1 = import a1 and outs2 = import a2 in
      let diff = ref Aig.lit_false in
      for o = 0 to no - 1 do
        diff := Aig.or_lit miter !diff (Aig.xor_lit miter outs1.(o) outs2.(o))
      done;
      (match solve_lit ~kernel ?pool miter !diff with
      | None -> Equivalent
      | Some cex -> Counterexample cex)
