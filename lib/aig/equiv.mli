(** Combinational equivalence checking (CEC).

    Builds a miter of two circuits with matched interfaces and decides
    equivalence with the {!Lr_sat} CDCL solver, after a fraig-style
    simulation pass has pruned the easy mismatches. This is how the test
    suite {e proves} (not just samples) that template-built circuits equal
    their golden counterparts, and it is exposed on the CLI as the [cec]
    command. *)

type verdict =
  | Equivalent
  | Counterexample of Lr_bitvec.Bv.t
      (** an input assignment on which some output differs *)

val check :
  ?rng:Lr_bitvec.Rng.t ->
  ?kernel:bool ->
  ?pool:Lr_par.Par.pool ->
  Lr_netlist.Netlist.t ->
  Lr_netlist.Netlist.t ->
  verdict
(** [check a b] decides whether the two circuits compute the same function.
    Requires equal PI/PO counts (names are not compared). Complete: always
    returns a definite verdict, with SAT doing the heavy lifting.

    [kernel] (default [true]) runs the simulation prefilter on the
    {!Lr_kernel.Soa} engine and decides the miter with the
    {!Lr_kernel.Portfolio} racer — verdicts and counterexamples are
    bit-identical to the legacy path (the model is always the primary
    solver's); [pool] only shortens hard queries' wall-clock. *)

val check_aig :
  ?rng:Lr_bitvec.Rng.t ->
  ?kernel:bool ->
  ?pool:Lr_par.Par.pool ->
  Aig.t ->
  Aig.t ->
  verdict
(** [check] for two AIGs directly — no netlist conversion. This is what the
    checked pipeline ([Config.check_level = Full]) runs after every
    optimization sub-pass. *)

val check_outputs_equal :
  ?kernel:bool -> ?pool:Lr_par.Par.pool -> Aig.t -> Aig.lit -> Aig.lit -> verdict
(** Decide whether two literals of one AIG are the same function — the
    primitive [check] reduces to, also used by fraig verification tests. *)

val sat_assignment :
  ?kernel:bool ->
  ?pool:Lr_par.Par.pool ->
  Aig.t ->
  Aig.lit ->
  Lr_bitvec.Bv.t option
(** A primary-input assignment making the literal true, or [None] when the
    literal is unsatisfiable. The raw solver entry point behind the
    verdicts above, exposed so [Lr_check] can build custom miters (e.g.
    cover-vs-netlist) and still get a concrete counterexample back. *)
