module N = Netlist

let escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let write ?(graph_name = "circuit") c =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph %s {\n  rankdir=LR;\n" graph_name;
  let reach = N.reachable c in
  for n = 0 to N.num_nodes c - 1 do
    if reach.(n) then begin
      let node label shape =
        add "  n%d [label=\"%s\", shape=%s];\n" n (escape label) shape
      in
      let edge a = add "  n%d -> n%d;\n" a n in
      match N.gate c n with
      | N.Const b -> node (if b then "1" else "0") "plaintext"
      | N.Input i -> node (N.input_names c).(i) "box"
      | N.Not a ->
          node "NOT" "invtriangle";
          edge a
      | N.And2 (a, b) ->
          node "AND" "ellipse";
          edge a;
          edge b
      | N.Or2 (a, b) ->
          node "OR" "ellipse";
          edge a;
          edge b
      | N.Xor2 (a, b) ->
          node "XOR" "ellipse";
          edge a;
          edge b
      | N.Nand2 (a, b) ->
          node "NAND" "ellipse";
          edge a;
          edge b
      | N.Nor2 (a, b) ->
          node "NOR" "ellipse";
          edge a;
          edge b
      | N.Xnor2 (a, b) ->
          node "XNOR" "ellipse";
          edge a;
          edge b
    end
  done;
  for o = 0 to N.num_outputs c - 1 do
    add "  po%d [label=\"%s\", shape=doublecircle];\n" o
      (escape (N.output_names c).(o));
    add "  n%d -> po%d;\n" (N.output c o) o
  done;
  add "}\n";
  Buffer.contents buf

let write_file ?graph_name c path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write ?graph_name c))
