module N = Netlist
module Cube = Lr_cube.Cube
module Cover = Lr_cube.Cover

let write ?(model = "learned") c =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add ".model %s\n" model;
  add ".inputs %s\n" (String.concat " " (Array.to_list (N.input_names c)));
  add ".outputs %s\n" (String.concat " " (Array.to_list (N.output_names c)));
  let reach = N.reachable c in
  let name n =
    match N.gate c n with
    | N.Input i -> (N.input_names c).(i)
    | N.Const _ | N.Not _ | N.And2 _ | N.Or2 _ | N.Xor2 _ | N.Nand2 _
    | N.Nor2 _ | N.Xnor2 _ ->
        Printf.sprintf "n%d" n
  in
  for n = 0 to N.num_nodes c - 1 do
    if reach.(n) then begin
      let table2 a b rows =
        add ".names %s %s %s\n" (name a) (name b) (name n);
        List.iter (fun r -> add "%s 1\n" r) rows
      in
      match N.gate c n with
      | N.Input _ -> ()
      | N.Const false -> add ".names %s\n" (name n)
      | N.Const true -> add ".names %s\n1\n" (name n)
      | N.Not a -> add ".names %s %s\n0 1\n" (name a) (name n)
      | N.And2 (a, b) -> table2 a b [ "11" ]
      | N.Or2 (a, b) -> table2 a b [ "1-"; "-1" ]
      | N.Xor2 (a, b) -> table2 a b [ "10"; "01" ]
      | N.Nand2 (a, b) -> table2 a b [ "0-"; "-0" ]
      | N.Nor2 (a, b) -> table2 a b [ "00" ]
      | N.Xnor2 (a, b) -> table2 a b [ "11"; "00" ]
    end
  done;
  (* output buffers *)
  for o = 0 to N.num_outputs c - 1 do
    let po = (N.output_names c).(o) in
    add ".names %s %s\n1 1\n" (name (N.output c o)) po
  done;
  add ".end\n";
  Buffer.contents buf

let fail fmt = Printf.ksprintf failwith fmt

(* {2 Source-level diagnostics}

   The reader validates the whole table graph eagerly — including logic no
   primary output reaches — so malformed files fail with located messages
   instead of silently dropping dead defects. [Lr_check] reuses the same
   detectors through {!lint}. *)

type severity = Error | Warning

type diag = {
  severity : severity;
  line : int;  (** 1-based source line; 0 when no single line applies *)
  signal : string;
  message : string;
  hint : string;
}

type row = { row_line : int; pattern : string; value : char }
type table = { line : int; fanins : string list; out : string; rows : row list }

type source = {
  src_inputs : (int * string) list;
  src_outputs : (int * string) list;
  src_tables : table list;
}

(* Strip comments, join continuation lines; each logical line keeps the
   1-based number of its first physical line. *)
let logical_lines text =
  let physical =
    String.split_on_char '\n' text
    |> List.mapi (fun i l ->
           let l =
             match String.index_opt l '#' with
             | Some j -> String.sub l 0 j
             | None -> l
           in
           (i + 1, l))
  in
  let acc, pending =
    List.fold_left
      (fun (acc, pending) (lineno, line) ->
        let start, text =
          match pending with
          | Some (n, s) -> (n, s ^ line)
          | None -> (lineno, line)
        in
        if String.length text > 0 && text.[String.length text - 1] = '\\' then
          (acc, Some (start, String.sub text 0 (String.length text - 1)))
        else ((start, text) :: acc, None))
      ([], None) physical
  in
  List.rev (match pending with Some p -> p :: acc | None -> acc)

let parse text =
  let words l =
    String.split_on_char ' ' l
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun w -> w <> "")
  in
  let inputs = ref [] and outputs = ref [] in
  let tables = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some t ->
        tables := { t with rows = List.rev t.rows } :: !tables;
        current := None
    | None -> ()
  in
  List.iter
    (fun (lineno, line) ->
      match words line with
      | [] -> ()
      | ".model" :: _ -> ()
      | ".inputs" :: names ->
          inputs := !inputs @ List.map (fun n -> (lineno, n)) names
      | ".outputs" :: names ->
          outputs := !outputs @ List.map (fun n -> (lineno, n)) names
      | ".names" :: signals -> (
          flush ();
          match List.rev signals with
          | out :: rev_fanins ->
              current :=
                Some { line = lineno; fanins = List.rev rev_fanins; out; rows = [] }
          | [] -> fail "Blif.read: line %d: .names with no signals" lineno)
      | ".end" :: _ -> flush ()
      | (".latch" | ".subckt" | ".gate") :: _ ->
          fail "Blif.read: line %d: sequential/hierarchical BLIF not supported"
            lineno
      | [ pattern; value ] when String.length value = 1 -> (
          match !current with
          | Some t ->
              current :=
                Some
                  { t with rows = { row_line = lineno; pattern; value = value.[0] } :: t.rows }
          | None -> fail "Blif.read: line %d: table row outside .names" lineno)
      | [ single ] -> (
          (* constant table row: output column only *)
          match !current with
          | Some t when t.fanins = [] ->
              current :=
                Some
                  { t with rows = { row_line = lineno; pattern = ""; value = single.[0] } :: t.rows }
          | Some _ ->
              fail "Blif.read: line %d: missing output column in row %S" lineno
                single
          | None -> fail "Blif.read: line %d: table row outside .names" lineno)
      | w :: _ ->
          if String.length w > 0 && w.[0] = '.' then
            fail "Blif.read: line %d: unsupported directive %s" lineno w
          else fail "Blif.read: line %d: malformed line %S" lineno line)
    (logical_lines text);
  flush ();
  {
    src_inputs = !inputs;
    src_outputs = !outputs;
    src_tables = List.rev !tables;
  }

(* [a], [y] with a single NOT row — the shape {!write} emits for inverters. *)
let inverter_input t =
  match (t.fanins, t.rows) with
  | [ a ], [ r ]
    when (r.pattern = "0" && r.value = '1') || (r.pattern = "1" && r.value = '0')
    ->
      Some a
  | _ -> None

let validate src =
  let diags = ref [] in
  let add severity line signal message hint =
    diags := { severity; line; signal; message; hint } :: !diags
  in
  let is_input = Hashtbl.create 16 in
  List.iter
    (fun (ln, n) ->
      if Hashtbl.mem is_input n then
        add Error ln n
          (Printf.sprintf "primary input %s declared twice" n)
          "remove the duplicate .inputs entry"
      else Hashtbl.add is_input n ())
    src.src_inputs;
  (* exactly one driving table per signal, and never one driving a PI *)
  let driver = Hashtbl.create 64 in
  List.iter
    (fun t ->
      if Hashtbl.mem is_input t.out then
        add Error t.line t.out
          (Printf.sprintf ".names table drives primary input %s" t.out)
          "rename the table output or drop the .inputs declaration"
      else
        match Hashtbl.find_opt driver t.out with
        | Some (first : table) ->
            add Error t.line t.out
              (Printf.sprintf "signal %s driven by multiple tables (first at line %d)"
                 t.out first.line)
              "merge the rows into one table or remove one driver"
        | None -> Hashtbl.add driver t.out t)
    src.src_tables;
  (* per-table row shape *)
  List.iter
    (fun t ->
      let k = List.length t.fanins in
      let polarities = ref [] in
      List.iter
        (fun r ->
          if String.length r.pattern <> k then
            add Error r.row_line t.out
              (Printf.sprintf "row width %d does not match %d fanins"
                 (String.length r.pattern) k)
              "give the row one column per .names fanin";
          String.iter
            (fun ch ->
              match ch with
              | '0' | '1' | '-' -> ()
              | _ ->
                  add Error r.row_line t.out
                    (Printf.sprintf "bad pattern character %C" ch)
                    "use only 0, 1 or - in input columns")
            r.pattern;
          match r.value with
          | ('0' | '1') as v ->
              if not (List.mem v !polarities) then polarities := v :: !polarities
          | c ->
              add Error r.row_line t.out
                (Printf.sprintf "bad output value %C" c)
                "the output column must be 0 or 1")
        t.rows;
      if List.length !polarities > 1 then
        add Error t.line t.out
          (Printf.sprintf "mixed-polarity table for %s" t.out)
          "use a single output polarity per table")
    src.src_tables;
  (* every referenced signal must be a PI or a table output *)
  let defined n = Hashtbl.mem is_input n || Hashtbl.mem driver n in
  let reported_undriven = Hashtbl.create 16 in
  let undriven line name =
    if not (Hashtbl.mem reported_undriven name) then begin
      Hashtbl.add reported_undriven name ();
      add Error line name
        (Printf.sprintf "undriven signal %s" name)
        "declare it in .inputs or add a .names table for it"
    end
  in
  List.iter
    (fun t -> List.iter (fun f -> if not (defined f) then undriven t.line f) t.fanins)
    src.src_tables;
  List.iter
    (fun (ln, n) -> if not (defined n) then undriven ln n)
    src.src_outputs;
  (* combinational cycles, over the whole graph (dead cycles included) *)
  let color = Hashtbl.create 64 in
  let rec visit stack name =
    match Hashtbl.find_opt color name with
    | Some `Done -> ()
    | Some `Active ->
        let rec take acc = function
          | [] -> acc
          | x :: rest -> if x = name then x :: acc else take (x :: acc) rest
        in
        let path = take [ name ] stack in
        add Error (Hashtbl.find driver name).line name
          (Printf.sprintf "combinational cycle through %s"
             (String.concat " -> " path))
          "break the feedback loop; BLIF here is purely combinational"
    | None -> (
        match Hashtbl.find_opt driver name with
        | None -> ()
        | Some t ->
            Hashtbl.replace color name `Active;
            List.iter (visit (name :: stack)) t.fanins;
            Hashtbl.replace color name `Done)
  in
  List.iter (fun t -> visit [] t.out) src.src_tables;
  (* dead logic: tables outside every primary output cone *)
  let live = Hashtbl.create 64 in
  let rec mark name =
    if not (Hashtbl.mem live name) then begin
      Hashtbl.add live name ();
      match Hashtbl.find_opt driver name with
      | Some t -> List.iter mark t.fanins
      | None -> ()
    end
  in
  List.iter (fun (_, n) -> mark n) src.src_outputs;
  List.iter
    (fun t ->
      if (not (Hashtbl.mem live t.out)) && Hashtbl.find_opt driver t.out = Some t
      then
        add Warning t.line t.out
          (Printf.sprintf "table for %s drives no primary output" t.out)
          "remove the dead logic or list the signal in .outputs")
    src.src_tables;
  (* double inversions *)
  List.iter
    (fun t ->
      match inverter_input t with
      | Some a -> (
          match Hashtbl.find_opt driver a with
          | Some d when inverter_input d <> None ->
              add Warning t.line t.out
                (Printf.sprintf "%s is an inverter of inverter %s" t.out a)
                "collapse the double inversion"
          | _ -> ())
      | None -> ())
    src.src_tables;
  (* structural duplicates: same fanins, same rows, different output *)
  let canon = Hashtbl.create 64 in
  List.iter
    (fun t ->
      let key =
        (t.fanins, List.sort compare (List.map (fun r -> (r.pattern, r.value)) t.rows))
      in
      match Hashtbl.find_opt canon key with
      | Some (first : table) ->
          add Warning t.line t.out
            (Printf.sprintf "table for %s duplicates table for %s (line %d)"
               t.out first.out first.line)
            "drive both signals from one table"
      | None -> Hashtbl.add canon key t)
    src.src_tables;
  List.stable_sort
    (fun (a : diag) (b : diag) -> compare a.line b.line)
    (List.rev !diags)

let lint text =
  match parse text with
  | exception Failure msg ->
      [ { severity = Error; line = 0; signal = ""; message = msg;
          hint = "fix the syntax error first" } ]
  | src -> validate src

let read text =
  let src = parse text in
  (match List.find_opt (fun d -> d.severity = Error) (validate src) with
  | Some d -> fail "Blif.read: line %d: %s" d.line d.message
  | None -> ());
  let input_names = Array.of_list (List.map snd src.src_inputs) in
  let output_names = Array.of_list (List.map snd src.src_outputs) in
  let c = N.create ~input_names ~output_names in
  let by_output = Hashtbl.create 64 in
  List.iter (fun t -> Hashtbl.replace by_output t.out t) src.src_tables;
  let resolved = Hashtbl.create 64 in
  Array.iteri
    (fun i name -> Hashtbl.replace resolved name (N.input c i))
    input_names;
  let rec node_of name =
    match Hashtbl.find_opt resolved name with
    | Some n -> n
    | None ->
        (* validate already rejected cycles, undriven and malformed tables *)
        let t = Hashtbl.find by_output name in
        let fanin_nodes = List.map node_of t.fanins |> Array.of_list in
        let k = Array.length fanin_nodes in
        let onset_rows, offset_rows =
          List.partition (fun r -> r.value = '1') t.rows
        in
        let cover_of rows =
          Cover.of_cubes k
            (List.map
               (fun r ->
                 (* BLIF row order: leftmost char = first fanin *)
                 let cube = ref (Cube.top k) in
                 String.iteri
                   (fun i ch ->
                     match ch with
                     | '1' -> cube := Cube.add !cube i true
                     | '0' -> cube := Cube.add !cube i false
                     | _ -> ())
                   r.pattern;
                 !cube)
               rows)
        in
        let n =
          match (onset_rows, offset_rows) with
          | [], [] -> N.const_false c
          | rows, [] ->
              if k = 0 then N.const_true c
              else Builder.sop c fanin_nodes (cover_of rows)
          | [], rows ->
              if k = 0 then N.const_false c
              else N.not_ c (Builder.sop c fanin_nodes (cover_of rows))
          | _ :: _, _ :: _ -> fail "Blif.read: mixed-polarity table for %s" name
        in
        Hashtbl.replace resolved name n;
        n
  in
  Array.iteri (fun o name -> N.set_output c o (node_of name)) output_names;
  c

let write_file ?model c path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write ?model c))

let read_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  read text
