(** Exact functional analysis of netlists.

    The paper's support identification (Section IV-C) only ever produces an
    {e under-approximation} S' of the true support S (Proposition 1 is a
    one-sided test under sampling). This module computes the exact
    quantities on white-box circuits — structural and functional supports —
    which the test suite uses to validate the sampling estimates and which
    evaluation code uses to characterise benchmark hardness. *)

val structural_support : Netlist.t -> output:int -> int list
(** PIs with a path to the output — an over-approximation of the true
    support. Linear in circuit size. *)

val functional_support : Netlist.t -> output:int -> int list
(** The true support S: PIs [i] such that [f|_i <> f|_~i] is satisfiable,
    decided exactly with a BDD of the output cone. Exponential worst case;
    intended for cones of moderate structural support (< ~40 PIs). *)

val fanout_cone : Netlist.t -> Netlist.node list -> bool array
(** Transitive fanout of the seed nodes, seeds included — the set of
    nodes whose value an update at the seeds can change. The dual of
    {!Netlist.reachable_from} (which walks fanins), and the reference
    semantics for [Lr_kernel.Soa.fanout_cone]. *)

val output_density :
  ?patterns:int -> rng:Lr_bitvec.Rng.t -> Netlist.t -> output:int -> float
(** Monte-Carlo estimate of the output's truth density (share of 1s under
    uniform inputs) — the quantity the onset/offset choice keys on. *)
