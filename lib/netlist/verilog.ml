module N = Netlist

let is_simple_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true | _ -> false)
       s

(* escaped identifiers start with a backslash and end at whitespace *)
let ident s = if is_simple_ident s then s else "\\" ^ s ^ " "

let write ?(module_name = "learned") c =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ins = N.input_names c and outs = N.output_names c in
  let ports =
    Array.to_list (Array.map ident ins) @ Array.to_list (Array.map ident outs)
  in
  add "module %s(%s);\n" module_name (String.concat ", " ports);
  Array.iter (fun s -> add "  input %s;\n" (ident s)) ins;
  Array.iter (fun s -> add "  output %s;\n" (ident s)) outs;
  (* only reachable logic is emitted *)
  let reach = N.reachable c in
  let wire n = Printf.sprintf "n%d" n in
  let operand n =
    match N.gate c n with
    | N.Const false -> "1'b0"
    | N.Const true -> "1'b1"
    | N.Input i -> ident ins.(i)
    | N.Not _ | N.And2 _ | N.Or2 _ | N.Xor2 _ | N.Nand2 _ | N.Nor2 _
    | N.Xnor2 _ ->
        wire n
  in
  for n = 0 to N.num_nodes c - 1 do
    if reach.(n) then
      match N.gate c n with
      | N.Const _ | N.Input _ -> ()
      | N.Not _ | N.And2 _ | N.Or2 _ | N.Xor2 _ | N.Nand2 _ | N.Nor2 _
      | N.Xnor2 _ ->
          add "  wire %s;\n" (wire n)
  done;
  for n = 0 to N.num_nodes c - 1 do
    if reach.(n) then begin
      let bin op a b =
        add "  assign %s = %s %s %s;\n" (wire n) (operand a) op (operand b)
      in
      match N.gate c n with
      | N.Const _ | N.Input _ -> ()
      | N.Not a -> add "  assign %s = ~%s;\n" (wire n) (operand a)
      | N.And2 (a, b) -> bin "&" a b
      | N.Or2 (a, b) -> bin "|" a b
      | N.Xor2 (a, b) -> bin "^" a b
      | N.Nand2 (a, b) ->
          add "  assign %s = ~(%s & %s);\n" (wire n) (operand a) (operand b)
      | N.Nor2 (a, b) ->
          add "  assign %s = ~(%s | %s);\n" (wire n) (operand a) (operand b)
      | N.Xnor2 (a, b) ->
          add "  assign %s = ~(%s ^ %s);\n" (wire n) (operand a) (operand b)
    end
  done;
  for o = 0 to N.num_outputs c - 1 do
    add "  assign %s = %s;\n" (ident outs.(o)) (operand (N.output c o))
  done;
  add "endmodule\n";
  Buffer.contents buf

let write_file ?module_name c path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write ?module_name c))
