module Bv = Lr_bitvec.Bv
module Instr = Lr_instr.Instr

type node = int

type gate =
  | Const of bool
  | Input of int
  | Not of node
  | And2 of node * node
  | Or2 of node * node
  | Xor2 of node * node
  | Nand2 of node * node
  | Nor2 of node * node
  | Xnor2 of node * node

type t = {
  input_names : string array;
  output_names : string array;
  mutable gates : gate array;
  mutable len : int;
  strash : (gate, node) Hashtbl.t;
  outputs : node array;
}

let num_nodes t = t.len

let grow t =
  let cap = Array.length t.gates in
  if t.len = cap then begin
    let gates = Array.make (max 16 (2 * cap)) (Const false) in
    Array.blit t.gates 0 gates 0 t.len;
    t.gates <- gates
  end

let push_raw t g =
  grow t;
  t.gates.(t.len) <- g;
  t.len <- t.len + 1;
  t.len - 1

let gate t n =
  if n < 0 || n >= t.len then invalid_arg "Netlist.gate: bad node";
  t.gates.(n)

let create ~input_names ~output_names =
  let t =
    {
      input_names;
      output_names;
      gates = Array.make 16 (Const false);
      len = 0;
      strash = Hashtbl.create 1024;
      outputs = Array.make (Array.length output_names) 0;
    }
  in
  let f = push_raw t (Const false) in
  ignore (push_raw t (Const true));
  Array.iteri (fun i _ -> ignore (push_raw t (Input i))) input_names;
  Array.fill t.outputs 0 (Array.length t.outputs) f;
  t

let num_inputs t = Array.length t.input_names
let num_outputs t = Array.length t.output_names
let input_names t = t.input_names
let output_names t = t.output_names

let const_false _ = 0
let const_true _ = 1

let input t i =
  if i < 0 || i >= num_inputs t then invalid_arg "Netlist.input: bad index";
  2 + i

let hashed t g =
  match Hashtbl.find_opt t.strash g with
  | Some n -> n
  | None ->
      let n = push_raw t g in
      Hashtbl.replace t.strash g n;
      n

let const _t b = if b then 1 else 0

let not_ t a =
  match gate t a with
  | Const b -> const t (not b)
  | Not x -> x
  | Input _ | And2 _ | Or2 _ | Xor2 _ | Nand2 _ | Nor2 _ | Xnor2 _ ->
      hashed t (Not a)

(* A complemented pair (x, ~x) is recognised when one operand is literally
   the inverter of the other; strashing makes this test reliable enough for
   the simplifications below. *)
let complements t a b =
  match gate t a, gate t b with
  | Not x, _ -> x = b
  | _, Not y -> y = a
  | _ -> false

let order a b = if a <= b then a, b else b, a

let and_ t a b =
  let a, b = order a b in
  match gate t a, gate t b with
  | Const false, _ | _, Const false -> 0
  | Const true, _ -> b
  | _, Const true -> a
  | _ ->
      if a = b then a
      else if complements t a b then 0
      else hashed t (And2 (a, b))

let or_ t a b =
  let a, b = order a b in
  match gate t a, gate t b with
  | Const true, _ | _, Const true -> 1
  | Const false, _ -> b
  | _, Const false -> a
  | _ ->
      if a = b then a
      else if complements t a b then 1
      else hashed t (Or2 (a, b))

let xor_ t a b =
  let a, b = order a b in
  match gate t a, gate t b with
  | Const false, _ -> b
  | _, Const false -> a
  | Const true, _ -> not_ t b
  | _, Const true -> not_ t a
  | _ ->
      if a = b then 0
      else if complements t a b then 1
      else hashed t (Xor2 (a, b))

let nand_ t a b =
  let a, b = order a b in
  match gate t a, gate t b with
  | Const false, _ | _, Const false -> 1
  | Const true, _ -> not_ t b
  | _, Const true -> not_ t a
  | _ ->
      if a = b then not_ t a
      else if complements t a b then 1
      else hashed t (Nand2 (a, b))

let nor_ t a b =
  let a, b = order a b in
  match gate t a, gate t b with
  | Const true, _ | _, Const true -> 0
  | Const false, _ -> not_ t b
  | _, Const false -> not_ t a
  | _ ->
      if a = b then not_ t a
      else if complements t a b then 0
      else hashed t (Nor2 (a, b))

let xnor_ t a b =
  let a, b = order a b in
  match gate t a, gate t b with
  | Const true, _ -> b
  | _, Const true -> a
  | Const false, _ -> not_ t b
  | _, Const false -> not_ t a
  | _ ->
      if a = b then 1
      else if complements t a b then 0
      else hashed t (Xnor2 (a, b))

let set_output t i n =
  if i < 0 || i >= num_outputs t then
    invalid_arg "Netlist.set_output: bad index";
  if n < 0 || n >= t.len then invalid_arg "Netlist.set_output: bad node";
  t.outputs.(i) <- n

let output t i =
  if i < 0 || i >= num_outputs t then invalid_arg "Netlist.output: bad index";
  t.outputs.(i)

type stats = { gates2 : int; inverters : int; depth : int }

let fanins = function
  | Const _ | Input _ -> []
  | Not a -> [ a ]
  | And2 (a, b) | Or2 (a, b) | Xor2 (a, b) | Nand2 (a, b) | Nor2 (a, b)
  | Xnor2 (a, b) ->
      [ a; b ]

let reachable_from t roots =
  let seen = Array.make t.len false in
  let rec visit n =
    if n < 0 || n >= t.len then invalid_arg "Netlist.reachable_from: bad node";
    if not seen.(n) then begin
      seen.(n) <- true;
      List.iter visit (fanins t.gates.(n))
    end
  in
  List.iter visit roots;
  seen

let reachable t = reachable_from t (Array.to_list t.outputs)

let fanout_counts t =
  let counts = Array.make t.len 0 in
  for n = 0 to t.len - 1 do
    List.iter (fun a -> counts.(a) <- counts.(a) + 1) (fanins t.gates.(n))
  done;
  Array.iter (fun o -> counts.(o) <- counts.(o) + 1) t.outputs;
  counts

let stats t =
  let seen = reachable t in
  let gates2 = ref 0 and inverters = ref 0 in
  let depth = Array.make t.len 0 in
  for n = 0 to t.len - 1 do
    if seen.(n) then begin
      (match t.gates.(n) with
      | Const _ | Input _ -> ()
      | Not a -> depth.(n) <- depth.(a)
      | And2 (a, b) | Or2 (a, b) | Xor2 (a, b) | Nand2 (a, b) | Nor2 (a, b)
      | Xnor2 (a, b) ->
          depth.(n) <- 1 + max depth.(a) depth.(b));
      match t.gates.(n) with
      | Not _ -> incr inverters
      | And2 _ | Or2 _ | Xor2 _ | Nand2 _ | Nor2 _ | Xnor2 _ -> incr gates2
      | Const _ | Input _ -> ()
    end
  done;
  let d = Array.fold_left (fun acc o -> max acc depth.(o)) 0 t.outputs in
  { gates2 = !gates2; inverters = !inverters; depth = d }

let size t = (stats t).gates2

let eval_words t words =
  if Array.length words <> num_inputs t then
    invalid_arg "Netlist.eval_words: wrong number of input words";
  Instr.count "sim.gate-words" t.len;
  let v = Array.make t.len 0L in
  v.(1) <- -1L;
  for n = 0 to t.len - 1 do
    match t.gates.(n) with
    | Const b -> v.(n) <- (if b then -1L else 0L)
    | Input i -> v.(n) <- words.(i)
    | Not a -> v.(n) <- Int64.lognot v.(a)
    | And2 (a, b) -> v.(n) <- Int64.logand v.(a) v.(b)
    | Or2 (a, b) -> v.(n) <- Int64.logor v.(a) v.(b)
    | Xor2 (a, b) -> v.(n) <- Int64.logxor v.(a) v.(b)
    | Nand2 (a, b) -> v.(n) <- Int64.lognot (Int64.logand v.(a) v.(b))
    | Nor2 (a, b) -> v.(n) <- Int64.lognot (Int64.logor v.(a) v.(b))
    | Xnor2 (a, b) -> v.(n) <- Int64.lognot (Int64.logxor v.(a) v.(b))
  done;
  Array.map (fun o -> v.(o)) t.outputs

let eval t a =
  if Bv.length a <> num_inputs t then
    invalid_arg "Netlist.eval: wrong assignment width";
  let words = Array.init (num_inputs t) (fun i -> if Bv.get a i then 1L else 0L) in
  let outs = eval_words t words in
  let r = Bv.create (num_outputs t) in
  Array.iteri (fun i w -> Bv.set r i (Int64.logand w 1L = 1L)) outs;
  r

let eval_many t patterns =
  let np = Array.length patterns in
  Instr.count "sim.patterns" np;
  let ni = num_inputs t and no = num_outputs t in
  let results = Array.init np (fun _ -> Bv.create no) in
  let words = Array.make ni 0L in
  let block = ref 0 in
  while !block * 64 < np do
    let base = !block * 64 in
    let cnt = min 64 (np - base) in
    for i = 0 to ni - 1 do
      let w = ref 0L in
      for k = 0 to cnt - 1 do
        if Bv.get patterns.(base + k) i then
          w := Int64.logor !w (Int64.shift_left 1L k)
      done;
      words.(i) <- !w
    done;
    let outs = eval_words t words in
    for k = 0 to cnt - 1 do
      for o = 0 to no - 1 do
        Bv.set results.(base + k) o
          (Int64.logand (Int64.shift_right_logical outs.(o) k) 1L = 1L)
      done
    done;
    incr block
  done;
  results
