module Bdd = Lr_bdd.Bdd

let structural_support c ~output =
  let seen = Netlist.reachable_from c [ Netlist.output c output ] in
  let acc = ref [] in
  for n = Netlist.num_nodes c - 1 downto 0 do
    if seen.(n) then
      match Netlist.gate c n with
      | Netlist.Input i -> acc := i :: !acc
      | _ -> ()
  done;
  List.sort compare !acc

let functional_support c ~output =
  let structural = structural_support c ~output in
  let k = List.length structural in
  let var_of_pi = Hashtbl.create 16 in
  List.iteri (fun j i -> Hashtbl.replace var_of_pi i j) structural;
  let man = Bdd.man ~nvars:(max 1 k) in
  let memo = Hashtbl.create 256 in
  let rec node n =
    match Hashtbl.find_opt memo n with
    | Some b -> b
    | None ->
        let b =
          match Netlist.gate c n with
          | Netlist.Const false -> Bdd.zero man
          | Netlist.Const true -> Bdd.one man
          | Netlist.Input i -> Bdd.var man (Hashtbl.find var_of_pi i)
          | Netlist.Not a -> Bdd.not_ man (node a)
          | Netlist.And2 (a, b) -> Bdd.and_ man (node a) (node b)
          | Netlist.Or2 (a, b) -> Bdd.or_ man (node a) (node b)
          | Netlist.Xor2 (a, b) -> Bdd.xor_ man (node a) (node b)
          | Netlist.Nand2 (a, b) -> Bdd.not_ man (Bdd.and_ man (node a) (node b))
          | Netlist.Nor2 (a, b) -> Bdd.not_ man (Bdd.or_ man (node a) (node b))
          | Netlist.Xnor2 (a, b) -> Bdd.not_ man (Bdd.xor_ man (node a) (node b))
        in
        Hashtbl.replace memo n b;
        b
  in
  let f = node (Netlist.output c output) in
  let structural = Array.of_list structural in
  Bdd.support man f |> List.map (fun j -> structural.(j))

let fanout_cone c seeds =
  let n = Netlist.num_nodes c in
  let cone = Array.make n false in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Analysis.fanout_cone: bad node";
      cone.(s) <- true)
    seeds;
  (* nodes are topologically ordered, so one ascending pass closes the set *)
  for k = 0 to n - 1 do
    if not cone.(k) then
      if List.exists (fun a -> cone.(a)) (Netlist.fanins (Netlist.gate c k))
      then cone.(k) <- true
  done;
  cone

let output_density ?(patterns = 65_536) ~rng c ~output =
  let ni = Netlist.num_inputs c in
  let blocks = (patterns + 63) / 64 in
  let ones = ref 0 in
  for _ = 1 to blocks do
    let words = Array.init ni (fun _ -> Lr_bitvec.Rng.bits64 rng) in
    let out = Netlist.eval_words c words in
    let w = out.(output) in
    (* popcount of the 64-bit word *)
    let rec pc w acc =
      if w = 0L then acc
      else pc (Int64.logand w (Int64.sub w 1L)) (acc + 1)
    in
    ones := !ones + pc w 0
  done;
  Float.of_int !ones /. Float.of_int (blocks * 64)
