(** Boolean networks of 2-input primitive gates.

    This is the circuit representation of the contest: a DAG whose nodes are
    primary inputs, constants, inverters and the six 2-input primitives
    (AND, OR, XOR, NAND, NOR, XNOR). The builder structurally hashes every
    gate and applies local constant/idempotence folding, so syntactically
    duplicated logic is shared at construction time.

    Nodes are plain integers; the builder guarantees operands precede their
    users, so node order is a topological order. *)

type t
type node = int

val create : input_names:string array -> output_names:string array -> t
(** A fresh network with named PIs and POs. Outputs are initially constant
    false; define them with {!set_output}. *)

val num_inputs : t -> int
val num_outputs : t -> int
val input_names : t -> string array
val output_names : t -> string array

val input : t -> int -> node
(** [input t i] is the node of PI [i]. *)

val const_false : t -> node
val const_true : t -> node

val not_ : t -> node -> node
val and_ : t -> node -> node -> node
val or_ : t -> node -> node -> node
val xor_ : t -> node -> node -> node
val nand_ : t -> node -> node -> node
val nor_ : t -> node -> node -> node
val xnor_ : t -> node -> node -> node

val set_output : t -> int -> node -> unit
val output : t -> int -> node

(** Structure inspection, used by format writers and AIG conversion. *)
type gate =
  | Const of bool
  | Input of int
  | Not of node
  | And2 of node * node
  | Or2 of node * node
  | Xor2 of node * node
  | Nand2 of node * node
  | Nor2 of node * node
  | Xnor2 of node * node

val gate : t -> node -> gate
val num_nodes : t -> int

val fanins : gate -> node list
(** Operand nodes of a gate (empty for constants and inputs). *)

(** {2 Cone traversal}

    The one reachability walk shared by the format writers, the metrics,
    {!Lr_netlist.Analysis} and the [Lr_check] lint pass — callers should
    not keep private copies of this recursion. *)

val reachable : t -> bool array
(** [reachable t] indexed by node: in the cone of some primary output. *)

val reachable_from : t -> node list -> bool array
(** Same, from an arbitrary root set (e.g. one output's cone). *)

val fanout_counts : t -> int array
(** Per-node fanout over the {e whole} network (every gate operand
    reference plus one per output binding); dead fanout included, so a
    node with count 0 drives nothing at all. *)

(** {2 Metrics} *)

type stats = {
  gates2 : int;  (** 2-input gates reachable from some PO — the contest's size metric *)
  inverters : int;  (** reachable inverters (not counted in [gates2]) *)
  depth : int;  (** longest PI->PO path counting 2-input gates *)
}

val stats : t -> stats
val size : t -> int
(** [size t = (stats t).gates2]. *)

(** {2 Simulation} *)

val eval : t -> Lr_bitvec.Bv.t -> Lr_bitvec.Bv.t
(** [eval t a] simulates one full input assignment ([length a = num_inputs])
    and returns the full output assignment. *)

val eval_words : t -> int64 array -> int64 array
(** Word-parallel simulation: element [i] of the argument carries 64
    assignments' worth of PI [i]; the result likewise carries the POs.
    This is the workhorse behind batched black-box queries. *)

val eval_many : t -> Lr_bitvec.Bv.t array -> Lr_bitvec.Bv.t array
(** Batch of single-pattern simulations, internally packed into words. *)
