(** Berkeley Logic Interchange Format (combinational subset).

    Reads and writes the `.model/.inputs/.outputs/.names` BLIF dialect that
    ABC, SIS and most academic tools speak, so real benchmark suites (e.g.
    the original contest's published circuits, ISCAS/MCNC netlists) can be
    loaded and used as black-boxes.

    On input, each [.names] table (a single-output PLA over the node's
    fanins) is synthesised into 2-input gates via {!Builder.sop}. Latches
    and [.subckt] are rejected — the contest problem is combinational. *)

val write : ?model:string -> Netlist.t -> string
(** Emit BLIF. Every internal 2-input gate becomes a [.names] table. *)

val read : string -> Netlist.t
(** Parse BLIF. The whole table graph is validated eagerly — combinational
    cycles, multiply-driven or undriven signals and malformed rows are
    rejected even in logic no primary output reaches. Raises [Failure] with
    a line-tagged message on the first error. *)

(** {2 Source-level lint}

    The same detectors {!read} enforces, exposed as data so [lr_lint] and
    [Lr_check] can report every problem in a file instead of stopping at
    the first. *)

type severity = Error | Warning

type diag = {
  severity : severity;
  line : int;  (** 1-based source line; 0 when no single line applies *)
  signal : string;  (** offending signal, or [""] *)
  message : string;
  hint : string;  (** suggested fix *)
}

val lint : string -> diag list
(** All diagnostics for a BLIF text, sorted by line. Errors are exactly the
    conditions {!read} rejects; warnings flag dead tables, double
    inversions and structurally duplicate tables. A syntactically
    unparseable file yields a single line-0 error. *)

val write_file : ?model:string -> Netlist.t -> string -> unit
val read_file : string -> Netlist.t
