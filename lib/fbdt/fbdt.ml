module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module Cube = Lr_cube.Cube
module Cover = Lr_cube.Cover
module Instr = Lr_instr.Instr

type config = {
  node_rounds : int;
  biases : float array;
  leaf_epsilon : float;
  max_nodes : int;
}

let default_config =
  {
    node_rounds = 60;
    biases = Lr_sampling.Pattern_sampling.default_biases;
    leaf_epsilon = 0.0;
    max_nodes = 100_000;
  }

type tree =
  | Leaf of { cube : Cube.t; value : bool; approximate : bool }
  | Split of { cube : Cube.t; var : int; low : tree; high : tree }

let rec tree_depth = function
  | Leaf _ -> 0
  | Split { low; high; _ } -> 1 + max (tree_depth low) (tree_depth high)

let rec tree_leaves = function
  | Leaf _ -> 1
  | Split { low; high; _ } -> tree_leaves low + tree_leaves high

let rec classify t a =
  match t with
  | Leaf { value; _ } -> value
  | Split { var; low; high; _ } ->
      if Bv.get a var then classify high a else classify low a

let tree_to_dot ?(graph_name = "fbdt") ~names t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph %s {\n" graph_name;
  let counter = ref 0 in
  let rec go t =
    let id = !counter in
    incr counter;
    (match t with
    | Leaf { value; approximate; _ } ->
        add "  n%d [label=\"%d\", shape=box%s];\n" id
          (if value then 1 else 0)
          (if approximate then ", style=dashed" else "")
    | Split { var; low; high; _ } ->
        add "  n%d [label=\"%s\", shape=circle];\n" id (names var);
        let l = go low in
        let h = go high in
        add "  n%d -> n%d [label=\"0\", style=dashed];\n" id l;
        add "  n%d -> n%d [label=\"1\"];\n" id h);
    id
  in
  ignore (go t);
  add "}\n";
  Buffer.contents buf

type result = {
  onset : Lr_cube.Cover.t;
  offset : Lr_cube.Cover.t;
  truth_ratio : float;
  complete : bool;
  nodes_expanded : int;
  tree : tree option;
  table : bool array option;
}

(* Constrained pattern sampling at one tree node: returns per-variable
   dependency counts over [free] and the truth ratio, from
   [rounds * (|free| + 1)] oracle queries. The toggle statistics mirror
   Algorithm 1 with the shared-base-batch optimisation. *)
let sample_node cfg ~rng (oracle : Oracle.t) cube free =
  let n = oracle.Oracle.arity in
  let nfree = Array.length free in
  let rounds = cfg.node_rounds in
  let dependency = Array.make n 0 in
  let ones = ref 0 and total = ref 0 in
  let done_rounds = ref 0 in
  while !done_rounds < rounds do
    let blk = min 64 (rounds - !done_rounds) in
    let bias = cfg.biases.(!done_rounds / 8 mod Array.length cfg.biases) in
    let base =
      Array.init blk (fun _ ->
          let a = Bv.random_biased rng bias n in
          Cube.force cube a;
          a)
    in
    let base_out = oracle.Oracle.query base in
    Array.iter (fun b -> if b then incr ones) base_out;
    total := !total + blk;
    for fi = 0 to nfree - 1 do
      let i = free.(fi) in
      let flipped =
        Array.map
          (fun a ->
            let a' = Bv.copy a in
            Bv.flip a' i;
            a')
          base
      in
      let out = oracle.Oracle.query flipped in
      for k = 0 to blk - 1 do
        if out.(k) then incr ones;
        if out.(k) <> base_out.(k) then dependency.(i) <- dependency.(i) + 1
      done;
      total := !total + blk
    done;
    done_rounds := !done_rounds + blk
  done;
  let ratio =
    if !total = 0 then 0.0 else Float.of_int !ones /. Float.of_int !total
  in
  dependency, ratio

(* mutable construction cells: the levelized (FIFO) exploration assigns
   each cell's content when it is popped; parents hold their children *)
type cell = { ccube : Cube.t; mutable content : content }

and content =
  | Pending
  | Cleaf of bool * bool (* value, approximate *)
  | Csplit of int * cell * cell

let rec freeze cell =
  match cell.content with
  | Pending ->
      (* unreachable: every queued cell is resolved before the loop ends *)
      assert false
  | Cleaf (value, approximate) -> Leaf { cube = cell.ccube; value; approximate }
  | Csplit (var, low, high) ->
      Split { cube = cell.ccube; var; low = freeze low; high = freeze high }

let learn ?support cfg ~rng (oracle : Oracle.t) =
  let n = oracle.Oracle.arity in
  let support =
    match support with Some s -> s | None -> List.init n Fun.id
  in
  let onset = ref [] and offset = ref [] in
  let complete = ref true in
  let expanded = ref 0 in
  let queue = Queue.create () in
  let root = { ccube = Cube.top n; content = Pending } in
  Queue.add root queue;
  let root_ratio = ref None in
  while not (Queue.is_empty queue) do
    let cell = Queue.pop queue in
    let cube = cell.ccube in
    incr expanded;
    let free =
      support
      |> List.filter (fun v -> not (Cube.has_var cube v))
      |> Array.of_list
    in
    let leaf value approximate =
      cell.content <- Cleaf (value, approximate);
      if approximate then complete := false;
      if value then onset := cube :: !onset else offset := cube :: !offset
    in
    let budget_spent =
      oracle.Oracle.exhausted () || !expanded > cfg.max_nodes
    in
    if budget_spent then begin
      (* Algorithm 2, TimeLimit branch: approximate by majority. A cheap
         majority estimate is enough — sample without toggling. *)
      let probes =
        Array.init 32 (fun _ ->
            let a = Bv.random rng n in
            Cube.force cube a;
            a)
      in
      let out = oracle.Oracle.query probes in
      let ones = Array.fold_left (fun c b -> if b then c + 1 else c) 0 out in
      leaf (2 * ones > Array.length out) true
    end
    else begin
      let dependency, ratio = sample_node cfg ~rng oracle cube free in
      if !root_ratio = None then root_ratio := Some ratio;
      let eps = cfg.leaf_epsilon in
      if ratio >= 1.0 -. eps then leaf true false
      else if ratio <= eps then leaf false false
      else begin
        (* most significant free input *)
        let best = ref (-1) and best_count = ref 0 in
        Array.iter
          (fun i ->
            if dependency.(i) > !best_count then begin
              best := i;
              best_count := dependency.(i)
            end)
          free;
        if !best < 0 then
          (* no free input toggles the output, yet it is not constant:
             support was under-approximated here; classify by majority *)
          leaf (ratio > 0.5) true
        else begin
          let low = { ccube = Cube.add cube !best false; content = Pending } in
          let high = { ccube = Cube.add cube !best true; content = Pending } in
          cell.content <- Csplit (!best, low, high);
          Queue.add low queue;
          Queue.add high queue
        end
      end
    end
  done;
  Instr.count "fbdt.nodes" !expanded;
  Instr.count "fbdt.cubes" (List.length !onset + List.length !offset);
  {
    onset = Cover.of_cubes n !onset;
    offset = Cover.of_cubes n !offset;
    truth_ratio = (match !root_ratio with Some r -> r | None -> 0.0);
    complete = !complete;
    nodes_expanded = !expanded;
    tree = Some (freeze root);
    table = None;
  }

let learn_exhaustive ~rng:_ ~support (oracle : Oracle.t) =
  let k = List.length support in
  if k > 20 then invalid_arg "Fbdt.learn_exhaustive: support too large";
  let n = oracle.Oracle.arity in
  let support = Array.of_list support in
  let patterns =
    Array.init (1 lsl k) (fun m ->
        let a = Bv.create n in
        Array.iteri (fun j v -> Bv.set a v ((m lsr j) land 1 = 1)) support;
        a)
  in
  let out = oracle.Oracle.query patterns in
  let onset = ref [] and offset = ref [] in
  let ones = ref 0 in
  Array.iteri
    (fun m b ->
      let cube =
        Array.to_list support
        |> List.mapi (fun j v -> (v, (m lsr j) land 1 = 1))
        |> Cube.of_literals n
      in
      if b then begin
        incr ones;
        onset := cube :: !onset
      end
      else offset := cube :: !offset)
    out;
  Instr.count "fbdt.nodes" (1 lsl k);
  Instr.count "fbdt.cubes" (1 lsl k);
  {
    onset = Cover.of_cubes n !onset;
    offset = Cover.of_cubes n !offset;
    truth_ratio = Float.of_int !ones /. Float.of_int (1 lsl k);
    complete = true;
    nodes_expanded = 1 lsl k;
    tree = None;
    table = Some (Array.copy out);
  }
