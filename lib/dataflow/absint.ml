module N = Lr_netlist.Netlist
module L = Lattice

let fanout_lists c =
  let n = N.num_nodes c in
  let fo = Array.make (max n 1) [] in
  for node = n - 1 downto 0 do
    List.iter (fun a -> fo.(a) <- node :: fo.(a)) (N.fanins (N.gate c node))
  done;
  fo

let values ?(assume = []) c =
  let n = N.num_nodes c in
  let pinned = Hashtbl.create 16 in
  List.iter (fun (node, b) -> Hashtbl.replace pinned node b) assume;
  let fo = fanout_lists c in
  let transfer get node =
    match Hashtbl.find_opt pinned node with
    | Some b -> L.of_bool b
    | None -> (
        match N.gate c node with
        | N.Const b -> L.of_bool b
        | N.Input _ -> L.Top
        | N.Not a -> L.not_ (get a)
        | N.And2 (a, b) -> L.and_ (get a) (get b)
        | N.Or2 (a, b) -> L.or_ (get a) (get b)
        | N.Xor2 (a, b) -> L.xor_ (get a) (get b)
        | N.Nand2 (a, b) -> L.nand_ (get a) (get b)
        | N.Nor2 (a, b) -> L.nor_ (get a) (get b)
        | N.Xnor2 (a, b) -> L.xnor_ (get a) (get b))
  in
  L.fixpoint ~n ~direction:L.Forward
    ~dependents:(fun node -> fo.(node))
    ~transfer ~equal:L.equal
    ~init:(fun _ -> L.Top)

let constants ?values:vo c =
  let vals = match vo with Some v -> v | None -> values c in
  let reach = N.reachable c in
  let out = ref [] in
  for node = N.num_nodes c - 1 downto 0 do
    if reach.(node) then
      match N.gate c node with
      | N.Const _ | N.Input _ -> ()
      | _ -> (
          match L.to_bool vals.(node) with
          | Some b -> out := (node, b) :: !out
          | None -> ())
  done;
  !out

(* masks are packed 63 outputs per word, flat across nodes *)
type obs = { masks : int array; words : int; num_nodes : int }

let bits_per_word = 63

let observability ?values:vo c =
  let n = N.num_nodes c in
  let no = N.num_outputs c in
  let vals = match vo with Some v -> v | None -> values c in
  let w = max 1 ((no + bits_per_word - 1) / bits_per_word) in
  let fo = fanout_lists c in
  (* outputs bound directly to each node *)
  let po_mask = Array.make (max n 1) [] in
  for o = no - 1 downto 0 do
    let root = N.output c o in
    po_mask.(root) <- o :: po_mask.(root)
  done;
  (* is the edge [a -> z] blocked by a controlling sibling or a constant
     gate value at [z]? *)
  let blocked z a =
    if L.to_bool vals.(z) <> None then true
    else
      match N.gate c z with
      | N.Const _ | N.Input _ -> true (* no fanin edges *)
      | N.Not _ | N.Xor2 _ | N.Xnor2 _ -> false
      | N.And2 (x, y) | N.Nand2 (x, y) ->
          let other = if a = x then y else x in
          other <> a && vals.(other) = L.Zero
      | N.Or2 (x, y) | N.Nor2 (x, y) ->
          let other = if a = x then y else x in
          other <> a && vals.(other) = L.One
  in
  let transfer get node =
    let m = Array.make w 0 in
    List.iter
      (fun o -> m.(o / bits_per_word) <- m.(o / bits_per_word) lor (1 lsl (o mod bits_per_word)))
      po_mask.(node);
    List.iter
      (fun z ->
        if not (blocked z node) then begin
          let mz = get z in
          for i = 0 to w - 1 do
            m.(i) <- m.(i) lor mz.(i)
          done
        end)
      fo.(node);
    m
  in
  let per_node =
    L.fixpoint ~n ~direction:L.Backward
      ~dependents:(fun node -> N.fanins (N.gate c node))
      ~transfer
      ~equal:(fun a b -> a = b)
      ~init:(fun _ -> Array.make w 0)
  in
  let masks = Array.make (max 1 (n * w)) 0 in
  Array.iteri (fun node m -> Array.blit m 0 masks (node * w) w) per_node;
  { masks; words = w; num_nodes = n }

let observed t node =
  let any = ref false in
  for i = 0 to t.words - 1 do
    if t.masks.((node * t.words) + i) <> 0 then any := true
  done;
  !any

let observed_by t node o =
  t.masks.((node * t.words) + (o / bits_per_word)) land (1 lsl (o mod bits_per_word)) <> 0

let popcount x =
  let c = ref 0 and v = ref x in
  while !v <> 0 do
    v := !v land (!v - 1);
    incr c
  done;
  !c

let observers t node =
  let k = ref 0 in
  for i = 0 to t.words - 1 do
    k := !k + popcount t.masks.((node * t.words) + i)
  done;
  !k

let unobservable ?values:vo c =
  let vals = match vo with Some v -> v | None -> values c in
  let obs = observability ~values:vals c in
  let reach = N.reachable c in
  Array.init (N.num_nodes c) (fun node ->
      reach.(node)
      && (match N.gate c node with
         | N.Const _ | N.Input _ -> false
         | _ -> true)
      && not (observed obs node))
