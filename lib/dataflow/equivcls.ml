module N = Lr_netlist.Netlist
module Sat = Lr_sat.Sat
module Rng = Lr_bitvec.Rng
module Instr = Lr_instr.Instr
module Soa = Lr_kernel.Soa

(* Union-find over nodes with a phase bit relative to the parent; roots
   are the smallest node id of their class (same discipline as the AIG
   fraig pass). *)
module Uf = struct
  type t = { parent : int array; phase : bool array }

  let create n = { parent = Array.init n Fun.id; phase = Array.make n false }

  let rec find t n =
    if t.parent.(n) = n then n, false
    else begin
      let root, ph = find t t.parent.(n) in
      t.parent.(n) <- root;
      t.phase.(n) <- t.phase.(n) <> ph;
      root, t.phase.(n)
    end

  (* union [a] and [b] given that  a = b xor phase *)
  let union t a b phase =
    let ra, pa = find t a and rb, pb = find t b in
    if ra <> rb then begin
      let rel = pa <> pb <> phase in
      if ra < rb then begin
        t.parent.(rb) <- ra;
        t.phase.(rb) <- rel
      end
      else begin
        t.parent.(ra) <- rb;
        t.phase.(ra) <- rel
      end
    end
end

type t = {
  repr : int array;
  proved : int;
  refuted : int;
  sat_calls : int;
  rounds : int;
}

let repr_node t n = t.repr.(n) lsr 1
let repr_phase t n = t.repr.(n) land 1 = 1

let cnf_of_netlist c solver =
  let n = N.num_nodes c in
  for _ = 1 to n do
    ignore (Sat.new_var solver)
  done;
  (* x <-> a /\ b, with operand literals already signed *)
  let and2 x a b =
    Sat.add_clause solver [ -x; a ];
    Sat.add_clause solver [ -x; b ];
    Sat.add_clause solver [ x; -a; -b ]
  in
  let xor2 x a b =
    Sat.add_clause solver [ -x; a; b ];
    Sat.add_clause solver [ -x; -a; -b ];
    Sat.add_clause solver [ x; -a; b ];
    Sat.add_clause solver [ x; a; -b ]
  in
  for node = 0 to n - 1 do
    let x = node + 1 in
    match N.gate c node with
    | N.Const false -> Sat.add_clause solver [ -x ]
    | N.Const true -> Sat.add_clause solver [ x ]
    | N.Input _ -> ()
    | N.Not a ->
        Sat.add_clause solver [ -x; -(a + 1) ];
        Sat.add_clause solver [ x; a + 1 ]
    | N.And2 (a, b) -> and2 x (a + 1) (b + 1)
    | N.Nand2 (a, b) -> and2 (-x) (a + 1) (b + 1)
    | N.Or2 (a, b) -> and2 (-x) (-(a + 1)) (-(b + 1))
    | N.Nor2 (a, b) -> and2 x (-(a + 1)) (-(b + 1))
    | N.Xor2 (a, b) -> xor2 x (a + 1) (b + 1)
    | N.Xnor2 (a, b) -> xor2 (-x) (a + 1) (b + 1)
  done

let sim_nodes c words =
  let n = N.num_nodes c in
  Instr.count "dataflow.sim-words" n;
  let v = Array.make n 0L in
  for node = 0 to n - 1 do
    v.(node) <-
      (match N.gate c node with
      | N.Const b -> if b then -1L else 0L
      | N.Input i -> words.(i)
      | N.Not a -> Int64.lognot v.(a)
      | N.And2 (a, b) -> Int64.logand v.(a) v.(b)
      | N.Or2 (a, b) -> Int64.logor v.(a) v.(b)
      | N.Xor2 (a, b) -> Int64.logxor v.(a) v.(b)
      | N.Nand2 (a, b) -> Int64.lognot (Int64.logand v.(a) v.(b))
      | N.Nor2 (a, b) -> Int64.lognot (Int64.logor v.(a) v.(b))
      | N.Xnor2 (a, b) -> Int64.lognot (Int64.logxor v.(a) v.(b)))
  done;
  v

let compute ?(words = 16) ?(max_rounds = 32) ?(max_sat_checks = 2000)
    ?(kernel = true) ~rng c =
  let n = N.num_nodes c in
  let ni = N.num_inputs c in
  let uf = Uf.create (max n 1) in
  let solver = Sat.create () in
  cnf_of_netlist c solver;
  let miter_cache = Hashtbl.create 256 in
  let sat_calls = ref 0 and proved = ref 0 and refuted = ref 0 in
  let blocks = ref [] in
  for _ = 1 to words do
    blocks := Array.init ni (fun _ -> Rng.bits64 rng) :: !blocks
  done;
  (* the netlist is frozen during [compute] and blocks are only prepended:
     in kernel mode each block is simulated once and its node values are
     reused across refinement rounds (the sim counter still advances as if
     every block were resimulated, so run reports stay identical) *)
  let soa = if kernel then Some (Soa.of_netlist c) else None in
  let sim_cache = ref [] in
  let cached_len = ref 0 in
  let simulate_blocks () =
    match soa with
    | None -> List.map (fun blk -> sim_nodes c blk) !blocks
    | Some soa ->
        let total = List.length !blocks in
        let rec take k l =
          if k = 0 then []
          else match l with [] -> [] | x :: tl -> x :: take (k - 1) tl
        in
        let fresh =
          List.map (fun blk -> Soa.node_values soa blk)
            (take (total - !cached_len) !blocks)
        in
        Instr.count "dataflow.sim-words" (total * n);
        Instr.count "kernel.sim-cached-words" (!cached_len * n);
        sim_cache := fresh @ !sim_cache;
        cached_len := total;
        !sim_cache
  in
  let refuted_pairs = Hashtbl.create 256 in
  let prove_equal a b phase =
    (* a = b xor phase?  UNSAT of the miter under the right assumption *)
    incr sat_calls;
    let t =
      match Hashtbl.find_opt miter_cache (a, b) with
      | Some t -> t
      | None ->
          let t = Sat.new_var solver in
          let va = a + 1 and vb = b + 1 in
          Sat.add_clause solver [ -t; va; vb ];
          Sat.add_clause solver [ -t; -va; -vb ];
          Sat.add_clause solver [ t; -va; vb ];
          Sat.add_clause solver [ t; va; -vb ];
          Hashtbl.replace miter_cache (a, b) t;
          t
    in
    let assumption = if phase then -t else t in
    match Sat.solve ~assumptions:[ assumption ] solver with
    | Sat.Unsat -> `Equal
    | Sat.Sat ->
        let cex = Array.make ni false in
        for i = 0 to ni - 1 do
          cex.(i) <- Sat.value solver (2 + i + 1)
        done;
        `Counterexample cex
  in
  let round = ref 0 in
  let progress = ref true in
  while !progress && !round < max_rounds && !sat_calls < max_sat_checks do
    incr round;
    progress := false;
    let sims =
      Instr.span ~name:"dataflow.sim" (fun () -> simulate_blocks ())
    in
    let signature node = List.map (fun v -> v.(node)) sims in
    let canon sig_ =
      match sig_ with
      | [] -> [], false
      | w :: _ ->
          if Int64.logand w 1L = 1L then List.map Int64.lognot sig_, true
          else sig_, false
    in
    let classes = Hashtbl.create 1024 in
    for node = 0 to n - 1 do
      let root, _ = Uf.find uf node in
      if root = node then begin
        let key, _ = canon (signature node) in
        let existing =
          match Hashtbl.find_opt classes key with Some l -> l | None -> []
        in
        Hashtbl.replace classes key (node :: existing)
      end
    done;
    (* deterministic order: classes sorted by their smallest member *)
    let class_list =
      Hashtbl.fold (fun _ members acc -> List.rev members :: acc) classes []
      |> List.sort (fun a b -> compare (List.hd a) (List.hd b))
    in
    let new_cexs = ref [] in
    let checks_before = !sat_calls in
    Instr.span ~name:"dataflow.sat" (fun () ->
        List.iter
          (fun members ->
            match members with
            | [] | [ _ ] -> ()
            | rep :: rest ->
                List.iter
                  (fun m ->
                    if
                      !sat_calls < max_sat_checks
                      && not (Hashtbl.mem refuted_pairs (rep, m))
                    then begin
                      let _, prep = canon (signature rep) in
                      let _, pm = canon (signature m) in
                      let phase = prep <> pm in
                      match prove_equal rep m phase with
                      | `Equal ->
                          Uf.union uf rep m phase;
                          incr proved;
                          progress := true
                      | `Counterexample cex ->
                          Hashtbl.replace refuted_pairs (rep, m) ();
                          incr refuted;
                          new_cexs := cex :: !new_cexs
                    end)
                  rest)
          class_list);
    Instr.count "dataflow.sat-calls" (!sat_calls - checks_before);
    (* counterexamples become new simulation patterns, 64 per word *)
    let rec pack = function
      | [] -> ()
      | cexs ->
          let chunk, rest =
            let rec split k acc = function
              | x :: tl when k < 64 -> split (k + 1) (x :: acc) tl
              | tl -> acc, tl
            in
            split 0 [] cexs
          in
          let chunk = Array.of_list chunk in
          let blk =
            Array.init ni (fun i ->
                let w = ref 0L in
                Array.iteri
                  (fun k cex ->
                    if cex.(i) then w := Int64.logor !w (Int64.shift_left 1L k))
                  chunk;
                !w)
          in
          blocks := blk :: !blocks;
          progress := true;
          pack rest
    in
    pack !new_cexs
  done;
  Instr.count "dataflow.rounds" !round;
  Instr.count "dataflow.proved" !proved;
  Instr.count "dataflow.refuted" !refuted;
  let repr =
    Array.init n (fun node ->
        let root, ph = Uf.find uf node in
        (2 * root) lor if ph then 1 else 0)
  in
  { repr; proved = !proved; refuted = !refuted; sat_calls = !sat_calls; rounds = !round }
