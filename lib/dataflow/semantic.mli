(** Semantic lint: dataflow-powered findings over a netlist.

    Where {!Lr_check.Lint} checks {e structure} (cycles, dead gates,
    strash misses), these rules check {e meaning}, using the ternary
    abstract interpretation ({!Absint}), the equivalence-class engine
    ({!Equivcls}) and the sweep's rewrite matchers ({!Sweep}) — all
    query-free and deterministic for a fixed seed.

    Rules emitted (all through {!Lr_check.Finding}):
    - [const-node] (warning) — a reachable gate whose ternary value is a
      proven constant.
    - [provable-constant-output] (warning) — an output driven by such a
      node (deeper than the structural [constant-output], which only sees
      literal constant gates).
    - [unobservable-node] (warning) — a reachable gate no primary output
      can observe: an observability don't-care over the whole space.
    - [sat-constant-node] (warning) — SAT-proven constant the lattice
      alone cannot see.
    - [duplicate-cone] (warning) / [complement-cone] (info) — a node
      proven functionally equal (resp. complementary) to an earlier node.
    - [duplicate-output] (warning) / [complement-output] (info) — two
      primary outputs proven equal (resp. complementary).
    - [inverter-chain] (info) — chained inverters surviving in the DAG.
    - [odc-simplifiable] (warning) — a gate provably replaceable by one
      of its fanins (simulation-filtered, SAT-proven resubstitution).
    - [xor-convertible] (info) — an AND/OR/NOT tree computing an XOR or
      XNOR, rebuildable as one gate.
    - [sweep-opportunity] (info) — summary: gates a full {!Sweep.run}
      would remove.

    Output is normalized ({!Lr_check.Finding.normalize}). *)

module N = Lr_netlist.Netlist

val netlist : ?seed:int -> ?max_sat_checks:int -> N.t -> Lr_check.Finding.t list
(** Deep-lint a netlist. [seed] (default 1) drives the simulation
    patterns; [max_sat_checks] (default 2000) bounds the SAT work. *)

val removal_estimate : ?seed:int -> N.t -> int
(** Gates a [Sweep.run ~level:Full] would remove (a dry run — the
    argument netlist is not modified). *)

val rule_counts : Lr_check.Finding.t list -> (string * int) list
(** Findings per rule id, sorted by rule id — the [lr-lint-report/v2]
    [rule_counts] payload. *)
