module Instr = Lr_instr.Instr

type v = Zero | One | Top

let equal (a : v) b = a = b
let join a b = if a = b then a else Top
let of_bool b = if b then One else Zero
let to_bool = function Zero -> Some false | One -> Some true | Top -> None
let to_string = function Zero -> "0" | One -> "1" | Top -> "T"
let not_ = function Zero -> One | One -> Zero | Top -> Top

(* controlling values short-circuit: And(Zero, Top) = Zero *)
let and_ a b =
  match a, b with
  | Zero, _ | _, Zero -> Zero
  | One, x | x, One -> x
  | Top, Top -> Top

let or_ a b =
  match a, b with
  | One, _ | _, One -> One
  | Zero, x | x, Zero -> x
  | Top, Top -> Top

let xor_ a b =
  match a, b with
  | Top, _ | _, Top -> Top
  | _ -> of_bool (a <> b)

let nand_ a b = not_ (and_ a b)
let nor_ a b = not_ (or_ a b)
let xnor_ a b = not_ (xor_ a b)

type direction = Forward | Backward

(* Binary min-heap of node ids under a direction-dependent priority, with a
   membership bitmap so a node is queued at most once. Processing lowest
   ids first (forward) means a topologically ordered DAG is evaluated in
   dependency order and settles in a single pass. *)
let fixpoint ~n ~direction ~dependents ~transfer ~equal ~init =
  let values = Array.init n init in
  if n > 0 then begin
    let key = match direction with Forward -> fun i -> i | Backward -> fun i -> n - 1 - i in
    let heap = Array.make n 0 in
    let size = ref 0 in
    let inq = Array.make n false in
    let swap i j =
      let t = heap.(i) in
      heap.(i) <- heap.(j);
      heap.(j) <- t
    in
    let push node =
      if not inq.(node) then begin
        inq.(node) <- true;
        heap.(!size) <- node;
        incr size;
        let i = ref (!size - 1) in
        while !i > 0 && key heap.(!i) < key heap.((!i - 1) / 2) do
          swap !i ((!i - 1) / 2);
          i := (!i - 1) / 2
        done
      end
    in
    let pop () =
      let top = heap.(0) in
      decr size;
      heap.(0) <- heap.(!size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < !size && key heap.(l) < key heap.(!m) then m := l;
        if r < !size && key heap.(r) < key heap.(!m) then m := r;
        if !m = !i then continue := false
        else begin
          swap !i !m;
          i := !m
        end
      done;
      inq.(top) <- false;
      top
    in
    (match direction with
    | Forward -> for i = 0 to n - 1 do push i done
    | Backward -> for i = n - 1 downto 0 do push i done);
    let steps = ref 0 in
    while !size > 0 do
      let node = pop () in
      incr steps;
      let v = transfer (fun i -> values.(i)) node in
      if not (equal v values.(node)) then begin
        values.(node) <- v;
        List.iter push (dependents node)
      end
    done;
    Instr.count "dataflow.fixpoint-steps" !steps
  end;
  values
