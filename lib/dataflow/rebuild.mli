(** Rebuild a netlist under a per-node rewrite plan.

    The one reconstruction engine shared by every sweep stage: given an
    {!action} for each old node, it marks the nodes actually demanded by
    the primary outputs (through the rewrites), then reconstructs only
    those through the strashing {!Lr_netlist.Netlist} constructors — so
    local folding, sharing and inverter collapse happen for free, and the
    result never contains dead logic introduced by the rewrite itself.

    Every node an action refers to must be strictly smaller than the node
    it rewrites (class roots, fanins and XOR operands all are, by
    construction), which keeps a single descending demand pass and a
    single ascending build pass sufficient. *)

module N = Lr_netlist.Netlist

type action =
  | Keep  (** rebuild the same gate from the mapped fanins *)
  | Const of bool  (** replace the node by a constant *)
  | Alias of N.node * bool
      (** [Alias (m, ph)]: replace by old node [m] ([m < node]),
          inverted when [ph] *)
  | Xor of N.node * N.node * bool
      (** [Xor (a, b, ph)]: replace by [a XOR b] over old nodes
          ([a, b < node]), inverted when [ph] — the XOR-recovery hook *)

val apply : N.t -> (N.node -> action) -> N.t
