module N = Lr_netlist.Netlist
module L = Lattice
module Sat = Lr_sat.Sat
module Rng = Lr_bitvec.Rng
module Instr = Lr_instr.Instr
module Soa = Lr_kernel.Soa
module Incremental = Lr_kernel.Incremental
module Portfolio = Lr_kernel.Portfolio

type level = Const_prop | Full

type stats = {
  rounds : int;
  const_folded : int;
  merged : int;
  xor_recovered : int;
  odc_rewrites : int;
  sat_calls : int;
  gates_before : int;
  gates_after : int;
}

let removed st = max 0 (st.gates_before - st.gates_after)

(* ---------------- constant propagation ---------------- *)

let const_stage c =
  let vals = Absint.values c in
  let reach = N.reachable c in
  let folded = ref 0 in
  let act node =
    match N.gate c node with
    | N.Const _ | N.Input _ -> Rebuild.Keep
    | _ -> (
        match L.to_bool vals.(node) with
        | Some b ->
            if reach.(node) then incr folded;
            Rebuild.Const b
        | None -> Rebuild.Keep)
  in
  let out = Rebuild.apply c act in
  out, !folded

(* ---------------- duplicate-cone merging ---------------- *)

let merge_stage ?kernel ~rng ~max_sat_checks c =
  let eq = Equivcls.compute ~max_sat_checks ?kernel ~rng c in
  let reach = N.reachable c in
  let merged = ref 0 in
  let act node =
    let root = Equivcls.repr_node eq node in
    if root = node then Rebuild.Keep
    else begin
      if reach.(node) then incr merged;
      Rebuild.Alias (root, Equivcls.repr_phase eq node)
    end
  in
  (* bind before building the tuple: the counter is only final once
     [apply] has run the action callback over every node *)
  let out = Rebuild.apply c act in
  out, !merged, eq.Equivcls.sat_calls

(* ---------------- XOR/XNOR structure recovery ---------------- *)

(* The AIG round-trip leaves every XOR as three AND gates plus inverters;
   the contest metric counts all 2-input primitives equally, so rebuilding
   the shape as one Xor2 saves up to two gates per occurrence. *)
let xor_action c z =
  let is_compl x y =
    match N.gate c x, N.gate c y with
    | N.Not u, _ when u = y -> true
    | _, N.Not v when v = x -> true
    | _ -> false
  in
  (* p = And2(a,b) and q = And2 over the complements of {a,b}? *)
  let and_pair p q =
    match N.gate c p, N.gate c q with
    | N.And2 (a, b), N.And2 (d, e) ->
        if (is_compl a d && is_compl b e) || (is_compl a e && is_compl b d)
        then Some (a, b)
        else None
    | _ -> None
  in
  (* fold operand inverters into the output phase *)
  let strip a b ph =
    let rec base x ph =
      match N.gate c x with N.Not y -> base y (not ph) | _ -> x, ph
    in
    let a, pa = base a false in
    let b, pb = base b false in
    Rebuild.Xor (a, b, ph <> pa <> pb)
  in
  match N.gate c z with
  (* ab + (~a)(~b) = XNOR;  NOR of the pair = XOR *)
  | N.Or2 (p, q) -> (
      match and_pair p q with Some (a, b) -> strip a b true | None -> Rebuild.Keep)
  | N.Nor2 (p, q) -> (
      match and_pair p q with Some (a, b) -> strip a b false | None -> Rebuild.Keep)
  (* ~(ab) * ~((~a)(~b)) = XOR — the pure-AND form Aig.to_netlist emits *)
  | N.And2 (u, v) | N.Nand2 (u, v) -> (
      match N.gate c u, N.gate c v with
      | N.Not p, N.Not q -> (
          match and_pair p q with
          | Some (a, b) ->
              let ph = match N.gate c z with N.Nand2 _ -> true | _ -> false in
              strip a b ph
          | None -> Rebuild.Keep)
      | _ -> Rebuild.Keep)
  | _ -> Rebuild.Keep

let xor_stage c =
  let reach = N.reachable c in
  let count = ref 0 in
  let act node =
    match xor_action c node with
    | Rebuild.Keep -> Rebuild.Keep
    | a ->
        if reach.(node) then incr count;
        a
  in
  let out = Rebuild.apply c act in
  out, !count

(* ---------------- ODC resubstitution ---------------- *)

let fanout_cone c z =
  let n = N.num_nodes c in
  let cone = Array.make n false in
  cone.(z) <- true;
  for k = z + 1 to n - 1 do
    if List.exists (fun a -> cone.(a)) (N.fanins (N.gate c k)) then
      cone.(k) <- true
  done;
  cone

(* prove that replacing node [z] by old node [m] (inverted when [ph])
   changes no primary output: encode the original netlist once, a patched
   copy of [z]'s fanout cone on fresh variables, and ask SAT for a
   distinguishing input *)
let prove_resub ?(kernel = true) ?pool c z (m, ph) =
  let n = N.num_nodes c in
  let cone = fanout_cone c z in
  let observed = ref false in
  for o = 0 to N.num_outputs c - 1 do
    if cone.(N.output c o) then observed := true
  done;
  if not !observed then true (* no output sees the node at all *)
  else begin
    let encode solver =
      Equivcls.cnf_of_netlist c solver;
      let patched = Array.make n 0 in
      let and2 x a b =
        Sat.add_clause solver [ -x; a ];
        Sat.add_clause solver [ -x; b ];
        Sat.add_clause solver [ x; -a; -b ]
      in
      let xor2 x a b =
        Sat.add_clause solver [ -x; a; b ];
        Sat.add_clause solver [ -x; -a; -b ];
        Sat.add_clause solver [ x; -a; b ];
        Sat.add_clause solver [ x; a; -b ]
      in
      for k = 0 to n - 1 do
        if k = z then patched.(k) <- (if ph then -(m + 1) else m + 1)
        else if not cone.(k) then patched.(k) <- k + 1
        else begin
          let x = Sat.new_var solver in
          patched.(k) <- x;
          let pl a = patched.(a) in
          match N.gate c k with
          | N.Const _ | N.Input _ ->
              assert false (* no fanins, never in the cone *)
          | N.Not a ->
              Sat.add_clause solver [ -x; -pl a ];
              Sat.add_clause solver [ x; pl a ]
          | N.And2 (a, b) -> and2 x (pl a) (pl b)
          | N.Nand2 (a, b) -> and2 (-x) (pl a) (pl b)
          | N.Or2 (a, b) -> and2 (-x) (-pl a) (-pl b)
          | N.Nor2 (a, b) -> and2 x (-pl a) (-pl b)
          | N.Xor2 (a, b) -> xor2 x (pl a) (pl b)
          | N.Xnor2 (a, b) -> xor2 (-x) (pl a) (pl b)
        end
      done;
      let diffs = ref [] in
      for o = 0 to N.num_outputs c - 1 do
        let r = N.output c o in
        if cone.(r) then begin
          let t = Sat.new_var solver in
          let vr = r + 1 and pr = patched.(r) in
          Sat.add_clause solver [ -t; vr; pr ];
          Sat.add_clause solver [ -t; -vr; -pr ];
          Sat.add_clause solver [ t; -vr; pr ];
          Sat.add_clause solver [ t; vr; -pr ];
          diffs := t :: !diffs
        end
      done;
      Sat.add_clause solver !diffs
    in
    let solver = Sat.create () in
    encode solver;
    let result =
      if kernel then
        (* verdict-only query (the model is never read), so the portfolio
           can hand the answer to any racer *)
        Portfolio.race ?pool
          ~primary:{ Portfolio.solver; assumptions = [] }
          ~secondaries:
            (Array.to_list
               (Array.map
                  (fun config () ->
                    let s = Sat.create ~config () in
                    encode s;
                    { Portfolio.solver = s; assumptions = [] })
                  Portfolio.secondary_configs))
          ()
      else Sat.solve solver
    in
    match result with Sat.Unsat -> true | Sat.Sat -> false
  end

(* does replacing [z]'s word by [w] leave every PO word unchanged? *)
let patched_outputs_equal c v z w =
  let n = N.num_nodes c in
  let v' = Array.copy v in
  v'.(z) <- w;
  for k = z + 1 to n - 1 do
    v'.(k) <-
      (match N.gate c k with
      | N.Const b -> if b then -1L else 0L
      | N.Input _ -> v'.(k)
      | N.Not a -> Int64.lognot v'.(a)
      | N.And2 (a, b) -> Int64.logand v'.(a) v'.(b)
      | N.Or2 (a, b) -> Int64.logor v'.(a) v'.(b)
      | N.Xor2 (a, b) -> Int64.logxor v'.(a) v'.(b)
      | N.Nand2 (a, b) -> Int64.lognot (Int64.logand v'.(a) v'.(b))
      | N.Nor2 (a, b) -> Int64.lognot (Int64.logor v'.(a) v'.(b))
      | N.Xnor2 (a, b) -> Int64.lognot (Int64.logxor v'.(a) v'.(b)))
  done;
  let ok = ref true in
  for o = 0 to N.num_outputs c - 1 do
    let r = N.output c o in
    if v'.(r) <> v.(r) then ok := false
  done;
  !ok

let sim_word_budget = 2_000_000

(* scan nodes from the outputs down for a fanin resubstitution that
   survives the simulation filter and the SAT proof; [emit] receives each
   proven rewrite and decides whether to keep scanning *)
let scan_resubs ?(kernel = true) ?pool ~sat_budget ~rng ~emit c =
  let n = N.num_nodes c in
  let ni = N.num_inputs c in
  let reach = N.reachable c in
  let blocks = Array.init 8 (fun _ -> Array.init ni (fun _ -> Rng.bits64 rng)) in
  (* kernel mode keeps one incremental engine per pattern block: the
     candidate filter then resimulates only [z]'s true fanout cone via
     [Incremental.with_forced] instead of every node above [z]. The sim
     budget below still decrements by the legacy full-resim cost, so the
     scan visits exactly the same candidates in the same order. *)
  let engines =
    if kernel then begin
      let soa = Soa.of_netlist c in
      Some
        (Array.map
           (fun b ->
             Instr.count "dataflow.sim-words" n;
             let e = Incremental.create soa in
             Incremental.load e b;
             e)
           blocks)
    end
    else None
  in
  let sims =
    match engines with
    | Some engs -> Array.map Incremental.values engs
    | None -> Array.map (fun b -> Equivcls.sim_nodes c b) blocks
  in
  let base_outputs =
    match engines with
    | Some engs -> Array.map (fun e -> Incremental.outputs e) engs
    | None -> [||]
  in
  let patched_ok idx v z w =
    match engines with
    | None -> patched_outputs_equal c v z w
    | Some engs ->
        Incremental.with_forced engs.(idx) ~node:z w (fun e ->
            Incremental.outputs e = base_outputs.(idx))
  in
  let sim_budget = ref sim_word_budget in
  let sat_used = ref 0 in
  let continue_scan = ref true in
  let z = ref (n - 1) in
  while !continue_scan && !z >= 2 do
    (if reach.(!z) && sat_budget - !sat_used > 0 && !sim_budget > 0 then
       match N.gate c !z with
       | N.Const _ | N.Input _ | N.Not _ -> ()
       | g ->
           let a, b =
             match N.fanins g with [ a; b ] -> a, b | _ -> assert false
           in
           let candidates = [ a, false; b, false; a, true; b, true ] in
           let rec try_cands = function
             | [] -> ()
             | (m, ph) :: rest ->
                 if sat_budget - !sat_used <= 0 || !sim_budget <= 0 then ()
                 else begin
                   sim_budget :=
                     !sim_budget - (Array.length sims * (n - !z));
                   let sim_ok =
                     let ok = ref true in
                     let i = ref 0 in
                     while !ok && !i < Array.length sims do
                       let v = sims.(!i) in
                       let w = if ph then Int64.lognot v.(m) else v.(m) in
                       ok := patched_ok !i v !z w;
                       incr i
                     done;
                     !ok
                   in
                   if sim_ok then begin
                     incr sat_used;
                     if prove_resub ~kernel ?pool c !z (m, ph) then begin
                       if not (emit (!z, m, ph)) then continue_scan := false
                     end
                     else try_cands rest
                   end
                   else try_cands rest
                 end
           in
           try_cands candidates);
    decr z
  done;
  !sat_used

let odc_candidates ?(max_sat_checks = 24) ?kernel ?pool ~rng c =
  let found = ref [] in
  let _ =
    scan_resubs ?kernel ?pool ~sat_budget:max_sat_checks ~rng
      ~emit:(fun r ->
        found := r :: !found;
        true)
      c
  in
  List.rev !found

let odc_stage ?kernel ?pool ~rng ~max_sat_checks c0 =
  let c = ref c0 in
  let applied = ref 0 in
  let sat_total = ref 0 in
  let progress = ref true in
  (* apply one proven rewrite at a time: each proof is against the current
     netlist, so successive rewrites cannot interact unsoundly *)
  while !progress && !sat_total < max_sat_checks do
    progress := false;
    let hit = ref None in
    let used =
      scan_resubs ?kernel ?pool ~sat_budget:(max_sat_checks - !sat_total) ~rng
        ~emit:(fun r ->
          hit := Some r;
          false)
        !c
    in
    sat_total := !sat_total + used;
    match !hit with
    | None -> ()
    | Some (z, m, ph) ->
        let act node = if node = z then Rebuild.Alias (m, ph) else Rebuild.Keep in
        c := Rebuild.apply !c act;
        incr applied;
        progress := true
  done;
  !c, !applied, !sat_total

(* ---------------- the sweep driver ---------------- *)

let run ?(level = Full) ?(max_rounds = 3) ?(max_sat_checks = 2000)
    ?(max_odc_checks = 24) ?kernel ?pool ?verify ~rng c0 =
  let gates_before = N.size c0 in
  let const_folded = ref 0 in
  let merged = ref 0 in
  let xor_recovered = ref 0 in
  let odc_rewrites = ref 0 in
  let sat_calls = ref 0 in
  let rounds = ref 0 in
  let checked stage before after changed =
    if changed > 0 then
      match verify with Some v -> v ~stage before after | None -> ()
  in
  (* a stage that fails to shrink the netlist is discarded *)
  let stage name f c =
    let after, changed, sat = Instr.span ~name (fun () -> f c) in
    sat_calls := !sat_calls + sat;
    if changed > 0 && N.size after > N.size c then c
    else begin
      checked name c after changed;
      after
    end
  in
  let c = ref c0 in
  let progress = ref true in
  while !progress && !rounds < max_rounds do
    incr rounds;
    let size0 = N.size !c in
    c :=
      stage "sweep.const"
        (fun c ->
          let out, k = const_stage c in
          const_folded := !const_folded + k;
          out, k, 0)
        !c;
    if level = Full then begin
      c :=
        stage "sweep.merge"
          (fun c ->
            let out, k, sat = merge_stage ?kernel ~rng ~max_sat_checks c in
            merged := !merged + k;
            out, k, sat)
          !c;
      c :=
        stage "sweep.xor"
          (fun c ->
            let out, k = xor_stage c in
            xor_recovered := !xor_recovered + k;
            out, k, 0)
          !c;
      c :=
        stage "sweep.odc"
          (fun c ->
            let out, k, sat =
              odc_stage ?kernel ?pool ~rng ~max_sat_checks:max_odc_checks c
            in
            odc_rewrites := !odc_rewrites + k;
            out, k, sat)
          !c
    end;
    progress := N.size !c < size0
  done;
  Instr.count "sweep.removed" (max 0 (gates_before - N.size !c));
  ( !c,
    {
      rounds = !rounds;
      const_folded = !const_folded;
      merged = !merged;
      xor_recovered = !xor_recovered;
      odc_rewrites = !odc_rewrites;
      sat_calls = !sat_calls;
      gates_before;
      gates_after = N.size !c;
    } )
