module N = Lr_netlist.Netlist
module L = Lattice
module Rng = Lr_bitvec.Rng
module F = Lr_check.Finding

let sprintf = Printf.sprintf

let netlist ?(seed = 1) ?(max_sat_checks = 2000) c =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let n = N.num_nodes c in
  let reach = N.reachable c in
  let vals = Absint.values c in
  (* forward constants *)
  let lattice_const = Array.make (max n 1) false in
  List.iter
    (fun (node, b) ->
      lattice_const.(node) <- true;
      add
        (F.make F.Warning ~rule:"const-node" ~where:(sprintf "node %d" node)
           ~hint:"fold the node to a constant (--sweep const)"
           (sprintf "gate is provably the constant %d" (Bool.to_int b))))
    (Absint.constants ~values:vals c);
  for o = 0 to N.num_outputs c - 1 do
    let root = N.output c o in
    match N.gate c root, L.to_bool vals.(root) with
    | (N.Const _ | N.Input _), _ | _, None -> ()
    | _, Some b ->
        add
          (F.make F.Warning ~rule:"provable-constant-output"
             ~where:(sprintf "output %s" (N.output_names c).(o))
             ~hint:"replace the cone by a constant driver"
             (sprintf "output provably evaluates to the constant %d"
                (Bool.to_int b)))
  done;
  (* observability don't-cares *)
  let unobs = Absint.unobservable ~values:vals c in
  Array.iteri
    (fun node dead ->
      if dead && not lattice_const.(node) then
        add
          (F.make F.Warning ~rule:"unobservable-node"
             ~where:(sprintf "node %d" node)
             ~hint:"no output observes the node; remove it (--sweep full)"
             "reachable gate is blocked from every primary output"))
    unobs;
  (* inverter chains *)
  for node = 0 to n - 1 do
    if reach.(node) then
      match N.gate c node with
      | N.Not a -> (
          match N.gate c a with
          | N.Not _ ->
              add
                (F.make F.Info ~rule:"inverter-chain"
                   ~where:(sprintf "node %d" node)
                   ~hint:"collapse chained inverters"
                   (sprintf "inverter fed by inverter node %d" a))
          | _ -> ())
      | _ -> ()
  done;
  (* equivalence classes: duplicates, complements, SAT constants *)
  let rng = Rng.create seed in
  let eq = Equivcls.compute ~max_sat_checks ~rng c in
  for node = 0 to n - 1 do
    if reach.(node) then begin
      let root = Equivcls.repr_node eq node in
      let ph = Equivcls.repr_phase eq node in
      if root <> node then
        match N.gate c node with
        | N.Const _ | N.Input _ -> ()
        | _ ->
            if root <= 1 then begin
              if not lattice_const.(node) then
                add
                  (F.make F.Warning ~rule:"sat-constant-node"
                     ~where:(sprintf "node %d" node)
                     ~hint:"replace by the constant (--sweep full)"
                     (sprintf "SAT proves the gate is the constant %d"
                        (Bool.to_int (ph <> (root = 1)))))
            end
            else if ph then begin
              (* a literal inverter is trivially its fanin's complement —
                 only report complements the structure does not show *)
              if N.gate c node <> N.Not root then
                add
                  (F.make F.Info ~rule:"complement-cone"
                     ~where:(sprintf "node %d" node)
                     ~hint:"share the cone through one inverter (--sweep full)"
                     (sprintf "cone is the proven complement of node %d" root))
            end
            else
              add
                (F.make F.Warning ~rule:"duplicate-cone"
                   ~where:(sprintf "node %d" node)
                   ~hint:"share one cone (--sweep full)"
                   (sprintf "cone is provably equivalent to node %d" root))
    end
  done;
  let out_lit o =
    let root = N.output c o in
    (2 * Equivcls.repr_node eq root)
    lor Bool.to_int (Equivcls.repr_phase eq root)
  in
  for o = 0 to N.num_outputs c - 1 do
    for o' = 0 to o - 1 do
      if out_lit o = out_lit o' then
        add
          (F.make F.Warning ~rule:"duplicate-output"
             ~where:(sprintf "output %s" (N.output_names c).(o))
             ~hint:"drive both outputs from one cone"
             (sprintf "provably equal to output %s" (N.output_names c).(o')))
      else if out_lit o = out_lit o' lxor 1 then
        add
          (F.make F.Info ~rule:"complement-output"
             ~where:(sprintf "output %s" (N.output_names c).(o))
             ~hint:"derive one output from the other through an inverter"
             (sprintf "provably the complement of output %s"
                (N.output_names c).(o')))
    done
  done;
  (* rewrite opportunities the sweep would take *)
  for node = 0 to n - 1 do
    if reach.(node) then
      match Sweep.xor_action c node with
      | Rebuild.Xor (a, b, ph) ->
          add
            (F.make F.Info ~rule:"xor-convertible"
               ~where:(sprintf "node %d" node)
               ~hint:"rebuild as one XOR2/XNOR2 gate (--sweep full)"
               (sprintf "gate tree computes %s of nodes %d and %d"
                  (if ph then "XNOR" else "XOR")
                  a b))
      | _ -> ()
  done;
  List.iter
    (fun (z, m, ph) ->
      add
        (F.make F.Warning ~rule:"odc-simplifiable"
           ~where:(sprintf "node %d" z)
           ~hint:"resubstitute the fanin (--sweep full)"
           (sprintf "gate is replaceable by %snode %d on every care input"
              (if ph then "the complement of " else "")
              m)))
    (Sweep.odc_candidates ~rng c);
  (* summary: what a full sweep would reclaim *)
  let _, st = Sweep.run ~level:Sweep.Full ~rng:(Rng.create seed) c in
  if Sweep.removed st > 0 then
    add
      (F.make F.Info ~rule:"sweep-opportunity" ~where:""
         ~hint:"run with --sweep full"
         (sprintf "a verified sweep removes %d of %d gates" (Sweep.removed st)
            st.Sweep.gates_before));
  F.normalize !findings

let removal_estimate ?(seed = 1) c =
  let _, st = Sweep.run ~level:Sweep.Full ~rng:(Rng.create seed) c in
  Sweep.removed st

let rule_counts findings =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f : F.t) ->
      Hashtbl.replace tbl f.F.rule
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl f.F.rule)))
    findings;
  Hashtbl.fold (fun rule k acc -> (rule, k) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
