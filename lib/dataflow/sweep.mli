(** Verified redundancy-removal sweep over a netlist.

    Iterates up to four stages, each expressed as a {!Rebuild} plan and
    each individually checkable through the [?verify] hook (the same
    contract as [Lr_aig.Opt.compress ?verify]: called with the stage
    name, the netlist before and the netlist after; raise to abort):

    - [sweep.const] — forward constant propagation ({!Absint.values});
      nodes with a proven ternary value become constants.
    - [sweep.merge] — functional duplicate/complement cones
      ({!Equivcls.compute}) collapse onto their class representative.
    - [sweep.xor] — XOR/XNOR structure recovery: AND/OR/NOT trees that
      compute an XOR (the shape AIG round-trips leave behind, where one
      XOR costs three counted gates) are rebuilt as a single [Xor2].
    - [sweep.odc] — observability-don't-care resubstitution: a gate
      provably replaceable by one of its fanins (differences never reach
      an output) is aliased away; simulation filters candidates, a local
      SAT miter proves each rewrite.

    A stage whose result is not strictly smaller is discarded, so the
    sweep never grows the circuit; rounds repeat while the size shrinks.
    The sweep issues no black-box queries and is deterministic for a
    fixed [rng]. *)

module N = Lr_netlist.Netlist

type level = Const_prop | Full

type stats = {
  rounds : int;
  const_folded : int;  (** reachable gates folded to constants *)
  merged : int;  (** cones collapsed onto a proven-equivalent class root *)
  xor_recovered : int;  (** XOR/XNOR trees rebuilt as one gate *)
  odc_rewrites : int;  (** ODC resubstitutions applied *)
  sat_calls : int;
  gates_before : int;
  gates_after : int;
}

val removed : stats -> int
(** [gates_before - gates_after] (never negative). *)

val run :
  ?level:level ->
  ?max_rounds:int ->
  ?max_sat_checks:int ->
  ?max_odc_checks:int ->
  ?kernel:bool ->
  ?pool:Lr_par.Par.pool ->
  ?verify:(stage:string -> N.t -> N.t -> unit) ->
  rng:Lr_bitvec.Rng.t ->
  N.t ->
  N.t * stats
(** Defaults: [level = Full], [max_rounds = 3], [max_sat_checks = 2000]
    (equivalence-class budget per merge stage), [max_odc_checks = 24]
    (SAT budget of the ODC stage). [Const_prop] runs only [sweep.const].

    [kernel] (default [true]) runs simulation on the {!Lr_kernel} SoA
    engine: the merge stage reuses cached block signatures, and the ODC
    candidate filter resimulates only the rewritten node's fanout cone on
    a dirty-cone incremental engine instead of every higher node. SAT
    proofs race through the {!Lr_kernel.Portfolio}. The rewrites applied
    and the resulting netlist are bit-identical with the kernel on or
    off; [pool] affects wall-clock only. *)

(**/**)

val xor_action : N.t -> N.node -> Rebuild.action
(** Exposed for the semantic lint: the XOR-recovery match at one node
    ([Keep] when the node is not a recoverable XOR/XNOR tree). *)

val odc_candidates :
  ?max_sat_checks:int ->
  ?kernel:bool ->
  ?pool:Lr_par.Par.pool ->
  rng:Lr_bitvec.Rng.t ->
  N.t ->
  (N.node * N.node * bool) list
(** Exposed for the semantic lint: proven ODC resubstitutions
    [(node, replacement, phase)] on the given netlist, without applying
    them (each proven against the {e unmodified} netlist). *)
