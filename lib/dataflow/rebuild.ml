module N = Lr_netlist.Netlist

type action =
  | Keep
  | Const of bool
  | Alias of N.node * bool
  | Xor of N.node * N.node * bool

let apply c act =
  let n = N.num_nodes c in
  let action = Array.init n act in
  Array.iteri
    (fun node a ->
      match a with
      | Keep | Const _ -> ()
      | Alias (m, _) ->
          if m >= node then invalid_arg "Rebuild.apply: Alias target not older"
      | Xor (a, b, _) ->
          if a >= node || b >= node then
            invalid_arg "Rebuild.apply: Xor operand not older")
    action;
  (* demand: which old nodes the outputs reach through the rewrites *)
  let need = Array.make (max n 1) false in
  for o = 0 to N.num_outputs c - 1 do
    need.(N.output c o) <- true
  done;
  for node = n - 1 downto 0 do
    if need.(node) then
      match action.(node) with
      | Const _ -> ()
      | Alias (m, _) -> need.(m) <- true
      | Xor (a, b, _) ->
          need.(a) <- true;
          need.(b) <- true
      | Keep -> List.iter (fun a -> need.(a) <- true) (N.fanins (N.gate c node))
  done;
  let out =
    N.create ~input_names:(N.input_names c) ~output_names:(N.output_names c)
  in
  let map = Array.make (max n 1) 0 in
  for node = 0 to n - 1 do
    if need.(node) then
      map.(node) <-
        (match action.(node) with
        | Const b -> if b then N.const_true out else N.const_false out
        | Alias (m, ph) -> if ph then N.not_ out map.(m) else map.(m)
        | Xor (a, b, ph) ->
            let x = N.xor_ out map.(a) map.(b) in
            if ph then N.not_ out x else x
        | Keep -> (
            match N.gate c node with
            | N.Const b -> if b then N.const_true out else N.const_false out
            | N.Input i -> N.input out i
            | N.Not a -> N.not_ out map.(a)
            | N.And2 (a, b) -> N.and_ out map.(a) map.(b)
            | N.Or2 (a, b) -> N.or_ out map.(a) map.(b)
            | N.Xor2 (a, b) -> N.xor_ out map.(a) map.(b)
            | N.Nand2 (a, b) -> N.nand_ out map.(a) map.(b)
            | N.Nor2 (a, b) -> N.nor_ out map.(a) map.(b)
            | N.Xnor2 (a, b) -> N.xnor_ out map.(a) map.(b)))
  done;
  for o = 0 to N.num_outputs c - 1 do
    N.set_output out o map.(N.output c o)
  done;
  out
