(** The ternary value lattice and a generic dataflow fixpoint engine.

    Abstract interpretation over a gate DAG needs only three facts about a
    signal: it is constant 0, constant 1, or unknown ([Top]). The lattice
    order is [Zero, One < Top]; [join] is the least upper bound. The gate
    transfer functions below are the three-valued evaluations of the
    primitive gates, short-circuiting on controlling values (an AND with a
    [Zero] operand is [Zero] even if the other operand is [Top]).

    {!fixpoint} is the engine shared by the forward and backward analyses
    in {!Absint}: a worklist iteration over an arbitrary value domain,
    prioritised by node id so that on the topologically-ordered DAGs the
    netlist builder produces, it converges in a single sweep. *)

type v = Zero | One | Top

val equal : v -> v -> bool
val join : v -> v -> v
val of_bool : bool -> v

val to_bool : v -> bool option
(** [Some b] when the value is a known constant, [None] for [Top]. *)

val to_string : v -> string
(** ["0"], ["1"], ["T"]. *)

(** {2 Three-valued gate transfer functions} *)

val not_ : v -> v
val and_ : v -> v -> v
val or_ : v -> v -> v
val xor_ : v -> v -> v
val nand_ : v -> v -> v
val nor_ : v -> v -> v
val xnor_ : v -> v -> v

(** {2 Generic fixpoint worklist} *)

type direction = Forward | Backward

val fixpoint :
  n:int ->
  direction:direction ->
  dependents:(int -> int list) ->
  transfer:((int -> 'a) -> int -> 'a) ->
  equal:('a -> 'a -> bool) ->
  init:(int -> 'a) ->
  'a array
(** [fixpoint ~n ~direction ~dependents ~transfer ~equal ~init] iterates
    [transfer get node] to a fixed point over nodes [0..n-1]. Every node
    is evaluated at least once; whenever a node's value changes, its
    [dependents] are re-queued. The worklist is a priority queue on node
    id — ascending for [Forward], descending for [Backward] — so
    topologically ordered inputs converge in one pass ([dependents] of a
    forward analysis are the fanouts, of a backward analysis the fanins).
    Steps are counted under ["dataflow.fixpoint-steps"]. *)
