(** Abstract interpretation over a netlist DAG.

    Two analyses on top of {!Lattice.fixpoint}, both purely structural —
    no black-box queries, no SAT:

    {b Forward constant propagation} computes the ternary value of every
    node: a node whose value comes out [Zero]/[One] is a satisfiability
    don't-care for its fanout — the circuit can never present the other
    value there. [?assume] pins chosen nodes (typically primary inputs)
    to constants, so an incompletely-specified care set can be folded in.

    {b Backward observability} computes, per node, the set of primary
    outputs that can observe a change at the node. An edge into a gate is
    blocked when a sibling operand carries a controlling constant (AND/
    NAND sibling at [Zero], OR/NOR sibling at [One]) or when the gate's
    own value is already constant; XOR/XNOR never block. A reachable node
    observed by no output is semantically dead — an observability
    don't-care over the whole input space. *)

module N = Lr_netlist.Netlist

val fanout_lists : N.t -> int list array
(** Per-node direct fanout nodes, each list in ascending order. *)

val values : ?assume:(N.node * bool) list -> N.t -> Lattice.v array
(** Forward three-valued evaluation of every node. *)

val constants : ?values:Lattice.v array -> N.t -> (N.node * bool) list
(** Reachable gate nodes (not [Const]/[Input]) proven constant by forward
    propagation, in ascending node order. *)

(** Observability masks: one bitset of primary outputs per node. *)
type obs

val observability : ?values:Lattice.v array -> N.t -> obs
(** [?values] supplies forward values (e.g. computed under an [?assume]
    care set); defaults to unassumed {!values}. *)

val observed : obs -> N.node -> bool
(** Some primary output observes the node. *)

val observed_by : obs -> N.node -> int -> bool
(** [observed_by obs n o]: can output [o] observe node [n]? *)

val observers : obs -> N.node -> int
(** Number of outputs observing the node. *)

val unobservable : ?values:Lattice.v array -> N.t -> bool array
(** Per node: a reachable gate ([Not] or 2-input) no output observes. *)
