(** Functional equivalence classes of netlist nodes.

    Fraig-style, but over the 2-input-gate netlist rather than the AIG,
    and issuing {e zero} black-box queries: candidate classes come from
    word-parallel self-simulation under random patterns (complement pairs
    share a class through signature canonicalisation), and each candidate
    pair is settled by a local SAT call on a Tseitin encoding of the
    netlist itself, with counterexamples fed back as new simulation
    patterns. Classes are rooted at their smallest node id, so
    substituting any member by its root literal can never create a
    cycle.

    Instrumentation: ["dataflow.sim-words"], ["dataflow.sat-calls"],
    ["dataflow.proved"], ["dataflow.refuted"], ["dataflow.rounds"]. *)

module N = Lr_netlist.Netlist

type t = {
  repr : int array;
      (** per node, the literal [2 * root + phase] of its proven class
          representative, where [root <= node]; a node is its own
          representative iff [repr.(n) = 2 * n]. Constant-equivalent
          nodes resolve to the constant nodes 0/1. *)
  proved : int;  (** SAT-proven equivalences (including complements) *)
  refuted : int;  (** candidate pairs separated by a counterexample *)
  sat_calls : int;
  rounds : int;
}

val repr_node : t -> N.node -> N.node
val repr_phase : t -> N.node -> bool

val cnf_of_netlist : N.t -> Lr_sat.Sat.t -> unit
(** Tseitin encoding: node [k] is DIMACS variable [k + 1]; the constant
    nodes 0/1 are pinned by unit clauses. *)

val sim_nodes : N.t -> int64 array -> int64 array
(** Word-parallel simulation returning {e every} node's word (one input
    word per PI), the per-node analogue of [Netlist.eval_words]. *)

val compute :
  ?words:int ->
  ?max_rounds:int ->
  ?max_sat_checks:int ->
  ?kernel:bool ->
  rng:Lr_bitvec.Rng.t ->
  N.t ->
  t
(** [words] initial random pattern words (default 16), [max_rounds]
    refinement rounds (default 32), [max_sat_checks] SAT budget (default
    2000). Deterministic for a fixed [rng] state. [kernel] (default
    [true]) simulates on the {!Lr_kernel.Soa} engine and caches each
    block's node values across rounds — signatures, classes and SAT
    trajectory are bit-identical either way. *)
