type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else begin
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    Buffer.add_string buf s
  end

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> add_escaped buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        l;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Fail of string * int

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  (* encode a Unicode scalar value as UTF-8 *)
  let add_utf8 buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let u =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape"
            in
            (* surrogates are not combined; replace with U+FFFD *)
            add_utf8 buf (if u >= 0xD800 && u <= 0xDFFF then 0xFFFD else u)
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_floatish =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    in
    if is_floatish then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elements [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (msg, at) ->
      Error (Printf.sprintf "%s at offset %d" msg at)

(* ---------- accessors ---------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let get_string = function String s -> Some s | _ -> None

let get_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None
let get_list = function List l -> Some l | _ -> None
let get_obj = function Obj kvs -> Some kvs | _ -> None
