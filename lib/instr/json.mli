(** Minimal JSON values: printing and parsing.

    The telemetry sinks ({!Instr}) and the CLI's machine-readable run
    reports need to {e emit} JSON, and the test-suite needs to {e parse
    it back} to check well-formedness — all without adding an external
    dependency. This module is that closed loop: a small value type, a
    strict printer, and a strict RFC-8259-subset parser.

    Not supported (never produced by the emitters): surrogate-pair
    escapes decode to U+FFFD; non-finite floats print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Strings are escaped per RFC 8259;
    NaN and infinities render as [null] (JSON has no spelling for them). *)

val to_buffer : Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Strict parse of a complete JSON document (trailing whitespace
    allowed). Numbers without [.], [e] or [E] that fit in [int] parse as
    [Int], everything else as [Float]. The error string carries a
    character offset. *)

(** {2 Accessors} (total: [None] on shape mismatch) *)

val member : string -> t -> t option
(** [member k (Obj _)] — first binding of [k]. *)

val get_string : t -> string option
val get_int : t -> int option
(** [Int] or integral [Float]. *)

val get_float : t -> float option
(** [Float] or [Int]. *)

val get_bool : t -> bool option
val get_list : t -> t list option
val get_obj : t -> (string * t) list option
