(** Telemetry for the learning pipeline: spans, counters, sinks.

    The learner's five pipeline stages (grouping/templates → support
    identification → FBDT construction → cover minimization → AIG
    optimization) are wrapped in hierarchical {e spans}; libraries record
    named {e counters} (black-box queries, FBDT nodes, cubes, BDD nodes,
    AIG rewrite rounds) attributed to the innermost open span. Events
    stream to pluggable {e sinks}: a JSONL log, a Chrome
    [trace_event]-format exporter (loadable in [chrome://tracing] or
    Perfetto), and a human-readable stderr summary. With no sinks
    attached only the cheap in-memory aggregates are updated; with
    {!set_enabled}[ false] every entry point is a no-op that performs no
    allocation — the hot-path guard is a single flag test.

    State is {e domain-local} (one domain = one recording context):
    libraries can record without threading a handle, exactly like a
    logger, and recording never takes a lock. A fresh domain starts with
    an empty context — no sinks, no open spans, empty aggregates. Work
    done in isolation (a worker domain, or any thunk run under
    {!collect}) is folded back into a parent context with {!absorb},
    which is the {e only} sanctioned cross-domain hand-off: hand the
    returned {!snapshot} to the parent and absorb it there. The master
    switch ({!set_enabled}) and the clock ({!set_clock}) remain
    process-wide; set them from the main domain before spawning
    workers. *)

(** {1 Events and sinks} *)

type event =
  | Span_begin of { name : string; path : string; ts : float; depth : int }
  | Span_end of {
      name : string;
      path : string;
      ts : float;
      dur_s : float;
      depth : int;
    }
  | Count of {
      name : string;
      path : string;  (** innermost open span path; [""] at top level *)
      ts : float;
      incr : int;
      total : int;  (** running total for [name] across all spans *)
    }
  | Gauge of { name : string; path : string; ts : float; value : float }

type sink = { emit : event -> unit; flush : unit -> unit }
(** [flush] is called by {!flush_sinks}; file-backed sinks close their
    channel there and ignore later events. *)

val null_sink : sink
(** Discards everything (the default behaviour is an empty sink list;
    this exists for explicit plumbing). *)

val jsonl : (string -> unit) -> sink
(** One JSON object per event, one event per line, written through the
    given string consumer. Keys: [ev] ([span_begin]|[span_end]|[count]|
    [gauge]), [name], [path], [ts], plus [dur_s]/[depth]/[incr]/[total]/
    [value] per event kind. *)

val chrome_trace : (string -> unit) -> sink
(** Chrome [trace_event] JSON array: spans as [ph:"B"]/[ph:"E"] duration
    events, counters and gauges as [ph:"C"] counter tracks. Timestamps
    are microseconds relative to the first event. The closing bracket is
    written on [flush]. *)

val stderr_summary : unit -> sink
(** Collects silently and prints an indented per-span time table and a
    per-span counter table to stderr on [flush]. *)

val jsonl_file : string -> sink
val chrome_trace_file : string -> sink
(** File-backed variants; the file is created immediately and closed on
    [flush]. *)

(** {1 Configuration} *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Master switch, default [true]. When off, {!span} runs its thunk
    directly and {!count}/{!gauge} return immediately without
    allocating; sinks receive nothing. *)

val set_sinks : sink list -> unit
val add_sink : sink -> unit
val flush_sinks : unit -> unit
(** Sinks belong to the calling domain's context; a worker domain sees
    an empty sink list until it installs its own. *)

val set_clock : (unit -> float) -> unit
(** Timestamp source in seconds, default [Unix.gettimeofday]. Tests
    inject a deterministic clock here. *)

val now : unit -> float
(** The current clock reading {e plus} the accumulated synthetic skew
    ({!advance_clock}). *)

val advance_clock : float -> unit
(** [advance_clock d] adds [d] synthetic seconds to every subsequent
    {!now} reading, process-wide (atomic — safe from worker domains).
    The fault-injection harness injects latency spikes and retry
    backoff through this instead of sleeping: spans, latency histograms
    and deadline checks all see the stall, at zero wall-clock cost.
    Negative or zero [d] is a no-op; the skew never rewinds, mirroring
    real time. *)

val clock_skew_s : unit -> float
(** Total synthetic seconds injected so far in this process. *)

(** {1 Recording} *)

val span : name:string -> (unit -> 'a) -> 'a
(** [span ~name f] runs [f] inside a span. Spans nest: the span's path
    is its ancestors' names joined with ['/']. The span is closed (and
    its duration aggregated) even if [f] raises. *)

val timed_span : name:string -> (unit -> 'a) -> 'a * float
(** Like {!span} but also returns the measured duration in seconds. The
    duration is measured even when instrumentation is disabled (the
    learner's per-phase report depends on it); only the event emission
    and aggregation are conditional. *)

val count : string -> int -> unit
(** [count name n] adds [n] to counter [name], attributed to the
    innermost open span. *)

val gauge : string -> float -> unit
(** Point-in-time measurement (e.g. AIG size after an optimization
    round); forwarded to sinks, not aggregated. *)

val current_span_name : unit -> string
(** Innermost open span's name, [""] when none — the attribution key
    used by [Blackbox] for per-phase query accounting. *)

val current_span_path : unit -> string
val span_depth : unit -> int

(** {1 In-memory aggregates}

    Always maintained while enabled, even with no sinks — this is what
    makes per-phase reporting free of any I/O setup. *)

val reset_aggregates : unit -> unit

val span_seconds : unit -> (string * float) list
(** Total seconds per span {e path}, in first-completion order. *)

val span_calls : unit -> (string * int) list

val counter_totals : unit -> (string * int) list
(** Total per counter name (all spans), in first-seen order. *)

val counter_total : string -> int
(** [0] if never counted. *)

val counters_by_span : unit -> ((string * string) * int) list
(** [((span_path, counter_name), total)] pairs, in first-seen order. *)

(** {1 Isolated collection and merge}

    The domain-safe path for fanned-out work: run each unit of work
    under {!collect} (in any domain), ship the snapshot back, and
    {!absorb} the snapshots in a deterministic order in the parent.
    Because each unit records into its own context and merging is
    explicit, totals after absorption equal the sequential sum whatever
    the interleaving was. *)

type snapshot
(** Everything one {!collect} observed: the chronological event log of
    spans, counters and gauges. Immutable once returned; safe to move
    across domains. *)

val empty_snapshot : snapshot

val collect : (unit -> 'a) -> 'a * snapshot
(** [collect f] runs [f] in a {e fresh} recording context — empty span
    stack (so [f]'s outermost span is a root), empty aggregates, no
    sinks — and returns [f]'s result with the captured snapshot. The
    caller's own context is untouched and is restored even if [f]
    raises (the in-flight snapshot is then lost with the exception).
    With instrumentation {!set_enabled}[ false] the snapshot is empty. *)

val absorb : snapshot -> unit
(** [absorb snap] folds a snapshot into the calling domain's context as
    if the recorded work had just happened here: span paths are re-based
    under the currently open span, durations and counter totals are
    added to the aggregates, and the events are re-emitted to this
    domain's sinks with their relative timing preserved (re-stamped at
    the absorption time, depths shifted under the open span). Absorbing
    the per-item snapshots of a parallel stage in item order yields
    aggregates — and a trace — independent of how many domains ran it. *)
