(** Telemetry for the learning pipeline: spans, counters, sinks.

    The learner's five pipeline stages (grouping/templates → support
    identification → FBDT construction → cover minimization → AIG
    optimization) are wrapped in hierarchical {e spans}; libraries record
    named {e counters} (black-box queries, FBDT nodes, cubes, BDD nodes,
    AIG rewrite rounds) attributed to the innermost open span. Events
    stream to pluggable {e sinks}: a JSONL log, a Chrome
    [trace_event]-format exporter (loadable in [chrome://tracing] or
    Perfetto), and a human-readable stderr summary. With no sinks
    attached only the cheap in-memory aggregates are updated; with
    {!set_enabled}[ false] every entry point is a no-op that performs no
    allocation — the hot-path guard is a single flag test.

    State is global (one process = one instrumented run): libraries can
    record without threading a handle, exactly like a logger. Not
    thread-safe; the learner is single-threaded. *)

(** {1 Events and sinks} *)

type event =
  | Span_begin of { name : string; path : string; ts : float; depth : int }
  | Span_end of {
      name : string;
      path : string;
      ts : float;
      dur_s : float;
      depth : int;
    }
  | Count of {
      name : string;
      path : string;  (** innermost open span path; [""] at top level *)
      ts : float;
      incr : int;
      total : int;  (** running total for [name] across all spans *)
    }
  | Gauge of { name : string; path : string; ts : float; value : float }

type sink = { emit : event -> unit; flush : unit -> unit }
(** [flush] is called by {!flush_sinks}; file-backed sinks close their
    channel there and ignore later events. *)

val null_sink : sink
(** Discards everything (the default behaviour is an empty sink list;
    this exists for explicit plumbing). *)

val jsonl : (string -> unit) -> sink
(** One JSON object per event, one event per line, written through the
    given string consumer. Keys: [ev] ([span_begin]|[span_end]|[count]|
    [gauge]), [name], [path], [ts], plus [dur_s]/[depth]/[incr]/[total]/
    [value] per event kind. *)

val chrome_trace : (string -> unit) -> sink
(** Chrome [trace_event] JSON array: spans as [ph:"B"]/[ph:"E"] duration
    events, counters and gauges as [ph:"C"] counter tracks. Timestamps
    are microseconds relative to the first event. The closing bracket is
    written on [flush]. *)

val stderr_summary : unit -> sink
(** Collects silently and prints an indented per-span time table and a
    per-span counter table to stderr on [flush]. *)

val jsonl_file : string -> sink
val chrome_trace_file : string -> sink
(** File-backed variants; the file is created immediately and closed on
    [flush]. *)

(** {1 Configuration} *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Master switch, default [true]. When off, {!span} runs its thunk
    directly and {!count}/{!gauge} return immediately without
    allocating; sinks receive nothing. *)

val set_sinks : sink list -> unit
val add_sink : sink -> unit
val flush_sinks : unit -> unit

val set_clock : (unit -> float) -> unit
(** Timestamp source in seconds, default [Unix.gettimeofday]. Tests
    inject a deterministic clock here. *)

val now : unit -> float

(** {1 Recording} *)

val span : name:string -> (unit -> 'a) -> 'a
(** [span ~name f] runs [f] inside a span. Spans nest: the span's path
    is its ancestors' names joined with ['/']. The span is closed (and
    its duration aggregated) even if [f] raises. *)

val timed_span : name:string -> (unit -> 'a) -> 'a * float
(** Like {!span} but also returns the measured duration in seconds. The
    duration is measured even when instrumentation is disabled (the
    learner's per-phase report depends on it); only the event emission
    and aggregation are conditional. *)

val count : string -> int -> unit
(** [count name n] adds [n] to counter [name], attributed to the
    innermost open span. *)

val gauge : string -> float -> unit
(** Point-in-time measurement (e.g. AIG size after an optimization
    round); forwarded to sinks, not aggregated. *)

val current_span_name : unit -> string
(** Innermost open span's name, [""] when none — the attribution key
    used by [Blackbox] for per-phase query accounting. *)

val current_span_path : unit -> string
val span_depth : unit -> int

(** {1 In-memory aggregates}

    Always maintained while enabled, even with no sinks — this is what
    makes per-phase reporting free of any I/O setup. *)

val reset_aggregates : unit -> unit

val span_seconds : unit -> (string * float) list
(** Total seconds per span {e path}, in first-completion order. *)

val span_calls : unit -> (string * int) list

val counter_totals : unit -> (string * int) list
(** Total per counter name (all spans), in first-seen order. *)

val counter_total : string -> int
(** [0] if never counted. *)

val counters_by_span : unit -> ((string * string) * int) list
(** [((span_path, counter_name), total)] pairs, in first-seen order. *)
