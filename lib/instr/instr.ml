type event =
  | Span_begin of { name : string; path : string; ts : float; depth : int }
  | Span_end of {
      name : string;
      path : string;
      ts : float;
      dur_s : float;
      depth : int;
    }
  | Count of {
      name : string;
      path : string;
      ts : float;
      incr : int;
      total : int;
    }
  | Gauge of { name : string; path : string; ts : float; value : float }

type sink = { emit : event -> unit; flush : unit -> unit }

(* ---------- global state ---------- *)

let clock = ref Unix.gettimeofday
let set_clock f = clock := f
let now () = !clock ()
let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b
let sinks : sink list ref = ref []
let set_sinks l = sinks := l
let add_sink s = sinks := !sinks @ [ s ]
let flush_sinks () = List.iter (fun s -> s.flush ()) !sinks
let emit ev = List.iter (fun s -> s.emit ev) !sinks

(* span stack; [cur_*] cache the innermost frame so the hot attribution
   read in Blackbox is two dereferences *)
type frame = { name : string; path : string; start : float; depth : int }

let stack : frame list ref = ref []
let cur_name = ref ""
let cur_path = ref ""
let current_span_name () = !cur_name
let current_span_path () = !cur_path
let span_depth () = List.length !stack

(* ---------- aggregates ---------- *)

type span_agg = { mutable seconds : float; mutable calls : int }

let span_agg : (string, span_agg) Hashtbl.t = Hashtbl.create 64
let span_order : string list ref = ref []
let counter_name_total : (string, int ref) Hashtbl.t = Hashtbl.create 64
let counter_order : string list ref = ref []

let counter_span_total : (string * string, int ref) Hashtbl.t =
  Hashtbl.create 64

let counter_span_order : (string * string) list ref = ref []

let reset_aggregates () =
  Hashtbl.reset span_agg;
  span_order := [];
  Hashtbl.reset counter_name_total;
  counter_order := [];
  Hashtbl.reset counter_span_total;
  counter_span_order := []

let bump_int tbl order key n =
  match Hashtbl.find_opt tbl key with
  | Some r ->
      r := !r + n;
      !r
  | None ->
      Hashtbl.add tbl key (ref n);
      order := key :: !order;
      n

let bump_span key dur =
  match Hashtbl.find_opt span_agg key with
  | Some a ->
      a.seconds <- a.seconds +. dur;
      a.calls <- a.calls + 1
  | None ->
      Hashtbl.add span_agg key { seconds = dur; calls = 1 };
      span_order := key :: !span_order

let tbl_get tbl key default = match Hashtbl.find_opt tbl key with
  | Some r -> !r
  | None -> default

let span_seconds () =
  List.rev_map (fun p -> (p, (Hashtbl.find span_agg p).seconds)) !span_order

let span_calls () =
  List.rev_map (fun p -> (p, (Hashtbl.find span_agg p).calls)) !span_order

let counter_totals () =
  List.rev_map (fun c -> (c, tbl_get counter_name_total c 0)) !counter_order

let counter_total name = tbl_get counter_name_total name 0

let counters_by_span () =
  List.rev_map
    (fun k -> (k, tbl_get counter_span_total k 0))
    !counter_span_order

(* ---------- recording ---------- *)

let push name =
  let path = if !cur_path = "" then name else !cur_path ^ "/" ^ name in
  let fr = { name; path; start = now (); depth = List.length !stack } in
  stack := fr :: !stack;
  cur_name := name;
  cur_path := path;
  if !sinks <> [] then
    emit (Span_begin { name; path; ts = fr.start; depth = fr.depth });
  fr

let pop fr =
  let ts = now () in
  let dur = ts -. fr.start in
  (match !stack with
  | f :: rest when f == fr -> stack := rest
  | _ ->
      (* unbalanced close (an exception skipped inner pops): drop
         everything above [fr] as well *)
      let rec unwind = function
        | f :: rest when not (f == fr) -> unwind rest
        | _ :: rest -> rest
        | [] -> []
      in
      stack := unwind !stack);
  (match !stack with
  | [] ->
      cur_name := "";
      cur_path := ""
  | f :: _ ->
      cur_name := f.name;
      cur_path := f.path);
  bump_span fr.path dur;
  if !sinks <> [] then
    emit
      (Span_end { name = fr.name; path = fr.path; ts; dur_s = dur; depth = fr.depth });
  dur

let timed_span ~name f =
  if not !enabled_flag then begin
    let t0 = now () in
    let r = f () in
    (r, now () -. t0)
  end
  else begin
    let fr = push name in
    let dur = ref 0.0 in
    let r = Fun.protect ~finally:(fun () -> dur := pop fr) f in
    (r, !dur)
  end

let span ~name f = if not !enabled_flag then f () else fst (timed_span ~name f)

let count name n =
  if !enabled_flag then begin
    let path = !cur_path in
    let total = bump_int counter_name_total counter_order name n in
    ignore (bump_int counter_span_total counter_span_order (path, name) n);
    if !sinks <> [] then
      emit (Count { name; path; ts = now (); incr = n; total })
  end

let gauge name value =
  if !enabled_flag && !sinks <> [] then
    emit (Gauge { name; path = !cur_path; ts = now (); value })

(* ---------- sinks ---------- *)

let null_sink = { emit = (fun _ -> ()); flush = (fun () -> ()) }

let jsonl write =
  let line kvs =
    write (Json.to_string (Json.Obj kvs));
    write "\n"
  in
  let emit = function
    | Span_begin { name; path; ts; depth } ->
        line
          [
            ("ev", Json.String "span_begin");
            ("name", Json.String name);
            ("path", Json.String path);
            ("ts", Json.Float ts);
            ("depth", Json.Int depth);
          ]
    | Span_end { name; path; ts; dur_s; depth } ->
        line
          [
            ("ev", Json.String "span_end");
            ("name", Json.String name);
            ("path", Json.String path);
            ("ts", Json.Float ts);
            ("dur_s", Json.Float dur_s);
            ("depth", Json.Int depth);
          ]
    | Count { name; path; ts; incr; total } ->
        line
          [
            ("ev", Json.String "count");
            ("name", Json.String name);
            ("path", Json.String path);
            ("ts", Json.Float ts);
            ("incr", Json.Int incr);
            ("total", Json.Int total);
          ]
    | Gauge { name; path; ts; value } ->
        line
          [
            ("ev", Json.String "gauge");
            ("name", Json.String name);
            ("path", Json.String path);
            ("ts", Json.Float ts);
            ("value", Json.Float value);
          ]
  in
  { emit; flush = (fun () -> ()) }

let chrome_trace write =
  let started = ref false in
  let closed = ref false in
  let t0 = ref 0.0 in
  let us ts = (ts -. !t0) *. 1e6 in
  (* [t0] must be pinned before the event's [ts] field is rendered, so the
     payload is built inside [record], after the first-event bookkeeping *)
  let record ts mk_kvs =
    if !closed then ()
    else begin
      if not !started then begin
        t0 := ts;
        write "[\n";
        started := true
      end
      else write ",\n";
      write (Json.to_string (Json.Obj (mk_kvs ())))
    end
  in
  let common name ph ts =
    [
      ("name", Json.String name);
      ("cat", Json.String "lr");
      ("ph", Json.String ph);
      ("ts", Json.Float (us ts));
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
    ]
  in
  let emit = function
    | Span_begin { name; ts; _ } -> record ts (fun () -> common name "B" ts)
    | Span_end { name; ts; _ } -> record ts (fun () -> common name "E" ts)
    | Count { name; ts; total; _ } ->
        record ts (fun () ->
            common name "C" ts
            @ [ ("args", Json.Obj [ (name, Json.Int total) ]) ])
    | Gauge { name; ts; value; _ } ->
        record ts (fun () ->
            common name "C" ts
            @ [ ("args", Json.Obj [ (name, Json.Float value) ]) ])
  in
  let flush () =
    if not !closed then begin
      if not !started then write "[" else ();
      write "\n]\n";
      closed := true
    end
  in
  { emit; flush }

let stderr_summary () =
  (* self-contained aggregation: survives a reset of the global tables *)
  let times : (string, float ref) Hashtbl.t = Hashtbl.create 32 in
  let calls : (string, int ref) Hashtbl.t = Hashtbl.create 32 in
  let depths : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let sorder : string list ref = ref [] in
  let counters : (string * string, int ref) Hashtbl.t = Hashtbl.create 32 in
  let corder : (string * string) list ref = ref [] in
  (* rows are registered at span {e begin} so parents list before their
     children (completion order would print children first) *)
  let register path depth =
    if not (Hashtbl.mem times path) then begin
      sorder := path :: !sorder;
      Hashtbl.add times path (ref 0.0);
      Hashtbl.add calls path (ref 0);
      Hashtbl.add depths path depth
    end
  in
  let emit = function
    | Span_begin { path; depth; _ } -> register path depth
    | Span_end { path; dur_s; depth; _ } ->
        register path depth;
        let t = Hashtbl.find times path and c = Hashtbl.find calls path in
        t := !t +. dur_s;
        incr c
    | Count { name; path; incr = n; _ } -> (
        let key = (path, name) in
        match Hashtbl.find_opt counters key with
        | Some r -> r := !r + n
        | None ->
            Hashtbl.add counters key (ref n);
            corder := key :: !corder)
    | Gauge _ -> ()
  in
  let flush () =
    if !sorder <> [] || !corder <> [] then begin
      Printf.eprintf "── instr summary ──────────────────────────────\n";
      Printf.eprintf "%-40s %6s %10s\n" "span" "calls" "seconds";
      List.iter
        (fun path ->
          let depth = try Hashtbl.find depths path with Not_found -> 0 in
          let name =
            match String.rindex_opt path '/' with
            | Some i -> String.sub path (i + 1) (String.length path - i - 1)
            | None -> path
          in
          Printf.eprintf "%-40s %6d %10.3f\n"
            (String.make (2 * depth) ' ' ^ name)
            !(Hashtbl.find calls path)
            !(Hashtbl.find times path))
        (List.rev !sorder);
      if !corder <> [] then begin
        Printf.eprintf "%-40s %-16s %10s\n" "counter (by span)" "" "total";
        List.iter
          (fun ((path, name) as key) ->
            Printf.eprintf "%-40s %-16s %10d\n"
              (if path = "" then "(top level)" else path)
              name
              !(Hashtbl.find counters key))
          (List.rev !corder)
      end;
      Printf.eprintf "───────────────────────────────────────────────\n%!"
    end
  in
  { emit; flush }

let to_file path mk =
  let oc = open_out path in
  let inner = mk (output_string oc) in
  let closed = ref false in
  {
    emit = (fun e -> if not !closed then inner.emit e);
    flush =
      (fun () ->
        if not !closed then begin
          inner.flush ();
          close_out oc;
          closed := true
        end);
  }

let jsonl_file path = to_file path jsonl
let chrome_trace_file path = to_file path chrome_trace
