type event =
  | Span_begin of { name : string; path : string; ts : float; depth : int }
  | Span_end of {
      name : string;
      path : string;
      ts : float;
      dur_s : float;
      depth : int;
    }
  | Count of {
      name : string;
      path : string;
      ts : float;
      incr : int;
      total : int;
    }
  | Gauge of { name : string; path : string; ts : float; value : float }

type sink = { emit : event -> unit; flush : unit -> unit }

(* ---------- state ----------

   Process-wide knobs (clock, master switch) are plain globals, set once
   from the main domain before any fan-out. Everything that is written on
   the hot recording path — the span stack, the aggregate tables, the
   sink list, the capture buffer — lives in domain-local storage: each
   worker domain records into its own isolated state and the parent folds
   finished work back in with {!collect}/{!absorb}, so no lock is ever
   taken while recording and no update can be lost to a race. *)

let clock = ref Unix.gettimeofday
let set_clock f = clock := f

(* Synthetic seconds layered on top of the clock — the fault-injection
   harness "sleeps" (backoff, latency spikes) by advancing this skew
   instead of stalling the process, so injected time shows up in every
   span duration, latency histogram and deadline check at zero real
   cost. Atomic because worker domains advance it concurrently; only
   monotone growth, so a CAS retry loop suffices. *)
let clock_skew = Atomic.make 0.0

let advance_clock d =
  if d > 0.0 then begin
    let rec add () =
      let cur = Atomic.get clock_skew in
      if not (Atomic.compare_and_set clock_skew cur (cur +. d)) then add ()
    in
    add ()
  end

let clock_skew_s () = Atomic.get clock_skew
let now () = !clock () +. Atomic.get clock_skew
let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

type frame = { name : string; path : string; start : float; depth : int }
type span_agg = { mutable seconds : float; mutable calls : int }

type state = {
  (* span stack; [cur_*] cache the innermost frame so the hot attribution
     read in Blackbox is two dereferences *)
  mutable stack : frame list;
  mutable cur_name : string;
  mutable cur_path : string;
  span_agg : (string, span_agg) Hashtbl.t;
  mutable span_order : string list;
  counter_name_total : (string, int ref) Hashtbl.t;
  mutable counter_order : string list;
  counter_span_total : (string * string, int ref) Hashtbl.t;
  mutable counter_span_order : (string * string) list;
  mutable sinks : sink list;
  mutable capture : event list option;
      (** [Some buf] while inside {!collect}: every event is also pushed
          (reversed) onto [buf] so the caller can {!absorb} it later *)
}

let fresh_state () =
  {
    stack = [];
    cur_name = "";
    cur_path = "";
    span_agg = Hashtbl.create 64;
    span_order = [];
    counter_name_total = Hashtbl.create 64;
    counter_order = [];
    counter_span_total = Hashtbl.create 64;
    counter_span_order = [];
    sinks = [];
    capture = None;
  }

let state_key : state Domain.DLS.key = Domain.DLS.new_key fresh_state
let st () = Domain.DLS.get state_key
let set_sinks l = (st ()).sinks <- l
let add_sink s = (st ()).sinks <- (st ()).sinks @ [ s ]
let flush_sinks () = List.iter (fun s -> s.flush ()) (st ()).sinks

let emit_record s ev =
  List.iter (fun snk -> snk.emit ev) s.sinks;
  match s.capture with None -> () | Some buf -> s.capture <- Some (ev :: buf)

let observed s = s.sinks <> [] || s.capture <> None
let current_span_name () = (st ()).cur_name
let current_span_path () = (st ()).cur_path
let span_depth () = List.length (st ()).stack

(* ---------- aggregates ---------- *)

let reset_aggregates () =
  let s = st () in
  Hashtbl.reset s.span_agg;
  s.span_order <- [];
  Hashtbl.reset s.counter_name_total;
  s.counter_order <- [];
  Hashtbl.reset s.counter_span_total;
  s.counter_span_order <- []

(* returns [(new_total, is_new_key)] *)
let bump_int tbl key n =
  match Hashtbl.find_opt tbl key with
  | Some r ->
      r := !r + n;
      (!r, false)
  | None ->
      Hashtbl.add tbl key (ref n);
      (n, true)

let bump_counter s name n =
  let total, is_new = bump_int s.counter_name_total name n in
  if is_new then s.counter_order <- name :: s.counter_order;
  total

let bump_counter_span s key n =
  let _, is_new = bump_int s.counter_span_total key n in
  if is_new then s.counter_span_order <- key :: s.counter_span_order

let bump_span s key dur calls =
  match Hashtbl.find_opt s.span_agg key with
  | Some a ->
      a.seconds <- a.seconds +. dur;
      a.calls <- a.calls + calls
  | None ->
      Hashtbl.add s.span_agg key { seconds = dur; calls };
      s.span_order <- key :: s.span_order

let tbl_get tbl key default = match Hashtbl.find_opt tbl key with
  | Some r -> !r
  | None -> default

let span_seconds () =
  let s = st () in
  List.rev_map (fun p -> (p, (Hashtbl.find s.span_agg p).seconds)) s.span_order

let span_calls () =
  let s = st () in
  List.rev_map (fun p -> (p, (Hashtbl.find s.span_agg p).calls)) s.span_order

let counter_totals () =
  let s = st () in
  List.rev_map (fun c -> (c, tbl_get s.counter_name_total c 0)) s.counter_order

let counter_total name = tbl_get (st ()).counter_name_total name 0

let counters_by_span () =
  let s = st () in
  List.rev_map
    (fun k -> (k, tbl_get s.counter_span_total k 0))
    s.counter_span_order

(* ---------- recording ---------- *)

let push s name =
  let path = if s.cur_path = "" then name else s.cur_path ^ "/" ^ name in
  let fr = { name; path; start = now (); depth = List.length s.stack } in
  s.stack <- fr :: s.stack;
  s.cur_name <- name;
  s.cur_path <- path;
  if observed s then
    emit_record s (Span_begin { name; path; ts = fr.start; depth = fr.depth });
  fr

let pop s fr =
  let ts = now () in
  let dur = ts -. fr.start in
  (match s.stack with
  | f :: rest when f == fr -> s.stack <- rest
  | _ ->
      (* unbalanced close (an exception skipped inner pops): drop
         everything above [fr] as well *)
      let rec unwind = function
        | f :: rest when not (f == fr) -> unwind rest
        | _ :: rest -> rest
        | [] -> []
      in
      s.stack <- unwind s.stack);
  (match s.stack with
  | [] ->
      s.cur_name <- "";
      s.cur_path <- ""
  | f :: _ ->
      s.cur_name <- f.name;
      s.cur_path <- f.path);
  bump_span s fr.path dur 1;
  if observed s then
    emit_record s
      (Span_end { name = fr.name; path = fr.path; ts; dur_s = dur; depth = fr.depth });
  dur

let timed_span ~name f =
  if not !enabled_flag then begin
    let t0 = now () in
    let r = f () in
    (r, now () -. t0)
  end
  else begin
    let s = st () in
    let fr = push s name in
    let dur = ref 0.0 in
    let r = Fun.protect ~finally:(fun () -> dur := pop s fr) f in
    (r, !dur)
  end

let span ~name f = if not !enabled_flag then f () else fst (timed_span ~name f)

let count name n =
  if !enabled_flag then begin
    let s = st () in
    let path = s.cur_path in
    let total = bump_counter s name n in
    bump_counter_span s (path, name) n;
    if observed s then
      emit_record s (Count { name; path; ts = now (); incr = n; total })
  end

let gauge name value =
  if !enabled_flag then begin
    let s = st () in
    if observed s then
      emit_record s (Gauge { name; path = s.cur_path; ts = now (); value })
  end

(* ---------- isolated collection and merge ---------- *)

type snapshot = event list (* chronological *)

let empty_snapshot = []

let collect f =
  let outer = st () in
  let inner = { (fresh_state ()) with capture = Some [] } in
  Domain.DLS.set state_key inner;
  let restore () = Domain.DLS.set state_key outer in
  let r = Fun.protect ~finally:restore f in
  (r, match inner.capture with Some buf -> List.rev buf | None -> [])

let absorb snap =
  match snap with
  | [] -> ()
  | first :: _ ->
      let s = st () in
      let base_path = s.cur_path and base_depth = List.length s.stack in
      let rebase p =
        if base_path = "" then p
        else if p = "" then base_path
        else base_path ^ "/" ^ p
      in
      let ts_of = function
        | Span_begin { ts; _ } | Span_end { ts; _ } | Count { ts; _ }
        | Gauge { ts; _ } ->
            ts
      in
      let t0 = ts_of first in
      let base_ts = now () in
      let shift ts = base_ts +. (ts -. t0) in
      List.iter
        (fun ev ->
          let ev' =
            match ev with
            | Span_begin { name; path; ts; depth } ->
                Span_begin
                  {
                    name;
                    path = rebase path;
                    ts = shift ts;
                    depth = depth + base_depth;
                  }
            | Span_end { name; path; ts; dur_s; depth } ->
                let path = rebase path in
                bump_span s path dur_s 1;
                Span_end
                  { name; path; ts = shift ts; dur_s; depth = depth + base_depth }
            | Count { name; path; ts; incr; total = _ } ->
                let path = rebase path in
                let total = bump_counter s name incr in
                bump_counter_span s (path, name) incr;
                Count { name; path; ts = shift ts; incr; total }
            | Gauge { name; path; ts; value } ->
                Gauge { name; path = rebase path; ts = shift ts; value }
          in
          if observed s then emit_record s ev')
        snap

(* ---------- sinks ---------- *)

let null_sink = { emit = (fun _ -> ()); flush = (fun () -> ()) }

let jsonl write =
  let line kvs =
    write (Json.to_string (Json.Obj kvs));
    write "\n"
  in
  let emit = function
    | Span_begin { name; path; ts; depth } ->
        line
          [
            ("ev", Json.String "span_begin");
            ("name", Json.String name);
            ("path", Json.String path);
            ("ts", Json.Float ts);
            ("depth", Json.Int depth);
          ]
    | Span_end { name; path; ts; dur_s; depth } ->
        line
          [
            ("ev", Json.String "span_end");
            ("name", Json.String name);
            ("path", Json.String path);
            ("ts", Json.Float ts);
            ("dur_s", Json.Float dur_s);
            ("depth", Json.Int depth);
          ]
    | Count { name; path; ts; incr; total } ->
        line
          [
            ("ev", Json.String "count");
            ("name", Json.String name);
            ("path", Json.String path);
            ("ts", Json.Float ts);
            ("incr", Json.Int incr);
            ("total", Json.Int total);
          ]
    | Gauge { name; path; ts; value } ->
        line
          [
            ("ev", Json.String "gauge");
            ("name", Json.String name);
            ("path", Json.String path);
            ("ts", Json.Float ts);
            ("value", Json.Float value);
          ]
  in
  { emit; flush = (fun () -> ()) }

let chrome_trace write =
  let started = ref false in
  let closed = ref false in
  let t0 = ref 0.0 in
  let us ts = (ts -. !t0) *. 1e6 in
  (* [t0] must be pinned before the event's [ts] field is rendered, so the
     payload is built inside [record], after the first-event bookkeeping *)
  let record ts mk_kvs =
    if !closed then ()
    else begin
      if not !started then begin
        t0 := ts;
        write "[\n";
        started := true
      end
      else write ",\n";
      write (Json.to_string (Json.Obj (mk_kvs ())))
    end
  in
  let common name ph ts =
    [
      ("name", Json.String name);
      ("cat", Json.String "lr");
      ("ph", Json.String ph);
      ("ts", Json.Float (us ts));
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
    ]
  in
  let emit = function
    | Span_begin { name; ts; _ } -> record ts (fun () -> common name "B" ts)
    | Span_end { name; ts; _ } -> record ts (fun () -> common name "E" ts)
    | Count { name; ts; total; _ } ->
        record ts (fun () ->
            common name "C" ts
            @ [ ("args", Json.Obj [ (name, Json.Int total) ]) ])
    | Gauge { name; ts; value; _ } ->
        record ts (fun () ->
            common name "C" ts
            @ [ ("args", Json.Obj [ (name, Json.Float value) ]) ])
  in
  let flush () =
    if not !closed then begin
      if not !started then write "[" else ();
      write "\n]\n";
      closed := true
    end
  in
  { emit; flush }

let stderr_summary () =
  (* self-contained aggregation: survives a reset of the global tables *)
  let times : (string, float ref) Hashtbl.t = Hashtbl.create 32 in
  let calls : (string, int ref) Hashtbl.t = Hashtbl.create 32 in
  let depths : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let sorder : string list ref = ref [] in
  let counters : (string * string, int ref) Hashtbl.t = Hashtbl.create 32 in
  let corder : (string * string) list ref = ref [] in
  (* rows are registered at span {e begin} so parents list before their
     children (completion order would print children first) *)
  let register path depth =
    if not (Hashtbl.mem times path) then begin
      sorder := path :: !sorder;
      Hashtbl.add times path (ref 0.0);
      Hashtbl.add calls path (ref 0);
      Hashtbl.add depths path depth
    end
  in
  let emit = function
    | Span_begin { path; depth; _ } -> register path depth
    | Span_end { path; dur_s; depth; _ } ->
        register path depth;
        let t = Hashtbl.find times path and c = Hashtbl.find calls path in
        t := !t +. dur_s;
        incr c
    | Count { name; path; incr = n; _ } -> (
        let key = (path, name) in
        match Hashtbl.find_opt counters key with
        | Some r -> r := !r + n
        | None ->
            Hashtbl.add counters key (ref n);
            corder := key :: !corder)
    | Gauge _ -> ()
  in
  let flush () =
    if !sorder <> [] || !corder <> [] then begin
      Printf.eprintf "── instr summary ──────────────────────────────\n";
      Printf.eprintf "%-40s %6s %10s\n" "span" "calls" "seconds";
      List.iter
        (fun path ->
          let depth = try Hashtbl.find depths path with Not_found -> 0 in
          let name =
            match String.rindex_opt path '/' with
            | Some i -> String.sub path (i + 1) (String.length path - i - 1)
            | None -> path
          in
          Printf.eprintf "%-40s %6d %10.3f\n"
            (String.make (2 * depth) ' ' ^ name)
            !(Hashtbl.find calls path)
            !(Hashtbl.find times path))
        (List.rev !sorder);
      if !corder <> [] then begin
        Printf.eprintf "%-40s %-16s %10s\n" "counter (by span)" "" "total";
        List.iter
          (fun ((path, name) as key) ->
            Printf.eprintf "%-40s %-16s %10d\n"
              (if path = "" then "(top level)" else path)
              name
              !(Hashtbl.find counters key))
          (List.rev !corder)
      end;
      Printf.eprintf "───────────────────────────────────────────────\n%!"
    end
  in
  { emit; flush }

let to_file path mk =
  let oc = open_out path in
  let inner = mk (output_string oc) in
  let closed = ref false in
  {
    emit = (fun e -> if not !closed then inner.emit e);
    flush =
      (fun () ->
        if not !closed then begin
          inner.flush ();
          close_out oc;
          closed := true
        end);
  }

let jsonl_file path = to_file path jsonl
let chrome_trace_file path = to_file path chrome_trace
