bin/logic_regression_cli.mli:
