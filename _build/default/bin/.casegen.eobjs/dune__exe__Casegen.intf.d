bin/casegen.mli:
