bin/casegen.ml: Arg Cmd Cmdliner Filename List Lr_cases Lr_netlist Option Printf Term
