(* Dump any of the 20 benchmark golden circuits to the text netlist format,
   so external tools (or a human) can inspect what the black-box hides. *)

module N = Lr_netlist.Netlist
module Io = Lr_netlist.Io
module Cases = Lr_cases.Cases

open Cmdliner

let case_arg =
  let doc = "Benchmark case name (case_1 .. case_20), or 'all'." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CASE" ~doc)

let out_arg =
  let doc = "Output file (single case) or directory (all)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH" ~doc)

let dump spec path =
  let c = Cases.build spec in
  Io.write_file c path;
  Printf.printf "%-8s %-4s %3d PI %3d PO %6d gates -> %s\n" spec.Cases.name
    (Cases.category_to_string spec.Cases.category)
    spec.Cases.num_inputs spec.Cases.num_outputs (N.size c) path

let run case out =
  match case with
  | "all" ->
      let dir = Option.value out ~default:"." in
      List.iter
        (fun spec -> dump spec (Filename.concat dir (spec.Cases.name ^ ".lrc")))
        Cases.specs;
      0
  | name -> (
      match Cases.find name with
      | spec ->
          dump spec (Option.value out ~default:(name ^ ".lrc"));
          0
      | exception Not_found ->
          Printf.eprintf "unknown case %s\n" name;
          1)

let cmd =
  let doc = "dump benchmark golden circuits" in
  Cmd.v (Cmd.info "casegen" ~doc) Term.(const run $ case_arg $ out_arg)

let () = exit (Cmd.eval' cmd)
