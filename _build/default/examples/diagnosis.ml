(* The DIAG scenario (paper Section V, cases 3/6/8/15/16/20): extracting a
   semantic condition over bus variables from a black-box.

   case_15 hides (pa == pb) behind a gating scalar, so the equality is not
   directly observable at any output: the matcher must discover a
   propagation cube — an assignment to the other inputs under which the
   output follows the predicate — and the learner then compresses the two
   24-bit buses into a single delegate input for the decision tree
   (Example 2 / Figure 3 of the paper).

     dune exec examples/diagnosis.exe *)

module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Cases = Lr_cases.Cases
module Eval = Lr_eval.Eval
module Cube = Lr_cube.Cube
module G = Lr_grouping.Grouping
module T = Lr_templates.Templates
module Learner = Logic_regression.Learner
module Config = Logic_regression.Config

let () =
  let spec = Cases.find "case_15" in
  let golden = Cases.build spec in
  Printf.printf "case_15 (DIAG): %d inputs, %d outputs\n\n"
    spec.Cases.num_inputs spec.Cases.num_outputs;
  let box = Cases.blackbox spec in
  let config =
    { Config.default with Config.seed = 11; support_rounds = 2048 }
  in
  let report = Learner.learn ~config box in
  (match report.Learner.matches with
  | Some m ->
      print_endline "comparator predicates discovered:";
      List.iter
        (fun c ->
          let rhs =
            match c.T.rhs with
            | T.Vec v -> v.G.base
            | T.Const k -> string_of_int k
          in
          (match c.T.prop_cube with
          | None ->
              Printf.printf "  PO %d  =  %s %s %s   (directly observable)\n"
                c.T.po c.T.lhs.G.base
                (T.op_to_string c.T.cmp_op)
                rhs
          | Some cube ->
              Printf.printf
                "  PO %d  =  %s %s %s   under a propagation cube of %d literals\n"
                c.T.po c.T.lhs.G.base
                (T.op_to_string c.T.cmp_op)
                rhs (Cube.num_literals cube)))
        m.T.comparators
  | None -> ());
  print_newline ();
  List.iter
    (fun r ->
      if r.Learner.compressed then
        Printf.printf
          "output %s: 48 bus inputs compressed into one delegate; tree support = %d\n"
          r.Learner.output_name r.Learner.support_size)
    report.Learner.outputs;
  let c = report.Learner.circuit in
  let acc =
    Eval.accuracy ~count:30_000 ~rng:(Rng.create 5) ~golden ~candidate:c ()
  in
  Printf.printf "\nlearned circuit: %d gates, %.4f%% accurate, %.2f s\n"
    (N.size c) (100.0 *. acc) report.Learner.elapsed_s
