(* Quickstart: learn a circuit for a black-box you define as a plain OCaml
   function, then check the result on every input assignment.

     dune exec examples/quickstart.exe

   The black-box below computes f = (a AND b) OR (NOT c AND d) — but the
   learner is only allowed to query it with full input assignments, exactly
   like the contest's IO-generator. *)

module Bv = Lr_bitvec.Bv
module N = Lr_netlist.Netlist
module Box = Lr_blackbox.Blackbox
module Learner = Logic_regression.Learner
module Config = Logic_regression.Config

let secret a = (Bv.get a 0 && Bv.get a 1) || ((not (Bv.get a 2)) && Bv.get a 3)

let () =
  let box =
    Box.of_function
      ~input_names:[| "a"; "b"; "c"; "d"; "e"; "f" |]
      ~output_names:[| "out" |]
      (fun a ->
        let out = Bv.create 1 in
        Bv.set out 0 (secret a);
        out)
  in
  print_endline "querying the black-box to learn a circuit...";
  let config =
    { Config.default with Config.seed = 42; support_rounds = 512 }
  in
  let report = Learner.learn ~config box in
  let c = report.Learner.circuit in
  Printf.printf "learned a circuit with %d two-input gates (queries: %d)\n"
    (N.size c) report.Learner.queries;
  List.iter
    (fun r ->
      Printf.printf "output %s learned by %s over a support of %d inputs\n"
        r.Learner.output_name
        (Learner.method_to_string r.Learner.method_used)
        r.Learner.support_size)
    report.Learner.outputs;
  (* the input space is tiny here, so verify exhaustively *)
  let mistakes = ref 0 in
  for m = 0 to 63 do
    let a = Bv.of_int ~width:6 m in
    if Bv.get (N.eval c a) 0 <> secret a then incr mistakes
  done;
  Printf.printf "exhaustive check: %d mistakes over 64 assignments\n" !mistakes;
  print_endline
    (if !mistakes = 0 then "the learned circuit is exact." else "PROBLEM!")
