(* The DATA scenario (paper Section V, cases 2/12): recognising an
   arithmetic datapath behind a black-box.

   The hidden circuit computes z = 3*a + 5*b + c + 11 (mod 2^19) over three
   16-bit input buses. Name-based grouping identifies the buses from signal
   names alone; the linear-arithmetic template recovers the coefficients
   with a handful of queries; the synthesised adder network is exact.

     dune exec examples/datapath_recognition.exe *)

module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Cases = Lr_cases.Cases
module Eval = Lr_eval.Eval
module G = Lr_grouping.Grouping
module T = Lr_templates.Templates
module Learner = Logic_regression.Learner
module Config = Logic_regression.Config

let () =
  let spec = Cases.find "case_2" in
  let golden = Cases.build spec in
  (* Step 1 on its own: what does grouping see? *)
  let gi = G.group (N.input_names golden) in
  Printf.printf "name-based grouping of the %d inputs:\n" spec.Cases.num_inputs;
  List.iter
    (fun v ->
      Printf.printf "  vector %-4s of %2d bits\n" v.G.base
        (Array.length v.G.bits))
    gi.G.vectors;
  Printf.printf "  plus %d scalar signals\n\n" (List.length gi.G.scalars);
  (* the full pipeline *)
  let box = Cases.blackbox spec in
  let config = { Config.default with Config.seed = 3 } in
  let report = Learner.learn ~config box in
  (match report.Learner.matches with
  | Some m ->
      List.iter
        (fun l ->
          let terms =
            String.concat " + "
              (List.map
                 (fun (a, v) -> Printf.sprintf "%d*%s" a v.G.base)
                 l.T.terms)
          in
          Printf.printf "recovered datapath:  %s = %s + %d   (mod 2^%d)\n"
            l.T.z.G.base terms l.T.offset
            (Array.length l.T.z.G.bits))
        m.T.linears
  | None -> ());
  let c = report.Learner.circuit in
  let acc =
    Eval.accuracy ~count:30_000 ~rng:(Rng.create 5) ~golden ~candidate:c ()
  in
  Printf.printf
    "\nlearned circuit: %d gates, %.4f%% accurate, %d queries, %.2f s\n"
    (N.size c) (100.0 *. acc) report.Learner.queries report.Learner.elapsed_s;
  Printf.printf "(the hidden golden adder network has %d gates)\n"
    (N.size golden)
