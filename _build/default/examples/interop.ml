(* Interop: learn a circuit, export it to structural Verilog and to ASCII
   AIGER, read the AIGER back, and formally prove (SAT-based CEC) that the
   roundtripped circuit still equals the hidden golden function.

     dune exec examples/interop.exe *)

module N = Lr_netlist.Netlist
module Cases = Lr_cases.Cases
module Aig = Lr_aig.Aig
module Aiger = Lr_aig.Aiger
module Equiv = Lr_aig.Equiv
module Verilog = Lr_netlist.Verilog
module Learner = Logic_regression.Learner
module Config = Logic_regression.Config

let () =
  let spec = Cases.find "case_16" in
  let golden = Cases.build spec in
  let config = { Config.default with Config.seed = 13; support_rounds = 128 } in
  let report = Learner.learn ~config (Cases.blackbox spec) in
  let c = report.Learner.circuit in
  Printf.printf "learned case_16: %d gates\n\n" (N.size c);
  (* Verilog *)
  let v = Verilog.write ~module_name:"case_16_learned" c in
  print_endline "--- first lines of the Verilog export ---";
  String.split_on_char '\n' v
  |> List.filteri (fun i _ -> i < 8)
  |> List.iter print_endline;
  Printf.printf "--- (%d lines total) ---\n\n"
    (List.length (String.split_on_char '\n' v));
  (* AIGER roundtrip *)
  let aig = Aig.of_netlist c in
  let text = Aiger.write ~comment:"learned case_16" aig in
  let back = Aig.to_netlist (Aiger.read text) in
  Printf.printf "AIGER roundtrip: %d ANDs -> %d bytes -> %d ANDs\n"
    (Aig.num_ands aig) (String.length text)
    (Aig.num_ands (Aiger.read text |> fun a -> a));
  (* formal closure *)
  (match Equiv.check golden back with
  | Equiv.Equivalent ->
      print_endline
        "CEC: the roundtripped learned circuit is PROVEN equivalent to the \
         hidden golden function."
  | Equiv.Counterexample cex ->
      Printf.printf "CEC: NOT equivalent, counterexample %s\n"
        (Lr_bitvec.Bv.to_string cex));
  ignore report
