(* The ECO scenario (paper Section V, cases 1/4/7/13/17/19).

   In an engineering change order, the logic difference between the old and
   the patched cone is available only as a black-box (e.g. from two sealed
   simulators). The learner must recover a small patch circuit. This example
   runs the paper's method and the two contestant-style baselines on
   case_4 — the case where the paper reports a 625x size advantage — and
   prints a Table-II-style row for each.

     dune exec examples/eco_patch.exe *)

module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Box = Lr_blackbox.Blackbox
module Cases = Lr_cases.Cases
module Eval = Lr_eval.Eval
module Baselines = Lr_baselines.Baselines
module Learner = Logic_regression.Learner
module Config = Logic_regression.Config

let () =
  let spec = Cases.find "case_4" in
  let golden = Cases.build spec in
  Printf.printf "case_4 (ECO): %d inputs, %d outputs, hidden circuit of %d gates\n\n"
    spec.Cases.num_inputs spec.Cases.num_outputs (N.size golden);
  let score c =
    Eval.accuracy ~count:30_000 ~rng:(Rng.create 2024) ~golden ~candidate:c ()
  in
  let row name f =
    let box = Cases.blackbox spec in
    let t0 = Unix.gettimeofday () in
    let c = f box in
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "%-22s size=%-6d accuracy=%8.4f%%  time=%5.1fs  queries=%d\n"
      name (N.size c)
      (100.0 *. score c)
      dt (Box.queries_used box)
  in
  let config =
    { Config.improved with Config.seed = 7; support_rounds = 1024 }
  in
  row "ours (improved)" (fun box ->
      (Learner.learn ~config box).Learner.circuit);
  row "ours (contest)" (fun box ->
      (Learner.learn
         ~config:{ Config.contest with Config.seed = 7; support_rounds = 1024 }
         box)
        .Learner.circuit);
  row "2nd place (i): SOP" (fun box ->
      Baselines.sop_memorizer ~samples:4096 ~rng:(Rng.create 7) box);
  row "2nd place (ii): ID3" (fun box ->
      Baselines.id3_tree ~samples:8192 ~rng:(Rng.create 7) box);
  print_newline ();
  print_endline
    "The decision-tree method recovers the sparse patch support exactly;";
  print_endline
    "sampling learners must memorise the space and pay orders of magnitude";
  print_endline "in size and accuracy, as in Table II of the paper."
