examples/interop.mli:
