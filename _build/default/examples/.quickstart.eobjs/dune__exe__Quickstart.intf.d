examples/quickstart.mli:
