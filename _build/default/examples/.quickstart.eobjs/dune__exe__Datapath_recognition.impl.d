examples/datapath_recognition.ml: Array List Logic_regression Lr_bitvec Lr_cases Lr_eval Lr_grouping Lr_netlist Lr_templates Printf String
