examples/diagnosis.mli:
