examples/interop.ml: List Logic_regression Lr_aig Lr_bitvec Lr_cases Lr_netlist Printf String
