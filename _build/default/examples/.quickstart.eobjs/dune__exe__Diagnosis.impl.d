examples/diagnosis.ml: List Logic_regression Lr_bitvec Lr_cases Lr_cube Lr_eval Lr_grouping Lr_netlist Lr_templates Printf
