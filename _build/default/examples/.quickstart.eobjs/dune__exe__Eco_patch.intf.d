examples/eco_patch.mli:
