examples/datapath_recognition.mli:
