examples/quickstart.ml: List Logic_regression Lr_bitvec Lr_blackbox Lr_netlist Printf
