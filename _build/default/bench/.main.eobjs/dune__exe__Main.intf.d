bench/main.mli:
