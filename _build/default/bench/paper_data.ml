(* Table II of the paper, transcribed: per case and per method,
   (size, accuracy%, time s); None where the method produced no result. *)

type entry = { size : int; accuracy : float; time : int }

type row = {
  name : string;
  first_place : entry option;  (* "ours at the contest" *)
  second_i : entry option;
  second_ii : entry option;
  ours : entry option;  (* "ours with further improvements" *)
}

let e size accuracy time = Some { size; accuracy; time }

let table2 =
  [
    { name = "case_1"; first_place = e 172 100.0 27; second_i = e 165 100.0 70; second_ii = e 165 100.0 53; ours = e 165 100.0 35 };
    { name = "case_2"; first_place = e 186 100.0 10; second_i = e 627 100.0 83; second_ii = e 201 100.0 34; ours = e 186 100.0 11 };
    { name = "case_3"; first_place = e 71 100.0 12; second_i = e 71 100.0 110; second_ii = e 71 100.0 96; ours = e 71 100.0 14 };
    { name = "case_4"; first_place = e 1298 100.0 465; second_i = e 106592 99.783 2561; second_ii = e 108083 99.199 2664; ours = e 173 100.0 229 };
    { name = "case_5"; first_place = None; second_i = e 165119 99.785 2017; second_ii = e 139470 99.550 2664; ours = e 1436 99.833 2578 };
    { name = "case_6"; first_place = e 93 100.0 15; second_i = e 147 100.0 97; second_ii = None; ours = e 93 100.0 16 };
    { name = "case_7"; first_place = e 40 100.0 4; second_i = e 40 100.0 20; second_ii = e 40 100.0 10; ours = e 40 100.0 5 };
    { name = "case_8"; first_place = e 63 100.0 6; second_i = e 85 100.0 50; second_ii = e 65412 99.844 2666; ours = e 63 100.0 7 };
    { name = "case_9"; first_place = None; second_i = e 25457 87.445 2699; second_ii = None; ours = None };
    { name = "case_10"; first_place = e 23 100.0 6; second_i = e 23 100.0 17; second_ii = e 23 100.0 10; ours = e 23 100.0 6 };
    { name = "case_11"; first_place = e 4 0.1 10; second_i = e 11044 57.779 2226; second_ii = e 89495 99.264 2681; ours = e 1928 99.640 2657 };
    { name = "case_12"; first_place = e 79 100.0 10; second_i = e 122 99.994 153; second_ii = e 80 100.0 45; ours = e 79 100.0 9 };
    { name = "case_13"; first_place = e 27 100.0 4; second_i = e 27 100.0 20; second_ii = e 27 100.0 9; ours = e 27 100.0 5 };
    { name = "case_14"; first_place = None; second_i = None; second_ii = None; ours = e 11207 28.194 2689 };
    { name = "case_15"; first_place = None; second_i = e 181 99.999 81; second_ii = e 46013 99.781 2668; ours = e 129 99.999 19 };
    { name = "case_16"; first_place = e 34 100.0 1; second_i = e 22 100.0 11; second_ii = e 22 100.0 6; ours = e 22 100.0 2 };
    { name = "case_17"; first_place = None; second_i = e 101285 99.920 2509; second_ii = None; ours = e 2598 99.989 1983 };
    { name = "case_18"; first_place = None; second_i = None; second_ii = None; ours = e 3391 59.757 2674 };
    { name = "case_19"; first_place = None; second_i = e 429865 98.388 1920; second_ii = e 216312 97.682 2683; ours = e 2991 99.956 1764 };
    { name = "case_20"; first_place = e 74 100.0 10; second_i = e 714227 96.812 2700; second_ii = None; ours = e 74 100.0 10 };
  ]

let find name = List.find (fun r -> r.name = name) table2
