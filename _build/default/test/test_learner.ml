module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Box = Lr_blackbox.Blackbox
module Cases = Lr_cases.Cases
module Eval = Lr_eval.Eval
module Config = Logic_regression.Config
module Learner = Logic_regression.Learner

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* a fast configuration for tests: same algorithm, smaller constants *)
let fast =
  {
    Config.default with
    Config.support_rounds = 192;
    node_rounds = 32;
    max_tree_nodes = 512;
    optimize_rounds = 1;
    fraig_words = 4;
    template_samples = 32;
  }

let accuracy_of spec report =
  Eval.accuracy ~count:4000 ~rng:(Rng.create 999)
    ~golden:(Cases.build spec) ~candidate:report.Learner.circuit ()

let learn_case ?(config = fast) name =
  let spec = Cases.find name in
  let box = Cases.blackbox spec in
  let report = Learner.learn ~config box in
  (spec, report)

let test_learn_xor_blackbox () =
  let input_names = Array.init 5 (fun i -> Printf.sprintf "w%c" (Char.chr (97 + i))) in
  let box =
    Box.of_function ~input_names ~output_names:[| "f" |] (fun a ->
        let out = Bv.create 1 in
        Bv.set out 0 (Bv.get a 1 <> Bv.get a 3);
        out)
  in
  let report = Learner.learn ~config:fast box in
  (* validate on all 32 assignments *)
  let correct = ref true in
  for m = 0 to 31 do
    let a = Bv.of_int ~width:5 m in
    let got = Bv.get (N.eval report.Learner.circuit a) 0 in
    if got <> (Bv.get a 1 <> Bv.get a 3) then correct := false
  done;
  check "xor learned exactly" true !correct;
  (match report.Learner.outputs with
  | [ r ] ->
      check "exhaustive conquest used" true
        (r.Learner.method_used = Learner.Exhaustive);
      check_int "support is 2" 2 r.Learner.support_size
  | _ -> Alcotest.fail "one output expected");
  check "tiny circuit" true (N.size report.Learner.circuit <= 3)

let test_case7_eco_exact () =
  let spec, report = learn_case "case_7" in
  let acc = accuracy_of spec report in
  check "accuracy >= 99.9%" true (acc >= 0.999);
  check "small circuit" true (N.size report.Learner.circuit < 200)

let test_case16_via_templates () =
  let spec, report = learn_case "case_16" in
  Alcotest.(check (float 0.0)) "exact" 1.0 (accuracy_of spec report);
  List.iter
    (fun r ->
      check "all outputs via comparator template" true
        (r.Learner.method_used = Learner.Comparator_template))
    report.Learner.outputs;
  check "competitive size" true (N.size report.Learner.circuit < 120)

let test_case2_linear_exact () =
  let spec, report = learn_case "case_2" in
  Alcotest.(check (float 0.0)) "exact" 1.0 (accuracy_of spec report);
  List.iter
    (fun r ->
      check "all outputs via linear template" true
        (r.Learner.method_used = Learner.Linear_template))
    report.Learner.outputs

let test_case16_without_preprocessing () =
  (* the ablation path: templates off, the buses are narrow enough for the
     exhaustive/tree machinery to still learn the predicates *)
  let config = { fast with Config.use_templates = false } in
  let spec, report = learn_case ~config "case_16" in
  let acc = accuracy_of spec report in
  check "still accurate without templates" true (acc >= 0.99);
  List.iter
    (fun r ->
      check "no template methods used" true
        (r.Learner.method_used = Learner.Exhaustive
        || r.Learner.method_used = Learner.Decision_tree))
    report.Learner.outputs

let test_case15_input_compression () =
  let spec, report = learn_case "case_15" in
  let acc = accuracy_of spec report in
  check "accuracy >= 99.9%" true (acc >= 0.999);
  check "some output used compression" true
    (List.exists (fun r -> r.Learner.compressed) report.Learner.outputs)

let test_budget_truncation () =
  let spec = Cases.find "case_4" in
  let box = Cases.blackbox ~budget:3000 spec in
  let report = Learner.learn ~config:fast box in
  (* must terminate and produce a full-shape circuit *)
  check_int "all outputs present" spec.Cases.num_outputs
    (List.length report.Learner.outputs);
  check "budget respected (within one sampling batch)" true
    (report.Learner.queries < 3000 + 70000)

let test_onset_offset_choice () =
  (* a mostly-true function: improved config must build from the offset *)
  let input_names = Array.init 6 (fun i -> Printf.sprintf "v%c" (Char.chr (97 + i))) in
  let box =
    Box.of_function ~input_names ~output_names:[| "f" |] (fun a ->
        let out = Bv.create 1 in
        Bv.set out 0 (Bv.get a 0 || Bv.get a 2 || Bv.get a 4);
        out)
  in
  let report = Learner.learn ~config:fast box in
  (match report.Learner.outputs with
  | [ r ] -> check "offset chosen for a mostly-1 output" true r.Learner.used_offset
  | _ -> Alcotest.fail "one output");
  (* and the result is still exact *)
  let ok = ref true in
  for m = 0 to 63 do
    let a = Bv.of_int ~width:6 m in
    if
      Bv.get (N.eval report.Learner.circuit a) 0
      <> (Bv.get a 0 || Bv.get a 2 || Bv.get a 4)
    then ok := false
  done;
  check "exact" true !ok

let test_contest_vs_improved_presets () =
  check "contest has no early stop" true (Config.contest.Config.leaf_epsilon = 0.0);
  check "improved has early stop" true (Config.improved.Config.leaf_epsilon > 0.0);
  check "improved uses onset/offset" true Config.improved.Config.use_onset_offset;
  check "contest does not" false Config.contest.Config.use_onset_offset

(* End-to-end soundness: on a black-box whose support fits the exhaustive
   conquest, the learned circuit is FORMALLY equivalent to the hidden one
   (checked by the SAT-based CEC), for arbitrary random hidden circuits. *)
let prop_learner_formally_exact =
  QCheck.Test.make ~name:"learner is exact on small-support boxes" ~count:8
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Lr_bitvec.Rng.create seed in
      let names = Array.init 10 (fun i -> Printf.sprintf "w%c" (Char.chr (97 + i))) in
      let golden = N.create ~input_names:names ~output_names:[| "f"; "g" |] in
      let pool = ref (List.init 10 (fun i -> N.input golden i)) in
      let pick () = List.nth !pool (Lr_bitvec.Rng.int rng (List.length !pool)) in
      for _ = 1 to 20 do
        let a = pick () and b = pick () in
        let gate =
          match Lr_bitvec.Rng.int rng 4 with
          | 0 -> N.and_ golden a b
          | 1 -> N.or_ golden a b
          | 2 -> N.xor_ golden a b
          | _ -> N.nand_ golden a b
        in
        pool := gate :: !pool
      done;
      N.set_output golden 0 (pick ());
      N.set_output golden 1 (pick ());
      let box = Box.of_netlist golden in
      let config = { fast with Config.support_rounds = 256 } in
      let report = Learner.learn ~config box in
      Lr_aig.Equiv.check golden report.Learner.circuit = Lr_aig.Equiv.Equivalent)

let test_deadline_terminates () =
  (* a wall-clock deadline of 0 forces immediate anytime behaviour *)
  let spec = Cases.find "case_9" in
  let box = Cases.blackbox ~deadline_s:0.0 spec in
  let report = Learner.learn ~config:fast box in
  check_int "all outputs approximated" spec.Cases.num_outputs
    (List.length report.Learner.outputs);
  check "flagged incomplete" true
    (List.exists (fun r -> not r.Learner.complete) report.Learner.outputs)

let test_report_accounting () =
  let _, report = learn_case "case_13" in
  check "queries counted" true (report.Learner.queries > 0);
  check "elapsed measured" true (report.Learner.elapsed_s >= 0.0);
  check "matches present (grouping on)" true (report.Learner.matches <> None)

let tests =
  [
    Alcotest.test_case "xor black-box learned exactly" `Quick test_learn_xor_blackbox;
    Alcotest.test_case "case_7 (ECO) accurate & small" `Quick test_case7_eco_exact;
    Alcotest.test_case "case_16 via comparator templates" `Quick
      test_case16_via_templates;
    Alcotest.test_case "case_2 via linear template" `Quick test_case2_linear_exact;
    Alcotest.test_case "case_16 without preprocessing" `Quick
      test_case16_without_preprocessing;
    Alcotest.test_case "case_15 input compression" `Quick
      test_case15_input_compression;
    Alcotest.test_case "budget truncation is graceful" `Quick test_budget_truncation;
    Alcotest.test_case "onset/offset choice" `Quick test_onset_offset_choice;
    Alcotest.test_case "config presets" `Quick test_contest_vs_improved_presets;
    Alcotest.test_case "report accounting" `Quick test_report_accounting;
    Alcotest.test_case "wall-clock deadline" `Quick test_deadline_terminates;
    QCheck_alcotest.to_alcotest prop_learner_formally_exact;
  ]
