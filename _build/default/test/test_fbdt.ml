module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module Cover = Lr_cube.Cover
module Oracle = Lr_fbdt.Oracle
module Fbdt = Lr_fbdt.Fbdt

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = { Fbdt.default_config with Fbdt.node_rounds = 32; max_nodes = 2048 }

(* check that onset covers exactly the 1-minterms on small universes *)
let exact_on n f result =
  let ok = ref true in
  for m = 0 to (1 lsl n) - 1 do
    let a = Bv.of_int ~width:n m in
    if Cover.eval result.Fbdt.onset a <> f a then ok := false;
    (* onset and offset must partition the space for a complete tree *)
    if Cover.eval result.Fbdt.onset a = Cover.eval result.Fbdt.offset a then
      ok := false
  done;
  !ok

let test_learn_and () =
  let f a = Bv.get a 0 && Bv.get a 2 in
  let oracle = Oracle.of_fun ~arity:4 f in
  let r = Fbdt.learn cfg ~rng:(Rng.create 1) oracle in
  check "exact" true (exact_on 4 f r);
  check "complete" true r.Fbdt.complete;
  check_int "single onset cube" 1 (Cover.num_cubes r.Fbdt.onset)

let test_learn_majority () =
  let f a =
    let c = ref 0 in
    for i = 0 to 2 do
      if Bv.get a i then incr c
    done;
    !c >= 2
  in
  let oracle = Oracle.of_fun ~arity:3 f in
  let r = Fbdt.learn cfg ~rng:(Rng.create 2) oracle in
  check "exact" true (exact_on 3 f r)

let test_learn_xor_deep () =
  (* parity of 4: forces the tree to full depth on those variables *)
  let f a = Bv.popcount a land 1 = 1 in
  let oracle = Oracle.of_fun ~arity:4 f in
  let r = Fbdt.learn cfg ~rng:(Rng.create 3) oracle in
  check "exact" true (exact_on 4 f r);
  check_int "parity needs 8 onset cubes" 8 (Cover.num_cubes r.Fbdt.onset)

let test_truth_ratio_sampled () =
  let f a = Bv.get a 0 in
  let oracle = Oracle.of_fun ~arity:2 f in
  let r = Fbdt.learn cfg ~rng:(Rng.create 4) oracle in
  check "root ratio near the truth" true
    (r.Fbdt.truth_ratio > 0.2 && r.Fbdt.truth_ratio < 0.8)

let test_support_restriction () =
  (* function depends on var 3 but support claims only vars 0..2: the tree
     must still terminate (majority leaves), flagged incomplete *)
  let f a = Bv.get a 3 && Bv.get a 0 in
  let oracle = Oracle.of_fun ~arity:4 f in
  let r = Fbdt.learn ~support:[ 0; 1; 2 ] cfg ~rng:(Rng.create 5) oracle in
  check "terminates incomplete" false r.Fbdt.complete

let test_constant_functions () =
  let always b _ = b in
  let r_true =
    Fbdt.learn cfg ~rng:(Rng.create 6) (Oracle.of_fun ~arity:3 (always true))
  in
  check_int "constant 1: one tautology onset cube" 1
    (Cover.num_cubes r_true.Fbdt.onset);
  check_int "constant 1: no offset" 0 (Cover.num_cubes r_true.Fbdt.offset);
  let r_false =
    Fbdt.learn cfg ~rng:(Rng.create 7) (Oracle.of_fun ~arity:3 (always false))
  in
  check_int "constant 0: no onset" 0 (Cover.num_cubes r_false.Fbdt.onset)

let test_exhaustive () =
  let f a = (Bv.get a 1 && Bv.get a 4) || Bv.get a 2 in
  let oracle = Oracle.of_fun ~arity:6 f in
  let r = Fbdt.learn_exhaustive ~rng:(Rng.create 8) ~support:[ 1; 2; 4 ] oracle in
  check "exact" true (exact_on 6 f r);
  check "complete" true r.Fbdt.complete;
  check_int "2^3 minterms enumerated" 8 r.Fbdt.nodes_expanded

let test_exhaustive_rejects_wide_support () =
  let oracle = Oracle.of_fun ~arity:30 (fun _ -> false) in
  check "wide support rejected" true
    (try
       ignore
         (Fbdt.learn_exhaustive ~rng:(Rng.create 9)
            ~support:(List.init 21 Fun.id) oracle);
       false
     with Invalid_argument _ -> true)

let test_budget_approximation () =
  (* oracle exhausts after 2000 queries: the learner must finish with
     majority-approximated leaves *)
  let used = ref 0 in
  let f a = (Bv.get a 0 && Bv.get a 1) || (Bv.get a 2 && Bv.get a 3) in
  let oracle =
    {
      Oracle.arity = 8;
      query =
        (fun arr ->
          used := !used + Array.length arr;
          Array.map f arr);
      exhausted = (fun () -> !used > 2000);
    }
  in
  let r = Fbdt.learn cfg ~rng:(Rng.create 10) oracle in
  check "incomplete" false r.Fbdt.complete;
  (* the approximation is majority-0 here (f is mostly 0) *)
  check "still produced covers" true
    (Cover.num_cubes r.Fbdt.onset + Cover.num_cubes r.Fbdt.offset > 0)

let test_early_stopping_epsilon () =
  (* f is 1 on a single minterm of 8 vars (P(1) = 1/256): with a large
     epsilon, the root is already within epsilon of constant 0 *)
  let f a = Bv.to_int a = 173 in
  let oracle = Oracle.of_fun ~arity:8 f in
  let eager = { cfg with Fbdt.leaf_epsilon = 0.2 } in
  let r = Fbdt.learn eager ~rng:(Rng.create 11) oracle in
  check "stopped immediately" true (r.Fbdt.nodes_expanded <= 3);
  check_int "approximated as constant 0" 0 (Cover.num_cubes r.Fbdt.onset)

let prop_exhaustive_exact =
  QCheck.Test.make ~name:"exhaustive conquest is exact on random functions"
    ~count:50
    QCheck.(int_range 0 255)
    (fun tt ->
      (* 3-input function from an 8-bit truth table *)
      let f a = (tt lsr Bv.to_int a) land 1 = 1 in
      let oracle = Oracle.of_fun ~arity:3 f in
      let r =
        Fbdt.learn_exhaustive ~rng:(Rng.create tt) ~support:[ 0; 1; 2 ] oracle
      in
      exact_on 3 f r)

let prop_tree_exact_when_complete =
  QCheck.Test.make ~name:"complete trees are exact" ~count:30
    QCheck.(int_range 0 65535)
    (fun tt ->
      let f a = (tt lsr Bv.to_int a) land 1 = 1 in
      let oracle = Oracle.of_fun ~arity:4 f in
      let r = Fbdt.learn cfg ~rng:(Rng.create tt) oracle in
      (not r.Fbdt.complete) || exact_on 4 f r)

let test_tree_structure () =
  let f a = (Bv.get a 0 && Bv.get a 1) || Bv.get a 2 in
  let oracle = Oracle.of_fun ~arity:3 f in
  let r = Fbdt.learn cfg ~rng:(Rng.create 21) oracle in
  match r.Fbdt.tree with
  | None -> Alcotest.fail "learn must return the tree"
  | Some t ->
      (* the tree classifies exactly like the covers *)
      for m = 0 to 7 do
        let a = Bv.of_int ~width:3 m in
        check "tree = cover" true
          (Fbdt.classify t a = Cover.eval r.Fbdt.onset a);
        check "tree = function" true (Fbdt.classify t a = f a)
      done;
      check "depth bounded by support" true (Fbdt.tree_depth t <= 3);
      check_int "leaves = onset + offset cubes"
        (Cover.num_cubes r.Fbdt.onset + Cover.num_cubes r.Fbdt.offset)
        (Fbdt.tree_leaves t)

let test_tree_dot () =
  let f a = Bv.get a 0 <> Bv.get a 1 in
  let oracle = Oracle.of_fun ~arity:2 f in
  let r = Fbdt.learn cfg ~rng:(Rng.create 22) oracle in
  match r.Fbdt.tree with
  | None -> Alcotest.fail "tree expected"
  | Some t ->
      let dot = Fbdt.tree_to_dot ~names:(Printf.sprintf "x%d") t in
      let contains needle =
        let n = String.length needle and h = String.length dot in
        let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
        go 0
      in
      check "digraph header" true (contains "digraph fbdt");
      check "has a split node" true (contains "shape=circle");
      check "has leaves" true (contains "shape=box");
      check "closing brace" true (contains "}")

let tests =
  [
    Alcotest.test_case "explicit tree structure" `Quick test_tree_structure;
    Alcotest.test_case "tree dot export" `Quick test_tree_dot;
    Alcotest.test_case "learn AND" `Quick test_learn_and;
    Alcotest.test_case "learn majority" `Quick test_learn_majority;
    Alcotest.test_case "learn parity (full depth)" `Quick test_learn_xor_deep;
    Alcotest.test_case "root truth ratio" `Quick test_truth_ratio_sampled;
    Alcotest.test_case "under-approximated support" `Quick test_support_restriction;
    Alcotest.test_case "constant functions" `Quick test_constant_functions;
    Alcotest.test_case "exhaustive conquest" `Quick test_exhaustive;
    Alcotest.test_case "exhaustive width guard" `Quick
      test_exhaustive_rejects_wide_support;
    Alcotest.test_case "budget approximation" `Quick test_budget_approximation;
    Alcotest.test_case "early stopping" `Quick test_early_stopping_epsilon;
    QCheck_alcotest.to_alcotest prop_exhaustive_exact;
    QCheck_alcotest.to_alcotest prop_tree_exact_when_complete;
  ]
