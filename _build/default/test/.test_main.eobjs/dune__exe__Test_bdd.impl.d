test/test_bdd.ml: Alcotest List Lr_bdd Lr_bitvec Lr_cube QCheck QCheck_alcotest String
