test/test_blif.ml: Alcotest Array Fun List Lr_aig Lr_bitvec Lr_cases Lr_netlist Printf QCheck QCheck_alcotest
