test/test_dot.ml: Alcotest Lr_netlist String
