test/test_cases.ml: Alcotest Array List Lr_bitvec Lr_cases Lr_grouping Lr_netlist Printf
