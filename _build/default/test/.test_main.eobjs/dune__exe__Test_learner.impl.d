test/test_learner.ml: Alcotest Array Char List Logic_regression Lr_aig Lr_bitvec Lr_blackbox Lr_cases Lr_eval Lr_netlist Printf QCheck QCheck_alcotest
