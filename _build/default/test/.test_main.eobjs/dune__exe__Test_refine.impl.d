test/test_refine.ml: Alcotest Array Char Logic_regression Lr_bitvec Lr_blackbox Lr_eval Lr_netlist Printf
