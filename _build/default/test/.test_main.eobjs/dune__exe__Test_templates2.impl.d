test/test_templates2.ml: Alcotest Array List Lr_bitvec Lr_blackbox Lr_cases Lr_grouping Lr_netlist Lr_templates Printf
