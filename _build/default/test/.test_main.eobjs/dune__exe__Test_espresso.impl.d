test/test_espresso.ml: Alcotest Fun List Lr_bitvec Lr_cube Lr_espresso QCheck QCheck_alcotest String
