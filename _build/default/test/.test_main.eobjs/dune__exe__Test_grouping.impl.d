test/test_grouping.ml: Alcotest Array Hashtbl List Lr_grouping Printf
