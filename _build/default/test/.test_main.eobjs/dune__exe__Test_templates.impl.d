test/test_templates.ml: Alcotest List Lr_bitvec Lr_blackbox Lr_cases Lr_grouping Lr_templates
