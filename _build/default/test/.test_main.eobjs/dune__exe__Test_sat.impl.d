test/test_sat.ml: Alcotest Array List Lr_sat QCheck QCheck_alcotest
