test/test_generators.ml: Alcotest List Logic_regression Lr_aig Lr_bitvec Lr_blackbox Lr_cases Lr_grouping Lr_netlist
