test/test_cover2.ml: Alcotest Format Fun List Lr_bitvec Lr_cube Printf QCheck QCheck_alcotest String
