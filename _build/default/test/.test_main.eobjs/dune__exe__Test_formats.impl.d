test/test_formats.ml: Alcotest Array Fun Int64 List Lr_aig Lr_bitvec Lr_netlist Printf QCheck QCheck_alcotest String
