test/test_equiv.ml: Alcotest Array List Logic_regression Lr_aig Lr_bitvec Lr_cases Lr_netlist Printf QCheck QCheck_alcotest
