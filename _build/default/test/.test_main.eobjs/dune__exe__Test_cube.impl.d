test/test_cube.ml: Alcotest Fun List Lr_bitvec Lr_cube QCheck QCheck_alcotest String
