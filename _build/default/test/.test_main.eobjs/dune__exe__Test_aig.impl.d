test/test_aig.ml: Alcotest Array Int64 List Lr_aig Lr_bitvec Lr_netlist Printf QCheck QCheck_alcotest
