test/test_netlist.ml: Alcotest Array List Lr_bitvec Lr_cube Lr_netlist Printf QCheck QCheck_alcotest
