test/test_espresso2.ml: Alcotest Fun List Lr_bitvec Lr_cube Lr_espresso QCheck QCheck_alcotest String
