test/test_baselines.ml: Alcotest Logic_regression Lr_baselines Lr_bitvec Lr_blackbox Lr_cases Lr_eval Lr_netlist
