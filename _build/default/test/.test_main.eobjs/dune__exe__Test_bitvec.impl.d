test/test_bitvec.ml: Alcotest Float Gen List Lr_bitvec Printf QCheck QCheck_alcotest String
