test/test_extensions.ml: Alcotest List Logic_regression Lr_aig Lr_bitvec Lr_cases Lr_eval Lr_grouping Lr_netlist Lr_templates
