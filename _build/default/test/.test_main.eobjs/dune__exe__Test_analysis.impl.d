test/test_analysis.ml: Alcotest Array Float List Lr_bitvec Lr_cases Lr_cube Lr_eval Lr_netlist Lr_sampling Lr_sat Printf
