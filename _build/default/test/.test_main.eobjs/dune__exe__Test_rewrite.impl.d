test/test_rewrite.ml: Alcotest Array Fun List Lr_aig Lr_bitvec Lr_netlist Printf QCheck QCheck_alcotest
