test/test_sampling.ml: Alcotest Array List Lr_bitvec Lr_blackbox Lr_cube Lr_netlist Lr_sampling Printf QCheck QCheck_alcotest
