test/test_blackbox.ml: Alcotest Array Lr_bitvec Lr_blackbox Lr_netlist
