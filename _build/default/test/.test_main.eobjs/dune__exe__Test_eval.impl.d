test/test_eval.ml: Alcotest Array Float Lr_bitvec Lr_eval Lr_netlist Printf
