test/test_fbdt.ml: Alcotest Array Fun List Lr_bitvec Lr_cube Lr_fbdt Printf QCheck QCheck_alcotest String
