module G = Lr_grouping.Grouping

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_parse_name () =
  let cases =
    [
      ("a[3]", Some ("a", 3));
      ("addr_12", Some ("addr", 12));
      ("a3", Some ("a", 3));
      ("data[0]", Some ("data", 0));
      ("clk", None);
      ("", None);
      ("[3]", None);
      ("x_y", None);
    ]
  in
  List.iter
    (fun (name, want) ->
      let got = G.parse_name name in
      check (Printf.sprintf "parse %S" name) true (got = want))
    cases

let test_group_basic () =
  let g = G.group [| "a[0]"; "a[1]"; "a[2]"; "clk"; "b_0"; "b_1" |] in
  check_int "two vectors" 2 (List.length g.G.vectors);
  check_int "one scalar" 1 (List.length g.G.scalars);
  (match g.G.vectors with
  | [ va; vb ] ->
      check "vector a first" true (va.G.base = "a");
      check_int "a width" 3 (Array.length va.G.bits);
      check "vector b" true (vb.G.base = "b");
      (* a[0] has index 0 -> weight 2^0 -> signal 0 *)
      check_int "a LSB signal" 0 va.G.bits.(0);
      check_int "a MSB signal" 2 va.G.bits.(2)
  | _ -> Alcotest.fail "expected exactly two vectors")

let test_paper_example () =
  (* Example 1: (a2,a1,a0) = (1,1,0) must decode to 6 regardless of
     declaration order *)
  let g = G.group [| "a2"; "a1"; "a0" |] in
  match g.G.vectors with
  | [ v ] ->
      let values = [| true; true; false |] in
      (* a2=1 a1=1 a0=0 *)
      check_int "N = 6" 6 (G.vector_value v (fun s -> values.(s)))
  | _ -> Alcotest.fail "expected one vector"

let test_set_vector () =
  let g = G.group [| "v[0]"; "v[1]"; "v[2]"; "v[3]" |] in
  match g.G.vectors with
  | [ v ] ->
      let store = Array.make 4 false in
      G.set_vector v (fun s b -> store.(s) <- b) 10;
      check_int "roundtrip 10" 10 (G.vector_value v (fun s -> store.(s)));
      G.set_vector v (fun s b -> store.(s) <- b) 0;
      check_int "roundtrip 0" 0 (G.vector_value v (fun s -> store.(s)))
  | _ -> Alcotest.fail "expected one vector"

let test_singleton_stays_scalar () =
  let g = G.group [| "x[0]"; "y"; "z" |] in
  check_int "no vectors" 0 (List.length g.G.vectors);
  check_int "three scalars" 3 (List.length g.G.scalars)

let test_duplicate_indices_degrade () =
  let g = G.group [| "a1"; "a_1" |] in
  (* both parse as ("a",1): cannot form a coherent vector *)
  check_int "no vectors from duplicates" 0 (List.length g.G.vectors);
  check_int "both scalar" 2 (List.length g.G.scalars)

let test_non_contiguous_indices () =
  let g = G.group [| "d[0]"; "d[2]"; "d[5]" |] in
  match g.G.vectors with
  | [ v ] ->
      check_int "width 3 by rank" 3 (Array.length v.G.bits);
      Alcotest.(check (array int)) "declared indices kept" [| 0; 2; 5 |]
        v.G.declared_indices
  | _ -> Alcotest.fail "expected one vector"

let test_partition_is_total () =
  let names = [| "a[0]"; "a[1]"; "b"; "c_0"; "c_1"; "c_2"; "d7" |] in
  let g = G.group names in
  let covered = Hashtbl.create 16 in
  List.iter
    (fun v -> Array.iter (fun s -> Hashtbl.replace covered s ()) v.G.bits)
    g.G.vectors;
  List.iter (fun s -> Hashtbl.replace covered s ()) g.G.scalars;
  check_int "every signal placed once" (Array.length names)
    (Hashtbl.length covered)

let tests =
  [
    Alcotest.test_case "name parsing" `Quick test_parse_name;
    Alcotest.test_case "basic grouping" `Quick test_group_basic;
    Alcotest.test_case "paper example 1" `Quick test_paper_example;
    Alcotest.test_case "set_vector roundtrip" `Quick test_set_vector;
    Alcotest.test_case "singletons stay scalar" `Quick test_singleton_stays_scalar;
    Alcotest.test_case "duplicate indices degrade" `Quick test_duplicate_indices_degrade;
    Alcotest.test_case "non-contiguous indices" `Quick test_non_contiguous_indices;
    Alcotest.test_case "grouping partitions signals" `Quick test_partition_is_total;
  ]
