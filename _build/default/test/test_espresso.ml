module Bv = Lr_bitvec.Bv
module Cube = Lr_cube.Cube
module Cover = Lr_cube.Cover
module Esp = Lr_espresso.Espresso

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cover n strs = Cover.of_cubes n (List.map Cube.of_string strs)

let test_tautology () =
  check "x + ~x" true (Esp.tautology (cover 1 [ "1"; "0" ]));
  check "top cube" true (Esp.tautology (cover 2 [ "--" ]));
  check "single literal is not" false (Esp.tautology (cover 2 [ "1-" ]));
  check "empty cover is not" false (Esp.tautology (Cover.empty 2));
  check "full minterm cover" true
    (Esp.tautology (cover 2 [ "00"; "01"; "10"; "11" ]))

let test_covers_cube () =
  let c = cover 3 [ "1--"; "01-" ] in
  check "covered" true (Esp.covers_cube c (Cube.of_string "11-"));
  check "not covered" false (Esp.covers_cube c (Cube.of_string "00-"))

let test_expand () =
  (* onset minterm 11, offset everything with x0 = 0: x1 is removable *)
  let onset = cover 2 [ "11" ] in
  let offset = cover 2 [ "-0" ] in
  let e = Esp.expand ~onset ~offset in
  check_int "one cube" 1 (Cover.num_cubes e);
  check_int "one literal left" 1 (Cover.num_literals e)

let test_irredundant () =
  let c = cover 2 [ "1-"; "-1"; "11" ] in
  let r = Esp.irredundant c in
  check_int "redundant cube dropped" 2 (Cover.num_cubes r)

let test_minimize_xor_like () =
  (* onset/offset of a 3-var majority, as disjoint minterm covers *)
  let onset = cover 3 [ "011"; "101"; "110"; "111" ] in
  let offset = cover 3 [ "000"; "001"; "010"; "100" ] in
  let m = Esp.minimize ~onset ~offset () in
  check "consistent" true (Esp.consistent ~cover:m ~onset ~offset);
  check "minimized to 3 cubes" true (Cover.num_cubes m <= 3);
  check "literals reduced" true (Cover.num_literals m <= 6)

(* Build disjoint random onset/offset by splitting minterms of a universe;
   unassigned minterms are don't-care. *)
let gen_onoff n =
  QCheck.Gen.(
    list_repeat (1 lsl n) (int_range 0 2) >|= fun tags ->
    let cube_of m =
      let c = ref (Cube.top n) in
      for v = 0 to n - 1 do
        c := Cube.add !c v ((m lsr v) land 1 = 1)
      done;
      !c
    in
    let on = ref [] and off = ref [] in
    List.iteri
      (fun m tag ->
        if tag = 0 then on := cube_of m :: !on
        else if tag = 1 then off := cube_of m :: !off)
      tags;
    (Cover.of_cubes n !on, Cover.of_cubes n !off))

let prop_minimize_consistent =
  QCheck.Test.make ~name:"minimize is consistent with onset/offset" ~count:100
    (QCheck.make (gen_onoff 4))
    (fun (onset, offset) ->
      let m = Esp.minimize ~onset ~offset () in
      Esp.consistent ~cover:m ~onset ~offset)

let prop_minimize_never_grows =
  QCheck.Test.make ~name:"minimize never grows the cover" ~count:100
    (QCheck.make (gen_onoff 4))
    (fun (onset, offset) ->
      let m = Esp.minimize ~onset ~offset () in
      Cover.num_cubes m <= Cover.num_cubes onset)

let prop_tautology_matches_eval =
  QCheck.Test.make ~name:"tautology matches exhaustive evaluation" ~count:200
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 0 6)
           (list_repeat 4 (oneofl [ '0'; '1'; '-' ]) >|= fun cs ->
            Cube.of_string (String.init 4 (List.nth cs)))))
    (fun cubes ->
      let c = Cover.of_cubes 4 cubes in
      let want =
        List.for_all
          (fun m -> Cover.eval c (Bv.of_int ~width:4 m))
          (List.init 16 Fun.id)
      in
      Esp.tautology c = want)

let tests =
  [
    Alcotest.test_case "tautology" `Quick test_tautology;
    Alcotest.test_case "covers_cube" `Quick test_covers_cube;
    Alcotest.test_case "expand against offset" `Quick test_expand;
    Alcotest.test_case "irredundant" `Quick test_irredundant;
    Alcotest.test_case "minimize majority" `Quick test_minimize_xor_like;
    QCheck_alcotest.to_alcotest prop_minimize_consistent;
    QCheck_alcotest.to_alcotest prop_minimize_never_grows;
    QCheck_alcotest.to_alcotest prop_tautology_matches_eval;
  ]
