module Bv = Lr_bitvec.Bv
module Bdd = Lr_bdd.Bdd
module Cube = Lr_cube.Cube
module Cover = Lr_cube.Cover

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let all_inputs n = List.init (1 lsl n) (fun m -> Bv.of_int ~width:n m)

let test_basics () =
  let m = Bdd.man ~nvars:3 in
  let x0 = Bdd.var m 0 and x1 = Bdd.var m 1 in
  let f = Bdd.and_ m x0 x1 in
  check "11 true" true (Bdd.eval m f (Bv.of_string "011"));
  check "01 false" false (Bdd.eval m f (Bv.of_string "001"));
  check "hash consing" true (Bdd.equal f (Bdd.and_ m x1 x0));
  check "involution of not" true (Bdd.equal f (Bdd.not_ m (Bdd.not_ m f)))

let test_xor_ite () =
  let m = Bdd.man ~nvars:2 in
  let x0 = Bdd.var m 0 and x1 = Bdd.var m 1 in
  let f = Bdd.xor_ m x0 x1 in
  let g = Bdd.ite m x0 (Bdd.not_ m x1) x1 in
  check "xor = ite(x0,~x1,x1)" true (Bdd.equal f g)

let test_cofactor () =
  let m = Bdd.man ~nvars:3 in
  let f =
    Bdd.or_ m
      (Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1))
      (Bdd.and_ m (Bdd.nvar m 0) (Bdd.var m 2))
  in
  let f1 = Bdd.cofactor m f 0 true in
  check "positive cofactor" true (Bdd.equal f1 (Bdd.var m 1));
  let f0 = Bdd.cofactor m f 0 false in
  check "negative cofactor" true (Bdd.equal f0 (Bdd.var m 2))

let test_support_size_minterms () =
  let m = Bdd.man ~nvars:4 in
  let f = Bdd.and_ m (Bdd.var m 1) (Bdd.var m 3) in
  Alcotest.(check (list int)) "support" [ 1; 3 ] (Bdd.support m f);
  check_int "two nodes" 2 (Bdd.size m f);
  Alcotest.(check (float 0.001)) "minterms" 4.0 (Bdd.count_minterms m f)

let test_isop_simple () =
  let m = Bdd.man ~nvars:3 in
  (* f = x0 x1 + ~x0 x2 : a 2-cube irredundant form exists *)
  let f =
    Bdd.or_ m
      (Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1))
      (Bdd.and_ m (Bdd.nvar m 0) (Bdd.var m 2))
  in
  let cover = Bdd.isop m f in
  check "isop equals f" true
    (List.for_all
       (fun a -> Cover.eval cover a = Bdd.eval m f a)
       (all_inputs 3));
  check "isop is small" true (Cover.num_cubes cover <= 3)

let gen_bdd n =
  (* random function via random cover *)
  QCheck.Gen.(
    let gen_cube =
      list_repeat n (oneofl [ '0'; '1'; '-' ]) >|= fun cs ->
      Cube.of_string (String.init n (fun i -> List.nth cs i))
    in
    list_size (int_range 1 6) gen_cube >|= Cover.of_cubes n)

let prop_isop_exact =
  QCheck.Test.make ~name:"isop reproduces the function exactly" ~count:200
    (QCheck.make (gen_bdd 5))
    (fun cover ->
      let m = Bdd.man ~nvars:5 in
      let f = Bdd.of_cover m cover in
      let back = Bdd.isop m f in
      List.for_all
        (fun a -> Cover.eval back a = Bdd.eval m f a)
        (all_inputs 5))

let prop_of_cover_eval =
  QCheck.Test.make ~name:"of_cover matches cover eval" ~count:200
    (QCheck.make (gen_bdd 5))
    (fun cover ->
      let m = Bdd.man ~nvars:5 in
      let f = Bdd.of_cover m cover in
      List.for_all
        (fun a -> Bdd.eval m f a = Cover.eval cover a)
        (all_inputs 5))

let prop_demorgan =
  QCheck.Test.make ~name:"De Morgan holds" ~count:100
    (QCheck.make QCheck.Gen.(pair (gen_bdd 4) (gen_bdd 4)))
    (fun (c1, c2) ->
      let m = Bdd.man ~nvars:4 in
      let f = Bdd.of_cover m c1 and g = Bdd.of_cover m c2 in
      Bdd.equal
        (Bdd.not_ m (Bdd.and_ m f g))
        (Bdd.or_ m (Bdd.not_ m f) (Bdd.not_ m g)))

let prop_isop_between_respects_bounds =
  QCheck.Test.make ~name:"isop_between stays within bounds" ~count:100
    (QCheck.make QCheck.Gen.(pair (gen_bdd 4) (gen_bdd 4)))
    (fun (c1, c2) ->
      let m = Bdd.man ~nvars:4 in
      let a = Bdd.of_cover m c1 and b = Bdd.of_cover m c2 in
      let lower = Bdd.and_ m a b in
      let upper = Bdd.or_ m a b in
      let cover = Bdd.isop_between m ~lower ~upper in
      List.for_all
        (fun x ->
          let v = Cover.eval cover x in
          (Bdd.eval m lower x <= v) && (v <= Bdd.eval m upper x))
        (all_inputs 4))

let tests =
  [
    Alcotest.test_case "basics & hash consing" `Quick test_basics;
    Alcotest.test_case "xor via ite" `Quick test_xor_ite;
    Alcotest.test_case "cofactors" `Quick test_cofactor;
    Alcotest.test_case "support/size/minterms" `Quick test_support_size_minterms;
    Alcotest.test_case "isop on a known function" `Quick test_isop_simple;
    QCheck_alcotest.to_alcotest prop_isop_exact;
    QCheck_alcotest.to_alcotest prop_of_cover_eval;
    QCheck_alcotest.to_alcotest prop_demorgan;
    QCheck_alcotest.to_alcotest prop_isop_between_respects_bounds;
  ]
