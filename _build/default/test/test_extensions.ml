(* Tests for the generalized template families (the paper's future work):
   bitwise vector operators and shift/rotate recognition. *)

module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Cases = Lr_cases.Cases
module Eval = Lr_eval.Eval
module T = Lr_templates.Templates
module G = Lr_grouping.Grouping
module Equiv = Lr_aig.Equiv
module Config = Logic_regression.Config
module Learner = Logic_regression.Learner

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let scan name =
  let box = Cases.blackbox (Cases.find name) in
  T.scan ~rng:(Rng.create 77) box

let test_bitwise_detection () =
  let m = scan "ext_bitwise" in
  check_int "two bitwise matches" 2 (List.length m.T.bitwises);
  let find base = List.find_opt (fun b -> b.T.bz.G.base = base) m.T.bitwises in
  (match find "z" with
  | Some { T.bop = T.Bxor; brhs = Some _; _ } -> ()
  | _ -> Alcotest.fail "z must match x ^ y");
  (match find "w" with
  | Some { T.bop = T.Band; brhs = Some _; _ } -> ()
  | _ -> Alcotest.fail "w must match x & y");
  check_int "all 36 POs matched" 36 (List.length (T.matched_outputs m))

let test_shift_detection () =
  let m = scan "ext_shift" in
  check_int "two shift matches" 2 (List.length m.T.shifts);
  let find base = List.find_opt (fun s -> s.T.sz.G.base = base) m.T.shifts in
  (match find "z" with
  | Some { T.amount = 5; rotate = false; _ } -> ()
  | _ -> Alcotest.fail "z must match v >> 5");
  match find "r" with
  | Some { T.amount = 3; rotate = true; _ } -> ()
  | _ -> Alcotest.fail "r must match rotate(v, 3)"

let test_bitwise_not_confused_with_linear () =
  (* xor looks linear on the probing inputs (0 and 1) but not under random
     verification: the linear matcher must NOT claim it *)
  let m = scan "ext_bitwise" in
  check_int "no linear match" 0 (List.length m.T.linears)

let learn name =
  let spec = Cases.find name in
  let config =
    { Config.default with Config.seed = 5; support_rounds = 128 }
  in
  (spec, Learner.learn ~config (Cases.blackbox spec))

let test_learner_uses_bitwise () =
  let spec, report = learn "ext_bitwise" in
  List.iter
    (fun r ->
      check "bitwise template used" true
        (r.Learner.method_used = Learner.Bitwise_template))
    report.Learner.outputs;
  check "formally exact" true
    (Equiv.check (Cases.build spec) report.Learner.circuit = Equiv.Equivalent);
  (* bitwise synthesis is one gate per bit; optimization keeps it tiny *)
  check "tiny circuit" true (N.size report.Learner.circuit <= 72)

let test_learner_uses_shift () =
  let spec, report = learn "ext_shift" in
  List.iter
    (fun r ->
      check "shift template used" true
        (r.Learner.method_used = Learner.Shift_template))
    report.Learner.outputs;
  check "formally exact (wiring only)" true
    (Equiv.check (Cases.build spec) report.Learner.circuit = Equiv.Equivalent);
  check_int "shifts cost zero gates" 0 (N.size report.Learner.circuit)

let test_extensions_listed () =
  check_int "two extension cases" 2 (List.length Cases.extension_specs);
  List.iter
    (fun s ->
      let c = Cases.build s in
      check_int (s.Cases.name ^ " inputs") s.Cases.num_inputs (N.num_inputs c);
      check_int (s.Cases.name ^ " outputs") s.Cases.num_outputs (N.num_outputs c))
    Cases.extension_specs

let test_table2_cases_unaffected () =
  (* the new families must not misfire on the original DATA cases *)
  let m = scan "case_2" in
  check_int "case_2 still linear" 1 (List.length m.T.linears);
  check_int "no bitwise misfire" 0 (List.length m.T.bitwises);
  check_int "no shift misfire" 0 (List.length m.T.shifts)

let tests =
  [
    Alcotest.test_case "bitwise detection" `Quick test_bitwise_detection;
    Alcotest.test_case "shift detection" `Quick test_shift_detection;
    Alcotest.test_case "xor not claimed by linear" `Quick
      test_bitwise_not_confused_with_linear;
    Alcotest.test_case "learner uses bitwise template" `Quick
      test_learner_uses_bitwise;
    Alcotest.test_case "learner uses shift template" `Quick
      test_learner_uses_shift;
    Alcotest.test_case "extension cases build" `Quick test_extensions_listed;
    Alcotest.test_case "original cases unaffected" `Quick
      test_table2_cases_unaffected;
  ]
