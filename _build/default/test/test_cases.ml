module Bv = Lr_bitvec.Bv
module N = Lr_netlist.Netlist
module Cases = Lr_cases.Cases
module G = Lr_grouping.Grouping

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_all_cases_build () =
  List.iter
    (fun spec ->
      let c = Cases.build spec in
      check_int (spec.Cases.name ^ " PI count") spec.Cases.num_inputs
        (N.num_inputs c);
      check_int (spec.Cases.name ^ " PO count") spec.Cases.num_outputs
        (N.num_outputs c);
      (* every case must be simulatable *)
      let a = Bv.create spec.Cases.num_inputs in
      let out = N.eval c a in
      check_int (spec.Cases.name ^ " output width") spec.Cases.num_outputs
        (Bv.length out))
    Cases.specs

let test_determinism () =
  let spec = Cases.find "case_4" in
  let c1 = Cases.build spec and c2 = Cases.build spec in
  let rng = Lr_bitvec.Rng.create 77 in
  for _ = 1 to 50 do
    let a = Bv.random rng spec.Cases.num_inputs in
    check "same outputs" true (Bv.equal (N.eval c1 a) (N.eval c2 a))
  done

let test_table2_shape () =
  check_int "20 cases" 20 (List.length Cases.specs);
  let count cat =
    List.length (List.filter (fun s -> s.Cases.category = cat) Cases.specs)
  in
  check_int "7 ECO" 7 (count Cases.ECO);
  check_int "5 NEQ" 5 (count Cases.NEQ);
  check_int "6 DIAG" 6 (count Cases.DIAG);
  check_int "2 DATA" 2 (count Cases.DATA);
  check_int "10 hidden" 10
    (List.length (List.filter (fun s -> s.Cases.hidden) Cases.specs))

let test_structured_names_group () =
  (* DIAG and DATA cases must expose vectors to name-based grouping *)
  List.iter
    (fun spec ->
      let c = Cases.build spec in
      let g = G.group (N.input_names c) in
      check
        (spec.Cases.name ^ " has input vectors")
        true
        (List.length g.G.vectors >= 1))
    (List.filter
       (fun s -> s.Cases.category = Cases.DIAG || s.Cases.category = Cases.DATA)
       Cases.specs)

let test_unstructured_names_do_not_group () =
  List.iter
    (fun spec ->
      let c = Cases.build spec in
      let g = G.group (N.input_names c) in
      check_int (spec.Cases.name ^ " no vectors") 0 (List.length g.G.vectors))
    (List.filter
       (fun s -> s.Cases.category = Cases.ECO || s.Cases.category = Cases.NEQ)
       Cases.specs)

let test_case16_semantics () =
  (* spot-check a DIAG case against its specification *)
  let spec = Cases.find "case_16" in
  let c = Cases.build spec in
  let names = N.input_names c in
  let find_bit base idx =
    let target = Printf.sprintf "%s[%d]" base idx in
    let found = ref (-1) in
    Array.iteri (fun i n -> if n = target then found := i) names;
    !found
  in
  let a = Bv.create spec.Cases.num_inputs in
  (* u = 36, v = 36 *)
  for i = 0 to 7 do
    Bv.set a (find_bit "u" i) ((36 lsr i) land 1 = 1);
    Bv.set a (find_bit "v" i) ((36 lsr i) land 1 = 1)
  done;
  let out = N.eval c a in
  check "u = v" true (Bv.get out 0);
  check "u < 37" true (Bv.get out 1);
  check "u <> v is false" false (Bv.get out 2);
  check "v >= 100 is false" false (Bv.get out 3)

let test_case2_is_linear () =
  let spec = Cases.find "case_2" in
  let c = Cases.build spec in
  let names = N.input_names c in
  let g = G.group names in
  let vec base = List.find (fun v -> v.G.base = base) g.G.vectors in
  let a = Bv.create spec.Cases.num_inputs in
  let write_vec base value =
    G.set_vector (vec base) (fun s b -> Bv.set a s b) value
  in
  write_vec "a" 100;
  write_vec "b" 20;
  write_vec "c" 7;
  let out = N.eval c a in
  let gz = G.group (N.output_names c) in
  let zvec = List.find (fun v -> v.G.base = "z") gz.G.vectors in
  let z = G.vector_value zvec (fun s -> Bv.get out s) in
  check_int "3a+5b+c+11" (((3 * 100) + (5 * 20) + 7 + 11) mod (1 lsl 19)) z

let test_golden_sizes_reasonable () =
  List.iter
    (fun spec ->
      let c = Cases.build spec in
      let s = N.size c in
      check (spec.Cases.name ^ " nonempty") true (s > 0);
      check (spec.Cases.name ^ " simulatable scale") true (s < 20000))
    Cases.specs

let tests =
  [
    Alcotest.test_case "all 20 cases build with Table II shapes" `Quick
      test_all_cases_build;
    Alcotest.test_case "builds are deterministic" `Quick test_determinism;
    Alcotest.test_case "Table II category counts" `Quick test_table2_shape;
    Alcotest.test_case "DIAG/DATA names group into vectors" `Quick
      test_structured_names_group;
    Alcotest.test_case "ECO/NEQ names do not group" `Quick
      test_unstructured_names_do_not_group;
    Alcotest.test_case "case_16 comparator semantics" `Quick
      test_case16_semantics;
    Alcotest.test_case "case_2 linear arithmetic semantics" `Quick
      test_case2_is_linear;
    Alcotest.test_case "golden circuit sizes" `Quick test_golden_sizes_reasonable;
  ]
