(* Exact support analysis, DIMACS interchange, accuracy statistics. *)

module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Analysis = Lr_netlist.Analysis
module Dimacs = Lr_sat.Dimacs
module Sat = Lr_sat.Sat
module Eval = Lr_eval.Eval
module Ps = Lr_sampling.Pattern_sampling

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let names prefix n = Array.init n (fun i -> Printf.sprintf "%s%d" prefix i)

let test_structural_vs_functional () =
  (* z touches x0..x2 structurally, but x2 cancels out functionally:
     z = (x0 & x2) xor (x0 & x2) xor x1 = x1 *)
  let c = N.create ~input_names:(names "x" 3) ~output_names:(names "z" 1) in
  let t = N.and_ c (N.input c 0) (N.input c 2) in
  (* force a structurally distinct second copy via different gate type *)
  let t' = N.not_ c (N.nand_ c (N.input c 0) (N.input c 2)) in
  N.set_output c 0 (N.xor_ c (N.xor_ c t t') (N.input c 1));
  let structural = Analysis.structural_support c ~output:0 in
  let functional = Analysis.functional_support c ~output:0 in
  Alcotest.(check (list int)) "structural sees all three" [ 0; 1; 2 ] structural;
  Alcotest.(check (list int)) "functional sees only x1" [ 1 ] functional

let test_sampled_support_subset_of_functional () =
  (* Proposition 1's one-sidedness: S' (sampled) ⊆ S (exact) *)
  let spec = Lr_cases.Cases.find "case_7" in
  let golden = Lr_cases.Cases.build spec in
  let box = Lr_cases.Cases.blackbox spec in
  let stats =
    Ps.run ~rounds:128 ~rng:(Rng.create 3) box
      ~constraint_:(Lr_cube.Cube.top spec.Lr_cases.Cases.num_inputs)
      ()
  in
  for o = 0 to spec.Lr_cases.Cases.num_outputs - 1 do
    let sampled = Ps.support stats ~output:o in
    let exact = Analysis.functional_support golden ~output:o in
    check
      (Printf.sprintf "S' subset of S for output %d" o)
      true
      (List.for_all (fun i -> List.mem i exact) sampled)
  done

let test_density () =
  let c = N.create ~input_names:(names "x" 2) ~output_names:(names "z" 1) in
  N.set_output c 0 (N.and_ c (N.input c 0) (N.input c 1));
  let d = Analysis.output_density ~rng:(Rng.create 7) c ~output:0 in
  check "AND density near 1/4" true (Float.abs (d -. 0.25) < 0.02)

let test_dimacs_roundtrip () =
  let cnf = { Dimacs.num_vars = 3; clauses = [ [ 1; -2 ]; [ 2; 3 ]; [ -1 ] ] } in
  let cnf' = Dimacs.of_string (Dimacs.to_string cnf) in
  check_int "vars" cnf.Dimacs.num_vars cnf'.Dimacs.num_vars;
  check "clauses" true (cnf.Dimacs.clauses = cnf'.Dimacs.clauses)

let test_dimacs_solve () =
  let sat = { Dimacs.num_vars = 2; clauses = [ [ 1; 2 ]; [ -1; 2 ] ] } in
  check "satisfiable" true (Dimacs.solve sat = Sat.Sat);
  let unsat = { Dimacs.num_vars = 1; clauses = [ [ 1 ]; [ -1 ] ] } in
  check "unsatisfiable" true (Dimacs.solve unsat = Sat.Unsat)

let test_dimacs_rejects_garbage () =
  let bad s =
    try
      ignore (Dimacs.of_string s);
      false
    with Failure _ -> true
  in
  check "missing header" true (bad "1 2 0\n");
  check "out of range literal" true (bad "p cnf 1 1\n2 0\n");
  check "unterminated clause" true (bad "p cnf 2 1\n1 2\n")

let test_dimacs_comments_and_multiline () =
  let cnf =
    Dimacs.of_string "c a comment\np cnf 3 2\n1 -2\n0\n2 3 0\n"
  in
  check_int "two clauses" 2 (List.length cnf.Dimacs.clauses)

let test_accuracy_stats () =
  let golden = N.create ~input_names:(names "x" 4) ~output_names:(names "z" 1) in
  N.set_output golden 0 (N.and_ golden (N.input golden 0) (N.input golden 1));
  let wrong = N.create ~input_names:(names "x" 4) ~output_names:(names "z" 1) in
  N.set_output wrong 0 (N.or_ wrong (N.input wrong 0) (N.input wrong 1));
  let s =
    Eval.accuracy_stats ~runs:5 ~count:3000 ~rng:(Rng.create 11) ~golden
      ~candidate:wrong ()
  in
  check "mean in CI" true (s.Eval.lo95 <= s.Eval.mean && s.Eval.mean <= s.Eval.hi95);
  check "mean away from 1" true (s.Eval.mean < 0.95);
  check "std sane" true (s.Eval.std >= 0.0 && s.Eval.std < 0.1);
  let exact =
    Eval.accuracy_stats ~runs:3 ~count:1000 ~rng:(Rng.create 12) ~golden
      ~candidate:golden ()
  in
  Alcotest.(check (float 0.0)) "self stats are exact" 1.0 exact.Eval.mean;
  Alcotest.(check (float 0.0)) "zero variance" 0.0 exact.Eval.std

let tests =
  [
    Alcotest.test_case "structural vs functional support" `Quick
      test_structural_vs_functional;
    Alcotest.test_case "sampled support is an under-approximation" `Quick
      test_sampled_support_subset_of_functional;
    Alcotest.test_case "output density" `Quick test_density;
    Alcotest.test_case "DIMACS roundtrip" `Quick test_dimacs_roundtrip;
    Alcotest.test_case "DIMACS solve" `Quick test_dimacs_solve;
    Alcotest.test_case "DIMACS error handling" `Quick test_dimacs_rejects_garbage;
    Alcotest.test_case "DIMACS comments & multiline" `Quick
      test_dimacs_comments_and_multiline;
    Alcotest.test_case "accuracy statistics" `Quick test_accuracy_stats;
  ]
