module Bv = Lr_bitvec.Bv
module Cube = Lr_cube.Cube
module Cover = Lr_cube.Cover

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let test_literals () =
  let c = Cube.of_literals 5 [ (0, true); (3, false) ] in
  check_int "two literals" 2 (Cube.num_literals c);
  check "has 0" true (Cube.has_var c 0);
  check "phase 0" true (Cube.phase c 0);
  check "phase 3" false (Cube.phase c 3);
  check "no var 1" false (Cube.has_var c 1);
  Alcotest.check_raises "contradiction rejected"
    (Invalid_argument "Cube.add: contradictory literal") (fun () ->
      ignore (Cube.add c 0 false))

let test_satisfies () =
  let c = Cube.of_literals 4 [ (1, true); (2, false) ] in
  let a = Bv.of_string "0010" in
  (* bits: v0=0 v1=1 v2=0 v3=0 *)
  check "satisfying" true (Cube.satisfies c a);
  Bv.set a 2 true;
  check "violating" false (Cube.satisfies c a)

let test_force () =
  let c = Cube.of_literals 4 [ (0, true); (3, false) ] in
  let a = Bv.of_string "1010" in
  Cube.force c a;
  check "forced into cube" true (Cube.satisfies c a);
  check "untouched bit kept" true (Bv.get a 1)

let test_top_is_tautology () =
  let c = Cube.top 3 in
  check_int "no literals" 0 (Cube.num_literals c);
  check "covers anything" true (Cube.satisfies c (Bv.of_string "101"))

let test_contains () =
  let big = Cube.of_literals 4 [ (0, true) ] in
  let small = Cube.of_literals 4 [ (0, true); (2, false) ] in
  check "bigger contains smaller" true (Cube.contains big small);
  check "smaller does not contain bigger" false (Cube.contains small big)

let test_intersect () =
  let a = Cube.of_literals 4 [ (0, true) ] in
  let b = Cube.of_literals 4 [ (1, false) ] in
  (match Cube.intersect a b with
  | Some c ->
      check "meet has both" true (Cube.has_var c 0 && Cube.has_var c 1)
  | None -> Alcotest.fail "compatible cubes must intersect");
  let b' = Cube.of_literals 4 [ (0, false) ] in
  check "conflict detected" true (Cube.intersect a b' = None)

let test_merge_adjacent () =
  let a = Cube.of_string "1-1" and b = Cube.of_string "1-0" in
  (match Cube.merge_adjacent a b with
  | Some m -> check_str "adjacency law" "1--" (Cube.to_string m)
  | None -> Alcotest.fail "adjacent cubes must merge");
  let c = Cube.of_string "0-0" in
  check "distance 2 does not merge" true (Cube.merge_adjacent a c = None);
  let d = Cube.of_string "11-" in
  check "different care sets do not merge" true (Cube.merge_adjacent a d = None)

let test_pla_roundtrip () =
  let s = "1-0-1" in
  check_str "roundtrip" s (Cube.to_string (Cube.of_string s))

let test_cover_eval () =
  (* f = v1 v0' + v1' v0  (xor) over 2 vars *)
  let f = Cover.of_cubes 2 [ Cube.of_string "10"; Cube.of_string "01" ] in
  check "xor 00" false (Cover.eval f (Bv.of_string "00"));
  check "xor 01" true (Cover.eval f (Bv.of_string "01"));
  check "xor 10" true (Cover.eval f (Bv.of_string "10"));
  check "xor 11" false (Cover.eval f (Bv.of_string "11"))

let test_scc () =
  let f =
    Cover.of_cubes 3
      [ Cube.of_string "1--"; Cube.of_string "1-0"; Cube.of_string "01-" ]
  in
  let g = Cover.single_cube_containment f in
  check_int "contained cube dropped" 2 (Cover.num_cubes g)

let test_complement () =
  let f = Cover.of_cubes 2 [ Cube.of_string "1-" ] in
  let g = Cover.complement_exhaustive f in
  check "00 in complement" true (Cover.eval g (Bv.of_string "00"));
  check "10 not in complement" false (Cover.eval g (Bv.of_string "10"))

(* random cover over a small universe *)
let gen_cover n =
  QCheck.Gen.(
    let gen_cube =
      list_repeat n (oneofl [ '0'; '1'; '-' ]) >|= fun cs ->
      Cube.of_string (String.init n (fun i -> List.nth cs i))
    in
    list_size (int_range 1 6) gen_cube >|= Cover.of_cubes n)

let arb_cover n = QCheck.make (gen_cover n)

let eval_all n f =
  List.init (1 lsl n) (fun m ->
      let a = Bv.of_int ~width:n m in
      Cover.eval f a)

let prop_merge_preserves =
  QCheck.Test.make ~name:"merge_pass preserves semantics" ~count:200
    (arb_cover 5) (fun f -> eval_all 5 (Cover.merge_pass f) = eval_all 5 f)

let prop_scc_preserves =
  QCheck.Test.make ~name:"single_cube_containment preserves semantics"
    ~count:200 (arb_cover 5) (fun f ->
      eval_all 5 (Cover.single_cube_containment f) = eval_all 5 f)

let prop_complement =
  QCheck.Test.make ~name:"complement flips every minterm" ~count:50
    (arb_cover 4) (fun f ->
      let g = Cover.complement_exhaustive f in
      List.for_all2 ( <> ) (eval_all 4 f) (eval_all 4 g))

let prop_intersect_semantics =
  QCheck.Test.make ~name:"cube intersection = conjunction" ~count:300
    QCheck.(
      pair
        (make (QCheck.Gen.map Cube.of_string
                 QCheck.Gen.(string_size ~gen:(oneofl [ '0'; '1'; '-' ]) (return 5))))
        (make (QCheck.Gen.map Cube.of_string
                 QCheck.Gen.(string_size ~gen:(oneofl [ '0'; '1'; '-' ]) (return 5)))))
    (fun (a, b) ->
      List.for_all
        (fun m ->
          let x = Bv.of_int ~width:5 m in
          let lhs =
            match Cube.intersect a b with
            | None -> false
            | Some c -> Cube.satisfies c x
          in
          lhs = (Cube.satisfies a x && Cube.satisfies b x))
        (List.init 32 Fun.id))

let tests =
  [
    Alcotest.test_case "literal construction" `Quick test_literals;
    Alcotest.test_case "satisfies" `Quick test_satisfies;
    Alcotest.test_case "force projects into cube" `Quick test_force;
    Alcotest.test_case "top cube is tautology" `Quick test_top_is_tautology;
    Alcotest.test_case "containment" `Quick test_contains;
    Alcotest.test_case "intersection" `Quick test_intersect;
    Alcotest.test_case "adjacency merging" `Quick test_merge_adjacent;
    Alcotest.test_case "PLA string roundtrip" `Quick test_pla_roundtrip;
    Alcotest.test_case "cover eval (xor)" `Quick test_cover_eval;
    Alcotest.test_case "single cube containment" `Quick test_scc;
    Alcotest.test_case "exhaustive complement" `Quick test_complement;
    QCheck_alcotest.to_alcotest prop_merge_preserves;
    QCheck_alcotest.to_alcotest prop_scc_preserves;
    QCheck_alcotest.to_alcotest prop_complement;
    QCheck_alcotest.to_alcotest prop_intersect_semantics;
  ]
