(* Second cover suite: the bucketed merge on larger covers, dedup, and
   pretty-printing / PLA behaviours. *)

module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module Cube = Lr_cube.Cube
module Cover = Lr_cube.Cover

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_dedup () =
  let c =
    Cover.of_cubes 3 [ Cube.of_string "1-0"; Cube.of_string "1-0"; Cube.of_string "01-" ]
  in
  check_int "duplicates dropped" 2 (Cover.num_cubes (Cover.dedup c))

let test_merge_minterm_cover_collapses () =
  (* all 2^4 minterms merge down to the single tautology cube *)
  let cubes =
    List.init 16 (fun m ->
        let c = ref (Cube.top 4) in
        for v = 0 to 3 do
          c := Cube.add !c v ((m lsr v) land 1 = 1)
        done;
        !c)
  in
  let merged = Cover.merge_pass (Cover.of_cubes 4 cubes) in
  check_int "collapsed to one cube" 1 (Cover.num_cubes merged);
  check_int "tautology" 0 (Cover.num_literals merged)

let test_merge_parity_does_not_collapse () =
  (* the 8 odd-parity minterms of 4 vars admit no adjacent merges *)
  let cubes =
    List.init 16 (fun m ->
        if
          (m land 1) lxor ((m lsr 1) land 1) lxor ((m lsr 2) land 1)
          lxor ((m lsr 3) land 1)
          = 1
        then
          Some
            (let c = ref (Cube.top 4) in
             for v = 0 to 3 do
               c := Cube.add !c v ((m lsr v) land 1 = 1)
             done;
             !c)
        else None)
    |> List.filter_map Fun.id
  in
  let merged = Cover.merge_pass (Cover.of_cubes 4 cubes) in
  check_int "parity is merge-immune" 8 (Cover.num_cubes merged)

(* sampled semantic equality on a universe too big to enumerate *)
let sampled_equal rng n f g =
  let ok = ref true in
  for _ = 1 to 2000 do
    let a = Bv.random rng n in
    if Cover.eval f a <> Cover.eval g a then ok := false
  done;
  !ok

let prop_merge_preserves_large =
  QCheck.Test.make ~name:"bucketed merge preserves semantics on 24 vars"
    ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 24 in
      let cube () =
        let c = ref (Cube.top n) in
        for v = 0 to n - 1 do
          match Rng.int rng 3 with
          | 0 -> c := Cube.add !c v false
          | 1 -> c := Cube.add !c v true
          | _ -> ()
        done;
        !c
      in
      let cover = Cover.of_cubes n (List.init 200 (fun _ -> cube ())) in
      let merged = Cover.merge_pass cover in
      Cover.num_cubes merged <= Cover.num_cubes cover
      && sampled_equal (Rng.split rng) n cover merged)

let test_pp_and_pla () =
  let c = Cover.of_cubes 3 [ Cube.of_string "1-0"; Cube.of_string "011" ] in
  let pla = Cover.to_pla c in
  check "pla has both rows" true
    (String.split_on_char '\n' pla |> List.length = 2);
  let back = Cover.of_pla pla in
  check_int "roundtrip cube count" 2 (Cover.num_cubes back);
  let s =
    Format.asprintf "%a" (Cover.pp ~names:(Printf.sprintf "x%d")) c
  in
  check "pretty form mentions x2" true
    (String.length s > 0
    &&
    let rec contains i =
      i + 2 <= String.length s && (String.sub s i 2 = "x2" || contains (i + 1))
    in
    contains 0)

let test_empty_cover_behaviour () =
  let e = Cover.empty 4 in
  check "eval false" false (Cover.eval e (Bv.create 4));
  check_int "merge of empty" 0 (Cover.num_cubes (Cover.merge_pass e));
  check_int "dedup of empty" 0 (Cover.num_cubes (Cover.dedup e))

let tests =
  [
    Alcotest.test_case "dedup" `Quick test_dedup;
    Alcotest.test_case "full minterm cover collapses" `Quick
      test_merge_minterm_cover_collapses;
    Alcotest.test_case "parity resists merging" `Quick
      test_merge_parity_does_not_collapse;
    Alcotest.test_case "PLA/pp behaviours" `Quick test_pp_and_pla;
    Alcotest.test_case "empty cover" `Quick test_empty_cover_behaviour;
    QCheck_alcotest.to_alcotest prop_merge_preserves_large;
  ]
