(* Second espresso suite: recursive complement, supercube, REDUCE. *)

module Bv = Lr_bitvec.Bv
module Cube = Lr_cube.Cube
module Cover = Lr_cube.Cover
module Esp = Lr_espresso.Espresso

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cover n strs = Cover.of_cubes n (List.map Cube.of_string strs)

let eval_all n f = List.init (1 lsl n) (fun m -> Cover.eval f (Bv.of_int ~width:n m))

let test_complement_simple () =
  let f = cover 2 [ "1-" ] in
  let g = Esp.complement f in
  check "00 in complement" true (Cover.eval g (Bv.of_string "00"));
  check "01 in complement" true (Cover.eval g (Bv.of_string "01"));
  check "10 out" false (Cover.eval g (Bv.of_string "10"))

let test_complement_empty_and_tautology () =
  let empty = Cover.empty 3 in
  check "complement of 0 is tautology" true
    (List.for_all Fun.id (eval_all 3 (Esp.complement empty)));
  let taut = cover 3 [ "---" ] in
  check_int "complement of 1 is empty" 0 (Cover.num_cubes (Esp.complement taut))

let test_supercube () =
  let f = cover 4 [ "1101"; "1001" ] in
  (match Esp.supercube f with
  | Some s -> Alcotest.(check string) "supercube" "1-01" (Cube.to_string s)
  | None -> Alcotest.fail "nonempty cover has a supercube");
  check "empty has none" true (Esp.supercube (Cover.empty 4) = None)

let test_reduce_opens_room () =
  (* overlapping cubes: reduce shrinks one to its essential part *)
  let onset = cover 3 [ "1--"; "-1-" ] in
  let r = Esp.reduce ~onset in
  (* semantics over the onset must be preserved *)
  List.iter2
    (fun m (want, got) ->
      ignore m;
      if want then check "onset point still covered" true got)
    (List.init 8 Fun.id)
    (List.combine (eval_all 3 onset) (eval_all 3 r));
  (* and at least one cube actually shrank *)
  check "literals increased (cubes shrank)" true
    (Cover.num_literals r >= Cover.num_literals onset)

let test_minimize_with_reduce () =
  let onset = cover 3 [ "011"; "101"; "110"; "111" ] in
  let offset = cover 3 [ "000"; "001"; "010"; "100" ] in
  let m = Esp.minimize ~use_reduce:true ~onset ~offset () in
  check "consistent" true (Esp.consistent ~cover:m ~onset ~offset);
  check "no worse than without reduce" true
    (Cover.num_cubes m <= Cover.num_cubes (Esp.minimize ~onset ~offset ()))

let gen_cover n =
  QCheck.Gen.(
    let gen_cube =
      list_repeat n (oneofl [ '0'; '1'; '-' ]) >|= fun cs ->
      Cube.of_string (String.init n (List.nth cs))
    in
    list_size (int_range 0 6) gen_cube >|= Cover.of_cubes n)

let prop_complement_correct =
  QCheck.Test.make ~name:"recursive complement flips every minterm" ~count:200
    (QCheck.make (gen_cover 5))
    (fun f ->
      let g = Esp.complement f in
      List.for_all2 ( <> ) (eval_all 5 f) (eval_all 5 g))

let prop_complement_matches_exhaustive =
  QCheck.Test.make ~name:"recursive = exhaustive complement semantics"
    ~count:100
    (QCheck.make (gen_cover 4))
    (fun f ->
      eval_all 4 (Esp.complement f)
      = eval_all 4 (Cover.complement_exhaustive f))

let prop_reduce_preserves_onset =
  QCheck.Test.make ~name:"reduce keeps covering the onset" ~count:100
    (QCheck.make (gen_cover 4))
    (fun onset ->
      let r = Esp.reduce ~onset in
      List.for_all2
        (fun want got -> (not want) || got)
        (eval_all 4 onset) (eval_all 4 r))

let prop_supercube_contains_all =
  QCheck.Test.make ~name:"supercube contains every cube" ~count:200
    (QCheck.make (gen_cover 5))
    (fun f ->
      match Esp.supercube f with
      | None -> Cover.num_cubes f = 0
      | Some s -> List.for_all (Cube.contains s) (Cover.cubes f))

let tests =
  [
    Alcotest.test_case "complement basics" `Quick test_complement_simple;
    Alcotest.test_case "complement edge cases" `Quick
      test_complement_empty_and_tautology;
    Alcotest.test_case "supercube" `Quick test_supercube;
    Alcotest.test_case "reduce shrinks overlap" `Quick test_reduce_opens_room;
    Alcotest.test_case "minimize with reduce" `Quick test_minimize_with_reduce;
    QCheck_alcotest.to_alcotest prop_complement_correct;
    QCheck_alcotest.to_alcotest prop_complement_matches_exhaustive;
    QCheck_alcotest.to_alcotest prop_reduce_preserves_onset;
    QCheck_alcotest.to_alcotest prop_supercube_contains_all;
  ]
