(* Second template suite: every predicate through the generator API, and
   negative cases that must NOT match. *)

module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Box = Lr_blackbox.Blackbox
module Cases = Lr_cases.Cases
module T = Lr_templates.Templates

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let scan_circuit c = T.scan ~rng:(Rng.create 123) (Box.of_netlist c)

let test_all_six_ops_vector_vector () =
  List.iter
    (fun (op, _name) ->
      let c =
        Cases.random_diag ~seed:17
          ~vectors:[ ("a", 10); ("b", 10) ]
          ~num_scalars:4
          ~outputs:[ Cases.Cmp (op, "a", `V "b") ]
      in
      let m = scan_circuit c in
      match m.T.comparators with
      | [ cmp ] ->
          check
            (Printf.sprintf "op %s recovered" (T.op_to_string cmp.T.cmp_op))
            true
            (cmp.T.cmp_op = op
            || (* a<b and b>a are the same predicate with sides swapped *)
            (cmp.T.cmp_op = T.negate_op op && false))
      | l -> Alcotest.failf "expected one comparator, got %d" (List.length l))
    [ (`Eq, "eq"); (`Ne, "ne"); (`Lt, "lt"); (`Le, "le"); (`Gt, "gt"); (`Ge, "ge") ]

let test_le_not_confused_with_lt () =
  (* the forced x = y probes are what tell Le from Lt *)
  let c =
    Cases.random_diag ~seed:18
      ~vectors:[ ("a", 8); ("b", 8) ]
      ~num_scalars:2
      ~outputs:[ Cases.Cmp (`Le, "a", `V "b"); Cases.Cmp (`Lt, "a", `V "b") ]
  in
  let m = scan_circuit c in
  let find po = List.find_opt (fun cm -> cm.T.po = po) m.T.comparators in
  (match find 0 with
  | Some { T.cmp_op = `Le; _ } -> ()
  | Some { T.cmp_op = op; _ } ->
      Alcotest.failf "po0 matched %s, wanted <=" (T.op_to_string op)
  | None -> Alcotest.fail "po0 unmatched");
  match find 1 with
  | Some { T.cmp_op = `Lt; _ } -> ()
  | Some { T.cmp_op = op; _ } ->
      Alcotest.failf "po1 matched %s, wanted <" (T.op_to_string op)
  | None -> Alcotest.fail "po1 unmatched"

let test_eq_const_by_sweep () =
  let c =
    Cases.random_diag ~seed:19
      ~vectors:[ ("v", 10) ]
      ~num_scalars:3
      ~outputs:[ Cases.Cmp (`Eq, "v", `C 777); Cases.Cmp (`Ne, "v", `C 99) ]
  in
  let m = scan_circuit c in
  let find po = List.find_opt (fun cm -> cm.T.po = po) m.T.comparators in
  (match find 0 with
  | Some { T.cmp_op = `Eq; rhs = T.Const 777; _ } -> ()
  | _ -> Alcotest.fail "v == 777 not recovered");
  match find 1 with
  | Some { T.cmp_op = `Ne; rhs = T.Const 99; _ } -> ()
  | _ -> Alcotest.fail "v != 99 not recovered"

let test_near_comparator_rejected () =
  (* z = (a < b) XOR a[0]: not a pure predicate; must not match *)
  let input_names = Cases.random_diag ~seed:20
      ~vectors:[ ("a", 6); ("b", 6) ] ~num_scalars:2
      ~outputs:[ Cases.Cmp (`Lt, "a", `V "b") ] |> N.input_names in
  let c = N.create ~input_names ~output_names:[| "z" |] in
  let a = Array.init 6 (fun i -> N.input c i) in
  let b = Array.init 6 (fun i -> N.input c (6 + i)) in
  N.set_output c 0
    (N.xor_ c (Lr_netlist.Builder.compare_op c `Lt a b) a.(0));
  let m = scan_circuit c in
  check_int "no comparator claimed" 0 (List.length m.T.comparators);
  check_int "no linear claimed" 0 (List.length m.T.linears)

let test_linear_negative_coefficient () =
  (* subtraction: z = a - b mod 2^w has a_b = 2^w - 1; must verify *)
  let c =
    Cases.random_data
      ~vectors:[ ("a", 8); ("b", 8) ]
      ~num_scalars:2 ~width:8
      ~terms:[ (1, "a"); (255, "b") ]
      ~offset:0
  in
  let m = scan_circuit c in
  match m.T.linears with
  | [ l ] ->
      let coeff base =
        List.find_map
          (fun (x, v) -> if v.Lr_grouping.Grouping.base = base then Some x else None)
          l.T.terms
      in
      check "a coefficient" true (coeff "a" = Some 1);
      check "b coefficient = -1 mod 256" true (coeff "b" = Some 255)
  | _ -> Alcotest.fail "subtraction must match the linear template"

let test_multi_vector_linear () =
  let c =
    Cases.random_data
      ~vectors:[ ("p", 6); ("q", 6); ("r", 6); ("s", 6) ]
      ~num_scalars:0 ~width:10
      ~terms:[ (2, "p"); (3, "q"); (4, "r"); (5, "s") ]
      ~offset:17
  in
  let m = scan_circuit c in
  match m.T.linears with
  | [ l ] ->
      check_int "four terms" 4 (List.length l.T.terms);
      check_int "offset 17" 17 l.T.offset
  | _ -> Alcotest.fail "4-term linear not recovered"

let tests =
  [
    Alcotest.test_case "all six vector-vector predicates" `Quick
      test_all_six_ops_vector_vector;
    Alcotest.test_case "Le vs Lt disambiguation" `Quick
      test_le_not_confused_with_lt;
    Alcotest.test_case "Eq/Ne against constants (sweep)" `Quick
      test_eq_const_by_sweep;
    Alcotest.test_case "near-comparator rejected" `Quick
      test_near_comparator_rejected;
    Alcotest.test_case "negative (modular) coefficients" `Quick
      test_linear_negative_coefficient;
    Alcotest.test_case "four-term linear" `Quick test_multi_vector_linear;
  ]
