module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Equiv = Lr_aig.Equiv

let check = Alcotest.(check bool)

let names prefix n = Array.init n (fun i -> Printf.sprintf "%s%d" prefix i)

let test_equivalent_structures () =
  (* a & b built two different ways *)
  let c1 = N.create ~input_names:(names "x" 2) ~output_names:(names "z" 1) in
  N.set_output c1 0 (N.and_ c1 (N.input c1 0) (N.input c1 1));
  let c2 = N.create ~input_names:(names "x" 2) ~output_names:(names "z" 1) in
  N.set_output c2 0
    (N.not_ c2 (N.nand_ c2 (N.input c2 1) (N.input c2 0)));
  check "and == ~nand" true (Equiv.check c1 c2 = Equiv.Equivalent)

let test_demorgan_equivalence () =
  let c1 = N.create ~input_names:(names "x" 3) ~output_names:(names "z" 1) in
  N.set_output c1 0
    (N.not_ c1 (N.or_ c1 (N.input c1 0) (N.or_ c1 (N.input c1 1) (N.input c1 2))));
  let c2 = N.create ~input_names:(names "x" 3) ~output_names:(names "z" 1) in
  N.set_output c2 0
    (N.and_ c2
       (N.not_ c2 (N.input c2 0))
       (N.and_ c2 (N.not_ c2 (N.input c2 1)) (N.not_ c2 (N.input c2 2))));
  check "De Morgan" true (Equiv.check c1 c2 = Equiv.Equivalent)

let test_counterexample_is_real () =
  let c1 = N.create ~input_names:(names "x" 4) ~output_names:(names "z" 1) in
  N.set_output c1 0 (N.and_ c1 (N.input c1 0) (N.input c1 1));
  let c2 = N.create ~input_names:(names "x" 4) ~output_names:(names "z" 1) in
  N.set_output c2 0 (N.or_ c2 (N.input c2 0) (N.input c2 1));
  match Equiv.check c1 c2 with
  | Equiv.Equivalent -> Alcotest.fail "and != or"
  | Equiv.Counterexample cex ->
      check "cex distinguishes" true
        (not (Bv.equal (N.eval c1 cex) (N.eval c2 cex)))

let test_subtle_inequivalence () =
  (* differ on exactly one minterm of 8 variables: random simulation will
     almost surely miss it; SAT must find it *)
  let mk extra =
    let c = N.create ~input_names:(names "x" 8) ~output_names:(names "z" 1) in
    let all =
      List.init 8 (fun i -> N.input c i)
      |> List.fold_left (fun acc n -> N.and_ c acc n) (N.const_true c)
    in
    let base = N.xor_ c (N.input c 0) (N.input c 3) in
    N.set_output c 0 (if extra then N.or_ c base all else base);
    c
  in
  match Equiv.check (mk false) (mk true) with
  | Equiv.Equivalent -> Alcotest.fail "circuits differ on the all-ones input"
  | Equiv.Counterexample cex ->
      check "cex is the all-ones assignment" true (Bv.popcount cex = 8)

let test_multi_output () =
  let mk f =
    let c = N.create ~input_names:(names "x" 3) ~output_names:(names "z" 2) in
    N.set_output c 0 (N.xor_ c (N.input c 0) (N.input c 1));
    N.set_output c 1 (f c);
    c
  in
  let c1 = mk (fun c -> N.or_ c (N.input c 1) (N.input c 2)) in
  let c2 = mk (fun c -> N.or_ c (N.input c 2) (N.input c 1)) in
  check "multi-output equivalence" true (Equiv.check c1 c2 = Equiv.Equivalent)

let prop_optimization_preserves_equivalence =
  QCheck.Test.make ~name:"AIG compress output is formally equivalent" ~count:25
    QCheck.(int_range 0 5000)
    (fun seed ->
      let rng = Rng.create seed in
      (* reuse the random netlist recipe from the AIG tests *)
      let c = N.create ~input_names:(names "x" 6) ~output_names:(names "z" 2) in
      let pool = ref (List.init 6 (fun i -> N.input c i)) in
      let pick () = List.nth !pool (Rng.int rng (List.length !pool)) in
      for _ = 1 to 25 do
        let a = pick () and b = pick () in
        let g =
          match Rng.int rng 4 with
          | 0 -> N.and_ c a b
          | 1 -> N.or_ c a b
          | 2 -> N.xor_ c a b
          | _ -> N.nand_ c a b
        in
        pool := g :: !pool
      done;
      N.set_output c 0 (pick ());
      N.set_output c 1 (pick ());
      let optimized =
        Lr_aig.Aig.to_netlist
          (Lr_aig.Opt.compress ~rng:(Rng.split rng) (Lr_aig.Aig.of_netlist c))
      in
      Equiv.check c optimized = Equiv.Equivalent)

let test_learned_template_circuit_proven () =
  (* formal closure of the loop: the circuit learned for a pure template
     case is EQUAL to the golden circuit, not just sampled-equal *)
  let spec = Lr_cases.Cases.find "case_16" in
  let golden = Lr_cases.Cases.build spec in
  let config =
    { Logic_regression.Config.default with
      Logic_regression.Config.support_rounds = 128 }
  in
  let report =
    Logic_regression.Learner.learn ~config (Lr_cases.Cases.blackbox spec)
  in
  check "learned case_16 formally equivalent" true
    (Equiv.check golden report.Logic_regression.Learner.circuit
    = Equiv.Equivalent)

let tests =
  [
    Alcotest.test_case "structural variants" `Quick test_equivalent_structures;
    Alcotest.test_case "De Morgan" `Quick test_demorgan_equivalence;
    Alcotest.test_case "counterexample validity" `Quick test_counterexample_is_real;
    Alcotest.test_case "one-minterm difference found by SAT" `Quick
      test_subtle_inequivalence;
    Alcotest.test_case "multi-output" `Quick test_multi_output;
    Alcotest.test_case "learned template circuit formally proven" `Quick
      test_learned_template_circuit_proven;
    QCheck_alcotest.to_alcotest prop_optimization_preserves_equivalence;
  ]
