module Rng = Lr_bitvec.Rng
module Box = Lr_blackbox.Blackbox
module Cases = Lr_cases.Cases
module T = Lr_templates.Templates
module G = Lr_grouping.Grouping

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let scan_case ?(seed = 2024) name =
  let box = Cases.blackbox (Cases.find name) in
  T.scan ~rng:(Rng.create seed) box

let find_cmp m po = List.find_opt (fun c -> c.T.po = po) m.T.comparators

let test_case16_all_four () =
  let m = scan_case "case_16" in
  (* po0: u == v *)
  (match find_cmp m 0 with
  | Some { T.cmp_op = `Eq; rhs = T.Vec v; lhs; _ } ->
      check "eq over u,v" true
        ((lhs.G.base = "u" && v.G.base = "v")
        || (lhs.G.base = "v" && v.G.base = "u"))
  | _ -> Alcotest.fail "po0 must match u == v");
  (* po1: u < 37 *)
  (match find_cmp m 1 with
  | Some { T.cmp_op = `Lt; rhs = T.Const 37; lhs; _ } ->
      check "lhs is u" true (lhs.G.base = "u")
  | Some { T.cmp_op = op; rhs; _ } ->
      Alcotest.failf "po1 matched %s %s" (T.op_to_string op)
        (match rhs with T.Const k -> string_of_int k | T.Vec v -> v.G.base)
  | None -> Alcotest.fail "po1 must match u < 37");
  (* po2: u <> v *)
  (match find_cmp m 2 with
  | Some { T.cmp_op = `Ne; _ } -> ()
  | _ -> Alcotest.fail "po2 must match u <> v");
  (* po3: v >= 100 *)
  match find_cmp m 3 with
  | Some { T.cmp_op = `Ge; rhs = T.Const 100; _ } -> ()
  | _ -> Alcotest.fail "po3 must match v >= 100"

let test_case3_wide_vector_pair () =
  let m = scan_case "case_3" in
  match find_cmp m 0 with
  | Some { T.cmp_op = `Ge; rhs = T.Vec _; prop_cube = None; _ } -> ()
  | _ -> Alcotest.fail "case_3 must match busa >= busb directly"

let test_case6_binary_search_constant () =
  let m = scan_case "case_6" in
  match find_cmp m 0 with
  | Some { T.cmp_op = `Lt; rhs = T.Const k; _ } ->
      check_int "recovered 48-bit constant" 0x5A5A_5A5A_5A5A k
  | _ -> Alcotest.fail "case_6 must match addr < const"

let test_case2_linear () =
  let m = scan_case "case_2" in
  check_int "one linear match" 1 (List.length m.T.linears);
  match m.T.linears with
  | [ l ] ->
      check_int "offset" 11 l.T.offset;
      let coeff base =
        List.find_map
          (fun (a, v) -> if v.G.base = base then Some a else None)
          l.T.terms
      in
      check "3a" true (coeff "a" = Some 3);
      check "5b" true (coeff "b" = Some 5);
      check "1c" true (coeff "c" = Some 1)
  | _ -> assert false

let test_case12_linear () =
  let m = scan_case "case_12" in
  match m.T.linears with
  | [ l ] ->
      check_int "offset" 3 l.T.offset;
      check_int "two terms" 2 (List.length l.T.terms)
  | _ -> Alcotest.fail "case_12 must match one linear template"

let test_case15_propagated () =
  let m = scan_case "case_15" in
  (* po1 = pa > pb is direct *)
  (match find_cmp m 1 with
  | Some { T.cmp_op = `Gt; prop_cube = None; _ } -> ()
  | _ -> Alcotest.fail "po1 must match pa > pb directly");
  (* po0 = (pa == pb) & s : needs a propagation cube *)
  match find_cmp m 0 with
  | Some { T.cmp_op = `Eq; prop_cube = Some _; _ } -> ()
  | Some _ -> Alcotest.fail "po0 matched without propagation cube"
  | None -> Alcotest.fail "po0's hidden comparator not found"

let test_eco_case_matches_nothing () =
  let m = scan_case "case_7" in
  check_int "no comparators" 0 (List.length m.T.comparators);
  check_int "no linears" 0 (List.length m.T.linears)

let test_matched_outputs () =
  let m = scan_case "case_16" in
  check_int "all four POs matched" 4 (List.length (T.matched_outputs m));
  let m15 = scan_case "case_15" in
  (* the propagated match does not determine its PO *)
  check "po0 not in matched outputs" true
    (not (List.mem 0 (T.matched_outputs m15)))

let test_op_helpers () =
  check "negate lt" true (T.negate_op `Lt = `Ge);
  check "negate eq" true (T.negate_op `Eq = `Ne);
  check "eval le" true (T.eval_op `Le 3 3);
  check "eval gt" false (T.eval_op `Gt 3 3)

let tests =
  [
    Alcotest.test_case "case_16: four comparator kinds" `Quick test_case16_all_four;
    Alcotest.test_case "case_3: 32-bit vector pair" `Quick test_case3_wide_vector_pair;
    Alcotest.test_case "case_6: constant by binary search" `Quick
      test_case6_binary_search_constant;
    Alcotest.test_case "case_2: linear arithmetic" `Quick test_case2_linear;
    Alcotest.test_case "case_12: linear arithmetic" `Quick test_case12_linear;
    Alcotest.test_case "case_15: hidden comparator via cube" `Quick
      test_case15_propagated;
    Alcotest.test_case "ECO case matches nothing" `Quick
      test_eco_case_matches_nothing;
    Alcotest.test_case "matched_outputs" `Quick test_matched_outputs;
    Alcotest.test_case "op helpers" `Quick test_op_helpers;
  ]
