module Bv = Lr_bitvec.Bv
module N = Lr_netlist.Netlist
module Box = Lr_blackbox.Blackbox

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let toy_circuit () =
  let c =
    N.create ~input_names:[| "a"; "b" |] ~output_names:[| "z" |]
  in
  N.set_output c 0 (N.and_ c (N.input c 0) (N.input c 1));
  c

let test_query () =
  let box = Box.of_netlist (toy_circuit ()) in
  check "and(1,1)" true (Bv.get (Box.query box (Bv.of_string "11")) 0);
  check "and(0,1)" false (Bv.get (Box.query box (Bv.of_string "10")) 0);
  check_int "two queries counted" 2 (Box.queries_used box)

let test_query_many_counts () =
  let box = Box.of_netlist (toy_circuit ()) in
  let patterns = Array.init 100 (fun i -> Bv.of_int ~width:2 (i mod 4)) in
  let outs = Box.query_many box patterns in
  check_int "batch counted" 100 (Box.queries_used box);
  Array.iteri
    (fun i p -> check "batch matches single" true
        (Bv.equal outs.(i) (N.eval (toy_circuit ()) p)))
    patterns

let test_budget () =
  let box = Box.of_netlist ~budget:10 (toy_circuit ()) in
  check "fresh box not exhausted" false (Box.exhausted box);
  for _ = 1 to 10 do
    ignore (Box.query box (Bv.of_string "11"))
  done;
  check "budget spent" true (Box.exhausted box);
  (* queries keep working; exhaustion is advisory *)
  check "query still answers" true (Bv.get (Box.query box (Bv.of_string "11")) 0);
  Box.reset_accounting box;
  check "reset clears exhaustion" false (Box.exhausted box)

let test_function_box () =
  let box =
    Box.of_function ~input_names:[| "x0"; "x1"; "x2" |] ~output_names:[| "parity" |]
      (fun a ->
        let out = Bv.create 1 in
        Bv.set out 0 (Bv.popcount a land 1 = 1);
        out)
  in
  check "parity of 101" false (Bv.get (Box.query box (Bv.of_string "101")) 0);
  check "parity of 100" true (Bv.get (Box.query box (Bv.of_string "001")) 0);
  check "no golden circuit" true (Box.golden box = None)

let test_width_check () =
  let box = Box.of_netlist (toy_circuit ()) in
  Alcotest.check_raises "wrong width rejected"
    (Invalid_argument "Blackbox.query: assignment width mismatch") (fun () ->
      ignore (Box.query box (Bv.of_string "111")))

let tests =
  [
    Alcotest.test_case "query & accounting" `Quick test_query;
    Alcotest.test_case "batched queries" `Quick test_query_many_counts;
    Alcotest.test_case "budget exhaustion" `Quick test_budget;
    Alcotest.test_case "function-backed box" `Quick test_function_box;
    Alcotest.test_case "width checking" `Quick test_width_check;
  ]
