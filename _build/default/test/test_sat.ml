module Sat = Lr_sat.Sat

let check = Alcotest.(check bool)

let is_sat r = r = Sat.Sat

let test_trivial () =
  let s = Sat.create () in
  let a = Sat.new_var s in
  Sat.add_clause s [ a ];
  check "unit clause sat" true (is_sat (Sat.solve s));
  check "model respects unit" true (Sat.value s a)

let test_contradiction () =
  let s = Sat.create () in
  let a = Sat.new_var s in
  Sat.add_clause s [ a ];
  Sat.add_clause s [ -a ];
  check "x and ~x unsat" false (is_sat (Sat.solve s))

let test_implication_chain () =
  let s = Sat.create () in
  let v = Array.init 20 (fun _ -> Sat.new_var s) in
  for i = 0 to 18 do
    Sat.add_clause s [ -v.(i); v.(i + 1) ]
  done;
  Sat.add_clause s [ v.(0) ];
  check "chain sat" true (is_sat (Sat.solve s));
  check "last implied" true (Sat.value s v.(19));
  Sat.add_clause s [ -v.(19) ];
  check "contradicting chain head unsat" false (is_sat (Sat.solve s))

let test_pigeonhole () =
  (* 4 pigeons, 3 holes: classic small unsat instance *)
  let s = Sat.create () in
  let p = Array.init 4 (fun _ -> Array.init 3 (fun _ -> Sat.new_var s)) in
  for i = 0 to 3 do
    Sat.add_clause s [ p.(i).(0); p.(i).(1); p.(i).(2) ]
  done;
  for h = 0 to 2 do
    for i = 0 to 3 do
      for j = i + 1 to 3 do
        Sat.add_clause s [ -p.(i).(h); -p.(j).(h) ]
      done
    done
  done;
  check "php(4,3) unsat" false (is_sat (Sat.solve s))

let test_assumptions () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ -a; b ];
  check "assume a" true (is_sat (Sat.solve ~assumptions:[ a ] s));
  check "b forced" true (Sat.value s b);
  check "assume a & ~b" false (is_sat (Sat.solve ~assumptions:[ a; -b ] s));
  (* assumptions do not persist *)
  check "solvable again" true (is_sat (Sat.solve ~assumptions:[ -a ] s))

let test_incremental () =
  let s = Sat.create () in
  let xs = Array.init 6 (fun _ -> Sat.new_var s) in
  Sat.add_clause s [ xs.(0); xs.(1) ];
  check "first solve" true (is_sat (Sat.solve s));
  Sat.add_clause s [ -xs.(0) ];
  Sat.add_clause s [ -xs.(1) ];
  check "now unsat" false (is_sat (Sat.solve s));
  check "stays unsat" false (is_sat (Sat.solve s))

(* Reference: brute-force evaluation of a CNF over n variables. *)
let brute_force n clauses =
  let rec try_assignment m =
    if m = 1 lsl n then false
    else
      let sat_clause clause =
        List.exists
          (fun lit ->
            let v = abs lit - 1 in
            let value = (m lsr v) land 1 = 1 in
            if lit > 0 then value else not value)
          clause
      in
      if List.for_all sat_clause clauses then true else try_assignment (m + 1)
  in
  try_assignment 0

let gen_cnf =
  QCheck.Gen.(
    int_range 3 9 >>= fun n ->
    int_range 1 30 >>= fun nclauses ->
    let gen_lit = int_range 1 n >>= fun v -> oneofl [ v; -v ] in
    list_repeat nclauses (list_size (int_range 1 3) gen_lit) >|= fun cs ->
    (n, cs))

let prop_matches_brute_force =
  QCheck.Test.make ~name:"CDCL agrees with brute force on random 3-CNF"
    ~count:300
    (QCheck.make gen_cnf)
    (fun (n, clauses) ->
      let s = Sat.create () in
      for _ = 1 to n do
        ignore (Sat.new_var s)
      done;
      List.iter (Sat.add_clause s) clauses;
      let got = is_sat (Sat.solve s) in
      let want = brute_force n clauses in
      if got <> want then false
      else if got then
        (* verify the model actually satisfies every clause *)
        List.for_all
          (fun clause ->
            List.exists
              (fun lit ->
                let value = Sat.value s (abs lit) in
                if lit > 0 then value else not value)
              clause)
          clauses
      else true)

let prop_model_sound_under_assumptions =
  QCheck.Test.make ~name:"assumptions honoured in model" ~count:200
    (QCheck.make gen_cnf)
    (fun (n, clauses) ->
      let s = Sat.create () in
      for _ = 1 to n do
        ignore (Sat.new_var s)
      done;
      List.iter (Sat.add_clause s) clauses;
      let assumption = [ 1 ] in
      match Sat.solve ~assumptions:assumption s with
      | Sat.Unsat -> true
      | Sat.Sat -> Sat.value s 1)

let tests =
  [
    Alcotest.test_case "unit clause" `Quick test_trivial;
    Alcotest.test_case "contradiction" `Quick test_contradiction;
    Alcotest.test_case "implication chain" `Quick test_implication_chain;
    Alcotest.test_case "pigeonhole 4->3" `Quick test_pigeonhole;
    Alcotest.test_case "assumptions" `Quick test_assumptions;
    Alcotest.test_case "incremental solving" `Quick test_incremental;
    QCheck_alcotest.to_alcotest prop_matches_brute_force;
    QCheck_alcotest.to_alcotest prop_model_sound_under_assumptions;
  ]
