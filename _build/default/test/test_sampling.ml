module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Box = Lr_blackbox.Blackbox
module Cube = Lr_cube.Cube
module Ps = Lr_sampling.Pattern_sampling

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* z0 = x0 & x1 ; z1 = x3  — x2 is irrelevant everywhere *)
let circuit () =
  let c =
    N.create
      ~input_names:[| "x0"; "x1"; "x2"; "x3" |]
      ~output_names:[| "z0"; "z1" |]
  in
  N.set_output c 0 (N.and_ c (N.input c 0) (N.input c 1));
  N.set_output c 1 (N.input c 3);
  c

let run ?(rounds = 64) ?(constraint_ = Cube.top 4) () =
  let box = Box.of_netlist (circuit ()) in
  Ps.run ~rounds ~rng:(Rng.create 42) box ~constraint_ ()

let test_support () =
  let stats = run () in
  Alcotest.(check (list int)) "support of z0" [ 0; 1 ] (Ps.support stats ~output:0);
  Alcotest.(check (list int)) "support of z1" [ 3 ] (Ps.support stats ~output:1)

let test_most_significant () =
  let stats = run () in
  (* z1 = x3: toggling x3 always flips it, so x3 dominates *)
  check "msi of z1" true (Ps.most_significant stats ~output:1 = Some 3);
  (* z0's dependency on x0 and x1 is symmetric; either is acceptable *)
  (match Ps.most_significant stats ~output:0 with
  | Some (0 | 1) -> ()
  | Some i -> Alcotest.failf "unexpected msi %d" i
  | None -> Alcotest.fail "msi must exist")

let test_truth_ratio () =
  let stats = run ~rounds:256 () in
  (* z1 = x3 with mixed-bias sampling: ratio strictly between 0 and 1 *)
  let r = Ps.truth_ratio stats ~output:1 in
  check "ratio in (0,1)" true (r > 0.05 && r < 0.95);
  (* z0 = and: ratio well below 1/2 *)
  check "and is mostly 0" true (Ps.truth_ratio stats ~output:0 < 0.5)

let test_constrained_sampling () =
  (* constrain x0 = 0: z0 becomes constant 0 and x1 leaves its support *)
  let constraint_ = Cube.of_literals 4 [ (0, false) ] in
  let stats = run ~constraint_ () in
  check "z0 constant under x0=0" true (Ps.is_constant stats ~output:0 = Some false);
  check_int "x0 not sampled" 0 stats.Ps.dependency.(0).(0);
  check_int "x1 dependency vanished" 0 stats.Ps.dependency.(0).(1)

let test_constant_detection () =
  let stats = run () in
  check "z0 is not constant unconstrained" true
    (Ps.is_constant stats ~output:0 = None)

let test_dependency_count_exact () =
  (* z1 = x3: every round that toggles x3 flips z1, so D = rounds *)
  let stats = run ~rounds:100 () in
  check_int "D_{x3} = rounds" 100 stats.Ps.dependency.(1).(3);
  check_int "D_{x2} = 0" 0 stats.Ps.dependency.(1).(2)

let test_query_cost () =
  let box = Box.of_netlist (circuit ()) in
  let rounds = 64 in
  ignore (Ps.run ~rounds ~rng:(Rng.create 1) box ~constraint_:(Cube.top 4) ());
  (* 4 free inputs: cost = rounds * (free + 1) *)
  check_int "query cost" (rounds * 5) (Box.queries_used box)

let prop_biased_sampling_finds_sensitive_inputs =
  (* An AND of k inputs: uniform sampling alone rarely exposes dependency for
     large k; the bias mix must still find the support. *)
  QCheck.Test.make ~name:"support of wide AND found via biased sampling"
    ~count:10
    QCheck.(int_range 6 10)
    (fun k ->
      let c =
        N.create
          ~input_names:(Array.init k (Printf.sprintf "x%d"))
          ~output_names:[| "z" |]
      in
      let rec conj i acc =
        if i = k then acc else conj (i + 1) (N.and_ c acc (N.input c i))
      in
      N.set_output c 0 (conj 1 (N.input c 0));
      let box = Box.of_netlist c in
      let stats =
        Ps.run ~rounds:512 ~rng:(Rng.create (k * 7)) box
          ~constraint_:(Cube.top k) ()
      in
      List.length (Ps.support stats ~output:0) = k)

let tests =
  [
    Alcotest.test_case "support identification" `Quick test_support;
    Alcotest.test_case "most significant input" `Quick test_most_significant;
    Alcotest.test_case "truth ratio" `Quick test_truth_ratio;
    Alcotest.test_case "constrained sampling" `Quick test_constrained_sampling;
    Alcotest.test_case "constant detection" `Quick test_constant_detection;
    Alcotest.test_case "exact dependency counts" `Quick test_dependency_count_exact;
    Alcotest.test_case "query accounting" `Quick test_query_cost;
    QCheck_alcotest.to_alcotest prop_biased_sampling_finds_sensitive_inputs;
  ]
