(* Tests for the public parametric benchmark generators. *)

module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Cases = Lr_cases.Cases
module G = Lr_grouping.Grouping

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_random_eco_shape () =
  let c =
    Cases.random_eco ~seed:9 ~num_inputs:30 ~num_outputs:4 ~support:6
      ~gates:10 ~xor_prob:0.2
  in
  check_int "inputs" 30 (N.num_inputs c);
  check_int "outputs" 4 (N.num_outputs c);
  check "has logic" true (N.size c > 0);
  (* deterministic *)
  let c' =
    Cases.random_eco ~seed:9 ~num_inputs:30 ~num_outputs:4 ~support:6
      ~gates:10 ~xor_prob:0.2
  in
  let rng = Rng.create 4 in
  for _ = 1 to 20 do
    let a = Bv.random rng 30 in
    check "deterministic" true (Bv.equal (N.eval c a) (N.eval c' a))
  done

let test_random_neq_parities () =
  let c =
    Cases.random_neq ~seed:5 ~num_inputs:40 ~num_outputs:3 ~support:8
      ~gates:6 ~rare_width:3 ~parities:1 ~parity_width:12
  in
  (* output 0 is a raw parity: flipping any of its support bits flips it *)
  let rng = Rng.create 6 in
  let a = Bv.random rng 40 in
  let flips = ref 0 in
  for i = 0 to 39 do
    let a' = Bv.copy a in
    Bv.flip a' i;
    if Bv.get (N.eval c a') 0 <> Bv.get (N.eval c a) 0 then incr flips
  done;
  check_int "parity support width" 12 !flips

let test_random_diag_semantics () =
  let c =
    Cases.random_diag ~seed:3
      ~vectors:[ ("p", 6); ("q", 6) ]
      ~num_scalars:4
      ~outputs:[ Cases.Cmp (`Lt, "p", `V "q"); Cases.Cmp (`Eq, "p", `C 11) ]
  in
  let gi = G.group (N.input_names c) in
  let vec base = List.find (fun v -> v.G.base = base) gi.G.vectors in
  let probe pv qv =
    let a = Bv.create (N.num_inputs c) in
    G.set_vector (vec "p") (Bv.set a) pv;
    G.set_vector (vec "q") (Bv.set a) qv;
    N.eval c a
  in
  check "3 < 7" true (Bv.get (probe 3 7) 0);
  check "7 < 3 is false" false (Bv.get (probe 7 3) 0);
  check "p = 11" true (Bv.get (probe 11 0) 1);
  check "p = 12 is not 11" false (Bv.get (probe 12 0) 1)

let test_random_data_semantics () =
  let c =
    Cases.random_data
      ~vectors:[ ("a", 8); ("b", 8) ]
      ~num_scalars:2 ~width:10
      ~terms:[ (2, "a"); (3, "b") ]
      ~offset:5
  in
  let gi = G.group (N.input_names c) in
  let go = G.group (N.output_names c) in
  let vec l base = List.find (fun v -> v.G.base = base) l in
  let a = Bv.create (N.num_inputs c) in
  G.set_vector (vec gi.G.vectors "a") (Bv.set a) 20;
  G.set_vector (vec gi.G.vectors "b") (Bv.set a) 7;
  let out = N.eval c a in
  let z = G.vector_value (vec go.G.vectors "z") (Bv.get out) in
  check_int "2*20 + 3*7 + 5" (((2 * 20) + (3 * 7) + 5) mod 1024) z

let test_generated_case_is_learnable () =
  (* close the loop: generate a fresh case, learn it, check accuracy *)
  let golden =
    Cases.random_eco ~seed:21 ~num_inputs:25 ~num_outputs:3 ~support:5
      ~gates:8 ~xor_prob:0.1
  in
  let box = Lr_blackbox.Blackbox.of_netlist golden in
  let config =
    {
      Logic_regression.Config.default with
      Logic_regression.Config.support_rounds = 192;
    }
  in
  let report = Logic_regression.Learner.learn ~config box in
  check "learned exactly" true
    (Lr_aig.Equiv.check golden report.Logic_regression.Learner.circuit
    = Lr_aig.Equiv.Equivalent)

let tests =
  [
    Alcotest.test_case "random_eco shape & determinism" `Quick test_random_eco_shape;
    Alcotest.test_case "random_neq parity outputs" `Quick test_random_neq_parities;
    Alcotest.test_case "random_diag comparator semantics" `Quick
      test_random_diag_semantics;
    Alcotest.test_case "random_data linear semantics" `Quick
      test_random_data_semantics;
    Alcotest.test_case "generated cases are learnable" `Quick
      test_generated_case_is_learnable;
  ]
