module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Cases = Lr_cases.Cases
module Eval = Lr_eval.Eval
module Baselines = Lr_baselines.Baselines

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_baseline baseline name =
  let spec = Cases.find name in
  let box = Cases.blackbox spec in
  let candidate = baseline ~rng:(Rng.create 42) box in
  let golden = Cases.build spec in
  let acc =
    Eval.accuracy ~count:4000 ~rng:(Rng.create 999) ~golden ~candidate ()
  in
  (candidate, acc)

let test_sop_shapes () =
  let spec = Cases.find "case_7" in
  let box = Cases.blackbox spec in
  let c = Baselines.sop_memorizer ~samples:256 ~rng:(Rng.create 1) box in
  check_int "PI preserved" spec.Cases.num_inputs (N.num_inputs c);
  check_int "PO preserved" spec.Cases.num_outputs (N.num_outputs c)

let test_sop_learns_easy_case () =
  let _, acc = run_baseline (fun ~rng box -> Baselines.sop_memorizer ~samples:1024 ~rng box) "case_13" in
  (* a 3-input-support function: memorisation covers the space *)
  check "accurate on trivial case" true (acc > 0.95)

let test_id3_learns_easy_case () =
  let _, acc = run_baseline (fun ~rng box -> Baselines.id3_tree ~samples:2048 ~rng box) "case_13" in
  check "accurate on trivial case" true (acc > 0.95)

let test_id3_beats_memorizer_on_balanced_functions () =
  (* case_16's comparator outputs are balanced: memorisation covers only
     the sampled minterms while the tree generalises across the bus *)
  let _, acc_sop = run_baseline (fun ~rng box -> Baselines.sop_memorizer ~samples:1024 ~rng box) "case_16" in
  let _, acc_id3 = run_baseline (fun ~rng box -> Baselines.id3_tree ~samples:2048 ~rng box) "case_16" in
  check "id3 generalises better" true (acc_id3 > acc_sop)

let test_both_collapse_on_wide_support () =
  (* case_9 (ECO, 48-wide xor-rich supports) is the case no contestant
     solved: both baseline families must collapse *)
  let _, acc_sop = run_baseline (fun ~rng box -> Baselines.sop_memorizer ~samples:512 ~rng box) "case_9" in
  let _, acc_id3 = run_baseline (fun ~rng box -> Baselines.id3_tree ~samples:512 ~rng box) "case_9" in
  check "memorizer collapses" true (acc_sop < 0.5);
  check "id3 collapses" true (acc_id3 < 0.5)

let test_baselines_are_bigger_than_learner () =
  let spec = Cases.find "case_4" in
  let golden = Cases.build spec in
  ignore golden;
  let box = Cases.blackbox spec in
  let sop = Baselines.sop_memorizer ~samples:1024 ~rng:(Rng.create 7) box in
  let config =
    {
      Logic_regression.Config.default with
      Logic_regression.Config.support_rounds = 192;
      max_tree_nodes = 512;
      optimize_rounds = 1;
    }
  in
  let ours =
    (Logic_regression.Learner.learn ~config (Cases.blackbox spec))
      .Logic_regression.Learner.circuit
  in
  check "memorizer circuit much larger" true (N.size sop > 3 * N.size ours)

let test_query_accounting () =
  let spec = Cases.find "case_13" in
  let box = Cases.blackbox spec in
  ignore (Baselines.sop_memorizer ~samples:512 ~support_rounds:32 ~rng:(Rng.create 3) box);
  let used = Lr_blackbox.Blackbox.queries_used box in
  (* 32 rounds * (43+1 inputs) + 512 samples *)
  check_int "queries counted" ((32 * 44) + 512) used

let tests =
  [
    Alcotest.test_case "memorizer preserves shapes" `Quick test_sop_shapes;
    Alcotest.test_case "memorizer solves trivial case" `Quick test_sop_learns_easy_case;
    Alcotest.test_case "id3 solves trivial case" `Quick test_id3_learns_easy_case;
    Alcotest.test_case "id3 generalises better on balanced functions" `Quick
      test_id3_beats_memorizer_on_balanced_functions;
    Alcotest.test_case "both baselines collapse on case_9" `Quick
      test_both_collapse_on_wide_support;
    Alcotest.test_case "baseline circuits dwarf the learner's" `Quick
      test_baselines_are_bigger_than_learner;
    Alcotest.test_case "baseline query accounting" `Quick test_query_accounting;
  ]
