(* Cut-based rewriting tests. *)

module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Aig = Lr_aig.Aig
module Rewrite = Lr_aig.Rewrite

let check = Alcotest.(check bool)

let names prefix n = Array.init n (fun i -> Printf.sprintf "%s%d" prefix i)

let random_netlist rng ni no ngates =
  let c = N.create ~input_names:(names "x" ni) ~output_names:(names "z" no) in
  let pool = ref (List.init ni (fun i -> N.input c i)) in
  let pick () = List.nth !pool (Rng.int rng (List.length !pool)) in
  for _ = 1 to ngates do
    let a = pick () and b = pick () in
    let g =
      match Rng.int rng 6 with
      | 0 -> N.and_ c a b
      | 1 -> N.or_ c a b
      | 2 -> N.xor_ c a b
      | 3 -> N.nand_ c a b
      | 4 -> N.nor_ c a b
      | _ -> N.xnor_ c a b
    in
    pool := g :: !pool
  done;
  for o = 0 to no - 1 do
    N.set_output c o (pick ())
  done;
  c

let semantically_equal c1 c2 ni =
  List.for_all
    (fun m ->
      let a = Bv.of_int ~width:ni m in
      Bv.equal (N.eval c1 a) (N.eval c2 a))
    (List.init (1 lsl ni) Fun.id)

let prop_preserves_function =
  QCheck.Test.make ~name:"cut_rewrite preserves function" ~count:80
    QCheck.(int_range 0 20_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_netlist rng 6 3 30 in
      let a = Aig.of_netlist c in
      let a' = Rewrite.cut_rewrite a in
      semantically_equal c (Aig.to_netlist a') 6)

let prop_never_grows =
  QCheck.Test.make ~name:"cut_rewrite never grows the AIG" ~count:80
    QCheck.(int_range 0 20_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_netlist rng 6 3 30 in
      let a = Aig.compact (Aig.of_netlist c) in
      Aig.num_ands (Rewrite.cut_rewrite a) <= Aig.num_ands a)

let test_recovers_shared_structure () =
  (* f = (a&b)|(c&d) and g = ~(~(a&b)&~(c&d)) are the same function built
     differently; the rewriter, driven by strash-aware costing, must bring
     the pair down to a single cone *)
  let a = Aig.create ~num_inputs:4 ~num_outputs:2 in
  let x i = Aig.input_lit a i in
  let o1 = Aig.or_lit a (Aig.and_lit a (x 0) (x 1)) (Aig.and_lit a (x 2) (x 3)) in
  (* a redundant re-expression with extra gates on top *)
  let t1 = Aig.and_lit a (x 1) (x 0) in
  let t2 = Aig.and_lit a (x 3) (x 2) in
  let o2 = Aig.not_lit (Aig.and_lit a (Aig.not_lit t1) (Aig.not_lit t2)) in
  Aig.set_output a 0 o1;
  Aig.set_output a 1 o2;
  let before = Aig.num_ands (Aig.compact a) in
  let after = Aig.num_ands (Rewrite.cut_rewrite a) in
  check "sharing discovered" true (after <= before);
  check "collapsed to one cone" true (after <= 3)

let test_simplifies_redundant_cone () =
  (* (a & b) | (a & ~b) = a : the 4-feasible cut sees through it *)
  let a = Aig.create ~num_inputs:2 ~num_outputs:1 in
  let x i = Aig.input_lit a i in
  let f =
    Aig.or_lit a
      (Aig.and_lit a (x 0) (x 1))
      (Aig.and_lit a (x 0) (Aig.not_lit (x 1)))
  in
  Aig.set_output a 0 f;
  let swept = Rewrite.cut_rewrite a in
  check "reduced to the input wire" true (Aig.num_ands swept = 0);
  check "output is input 0" true
    (Aig.output swept 0 = Aig.input_lit swept 0)

let test_constant_cone () =
  (* (a | ~a) & b = b *)
  let a = Aig.create ~num_inputs:2 ~num_outputs:1 in
  let x i = Aig.input_lit a i in
  (* build the tautology in a way strash cannot fold: (a|c)&(~a|c) with
     c = b&b ... keep it simple: or over distinct nodes *)
  let t = Aig.or_lit a (Aig.and_lit a (x 0) (x 1)) (Aig.not_lit (x 0)) in
  (* t = ~a | (a&b) = ~a | b *)
  let f = Aig.and_lit a t (x 0) in
  (* f = a & (~a | b) = a & b *)
  Aig.set_output a 0 f;
  let swept = Rewrite.cut_rewrite a in
  check "absorption found" true (Aig.num_ands swept <= 1)

let tests =
  [
    Alcotest.test_case "recovers shared structure" `Quick
      test_recovers_shared_structure;
    Alcotest.test_case "simplifies redundant cone" `Quick
      test_simplifies_redundant_cone;
    Alcotest.test_case "absorption through cuts" `Quick test_constant_cone;
    QCheck_alcotest.to_alcotest prop_preserves_function;
    QCheck_alcotest.to_alcotest prop_never_grows;
  ]
