module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let test_set_get () =
  let v = Bv.create 130 in
  check "fresh bit is 0" false (Bv.get v 0);
  Bv.set v 0 true;
  Bv.set v 64 true;
  Bv.set v 129 true;
  check "bit 0" true (Bv.get v 0);
  check "bit 64 (word boundary)" true (Bv.get v 64);
  check "bit 129 (last)" true (Bv.get v 129);
  check "bit 1 untouched" false (Bv.get v 1);
  Bv.set v 64 false;
  check "cleared" false (Bv.get v 64);
  check_int "popcount" 2 (Bv.popcount v)

let test_flip () =
  let v = Bv.create 70 in
  Bv.flip v 69;
  check "flip on" true (Bv.get v 69);
  Bv.flip v 69;
  check "flip off" false (Bv.get v 69)

let test_bounds () =
  let v = Bv.create 10 in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Bv: index out of bounds") (fun () ->
      ignore (Bv.get v 10));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Bv: index out of bounds") (fun () ->
      ignore (Bv.get v (-1)))

let test_int_roundtrip () =
  List.iter
    (fun n ->
      let v = Bv.of_int ~width:16 n in
      check_int (Printf.sprintf "roundtrip %d" n) n (Bv.to_int v))
    [ 0; 1; 2; 6; 255; 65535 ]

let test_msb_convention () =
  (* paper Example 1: (a2,a1,a0) = (1,1,0) encodes 6 *)
  let v = Bv.of_string "110" in
  check_int "110 reads 6" 6 (Bv.to_int v);
  check_str "to_string inverse" "110" (Bv.to_string v)

let test_fill () =
  let v = Bv.create 100 in
  Bv.fill v true;
  check_int "all ones" 100 (Bv.popcount v);
  Bv.fill v false;
  check_int "all zeros" 0 (Bv.popcount v)

let test_equal_hash () =
  let a = Bv.of_string "10101" and b = Bv.of_string "10101" in
  check "equal" true (Bv.equal a b);
  check_int "hash equal" (Bv.hash a) (Bv.hash b);
  Bv.flip b 0;
  check "unequal after flip" false (Bv.equal a b)

let test_rng_determinism () =
  let r1 = Rng.create 42 and r2 = Rng.create 42 in
  let a = Bv.random r1 200 and b = Bv.random r2 200 in
  check "same seed same draw" true (Bv.equal a b);
  let c = Bv.random r1 200 in
  check "stream advances" false (Bv.equal a c)

let test_rng_split_independent () =
  let r = Rng.create 7 in
  let s = Rng.split r in
  let a = Bv.random r 100 and b = Bv.random s 100 in
  check "split streams differ" false (Bv.equal a b)

let test_biased_density () =
  let rng = Rng.create 3 in
  let v = Bv.random_biased rng 0.1 6400 in
  let density = Float.of_int (Bv.popcount v) /. 6400.0 in
  check "low bias is sparse" true (density < 0.25);
  let v = Bv.random_biased rng 0.9 6400 in
  let density = Float.of_int (Bv.popcount v) /. 6400.0 in
  check "high bias is dense" true (density > 0.75)

let test_sub_blit () =
  let v = Bv.of_string "110010" in
  let s = Bv.sub_bits v [ 1; 4; 5 ] in
  (* bits: v1=1, v4=1, v5=1 -> s = 111 *)
  check_str "sub_bits" "111" (Bv.to_string s);
  let dst = Bv.create 6 in
  Bv.blit_bits ~src:s ~dst [ 0; 2; 3 ];
  check "blit bit 0" true (Bv.get dst 0);
  check "blit bit 2" true (Bv.get dst 2);
  check "blit bit 3" true (Bv.get dst 3);
  check "blit leaves others" false (Bv.get dst 1)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"of_string/to_string roundtrip" ~count:200
    QCheck.(string_gen_of_size (Gen.int_range 1 80) (Gen.oneofl [ '0'; '1' ]))
    (fun s -> Bv.to_string (Bv.of_string s) = s)

let prop_popcount =
  QCheck.Test.make ~name:"popcount matches naive count" ~count:200
    QCheck.(string_gen_of_size (Gen.int_range 1 200) (Gen.oneofl [ '0'; '1' ]))
    (fun s ->
      let v = Bv.of_string s in
      Bv.popcount v = String.fold_left (fun a c -> if c = '1' then a + 1 else a) 0 s)

let prop_flip_involution =
  QCheck.Test.make ~name:"double flip is identity" ~count:200
    QCheck.(pair (int_range 1 100) (int_range 0 1000))
    (fun (n, seed) ->
      let v = Bv.random (Rng.create seed) n in
      let w = Bv.copy v in
      let i = seed mod n in
      Bv.flip w i;
      Bv.flip w i;
      Bv.equal v w)

let tests =
  [
    Alcotest.test_case "set/get across words" `Quick test_set_get;
    Alcotest.test_case "flip" `Quick test_flip;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "int roundtrip" `Quick test_int_roundtrip;
    Alcotest.test_case "MSB-first convention (paper ex.1)" `Quick test_msb_convention;
    Alcotest.test_case "fill" `Quick test_fill;
    Alcotest.test_case "equal/hash" `Quick test_equal_hash;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "biased word density" `Quick test_biased_density;
    Alcotest.test_case "sub_bits/blit_bits" `Quick test_sub_blit;
    QCheck_alcotest.to_alcotest prop_string_roundtrip;
    QCheck_alcotest.to_alcotest prop_popcount;
    QCheck_alcotest.to_alcotest prop_flip_involution;
  ]
