module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Aig = Lr_aig.Aig
module Fraig = Lr_aig.Fraig
module Opt = Lr_aig.Opt

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let names prefix n = Array.init n (fun i -> Printf.sprintf "%s%d" prefix i)

(* random netlist generator for semantic-preservation properties *)
let random_netlist rng ni no ngates =
  let c = N.create ~input_names:(names "x" ni) ~output_names:(names "z" no) in
  let pool = ref (List.init ni (fun i -> N.input c i)) in
  let pick () =
    let l = !pool in
    List.nth l (Rng.int rng (List.length l))
  in
  for _ = 1 to ngates do
    let a = pick () and b = pick () in
    let g =
      match Rng.int rng 7 with
      | 0 -> N.and_ c a b
      | 1 -> N.or_ c a b
      | 2 -> N.xor_ c a b
      | 3 -> N.nand_ c a b
      | 4 -> N.nor_ c a b
      | 5 -> N.xnor_ c a b
      | _ -> N.not_ c a
    in
    pool := g :: !pool
  done;
  for o = 0 to no - 1 do
    N.set_output c o (pick ())
  done;
  c

let semantically_equal c1 c2 inputs =
  List.for_all (fun a -> Bv.equal (N.eval c1 a) (N.eval c2 a)) inputs

let exhaustive ni = List.init (1 lsl ni) (fun m -> Bv.of_int ~width:ni m)

let test_roundtrip_netlist () =
  let rng = Rng.create 5 in
  let c = random_netlist rng 5 3 30 in
  let c' = Aig.to_netlist (Aig.of_netlist c) in
  check "netlist -> aig -> netlist preserves function" true
    (semantically_equal c c' (exhaustive 5))

let test_xor_costs_three_ands () =
  let a = Aig.create ~num_inputs:2 ~num_outputs:1 in
  Aig.set_output a 0 (Aig.xor_lit a (Aig.input_lit a 0) (Aig.input_lit a 1));
  check_int "xor = 3 ands" 3 (Aig.num_ands a)

let test_strash_sharing () =
  let a = Aig.create ~num_inputs:2 ~num_outputs:2 in
  let x = Aig.input_lit a 0 and y = Aig.input_lit a 1 in
  let g1 = Aig.and_lit a x y in
  let g2 = Aig.and_lit a y x in
  check_int "commuted AND shared" g1 g2;
  check_int "x & x = x" x (Aig.and_lit a x x);
  check_int "x & ~x = 0" Aig.lit_false (Aig.and_lit a x (Aig.not_lit x))

let test_simulate_words () =
  let a = Aig.create ~num_inputs:2 ~num_outputs:1 in
  Aig.set_output a 0 (Aig.or_lit a (Aig.input_lit a 0) (Aig.input_lit a 1));
  let out = Aig.simulate a [| 0b1100L; 0b1010L |] in
  check "or truth table" true (Int64.logand out.(0) 0b1111L = 0b1110L)

let test_compact_removes_dangling () =
  let a = Aig.create ~num_inputs:3 ~num_outputs:1 in
  let x = Aig.input_lit a 0 and y = Aig.input_lit a 1 and z = Aig.input_lit a 2 in
  let keep = Aig.and_lit a x y in
  let _dangling = Aig.and_lit a (Aig.and_lit a x z) (Aig.not_lit y) in
  Aig.set_output a 0 keep;
  let a' = Aig.compact a in
  check_int "only the used AND kept" 1 (Aig.num_ands a')

let opt_preserves name f =
  QCheck.Test.make ~name ~count:60 QCheck.(int_range 0 10000) (fun seed ->
      let rng = Rng.create seed in
      let c = random_netlist rng 5 2 25 in
      let a = Aig.of_netlist c in
      let a' = f (Rng.split rng) a in
      semantically_equal c (Aig.to_netlist a') (exhaustive 5))

let prop_balance_preserves = opt_preserves "balance preserves function" (fun _ a -> Opt.balance a)
let prop_rewrite_preserves = opt_preserves "rewrite preserves function" (fun _ a -> Opt.rewrite a)

let prop_fraig_preserves =
  opt_preserves "fraig preserves function" (fun rng a -> Fraig.sweep ~rng a)

let prop_compress_preserves =
  opt_preserves "compress preserves function" (fun rng a ->
      Opt.compress ~rng a)

let test_fraig_merges_duplicates () =
  (* two independently built copies of the same cone: fraig must merge *)
  let a = Aig.create ~num_inputs:4 ~num_outputs:2 in
  let x i = Aig.input_lit a i in
  let cone1 =
    Aig.or_lit a (Aig.and_lit a (x 0) (x 1)) (Aig.and_lit a (x 2) (x 3))
  in
  (* same function, different structure: ~(~(x0 x1) ~(x2 x3)) built with
     fresh intermediate literals in flipped operand order *)
  let cone2 =
    Aig.not_lit
      (Aig.and_lit a
         (Aig.not_lit (Aig.and_lit a (x 1) (x 0)))
         (Aig.not_lit (Aig.and_lit a (x 3) (x 2))))
  in
  Aig.set_output a 0 cone1;
  Aig.set_output a 1 cone2;
  let rng = Rng.create 9 in
  let swept = Fraig.sweep ~rng a in
  check "outputs merged to one literal" true
    (Aig.output swept 0 = Aig.output swept 1)

let test_fraig_finds_constants () =
  let a = Aig.create ~num_inputs:2 ~num_outputs:1 in
  let x = Aig.input_lit a 0 and y = Aig.input_lit a 1 in
  (* (x & y) & (x & ~y) is constant false but structurally hidden *)
  let g = Aig.and_lit a (Aig.and_lit a x y) (Aig.and_lit a x (Aig.not_lit y)) in
  Aig.set_output a 0 g;
  let swept = Fraig.sweep ~rng:(Rng.create 1) a in
  check_int "constant proven, no gates left" 0 (Aig.num_ands swept);
  check_int "output is constant false" Aig.lit_false (Aig.output swept 0)

let test_compress_shrinks_sop_duplication () =
  (* build a netlist with blatant duplication and check compress shrinks it *)
  let rng = Rng.create 77 in
  let c = N.create ~input_names:(names "x" 6) ~output_names:(names "z" 1) in
  let x i = N.input c i in
  let t1 = N.and_ c (x 0) (N.and_ c (x 1) (x 2)) in
  let t2 = N.and_ c (N.and_ c (x 0) (x 1)) (x 2) in
  (* t1 and t2 are equal but structurally distinct *)
  N.set_output c 0 (N.or_ c (N.and_ c t1 (x 3)) (N.and_ c t2 (x 4)));
  let a = Aig.of_netlist c in
  let before = Aig.num_ands a in
  let a' = Opt.compress ~rng a in
  check "compress reduced gate count" true (Aig.num_ands a' < before);
  check "function preserved" true
    (semantically_equal c (Aig.to_netlist a') (exhaustive 6))

let tests =
  [
    Alcotest.test_case "netlist roundtrip" `Quick test_roundtrip_netlist;
    Alcotest.test_case "xor construction" `Quick test_xor_costs_three_ands;
    Alcotest.test_case "strash sharing" `Quick test_strash_sharing;
    Alcotest.test_case "word simulation" `Quick test_simulate_words;
    Alcotest.test_case "compact" `Quick test_compact_removes_dangling;
    Alcotest.test_case "fraig merges duplicate cones" `Quick test_fraig_merges_duplicates;
    Alcotest.test_case "fraig proves hidden constants" `Quick test_fraig_finds_constants;
    Alcotest.test_case "compress shrinks duplication" `Quick test_compress_shrinks_sop_duplication;
    QCheck_alcotest.to_alcotest prop_balance_preserves;
    QCheck_alcotest.to_alcotest prop_rewrite_preserves;
    QCheck_alcotest.to_alcotest prop_fraig_preserves;
    QCheck_alcotest.to_alcotest prop_compress_preserves;
  ]
