(* The refinement extension: a starved node budget plus refine rounds must
   recover the accuracy the starved budget alone loses. *)

module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Box = Lr_blackbox.Blackbox
module Config = Logic_regression.Config
module Learner = Logic_regression.Learner

let check = Alcotest.(check bool)

(* a function needing a deep-ish tree: 24 inputs, nested and-or over 20 *)
let hidden_box () =
  let names = Array.init 24 (fun i -> Printf.sprintf "i%c%c" (Char.chr (97 + (i / 5))) (Char.chr (97 + (i mod 5)))) in
  let golden = N.create ~input_names:names ~output_names:[| "f" |] in
  let x i = N.input golden i in
  let rec build lo hi =
    if hi - lo = 1 then x lo
    else begin
      let mid = (lo + hi) / 2 in
      let l = build lo mid and r = build mid hi in
      if (lo + hi) mod 3 = 0 then N.and_ golden l r
      else if (lo + hi) mod 3 = 1 then N.or_ golden l r
      else N.xor_ golden l r
    end
  in
  N.set_output golden 0 (build 0 20);
  (golden, Box.of_netlist golden)

let starved refine_rounds =
  {
    Config.default with
    Config.support_rounds = 192;
    node_rounds = 24;
    max_tree_nodes = 24;
    (* starved *)
    small_support_threshold = 4;
    (* forbid the exhaustive escape hatch *)
    optimize = false;
    refine_rounds;
  }

let accuracy golden circuit =
  let rng = Rng.create 31 in
  Lr_eval.Eval.accuracy ~count:4000 ~rng ~golden ~candidate:circuit ()

let test_refinement_recovers_accuracy () =
  let golden, box0 = hidden_box () in
  let r0 = Learner.learn ~config:(starved 0) box0 in
  let _, box1 = hidden_box () in
  let r1 = Learner.learn ~config:(starved 6) box1 in
  let a0 = accuracy golden r0.Learner.circuit in
  let a1 = accuracy golden r1.Learner.circuit in
  check "starved run is inexact" true (a0 < 0.9);
  check "refined run improves" true (a1 > a0);
  check "refined run substantially better" true (a1 >= 0.85)

let test_refinement_noop_when_complete () =
  (* on an easy function refinement must not change the result *)
  let names = Array.init 6 (fun i -> Printf.sprintf "w%c" (Char.chr (97 + i))) in
  let mk () =
    Box.of_function ~input_names:names ~output_names:[| "f" |] (fun a ->
        let out = Bv.create 1 in
        Bv.set out 0 (Bv.get a 0 && Bv.get a 5);
        out)
  in
  let cfg0 = { (starved 0) with Config.small_support_threshold = 18 } in
  let cfg1 = { cfg0 with Config.refine_rounds = 3 } in
  let r0 = Learner.learn ~config:cfg0 (mk ()) in
  let r1 = Learner.learn ~config:cfg1 (mk ()) in
  check "same query count (no refinement ran)" true
    (r0.Learner.queries = r1.Learner.queries)

let tests =
  [
    Alcotest.test_case "refinement recovers accuracy" `Quick
      test_refinement_recovers_accuracy;
    Alcotest.test_case "refinement is a no-op when complete" `Quick
      test_refinement_noop_when_complete;
  ]
