module N = Lr_netlist.Netlist
module Dot = Lr_netlist.Dot

let check = Alcotest.(check bool)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let sample () =
  let c =
    N.create ~input_names:[| "a"; "b"; "c" |] ~output_names:[| "out" |]
  in
  N.set_output c 0
    (N.or_ c (N.and_ c (N.input c 0) (N.input c 1)) (N.not_ c (N.input c 2)));
  c

let test_structure () =
  let dot = Dot.write ~graph_name:"g" (sample ()) in
  check "digraph header" true (contains dot "digraph g {");
  check "input box" true (contains dot "label=\"a\", shape=box");
  check "AND gate" true (contains dot "label=\"AND\"");
  check "OR gate" true (contains dot "label=\"OR\"");
  check "NOT gate" true (contains dot "label=\"NOT\"");
  check "PO double circle" true (contains dot "shape=doublecircle");
  check "closing brace" true (contains dot "}")

let test_unreachable_logic_hidden () =
  let c = sample () in
  (* dangling gate must not appear *)
  let _ = N.xor_ c (N.input c 0) (N.input c 2) in
  let dot = Dot.write c in
  check "dangling XOR not drawn" false (contains dot "XOR")

let test_escaping () =
  let c =
    N.create ~input_names:[| "bus\"0\"" |] ~output_names:[| "z" |]
  in
  N.set_output c 0 (N.input c 0);
  let dot = Dot.write c in
  check "quotes escaped" true (contains dot "bus\\\"0\\\"")

let tests =
  [
    Alcotest.test_case "dot structure" `Quick test_structure;
    Alcotest.test_case "only reachable logic drawn" `Quick
      test_unreachable_logic_hidden;
    Alcotest.test_case "label escaping" `Quick test_escaping;
  ]
