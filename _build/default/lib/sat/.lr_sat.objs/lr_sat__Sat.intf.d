lib/sat/sat.mli:
