lib/sat/dimacs.mli: Sat
