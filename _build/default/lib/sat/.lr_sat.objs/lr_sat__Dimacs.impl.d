lib/sat/dimacs.ml: Buffer Fun List Printf Sat String
