type cnf = { num_vars : int; clauses : int list list }

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" t.num_vars (List.length t.clauses));
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (Printf.sprintf "%d " l)) clause;
      Buffer.add_string buf "0\n")
    t.clauses;
  Buffer.contents buf

let of_string text =
  let tokens =
    String.split_on_char '\n' text
    |> List.filter (fun l ->
           let l = String.trim l in
           l <> "" && l.[0] <> 'c')
    |> List.concat_map (fun l ->
           String.split_on_char ' ' l
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun w -> w <> ""))
  in
  match tokens with
  | "p" :: "cnf" :: nv :: _nc :: rest ->
      let num_vars =
        match int_of_string_opt nv with
        | Some v when v >= 0 -> v
        | _ -> failwith "Dimacs.of_string: bad variable count"
      in
      let clauses = ref [] and current = ref [] in
      List.iter
        (fun tok ->
          match int_of_string_opt tok with
          | None -> failwith ("Dimacs.of_string: bad token " ^ tok)
          | Some 0 ->
              clauses := List.rev !current :: !clauses;
              current := []
          | Some l ->
              if abs l > num_vars then
                failwith "Dimacs.of_string: literal out of range";
              current := l :: !current)
        rest;
      if !current <> [] then failwith "Dimacs.of_string: unterminated clause";
      { num_vars; clauses = List.rev !clauses }
  | _ -> failwith "Dimacs.of_string: missing p cnf header"

let solve t =
  let s = Sat.create () in
  for _ = 1 to t.num_vars do
    ignore (Sat.new_var s)
  done;
  List.iter (Sat.add_clause s) t.clauses;
  Sat.solve s

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let read_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string text
