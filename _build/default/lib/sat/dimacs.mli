(** DIMACS CNF interchange.

    Lets the embedded CDCL solver trade instances with external SAT tools
    (kissat, minisat, ...) — both for debugging the solver against a
    reference and for shipping hard fraig/CEC queries out. *)

type cnf = { num_vars : int; clauses : int list list }

val to_string : cnf -> string
(** Standard [p cnf] header + one zero-terminated clause per line. *)

val of_string : string -> cnf
(** Parse DIMACS. Comment lines ([c ...]) ignored; clauses may span lines.
    Raises [Failure] on malformed input or literals out of range. *)

val solve : cnf -> Sat.result
(** Load into a fresh solver and decide. *)

val write_file : cnf -> string -> unit
val read_file : string -> cnf
