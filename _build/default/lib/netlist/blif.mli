(** Berkeley Logic Interchange Format (combinational subset).

    Reads and writes the `.model/.inputs/.outputs/.names` BLIF dialect that
    ABC, SIS and most academic tools speak, so real benchmark suites (e.g.
    the original contest's published circuits, ISCAS/MCNC netlists) can be
    loaded and used as black-boxes.

    On input, each [.names] table (a single-output PLA over the node's
    fanins) is synthesised into 2-input gates via {!Builder.sop}. Latches
    and [.subckt] are rejected — the contest problem is combinational. *)

val write : ?model:string -> Netlist.t -> string
(** Emit BLIF. Every internal 2-input gate becomes a [.names] table. *)

val read : string -> Netlist.t
(** Parse BLIF. Raises [Failure] with a line-tagged message on malformed
    input, latches, or unsupported constructs. *)

val write_file : ?model:string -> Netlist.t -> string -> unit
val read_file : string -> Netlist.t
