module N = Netlist

let write t =
  let buf = Buffer.create 4096 in
  let names sep arr =
    Array.iteri
      (fun i s ->
        if i > 0 then Buffer.add_char buf sep;
        Buffer.add_string buf s)
      arr
  in
  Buffer.add_string buf ".inputs ";
  names ' ' (N.input_names t);
  Buffer.add_string buf "\n.outputs ";
  names ' ' (N.output_names t);
  Buffer.add_char buf '\n';
  for n = 0 to N.num_nodes t - 1 do
    let line op args =
      Buffer.add_string buf (Printf.sprintf ".gate %d = %s" n op);
      List.iter (fun a -> Buffer.add_string buf (Printf.sprintf " %d" a)) args;
      Buffer.add_char buf '\n'
    in
    match N.gate t n with
    | N.Const _ | N.Input _ -> ()
    | N.Not a -> line "NOT" [ a ]
    | N.And2 (a, b) -> line "AND" [ a; b ]
    | N.Or2 (a, b) -> line "OR" [ a; b ]
    | N.Xor2 (a, b) -> line "XOR" [ a; b ]
    | N.Nand2 (a, b) -> line "NAND" [ a; b ]
    | N.Nor2 (a, b) -> line "NOR" [ a; b ]
    | N.Xnor2 (a, b) -> line "XNOR" [ a; b ]
  done;
  Array.iteri
    (fun i name ->
      Buffer.add_string buf
        (Printf.sprintf ".po %s = %d\n" name (N.output t i)))
    (N.output_names t);
  Buffer.contents buf

let fail lineno msg = failwith (Printf.sprintf "Netlist.Io line %d: %s" lineno msg)

let read text =
  let lines = String.split_on_char '\n' text in
  let inputs = ref [||] and outputs = ref [||] in
  let pending = ref [] and po_defs = ref [] in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let words =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> ()
      | ".inputs" :: names -> inputs := Array.of_list names
      | ".outputs" :: names -> outputs := Array.of_list names
      | ".gate" :: rest -> pending := (lineno, rest) :: !pending
      | ".po" :: rest -> po_defs := (lineno, rest) :: !po_defs
      | w :: _ -> fail lineno ("unknown directive " ^ w))
    lines;
  let t = N.create ~input_names:!inputs ~output_names:!outputs in
  (* Old-file node id -> node in the freshly built network. Constants and
     inputs share the id convention, so they map to themselves. *)
  let map = Hashtbl.create 256 in
  Hashtbl.replace map 0 (N.const_false t);
  Hashtbl.replace map 1 (N.const_true t);
  Array.iteri (fun i _ -> Hashtbl.replace map (2 + i) (N.input t i)) !inputs;
  let resolve lineno id =
    match Hashtbl.find_opt map id with
    | Some n -> n
    | None -> fail lineno (Printf.sprintf "undefined node %d" id)
  in
  let int_of lineno s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail lineno ("expected integer, got " ^ s)
  in
  List.iter
    (fun (lineno, rest) ->
      match rest with
      | [ id; "="; "NOT"; a ] ->
          Hashtbl.replace map (int_of lineno id)
            (N.not_ t (resolve lineno (int_of lineno a)))
      | [ id; "="; op; a; b ] ->
          let x = resolve lineno (int_of lineno a)
          and y = resolve lineno (int_of lineno b) in
          let f =
            match op with
            | "AND" -> N.and_
            | "OR" -> N.or_
            | "XOR" -> N.xor_
            | "NAND" -> N.nand_
            | "NOR" -> N.nor_
            | "XNOR" -> N.xnor_
            | _ -> fail lineno ("unknown gate " ^ op)
          in
          Hashtbl.replace map (int_of lineno id) (f t x y)
      | _ -> fail lineno "malformed .gate line")
    (List.rev !pending);
  List.iter
    (fun (lineno, rest) ->
      match rest with
      | [ name; "="; id ] ->
          let out_index =
            let found = ref (-1) in
            Array.iteri
              (fun i n -> if n = name then found := i)
              (N.output_names t);
            if !found < 0 then fail lineno ("unknown output " ^ name);
            !found
          in
          N.set_output t out_index (resolve lineno (int_of lineno id))
      | _ -> fail lineno "malformed .po line")
    (List.rev !po_defs);
  t

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write t))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)
  |> read
