(** Structural Verilog netlist writer.

    Emits a synthesizable gate-level module (continuous [assign]s over the
    six 2-input primitives and inverters), so learned circuits drop into a
    standard EDA flow. Signal names that are not plain Verilog identifiers
    (e.g. [bus[3]]) are emitted as escaped identifiers. *)

val write : ?module_name:string -> Netlist.t -> string
val write_file : ?module_name:string -> Netlist.t -> string -> unit
