module N = Netlist

type node = N.node

(* Pairwise reduction keeps trees balanced, which keeps circuit depth
   logarithmic in the cube/cover width. *)
let reduce_tree op unit_node t nodes =
  let rec level = function
    | [] -> unit_node
    | [ x ] -> x
    | xs ->
        let rec pair acc = function
          | [] -> List.rev acc
          | [ x ] -> List.rev (x :: acc)
          | x :: y :: rest -> pair (op t x y :: acc) rest
        in
        level (pair [] xs)
  in
  level nodes

let and_reduce t nodes = reduce_tree N.and_ (N.const_true t) t nodes
let or_reduce t nodes = reduce_tree N.or_ (N.const_false t) t nodes
let xor_reduce t nodes = reduce_tree N.xor_ (N.const_false t) t nodes

let mux t ~sel ~then_ ~else_ =
  N.or_ t (N.and_ t sel then_) (N.and_ t (N.not_ t sel) else_)

let cube t vars c =
  let lits =
    List.map
      (fun (v, ph) -> if ph then vars.(v) else N.not_ t vars.(v))
      (Lr_cube.Cube.literals c)
  in
  and_reduce t lits

let sop t vars cover =
  or_reduce t (List.map (cube t vars) (Lr_cube.Cover.cubes cover))

let const_vector t ~width k =
  Array.init width (fun i ->
      if (k lsr i) land 1 = 1 then N.const_true t else N.const_false t)

let full_add t a b cin =
  let axb = N.xor_ t a b in
  let sum = N.xor_ t axb cin in
  let carry = N.or_ t (N.and_ t a b) (N.and_ t axb cin) in
  sum, carry

let ripple_add t a b =
  let w = Array.length a in
  if Array.length b <> w then invalid_arg "Builder.ripple_add: width mismatch";
  let out = Array.make w (N.const_false t) in
  let carry = ref (N.const_false t) in
  for i = 0 to w - 1 do
    let s, c = full_add t a.(i) b.(i) !carry in
    out.(i) <- s;
    carry := c
  done;
  out

let add_const t a k =
  let w = Array.length a in
  ripple_add t a (const_vector t ~width:w (k land ((1 lsl w) - 1)))

let shift_left t a k =
  let w = Array.length a in
  Array.init w (fun i -> if i < k then N.const_false t else a.(i - k))

let scale_const t k v ~width =
  let v =
    if Array.length v >= width then Array.sub v 0 width
    else
      Array.append v
        (Array.make (width - Array.length v) (N.const_false t))
  in
  let k = ((k mod (1 lsl width)) + (1 lsl width)) land ((1 lsl width) - 1) in
  let acc = ref (const_vector t ~width 0) in
  for bit = 0 to width - 1 do
    if (k lsr bit) land 1 = 1 then acc := ripple_add t !acc (shift_left t v bit)
  done;
  !acc

let linear_combination t ~width terms b =
  let acc = ref (const_vector t ~width (b land ((1 lsl width) - 1))) in
  List.iter
    (fun (a_i, v) -> acc := ripple_add t !acc (scale_const t a_i v ~width))
    terms;
  !acc

let equal_vectors t a b =
  let w = Array.length a in
  if Array.length b <> w then
    invalid_arg "Builder.equal_vectors: width mismatch";
  and_reduce t (List.init w (fun i -> N.xnor_ t a.(i) b.(i)))

(* Unsigned magnitude comparison, MSB first:
   a < b  =  OR_i ( prefix-equal above i  AND  ~a_i AND b_i ). *)
let less_than t a b =
  let w = Array.length a in
  if Array.length b <> w then invalid_arg "Builder.less_than: width mismatch";
  let result = ref (N.const_false t) in
  let prefix_eq = ref (N.const_true t) in
  for i = w - 1 downto 0 do
    let here = N.and_ t (N.not_ t a.(i)) b.(i) in
    result := N.or_ t !result (N.and_ t !prefix_eq here);
    prefix_eq := N.and_ t !prefix_eq (N.xnor_ t a.(i) b.(i))
  done;
  !result

let compare_op t op a b =
  match op with
  | `Eq -> equal_vectors t a b
  | `Ne -> N.not_ t (equal_vectors t a b)
  | `Lt -> less_than t a b
  | `Ge -> N.not_ t (less_than t a b)
  | `Gt -> less_than t b a
  | `Le -> N.not_ t (less_than t b a)

let compare_const t op a k =
  compare_op t op a (const_vector t ~width:(Array.length a) k)
