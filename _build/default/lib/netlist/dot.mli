(** Graphviz rendering of netlists.

    Produces a [dot] digraph with PIs as boxes, POs as double circles and
    gates labelled by their operator — the quickest way to eyeball what the
    learner produced (`dot -Tsvg circuit.dot > circuit.svg`). Only logic
    reachable from the outputs is drawn. *)

val write : ?graph_name:string -> Netlist.t -> string
val write_file : ?graph_name:string -> Netlist.t -> string -> unit
