(** Structural constructors on top of {!Netlist}: balanced gate trees,
    sum-of-products realisation, and the word-level blocks (adders,
    comparators, constant multipliers) needed to materialise matched
    templates as circuits.

    Vectors are node arrays, least-significant bit first. *)

type node = Netlist.node

val and_reduce : Netlist.t -> node list -> node
(** Balanced AND tree; the empty list yields constant true. *)

val or_reduce : Netlist.t -> node list -> node
(** Balanced OR tree; the empty list yields constant false. *)

val xor_reduce : Netlist.t -> node list -> node

val mux : Netlist.t -> sel:node -> then_:node -> else_:node -> node

val cube : Netlist.t -> node array -> Lr_cube.Cube.t -> node
(** [cube t vars c] realises the conjunction [c], literal [v] reading node
    [vars.(v)]. *)

val sop : Netlist.t -> node array -> Lr_cube.Cover.t -> node
(** Realise a cover as a two-level AND-OR structure (with balanced trees). *)

(** {2 Word-level blocks} *)

val const_vector : Netlist.t -> width:int -> int -> node array

val ripple_add : Netlist.t -> node array -> node array -> node array
(** Modular sum of two equal-width vectors (carry out discarded). *)

val add_const : Netlist.t -> node array -> int -> node array

val scale_const : Netlist.t -> int -> node array -> width:int -> node array
(** [scale_const t k v ~width] computes [k * N_v mod 2^width] by shift-and-add
    (negative [k] is taken modulo [2^width]). *)

val linear_combination :
  Netlist.t -> width:int -> (int * node array) list -> int -> node array
(** [linear_combination t ~width terms b] realises
    [sum_i a_i * N_vi + b mod 2^width]. *)

val equal_vectors : Netlist.t -> node array -> node array -> node
val less_than : Netlist.t -> node array -> node array -> node
(** Unsigned [N_a < N_b] for equal-width vectors. *)

val compare_op :
  Netlist.t -> [ `Eq | `Ne | `Lt | `Le | `Gt | `Ge ] ->
  node array -> node array -> node

val compare_const :
  Netlist.t -> [ `Eq | `Ne | `Lt | `Le | `Gt | `Ge ] ->
  node array -> int -> node
