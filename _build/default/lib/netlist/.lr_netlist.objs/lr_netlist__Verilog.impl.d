lib/netlist/verilog.ml: Array Buffer Fun Netlist Printf String
