lib/netlist/analysis.ml: Array Float Hashtbl Int64 List Lr_bdd Lr_bitvec Netlist
