lib/netlist/analysis.mli: Lr_bitvec Netlist
