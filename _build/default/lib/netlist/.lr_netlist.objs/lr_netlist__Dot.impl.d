lib/netlist/dot.ml: Array Buffer Fun List Netlist Printf String
