lib/netlist/builder.ml: Array List Lr_cube Netlist
