lib/netlist/io.ml: Array Buffer Fun Hashtbl List Netlist Printf String
