lib/netlist/netlist.ml: Array Hashtbl Int64 List Lr_bitvec
