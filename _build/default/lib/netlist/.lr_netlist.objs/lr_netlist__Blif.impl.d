lib/netlist/blif.ml: Array Buffer Builder Fun Hashtbl List Lr_cube Netlist Printf String
