lib/netlist/netlist.mli: Lr_bitvec
