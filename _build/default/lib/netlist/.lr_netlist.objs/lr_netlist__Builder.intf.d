lib/netlist/builder.mli: Lr_cube Netlist
