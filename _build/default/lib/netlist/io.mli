(** Plain-text serialisation of netlists.

    The format is a BLIF-inspired line language:

    {v
    .inputs a b c[0] c[1]
    .outputs z
    .gate 6 = AND 2 3
    .gate 7 = NOT 6
    .po z = 7
    v}

    Gate operands reference node ids of the same file; ids 0 and 1 are the
    false/true constants and id [2 + i] is primary input [i], exactly as in
    {!Netlist}. Signal names may contain any non-whitespace characters. *)

val write : Netlist.t -> string
val read : string -> Netlist.t
(** Raises [Failure] with a line-tagged message on malformed input. *)

val write_file : Netlist.t -> string -> unit
val read_file : string -> Netlist.t
