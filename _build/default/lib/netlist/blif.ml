module N = Netlist
module Cube = Lr_cube.Cube
module Cover = Lr_cube.Cover

let write ?(model = "learned") c =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add ".model %s\n" model;
  add ".inputs %s\n" (String.concat " " (Array.to_list (N.input_names c)));
  add ".outputs %s\n" (String.concat " " (Array.to_list (N.output_names c)));
  let reach = Array.make (N.num_nodes c) false in
  let rec visit n =
    if not reach.(n) then begin
      reach.(n) <- true;
      match N.gate c n with
      | N.Const _ | N.Input _ -> ()
      | N.Not a -> visit a
      | N.And2 (a, b) | N.Or2 (a, b) | N.Xor2 (a, b) | N.Nand2 (a, b)
      | N.Nor2 (a, b) | N.Xnor2 (a, b) ->
          visit a;
          visit b
    end
  in
  for o = 0 to N.num_outputs c - 1 do
    visit (N.output c o)
  done;
  let name n =
    match N.gate c n with
    | N.Input i -> (N.input_names c).(i)
    | N.Const _ | N.Not _ | N.And2 _ | N.Or2 _ | N.Xor2 _ | N.Nand2 _
    | N.Nor2 _ | N.Xnor2 _ ->
        Printf.sprintf "n%d" n
  in
  for n = 0 to N.num_nodes c - 1 do
    if reach.(n) then begin
      let table2 a b rows =
        add ".names %s %s %s\n" (name a) (name b) (name n);
        List.iter (fun r -> add "%s 1\n" r) rows
      in
      match N.gate c n with
      | N.Input _ -> ()
      | N.Const false -> add ".names %s\n" (name n)
      | N.Const true -> add ".names %s\n1\n" (name n)
      | N.Not a -> add ".names %s %s\n0 1\n" (name a) (name n)
      | N.And2 (a, b) -> table2 a b [ "11" ]
      | N.Or2 (a, b) -> table2 a b [ "1-"; "-1" ]
      | N.Xor2 (a, b) -> table2 a b [ "10"; "01" ]
      | N.Nand2 (a, b) -> table2 a b [ "0-"; "-0" ]
      | N.Nor2 (a, b) -> table2 a b [ "00" ]
      | N.Xnor2 (a, b) -> table2 a b [ "11"; "00" ]
    end
  done;
  (* output buffers *)
  for o = 0 to N.num_outputs c - 1 do
    let po = (N.output_names c).(o) in
    add ".names %s %s\n1 1\n" (name (N.output c o)) po
  done;
  add ".end\n";
  Buffer.contents buf

let fail fmt = Printf.ksprintf failwith fmt

type table = { fanins : string list; out : string; rows : (string * char) list }

let read text =
  (* join continuation lines, strip comments *)
  let lines =
    String.split_on_char '\n' text
    |> List.map (fun l ->
           match String.index_opt l '#' with
           | Some i -> String.sub l 0 i
           | None -> l)
  in
  let joined =
    List.fold_left
      (fun (acc, pending) line ->
        let line = pending ^ line in
        if String.length line > 0 && line.[String.length line - 1] = '\\' then
          (acc, String.sub line 0 (String.length line - 1))
        else (line :: acc, ""))
      ([], "") lines
    |> fun (acc, pending) ->
    List.rev (if pending = "" then acc else pending :: acc)
  in
  let words l =
    String.split_on_char ' ' l
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun w -> w <> "")
  in
  let inputs = ref [] and outputs = ref [] in
  let tables = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some t -> tables := { t with rows = List.rev t.rows } :: !tables
    | None -> ()
  in
  List.iter
    (fun line ->
      match words line with
      | [] -> ()
      | ".model" :: _ -> ()
      | ".inputs" :: names -> inputs := !inputs @ names
      | ".outputs" :: names -> outputs := !outputs @ names
      | ".names" :: signals -> (
          flush ();
          match List.rev signals with
          | out :: rev_fanins ->
              current := Some { fanins = List.rev rev_fanins; out; rows = [] }
          | [] -> fail "Blif.read: .names with no signals")
      | ".end" :: _ -> flush ()
      | (".latch" | ".subckt" | ".gate") :: _ ->
          fail "Blif.read: sequential/hierarchical BLIF not supported"
      | [ pattern; value ] when String.length value = 1 -> (
          match !current with
          | Some t -> current := Some { t with rows = (pattern, value.[0]) :: t.rows }
          | None -> fail "Blif.read: table row outside .names")
      | [ single ] -> (
          (* constant table row: output column only *)
          match !current with
          | Some t when t.fanins = [] ->
              current := Some { t with rows = (("", single.[0])) :: t.rows }
          | Some _ -> fail "Blif.read: missing output column in row %S" single
          | None -> fail "Blif.read: table row outside .names")
      | w :: _ ->
          if String.length w > 0 && w.[0] = '.' then
            fail "Blif.read: unsupported directive %s" w
          else fail "Blif.read: malformed line %S" line)
    joined;
  flush ();
  let tables = List.rev !tables in
  let input_names = Array.of_list !inputs in
  let output_names = Array.of_list !outputs in
  let c = N.create ~input_names ~output_names in
  let by_output = Hashtbl.create 64 in
  List.iter (fun t -> Hashtbl.replace by_output t.out t) tables;
  let resolved = Hashtbl.create 64 in
  Array.iteri
    (fun i name -> Hashtbl.replace resolved name (N.input c i))
    input_names;
  let rec node_of ?(stack = []) name =
    match Hashtbl.find_opt resolved name with
    | Some n -> n
    | None ->
        if List.mem name stack then fail "Blif.read: combinational cycle at %s" name;
        let t =
          match Hashtbl.find_opt by_output name with
          | Some t -> t
          | None -> fail "Blif.read: undriven signal %s" name
        in
        let fanin_nodes =
          List.map (node_of ~stack:(name :: stack)) t.fanins
          |> Array.of_list
        in
        let k = Array.length fanin_nodes in
        let onset_rows, offset_rows =
          List.partition (fun (_, v) -> v = '1') t.rows
        in
        let cover_of rows =
          Cover.of_cubes k
            (List.map
               (fun (pattern, _) ->
                 if String.length pattern <> k then
                   fail "Blif.read: row width mismatch in table for %s" name;
                 (* BLIF row order: leftmost char = first fanin *)
                 let cube = ref (Cube.top k) in
                 String.iteri
                   (fun i ch ->
                     match ch with
                     | '1' -> cube := Cube.add !cube i true
                     | '0' -> cube := Cube.add !cube i false
                     | '-' -> ()
                     | _ -> fail "Blif.read: bad pattern char %c" ch)
                   pattern;
                 !cube)
               rows)
        in
        let n =
          match onset_rows, offset_rows with
          | [], [] -> N.const_false c
          | rows, [] ->
              if k = 0 then N.const_true c
              else Builder.sop c fanin_nodes (cover_of rows)
          | [], rows ->
              if k = 0 then N.const_false c
              else N.not_ c (Builder.sop c fanin_nodes (cover_of rows))
          | _ :: _, _ :: _ ->
              fail "Blif.read: mixed-polarity table for %s" name
        in
        Hashtbl.replace resolved name n;
        n
  in
  Array.iteri (fun o name -> N.set_output c o (node_of name)) output_names;
  c

let write_file ?model c path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write ?model c))

let read_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  read text
