lib/eval/eval.ml: Array Float List Lr_bitvec Lr_netlist
