lib/eval/eval.mli: Lr_bitvec Lr_netlist
