(** Cut-based AIG rewriting (the DAG-aware rewriting of ABC's [rewrite]).

    For every AND node a set of 4-feasible cuts is enumerated; the node's
    function over each cut (a 16-bit truth table) is resynthesised from its
    ISOP (both polarities), and the candidate is costed {e exactly} against
    the structural hash of the output graph — nodes already present are
    free, so the pass exploits sharing a purely local rebuild cannot see.
    The cheapest implementation (including the node's original structure)
    is kept, so the result never has more AND nodes than a plain rebuild.

    Function preservation is guaranteed by construction and double-checked
    by the property tests. *)

val cut_rewrite : ?max_cuts:int -> Aig.t -> Aig.t
(** [max_cuts] bounds the cuts kept per node (default 8). *)
