(** And-inverter graphs.

    The optimization intermediate form, as in ABC: two-input AND nodes with
    complemented edges, structurally hashed on construction. Node 0 is the
    constant false; nodes [1 .. num_inputs] are the primary inputs; AND
    nodes follow in topological order. A {e literal} is [2*node + phase]
    with phase 1 meaning complemented.

    Conversion to {!Lr_netlist.Netlist} maps AND nodes to [And2] gates and
    complemented edges to inverters, so the contest size metric (2-input
    gates) equals {!num_ands} after conversion. *)

type t
type lit = int

val create : num_inputs:int -> num_outputs:int -> t

val num_inputs : t -> int
val num_outputs : t -> int
val num_nodes : t -> int
val num_ands : t -> int

val lit_false : lit
val lit_true : lit
val input_lit : t -> int -> lit
val not_lit : lit -> lit
val lit_node : lit -> int
val lit_phase : lit -> bool

val and_lit : t -> lit -> lit -> lit

(** Strash probe: the literal [and_lit] would return {e if no new node had
    to be created} — constant folds, idempotence and existing table hits —
    or [None] when a fresh AND node would be needed. Never mutates. *)
val lookup_and : t -> lit -> lit -> lit option
val or_lit : t -> lit -> lit -> lit
val xor_lit : t -> lit -> lit -> lit
val mux_lit : t -> sel:lit -> then_:lit -> else_:lit -> lit

val fanins : t -> int -> lit * lit
(** Fanins of an AND node (fails on constants and inputs). *)

val is_and : t -> int -> bool

val set_output : t -> int -> lit -> unit
val output : t -> int -> lit

val simulate : t -> int64 array -> int64 array
(** Word-parallel simulation of the primary outputs (64 patterns/word). *)

val simulate_nodes : t -> int64 array -> int64 array
(** Same, but returns the value word of {e every node} (indexed by node id,
    uncomplemented) — the raw material of fraig signatures. *)

val of_netlist : Lr_netlist.Netlist.t -> t
val to_netlist :
  ?input_names:string array -> ?output_names:string array -> t ->
  Lr_netlist.Netlist.t

val compact : t -> t
(** Rebuild keeping only nodes reachable from the outputs. *)
