(** AIGER interchange (ASCII [aag] variant, combinational subset).

    The de-facto exchange format of the logic-synthesis and model-checking
    world; reading and writing it lets this library trade circuits with
    ABC, aigtoaig, nuXmv and friends. Latches are not produced and are
    rejected on input (the contest circuits are combinational). *)

val write : ?comment:string -> Aig.t -> string
(** Serialise to ASCII AIGER. Input/output symbol entries [i<k>]/[o<k>] are
    emitted with generic names. *)

val read : string -> Aig.t
(** Parse ASCII AIGER. Raises [Failure] on malformed input or on a file
    with latches. *)

val write_file : ?comment:string -> Aig.t -> string -> unit
val read_file : string -> Aig.t
