lib/aig/rewrite.ml: Aig Array Fun Hashtbl List Lr_bdd Lr_cube
