lib/aig/aiger.ml: Aig Array Buffer Fun Hashtbl List Printf String
