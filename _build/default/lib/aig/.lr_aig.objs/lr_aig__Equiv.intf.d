lib/aig/equiv.mli: Aig Lr_bitvec Lr_netlist
