lib/aig/aig.ml: Array Hashtbl Int64 Lr_netlist Printf
