lib/aig/fraig.ml: Aig Array Fun Hashtbl Int64 List Lr_bitvec Lr_sat
