lib/aig/fraig.mli: Aig Lr_bitvec
