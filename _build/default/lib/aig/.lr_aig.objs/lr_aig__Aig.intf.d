lib/aig/aig.mli: Lr_netlist
