lib/aig/opt.mli: Aig Lr_bitvec
