lib/aig/equiv.ml: Aig Array Int64 Lr_bitvec Lr_netlist Lr_sat
