lib/aig/opt.ml: Aig Array Fraig Hashtbl List Rewrite
