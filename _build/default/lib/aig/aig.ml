module N = Lr_netlist.Netlist

type lit = int

type t = {
  ni : int;
  no : int;
  mutable fanin0 : int array; (* per node; meaningless below first AND *)
  mutable fanin1 : int array;
  mutable len : int;
  strash : (int * int, int) Hashtbl.t;
  outputs : int array;
}

let create ~num_inputs ~num_outputs =
  let len = 1 + num_inputs in
  {
    ni = num_inputs;
    no = num_outputs;
    fanin0 = Array.make (max 16 (2 * len)) 0;
    fanin1 = Array.make (max 16 (2 * len)) 0;
    len;
    strash = Hashtbl.create 1024;
    outputs = Array.make num_outputs 0;
  }

let num_inputs t = t.ni
let num_outputs t = t.no
let num_nodes t = t.len
let num_ands t = t.len - 1 - t.ni

let lit_false = 0
let lit_true = 1

let input_lit t i =
  if i < 0 || i >= t.ni then invalid_arg "Aig.input_lit: bad index";
  2 * (1 + i)

let not_lit l = l lxor 1
let lit_node l = l lsr 1
let lit_phase l = l land 1 = 1

let is_and t n = n > t.ni && n < t.len

let fanins t n =
  if not (is_and t n) then invalid_arg "Aig.fanins: not an AND node";
  t.fanin0.(n), t.fanin1.(n)

let and_lit t a b =
  let a, b = if a <= b then a, b else b, a in
  if a = lit_false then lit_false
  else if a = lit_true then b
  else if a = b then a
  else if a = not_lit b then lit_false
  else
    match Hashtbl.find_opt t.strash (a, b) with
    | Some n -> 2 * n
    | None ->
        if t.len = Array.length t.fanin0 then begin
          let cap = 2 * t.len in
          let extend arr =
            let x = Array.make cap 0 in
            Array.blit arr 0 x 0 t.len;
            x
          in
          t.fanin0 <- extend t.fanin0;
          t.fanin1 <- extend t.fanin1
        end;
        let n = t.len in
        t.fanin0.(n) <- a;
        t.fanin1.(n) <- b;
        t.len <- t.len + 1;
        Hashtbl.replace t.strash (a, b) n;
        2 * n

let lookup_and t a b =
  let a, b = if a <= b then a, b else b, a in
  if a = lit_false then Some lit_false
  else if a = lit_true then Some b
  else if a = b then Some a
  else if a = not_lit b then Some lit_false
  else
    match Hashtbl.find_opt t.strash (a, b) with
    | Some n -> Some (2 * n)
    | None -> None

let or_lit t a b = not_lit (and_lit t (not_lit a) (not_lit b))

let xor_lit t a b =
  (* a xor b = (a + b)(~a + ~b), three ANDs after sharing *)
  and_lit t (or_lit t a b) (not_lit (and_lit t a b))

let mux_lit t ~sel ~then_ ~else_ =
  or_lit t (and_lit t sel then_) (and_lit t (not_lit sel) else_)

let set_output t i l =
  if i < 0 || i >= t.no then invalid_arg "Aig.set_output: bad index";
  t.outputs.(i) <- l

let output t i =
  if i < 0 || i >= t.no then invalid_arg "Aig.output: bad index";
  t.outputs.(i)

let simulate_nodes t input_words =
  if Array.length input_words <> t.ni then
    invalid_arg "Aig.simulate_nodes: wrong input count";
  let v = Array.make t.len 0L in
  for i = 0 to t.ni - 1 do
    v.(1 + i) <- input_words.(i)
  done;
  for n = t.ni + 1 to t.len - 1 do
    let l0 = t.fanin0.(n) and l1 = t.fanin1.(n) in
    let w0 = v.(lit_node l0) in
    let w0 = if lit_phase l0 then Int64.lognot w0 else w0 in
    let w1 = v.(lit_node l1) in
    let w1 = if lit_phase l1 then Int64.lognot w1 else w1 in
    v.(n) <- Int64.logand w0 w1
  done;
  v

let simulate t input_words =
  let v = simulate_nodes t input_words in
  Array.map
    (fun l ->
      let w = v.(lit_node l) in
      if lit_phase l then Int64.lognot w else w)
    t.outputs

let of_netlist c =
  let t = create ~num_inputs:(N.num_inputs c) ~num_outputs:(N.num_outputs c) in
  let map = Array.make (N.num_nodes c) lit_false in
  for n = 0 to N.num_nodes c - 1 do
    map.(n) <-
      (match N.gate c n with
      | N.Const b -> if b then lit_true else lit_false
      | N.Input i -> input_lit t i
      | N.Not a -> not_lit map.(a)
      | N.And2 (a, b) -> and_lit t map.(a) map.(b)
      | N.Or2 (a, b) -> or_lit t map.(a) map.(b)
      | N.Xor2 (a, b) -> xor_lit t map.(a) map.(b)
      | N.Nand2 (a, b) -> not_lit (and_lit t map.(a) map.(b))
      | N.Nor2 (a, b) -> not_lit (or_lit t map.(a) map.(b))
      | N.Xnor2 (a, b) -> not_lit (xor_lit t map.(a) map.(b)))
  done;
  for o = 0 to N.num_outputs c - 1 do
    set_output t o map.(N.output c o)
  done;
  t

let default_names prefix n = Array.init n (fun i -> Printf.sprintf "%s%d" prefix i)

let to_netlist ?input_names ?output_names t =
  let input_names =
    match input_names with Some a -> a | None -> default_names "i" t.ni
  in
  let output_names =
    match output_names with Some a -> a | None -> default_names "o" t.no
  in
  let c = N.create ~input_names ~output_names in
  let map = Array.make t.len (N.const_false c) in
  map.(0) <- N.const_false c;
  for i = 0 to t.ni - 1 do
    map.(1 + i) <- N.input c i
  done;
  let node_of l =
    let n = map.(lit_node l) in
    if lit_phase l then N.not_ c n else n
  in
  for n = t.ni + 1 to t.len - 1 do
    map.(n) <- N.and_ c (node_of t.fanin0.(n)) (node_of t.fanin1.(n))
  done;
  for o = 0 to t.no - 1 do
    N.set_output c o (node_of t.outputs.(o))
  done;
  c

let compact t =
  let reach = Array.make t.len false in
  let rec visit n =
    if not reach.(n) then begin
      reach.(n) <- true;
      if is_and t n then begin
        visit (lit_node t.fanin0.(n));
        visit (lit_node t.fanin1.(n))
      end
    end
  in
  Array.iter (fun l -> visit (lit_node l)) t.outputs;
  let t' = create ~num_inputs:t.ni ~num_outputs:t.no in
  let map = Array.make t.len lit_false in
  for i = 0 to t.ni - 1 do
    map.(1 + i) <- input_lit t' i
  done;
  let map_lit l = map.(lit_node l) lxor (l land 1) in
  for n = t.ni + 1 to t.len - 1 do
    if reach.(n) then
      map.(n) <- and_lit t' (map_lit t.fanin0.(n)) (map_lit t.fanin1.(n))
  done;
  Array.iteri (fun o l -> set_output t' o (map_lit l)) t.outputs;
  t'
