lib/fbdt/fbdt.mli: Lr_bitvec Lr_cube Oracle
