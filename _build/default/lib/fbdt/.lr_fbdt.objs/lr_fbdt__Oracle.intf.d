lib/fbdt/oracle.mli: Lr_bitvec
