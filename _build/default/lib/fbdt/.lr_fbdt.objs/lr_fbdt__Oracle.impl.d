lib/fbdt/oracle.ml: Array Lr_bitvec
