lib/fbdt/fbdt.ml: Array Buffer Float Fun List Lr_bitvec Lr_cube Lr_sampling Oracle Printf Queue
