type t = {
  arity : int;
  query : Lr_bitvec.Bv.t array -> bool array;
  exhausted : unit -> bool;
}

let of_fun ~arity f =
  { arity; query = Array.map f; exhausted = (fun () -> false) }
