(** Free-binary-decision-tree circuit learning — Algorithm 2 of the paper.

    Starting from the empty cube, nodes are explored in levelized (FIFO)
    order. At each node the constrained {e PatternSampling} statistics pick
    the most significant free input, on which the node's function is
    Shannon-expanded; nodes whose sampled output is constant become leaves.
    The learned function is returned as {e both} the onset cover (cubes of
    1-leaves) and the offset cover (cubes of 0-leaves), so downstream code
    can apply the paper's onset-or-offset choice and use the rest as
    don't-care for two-level minimization.

    The three "useful tricks" of Section IV-D are implemented:
    - {e conquering small functions}: {!learn_exhaustive} enumerates all
      minterms over a small identified support;
    - {e onset/offset choice}: both covers are returned, plus the sampled
      global truth ratio to drive the choice;
    - {e early stopping}: [leaf_epsilon] treats a node with truth ratio
      within epsilon of 0 or 1 as a constant leaf. *)

type config = {
  node_rounds : int;  (** r for in-tree sampling; the paper uses 60 *)
  biases : float array;  (** 0/1-density mix for the random assignments *)
  leaf_epsilon : float;
      (** early-stopping deviation on the truth ratio; 0 disables *)
  max_nodes : int;  (** safety cap on expanded nodes *)
}

val default_config : config

(** The explicit decision tree. Each non-terminal node carries the five
    attributes of Section IV-D: its control variable, its cube (the path
    constraint from the root), its function (implicitly, [F] cofactored by
    the cube — queryable through the oracle), and its two children. *)
type tree =
  | Leaf of {
      cube : Lr_cube.Cube.t;
      value : bool;
      approximate : bool;
          (** true when the budget forced a majority guess (Algorithm 2's
              TimeLimit branch) or the support was exhausted *)
    }
  | Split of {
      cube : Lr_cube.Cube.t;
      var : int;  (** the most significant input at this node *)
      low : tree;  (** cofactor on [var = 0] *)
      high : tree;
    }

val tree_depth : tree -> int
val tree_leaves : tree -> int

val classify : tree -> Lr_bitvec.Bv.t -> bool
(** Walk the tree on a (virtual) assignment. Agrees with the onset cover. *)

val tree_to_dot : ?graph_name:string -> names:(int -> string) -> tree -> string
(** Graphviz rendering (Figure 4 of the paper, mechanically). Leaves are
    boxes labelled 0/1 (dashed when approximate); splits are circles
    labelled with their control variable. *)

type result = {
  onset : Lr_cube.Cover.t;
  offset : Lr_cube.Cover.t;
  truth_ratio : float;  (** sampled at the root *)
  complete : bool;
      (** false when the budget ran out and open nodes were approximated *)
  nodes_expanded : int;
  tree : tree option;  (** the FBDT itself ({!learn} only) *)
  table : bool array option;
      (** {!learn_exhaustive} only: the raw truth table over the support
          (bit [j] of the index = support element [j]), which lets callers
          collapse the function to a BDD in linear time instead of going
          through the minterm covers. *)
}

val learn :
  ?support:int list ->
  config ->
  rng:Lr_bitvec.Rng.t ->
  Oracle.t ->
  result
(** Build the FBDT. [support] restricts branching variables (from support
    identification); unsampled inputs are still randomised in queries, so an
    under-approximated support degrades accuracy, never soundness. *)

val learn_exhaustive :
  rng:Lr_bitvec.Rng.t -> support:int list -> Oracle.t -> result
(** The small-function conquest: query all [2^|support|] minterms (inputs
    outside the support pinned to 0) and return exact minterm covers.
    Requires [|support| <= 20]. *)
