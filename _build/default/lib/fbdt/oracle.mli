(** A single-output query oracle over a {e virtual} input space.

    The FBDT learner is generic over what an "input" is: for a plain output
    it is the black-box's primary inputs; after comparator-based input
    compression some virtual inputs are {e delegates} standing for whole
    bus pairs. The learner only needs to ask "what is the output under this
    virtual assignment?", batched, and "is the budget spent?". *)

type t = {
  arity : int;  (** number of virtual inputs *)
  query : Lr_bitvec.Bv.t array -> bool array;
      (** batched: one [arity]-bit virtual assignment per element *)
  exhausted : unit -> bool;  (** the TimeLimit test of Algorithm 2 *)
}

val of_fun : arity:int -> (Lr_bitvec.Bv.t -> bool) -> t
(** Convenience constructor with no budget (never exhausted). *)
