module Bv = Lr_bitvec.Bv

type t = { n : int; cubes : Cube.t list }

let universe t = t.n
let cubes t = t.cubes
let num_cubes t = List.length t.cubes
let num_literals t =
  List.fold_left (fun acc c -> acc + Cube.num_literals c) 0 t.cubes

let empty n = { n; cubes = [] }

let of_cubes n cubes =
  List.iter
    (fun c ->
      if Cube.universe c <> n then
        invalid_arg "Cover.of_cubes: cube universe mismatch")
    cubes;
  { n; cubes }

let add t c =
  if Cube.universe c <> t.n then invalid_arg "Cover.add: universe mismatch";
  { t with cubes = c :: t.cubes }

let eval t a = List.exists (fun c -> Cube.satisfies c a) t.cubes

let dedup t = { t with cubes = List.sort_uniq Cube.compare t.cubes }

let single_cube_containment t =
  let keep c others =
    not (List.exists (fun c' -> (not (Cube.equal c c')) && Cube.contains c' c) others)
  in
  (* Deduplicate first so equal cubes don't protect each other. *)
  let dedup = List.sort_uniq Cube.compare t.cubes in
  { t with cubes = List.filter (fun c -> keep c dedup) dedup }

(* Adjacency merging to fixpoint. Two cubes merge when they share their
   care set and differ in exactly one phase, so we bucket cubes by care
   set and look partners up by hashing the value pattern with one bit
   flipped — linear in cubes x literals per round instead of quadratic. *)
let merge_pass t =
  let rec fixpoint cubes =
    let buckets : (string, (string, Cube.t) Hashtbl.t) Hashtbl.t =
      Hashtbl.create 64
    in
    List.iter
      (fun c ->
        let key =
          (* care set alone; the PLA string encodes care+value, so mask
             values out by replacing 0/1 with a common marker *)
          String.map
            (fun ch -> if ch = '-' then '-' else 'x')
            (Cube.to_string c)
        in
        let bucket =
          match Hashtbl.find_opt buckets key with
          | Some b -> b
          | None ->
              let b = Hashtbl.create 16 in
              Hashtbl.replace buckets key b;
              b
        in
        Hashtbl.replace bucket (Cube.to_string c) c)
      cubes;
    let merged = ref false in
    let out = ref [] in
    Hashtbl.iter
      (fun _ bucket ->
        let consumed = Hashtbl.create 16 in
        Hashtbl.iter
          (fun key c ->
            if not (Hashtbl.mem consumed key) then begin
              let partner =
                List.find_map
                  (fun (v, ph) ->
                    let flipped = Cube.to_string (Cube.add (Cube.remove c v) v (not ph)) in
                    if Hashtbl.mem consumed flipped then None
                    else
                      Option.map
                        (fun c' -> (flipped, Cube.remove c' v))
                        (Hashtbl.find_opt bucket flipped))
                  (Cube.literals c)
              in
              match partner with
              | Some (partner_key, m) when partner_key <> key ->
                  Hashtbl.replace consumed key ();
                  Hashtbl.replace consumed partner_key ();
                  merged := true;
                  out := m :: !out
              | Some _ | None -> out := c :: !out
            end)
          bucket)
      buckets;
    let cubes' = List.sort_uniq Cube.compare !out in
    if !merged then fixpoint cubes' else cubes'
  in
  let merged = { t with cubes = fixpoint (List.sort_uniq Cube.compare t.cubes) } in
  if num_cubes merged <= 1024 then single_cube_containment merged
  else merged

let complement_exhaustive t =
  if t.n > 20 then invalid_arg "Cover.complement_exhaustive: universe too big";
  let out = ref [] in
  let a = Bv.create t.n in
  for m = 0 to (1 lsl t.n) - 1 do
    for v = 0 to t.n - 1 do
      Bv.set a v ((m lsr v) land 1 = 1)
    done;
    if not (eval t a) then begin
      let c = ref (Cube.top t.n) in
      for v = 0 to t.n - 1 do
        c := Cube.add !c v (Bv.get a v)
      done;
      out := !c :: !out
    end
  done;
  { t with cubes = !out }

let pp ~names ppf t =
  if t.cubes = [] then Format.pp_print_string ppf "0"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
      (Cube.pp ~names) ppf t.cubes

let to_pla t = String.concat "\n" (List.map Cube.to_string t.cubes)

let of_pla s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> empty 0
  | first :: _ ->
      let n = String.length first in
      of_cubes n (List.map Cube.of_string lines)
