lib/cube/cover.ml: Cube Format Hashtbl List Lr_bitvec Option String
