lib/cube/cover.mli: Cube Format Lr_bitvec
