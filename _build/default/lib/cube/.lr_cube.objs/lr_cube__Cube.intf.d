lib/cube/cube.mli: Format Lr_bitvec
