lib/cube/cube.ml: Format Hashtbl List Lr_bitvec Stdlib String
