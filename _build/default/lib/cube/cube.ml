module Bv = Lr_bitvec.Bv

type t = { n : int; care : Bv.t; value : Bv.t }

let universe t = t.n

let top n = { n; care = Bv.create n; value = Bv.create n }

let has_var t v = Bv.get t.care v

let phase t v =
  if not (has_var t v) then invalid_arg "Cube.phase: variable absent";
  Bv.get t.value v

let add t v ph =
  if has_var t v then
    if Bv.get t.value v = ph then t
    else invalid_arg "Cube.add: contradictory literal"
  else begin
    let care = Bv.copy t.care and value = Bv.copy t.value in
    Bv.set care v true;
    Bv.set value v ph;
    { t with care; value }
  end

let remove t v =
  if not (has_var t v) then t
  else begin
    let care = Bv.copy t.care and value = Bv.copy t.value in
    Bv.set care v false;
    Bv.set value v false;
    { t with care; value }
  end

let of_literals n lits =
  List.fold_left (fun c (v, ph) -> add c v ph) (top n) lits

let literals t =
  let acc = ref [] in
  for v = t.n - 1 downto 0 do
    if has_var t v then acc := (v, Bv.get t.value v) :: !acc
  done;
  !acc

let num_literals t = Bv.popcount t.care

let satisfies t a =
  let ok = ref true in
  for v = 0 to t.n - 1 do
    if !ok && has_var t v && Bv.get a v <> Bv.get t.value v then ok := false
  done;
  !ok

let force t a =
  for v = 0 to t.n - 1 do
    if has_var t v then Bv.set a v (Bv.get t.value v)
  done

let contains big small =
  (* big ⊇ small iff every literal of big appears in small with same phase *)
  let ok = ref true in
  for v = 0 to big.n - 1 do
    if !ok && Bv.get big.care v then
      if not (Bv.get small.care v) || Bv.get small.value v <> Bv.get big.value v
      then ok := false
  done;
  !ok

let intersect a b =
  let care = Bv.copy a.care and value = Bv.copy a.value in
  let conflict = ref false in
  for v = 0 to a.n - 1 do
    if Bv.get b.care v then
      if Bv.get a.care v then begin
        if Bv.get a.value v <> Bv.get b.value v then conflict := true
      end
      else begin
        Bv.set care v true;
        Bv.set value v (Bv.get b.value v)
      end
  done;
  if !conflict then None else Some { a with care; value }

let distance a b =
  let d = ref 0 in
  for v = 0 to a.n - 1 do
    if Bv.get a.care v && Bv.get b.care v && Bv.get a.value v <> Bv.get b.value v
    then incr d
  done;
  !d

let merge_adjacent a b =
  if not (Bv.equal a.care b.care) then None
  else begin
    let diff = ref (-1) and count = ref 0 in
    for v = 0 to a.n - 1 do
      if Bv.get a.care v && Bv.get a.value v <> Bv.get b.value v then begin
        diff := v;
        incr count
      end
    done;
    if !count = 1 then Some (remove a !diff) else None
  end

let equal a b = a.n = b.n && Bv.equal a.care b.care && Bv.equal a.value b.value

let compare a b =
  let c = Stdlib.compare a.n b.n in
  if c <> 0 then c
  else
    let c = Bv.compare a.care b.care in
    if c <> 0 then c else Bv.compare a.value b.value

let hash t = Hashtbl.hash (t.n, Bv.hash t.care, Bv.hash t.value)

let pp ~names ppf t =
  let lits = literals t in
  if lits = [] then Format.pp_print_string ppf "1"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "&")
      (fun ppf (v, ph) ->
        if not ph then Format.pp_print_string ppf "~";
        Format.pp_print_string ppf (names v))
      ppf lits

let to_string t =
  String.init t.n (fun i ->
      let v = t.n - 1 - i in
      if not (has_var t v) then '-' else if Bv.get t.value v then '1' else '0')

let of_string s =
  let n = String.length s in
  let c = ref (top n) in
  String.iteri
    (fun i ch ->
      let v = n - 1 - i in
      match ch with
      | '-' -> ()
      | '1' -> c := add !c v true
      | '0' -> c := add !c v false
      | _ -> invalid_arg "Cube.of_string: expected '0', '1' or '-'")
    s;
  !c
