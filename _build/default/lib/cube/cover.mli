(** Sum-of-products covers: a disjunction of {!Cube.t}.

    The FBDT learner of the paper emits its result as a cover (the cubes of
    the constant-1 leaves, or of the constant-0 leaves when the offset is
    smaller). Covers feed circuit construction and two-level minimization. *)

type t

val universe : t -> int
val cubes : t -> Cube.t list
val num_cubes : t -> int
val num_literals : t -> int

val empty : int -> t
(** The constant-false cover over [n] variables. *)

val of_cubes : int -> Cube.t list -> t

val add : t -> Cube.t -> t

val eval : t -> Lr_bitvec.Bv.t -> bool
(** [eval t a] — is the full assignment [a] covered? *)

val dedup : t -> t
(** Drop exact duplicate cubes (cheap: sort and unique). *)

val single_cube_containment : t -> t
(** Drop every cube contained in another cube of the cover. *)

val merge_pass : t -> t
(** Repeatedly apply the adjacency law [xc + x'c = c] between cube pairs
    until a fixpoint; a cheap pre-minimization before espresso. *)

val complement_exhaustive : t -> t
(** Exact complement by minterm enumeration; only for universes of up to 20
    variables (used by tests as a reference implementation). *)

val pp : names:(int -> string) -> Format.formatter -> t -> unit
val to_pla : t -> string
(** One PLA-style line per cube (see {!Cube.to_string}). *)

val of_pla : string -> t
(** Parse the output of {!to_pla}. Lines are separated by newlines; empty
    lines ignored. An empty string yields the constant-false cover over 0
    variables, so supply at least one cube for a meaningful universe. *)
