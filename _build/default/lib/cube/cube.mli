(** Cubes: conjunctions of literals over variables [0 .. n-1].

    A cube is represented by two bit-sets over the variable universe: [care]
    marks the variables that appear as literals, and [value] gives the phase
    of each caring variable (1 = positive literal). The empty cube (no
    literals) is the constant-true function; in Algorithm 2 it seeds the
    FBDT queue. *)

type t

val universe : t -> int
(** Number of variables in the universe the cube lives in. *)

val top : int -> t
(** [top n] is the empty (tautological) cube over [n] variables. *)

val of_literals : int -> (int * bool) list -> t
(** [of_literals n lits] builds a cube from [(var, phase)] pairs.
    Raises [Invalid_argument] on a contradictory pair (v, true)/(v, false). *)

val literals : t -> (int * bool) list
(** Literals in increasing variable order. *)

val num_literals : t -> int

val has_var : t -> int -> bool
val phase : t -> int -> bool
(** [phase t v] requires [has_var t v]. *)

val add : t -> int -> bool -> t
(** [add t v ph] extends the cube with a literal. Raises [Invalid_argument]
    if [v] already occurs with the opposite phase. *)

val remove : t -> int -> t

val satisfies : t -> Lr_bitvec.Bv.t -> bool
(** [satisfies t a] — does the full assignment [a] lie inside the cube? *)

val force : t -> Lr_bitvec.Bv.t -> unit
(** [force t a] overwrites the caring positions of assignment [a] with the
    cube's phases, i.e. projects [a] into the cube. *)

val contains : t -> t -> bool
(** [contains big small]: every assignment of [small] lies in [big]
    (cube single containment: [big]'s literals are a subset of [small]'s). *)

val intersect : t -> t -> t option
(** Conjunction of two cubes; [None] if they conflict on some variable. *)

val distance : t -> t -> int
(** Number of variables on which the two cubes have opposite phases. *)

val merge_adjacent : t -> t -> t option
(** [merge_adjacent a b] combines two cubes that differ in exactly one
    variable's phase and agree elsewhere, dropping that variable (the
    consensus/adjacency law [xc + x'c = c]); [None] otherwise. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : names:(int -> string) -> Format.formatter -> t -> unit
val to_string : t -> string
(** Positional rendering over the universe: '1' positive, '0' negative,
    '-' absent — the PLA convention. *)

val of_string : string -> t
(** Inverse of {!to_string}. *)
