lib/core/config.mli:
