lib/core/learner.mli: Config Lr_blackbox Lr_netlist Lr_templates
