lib/core/learner.ml: Array Config Fun Hashtbl List Lr_aig Lr_bdd Lr_bitvec Lr_blackbox Lr_cube Lr_fbdt Lr_grouping Lr_netlist Lr_sampling Lr_templates Option Unix
