lib/core/config.ml:
