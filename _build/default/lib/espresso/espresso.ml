module Cube = Lr_cube.Cube
module Cover = Lr_cube.Cover

let cofactor_cover cover cube =
  let n = Cover.universe cover in
  let cubes =
    List.filter_map
      (fun d ->
        match Cube.intersect d cube with
        | None -> None
        | Some _ ->
            (* erase the cofactoring literals from d *)
            let d' =
              List.fold_left
                (fun acc (v, _) -> Cube.remove acc v)
                d (Cube.literals cube)
            in
            Some d')
      (Cover.cubes cover)
  in
  Cover.of_cubes n cubes

(* Shannon-split tautology. Always terminates: each recursion eliminates a
   variable that occurs in some cube, and a cover whose cubes are all empty
   is decided immediately. *)
let rec tautology cover =
  let cubes = Cover.cubes cover in
  if List.exists (fun c -> Cube.num_literals c = 0) cubes then true
  else if cubes = [] then false
  else begin
    let n = Cover.universe cover in
    (* split on the most frequently used variable *)
    let freq = Array.make n 0 in
    List.iter
      (fun c -> List.iter (fun (v, _) -> freq.(v) <- freq.(v) + 1) (Cube.literals c))
      cubes;
    let v = ref 0 in
    for i = 1 to n - 1 do
      if freq.(i) > freq.(!v) then v := i
    done;
    let branch ph =
      let lit = Cube.add (Cube.top n) !v ph in
      tautology (cofactor_cover cover lit)
    in
    branch false && branch true
  end

let covers_cube cover cube = tautology (cofactor_cover cover cube)

let intersects_cover cube cover =
  List.exists
    (fun d -> Option.is_some (Cube.intersect cube d))
    (Cover.cubes cover)

(* Shannon-recursive complement: ~F = v.~(F|v) + ~v.~(F|~v), with the usual
   special cases. Splitting on the most frequent variable keeps the
   recursion shallow on typical covers. *)
let rec complement cover =
  let n = Cover.universe cover in
  let cubes = Cover.cubes cover in
  if cubes = [] then Cover.of_cubes n [ Cube.top n ]
  else if List.exists (fun c -> Cube.num_literals c = 0) cubes then
    Cover.empty n
  else begin
    let freq = Array.make n 0 in
    List.iter
      (fun c ->
        List.iter (fun (v, _) -> freq.(v) <- freq.(v) + 1) (Cube.literals c))
      cubes;
    let v = ref 0 in
    for i = 1 to n - 1 do
      if freq.(i) > freq.(!v) then v := i
    done;
    let branch ph =
      let lit = Cube.add (Cube.top n) !v ph in
      let sub = complement (cofactor_cover cover lit) in
      List.filter_map
        (fun c -> if Cube.has_var c !v then None else Some (Cube.add c !v ph))
        (Cover.cubes sub)
    in
    Cover.of_cubes n (branch false @ branch true)
    |> Cover.single_cube_containment
  end

let supercube cover =
  match Cover.cubes cover with
  | [] -> None
  | first :: rest ->
      let n = Cover.universe cover in
      let keep acc c =
        (* retain only the literals on which every cube agrees *)
        List.fold_left
          (fun acc (v, ph) ->
            if Cube.has_var c v && Cube.phase c v = ph then acc
            else Cube.remove acc v)
          acc (Cube.literals acc)
      in
      ignore n;
      Some (List.fold_left keep first rest)

let expand ~onset ~offset =
  let expand_cube c =
    (* try dropping literals one at a time, biggest win first: a literal
       whose removal is blocked now may become droppable later, so a single
       greedy sweep in variable order is the espresso-lite compromise *)
    List.fold_left
      (fun c (v, _) ->
        let attempt = Cube.remove c v in
        if intersects_cover attempt offset then c else attempt)
      c (Cube.literals c)
  in
  Cover.of_cubes (Cover.universe onset)
    (List.map expand_cube (Cover.cubes onset))

let irredundant cover =
  let cover = Cover.single_cube_containment cover in
  let rec filter kept = function
    | [] -> List.rev kept
    | c :: rest ->
        let others = Cover.of_cubes (Cover.universe cover) (List.rev_append kept rest) in
        if covers_cube others c then filter kept rest
        else filter (c :: kept) rest
  in
  Cover.of_cubes (Cover.universe cover) (filter [] (Cover.cubes cover))

(* REDUCE: each cube shrinks to the supercube of the onset points it alone
   covers. The uncovered part of [c] is c AND NOT(others), computed in the
   subspace of [c] via cofactoring and recursive complementation. *)
let reduce ~onset =
  let n = Cover.universe onset in
  let rec walk done_ = function
    | [] -> List.rev done_
    | c :: rest ->
        let others = Cover.of_cubes n (List.rev_append done_ rest) in
        let inside = cofactor_cover others c in
        let uncovered = complement inside in
        let reduced =
          match supercube uncovered with
          | None ->
              (* fully covered by the others: keep for irredundant to drop *)
              c
          | Some s -> (
              match Cube.intersect c s with Some r -> r | None -> c)
        in
        walk (reduced :: done_) rest
  in
  Cover.of_cubes n (walk [] (Cover.cubes onset))

let cover_cost c = (Cover.num_cubes c, Cover.num_literals c)

let minimize ?(max_rounds = 4) ?(use_reduce = false) ~onset ~offset () =
  let rec loop round best =
    if round >= max_rounds then best
    else begin
      let candidate =
        best
        |> (fun c -> if use_reduce && round > 0 then reduce ~onset:c else c)
        |> (fun c -> expand ~onset:c ~offset)
        |> Cover.merge_pass |> irredundant
      in
      if cover_cost candidate < cover_cost best then loop (round + 1) candidate
      else best
    end
  in
  loop 0 (Cover.merge_pass onset)

let consistent ~cover ~onset ~offset =
  List.for_all (fun c -> covers_cube cover c) (Cover.cubes onset)
  && List.for_all
       (fun c -> not (intersects_cover c offset))
       (Cover.cubes cover)
