lib/espresso/espresso.ml: Array List Lr_cube Option
