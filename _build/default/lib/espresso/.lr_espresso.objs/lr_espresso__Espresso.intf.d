lib/espresso/espresso.mli: Lr_cube
