(** Two-level logic minimization in the espresso style.

    The FBDT learner naturally produces {e both} an onset cover (cubes of
    constant-1 leaves) and an offset cover (cubes of constant-0 leaves);
    everything outside both is don't-care from the learner's point of view.
    This module shrinks the onset cover against the offset:

    - {b expand}: greedily remove literals from each cube as long as the
      enlarged cube stays disjoint from the offset;
    - {b irredundant}: drop cubes covered by the rest of the cover;
    - {b merge}: adjacency-law merging (from {!Lr_cube.Cover.merge_pass});
    - {b reduce} (optional): shrink cubes to their essential parts so the
      next expand can move them — the escape hatch from local minima.

    Iterated to a bounded fixpoint this is the classic espresso loop.
    Decision-tree covers have pairwise-disjoint cubes, so REDUCE is off by
    default in the learner's use. *)

val tautology : Lr_cube.Cover.t -> bool
(** Exact cover tautology check by recursive Shannon splitting. *)

val covers_cube : Lr_cube.Cover.t -> Lr_cube.Cube.t -> bool
(** Does the cover contain every minterm of the cube? *)

val cofactor_cover : Lr_cube.Cover.t -> Lr_cube.Cube.t -> Lr_cube.Cover.t
(** The cover seen inside the cube's subspace (conflicting cubes dropped,
    the cube's literals erased). *)

val complement : Lr_cube.Cover.t -> Lr_cube.Cover.t
(** Recursive (Shannon) complementation of a cover — works on any universe
    size, unlike {!Lr_cube.Cover.complement_exhaustive}. The result is a
    correct cover of the complement, not necessarily minimal. *)

val supercube : Lr_cube.Cover.t -> Lr_cube.Cube.t option
(** Smallest single cube containing every cube of the cover
    ([None] for the empty cover). *)

val expand : onset:Lr_cube.Cover.t -> offset:Lr_cube.Cover.t -> Lr_cube.Cover.t
val irredundant : Lr_cube.Cover.t -> Lr_cube.Cover.t

val reduce : onset:Lr_cube.Cover.t -> Lr_cube.Cover.t
(** The espresso REDUCE step: shrink each cube to the smallest cube still
    covering the part of the onset no other cube covers. Reduction opens
    room for the next EXPAND to escape a local minimum. Semantics are
    preserved with respect to the onset (don't-care points may be given
    up). *)

val minimize :
  ?max_rounds:int ->
  ?use_reduce:bool ->
  onset:Lr_cube.Cover.t ->
  offset:Lr_cube.Cover.t ->
  unit ->
  Lr_cube.Cover.t
(** The full loop: (REDUCE ->) EXPAND -> merge -> IRREDUNDANT, iterated
    while the cost drops. [use_reduce] (default false) enables the REDUCE
    perturbation from round two onward — it helps escape local minima on
    hand-crafted PLAs but is a no-op on the disjoint covers a decision tree
    produces. The result covers every onset cube and intersects no offset
    cube (don't-care points may be absorbed either way). *)

val consistent :
  cover:Lr_cube.Cover.t ->
  onset:Lr_cube.Cover.t ->
  offset:Lr_cube.Cover.t ->
  bool
(** Verification predicate used by tests: [cover] ⊇ [onset] and
    [cover] ∩ [offset] = ∅. *)
