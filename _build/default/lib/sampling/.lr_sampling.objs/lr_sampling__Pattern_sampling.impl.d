lib/sampling/pattern_sampling.ml: Array Float Fun List Lr_bitvec Lr_blackbox Lr_cube
