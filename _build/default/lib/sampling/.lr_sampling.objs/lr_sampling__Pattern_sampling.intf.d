lib/sampling/pattern_sampling.mli: Lr_bitvec Lr_blackbox Lr_cube
