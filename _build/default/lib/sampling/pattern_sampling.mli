(** PatternSampling — Algorithm 1 of the paper.

    Given a black-box [F] and a constraining cube [c], draw [rounds] random
    full assignments satisfying [c] and, for every free input [i], count the
    number of assignments on which toggling [i] toggles the output — the
    {e dependency count} [D_i]. Also report the {e truth ratio}, the share of
    1s among all sampled output values.

    Two engineering deviations from the pseudo-code, both behaviour-
    preserving:

    - The paper draws a fresh assignment batch per input; we draw one batch
      per round shared by all inputs, so a round costs [|R| + 1] queries
      instead of [2·r·|R|]. The per-input toggle statistics are identically
      distributed.
    - The blackbox answers all outputs at once, so dependency counts and
      truth ratios are accumulated for {e every} output in the same pass;
      callers pick the output they care about. This mirrors how a contest
      implementation amortises support identification across outputs.

    The paper's observation that some outputs only respond to assignments
    with an uneven 0/1 ratio is honoured by cycling the density of the drawn
    patterns through [biases]. *)

type stats = {
  dependency : int array array;
      (** [dependency.(o).(i)] = D_i for output [o]; 0 for constrained inputs. *)
  ones : int array;  (** per-output count of sampled 1 values *)
  samples : int;  (** total sampled output values per output *)
  rounds : int;
}

val default_biases : float array
(** Mix of 0/1 densities used round-robin: even, strongly and mildly
    uneven — the "combined sampling strategy" of Section IV-C. *)

val run :
  rounds:int ->
  ?biases:float array ->
  rng:Lr_bitvec.Rng.t ->
  Lr_blackbox.Blackbox.t ->
  constraint_:Lr_cube.Cube.t ->
  unit ->
  stats
(** Executes the sampling. [constraint_] must live in the blackbox's input
    universe. Consumes [rounds * (free + 1)] queries where [free] is the
    number of unconstrained inputs. *)

val truth_ratio : stats -> output:int -> float

val support : stats -> output:int -> int list
(** S' = [{ i : D_i <> 0 }], increasing order. *)

val most_significant : stats -> output:int -> int option
(** argmax over the dependency counts; [None] when all counts are zero. *)

val is_constant : stats -> output:int -> bool option
(** [Some b] when every sampled value of the output was [b] — the leaf test
    of Algorithm 2. [None] when values were mixed. *)
