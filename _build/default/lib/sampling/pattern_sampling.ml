module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module Cube = Lr_cube.Cube
module Box = Lr_blackbox.Blackbox

type stats = {
  dependency : int array array;
  ones : int array;
  samples : int;
  rounds : int;
}

let default_biases = [| 0.5; 0.1; 0.9; 0.5; 0.25; 0.75; 0.5; 0.03; 0.97 |]

let run ~rounds ?(biases = default_biases) ~rng box ~constraint_ () =
  let ni = Box.num_inputs box and no = Box.num_outputs box in
  if Cube.universe constraint_ <> ni then
    invalid_arg "Pattern_sampling.run: constraint universe mismatch";
  let free =
    List.init ni Fun.id
    |> List.filter (fun i -> not (Cube.has_var constraint_ i))
  in
  let free = Array.of_list free in
  let nfree = Array.length free in
  let dependency = Array.make_matrix no ni 0 in
  let ones = Array.make no 0 in
  let samples = ref 0 in
  let done_rounds = ref 0 in
  (* Process rounds in blocks of 64 so each toggle column is one
     word-parallel query batch. *)
  while !done_rounds < rounds do
    let blk = min 64 (rounds - !done_rounds) in
    let bias = biases.(!done_rounds / 64 mod Array.length biases) in
    let base =
      Array.init blk (fun _ ->
          let a = Bv.random_biased rng bias ni in
          Cube.force constraint_ a;
          a)
    in
    let base_out = Box.query_many box base in
    Array.iter
      (fun out ->
        for o = 0 to no - 1 do
          if Bv.get out o then ones.(o) <- ones.(o) + 1
        done)
      base_out;
    samples := !samples + blk;
    for fi = 0 to nfree - 1 do
      let i = free.(fi) in
      let flipped =
        Array.map
          (fun a ->
            let a' = Bv.copy a in
            Bv.flip a' i;
            a')
          base
      in
      let flip_out = Box.query_many box flipped in
      for k = 0 to blk - 1 do
        for o = 0 to no - 1 do
          let v = Bv.get flip_out.(k) o in
          if v then ones.(o) <- ones.(o) + 1;
          if v <> Bv.get base_out.(k) o then
            dependency.(o).(i) <- dependency.(o).(i) + 1
        done
      done;
      samples := !samples + blk
    done;
    done_rounds := !done_rounds + blk
  done;
  { dependency; ones; samples = !samples; rounds }

let truth_ratio t ~output =
  if t.samples = 0 then 0.0
  else Float.of_int t.ones.(output) /. Float.of_int t.samples

let support t ~output =
  let d = t.dependency.(output) in
  List.init (Array.length d) Fun.id |> List.filter (fun i -> d.(i) <> 0)

let most_significant t ~output =
  let d = t.dependency.(output) in
  let best = ref (-1) and best_count = ref 0 in
  Array.iteri
    (fun i c ->
      if c > !best_count then begin
        best := i;
        best_count := c
      end)
    d;
  if !best < 0 then None else Some !best

let is_constant t ~output =
  if t.ones.(output) = 0 then Some false
  else if t.ones.(output) = t.samples then Some true
  else None
