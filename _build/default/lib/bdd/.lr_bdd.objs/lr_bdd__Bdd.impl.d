lib/bdd/bdd.ml: Array Float Hashtbl List Lr_bitvec Lr_cube
