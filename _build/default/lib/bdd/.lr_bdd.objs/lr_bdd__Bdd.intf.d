lib/bdd/bdd.mli: Lr_bitvec Lr_cube
