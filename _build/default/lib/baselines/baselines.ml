module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module Cube = Lr_cube.Cube
module Cover = Lr_cube.Cover
module N = Lr_netlist.Netlist
module B = Lr_netlist.Builder
module Box = Lr_blackbox.Blackbox
module Ps = Lr_sampling.Pattern_sampling

let mixture rng ni count =
  Array.init count (fun i ->
      let bias = [| 0.5; 0.8; 0.2 |].(i mod 3) in
      Bv.random_biased rng bias ni)

let sop_memorizer ?(samples = 2048) ?(support_rounds = 64) ~rng box =
  let ni = Box.num_inputs box and no = Box.num_outputs box in
  let stats =
    Ps.run ~rounds:support_rounds ~rng box ~constraint_:(Cube.top ni) ()
  in
  let patterns = mixture rng ni samples in
  let outs = Box.query_many box patterns in
  let c =
    N.create ~input_names:(Box.input_names box)
      ~output_names:(Box.output_names box)
  in
  let vars = Array.init ni (N.input c) in
  for o = 0 to no - 1 do
    let support = Ps.support stats ~output:o in
    let cube_of p =
      List.fold_left (fun cb v -> Cube.add cb v (Bv.get p v)) (Cube.top ni)
        support
    in
    let onset = ref [] in
    Array.iteri
      (fun i p -> if Bv.get outs.(i) o then onset := cube_of p :: !onset)
      patterns;
    let cover =
      Cover.of_cubes ni (List.sort_uniq Cube.compare !onset)
      (* one cheap merging pass: real memorizers deduplicate adjacent
         samples but cannot afford full minimization at this cube count *)
      |> Cover.single_cube_containment
    in
    N.set_output c o (B.sop c vars cover)
  done;
  c

(* ---------- ID3 ---------- *)

type example = { input : Bv.t; label : bool }

let entropy pos total =
  if total = 0 || pos = 0 || pos = total then 0.0
  else begin
    let p = Float.of_int pos /. Float.of_int total in
    let q = 1.0 -. p in
    -.((p *. Float.log p) +. (q *. Float.log q)) /. Float.log 2.0
  end

let count_pos examples = List.length (List.filter (fun e -> e.label) examples)

(* information gain of splitting [examples] on variable [v] *)
let gain examples v =
  let total = List.length examples in
  if total = 0 then 0.0
  else begin
    let e1, e0 = List.partition (fun e -> Bv.get e.input v) examples in
    let h xs = entropy (count_pos xs) (List.length xs) in
    let weighted =
      (Float.of_int (List.length e1) *. h e1
      +. Float.of_int (List.length e0) *. h e0)
      /. Float.of_int total
    in
    entropy (count_pos examples) total -. weighted
  end

type tree = Leaf of bool | Node of int * tree * tree  (* var, if0, if1 *)

let rec grow ~max_depth ~min_samples ~candidates examples depth =
  let total = List.length examples in
  let pos = count_pos examples in
  if pos = 0 then Leaf false
  else if pos = total then Leaf true
  else if depth >= max_depth || total < min_samples || candidates = [] then
    Leaf (2 * pos > total)
  else begin
    let best, best_gain =
      List.fold_left
        (fun (bv, bg) v ->
          let g = gain examples v in
          if g > bg then (v, g) else (bv, bg))
        (-1, 0.0) candidates
    in
    if best < 0 || best_gain <= 1e-9 then Leaf (2 * pos > total)
    else begin
      let e1, e0 = List.partition (fun e -> Bv.get e.input best) examples in
      let rest = List.filter (fun v -> v <> best) candidates in
      Node
        ( best,
          grow ~max_depth ~min_samples ~candidates:rest e0 (depth + 1),
          grow ~max_depth ~min_samples ~candidates:rest e1 (depth + 1) )
    end
  end

(* unroll the tree into the cubes of its 1-paths *)
let tree_cubes ni tree =
  let rec go prefix = function
    | Leaf true -> [ prefix ]
    | Leaf false -> []
    | Node (v, t0, t1) ->
        go (Cube.add prefix v false) t0 @ go (Cube.add prefix v true) t1
  in
  go (Cube.top ni) tree

let id3_tree ?(samples = 4096) ?(max_depth = 24) ?(min_samples = 4) ~rng box =
  let ni = Box.num_inputs box and no = Box.num_outputs box in
  let patterns = mixture rng ni samples in
  let outs = Box.query_many box patterns in
  let c =
    N.create ~input_names:(Box.input_names box)
      ~output_names:(Box.output_names box)
  in
  let vars = Array.init ni (N.input c) in
  let candidates = List.init ni Fun.id in
  for o = 0 to no - 1 do
    let examples =
      Array.to_list
        (Array.mapi
           (fun i p -> { input = p; label = Bv.get outs.(i) o })
           patterns)
    in
    let tree = grow ~max_depth ~min_samples ~candidates examples 0 in
    let cover = Cover.of_cubes ni (tree_cubes ni tree) in
    N.set_output c o (B.sop c vars cover)
  done;
  c
