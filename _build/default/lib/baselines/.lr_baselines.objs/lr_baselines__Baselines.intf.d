lib/baselines/baselines.mli: Lr_bitvec Lr_blackbox Lr_netlist
