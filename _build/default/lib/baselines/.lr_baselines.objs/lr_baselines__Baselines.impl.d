lib/baselines/baselines.ml: Array Float Fun List Lr_bitvec Lr_blackbox Lr_cube Lr_netlist Lr_sampling
