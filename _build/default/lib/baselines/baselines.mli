(** Contestant-style baseline learners.

    The paper compares against the two runner-up teams of the contest.
    Their executables are not public, but their result signatures in
    Table II — circuits two to three orders of magnitude larger, accuracy
    collapsing on the hard ECO/NEQ cases — are exactly the signatures of
    the two standard sampling-learner families below, which we use as
    stand-ins:

    - {!sop_memorizer} ("2nd place (i)"): draw a large sample, restrict
      each observed minterm to a cheaply-estimated support, and OR the
      collected cubes. Memorisation generalises only through cube merging,
      so circuits are huge and unseen-space behaviour defaults to 0.
    - {!id3_tree} ("2nd place (ii)"): an entropy-guided decision tree
      trained offline on a fixed labelled sample (no adaptive queries), then
      unrolled into path cubes. Generalises better than memorisation but
      still blows up on wide supports.

    Both consume queries from the same {!Lr_blackbox.Blackbox} interface as
    the main method, so Table II's query/time accounting is comparable. *)

val sop_memorizer :
  ?samples:int ->
  ?support_rounds:int ->
  rng:Lr_bitvec.Rng.t ->
  Lr_blackbox.Blackbox.t ->
  Lr_netlist.Netlist.t
(** Default 2048 samples, 64 support-estimation rounds. *)

val id3_tree :
  ?samples:int ->
  ?max_depth:int ->
  ?min_samples:int ->
  rng:Lr_bitvec.Rng.t ->
  Lr_blackbox.Blackbox.t ->
  Lr_netlist.Netlist.t
(** Default 4096 samples, depth cap 24, leaves of fewer than 4 samples
    become majority leaves. *)
