lib/bitvec/rng.ml: Int64
