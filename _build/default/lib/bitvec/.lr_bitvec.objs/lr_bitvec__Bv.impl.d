lib/bitvec/bv.ml: Array Format Hashtbl Int64 List Rng Stdlib String
