lib/bitvec/bv.mli: Format Rng
