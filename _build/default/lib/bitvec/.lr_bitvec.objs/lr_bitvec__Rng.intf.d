lib/bitvec/rng.mli:
