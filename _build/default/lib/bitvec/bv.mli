(** Packed bit-vectors.

    A [Bv.t] stores [length] bits packed into 64-bit words. It is the
    universal currency of the project: full input assignments to a black-box,
    full output assignments, rows of truth tables, simulation pattern blocks.
    Indices run from 0 (bit 0 of word 0) to [length - 1]. *)

type t

val create : int -> t
(** [create n] is an all-zero vector of [n] bits. *)

val length : t -> int

val get : t -> int -> bool
val set : t -> int -> bool -> unit
val flip : t -> int -> unit

val copy : t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val fill : t -> bool -> unit
(** [fill t b] sets every bit to [b]. *)

val popcount : t -> int

val random : Rng.t -> int -> t
(** [random rng n] draws [n] uniform bits. *)

val random_biased : Rng.t -> float -> int -> t
(** [random_biased rng p n] draws [n] bits, each 1 with probability ~[p]. *)

val of_int : width:int -> int -> t
(** [of_int ~width v] encodes the low [width] bits of [v], bit [i] of the
    result being bit [i] of [v] (LSB at index 0). *)

val to_int : t -> int
(** [to_int t] decodes the vector as an unsigned integer (LSB at index 0).
    Requires [length t <= 62]. *)

val of_string : string -> t
(** [of_string "1011"] reads a vector MSB-first, so index 0 holds the last
    character — the conventional display order for binary constants. *)

val to_string : t -> string
(** MSB-first rendering; inverse of {!of_string}. *)

val pp : Format.formatter -> t -> unit

val iteri : (int -> bool -> unit) -> t -> unit

val sub_bits : t -> int list -> t
(** [sub_bits t idxs] extracts the listed bit positions into a fresh vector,
    in list order (element 0 of the list becomes bit 0). *)

val blit_bits : src:t -> dst:t -> int list -> unit
(** [blit_bits ~src ~dst idxs] writes bit [i] of [src] to position
    [List.nth idxs i] of [dst]. *)
