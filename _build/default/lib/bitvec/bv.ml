type t = { len : int; words : int64 array }

let nwords n = (n + 63) / 64

let create n =
  if n < 0 then invalid_arg "Bv.create: negative length";
  { len = n; words = Array.make (max 1 (nwords n)) 0L }

let length t = t.len

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Bv: index out of bounds"

let get t i =
  check t i;
  Int64.(logand (shift_right_logical t.words.(i lsr 6) (i land 63)) 1L) = 1L

let set t i b =
  check t i;
  let w = i lsr 6 and m = Int64.shift_left 1L (i land 63) in
  t.words.(w) <-
    (if b then Int64.logor t.words.(w) m
     else Int64.logand t.words.(w) (Int64.lognot m))

let flip t i =
  check t i;
  let w = i lsr 6 in
  t.words.(w) <- Int64.logxor t.words.(w) (Int64.shift_left 1L (i land 63))

let copy t = { len = t.len; words = Array.copy t.words }

(* Bits beyond [len] in the last word are kept at zero by every mutator,
   so word-level comparison and hashing are sound. *)
let mask_last t =
  let r = t.len land 63 in
  if t.len > 0 && r <> 0 then begin
    let last = nwords t.len - 1 in
    t.words.(last) <-
      Int64.logand t.words.(last)
        (Int64.shift_right_logical (-1L) (64 - r))
  end

let fill t b =
  Array.fill t.words 0 (Array.length t.words) (if b then -1L else 0L);
  if b then mask_last t;
  if b && t.len = 0 then t.words.(0) <- 0L

let equal a b = a.len = b.len && a.words = b.words

let compare a b =
  let c = Stdlib.compare a.len b.len in
  if c <> 0 then c else Stdlib.compare a.words b.words

let hash t = Hashtbl.hash (t.len, t.words)

let popcount_word w =
  let w = Int64.sub w Int64.(logand (shift_right_logical w 1) 0x5555555555555555L) in
  let w =
    Int64.add
      Int64.(logand w 0x3333333333333333L)
      Int64.(logand (shift_right_logical w 2) 0x3333333333333333L)
  in
  let w = Int64.(logand (add w (shift_right_logical w 4)) 0x0F0F0F0F0F0F0F0FL) in
  Int64.to_int (Int64.shift_right_logical (Int64.mul w 0x0101010101010101L) 56)

let popcount t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let random rng n =
  let t = create n in
  for i = 0 to Array.length t.words - 1 do
    t.words.(i) <- Rng.bits64 rng
  done;
  mask_last t;
  t

let random_biased rng p n =
  let t = create n in
  for i = 0 to Array.length t.words - 1 do
    t.words.(i) <- Rng.biased_word rng p
  done;
  mask_last t;
  t

let of_int ~width v =
  if width < 0 || width > 62 then invalid_arg "Bv.of_int: width out of range";
  let t = create width in
  for i = 0 to width - 1 do
    if (v lsr i) land 1 = 1 then set t i true
  done;
  t

let to_int t =
  if t.len > 62 then invalid_arg "Bv.to_int: vector too wide";
  let acc = ref 0 in
  for i = t.len - 1 downto 0 do
    acc := (!acc lsl 1) lor (if get t i then 1 else 0)
  done;
  !acc

let of_string s =
  let n = String.length s in
  let t = create n in
  String.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> set t (n - 1 - i) true
      | _ -> invalid_arg "Bv.of_string: expected only '0' and '1'")
    s;
  t

let to_string t =
  String.init t.len (fun i -> if get t (t.len - 1 - i) then '1' else '0')

let pp ppf t = Format.pp_print_string ppf (to_string t)

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (get t i)
  done

let sub_bits t idxs =
  let out = create (List.length idxs) in
  List.iteri (fun j i -> set out j (get t i)) idxs;
  out

let blit_bits ~src ~dst idxs =
  List.iteri (fun j i -> set dst i (get src j)) idxs
