module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module B = Lr_netlist.Builder
module Box = Lr_blackbox.Blackbox

type category = NEQ | ECO | DIAG | DATA

let category_to_string = function
  | NEQ -> "NEQ"
  | ECO -> "ECO"
  | DIAG -> "DIAG"
  | DATA -> "DATA"

type spec = {
  name : string;
  category : category;
  num_inputs : int;
  num_outputs : int;
  hidden : bool;
  seed : int;
}

(* Table II's circuit information column, one for one. *)
let specs =
  let mk name category num_inputs num_outputs hidden seed =
    { name; category; num_inputs; num_outputs; hidden; seed }
  in
  [
    mk "case_1" ECO 121 38 false 101;
    mk "case_2" DATA 53 19 false 102;
    mk "case_3" DIAG 72 1 false 103;
    mk "case_4" ECO 56 5 false 104;
    mk "case_5" NEQ 87 16 false 105;
    mk "case_6" DIAG 76 1 false 106;
    mk "case_7" ECO 43 7 false 107;
    mk "case_8" DIAG 44 5 false 108;
    mk "case_9" ECO 173 16 false 109;
    mk "case_10" NEQ 37 2 false 110;
    mk "case_11" NEQ 60 20 true 111;
    mk "case_12" DATA 40 26 true 112;
    mk "case_13" ECO 43 7 true 113;
    mk "case_14" NEQ 50 22 true 114;
    mk "case_15" DIAG 80 3 true 115;
    mk "case_16" DIAG 26 4 true 116;
    mk "case_17" ECO 76 33 true 117;
    mk "case_18" NEQ 102 2 true 118;
    mk "case_19" ECO 73 8 true 119;
    mk "case_20" DIAG 51 2 true 120;
  ]

(* Extension benchmarks exercising the generalized template families
   (the paper's future work): bitwise vector operators and shifts. *)
let extension_specs =
  [
    { name = "ext_bitwise"; category = DATA; num_inputs = 40; num_outputs = 36;
      hidden = false; seed = 201 };
    { name = "ext_shift"; category = DATA; num_inputs = 35; num_outputs = 32;
      hidden = false; seed = 202 };
  ]

let find name =
  match List.find_opt (fun s -> s.name = name) (specs @ extension_specs) with
  | Some s -> s
  | None -> raise Not_found

(* ---------- naming helpers ---------- *)

(* Pure-letter suffixes so that name-based grouping finds no vectors. *)
let letters i =
  let rec go i acc =
    let c = Char.chr (Char.code 'a' + (i mod 26)) in
    let acc = Printf.sprintf "%c%s" c acc in
    if i < 26 then acc else go ((i / 26) - 1) acc
  in
  go i ""

let unstructured_names prefix n =
  Array.init n (fun i -> prefix ^ letters i)

(* ---------- structural helpers ---------- *)

let shuffle rng a =
  let a = Array.copy a in
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let pick_support rng all k = Array.sub (shuffle rng all) 0 (min k (Array.length all))

(* A random cone over the given input nodes. The operand pool is biased
   toward recently created gates, which yields depth rather than a flat
   soup. [xor_prob] controls how parity-rich (hence how tree-hostile) the
   cone is. *)
let random_cone c rng ~inputs ~gates ~xor_prob =
  let pool = ref (Array.to_list inputs) in
  let size = ref (List.length !pool) in
  let pick () =
    (* geometric-ish bias toward the head (recent nodes) *)
    let idx =
      let r = Rng.int rng !size in
      let r' = Rng.int rng !size in
      min r r'
    in
    List.nth !pool idx
  in
  let last = ref (List.nth !pool 0) in
  for _ = 1 to gates do
    let a = pick () and b = pick () in
    let g =
      if Rng.float rng < xor_prob then N.xor_ c a b
      else
        match Rng.int rng 5 with
        | 0 -> N.and_ c a b
        | 1 -> N.or_ c a b
        | 2 -> N.nand_ c a b
        | 3 -> N.nor_ c a b
        | _ -> N.and_ c (N.not_ c a) b
    in
    pool := g :: !pool;
    incr size;
    last := g
  done;
  !last

(* A miter-difference gate: two distinct cones over a shared support XORed
   together (the disagreement of two implementations), gated by a
   conjunction of [width] literals (the rare activation condition). The
   result is 0 on most of the space but balanced inside the guard cube. *)
let rare_cone c rng ~inputs ~width ~gates =
  let guard_support = pick_support rng inputs width in
  let lits =
    Array.to_list guard_support
    |> List.map (fun n -> if Rng.bool rng then n else N.not_ c n)
  in
  let guard = B.and_reduce c lits in
  if gates = 0 then guard
  else begin
    let cone1 = random_cone c rng ~inputs ~gates ~xor_prob:0.3 in
    let cone2 = random_cone c rng ~inputs ~gates ~xor_prob:0.3 in
    N.and_ c guard (N.xor_ c cone1 cone2)
  end

let parity_cone c rng ~inputs ~width =
  let support = pick_support rng inputs width in
  B.xor_reduce c (Array.to_list support)

(* ---------- category builders ---------- *)

let build_eco spec ~support ~gates ~xor_prob =
  let rng = Rng.create spec.seed in
  let c =
    N.create
      ~input_names:(unstructured_names "n" spec.num_inputs)
      ~output_names:(unstructured_names "p" spec.num_outputs)
  in
  let inputs = Array.init spec.num_inputs (N.input c) in
  for o = 0 to spec.num_outputs - 1 do
    let sup = pick_support rng inputs support in
    N.set_output c o (random_cone c rng ~inputs:sup ~gates ~xor_prob)
  done;
  c

(* outputs are difference functions of two almost-equivalent cones:
   mostly rare-event gates, with [parities] outputs replaced by wide
   parities (the unlearnable instances). *)
let build_neq spec ~support ~gates ~rare_width ~parities ~parity_width =
  let rng = Rng.create spec.seed in
  let c =
    N.create
      ~input_names:(unstructured_names "m" spec.num_inputs)
      ~output_names:(unstructured_names "q" spec.num_outputs)
  in
  let inputs = Array.init spec.num_inputs (N.input c) in
  for o = 0 to spec.num_outputs - 1 do
    let node =
      if o < parities then parity_cone c rng ~inputs ~width:parity_width
      else begin
        let sup = pick_support rng inputs support in
        let diff = rare_cone c rng ~inputs:sup ~width:rare_width ~gates in
        diff
      end
    in
    N.set_output c o node
  done;
  c

(* DIAG/DATA cases have structured names: vectors [base[i]] plus lettered
   scalars. The builders below hand out input index ranges. *)
let structured_inputs vectors num_scalars =
  let names = ref [] in
  List.iter
    (fun (base, width) ->
      for i = 0 to width - 1 do
        names := Printf.sprintf "%s[%d]" base i :: !names
      done)
    vectors;
  for i = 0 to num_scalars - 1 do
    names := ("s" ^ letters i) :: !names
  done;
  Array.of_list (List.rev !names)

(* input nodes of the vector declared at [offset] with [width] bits,
   LSB (index 0) first *)
let vec_nodes c ~offset ~width = Array.init width (fun i -> N.input c (offset + i))

type predicate = [ `Eq | `Ne | `Lt | `Le | `Gt | `Ge ]

type diag_output =
  | Cmp of predicate * string * [ `V of string | `C of int ]
  | Gated_cmp of predicate * string * string * int
      (* comparator ANDed with scalar #k: observable only when that scalar is 1 *)
  | Scalar_cone of int * int (* support, gates, over the scalar block *)

let build_diag spec ~vectors ~num_scalars ~outputs =
  let rng = Rng.create spec.seed in
  let input_names = structured_inputs vectors num_scalars in
  assert (Array.length input_names = spec.num_inputs);
  let output_names =
    Array.init spec.num_outputs (fun i -> Printf.sprintf "z%s" (letters i))
  in
  let c = N.create ~input_names ~output_names in
  let offsets = Hashtbl.create 8 in
  let off = ref 0 in
  List.iter
    (fun (base, width) ->
      Hashtbl.replace offsets base (!off, width);
      off := !off + width)
    vectors;
  let scalar_base = !off in
  let scalar_nodes =
    Array.init num_scalars (fun i -> N.input c (scalar_base + i))
  in
  let vnodes base =
    let offset, width = Hashtbl.find offsets base in
    vec_nodes c ~offset ~width
  in
  List.iteri
    (fun o out ->
      let node =
        match out with
        | Cmp (op, lhs, `V rhs) -> B.compare_op c op (vnodes lhs) (vnodes rhs)
        | Cmp (op, lhs, `C k) -> B.compare_const c op (vnodes lhs) k
        | Gated_cmp (op, lhs, rhs, scalar) ->
            N.and_ c
              (B.compare_op c op (vnodes lhs) (vnodes rhs))
              scalar_nodes.(scalar)
        | Scalar_cone (support, gates) ->
            let sup = pick_support rng scalar_nodes support in
            random_cone c rng ~inputs:sup ~gates ~xor_prob:0.2
      in
      N.set_output c o node)
    outputs;
  c

let build_data spec ~vectors ~num_scalars ~terms ~offset_const =
  let input_names = structured_inputs vectors num_scalars in
  assert (Array.length input_names = spec.num_inputs);
  let w = spec.num_outputs in
  let output_names = Array.init w (fun i -> Printf.sprintf "z[%d]" i) in
  let c = N.create ~input_names ~output_names in
  let offsets = Hashtbl.create 8 in
  let off = ref 0 in
  List.iter
    (fun (base, width) ->
      Hashtbl.replace offsets base (!off, width);
      off := !off + width)
    vectors;
  let vnodes base =
    let offset, width = Hashtbl.find offsets base in
    vec_nodes c ~offset ~width
  in
  let sum =
    B.linear_combination c ~width:w
      (List.map (fun (a, base) -> (a, vnodes base)) terms)
      offset_const
  in
  Array.iteri (fun i n -> N.set_output c i n) sum;
  c

(* ---------- the 20 recipes ---------- *)

let build spec =
  match spec.name with
  | "case_1" -> build_eco spec ~support:6 ~gates:9 ~xor_prob:0.15
  | "case_2" ->
      build_data spec
        ~vectors:[ ("a", 16); ("b", 16); ("c", 16) ]
        ~num_scalars:5
        ~terms:[ (3, "a"); (5, "b"); (1, "c") ]
        ~offset_const:11
  | "case_3" ->
      build_diag spec
        ~vectors:[ ("busa", 32); ("busb", 32) ]
        ~num_scalars:8
        ~outputs:[ Cmp (`Ge, "busa", `V "busb") ]
  | "case_4" -> build_eco spec ~support:13 ~gates:42 ~xor_prob:0.3
  | "case_5" ->
      build_neq spec ~support:16 ~gates:20 ~rare_width:3 ~parities:0
        ~parity_width:0
  | "case_6" ->
      build_diag spec
        ~vectors:[ ("addr", 48) ]
        ~num_scalars:28
        ~outputs:[ Cmp (`Lt, "addr", `C 0x5A5A_5A5A_5A5A) ]
  | "case_7" -> build_eco spec ~support:4 ~gates:6 ~xor_prob:0.1
  | "case_8" ->
      build_diag spec
        ~vectors:[ ("da", 12); ("db", 12) ]
        ~num_scalars:20
        ~outputs:
          [
            Cmp (`Eq, "da", `V "db");
            Cmp (`Lt, "da", `V "db");
            Cmp (`Ge, "da", `C 1000);
            Scalar_cone (5, 8);
            Cmp (`Le, "db", `V "da");
          ]
  | "case_9" -> build_eco spec ~support:48 ~gates:120 ~xor_prob:0.5
  | "case_10" ->
      build_neq spec ~support:5 ~gates:6 ~rare_width:4 ~parities:0
        ~parity_width:0
  | "case_11" ->
      build_neq spec ~support:17 ~gates:18 ~rare_width:3 ~parities:0
        ~parity_width:0
  | "case_12" ->
      build_data spec
        ~vectors:[ ("x", 18); ("y", 18) ]
        ~num_scalars:4
        ~terms:[ (7, "x"); (9, "y") ]
        ~offset_const:3
  | "case_13" -> build_eco spec ~support:3 ~gates:5 ~xor_prob:0.1
  | "case_14" ->
      build_neq spec ~support:10 ~gates:12 ~rare_width:6 ~parities:2
        ~parity_width:24
  | "case_15" ->
      build_diag spec
        ~vectors:[ ("pa", 24); ("pb", 24) ]
        ~num_scalars:32
        ~outputs:
          [
            Gated_cmp (`Eq, "pa", "pb", 5);
            Cmp (`Gt, "pa", `V "pb");
            Scalar_cone (6, 10);
          ]
  | "case_16" ->
      build_diag spec
        ~vectors:[ ("u", 8); ("v", 8) ]
        ~num_scalars:10
        ~outputs:
          [
            Cmp (`Eq, "u", `V "v");
            Cmp (`Lt, "u", `C 37);
            Cmp (`Ne, "u", `V "v");
            Cmp (`Ge, "v", `C 100);
          ]
  | "case_17" -> build_eco spec ~support:12 ~gates:30 ~xor_prob:0.25
  | "case_18" ->
      build_neq spec ~support:10 ~gates:14 ~rare_width:5 ~parities:1
        ~parity_width:26
  | "case_19" -> build_eco spec ~support:14 ~gates:45 ~xor_prob:0.3
  | "case_20" ->
      build_diag spec
        ~vectors:[ ("w", 32); ("ba", 8); ("bb", 8) ]
        ~num_scalars:3
        ~outputs:[ Cmp (`Ge, "w", `C 0x7654_3210); Cmp (`Eq, "ba", `V "bb") ]
  | "ext_bitwise" ->
      (* z = x ^ y and w = x & y over two 18-bit buses *)
      let input_names = structured_inputs [ ("x", 18); ("y", 18) ] 4 in
      let output_names =
        Array.init 36 (fun i ->
            if i < 18 then Printf.sprintf "z[%d]" i
            else Printf.sprintf "w[%d]" (i - 18))
      in
      let c = N.create ~input_names ~output_names in
      for i = 0 to 17 do
        let x = N.input c i and y = N.input c (18 + i) in
        N.set_output c i (N.xor_ c x y);
        N.set_output c (18 + i) (N.and_ c x y)
      done;
      c
  | "ext_shift" ->
      (* z = v >> 5 and r = rotate-right(v, 3) over a 16-bit bus *)
      let input_names = structured_inputs [ ("v", 16) ] 19 in
      let output_names =
        Array.init 32 (fun i ->
            if i < 16 then Printf.sprintf "z[%d]" i
            else Printf.sprintf "r[%d]" (i - 16))
      in
      let c = N.create ~input_names ~output_names in
      for i = 0 to 15 do
        let shifted =
          if i + 5 < 16 then N.input c (i + 5) else N.const_false c
        in
        N.set_output c i shifted;
        N.set_output c (16 + i) (N.input c ((i + 3) mod 16))
      done;
      c
  | other -> invalid_arg ("Cases.build: unknown case " ^ other)

let blackbox ?budget ?deadline_s spec =
  Box.of_netlist ?budget ?deadline_s (build spec)

(* ---------- parametric generator wrappers ---------- *)

let anon_spec seed num_inputs num_outputs category =
  { name = "custom"; category; num_inputs; num_outputs; hidden = false; seed }

let random_eco ~seed ~num_inputs ~num_outputs ~support ~gates ~xor_prob =
  build_eco (anon_spec seed num_inputs num_outputs ECO) ~support ~gates
    ~xor_prob

let random_neq ~seed ~num_inputs ~num_outputs ~support ~gates ~rare_width
    ~parities ~parity_width =
  build_neq (anon_spec seed num_inputs num_outputs NEQ) ~support ~gates
    ~rare_width ~parities ~parity_width

let random_diag ~seed ~vectors ~num_scalars ~outputs =
  let num_inputs =
    List.fold_left (fun a (_, w) -> a + w) num_scalars vectors
  in
  build_diag (anon_spec seed num_inputs (List.length outputs) DIAG) ~vectors
    ~num_scalars ~outputs

let random_data ~vectors ~num_scalars ~width ~terms ~offset =
  let num_inputs =
    List.fold_left (fun a (_, w) -> a + w) num_scalars vectors
  in
  build_data (anon_spec 0 num_inputs width DATA) ~vectors ~num_scalars ~terms
    ~offset_const:offset
