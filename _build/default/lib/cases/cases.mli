(** The 20 benchmark IO-generators.

    The 2019 contest benchmarks are proprietary industrial designs; this
    module regenerates their {e structure}: for every row of the paper's
    Table II there is a case with the same name, application category and
    PI/PO counts, built deterministically from a per-case seed:

    - {b NEQ} — miters of non-equivalent logic cones: pairs of similar
      cones compared by XOR/OR structures; the hardest instances hide wide
      parities, which no sampling-based learner can compress.
    - {b ECO} — patch / logic-difference functions: sparse-support random
      cones of varying depth per output.
    - {b DIAG} — semantic conditions over named bus variables: comparator
      predicates (vector-vector and vector-constant), sometimes hidden
      behind a gating scalar so that only the propagation-cube machinery
      can expose them.
    - {b DATA} — arithmetic datapath recognition: linear combinations
      [N_z = sum a_i N_vi + b] over named input vectors.

    NEQ/ECO signals carry unstructured names (grouping finds nothing);
    DIAG/DATA signals are named [bus[i]]-style so that name-based grouping
    and template matching can do their work, exactly as in the contest. *)

type category = NEQ | ECO | DIAG | DATA

val category_to_string : category -> string

type spec = {
  name : string;  (** [case_1] .. [case_20] *)
  category : category;
  num_inputs : int;
  num_outputs : int;
  hidden : bool;  (** the contest's hidden cases, marked * in Table II *)
  seed : int;
}

val specs : spec list
(** All 20 cases in Table II order. *)

val extension_specs : spec list
(** Extra benchmarks for the generalized template families implemented as
    the paper's future work: [ext_bitwise] (bitwise vector operators) and
    [ext_shift] (logical shift and rotation). *)

val find : string -> spec
(** Look a case up by name. Raises [Not_found]. *)

val build : spec -> Lr_netlist.Netlist.t
(** The golden circuit. Deterministic in [spec.seed]. *)

val blackbox : ?budget:int -> ?deadline_s:float -> spec -> Lr_blackbox.Blackbox.t
(** The case wrapped behind the contest query interface. *)

(** {2 Parametric generators}

    The building blocks behind the 20 cases, exposed so users can grow
    their own benchmark families (e.g. difficulty sweeps). All are
    deterministic in [seed]. *)

val random_eco :
  seed:int ->
  num_inputs:int ->
  num_outputs:int ->
  support:int ->
  gates:int ->
  xor_prob:float ->
  Lr_netlist.Netlist.t
(** Sparse-support random cones per output (the ECO patch shape).
    [xor_prob] raises parity content — and learning difficulty. *)

val random_neq :
  seed:int ->
  num_inputs:int ->
  num_outputs:int ->
  support:int ->
  gates:int ->
  rare_width:int ->
  parities:int ->
  parity_width:int ->
  Lr_netlist.Netlist.t
(** Miter-difference outputs: two cones XORed under a [rare_width]-literal
    guard; the first [parities] outputs are raw [parity_width]-wide
    parities (unlearnable by sampling learners). *)

type predicate = [ `Eq | `Ne | `Lt | `Le | `Gt | `Ge ]

type diag_output =
  | Cmp of predicate * string * [ `V of string | `C of int ]
      (** predicate over a named bus, against another bus or a constant *)
  | Gated_cmp of predicate * string * string * int
      (** bus-bus predicate ANDed with scalar #k (hidden comparator) *)
  | Scalar_cone of int * int  (** random cone: support, gates *)

val random_diag :
  seed:int ->
  vectors:(string * int) list ->
  num_scalars:int ->
  outputs:diag_output list ->
  Lr_netlist.Netlist.t
(** Bus-condition extraction circuits (the DIAG shape). [vectors] declares
    named buses as [(base, width)]. *)

val random_data :
  vectors:(string * int) list ->
  num_scalars:int ->
  width:int ->
  terms:(int * string) list ->
  offset:int ->
  Lr_netlist.Netlist.t
(** Linear datapath [z = sum a_i * N_vi + offset (mod 2^width)] over named
    buses (the DATA shape). Deterministic — no randomness needed. *)
