lib/cases/cases.ml: Array Char Hashtbl List Lr_bitvec Lr_blackbox Lr_netlist Printf
