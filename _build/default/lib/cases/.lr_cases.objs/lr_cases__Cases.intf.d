lib/cases/cases.mli: Lr_blackbox Lr_netlist
