(** Template matching — Section IV-B and Table I of the paper.

    Given the name-based grouping of a black-box's inputs and outputs, this
    module tests the two template families of Table I by sampling the
    IO-generator:

    {b Comparators} [z = N_v1 ⋈ N_v2] and [z = N_v1 ⋈ b] for
    [⋈ ∈ {=, ≠, <, ≤, >, ≥}]. Vector-vector predicates are recognised by
    consistency over random samples. Vector-constant predicates recover the
    constant by a binary search over the threshold for the monotone
    operators (wide vectors), or by a word-parallel exhaustive sweep (up to
    {!sweep_width_limit} bits), which additionally recognises [=]/[≠]
    against a constant. A comparator that is not directly observable at a
    PO is searched for under random {e propagation cubes} on the remaining
    inputs; a match is then reported with the cube that makes it
    observable, to be exploited by input compression.

    {b Linear arithmetic} [N_z = Σ a_i N_vi + b (mod 2^|z|)]. The offset
    [b] is read off by driving every input vector to 0; each [a_i] by
    driving vector [i] to 1; the hypothesis is then verified on random
    samples with all inputs (vectors and scalars) randomised. *)

type op = [ `Eq | `Ne | `Lt | `Le | `Gt | `Ge ]

val op_to_string : op -> string
val negate_op : op -> op
val eval_op : op -> int -> int -> bool

type rhs =
  | Vec of Lr_grouping.Grouping.vector
  | Const of int

type comparator = {
  po : int;  (** output signal index the predicate is observed at *)
  cmp_op : op;
  lhs : Lr_grouping.Grouping.vector;
  rhs : rhs;
  prop_cube : Lr_cube.Cube.t option;
      (** [None]: the PO {e is} the predicate. [Some c]: under assignments
          satisfying [c] the PO equals the predicate (hidden comparator). *)
}

type linear = {
  z : Lr_grouping.Grouping.vector;  (** output vector, LSB first *)
  terms : (int * Lr_grouping.Grouping.vector) list;  (** nonzero [a_i] *)
  offset : int;  (** [b], already reduced mod [2^|z|] *)
}

(** {2 Extended template families}

    The paper's stated future work is "generalizing the variable grouping
    and template matching methods"; the two families below are the natural
    next entries of Table I for datapath recognition. Left shifts need no
    template: [v << k] is the linear template with [a = 2^k]. *)

type bitwise_op = Band | Bor | Bxor | Bxnor | Bnot

val bitwise_op_to_string : bitwise_op -> string

type bitwise = {
  bz : Lr_grouping.Grouping.vector;  (** output vector *)
  bop : bitwise_op;
  blhs : Lr_grouping.Grouping.vector;
  brhs : Lr_grouping.Grouping.vector option;  (** [None] for {!Bnot} *)
}

type shift = {
  sz : Lr_grouping.Grouping.vector;  (** output vector *)
  src : Lr_grouping.Grouping.vector;
  amount : int;  (** bit positions, [> 0] *)
  rotate : bool;  (** logical right shift when false, rotation when true *)
}

type matches = {
  comparators : comparator list;
  linears : linear list;
  bitwises : bitwise list;
  shifts : shift list;
}

val sweep_width_limit : int
(** Maximum vector width for the exhaustive constant sweep (16). *)

val scan :
  ?samples:int ->
  ?verify_samples:int ->
  ?prop_cubes:int ->
  rng:Lr_bitvec.Rng.t ->
  Lr_blackbox.Blackbox.t ->
  matches
(** Run both template families against the box. [samples] controls the
    consistency-testing batch (default 64), [verify_samples] the
    independent confirmation batch (default 32), [prop_cubes] how many
    random propagation cubes are tried per hidden-comparator candidate
    (default 4). POs covered by a reported linear match are not also
    reported as comparators. *)

val matched_outputs : matches -> int list
(** Output signal indices fully determined by some match (direct
    comparators and linear vector bits — {e not} propagated comparators,
    which only compress inputs). *)
