module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module Cube = Lr_cube.Cube
module Box = Lr_blackbox.Blackbox
module G = Lr_grouping.Grouping

type op = [ `Eq | `Ne | `Lt | `Le | `Gt | `Ge ]

let op_to_string = function
  | `Eq -> "=="
  | `Ne -> "!="
  | `Lt -> "<"
  | `Le -> "<="
  | `Gt -> ">"
  | `Ge -> ">="

let negate_op = function
  | `Eq -> `Ne
  | `Ne -> `Eq
  | `Lt -> `Ge
  | `Ge -> `Lt
  | `Gt -> `Le
  | `Le -> `Gt

let eval_op op x y =
  match op with
  | `Eq -> x = y
  | `Ne -> x <> y
  | `Lt -> x < y
  | `Le -> x <= y
  | `Gt -> x > y
  | `Ge -> x >= y

let all_ops : op list = [ `Eq; `Ne; `Lt; `Le; `Gt; `Ge ]

type rhs = Vec of G.vector | Const of int

type comparator = {
  po : int;
  cmp_op : op;
  lhs : G.vector;
  rhs : rhs;
  prop_cube : Cube.t option;
}

type linear = { z : G.vector; terms : (int * G.vector) list; offset : int }

type bitwise_op = Band | Bor | Bxor | Bxnor | Bnot

let bitwise_op_to_string = function
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Bxnor -> "~^"
  | Bnot -> "~"

type bitwise = {
  bz : G.vector;
  bop : bitwise_op;
  blhs : G.vector;
  brhs : G.vector option;
}

type shift = { sz : G.vector; src : G.vector; amount : int; rotate : bool }

type matches = {
  comparators : comparator list;
  linears : linear list;
  bitwises : bitwise list;
  shifts : shift list;
}

let sweep_width_limit = 16

let width v = Array.length v.G.bits

let rand_value rng w =
  if w >= 62 then invalid_arg "Templates: vector too wide";
  Int64.to_int (Int64.logand (Rng.bits64 rng) (Int64.of_int ((1 lsl w) - 1)))

let write_vec a v value = G.set_vector v (fun s b -> Bv.set a s b) value
let read_vec out v = G.vector_value v (fun s -> Bv.get out s)

(* ---------- linear arithmetic ---------- *)

let match_linear ~samples ~rng box in_vectors out_vectors =
  let ni = Box.num_inputs box in
  let usable_in = List.filter (fun v -> width v < 62) in_vectors in
  let try_output z =
    if width z >= 62 then None
    else begin
      let w = width z in
      let modmask = (1 lsl w) - 1 in
      let zeros () =
        let a = Bv.create ni in
        (* scalars and vectors all 0 for the probing phase *)
        a
      in
      let probe a = read_vec (Box.query box a) z in
      let b = probe (zeros ()) in
      let terms =
        List.filter_map
          (fun v ->
            let a = zeros () in
            write_vec a v 1;
            let coeff = (probe a - b) land modmask in
            if coeff = 0 then None else Some (coeff, v))
          usable_in
      in
      (* verify on fully random assignments *)
      let ok = ref true in
      for _ = 1 to samples do
        if !ok then begin
          let a = Bv.random rng ni in
          let values =
            List.map (fun (coeff, v) ->
                let x = rand_value rng (width v) in
                write_vec a v x;
                (coeff, x))
              terms
          in
          (* vectors with zero coefficient must also be neutralised in the
             prediction; they are already random in [a], which is the
             point: a true linear function ignores them only via a_i = 0,
             so leave them random and demand the prediction still holds *)
          let expected =
            List.fold_left (fun acc (coeff, x) -> acc + (coeff * x)) b values
            land modmask
          in
          let got = read_vec (Box.query box a) z in
          if got <> expected then ok := false
        end
      done;
      if !ok && terms <> [] then Some { z; terms; offset = b land modmask }
      else None
    end
  in
  List.filter_map try_output out_vectors

(* ---------- extended families: bitwise and shift ---------- *)

let eval_bitwise op ~width x y =
  let mask = (1 lsl width) - 1 in
  (match op with
  | Band -> x land y
  | Bor -> x lor y
  | Bxor -> x lxor y
  | Bxnor -> lnot (x lxor y)
  | Bnot -> lnot x)
  land mask

let match_bitwise ~samples ~rng box in_vectors out_vectors =
  let ni = Box.num_inputs box in
  let try_output z =
    let w = width z in
    if w >= 62 then None
    else begin
      let unary = List.filter (fun v -> width v = w) in_vectors in
      let binary =
        let rec pairs = function
          | [] -> []
          | v :: rest ->
              List.filter_map
                (fun v' -> if width v' = w then Some (v, v') else None)
                rest
              @ pairs rest
        in
        pairs unary
      in
      let candidates =
        List.concat_map
          (fun (v1, v2) ->
            List.map (fun op -> (op, v1, Some v2)) [ Band; Bor; Bxor; Bxnor ])
          binary
        @ List.map (fun v -> (Bnot, v, None)) unary
      in
      let survives (op, v1, v2) =
        let ok = ref true in
        for _ = 1 to samples do
          if !ok then begin
            let a = Bv.random rng ni in
            let x = rand_value rng w in
            write_vec a v1 x;
            let y =
              match v2 with
              | Some v2 ->
                  let y = rand_value rng w in
                  write_vec a v2 y;
                  y
              | None -> 0
            in
            let out = Box.query_many box [| a |] in
            if read_vec out.(0) z <> eval_bitwise op ~width:w x y then
              ok := false
          end
        done;
        !ok
      in
      List.find_opt survives candidates
      |> Option.map (fun (op, v1, v2) ->
             { bz = z; bop = op; blhs = v1; brhs = v2 })
    end
  in
  List.filter_map try_output out_vectors

let eval_shift ~width ~amount ~rotate x =
  let mask = (1 lsl width) - 1 in
  if rotate then ((x lsr amount) lor (x lsl (width - amount))) land mask
  else (x lsr amount) land mask

let match_shift ~samples ~rng box in_vectors out_vectors =
  let ni = Box.num_inputs box in
  let try_output z =
    let w = width z in
    if w >= 62 then None
    else begin
      let sources = List.filter (fun v -> width v = w) in_vectors in
      let candidates =
        List.concat_map
          (fun src ->
            List.concat_map
              (fun amount ->
                [
                  { sz = z; src; amount; rotate = false };
                  { sz = z; src; amount; rotate = true };
                ])
              (List.init (w - 1) (fun k -> k + 1)))
          sources
      in
      let survives s =
        let ok = ref true in
        for _ = 1 to samples do
          if !ok then begin
            let a = Bv.random rng ni in
            let x = rand_value rng w in
            write_vec a s.src x;
            let out = Box.query_many box [| a |] in
            if
              read_vec out.(0) s.sz
              <> eval_shift ~width:w ~amount:s.amount ~rotate:s.rotate x
            then ok := false
          end
        done;
        !ok
      in
      List.find_opt survives candidates
    end
  in
  List.filter_map try_output out_vectors

(* ---------- comparators ---------- *)

(* Candidate single-bit outputs: every PO is a candidate; DIAG predicates
   are scalar POs by construction, and vector POs matched by the linear
   template are filtered by the caller. *)

let vec_inputs_of v = Array.to_list v.G.bits

(* one sampling round: random base assignment, vectors driven to the given
   values; returns the PO values *)
let sample_pos rng box ~fix ~pairs =
  let a = Bv.random rng (Box.num_inputs box) in
  (match fix with None -> () | Some cube -> Cube.force cube a);
  List.iter (fun (v, x) -> write_vec a v x) pairs;
  Box.query box a

(* test whether output [po] consistently equals [op x y] (or its negation)
   over [k] samples; returns the surviving ops *)
let consistent_ops ~k ~rng box ~fix po v1 v2 =
  let surviving = ref all_ops in
  let saw_true = ref false and saw_false = ref false in
  for _ = 1 to k do
    if !surviving <> [] then begin
      let x = rand_value rng (width v1) and y = rand_value rng (width v2) in
      let out = sample_pos rng box ~fix ~pairs:[ (v1, x); (v2, y) ] in
      let z = Bv.get out po in
      if z then saw_true := true else saw_false := true;
      surviving := List.filter (fun op -> eval_op op x y = z) !surviving
    end
  done;
  (* near-equality values are rare under uniform sampling: force a few
     x = y probes so that Lt is not confused with Le, etc. *)
  List.iter
    (fun x ->
      if !surviving <> [] then begin
        let out = sample_pos rng box ~fix ~pairs:[ (v1, x); (v2, x) ] in
        let z = Bv.get out po in
        if z then saw_true := true else saw_false := true;
        surviving := List.filter (fun op -> eval_op op x x = z) !surviving
      end)
    [ 0; 1; (1 lsl min (width v1) 20) - 1 ];
  (* also force off-by-one probes *)
  List.iter
    (fun x ->
      if !surviving <> [] then begin
        let y = x + 1 in
        if y < 1 lsl width v2 then begin
          let out = sample_pos rng box ~fix ~pairs:[ (v1, x); (v2, y) ] in
          let z = Bv.get out po in
          if z then saw_true := true else saw_false := true;
          surviving := List.filter (fun op -> eval_op op x y = z) !surviving
        end
      end)
    [ 0; 2 ];
  if !saw_true && !saw_false then !surviving else []

let match_vector_pairs ~samples ~verify_samples ~rng box ~fix in_vectors pos =
  let pairs =
    let rec go = function
      | [] -> []
      | v :: rest ->
          List.filter_map
            (fun v' -> if width v = width v' then Some (v, v') else None)
            rest
          @ go rest
    in
    go in_vectors
  in
  List.filter_map
    (fun po ->
      let found =
        List.find_map
          (fun (v1, v2) ->
            match consistent_ops ~k:samples ~rng box ~fix po v1 v2 with
            | [ op ] ->
                (* independent confirmation *)
                let confirmed =
                  consistent_ops ~k:verify_samples ~rng box ~fix po v1 v2
                in
                if List.mem op confirmed then Some (op, v1, v2) else None
            | _ -> None)
          pairs
      in
      Option.map
        (fun (op, v1, v2) ->
          { po; cmp_op = op; lhs = v1; rhs = Vec v2; prop_cube = fix })
        found)
    pos

(* vector-vs-constant: exhaustive word-parallel sweep for narrow vectors,
   threshold binary search for wide ones *)
let match_vector_const ~verify_samples ~rng box v pos =
  let w = width v in
  if w >= 62 then []
  else begin
    let probe x =
      let out = sample_pos rng box ~fix:None ~pairs:[ (v, x) ] in
      fun po -> Bv.get out po
    in
    if w <= sweep_width_limit then begin
      (* full truth table of each PO as a function of N_v, other inputs
         random-but-fixed per batch *)
      let n = 1 lsl w in
      let base = Bv.random rng (Box.num_inputs box) in
      let patterns =
        Array.init n (fun x ->
            let a = Bv.copy base in
            write_vec a v x;
            a)
      in
      let outs = Box.query_many box patterns in
      List.filter_map
        (fun po ->
          let g = Array.map (fun o -> Bv.get o po) outs in
          (* classify g as a predicate against a constant *)
          let ones = Array.fold_left (fun c b -> if b then c + 1 else c) 0 g in
          let candidate =
            if ones = 1 then begin
              let b = ref 0 in
              Array.iteri (fun i x -> if x then b := i) g;
              Some (`Eq, !b)
            end
            else if ones = n - 1 then begin
              let b = ref 0 in
              Array.iteri (fun i x -> if not x then b := i) g;
              Some (`Ne, !b)
            end
            else begin
              (* single-transition patterns *)
              let transitions = ref [] in
              for i = 0 to n - 2 do
                if g.(i) <> g.(i + 1) then transitions := i :: !transitions
              done;
              match !transitions with
              | [ i ] when (not g.(i)) && g.(i + 1) -> Some (`Ge, i + 1)
              | [ i ] when g.(i) && not g.(i + 1) -> Some (`Lt, i + 1)
              | _ -> None
            end
          in
          match candidate with
          | None -> None
          | Some (op, b) ->
              (* confirm independence from the other inputs *)
              let ok = ref true in
              for _ = 1 to verify_samples do
                if !ok then begin
                  let x = rand_value rng w in
                  if probe x po <> eval_op op x b then ok := false
                end
              done;
              if !ok then
                Some { po; cmp_op = op; lhs = v; rhs = Const b; prop_cube = None }
              else None)
        pos
    end
    else begin
      let maxv = (1 lsl w) - 1 in
      let at0 = probe 0 and atmax = probe maxv in
      List.filter_map
        (fun po ->
          let z0 = at0 po and zmax = atmax po in
          if z0 = zmax then None
          else begin
            (* monotone threshold: find the smallest x whose output equals
               zmax by binary search (assuming a single transition) *)
            let lo = ref 0 and hi = ref maxv in
            while !hi - !lo > 1 do
              let mid = !lo + ((!hi - !lo) / 2) in
              if probe mid po = z0 then lo := mid else hi := mid
            done;
            let b = !hi in
            let op : op = if zmax then `Ge else `Lt in
            let ok = ref true in
            for _ = 1 to verify_samples do
              if !ok then begin
                let x = rand_value rng w in
                if probe x po <> eval_op op x b then ok := false
              end
            done;
            (* spot-check just around the boundary as well *)
            if !ok && b > 0 && probe (b - 1) po <> eval_op op (b - 1) b then
              ok := false;
            if !ok && probe b po <> eval_op op b b then ok := false;
            if !ok then
              Some { po; cmp_op = op; lhs = v; rhs = Const b; prop_cube = None }
            else None
          end)
        pos
    end
  end

(* hidden comparators: pick random propagation cubes over the inputs not in
   the candidate vectors and retry the vector-vector consistency test *)
let match_propagated ~samples ~verify_samples ~prop_cubes ~rng box in_vectors pos =
  let ni = Box.num_inputs box in
  let rec pairs = function
    | [] -> []
    | v :: rest ->
        List.filter_map
          (fun v' -> if width v = width v' then Some (v, v') else None)
          rest
        @ pairs rest
  in
  let candidates = pairs in_vectors in
  List.filter_map
    (fun po ->
      List.find_map
        (fun (v1, v2) ->
          let in_vecs = vec_inputs_of v1 @ vec_inputs_of v2 in
          let rec attempt k =
            if k = 0 then None
            else begin
              let cube =
                List.fold_left
                  (fun c i ->
                    if List.mem i in_vecs then c else Cube.add c i (Rng.bool rng))
                  (Cube.top ni)
                  (List.init ni Fun.id)
              in
              match
                consistent_ops ~k:samples ~rng box ~fix:(Some cube) po v1 v2
              with
              | [ op ] ->
                  let confirmed =
                    consistent_ops ~k:verify_samples ~rng box ~fix:(Some cube)
                      po v1 v2
                  in
                  if List.mem op confirmed then
                    Some { po; cmp_op = op; lhs = v1; rhs = Vec v2; prop_cube = Some cube }
                  else attempt (k - 1)
              | _ -> attempt (k - 1)
            end
          in
          attempt prop_cubes)
        candidates)
    pos

let scan ?(samples = 64) ?(verify_samples = 32) ?(prop_cubes = 4) ~rng box =
  let gi = G.group (Box.input_names box) in
  let go = G.group (Box.output_names box) in
  let in_vectors = gi.G.vectors in
  let linears =
    if in_vectors = [] || go.G.vectors = [] then []
    else match_linear ~samples ~rng box in_vectors go.G.vectors
  in
  let open_vectors =
    List.filter
      (fun v -> not (List.exists (fun l -> l.z.G.base = v.G.base) linears))
      go.G.vectors
  in
  let bitwises =
    if in_vectors = [] || open_vectors = [] then []
    else match_bitwise ~samples ~rng box in_vectors open_vectors
  in
  let open_vectors =
    List.filter
      (fun v -> not (List.exists (fun b -> b.bz.G.base = v.G.base) bitwises))
      open_vectors
  in
  let shifts =
    if in_vectors = [] || open_vectors = [] then []
    else match_shift ~samples ~rng box in_vectors open_vectors
  in
  let vector_pos =
    List.concat_map (fun l -> Array.to_list l.z.G.bits) linears
    @ List.concat_map (fun b -> Array.to_list b.bz.G.bits) bitwises
    @ List.concat_map (fun s -> Array.to_list s.sz.G.bits) shifts
  in
  let no = Box.num_outputs box in
  let open_pos =
    List.init no Fun.id |> List.filter (fun o -> not (List.mem o vector_pos))
  in
  let direct_vv =
    if in_vectors = [] then []
    else match_vector_pairs ~samples ~verify_samples ~rng box ~fix:None
        in_vectors open_pos
  in
  let taken = List.map (fun c -> c.po) direct_vv in
  let open_pos = List.filter (fun o -> not (List.mem o taken)) open_pos in
  let direct_vc =
    List.concat_map
      (fun v ->
        match_vector_const ~verify_samples ~rng box v
          (List.filter
             (fun o ->
               not (List.exists (fun c -> c.po = o) direct_vv))
             open_pos))
      in_vectors
  in
  (* keep one match per PO *)
  let direct_vc =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun c ->
        if Hashtbl.mem seen c.po then false
        else begin
          Hashtbl.replace seen c.po ();
          true
        end)
      direct_vc
  in
  let taken = taken @ List.map (fun c -> c.po) direct_vc in
  let open_pos = List.filter (fun o -> not (List.mem o taken)) open_pos in
  let propagated =
    if in_vectors = [] || open_pos = [] then []
    else
      match_propagated ~samples ~verify_samples ~prop_cubes ~rng box in_vectors
        open_pos
  in
  { comparators = direct_vv @ direct_vc @ propagated; linears; bitwises; shifts }

let matched_outputs m =
  let direct =
    List.filter_map
      (fun c -> if c.prop_cube = None then Some c.po else None)
      m.comparators
  in
  let vector_bits =
    List.concat_map (fun l -> Array.to_list l.z.G.bits) m.linears
    @ List.concat_map (fun b -> Array.to_list b.bz.G.bits) m.bitwises
    @ List.concat_map (fun s -> Array.to_list s.sz.G.bits) m.shifts
  in
  List.sort_uniq compare (direct @ vector_bits)
