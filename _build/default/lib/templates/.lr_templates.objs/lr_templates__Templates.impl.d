lib/templates/templates.ml: Array Fun Hashtbl Int64 List Lr_bitvec Lr_blackbox Lr_cube Lr_grouping Option
