lib/templates/templates.mli: Lr_bitvec Lr_blackbox Lr_cube Lr_grouping
