lib/blackbox/blackbox.ml: Array Lr_bitvec Lr_netlist Unix
