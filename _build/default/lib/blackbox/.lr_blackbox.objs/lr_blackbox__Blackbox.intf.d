lib/blackbox/blackbox.mli: Lr_bitvec Lr_netlist
