(** Name-based grouping — Section IV-A of the paper.

    Industrial netlists name datapath bits systematically: [addr[7]],
    [addr_7], [addr7]. Signals sharing a base name are grouped into a
    vector representing the integer [N_v = sum 2^k * bit_k], where bit
    significance follows the declared index ([a2 a1 a0] with
    [(1,1,0) -> 6], as in the paper's Example 1).

    Non-contiguous or duplicated indices are tolerated: bits are ranked by
    declared index and significance is the rank, which matches the intended
    semantics for the common contiguous case and degrades gracefully
    otherwise. Bases with a single member, or whose members' indices
    collide, stay scalars. *)

type vector = {
  base : string;  (** shared name prefix *)
  bits : int array;
      (** [bits.(k)] = signal index (into the name array) with weight [2^k] *)
  declared_indices : int array;  (** original per-bit indices, same order *)
}

type t = {
  vectors : vector list;  (** in order of first appearance *)
  scalars : int list;  (** signal indices not absorbed into any vector *)
}

val parse_name : string -> (string * int) option
(** [parse_name "a[3]" = Some ("a", 3)], likewise ["a_3"] and ["a3"];
    [None] when the name carries no trailing index. *)

val group : string array -> t
(** Group a PI or PO name array. Every signal appears in exactly one place:
    some vector's [bits] or [scalars]. *)

val vector_value : vector -> (int -> bool) -> int
(** [vector_value v read] decodes the integer given a bit reader over signal
    indices. Requires [Array.length v.bits <= 62]. *)

val set_vector : vector -> (int -> bool -> unit) -> int -> unit
(** [set_vector v write value] writes the binary encoding of [value] into
    the vector's signals via [write]. *)
