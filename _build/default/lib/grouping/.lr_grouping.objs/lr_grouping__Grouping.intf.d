lib/grouping/grouping.mli:
