lib/grouping/grouping.ml: Array Fun Hashtbl List String
