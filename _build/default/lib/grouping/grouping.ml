type vector = {
  base : string;
  bits : int array;
  declared_indices : int array;
}

type t = { vectors : vector list; scalars : int list }

let is_digit c = c >= '0' && c <= '9'

let parse_name name =
  let n = String.length name in
  if n = 0 then None
  else if name.[n - 1] = ']' then begin
    (* base[idx] *)
    match String.rindex_opt name '[' with
    | None -> None
    | Some lb ->
        let digits = String.sub name (lb + 1) (n - lb - 2) in
        if digits = "" || not (String.for_all is_digit digits) || lb = 0 then
          None
        else Some (String.sub name 0 lb, int_of_string digits)
  end
  else begin
    (* base_idx or baseidx: strip trailing digits *)
    let rec first_digit i =
      if i > 0 && is_digit name.[i - 1] then first_digit (i - 1) else i
    in
    let d = first_digit n in
    if d = n || d = 0 then None
    else
      let idx = int_of_string (String.sub name d (n - d)) in
      let stem =
        if name.[d - 1] = '_' && d > 1 then String.sub name 0 (d - 1)
        else String.sub name 0 d
      in
      Some (stem, idx)
  end

let group names =
  let order = Hashtbl.create 16 in
  let members : (string, (int * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  let next_rank = ref 0 in
  Array.iteri
    (fun sig_idx name ->
      match parse_name name with
      | None -> ()
      | Some (base, bit_idx) -> (
          match Hashtbl.find_opt members base with
          | Some l -> l := (sig_idx, bit_idx) :: !l
          | None ->
              Hashtbl.replace members base (ref [ (sig_idx, bit_idx) ]);
              Hashtbl.replace order base !next_rank;
              incr next_rank))
    names;
  let grouped = Hashtbl.create 16 in
  let vectors =
    Hashtbl.fold (fun base l acc -> (base, List.rev !l) :: acc) members []
    |> List.sort (fun (a, _) (b, _) ->
           compare (Hashtbl.find order a) (Hashtbl.find order b))
    |> List.filter_map (fun (base, pairs) ->
           let indices = List.map snd pairs in
           let distinct = List.sort_uniq compare indices in
           if List.length pairs < 2 || List.length distinct <> List.length pairs
           then None
           else begin
             let sorted =
               List.sort (fun (_, i) (_, j) -> compare i j) pairs
             in
             List.iter (fun (s, _) -> Hashtbl.replace grouped s ()) sorted;
             Some
               {
                 base;
                 bits = Array.of_list (List.map fst sorted);
                 declared_indices = Array.of_list (List.map snd sorted);
               }
           end)
  in
  let scalars =
    List.init (Array.length names) Fun.id
    |> List.filter (fun s -> not (Hashtbl.mem grouped s))
  in
  { vectors; scalars }

let vector_value v read =
  let w = Array.length v.bits in
  if w > 62 then invalid_arg "Grouping.vector_value: vector too wide";
  let acc = ref 0 in
  for k = w - 1 downto 0 do
    acc := (!acc lsl 1) lor (if read v.bits.(k) then 1 else 0)
  done;
  !acc

let set_vector v write value =
  Array.iteri (fun k s -> write s ((value lsr k) land 1 = 1)) v.bits
