(* The domain pool and everything that must merge cleanly under it:
   deterministic result ordering, task error propagation, the
   Lr_instr collect/absorb path hammered from several domains, histogram
   merging, and Blackbox accounting shards (including a strict shard's
   exhaustion raised inside a worker and surfacing with the output index
   attached). *)

module Par = Lr_par.Par
module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module Box = Lr_blackbox.Blackbox
module Instr = Lr_instr.Instr
module Histogram = Lr_report.Histogram

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_clean f =
  Instr.reset_aggregates ();
  Instr.set_sinks [];
  Instr.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Instr.set_sinks [];
      Instr.set_enabled true;
      Instr.set_clock Unix.gettimeofday;
      Instr.reset_aggregates ())
    f

(* ---------------- pool basics ---------------- *)

let test_map_order () =
  Par.with_pool ~jobs:4 @@ fun pool ->
  let items = Array.init 40 Fun.id in
  let results = Par.map pool (fun i -> i * i) items in
  check "40 results" true (Array.length results = 40);
  Array.iteri (fun i r -> check_int "ordered" (i * i) r) results

let test_map_inline () =
  (* jobs = 1 must not spawn: tasks run on the calling domain, where
     they can see domain-local state *)
  let key = Domain.DLS.new_key (fun () -> 0) in
  Domain.DLS.set key 42;
  Par.with_pool ~jobs:1 @@ fun pool ->
  let seen = Par.map pool (fun _ -> Domain.DLS.get key) [| (); (); () |] in
  Array.iter (check_int "calling domain" 42) seen

let test_task_error () =
  Par.with_pool ~jobs:3 @@ fun pool ->
  let finished = Atomic.make 0 in
  match
    Par.map pool
      ~labels:(fun i -> Printf.sprintf "po:%d" i)
      (fun i ->
        if i = 7 then failwith "boom" else Atomic.incr finished;
        i)
      (Array.init 12 Fun.id)
  with
  | _ -> Alcotest.fail "expected Task_error"
  | exception Par.Task_error { index; label; exn; _ } ->
      check_int "failing index" 7 index;
      Alcotest.(check string) "label carries the item" "po:7" label;
      check "original exception kept" true
        (match exn with Failure m -> m = "boom" | _ -> false);
      (* the pool waits for every task even when one fails *)
      check_int "other tasks all finished" 11 (Atomic.get finished)

let test_lowest_index_wins () =
  Par.with_pool ~jobs:4 @@ fun pool ->
  match
    Par.map pool
      (fun i -> if i mod 3 = 1 then failwith "x" else i)
      (Array.init 10 Fun.id)
  with
  | _ -> Alcotest.fail "expected Task_error"
  | exception Par.Task_error { index; _ } ->
      check_int "deterministic report: lowest index" 1 index

(* ---------------- instr under domains ---------------- *)

let test_instr_concurrent_merge () =
  with_clean @@ fun () ->
  let per_task = 1000 in
  let snapshots =
    Par.with_pool ~jobs:4 @@ fun pool ->
    Par.map pool
      (fun t ->
        snd
          (Instr.collect (fun () ->
               Instr.span ~name:"work" (fun () ->
                   for _ = 1 to per_task do
                     Instr.count "hits" 1
                   done;
                   Instr.count (Printf.sprintf "task%d" t) 1))))
      (Array.init 4 Fun.id)
  in
  Array.iter Instr.absorb snapshots;
  check_int "no lost counter updates" (4 * per_task)
    (Instr.counter_total "hits");
  List.iter
    (fun t -> check_int "per-task counter" 1
        (Instr.counter_total (Printf.sprintf "task%d" t)))
    [ 0; 1; 2; 3 ];
  (* span aggregate merged once per task *)
  check_int "span calls merged" 4
    (match List.assoc_opt "work" (Instr.span_calls ()) with
    | Some n -> n
    | None -> 0)

let test_histogram_concurrent_merge () =
  let per_task = 5000 in
  let parts =
    Par.with_pool ~jobs:4 @@ fun pool ->
    Par.map pool
      (fun t ->
        let h = Histogram.create () in
        for i = 1 to per_task do
          Histogram.add h (float_of_int ((t * per_task) + i) *. 1e-6)
        done;
        h)
      (Array.init 4 Fun.id)
  in
  let merged = Histogram.create () in
  Array.iter (fun h -> Histogram.merge ~into:merged h) parts;
  let sequential = Histogram.create () in
  for i = 1 to 4 * per_task do
    Histogram.add sequential (float_of_int i *. 1e-6)
  done;
  check_int "count equals sequential" (Histogram.count sequential)
    (Histogram.count merged);
  check "sum equals sequential" true
    (abs_float (Histogram.sum merged -. Histogram.sum sequential) < 1e-9);
  check "identical buckets" true
    (Histogram.buckets merged = Histogram.buckets sequential)

(* ---------------- blackbox shards ---------------- *)

let identity_box ?budget n =
  Box.of_function ?budget
    ~input_names:(Array.init n (Printf.sprintf "i%d"))
    ~output_names:(Array.init n (Printf.sprintf "o%d"))
    (fun a -> a)

let test_shard_accounting () =
  with_clean @@ fun () ->
  let box = identity_box ~budget:1000 4 in
  (* parent issues a few queries of its own first *)
  Instr.span ~name:"warmup" (fun () ->
      ignore (Box.query box (Bv.create 4)));
  let shards = Array.init 4 (fun _ -> Box.shard ~budget:10 box) in
  let counts =
    Par.with_pool ~jobs:4 @@ fun pool ->
    Par.map pool
      (fun s ->
        snd
          (Instr.collect (fun () ->
               Instr.span ~name:"fbdt" (fun () ->
                   for _ = 1 to 5 do
                     ignore (Box.query s (Bv.create 4))
                   done);
               Box.queries_used s)))
      shards
  in
  ignore counts;
  (* shard queries are invisible to the parent until absorbed *)
  check_int "parent unchanged before absorb" 1 (Box.queries_used box);
  Array.iter
    (fun s ->
      check_int "shard counted its own" 5 (Box.queries_used s);
      check "shard attribution" true
        (List.mem_assoc "fbdt" (Box.queries_by_span s)))
    shards;
  Array.iter (fun s -> Box.absorb box s) shards;
  check_int "absorbed total" 21 (Box.queries_used box);
  let by_span = Box.queries_by_span box in
  check_int "warmup attribution kept" 1 (List.assoc "warmup" by_span);
  check_int "worker spans summed" 20 (List.assoc "fbdt" by_span);
  check_int "attribution sums to queries_used" (Box.queries_used box)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 by_span);
  (* latency histograms merged with the counts *)
  check_int "latency weight follows" 21
    (Histogram.count (Box.query_latency box));
  Box.reset_accounting box;
  check_int "reset clears count" 0 (Box.queries_used box);
  check "reset clears attribution" true (Box.queries_by_span box = []);
  check_int "reset clears latency" 0 (Histogram.count (Box.query_latency box))

let test_strict_shard_exhaustion_in_worker () =
  let box = identity_box 4 in
  let shards =
    Array.init 3 (fun _ -> Box.shard ~budget:8 ~strict:true box)
  in
  match
    Par.with_pool ~jobs:3 @@ fun pool ->
    Par.map pool
      ~labels:(fun i -> Printf.sprintf "po:out%d" i)
      (fun (i, s) ->
        (* task 1 oversteps its slice; the others stay within it *)
        let n = if i = 1 then 9 else 8 in
        for _ = 1 to n do
          ignore (Box.query s (Bv.create 4))
        done)
      (Array.mapi (fun i s -> (i, s)) shards)
  with
  | _ -> Alcotest.fail "expected Task_error(Exhausted)"
  | exception Par.Task_error { index; label; exn; _ } ->
      check_int "output index attached" 1 index;
      Alcotest.(check string) "output label attached" "po:out1" label;
      (match exn with
      | Box.Exhausted { used; budget } ->
          check_int "refused past the slice" 8 used;
          check_int "slice budget" 8 budget
      | e -> Alcotest.failf "unexpected %s" (Printexc.to_string e));
      (* the refused query was not counted *)
      check_int "strict shard stops at its slice" 8
        (Box.queries_used shards.(1))

let test_shard_of_netlist_concurrent () =
  (* netlist-backed boxes are documented safe for concurrent queries:
     all shards agree with a direct evaluation *)
  let spec = Lr_cases.Cases.find "case_16" in
  let golden = Lr_cases.Cases.build spec in
  let box = Box.of_netlist golden in
  let rng = Rng.create 5 in
  let inputs =
    Array.init 64 (fun _ -> Bv.random rng (Box.num_inputs box))
  in
  let shards = Array.init 4 (fun _ -> Box.shard box) in
  let answers =
    Par.with_pool ~jobs:4 @@ fun pool ->
    Par.map pool (fun s -> Box.query_many s inputs) shards
  in
  let want = Array.map (Lr_netlist.Netlist.eval golden) inputs in
  Array.iter
    (fun got ->
      check "concurrent shard answers agree" true
        (Array.for_all2 Bv.equal want got))
    answers;
  Array.iter (fun s -> Box.absorb box s) shards;
  check_int "all queries accounted" (4 * 64) (Box.queries_used box)

let tests =
  [
    Alcotest.test_case "map: deterministic order" `Quick test_map_order;
    Alcotest.test_case "map: jobs=1 runs inline" `Quick test_map_inline;
    Alcotest.test_case "map: task error propagation" `Quick test_task_error;
    Alcotest.test_case "map: lowest failing index wins" `Quick
      test_lowest_index_wins;
    Alcotest.test_case "instr: concurrent collect/absorb" `Quick
      test_instr_concurrent_merge;
    Alcotest.test_case "histogram: concurrent merge" `Quick
      test_histogram_concurrent_merge;
    Alcotest.test_case "blackbox: shard accounting" `Quick
      test_shard_accounting;
    Alcotest.test_case "blackbox: strict exhaustion in worker" `Quick
      test_strict_shard_exhaustion_in_worker;
    Alcotest.test_case "blackbox: concurrent netlist shards" `Quick
      test_shard_of_netlist_concurrent;
  ]
