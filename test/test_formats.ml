module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Verilog = Lr_netlist.Verilog
module Aig = Lr_aig.Aig
module Aiger = Lr_aig.Aiger

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let names prefix n = Array.init n (fun i -> Printf.sprintf "%s%d" prefix i)

let sample_circuit () =
  let c =
    N.create
      ~input_names:[| "a"; "b"; "bus[0]"; "bus[1]" |]
      ~output_names:[| "z"; "carry" |]
  in
  let x i = N.input c i in
  N.set_output c 0 (N.xor_ c (N.and_ c (x 0) (x 1)) (N.or_ c (x 2) (x 3)));
  N.set_output c 1 (N.nand_ c (x 0) (N.nor_ c (x 2) (N.not_ c (x 1))));
  c

let test_aiger_roundtrip () =
  let c = sample_circuit () in
  let aig = Aig.of_netlist c in
  let text = Aiger.write ~comment:"roundtrip test" aig in
  let aig' = Aiger.read text in
  check_int "inputs" (Aig.num_inputs aig) (Aig.num_inputs aig');
  check_int "outputs" (Aig.num_outputs aig) (Aig.num_outputs aig');
  for m = 0 to 15 do
    let words = Array.init 4 (fun i -> if (m lsr i) land 1 = 1 then -1L else 0L) in
    let o1 = Aig.simulate aig words and o2 = Aig.simulate aig' words in
    check
      (Printf.sprintf "semantics at %d" m)
      true
      (Array.for_all2 (fun a b -> Int64.logand (Int64.logxor a b) 1L = 0L) o1 o2)
  done

let test_aiger_header () =
  let aig = Aig.create ~num_inputs:2 ~num_outputs:1 in
  Aig.set_output aig 0 (Aig.and_lit aig (Aig.input_lit aig 0) (Aig.input_lit aig 1));
  let text = Aiger.write aig in
  check "header" true (String.length text > 4 && String.sub text 0 9 = "aag 3 2 0")

let test_aiger_rejects_latches () =
  check "latches rejected" true
    (try
       ignore (Aiger.read "aag 1 0 1 0 0\n2 3\n");
       false
     with Failure _ -> true)

let test_aiger_rejects_binary () =
  check "binary format rejected" true
    (try
       ignore (Aiger.read "aig 0 0 0 0 0\n");
       false
     with Failure _ -> true)

(* reader hardening: malformed AIGER must fail with a located message *)
let aiger_rejects_with fragment text =
  try
    ignore (Aiger.read text);
    false
  with Failure msg ->
    let n = String.length fragment in
    let found = ref false in
    for i = 0 to String.length msg - n do
      if String.sub msg i n = fragment then found := true
    done;
    !found

let test_aiger_rejects_duplicate_and () =
  check "duplicate AND definition rejected" true
    (aiger_rejects_with "defined twice"
       "aag 4 2 0 1 2\n2\n4\n6\n6 2 4\n6 2 4\n")

let test_aiger_rejects_forward_ref () =
  check "use before definition rejected" true
    (aiger_rejects_with "line 5" "aag 4 2 0 1 2\n2\n4\n6\n6 8 2\n8 2 4\n")

let test_aiger_rejects_out_of_range () =
  check "literal beyond bound rejected" true
    (aiger_rejects_with "beyond bound" "aag 3 2 0 1 1\n2\n4\n6\n6 2 10\n");
  check "output beyond bound rejected" true
    (aiger_rejects_with "beyond bound" "aag 2 2 0 1 0\n2\n4\n9\n")

let test_aiger_rejects_bad_header () =
  check "m < i + a rejected" true
    (aiger_rejects_with "header" "aag 2 2 0 1 1\n2\n4\n6\n6 2 4\n");
  check "truncated file located" true
    (aiger_rejects_with "truncated" "aag 3 2 0 1 1\n2\n4")

let test_verilog_structure () =
  let c = sample_circuit () in
  let v = Verilog.write ~module_name:"dut" c in
  check "module line" true
    (String.length v > 0
    && String.sub v 0 (String.length "module dut(") = "module dut(");
  let contains needle =
    let n = String.length needle and h = String.length v in
    let rec go i = i + n <= h && (String.sub v i n = needle || go (i + 1)) in
    go 0
  in
  check "escaped bus identifier" true (contains "\\bus[0] ");
  check "input decl" true (contains "input a;");
  check "output decl" true (contains "output z;");
  check "xor assign present" true (contains " ^ ");
  check "endmodule" true (contains "endmodule")

let test_verilog_deterministic () =
  let c = sample_circuit () in
  check "stable output" true (Verilog.write c = Verilog.write c)

let prop_aiger_roundtrip_random =
  QCheck.Test.make ~name:"AIGER roundtrip preserves semantics" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = N.create ~input_names:(names "x" 5) ~output_names:(names "z" 3) in
      let pool = ref (List.init 5 (fun i -> N.input c i)) in
      let pick () = List.nth !pool (Rng.int rng (List.length !pool)) in
      for _ = 1 to 20 do
        let a = pick () and b = pick () in
        let g =
          match Rng.int rng 3 with
          | 0 -> N.and_ c a b
          | 1 -> N.xor_ c a b
          | _ -> N.nor_ c a b
        in
        pool := g :: !pool
      done;
      for o = 0 to 2 do
        N.set_output c o (pick ())
      done;
      let aig = Aig.of_netlist c in
      let aig' = Aiger.read (Aiger.write aig) in
      let c' = Aig.to_netlist aig' in
      List.for_all
        (fun m ->
          let a = Bv.of_int ~width:5 m in
          Bv.equal (N.eval c a) (N.eval c' a))
        (List.init 32 Fun.id))

let tests =
  [
    Alcotest.test_case "AIGER roundtrip" `Quick test_aiger_roundtrip;
    Alcotest.test_case "AIGER header" `Quick test_aiger_header;
    Alcotest.test_case "AIGER rejects latches" `Quick test_aiger_rejects_latches;
    Alcotest.test_case "AIGER rejects binary" `Quick test_aiger_rejects_binary;
    Alcotest.test_case "AIGER rejects duplicate ANDs" `Quick
      test_aiger_rejects_duplicate_and;
    Alcotest.test_case "AIGER rejects forward references" `Quick
      test_aiger_rejects_forward_ref;
    Alcotest.test_case "AIGER rejects out-of-range literals" `Quick
      test_aiger_rejects_out_of_range;
    Alcotest.test_case "AIGER rejects bad headers" `Quick
      test_aiger_rejects_bad_header;
    Alcotest.test_case "Verilog structure" `Quick test_verilog_structure;
    Alcotest.test_case "Verilog determinism" `Quick test_verilog_deterministic;
    QCheck_alcotest.to_alcotest prop_aiger_roundtrip_random;
  ]
