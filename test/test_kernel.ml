(* The hot-path engine's own contracts: the topological batching that
   the SoA scheduler promises, dirty-cone minimality (the incremental
   engine recomputes exactly the true fanout cone, node for node), the
   SAT portfolio's determinism (verdicts and models identical to a lone
   single-config solver, at any pool size), and the end-to-end
   bit-identity leg: a kernel-enabled learn equals the legacy path at
   jobs=1 and jobs=4, down to the query attribution. *)

module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Io = Lr_netlist.Io
module Analysis = Lr_netlist.Analysis
module Aig = Lr_aig.Aig
module Ksim = Lr_aig.Ksim
module Sat = Lr_sat.Sat
module Par = Lr_par.Par
module Instr = Lr_instr.Instr
module Soa = Lr_kernel.Soa
module Incr = Lr_kernel.Incremental
module Portfolio = Lr_kernel.Portfolio
module Cases = Lr_cases.Cases
module Config = Logic_regression.Config
module Learner = Logic_regression.Learner

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* random circuits come from the shared recipe generator in [Prop] so a
   failure here shrinks the same way the differential properties do *)
let random_recipe rng size = Prop.(arb_recipe.gen) rng size

(* ---------------- topological batching ---------------- *)

let test_batching () =
  let rng = Rng.create 101 in
  for size = 1 to 20 do
    let c = Prop.build_netlist (random_recipe rng size) in
    let s = Soa.of_netlist c in
    let n = Soa.num_nodes s in
    let sched = Soa.schedule s in
    check_int "schedule covers every node" n (Array.length sched);
    let seen = Array.make n false in
    Array.iter
      (fun k ->
        check "schedule has no duplicates" false seen.(k);
        seen.(k) <- true)
      sched;
    let offs = Soa.level_offsets s in
    check_int "one offset per level boundary"
      (Soa.num_levels s + 1)
      (Array.length offs);
    check_int "first offset" 0 offs.(0);
    check_int "last offset" n offs.(Soa.num_levels s);
    (* recover each node's level from its batch, then demand that every
       read fanin lives in a strictly earlier batch *)
    let level = Array.make n 0 in
    for l = 0 to Soa.num_levels s - 1 do
      check "offsets nondecreasing" true (offs.(l) <= offs.(l + 1));
      for i = offs.(l) to offs.(l + 1) - 1 do
        level.(sched.(i)) <- l
      done
    done;
    for k = 0 to n - 1 do
      if Soa.depends_on_arg0 s k then
        check "arg0 scheduled strictly earlier" true
          (level.(Soa.arg0 s k) < level.(k));
      if Soa.depends_on_arg1 s k then
        check "arg1 scheduled strictly earlier" true
          (level.(Soa.arg1 s k) < level.(k))
    done
  done

(* ---------------- dirty-cone minimality ---------------- *)

let test_cone_minimality () =
  let rng = Rng.create 103 in
  for size = 1 to 15 do
    let c = Prop.build_netlist (random_recipe rng size) in
    let s = Soa.of_netlist c in
    let n = N.num_nodes c in
    let ni = N.num_inputs c in
    (* node-for-node agreement with the netlist-layer reference *)
    for _ = 1 to 5 do
      let seed = Rng.int rng n in
      Alcotest.(check (array bool))
        "fanout cone == Analysis.fanout_cone"
        (Analysis.fanout_cone c [ seed ])
        (Soa.fanout_cone s [ seed ])
    done;
    let nodes_of cone skip =
      List.filter (fun k -> cone.(k) && k <> skip) (List.init n Fun.id)
    in
    (* an input perturbation recomputes exactly the cone of the nodes
       reading that input — never one node more *)
    let e = Incr.create s in
    Incr.load e (Array.init ni (fun _ -> Rng.bits64 rng));
    let i = Rng.int rng ni in
    Incr.set_input e i (Rng.bits64 rng);
    let readers =
      List.filter
        (fun k -> match N.gate c k with N.Input j -> j = i | _ -> false)
        (List.init n Fun.id)
    in
    Alcotest.(check (list int))
      "set_input resimulates the true input cone"
      (nodes_of (Analysis.fanout_cone c readers) (-1))
      (List.sort compare (Incr.last_resim e));
    (* a hypothetical probe recomputes the node's cone, the pinned node
       itself excluded *)
    let z = Rng.int rng n in
    Incr.with_forced e ~node:z 0x5DEECE66DL (fun e ->
        Alcotest.(check (list int))
          "with_forced resimulates the cone minus the pinned node"
          (nodes_of (Analysis.fanout_cone c [ z ]) z)
          (List.sort compare (Incr.last_resim e)))
  done

(* ---------------- SAT portfolio determinism ---------------- *)

(* random 3-CNF near the sat/unsat threshold (ratio ~4.3) so both
   verdicts appear across the rounds *)
let random_cnf rng nvars nclauses =
  List.init nclauses (fun _ ->
      List.init 3 (fun _ ->
          let v = 1 + Rng.int rng nvars in
          if Rng.bool rng then v else -v))

let test_portfolio_determinism () =
  let rng = Rng.create 107 in
  let sat_seen = ref false and unsat_seen = ref false in
  (* count engagements so an accidentally-easy instance mix (where the
     primary answers inside first_budget and no race ever runs) fails
     loudly instead of vacuously passing *)
  let races = ref 0 in
  Instr.set_sinks
    [
      {
        Instr.emit =
          (fun e ->
            match e with
            | Instr.Count { name = "kernel.portfolio-races"; incr; _ } ->
                races := !races + incr
            | _ -> ());
        flush = (fun () -> ());
      };
    ];
  Fun.protect ~finally:(fun () -> Instr.set_sinks []) @@ fun () ->
  for _ = 1 to 12 do
    (* big enough that threshold instances outlast the primary's first
       restart window, so the race genuinely runs its rounds *)
    let nvars = 60 + Rng.int rng 60 in
    let nclauses = int_of_float (4.3 *. float_of_int nvars) in
    let cnf = random_cnf rng nvars nclauses in
    let fresh config =
      let s = match config with
        | None -> Sat.create ()
        | Some config -> Sat.create ~config ()
      in
      for _ = 1 to nvars do ignore (Sat.new_var s) done;
      List.iter (Sat.add_clause s) cnf;
      s
    in
    let lone = fresh None in
    let verdict_lone = Sat.solve lone in
    let model solver = List.init nvars (fun v -> Sat.value solver (v + 1)) in
    let model_lone =
      match verdict_lone with Sat.Sat -> model lone | Sat.Unsat -> []
    in
    (match verdict_lone with
    | Sat.Sat -> sat_seen := true
    | Sat.Unsat -> unsat_seen := true);
    let race_with pool =
      let primary = fresh None in
      let secondaries =
        Array.to_list
          (Array.map
             (fun config () ->
               { Portfolio.solver = fresh (Some config); assumptions = [] })
             Portfolio.secondary_configs)
      in
      (* a 1-conflict first budget engages the race on everything the
         primary cannot decide by propagation alone; tiny rounds
         maximise the interleaving the resolution must hide *)
      let verdict =
        Portfolio.race ?pool ~first_budget:1 ~round_budget:16
          ~primary:{ Portfolio.solver = primary; assumptions = [] }
          ~secondaries ()
      in
      match verdict with
      | Sat.Sat -> (verdict, model primary)
      | Sat.Unsat -> (verdict, [])
    in
    let v1, m1 = race_with None in
    let v4, m4 = Par.with_pool ~jobs:4 (fun p -> race_with (Some p)) in
    check "portfolio verdict == lone solver" true (v1 = verdict_lone);
    Alcotest.(check (list bool)) "portfolio model == lone model" model_lone m1;
    check "pool=4 verdict identical" true (v4 = verdict_lone);
    Alcotest.(check (list bool)) "pool=4 model identical" model_lone m4
  done;
  check "threshold mix produced a Sat instance" true !sat_seen;
  check "threshold mix produced an Unsat instance" true !unsat_seen;
  check "the portfolio actually raced" true (!races > 0)

(* assumption-scoped races: the fraig call sites always race under an
   activation literal, so verdicts under assumptions must replay too *)
let test_portfolio_assumptions () =
  let rng = Rng.create 109 in
  for _ = 1 to 6 do
    let nvars = 12 + Rng.int rng 20 in
    let cnf = random_cnf rng nvars (4 * nvars) in
    let activation = nvars + 1 in
    let fresh config =
      let s = match config with
        | None -> Sat.create ()
        | Some config -> Sat.create ~config ()
      in
      for _ = 1 to nvars + 1 do ignore (Sat.new_var s) done;
      (* guard every clause behind the activation literal *)
      List.iter (fun cl -> Sat.add_clause s (-activation :: cl)) cnf;
      s
    in
    let lone = fresh None in
    let verdict_lone = Sat.solve ~assumptions:[ activation ] lone in
    let primary = fresh None in
    let secondaries =
      Array.to_list
        (Array.map
           (fun config () ->
             {
               Portfolio.solver = fresh (Some config);
               assumptions = [ activation ];
             })
           Portfolio.secondary_configs)
    in
    let verdict =
      Portfolio.race ~first_budget:1 ~round_budget:16
        ~primary:{ Portfolio.solver = primary; assumptions = [ activation ] }
        ~secondaries ()
    in
    check "assumption race verdict == lone solver" true
      (verdict = verdict_lone);
    if verdict_lone = Sat.Sat then
      Alcotest.(check (list bool))
        "assumption race model == lone model"
        (List.init nvars (fun v -> Sat.value lone (v + 1)))
        (List.init nvars (fun v -> Sat.value primary (v + 1)))
  done

(* ---------------- end-to-end bit-identity ---------------- *)

let fast =
  {
    Config.default with
    Config.support_rounds = 192;
    node_rounds = 32;
    max_tree_nodes = 512;
    optimize_rounds = 1;
    fraig_words = 4;
    template_samples = 32;
    (* the full sweep plus full self-checks routes every kernel client —
       fraig, equiv, selfcheck, dirty-cone ODC — into the comparison *)
    sweep = Config.Sweep_full;
    check_level = Config.Full;
  }

let learn ~kernel ~jobs =
  let spec = Cases.find "case_7" in
  let box = Cases.blackbox ~budget:150_000 spec in
  let report =
    Learner.learn ~config:{ fast with Config.seed = 5; jobs; kernel } box
  in
  ( Io.write report.Learner.circuit,
    report.Learner.queries,
    report.Learner.phase_queries,
    report.Learner.checks_verified,
    report.Learner.sweep_removed )

let test_bit_identity () =
  let net0, q0, pq0, cv0, sr0 = learn ~kernel:false ~jobs:1 in
  List.iter
    (fun (kernel, jobs) ->
      let ctx = Printf.sprintf "kernel=%b jobs=%d" kernel jobs in
      let net, q, pq, cv, sr = learn ~kernel ~jobs in
      Alcotest.(check string) (ctx ^ ": bit-identical netlist") net0 net;
      check_int (ctx ^ ": equal queries") q0 q;
      Alcotest.(check (list (pair string int)))
        (ctx ^ ": equal phase queries") pq0 pq;
      check_int (ctx ^ ": equal checks verified") cv0 cv;
      check_int (ctx ^ ": equal sweep removals") sr0 sr)
    [ (false, 4); (true, 1); (true, 4) ]

let tests =
  [
    Alcotest.test_case "topological batching" `Quick test_batching;
    Alcotest.test_case "dirty-cone minimality" `Quick test_cone_minimality;
    Alcotest.test_case "portfolio determinism" `Quick
      test_portfolio_determinism;
    Alcotest.test_case "portfolio determinism under assumptions" `Quick
      test_portfolio_assumptions;
    Alcotest.test_case "kernel/jobs bit-identity on a real case" `Quick
      test_bit_identity;
  ]
