(* Profiler smoke checker: a real CLI run wrote --trace-jsonl,
   --progress and --metrics-out artifacts, and lr_prof consumed the
   trace. Print deterministic facts about all of them (span structure,
   progress protocol counts, metrics families, folded-stack shape) and
   diff against prof.expected — timing values never appear, so the
   output is stable across machines. *)

module Json = Lr_instr.Json
module Profile = Lr_prof.Profile
module Folded = Lr_prof.Folded

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let has_sub text needle =
  let nl = String.length needle and tl = String.length text in
  let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
  go 0

let () =
  let trace_path = Sys.argv.(1)
  and progress_path = Sys.argv.(2)
  and metrics_path = Sys.argv.(3)
  and top_path = Sys.argv.(4)
  and folded_path = Sys.argv.(5) in

  (* ---- the trace parses into a profile with the expected structure ---- *)
  let p =
    match Profile.load_file trace_path with
    | Ok p -> p
    | Error e ->
        Printf.printf "trace: PARSE ERROR %s\n" e;
        exit 0
  in
  Printf.printf "trace parses, spans nonempty: %b\n" (p.Profile.nodes <> []);
  let roots = List.filter (fun n -> n.Profile.depth = 0) p.Profile.nodes in
  Printf.printf "root spans: %s\n"
    (String.concat " " (List.map (fun n -> n.Profile.path) roots));
  let depth1 = List.filter (fun n -> n.Profile.depth = 1) p.Profile.nodes in
  let is_po n =
    String.length n.Profile.name > 3 && String.sub n.Profile.name 0 3 = "po:"
  in
  Printf.printf "phases: %s\n"
    (String.concat " "
       (List.map
          (fun n -> n.Profile.name)
          (List.filter (fun n -> not (is_po n)) depth1)));
  Printf.printf "conquered outputs: %d\n"
    (List.length (List.filter is_po depth1));
  Printf.printf "fine-grained conquer spans present: %b\n"
    (List.exists
       (fun n ->
         is_po n
         && List.exists
              (fun m ->
                Profile.(
                  m.depth = 2
                  && String.length m.path > String.length n.Profile.path
                  && String.sub m.path 0 (String.length n.Profile.path)
                     = n.Profile.path))
              p.Profile.nodes)
       depth1);
  Printf.printf "queries counter recorded: %b\n"
    (List.mem_assoc "queries" p.Profile.counters);
  Printf.printf "sim words counter recorded: %b\n"
    (List.mem_assoc "sim.gate-words" p.Profile.counters);

  (* ---- progress stream protocol ---- *)
  let prog_lines =
    String.split_on_char '\n' (read_file progress_path)
    |> List.filter (fun l -> l <> "")
  in
  let evs =
    List.map
      (fun l ->
        match Json.of_string l with
        | Ok j -> (
            match Option.bind (Json.member "ev" j) Json.get_string with
            | Some e -> e
            | None -> "<no-ev>")
        | Error _ -> "<bad-json>")
      prog_lines
  in
  let count e = List.length (List.filter (( = ) e) evs) in
  Printf.printf "progress first/last: %s %s\n"
    (match evs with e :: _ -> e | [] -> "<empty>")
    (match List.rev evs with e :: _ -> e | [] -> "<empty>");
  Printf.printf "progress malformed lines: %d\n"
    (count "<bad-json>" + count "<no-ev>");
  Printf.printf "progress outputs done: %d\n" (count "output_done");
  Printf.printf "progress phase begins >= phase ends: %b\n"
    (count "phase" >= count "phase_end");
  Printf.printf "progress schema tagged: %b\n"
    (match prog_lines with l :: _ -> has_sub l "lr-progress/v1" | [] -> false);

  (* ---- metrics exposition ---- *)
  let metrics = read_file metrics_path in
  List.iter
    (fun fam ->
      Printf.printf "metrics family %s: %b\n" fam
        (has_sub metrics ("# TYPE " ^ fam)))
    [
      "lr_span_seconds_total counter";
      "lr_span_calls_total counter";
      "lr_counter_total counter";
      "lr_counter_by_span_total counter";
      "lr_gc_minor_words_total counter";
      "lr_gc_heap_words gauge";
      "lr_run_queries_total counter";
      "lr_query_latency_seconds gauge";
    ];
  Printf.printf "metrics span sample labelled: %b\n"
    (has_sub metrics "lr_span_seconds_total{path=\"learn\"}");

  (* ---- lr_prof top output ---- *)
  let top = read_file top_path in
  Printf.printf "top shows hotspot table: %b\n"
    (has_sub top "hotspots by self time");
  Printf.printf "top shows phase attribution: %b\n"
    (has_sub top "phase attribution");
  Printf.printf "top shows conquer aggregate: %b\n"
    (has_sub top "po:* (conquer)");
  Printf.printf "top shows counter rates: %b\n"
    (has_sub top "counter rates by span");

  (* ---- folded stacks ---- *)
  let folded_lines =
    String.split_on_char '\n' (read_file folded_path)
    |> List.filter (fun l -> l <> "")
  in
  let well_formed l =
    match String.rindex_opt l ' ' with
    | None -> false
    | Some i -> (
        match int_of_string_opt (String.sub l (i + 1) (String.length l - i - 1))
        with
        | Some n -> n > 0 && String.length (String.sub l 0 i) > 0
        | None -> false)
  in
  Printf.printf "folded nonempty: %b\n" (folded_lines <> []);
  Printf.printf "folded lines well-formed: %b\n"
    (List.for_all well_formed folded_lines);
  let prefixed l p =
    String.length l >= String.length p && String.sub l 0 (String.length p) = p
  in
  Printf.printf "folded roots at learn: %b\n"
    (List.for_all (fun l -> prefixed l "learn") folded_lines);
  (* the exported file is exactly what the profile folds to *)
  Printf.printf "folded matches profile: %b\n"
    (folded_lines = Folded.lines p)
