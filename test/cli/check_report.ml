(* CLI smoke checker: parses the --json report and --trace file produced
   by a real CLI invocation and prints deterministic facts about their
   shape. The output is diffed against schema.expected (dune promote to
   update), so schema drift in either artifact fails `dune runtest`. *)

module Json = Lr_instr.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse path =
  match Json.of_string (read_file path) with
  | Ok v -> v
  | Error e ->
      Printf.printf "%s: PARSE ERROR %s\n" (Filename.basename path) e;
      exit 0

let get_str v k =
  match Option.bind (Json.member k v) Json.get_string with
  | Some s -> s
  | None -> "<missing>"

let get_int v k =
  match Option.bind (Json.member k v) Json.get_int with
  | Some i -> i
  | None -> min_int

let () =
  let report_path = Sys.argv.(1) and trace_path = Sys.argv.(2) in
  let report = parse report_path in

  (* top-level report shape *)
  let keys =
    match Json.get_obj report with
    | Some kvs -> List.sort compare (List.map fst kvs)
    | None -> []
  in
  Printf.printf "report keys: %s\n" (String.concat " " keys);
  Printf.printf "schema: %s\n" (get_str report "schema");
  Printf.printf "case: %s\n" (get_str report "case");

  (* phase list and the attribution invariant *)
  let phases =
    match Option.bind (Json.member "phases" report) Json.get_list with
    | Some l -> l
    | None -> []
  in
  Printf.printf "phases: %s\n"
    (String.concat " " (List.map (fun p -> get_str p "name") phases));
  let phase_sum =
    List.fold_left (fun acc p -> acc + get_int p "queries") 0 phases
  in
  Printf.printf "phase queries sum == queries: %b\n"
    (phase_sum = get_int report "queries");
  Printf.printf "all phase seconds finite and >= 0: %b\n"
    (List.for_all
       (fun p ->
         match Option.bind (Json.member "seconds" p) Json.get_float with
         | Some s -> Float.is_finite s && s >= 0.0
         | None -> false)
       phases);
  Printf.printf "all phase gc_major_words finite and >= 0: %b\n"
    (List.for_all
       (fun p ->
         match Option.bind (Json.member "gc_major_words" p) Json.get_float with
         | Some w -> Float.is_finite w && w >= 0.0
         | None -> get_str p "name" = "other")
       phases);
  let outputs_detail =
    match Option.bind (Json.member "outputs_detail" report) Json.get_list with
    | Some l -> l
    | None -> []
  in
  Printf.printf "outputs_detail count == outputs: %b\n"
    (List.length outputs_detail = get_int report "outputs");

  (* query-latency histogram summary *)
  let latency =
    match Json.member "query_latency" report with
    | Some v -> v
    | None -> Json.Null
  in
  let lat k = Option.bind (Json.member k latency) Json.get_float in
  Printf.printf "query_latency count == queries: %b\n"
    (get_int latency "count" = get_int report "queries"
    && get_int latency "count" > 0);
  Printf.printf "query_latency percentiles ordered: %b\n"
    (match (lat "min", lat "p50", lat "p90", lat "p99", lat "max") with
    | Some mn, Some p50, Some p90, Some p99, Some mx ->
        0.0 <= mn && mn <= p50 && p50 <= p90 && p90 <= p99 && p99 <= mx
    | _ -> false);

  (* wall-clock budget bookkeeping (no --time-budget given) *)
  Printf.printf "time_budget_s null: %b\n"
    (Json.member "time_budget_s" report = Some Json.Null);
  Printf.printf "budget_exceeded: %s\n"
    (match Option.bind (Json.member "budget_exceeded" report) Json.get_bool with
    | Some b -> string_of_bool b
    | None -> "<missing>");

  (* trace: valid JSON array, balanced B/E, all pipeline phases present *)
  let trace = parse trace_path in
  let events = match Json.get_list trace with Some l -> l | None -> [] in
  Printf.printf "trace is array: %b\n" (Json.get_list trace <> None);
  let ph p e = get_str e "ph" = p in
  let begins = List.filter (ph "B") events in
  let ends = List.filter (ph "E") events in
  Printf.printf "trace B/E balanced: %b\n"
    (List.length begins = List.length ends && begins <> []);
  let b_names = List.map (fun e -> get_str e "name") begins in
  let pipeline =
    [ "templates"; "support-id"; "fbdt"; "cover-min"; "aig-opt" ]
  in
  Printf.printf "pipeline phases traced: %s\n"
    (String.concat " "
       (List.map
          (fun n -> Printf.sprintf "%s=%b" n (List.mem n b_names))
          pipeline));
  Printf.printf "trace timestamps relative: %b\n"
    (match events with
    | first :: _ -> (
        match Option.bind (Json.member "ts" first) Json.get_float with
        | Some t -> t = 0.0
        | None -> false)
    | [] -> false)
