(* Fault-injection CLI checker: parses the --json reports of a retried
   run (exit 0, transparent) and a hard-faulted run (exit 3, degraded)
   and prints deterministic facts, diffed against faults.expected. The
   exit codes themselves are enforced by the dune rules that produce the
   inputs ([with-accepted-exit-codes]). *)

module Json = Lr_instr.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse path =
  match Json.of_string (read_file path) with
  | Ok v -> v
  | Error e ->
      Printf.printf "%s: PARSE ERROR %s\n" (Filename.basename path) e;
      exit 0

let get_str v k =
  match Option.bind (Json.member k v) Json.get_string with
  | Some s -> s
  | None -> "<missing>"

let get_int v k =
  match Option.bind (Json.member k v) Json.get_int with
  | Some i -> i
  | None -> min_int

let seen report k =
  match Json.member "faults_seen" report with
  | Some o -> get_int o k
  | None -> min_int

let phase_retry_sum report =
  match Option.bind (Json.member "phases" report) Json.get_list with
  | Some l -> List.fold_left (fun acc p -> acc + get_int p "retries") 0 l
  | None -> min_int

let () =
  let retried = parse Sys.argv.(1) and degraded = parse Sys.argv.(2) in

  (* retried run: faults were injected, every one outlasted *)
  Printf.printf "retried faults: %s\n" (get_str retried "faults");
  Printf.printf "retried saw transients: %b\n" (seen retried "transient" > 0);
  Printf.printf "retried retries > 0: %b\n" (get_int retried "retries" > 0);
  Printf.printf "retried phase retries sum == retries: %b\n"
    (phase_retry_sum retried = get_int retried "retries");
  Printf.printf "retried degraded: %d\n" (get_int retried "degraded");

  (* degraded run: retries disabled, every output gave up *)
  Printf.printf "degraded faults: %s\n" (get_str degraded "faults");
  Printf.printf "degraded == outputs: %b\n"
    (get_int degraded "degraded" = get_int degraded "outputs"
    && get_int degraded "degraded" > 0);
  Printf.printf "degraded retries: %d\n" (get_int degraded "retries");
  Printf.printf "degraded saw exhaust: %d\n" (seen degraded "exhaust");
  let methods =
    match Option.bind (Json.member "outputs_detail" degraded) Json.get_list with
    | Some l ->
        List.sort_uniq compare (List.map (fun o -> get_str o "method") l)
    | None -> []
  in
  Printf.printf "degraded methods: %s\n" (String.concat " " methods)
