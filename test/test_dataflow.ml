(* The semantic dataflow engine: lattice laws, the generic fixpoint,
   forward/backward abstract interpretation, SAT-backed equivalence
   classes, the rebuild engine and the verified sweep — plus the
   learner-level contract (sweep issues no queries, never grows the
   circuit, preserves the function). *)

module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Equiv = Lr_aig.Equiv
module L = Lr_dataflow.Lattice
module Absint = Lr_dataflow.Absint
module Equivcls = Lr_dataflow.Equivcls
module Rebuild = Lr_dataflow.Rebuild
module Sweep = Lr_dataflow.Sweep
module Semantic = Lr_dataflow.Semantic
module Finding = Lr_check.Finding
module Cases = Lr_cases.Cases
module Config = Logic_regression.Config
module Learner = Logic_regression.Learner

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let names prefix n = Array.init n (fun i -> Printf.sprintf "%s%d" prefix i)

let fresh ni no =
  N.create ~input_names:(names "x" ni) ~output_names:(names "z" no)

let assert_equivalent label c1 c2 =
  match Equiv.check c1 c2 with
  | Equiv.Equivalent -> ()
  | Equiv.Counterexample cex ->
      Alcotest.failf "%s: not equivalent on %s" label (Bv.to_string cex)

(* -------------------------------------------------------------- lattice *)

let test_lattice_laws () =
  let all = [ L.Zero; L.One; L.Top ] in
  List.iter
    (fun a ->
      check "join idempotent" true (L.equal (L.join a a) a);
      check "top absorbs" true (L.equal (L.join a L.Top) L.Top);
      List.iter
        (fun b -> check "join commutes" true (L.equal (L.join a b) (L.join b a)))
        all)
    all;
  (* controlling values decide even against Top *)
  check "0 controls AND" true (L.equal (L.and_ L.Zero L.Top) L.Zero);
  check "1 controls OR" true (L.equal (L.or_ L.Top L.One) L.One);
  check "0 controls NAND" true (L.equal (L.nand_ L.Zero L.Top) L.One);
  check "1 controls NOR" true (L.equal (L.nor_ L.One L.Top) L.Zero);
  (* XOR/XNOR have no controlling value *)
  check "XOR leaks nothing" true (L.equal (L.xor_ L.Zero L.Top) L.Top);
  check "XNOR leaks nothing" true (L.equal (L.xnor_ L.One L.Top) L.Top);
  (* known operands evaluate exactly *)
  check "1 xor 1" true (L.equal (L.xor_ L.One L.One) L.Zero);
  check "not 0" true (L.equal (L.not_ L.Zero) L.One);
  check "to_bool" true (L.to_bool L.One = Some true && L.to_bool L.Top = None)

let test_fixpoint_directions () =
  (* forward chain: v(0) = 1, v(i) = v(i-1) + 1 *)
  let n = 5 in
  let fwd =
    L.fixpoint ~n ~direction:L.Forward
      ~dependents:(fun i -> if i < n - 1 then [ i + 1 ] else [])
      ~transfer:(fun get i -> if i = 0 then 1 else get (i - 1) + 1)
      ~equal:Int.equal
      ~init:(fun _ -> 0)
  in
  Alcotest.(check (array int)) "forward chain" [| 1; 2; 3; 4; 5 |] fwd;
  (* backward chain: v(n-1) = 1, v(i) = v(i+1) + 1 *)
  let bwd =
    L.fixpoint ~n ~direction:L.Backward
      ~dependents:(fun i -> if i > 0 then [ i - 1 ] else [])
      ~transfer:(fun get i -> if i = n - 1 then 1 else get (i + 1) + 1)
      ~equal:Int.equal
      ~init:(fun _ -> 0)
  in
  Alcotest.(check (array int)) "backward chain" [| 5; 4; 3; 2; 1 |] bwd

(* --------------------------------------------------------------- absint *)

let test_values_assume () =
  let c = fresh 2 1 in
  let a = N.input c 0 and b = N.input c 1 in
  let g = N.and_ c a b in
  N.set_output c 0 (N.or_ c g (N.not_ c b));
  let free = Absint.values c in
  check "unassumed gate is Top" true (L.equal free.(g) L.Top);
  check "no free constants" true (Absint.constants ~values:free c = []);
  (* pin b = 0: the AND dies, the output is forced to 1 *)
  let pinned = Absint.values ~assume:[ (b, false) ] c in
  check "AND under b=0" true (L.equal pinned.(g) L.Zero);
  check "output under b=0" true (L.equal pinned.(N.output c 0) L.One);
  let consts = Absint.constants ~values:pinned c in
  check "AND reported constant" true (List.mem_assoc g consts)

let test_observability_blocking () =
  let c = fresh 2 2 in
  let a = N.input c 0 and b = N.input c 1 in
  N.set_output c 0 a;
  N.set_output c 1 (N.and_ c a b);
  let obs = Absint.observability c in
  check "a seen by both outputs" true
    (Absint.observed_by obs a 0 && Absint.observed_by obs a 1);
  check "b seen only through the AND" true
    ((not (Absint.observed_by obs b 0)) && Absint.observed_by obs b 1);
  check_int "observer count of a" 2 (Absint.observers obs a);
  (* under b = 0 the AND is constant, so its fanin edges are blocked:
     a stays observable through output 0 only *)
  let vals = Absint.values ~assume:[ (b, false) ] c in
  let obs0 = Absint.observability ~values:vals c in
  check "a blocked at the dead AND" true
    (Absint.observed_by obs0 a 0 && not (Absint.observed_by obs0 a 1));
  check "b observed nowhere" false (Absint.observed obs0 b)

(* ------------------------------------------------------------- equivcls *)

let test_equivcls_de_morgan () =
  let c = fresh 2 2 in
  let a = N.input c 0 and b = N.input c 1 in
  let direct = N.or_ c a b in
  (* the De Morgan twin is structurally distinct: strash cannot merge it *)
  let twin = N.and_ c (N.not_ c a) (N.not_ c b) in
  N.set_output c 0 direct;
  N.set_output c 1 (N.not_ c twin);
  check "strash kept them apart" true (direct <> N.not_ c twin);
  let eq = Equivcls.compute ~rng:(Rng.create 42) c in
  check_int "twin resolves to the OR" direct (Equivcls.repr_node eq twin);
  check "twin is the complement" true (Equivcls.repr_phase eq twin);
  check "at least one SAT proof" true (eq.Equivcls.proved >= 1)

let test_equivcls_sat_constant () =
  (* x XOR y XOR (x XNOR y) is the constant 1, invisible to the lattice
     and to strashing, provable by SAT *)
  let c = fresh 2 1 in
  let a = N.input c 0 and b = N.input c 1 in
  let g = N.xor_ c (N.xor_ c a b) (N.xnor_ c a b) in
  N.set_output c 0 g;
  check "strash kept the tautology" true (g <> N.const_true c);
  let vals = Absint.values c in
  check "lattice cannot see it" true (L.equal vals.(g) L.Top);
  let eq = Equivcls.compute ~rng:(Rng.create 7) c in
  check "SAT resolves it to constant true" true
    (Equivcls.repr_node eq g = 1 && not (Equivcls.repr_phase eq g)
    || (Equivcls.repr_node eq g = 0 && Equivcls.repr_phase eq g))

(* -------------------------------------------------------------- rebuild *)

let test_rebuild_const_action () =
  let c = fresh 2 1 in
  let a = N.input c 0 and b = N.input c 1 in
  let g = N.and_ c a b in
  N.set_output c 0 (N.or_ c g a);
  let plan node = if node = g then Rebuild.Const true else Rebuild.Keep in
  let c' = Rebuild.apply c plan in
  (* OR(1, a) folds to the constant; the whole cone evaporates *)
  check_int "all gates folded away" 0 (N.size c');
  check "output pinned to 1" true
    (Bv.get (N.eval c' (Bv.of_string "00")) 0
    && Bv.get (N.eval c' (Bv.of_string "11")) 0)

(* ---------------------------------------------------------------- sweep *)

(* the XOR shape an AIG round-trip leaves: NOR of (a AND b, ~a AND ~b) *)
let xor_tree c a b =
  let p = N.and_ c a b in
  let q = N.and_ c (N.not_ c a) (N.not_ c b) in
  N.nor_ c p q

let test_sweep_recovers_xor () =
  let c = fresh 3 1 in
  let a = N.input c 0 and b = N.input c 1 and s = N.input c 2 in
  N.set_output c 0 (N.and_ c (xor_tree c a b) s);
  check_int "tree costs four gates" 4 (N.size c);
  let verified = ref 0 in
  let swept, st =
    Sweep.run
      ~verify:(fun ~stage:_ before after -> incr verified;
        assert_equivalent "sweep stage" before after)
      ~rng:(Rng.create 5) c
  in
  check "xor recovered" true (st.Sweep.xor_recovered >= 1);
  check_int "two gates remain" 2 (N.size swept);
  check_int "stats match" 2 (Sweep.removed st);
  check "verify hook ran" true (!verified >= 1);
  assert_equivalent "sweep result" c swept

let test_sweep_never_grows () =
  (* an already-minimal netlist: the sweep must be the identity *)
  let c = fresh 3 1 in
  let x i = N.input c i in
  N.set_output c 0 (N.xor_ c (N.and_ c (x 0) (x 1)) (x 2));
  let swept, st = Sweep.run ~rng:(Rng.create 9) c in
  check_int "nothing removed" 0 (Sweep.removed st);
  check_int "size unchanged" (N.size c) (N.size swept);
  assert_equivalent "identity sweep" c swept

let test_sweep_const_level () =
  (* Const_prop alone must not touch SAT-provable-only redundancy *)
  let c = fresh 2 1 in
  let a = N.input c 0 and b = N.input c 1 in
  N.set_output c 0 (N.or_ c (N.or_ c a b) (xor_tree c a b));
  let _, st = Sweep.run ~level:Sweep.Const_prop ~rng:(Rng.create 3) c in
  check_int "no merges at const level" 0 st.Sweep.merged;
  check_int "no xor recovery at const level" 0 st.Sweep.xor_recovered;
  check_int "no odc rewrites at const level" 0 st.Sweep.odc_rewrites

(* ------------------------------------------------------------- semantic *)

let test_semantic_rules () =
  let c = fresh 2 2 in
  let a = N.input c 0 and b = N.input c 1 in
  N.set_output c 0 (xor_tree c a b);
  N.set_output c 1 (N.xor_ c a b);
  let findings = Semantic.netlist c in
  let rules = List.map (fun (r, _) -> r) (Semantic.rule_counts findings) in
  check "xor-convertible fires" true (List.mem "xor-convertible" rules);
  check "outputs proven duplicates" true (List.mem "duplicate-output" rules);
  check "normalized output" true (Finding.normalize findings = findings);
  check "estimate positive" true (Semantic.removal_estimate c > 0)

(* -------------------------------------------------------------- learner *)

let fast =
  {
    Config.default with
    Config.support_rounds = 192;
    node_rounds = 32;
    max_tree_nodes = 512;
    optimize_rounds = 1;
    fraig_words = 4;
    check_level = Config.Full;
  }

let test_learner_sweep_contract () =
  let learn sweep =
    let box = Cases.blackbox (Cases.find "case_7") in
    Learner.learn ~config:{ fast with Config.sweep } box
  in
  let base = learn Config.Sweep_off in
  let swept = learn Config.Sweep_full in
  check_int "sweep off reports nothing" 0 base.Learner.sweep_removed;
  check_int "sweep issues no black-box queries" 0
    (List.assoc "sweep" swept.Learner.phase_queries);
  check_int "query counts identical" base.Learner.queries swept.Learner.queries;
  (* the pre-sweep circuit is bit-identical across the two runs, so the
     reported removal is exactly the size difference *)
  check_int "removal accounts the size difference"
    (N.size base.Learner.circuit - N.size swept.Learner.circuit)
    swept.Learner.sweep_removed;
  check "sweep never grows" true
    (N.size swept.Learner.circuit <= N.size base.Learner.circuit);
  assert_equivalent "swept learner circuit" base.Learner.circuit
    swept.Learner.circuit

let tests =
  [
    Alcotest.test_case "lattice laws" `Quick test_lattice_laws;
    Alcotest.test_case "fixpoint both directions" `Quick
      test_fixpoint_directions;
    Alcotest.test_case "forward values under assumptions" `Quick
      test_values_assume;
    Alcotest.test_case "observability blocking" `Quick
      test_observability_blocking;
    Alcotest.test_case "equivalence classes across De Morgan" `Quick
      test_equivcls_de_morgan;
    Alcotest.test_case "SAT-only constant detected" `Quick
      test_equivcls_sat_constant;
    Alcotest.test_case "rebuild constant action" `Quick
      test_rebuild_const_action;
    Alcotest.test_case "sweep recovers XOR trees" `Quick
      test_sweep_recovers_xor;
    Alcotest.test_case "sweep is identity on minimal logic" `Quick
      test_sweep_never_grows;
    Alcotest.test_case "const level stays structural" `Quick
      test_sweep_const_level;
    Alcotest.test_case "semantic rules fire and normalize" `Quick
      test_semantic_rules;
    Alcotest.test_case "learner sweep contract" `Quick
      test_learner_sweep_contract;
  ]
