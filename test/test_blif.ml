module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module N = Lr_netlist.Netlist
module Blif = Lr_netlist.Blif
module Cases = Lr_cases.Cases

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let names prefix n = Array.init n (fun i -> Printf.sprintf "%s%d" prefix i)

let sample_circuit () =
  let c = N.create ~input_names:(names "x" 4) ~output_names:(names "z" 2) in
  let x i = N.input c i in
  N.set_output c 0 (N.xor_ c (N.and_ c (x 0) (x 1)) (N.nor_ c (x 2) (x 3)));
  N.set_output c 1 (N.xnor_ c (x 1) (N.not_ c (x 2)));
  c

let semantically_equal c1 c2 n =
  List.for_all
    (fun m ->
      let a = Bv.of_int ~width:n m in
      Bv.equal (N.eval c1 a) (N.eval c2 a))
    (List.init (1 lsl n) Fun.id)

let test_roundtrip () =
  let c = sample_circuit () in
  let c' = Blif.read (Blif.write ~model:"t" c) in
  check_int "inputs" (N.num_inputs c) (N.num_inputs c');
  check_int "outputs" (N.num_outputs c) (N.num_outputs c');
  check "same function" true (semantically_equal c c' 4)

let test_reads_handwritten_blif () =
  (* a 3-LUT with don't-cares and a zero-polarity table, typical SIS output *)
  let text =
    ".model handmade\n\
     .inputs a b c\n\
     .outputs f g\n\
     .names a b c f\n\
     1-1 1\n\
     01- 1\n\
     .names a b g\n\
     00 0\n\
     01 0\n\
     .end\n"
  in
  let c = Blif.read text in
  check_int "3 inputs" 3 (N.num_inputs c);
  let eval bits = N.eval c (Bv.of_string bits) in
  (* f = a&c | ~a&b ; input order in of_string is MSB-first: c b a *)
  check "f(a=1,c=1)" true (Bv.get (eval "101") 0);
  check "f(a=0,b=1)" true (Bv.get (eval "010") 0);
  check "f(0,0,0)" false (Bv.get (eval "000") 0);
  (* g's table lists the OFFSET: g = ~( ~a ) = a *)
  check "g = a" true (Bv.get (eval "001") 1);
  check "g(0,1,_) = 0" false (Bv.get (eval "010") 1)

let test_continuation_and_comments () =
  let text =
    "# a comment\n\
     .model m\n\
     .inputs a \\\n\
     b\n\
     .outputs z\n\
     .names a b z   # trailing comment\n\
     11 1\n\
     .end\n"
  in
  let c = Blif.read text in
  check_int "continued .inputs parsed" 2 (N.num_inputs c);
  check "z = a & b" true (Bv.get (N.eval c (Bv.of_string "11")) 0)

let test_rejects_latches () =
  check "latch rejected" true
    (try
       ignore (Blif.read ".model m\n.inputs a\n.outputs z\n.latch a z 0\n.end\n");
       false
     with Failure _ -> true)

let test_rejects_cycles () =
  let text =
    ".model m\n.inputs a\n.outputs z\n.names y z\n1 1\n.names z y\n1 1\n.end\n"
  in
  check "cycle rejected" true
    (try
       ignore (Blif.read text);
       false
     with Failure _ -> true)

(* reader hardening: the message must carry the offending source line *)
let rejects_with fragment text =
  try
    ignore (Blif.read text);
    false
  with Failure msg ->
    let contains s sub =
      let n = String.length sub in
      let found = ref false in
      for i = 0 to String.length s - n do
        if String.sub s i n = sub then found := true
      done;
      !found
    in
    contains msg fragment

let test_rejects_duplicate_driver () =
  check "second driver rejected, first line cited" true
    (rejects_with "line 4"
       ".model m\n\
        .inputs a b\n\
        .outputs z\n\
        .names a z\n\
        1 1\n\
        .names b z\n\
        1 1\n\
        .end\n");
  check "message names the signal" true
    (rejects_with "z"
       ".model m\n.inputs a b\n.outputs z\n.names a z\n1 1\n.names b z\n1 1\n.end\n")

let test_rejects_undriven () =
  check "undriven fanin rejected with location" true
    (rejects_with "line 4"
       ".model m\n.inputs a\n.outputs z\n.names a ghost z\n11 1\n.end\n")

let test_rejects_dead_cycle () =
  (* a cycle no output depends on: lazy elaboration would never reach it,
     eager validation must *)
  check "dead cycle still rejected" true
    (rejects_with "cycle"
       ".model m\n\
        .inputs a\n\
        .outputs z\n\
        .names a z\n\
        1 1\n\
        .names q p\n\
        1 1\n\
        .names p q\n\
        1 1\n\
        .end\n")

let test_rejects_bad_row () =
  check "row width mismatch located" true
    (rejects_with "line 5"
       ".model m\n.inputs a b\n.outputs z\n.names a b z\n111 1\n.end\n");
  check "bad pattern char rejected" true
    (rejects_with "line 5"
       ".model m\n.inputs a b\n.outputs z\n.names a b z\n1x 1\n.end\n")

let test_constant_tables () =
  let text =
    ".model m\n.inputs a\n.outputs one zero\n.names one\n1\n.names zero\n.end\n"
  in
  let c = Blif.read text in
  let out = N.eval c (Bv.of_string "0") in
  check "constant one" true (Bv.get out 0);
  check "constant zero" false (Bv.get out 1)

let prop_roundtrip_random =
  QCheck.Test.make ~name:"BLIF roundtrip preserves semantics" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = N.create ~input_names:(names "x" 5) ~output_names:(names "z" 2) in
      let pool = ref (List.init 5 (fun i -> N.input c i)) in
      let pick () = List.nth !pool (Rng.int rng (List.length !pool)) in
      for _ = 1 to 15 do
        let a = pick () and b = pick () in
        let g =
          match Rng.int rng 6 with
          | 0 -> N.and_ c a b
          | 1 -> N.or_ c a b
          | 2 -> N.xor_ c a b
          | 3 -> N.nand_ c a b
          | 4 -> N.nor_ c a b
          | _ -> N.not_ c a
        in
        pool := g :: !pool
      done;
      N.set_output c 0 (pick ());
      N.set_output c 1 (pick ());
      semantically_equal c (Blif.read (Blif.write c)) 5)

let test_case_export_import () =
  (* a full benchmark circuit survives the trip *)
  let spec = Cases.find "case_16" in
  let golden = Cases.build spec in
  let back = Blif.read (Blif.write golden) in
  check "case_16 equivalence (formal)" true
    (Lr_aig.Equiv.check golden back = Lr_aig.Equiv.Equivalent)

let tests =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "handwritten BLIF with LUTs" `Quick
      test_reads_handwritten_blif;
    Alcotest.test_case "continuations & comments" `Quick
      test_continuation_and_comments;
    Alcotest.test_case "rejects latches" `Quick test_rejects_latches;
    Alcotest.test_case "rejects cycles" `Quick test_rejects_cycles;
    Alcotest.test_case "rejects duplicate drivers" `Quick
      test_rejects_duplicate_driver;
    Alcotest.test_case "rejects undriven nets" `Quick test_rejects_undriven;
    Alcotest.test_case "rejects dead cycles" `Quick test_rejects_dead_cycle;
    Alcotest.test_case "rejects malformed rows" `Quick test_rejects_bad_row;
    Alcotest.test_case "constant tables" `Quick test_constant_tables;
    Alcotest.test_case "benchmark circuit roundtrip (CEC)" `Quick
      test_case_export_import;
    QCheck_alcotest.to_alcotest prop_roundtrip_random;
  ]
