(* The fault-injection harness: schedule determinism and serialization,
   the retry/backoff path in the black box, and graceful degradation in
   the learner — including the headline replay guarantee, jobs=4 under a
   fault schedule bit-identical to jobs=1. *)

module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module Io = Lr_netlist.Io
module Box = Lr_blackbox.Blackbox
module F = Lr_faults.Faults
module Instr = Lr_instr.Instr
module Histogram = Lr_report.Histogram
module Cases = Lr_cases.Cases
module Config = Logic_regression.Config
module Learner = Logic_regression.Learner

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* a 2-input AND box that counts how often the provider actually runs —
   the probe for "failed attempts never reach the generator" *)
let and_box ?budget () =
  let calls = ref 0 in
  let f a =
    incr calls;
    let o = Bv.create 1 in
    Bv.set o 0 (Bv.get a 0 && Bv.get a 1);
    o
  in
  ( Box.of_function ?budget ~input_names:[| "a"; "b" |] ~output_names:[| "z" |]
      f,
    calls )

let pattern b0 b1 =
  let a = Bv.create 2 in
  Bv.set a 0 b0;
  Bv.set a 1 b1;
  a

(* ---------------- spec parsing and serialization ---------------- *)

let test_spec_roundtrip () =
  let specs =
    [
      F.none;
      { F.none with F.seed = 7; fail_p = 0.02; fail_burst = 2 };
      {
        F.none with
        F.seed = 3;
        latency_p = 0.1;
        latency_s = 0.005;
        corruption = Some F.Flip;
        victim = 3;
        onset = 100;
        duration = 50;
      };
      {
        F.none with
        F.corruption = Some (F.Stuck_at true);
        victim = 1;
        exhaust_after = Some 4096;
      };
    ]
  in
  List.iter
    (fun s ->
      let str = F.to_string s in
      (match F.of_string str with
      | Ok s' -> check_bool ("compact round-trip: " ^ str) true (s = s')
      | Error e -> Alcotest.failf "of_string %S: %s" str e);
      match F.of_json (F.to_json s) with
      | Ok s' -> check_bool ("json round-trip: " ^ str) true (s = s')
      | Error e -> Alcotest.failf "of_json (to_json %S): %s" str e)
    specs;
  (match F.of_string "fail=2.0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fail=2.0 accepted");
  match F.of_string "nonsense=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown key accepted"

let test_load () =
  (match F.load "seed=9,fail=0.5" with
  | Ok s -> check_int "inline seed" 9 s.F.seed
  | Error e -> Alcotest.fail e);
  let file = Filename.temp_file "faults" ".json" in
  let oc = open_out file in
  output_string oc
    (Lr_instr.Json.to_string (F.to_json { F.none with F.seed = 11 }));
  close_out oc;
  (match F.load file with
  | Ok s -> check_int "json file seed" 11 s.F.seed
  | Error e -> Alcotest.fail e);
  Sys.remove file

(* ---------------- schedule determinism ---------------- *)

let test_schedule_deterministic () =
  let spec = { F.none with F.seed = 5; fail_p = 0.5; fail_burst = 1 } in
  let run key =
    let f = F.instantiate spec ~key in
    List.init 64 (fun _ ->
        let failed = F.attempt_fails f ~attempt:0 in
        ignore (F.commit f [||]);
        failed)
  in
  check_bool "same key replays the same schedule" true (run 3 = run 3);
  check_bool "different keys draw different schedules" false (run 3 = run 4)

(* ---------------- retry path in the black box ---------------- *)

let test_retry_until_success () =
  let box, calls = and_box () in
  Box.set_faults box
    (Some { F.none with F.seed = 1; fail_p = 1.0; fail_burst = 2 });
  Box.set_retry box (F.retry ~backoff_s:0.25 4);
  let skew0 = Instr.clock_skew_s () in
  let out = Box.query box (pattern true true) in
  check_bool "answer correct after retries" true (Bv.get out 0);
  check_int "provider ran exactly once" 1 !calls;
  check_int "one query counted" 1 (Box.queries_used box);
  check_int "two failed attempts retried" 2 (Box.retries_used box);
  check_bool "backoff advanced the injected clock (0.25 + 0.5)" true
    (Instr.clock_skew_s () -. skew0 >= 0.75 -. 1e-9);
  check_bool "transient faults counted" true
    (List.assoc "transient" (Box.faults_seen box) = 2)

let test_retry_exhaustion () =
  let box, calls = and_box () in
  (* burst=0 is a hard fault: every attempt fails *)
  Box.set_faults box
    (Some { F.none with F.seed = 1; fail_p = 1.0; fail_burst = 0 });
  Box.set_retry box (F.retry ~backoff_s:0.0 3);
  (match Box.query box (pattern true false) with
  | exception F.Query_failed { attempts; _ } ->
      check_int "all attempts consumed" 3 attempts
  | _ -> Alcotest.fail "hard fault did not surface");
  check_int "provider never ran" 0 !calls;
  check_int "no query counted" 0 (Box.queries_used box);
  check_int "the final attempt is not a retry" 2 (Box.retries_used box)

let test_no_retry_is_fatal () =
  let box, _ = and_box () in
  Box.set_faults box (Some { F.none with F.seed = 1; fail_p = 1.0 });
  match Box.query box (pattern true true) with
  | exception F.Query_failed { attempts = 1; _ } -> ()
  | exception F.Query_failed { attempts; _ } ->
      Alcotest.failf "expected 1 attempt, got %d" attempts
  | _ -> Alcotest.fail "first failure was not fatal under no_retry"

let test_latency_spike () =
  let box, _ = and_box () in
  Box.set_faults box
    (Some { F.none with F.seed = 2; latency_p = 1.0; latency_s = 0.5 });
  let skew0 = Instr.clock_skew_s () in
  ignore (Box.query box (pattern false false));
  check_bool "spike entered the injected clock" true
    (Instr.clock_skew_s () -. skew0 >= 0.5 -. 1e-9);
  check_bool "spike visible in the latency histogram" true
    (Histogram.mean (Box.query_latency box) >= 0.5 -. 1e-9);
  check_bool "latency fault counted" true
    (List.assoc "latency" (Box.faults_seen box) = 1)

let test_corruption_window () =
  let box, _ = and_box () in
  Box.set_faults box
    (Some
       {
         F.none with
         F.seed = 1;
         corruption = Some (F.Stuck_at true);
         victim = 0;
         onset = 2;
         duration = 3;
       });
  (* AND of (true, false) is false; the victim bit reads stuck-true
     exactly while queries-served is in [2, 5) *)
  let lies =
    List.init 8 (fun _ -> Bv.get (Box.query box (pattern true false)) 0)
  in
  check_bool "corruption limited to the onset window" true
    (lies = [ false; false; true; true; true; false; false; false ]);
  check_bool "three corrupted answers counted" true
    (List.assoc "corrupt" (Box.faults_seen box) = 3)

let test_premature_exhaustion () =
  let box, _ = and_box ~budget:1000 () in
  Box.set_faults box (Some { F.none with F.seed = 1; exhaust_after = Some 3 });
  check_bool "fresh box not exhausted" false (Box.exhausted box);
  for _ = 1 to 3 do
    ignore (Box.query box (pattern true true))
  done;
  check_bool "exhausted long before the real budget" true (Box.exhausted box);
  check_bool "exhaust flag reported" true
    (List.assoc "exhaust" (Box.faults_seen box) = 1)

(* ---------------- learner-level degradation ---------------- *)

let fast =
  {
    Config.default with
    Config.support_rounds = 96;
    node_rounds = 32;
    max_tree_nodes = 512;
    optimize_rounds = 1;
    fraig_words = 4;
    template_samples = 32;
  }

let learn_case ?faults ?(retry = F.no_retry) ?(jobs = 1) name =
  let box = Cases.blackbox ~budget:150_000 (Cases.find name) in
  Learner.learn
    ~config:{ fast with Config.jobs; retry; faults }
    box

let test_transient_transparency () =
  let clean = learn_case "case_7" in
  let faulted =
    learn_case "case_7"
      ~faults:{ F.none with F.seed = 5; fail_p = 0.05; fail_burst = 2 }
      ~retry:(F.retry 4)
  in
  check_str "bit-identical netlist" (Io.write clean.Learner.circuit)
    (Io.write faulted.Learner.circuit);
  check_int "identical query count" clean.Learner.queries
    faulted.Learner.queries;
  check_int "nothing degraded" 0 faulted.Learner.degraded;
  check_bool "faults were actually injected" true (faulted.Learner.retries > 0)

let test_degraded_accounting () =
  let report =
    learn_case "case_7"
      ~faults:{ F.none with F.seed = 3; fail_p = 1.0; fail_burst = 0 }
  in
  let n_outputs = List.length report.Learner.outputs in
  check_int "every output degraded" n_outputs report.Learner.degraded;
  List.iter
    (fun (r : Learner.output_report) ->
      check_str
        ("degraded method for " ^ r.Learner.output_name)
        "degraded-fault"
        (Learner.method_to_string r.Learner.method_used);
      check_bool "degraded outputs are incomplete" false r.Learner.complete)
    report.Learner.outputs;
  check_bool "transient faults reported" true
    (List.assoc "transient" report.Learner.faults_seen > 0);
  check_int "no retries under no_retry" 0 report.Learner.retries;
  (* phase totals stay coherent under degradation *)
  check_int "phase retries sum to total" report.Learner.retries
    (List.fold_left (fun a (_, r) -> a + r) 0 report.Learner.phase_retries)

let test_parallel_fault_replay () =
  (* per-output fault streams + retries, replayed across 4 domains *)
  let faults =
    { F.none with F.seed = 5; fail_p = 0.03; fail_burst = 2; latency_p = 0.05;
      latency_s = 0.002 }
  in
  let retry = F.retry 4 in
  let base = learn_case "case_5" ~faults ~retry in
  let par = learn_case "case_5" ~faults ~retry ~jobs:4 in
  check_str "jobs=4 bit-identical netlist under faults"
    (Io.write base.Learner.circuit)
    (Io.write par.Learner.circuit);
  check_int "equal queries" base.Learner.queries par.Learner.queries;
  check_int "equal retries" base.Learner.retries par.Learner.retries;
  Alcotest.(check (list (pair string int)))
    "equal fault counters" base.Learner.faults_seen par.Learner.faults_seen;
  Alcotest.(check (list (pair string int)))
    "equal per-phase retries" base.Learner.phase_retries
    par.Learner.phase_retries

let tests =
  [
    Alcotest.test_case "spec round-trips (compact + json)" `Quick
      test_spec_roundtrip;
    Alcotest.test_case "load: inline spec and schedule file" `Quick test_load;
    Alcotest.test_case "schedule is a pure function of (spec, key)" `Quick
      test_schedule_deterministic;
    Alcotest.test_case "retry outlasts a transient burst" `Quick
      test_retry_until_success;
    Alcotest.test_case "retry exhaustion raises Query_failed" `Quick
      test_retry_exhaustion;
    Alcotest.test_case "no_retry makes the first failure fatal" `Quick
      test_no_retry_is_fatal;
    Alcotest.test_case "latency spikes use the injected clock" `Quick
      test_latency_spike;
    Alcotest.test_case "corruption honours its onset window" `Quick
      test_corruption_window;
    Alcotest.test_case "premature exhaustion trips the box" `Quick
      test_premature_exhaustion;
    Alcotest.test_case "transient faults + retries are transparent" `Quick
      test_transient_transparency;
    Alcotest.test_case "hard faults degrade with full accounting" `Quick
      test_degraded_accounting;
    Alcotest.test_case "4-domain conquer replays the schedule" `Quick
      test_parallel_fault_replay;
  ]
