(* Property-based testing over random circuits, covers and vectors.

   A small hand-rolled qcheck-lite: generators are sized (instances grow
   as a run progresses, so early failures are small to begin with) and
   every arbitrary carries a shrinker — on a falsified property the
   harness greedily walks shrink candidates until none fails, then
   reports the local minimum. No dependency beyond Alcotest for
   reporting.

   The properties pin down the three data paths the parallel learner
   leans on hardest: AIG optimization preserves function, the exchange
   formats round-trip, and the three evaluators (cover, BDD, netlist)
   agree on random assignments. *)

module Bv = Lr_bitvec.Bv
module Rng = Lr_bitvec.Rng
module Cube = Lr_cube.Cube
module Cover = Lr_cube.Cover
module N = Lr_netlist.Netlist
module B = Lr_netlist.Builder
module Blif = Lr_netlist.Blif
module Io = Lr_netlist.Io
module Aig = Lr_aig.Aig
module Opt = Lr_aig.Opt
module Aiger = Lr_aig.Aiger
module Bdd = Lr_bdd.Bdd
module Box = Lr_blackbox.Blackbox
module F = Lr_faults.Faults
module Lint = Lr_check.Lint
module Finding = Lr_check.Finding
module Config = Logic_regression.Config
module Learner = Logic_regression.Learner
module Sweep = Lr_dataflow.Sweep

(* ---------------- the harness ---------------- *)

type 'a arb = {
  gen : Rng.t -> int -> 'a;  (** size-driven generator *)
  shrink : 'a -> 'a list;  (** smaller candidates, most aggressive first *)
  print : 'a -> string;
}

(* Greedy shrink: take the first failing candidate, repeat from there.
   Terminates because every shrinker strictly decreases its measure. *)
let rec minimize shrink fails x =
  match List.find_opt fails (shrink x) with
  | Some y -> minimize shrink fails y
  | None -> x

let check_prop ?(count = 60) name arb prop =
  let rng = Rng.create (Hashtbl.hash name) in
  for i = 1 to count do
    (* sizes ramp from 1 to ~24 over the run *)
    let size = 1 + (i * 24 / count) in
    let x = arb.gen rng size in
    let fails x = not (try prop x with _ -> false) in
    if fails x then begin
      let m = minimize arb.shrink fails x in
      Alcotest.failf "%s falsified (attempt %d, size %d), minimized to:\n%s"
        name i size (arb.print m)
    end
  done

(* drop element [i] of a list *)
let drop_nth l i = List.filteri (fun j _ -> j <> i) l

let shrink_list shrink_elt l =
  let n = List.length l in
  (* halving first (fast progress), then element drops, then in-place
     element shrinks *)
  (if n > 1 then [ List.filteri (fun i _ -> i < n / 2) l ] else [])
  @ List.init n (fun i -> drop_nth l i)
  @ List.concat
      (List.mapi
         (fun i x ->
           List.map (fun y -> List.mapi (fun j z -> if i = j then y else z) l)
             (shrink_elt x))
         l)

(* ---------------- vectors ---------------- *)

let arb_bv n =
  {
    gen = (fun rng _ -> Bv.random rng n);
    shrink =
      (fun v ->
        (* clear one set bit at a time: minimum is all-zero *)
        List.filter_map
          (fun i ->
            if Bv.get v i then begin
              let w = Bv.copy v in
              Bv.set w i false;
              Some w
            end
            else None)
          (List.init n Fun.id));
    print = Bv.to_string;
  }

(* ---------------- covers ---------------- *)

let gen_cube rng n =
  let lits = ref [] in
  for v = 0 to n - 1 do
    (* ~2 literals per cube on average keeps cubes satisfiable and wide *)
    if Rng.int rng n < 2 then lits := (v, Rng.bool rng) :: !lits
  done;
  Cube.of_literals n !lits

(* remove one literal at a time: minimum is the universal cube *)
let shrink_cube c =
  List.map (fun (v, _) -> Cube.remove c v) (Cube.literals c)

let arb_cover n =
  {
    gen =
      (fun rng size ->
        let cubes = List.init (1 + Rng.int rng (1 + size)) (fun _ -> gen_cube rng n) in
        Cover.of_cubes n cubes);
    shrink =
      (fun cover ->
        List.map (Cover.of_cubes n) (shrink_list shrink_cube (Cover.cubes cover)));
    print = Cover.to_pla;
  }

(* ---------------- AIGs, from a recipe ---------------- *)

(* An AIG is generated from a pure-data recipe — a list of (kind, a, b)
   rows, each adding one gate over the literals available so far — so
   shrinking is just list surgery on the recipe and rebuilding. *)
type recipe = { ni : int; no : int; ops : (int * int * int) list }

let build_aig { ni; no; ops } =
  let aig = Aig.create ~num_inputs:ni ~num_outputs:no in
  let lits = ref (Array.to_list (Array.init ni (Aig.input_lit aig))) in
  let nlits = ref ni in
  let pick k =
    let l = List.nth !lits (k mod !nlits) in
    if k land 1 = 0 then l else Aig.not_lit l
  in
  List.iter
    (fun (kind, a, b) ->
      let f =
        match kind mod 3 with
        | 0 -> Aig.and_lit
        | 1 -> Aig.or_lit
        | _ -> Aig.xor_lit
      in
      let l = f aig (pick a) (pick b) in
      lits := l :: !lits;
      incr nlits)
    ops;
  for o = 0 to no - 1 do
    Aig.set_output aig o (pick (o * 7 + 3))
  done;
  aig

let arb_recipe =
  {
    gen =
      (fun rng size ->
        let ni = 2 + Rng.int rng 6 and no = 1 + Rng.int rng 4 in
        let ops =
          List.init (Rng.int rng (2 * size + 2)) (fun _ ->
              (Rng.int rng 3, Rng.int rng 1000, Rng.int rng 1000))
        in
        { ni; no; ops })
    (* shrink only the gate list; arities stay, keeping outputs valid *);
    shrink =
      (fun r -> List.map (fun ops -> { r with ops }) (shrink_list (fun _ -> []) r.ops));
    print =
      (fun r ->
        Printf.sprintf "recipe ni=%d no=%d ops=[%s]" r.ni r.no
          (String.concat "; "
             (List.map (fun (k, a, b) -> Printf.sprintf "%d,%d,%d" k a b) r.ops)));
  }

(* the same recipe as a netlist, for the BLIF/native round-trips *)
let build_netlist r =
  let aig = build_aig r in
  Aig.to_netlist
    ~input_names:(Array.init r.ni (Printf.sprintf "i%d"))
    ~output_names:(Array.init r.no (Printf.sprintf "o%d"))
    aig

(* random 64-assignment word patterns for AIG simulation *)
let words rng ni = Array.init ni (fun _ -> Rng.bits64 rng)

(* ---------------- properties ---------------- *)

let prop_compress_preserves () =
  check_prop "Opt.compress preserves function" arb_recipe (fun r ->
      let aig = build_aig r in
      let rng = Rng.create 7 in
      let optimized = Opt.compress ~max_rounds:2 ~fraig_words:4 ~rng aig in
      Aig.num_ands optimized <= Aig.num_ands aig
      && List.for_all
           (fun _ ->
             let w = words rng r.ni in
             Aig.simulate aig w = Aig.simulate optimized w)
           [ (); (); () ])

let prop_sweep_preserves () =
  check_prop "Sweep.run preserves function and never grows" arb_recipe
    (fun r ->
      let n = build_netlist r in
      let swept, st = Sweep.run ~rng:(Rng.create 13) n in
      N.size swept <= N.size n
      && Sweep.removed st = N.size n - N.size swept
      &&
      let rng = Rng.create 29 in
      List.for_all
        (fun _ ->
          let a = Bv.random rng r.ni in
          Bv.equal (N.eval n a) (N.eval swept a))
        (List.init 16 Fun.id))

let prop_blif_roundtrip () =
  check_prop "BLIF write/read round-trip" arb_recipe (fun r ->
      let n = build_netlist r in
      let n' = Blif.read (Blif.write n) in
      N.input_names n = N.input_names n'
      && N.output_names n = N.output_names n'
      &&
      let rng = Rng.create 11 in
      List.for_all
        (fun _ ->
          let a = Bv.random rng r.ni in
          Bv.equal (N.eval n a) (N.eval n' a))
        (List.init 16 Fun.id))

let prop_native_roundtrip () =
  check_prop "native format write/read round-trip" arb_recipe (fun r ->
      let n = build_netlist r in
      let n' = Io.read (Io.write n) in
      N.input_names n = N.input_names n'
      && N.output_names n = N.output_names n'
      && N.size n = N.size n'
      &&
      let rng = Rng.create 13 in
      List.for_all
        (fun _ ->
          let a = Bv.random rng r.ni in
          Bv.equal (N.eval n a) (N.eval n' a))
        (List.init 16 Fun.id))

let prop_aiger_roundtrip () =
  check_prop "AIGER write/read round-trip (structural)" arb_recipe (fun r ->
      let aig = Aig.compact (build_aig r) in
      let aig' = Aiger.read (Aiger.write aig) in
      Aig.num_inputs aig = Aig.num_inputs aig'
      && Aig.num_outputs aig = Aig.num_outputs aig'
      && Aig.num_ands aig = Aig.num_ands aig'
      &&
      let rng = Rng.create 17 in
      List.for_all
        (fun _ ->
          let w = words rng r.ni in
          Aig.simulate aig w = Aig.simulate aig' w)
        (List.init 4 Fun.id))

(* one random-cover property over three evaluators: the cover itself,
   its BDD, and the SOP netlist the learner would synthesise from it *)
let prop_evaluators_agree () =
  let n = 8 in
  check_prop "cover/BDD/netlist evaluation agreement" (arb_cover n)
    (fun cover ->
      let man = Bdd.man ~nvars:n in
      let node = Bdd.of_cover man cover in
      let circuit =
        N.create
          ~input_names:(Array.init n (Printf.sprintf "x%d"))
          ~output_names:[| "f" |]
      in
      let vars = Array.init n (N.input circuit) in
      N.set_output circuit 0 (B.sop circuit vars cover);
      let rng = Rng.create 23 in
      List.for_all
        (fun _ ->
          let a = Bv.random rng n in
          let want = Cover.eval cover a in
          Bdd.eval man node a = want
          && Bv.get (N.eval circuit a) 0 = want)
        (List.init 32 Fun.id))

(* ---------------- fault injection ---------------- *)

(* a recipe paired with a transient-only fault schedule; shrinking works
   on the recipe (the schedule is already minimal in structure) *)
let arb_faulted_recipe =
  {
    gen =
      (fun rng size ->
        let spec =
          {
            F.none with
            F.seed = 1 + Rng.int rng 10_000;
            fail_p = 0.05 +. (float_of_int (Rng.int rng 25) /. 100.0);
            fail_burst = 1 + Rng.int rng 3;
            latency_p = 0.1;
            latency_s = 0.001;
          }
        in
        (arb_recipe.gen rng size, spec));
    shrink =
      (fun (r, spec) ->
        List.map (fun r -> (r, spec)) (arb_recipe.shrink r));
    print =
      (fun (r, spec) ->
        Printf.sprintf "%s under %s" (arb_recipe.print r) (F.to_string spec));
  }

let tiny_learn ?faults ?(retry = F.no_retry) r =
  let box = Box.of_netlist ~budget:30_000 (build_netlist r) in
  Learner.learn
    ~config:
      {
        Config.default with
        Config.support_rounds = 64;
        node_rounds = 16;
        max_tree_nodes = 128;
        optimize_rounds = 1;
        fraig_words = 4;
        template_samples = 16;
        retry;
        faults;
      }
    box

(* transient faults outlasted by retries change nothing: not the
   netlist, not the query count — the learner cannot tell it was
   attacked (retries >= burst+1 attempts guarantees every burst is
   outlasted) *)
let prop_transient_faults_transparent () =
  check_prop ~count:8 "transient faults + retries are transparent"
    arb_faulted_recipe (fun (r, spec) ->
      let clean = tiny_learn r in
      let faulted = tiny_learn ~faults:spec ~retry:(F.retry 8) r in
      Io.write clean.Learner.circuit = Io.write faulted.Learner.circuit
      && clean.Learner.queries = faulted.Learner.queries
      && faulted.Learner.degraded = 0)

(* a hard fault schedule degrades every output, yet the emitted netlist
   is still well-formed: the lint finds no error-severity problems *)
let prop_degraded_netlist_lints () =
  check_prop ~count:8 "degraded runs emit lint-clean netlists"
    arb_faulted_recipe (fun (r, spec) ->
      let hard = { spec with F.fail_p = 1.0; fail_burst = 0 } in
      let report = tiny_learn ~faults:hard r in
      report.Learner.degraded = List.length report.Learner.outputs
      && Finding.errors (Lint.netlist report.Learner.circuit) = [])

(* the harness must actually shrink: a seeded failing property ends at a
   local minimum, here the empty gate list *)
let test_shrinking_works () =
  let minimal = ref None in
  (try
     check_prop ~count:5 "always-false canary" arb_recipe (fun r ->
         minimal := Some r;
         false)
   with _ -> ());
  match !minimal with
  | Some r -> Alcotest.(check int) "shrunk to no gates" 0 (List.length r.ops)
  | None -> Alcotest.fail "property was never exercised"

let tests =
  [
    Alcotest.test_case "Opt.compress preserves function" `Quick
      prop_compress_preserves;
    Alcotest.test_case "Sweep.run preserves function" `Quick
      prop_sweep_preserves;
    Alcotest.test_case "BLIF round-trip" `Quick prop_blif_roundtrip;
    Alcotest.test_case "native round-trip" `Quick prop_native_roundtrip;
    Alcotest.test_case "AIGER round-trip" `Quick prop_aiger_roundtrip;
    Alcotest.test_case "evaluator agreement" `Quick prop_evaluators_agree;
    Alcotest.test_case "transient fault transparency" `Quick
      prop_transient_faults_transparent;
    Alcotest.test_case "degraded netlists lint clean" `Quick
      prop_degraded_netlist_lints;
    Alcotest.test_case "shrinking reaches a minimum" `Quick
      test_shrinking_works;
  ]
